package crsky_test

import (
	"fmt"

	crsky "github.com/crsky/crsky"
)

// The paper's core task: explain why an uncertain object is missing from a
// probabilistic reverse skyline result, with responsibilities.
func ExampleEngine_Explain() {
	objects := []*crsky.Object{
		crsky.NewUniformObject(0, []crsky.Point{{20, 20}, {24, 24}}), // the non-answer
		crsky.NewUniformObject(1, []crsky.Point{{10, 10}, {11, 11}}), // blocks it in every world
		crsky.NewCertainObject(2, crsky.Point{-70, -70}),
	}
	engine, _ := crsky.NewEngine(objects)
	q := crsky.Point{0, 0}

	res, _ := engine.Explain(0, q, 0.5, crsky.Options{})
	for _, c := range res.Causes {
		fmt.Printf("cause %d: responsibility %.0f, counterfactual %v\n",
			c.ID, c.Responsibility, c.Counterfactual)
	}
	// Output:
	// cause 1: responsibility 1, counterfactual true
}

// Certain data reduces to algorithm CR: one window query, no verification,
// all causes share responsibility 1/|Cc| (Lemma 7).
func ExampleCertainEngine_Explain() {
	points := []crsky.Point{
		{40, 40}, // the non-answer
		{25, 25}, // dominates q w.r.t. it
		{30, 35}, // dominates q w.r.t. it
		{-50, 90},
	}
	engine, _ := crsky.NewCertainEngine(points)
	q := crsky.Point{10, 10}

	res, _ := engine.Explain(0, q)
	fmt.Printf("%d causes, responsibility %.2f each\n",
		len(res.Causes), res.Causes[0].Responsibility)
	// Output:
	// 2 causes, responsibility 0.50 each
}

// SuggestRepair answers the actionable follow-up: the smallest competitor
// set whose removal brings the object back into the result.
func ExampleEngine_SuggestRepair() {
	objects := []*crsky.Object{
		crsky.NewUniformObject(0, []crsky.Point{{20, 20}, {24, 24}}),
		crsky.NewUniformObject(1, []crsky.Point{{10, 10}, {11, 11}}),
		crsky.NewUniformObject(2, []crsky.Point{{15, 15}, {99, 99}}),
	}
	engine, _ := crsky.NewEngine(objects)
	rep, _ := engine.SuggestRepair(0, crsky.Point{0, 0}, 0.5, crsky.Options{})
	fmt.Printf("remove %v (exact=%v) -> Pr=%.2f\n", rep.Removed, rep.Exact, rep.NewPr)
	// Output:
	// remove [1] (exact=true) -> Pr=0.50
}

// Reverse top-k causality: the paper's future-work extension in closed form.
func ExampleExplainReverseTopK() {
	products := []crsky.Point{{1}, {2}, {3}, {4}, {9}}
	w := crsky.Point{1} // the user's weights
	q := crsky.Point{5} // our product: 4 products score better
	res, _ := crsky.ExplainReverseTopK(products, w, q, 2)
	fmt.Printf("%d causes, responsibility 1/%d each\n",
		len(res.Causes), int(1/res.Causes[0].Responsibility+0.5))
	// Output:
	// 4 causes, responsibility 1/3 each
}
