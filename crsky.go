// Package crsky explains why objects are missing from (probabilistic)
// reverse skyline query results. It is a from-scratch Go implementation of
//
//	Gao, Liu, Chen, Zhou, Zheng: "Finding Causality and Responsibility for
//	Probabilistic Reverse Skyline Query Non-Answers", IEEE TKDE 28(11), 2016.
//
// Given a dataset P, a query object q, and an object an that is NOT in the
// (probabilistic) reverse skyline of q, the library computes every actual
// cause of that absence together with its responsibility: an object p is an
// actual cause when some contingency set Γ ⊆ P exists such that an stays a
// non-answer on P−Γ but becomes an answer on P−Γ−{p}; its responsibility is
// 1/(1+|Γ|) for a minimum such Γ.
//
// Three engines cover the paper's three data models:
//
//   - Engine — uncertain data under the discrete sample model (algorithm
//     CP, Section 3);
//   - PDFEngine — uncertain data under the continuous pdf model
//     (Section 3.2);
//   - CertainEngine — certain data under plain reverse skyline semantics
//     (algorithm CR, Section 4).
//
// All engines index their data with an R*-tree (4096-byte pages by default)
// and report simulated I/O through NodeAccesses, matching the paper's
// evaluation metrics.
package crsky

import (
	"sync"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/prsq"
	"github.com/crsky/crsky/internal/skyline"
	"github.com/crsky/crsky/internal/stats"
	"github.com/crsky/crsky/internal/uncertain"
)

// Core vocabulary, re-exported so that applications need only this package.
type (
	// Point is a D-dimensional point.
	Point = geom.Point
	// Rect is an axis-aligned hyper-rectangle.
	Rect = geom.Rect
	// Sample is one possible position of an uncertain object with its
	// appearance probability.
	Sample = uncertain.Sample
	// Object is a discrete-sample uncertain object.
	Object = uncertain.Object
	// PDFObject is a continuous-model uncertain object (uniform or
	// truncated-Gaussian density over a rectangular region).
	PDFObject = uncertain.PDFObject
	// Cause is one actual cause with its responsibility and a minimum
	// contingency set.
	Cause = causality.Cause
	// Explanation is the full causality-and-responsibility result for one
	// non-answer.
	Explanation = causality.Result
	// Options tunes the refinement stage of the explanation algorithms.
	Options = causality.Options
	// QueryOptions tunes the index-accelerated probabilistic reverse
	// skyline query path (parallelism, bound pruning).
	QueryOptions = prsq.Options
	// QueryStats reports how an accelerated query was answered: how many
	// objects the bounds decided and how many needed exact evaluation.
	QueryStats = prsq.Stats
	// ApproxOptions tunes the Monte Carlo approximate query tier (error
	// budget, confidence, seed, iteration cap).
	ApproxOptions = prsq.ApproxOptions
	// ApproxResult is an approximate query answer: membership under the
	// estimates plus per-object confidence intervals for the estimated
	// band.
	ApproxResult = prsq.ApproxResult
	// ApproxInterval is one Monte Carlo estimate with its confidence
	// interval.
	ApproxInterval = prsq.ApproxInterval
)

// Errors re-exported from the causality engine.
var (
	ErrNotNonAnswer      = causality.ErrNotNonAnswer
	ErrTooManyCandidates = causality.ErrTooManyCandidates
	ErrSubsetBudget      = causality.ErrSubsetBudget
	ErrBadObject         = causality.ErrBadObject
)

// NewUniformObject builds an uncertain object whose samples are equally
// probable — the convention of the paper's running examples.
func NewUniformObject(id int, locations []Point) *Object {
	return uncertain.NewUniform(id, locations)
}

// NewCertainObject builds the degenerate single-sample object.
func NewCertainObject(id int, loc Point) *Object {
	return uncertain.Certain(id, loc)
}

// NewUniformPDFObject builds a uniform-density continuous object.
func NewUniformPDFObject(id int, region Rect) *PDFObject {
	return uncertain.NewUniformPDF(id, region)
}

// NewGaussianPDFObject builds a truncated-Gaussian continuous object; nil
// mean/sigma select the defaults (region center, quarter side).
func NewGaussianPDFObject(id int, region Rect, mean, sigma Point) *PDFObject {
	return uncertain.NewGaussianPDF(id, region, mean, sigma)
}

// Engine answers and explains probabilistic reverse skyline queries over a
// discrete-sample uncertain dataset. Objects must be numbered 0..n-1.
type Engine struct {
	ds *dataset.Uncertain
	io stats.Counter
}

// NewEngine validates the objects and builds the engine. The R-tree index
// is built lazily on first query.
func NewEngine(objects []*Object) (*Engine, error) {
	ds, err := dataset.NewUncertain(objects)
	if err != nil {
		return nil, err
	}
	e := &Engine{ds: ds}
	ds.Tree().SetCounter(&e.io)
	return e, nil
}

// Len returns the number of objects.
func (e *Engine) Len() int { return e.ds.Len() }

// Dims returns the dataset dimensionality.
func (e *Engine) Dims() int { return e.ds.Dims() }

// Object returns the object with the given ID.
func (e *Engine) Object(id int) *Object { return e.ds.Objects[id] }

// NodeAccesses returns the simulated I/O performed since the last Reset.
func (e *Engine) NodeAccesses() int64 { return e.io.Value() }

// ResetCounters zeroes the I/O counter.
func (e *Engine) ResetCounters() { e.io.Reset() }

// Prob returns Pr(u) — the probability that object id is a reverse skyline
// point of q (Eq. 2) — using the candidate filter to avoid touching
// irrelevant objects.
func (e *Engine) Prob(id int, q Point) float64 {
	an := e.ds.Objects[id]
	if an == nil { // tombstone: a deleted object is never an answer
		return 0
	}
	candIDs := causality.FilterCandidates(e.ds, q, an)
	cands := make([]*Object, len(candIDs))
	for i, cid := range candIDs {
		cands[i] = e.ds.Objects[cid]
	}
	return prob.PrReverseSkyline(an, q, cands)
}

// IsAnswer reports whether object id belongs to the probabilistic reverse
// skyline of q at threshold alpha.
func (e *Engine) IsAnswer(id int, q Point, alpha float64) bool {
	return e.Prob(id, q) >= alpha-prob.Eps
}

// ProbabilisticReverseSkyline returns the IDs of every object whose
// probability of being a reverse skyline point of q is at least alpha
// (Definition 4). It runs the index-accelerated path: one batch R-tree
// filtering pass for all objects, MBR-level bound pruning, and parallel
// exact evaluation of the undecided band — identical results to the naive
// per-object loop (see ProbabilisticReverseSkylineNaive).
func (e *Engine) ProbabilisticReverseSkyline(q Point, alpha float64) []int {
	return prsq.Query(e.ds, q, alpha, prsq.Options{})
}

// ProbabilisticReverseSkylineOpts is ProbabilisticReverseSkyline with
// explicit tuning knobs and execution statistics.
func (e *Engine) ProbabilisticReverseSkylineOpts(q Point, alpha float64, opt QueryOptions) ([]int, QueryStats) {
	return prsq.QueryStats(e.ds, q, alpha, opt)
}

// ProbabilisticReverseSkylineNaive answers the query with the naive
// per-object loop — one candidate-filter traversal and one full Eq.-2
// evaluation per object. Kept as the correctness baseline and benchmark
// reference for the accelerated path.
func (e *Engine) ProbabilisticReverseSkylineNaive(q Point, alpha float64) []int {
	var out []int
	for id, o := range e.ds.Objects {
		if o == nil {
			continue
		}
		if e.IsAnswer(id, q, alpha) {
			out = append(out, id)
		}
	}
	return out
}

// Explain computes the causality and responsibility for non-answer id using
// algorithm CP. It fails with ErrNotNonAnswer when id is an answer.
func (e *Engine) Explain(id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	return causality.CP(e.ds, q, id, alpha, opts)
}

// ExplainNaive runs the Naive-I baseline (same filter, exhaustive
// refinement); used by the benchmark harness.
func (e *Engine) ExplainNaive(id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	return causality.NaiveI(e.ds, q, id, alpha, opts)
}

// Verify independently re-checks an explanation against Definition 1:
// every reported cause's contingency set must witness causehood and the
// responsibility arithmetic must hold. A trust layer over Explain.
func (e *Engine) Verify(q Point, alpha float64, res *Explanation) error {
	return causality.VerifyExplanation(e.ds, q, alpha, res)
}

// Repair is a minimal intervention turning a non-answer into an answer.
type Repair = causality.Repair

// SuggestRepair finds a smallest set of objects whose removal makes the
// non-answer id an answer at threshold alpha — the actionable follow-up to
// an explanation ("what is the smallest set of competitors to beat?").
// Large refinement pools fall back to a greedy construction (Exact=false).
func (e *Engine) SuggestRepair(id int, q Point, alpha float64, opts Options) (*Repair, error) {
	return causality.MinimalRepair(e.ds, q, id, alpha, opts)
}

// CertainEngine answers and explains (certain) reverse skyline queries.
type CertainEngine struct {
	ix *skyline.Index
	io stats.Counter

	// redMu guards red, the lazily built (and warmed) Section-4 reduction
	// dataset backing Verify/SuggestRepair and their v2 counterparts.
	// Insert and Delete invalidate it: the reduction must stay
	// index-aligned with the live points.
	redMu sync.Mutex
	red   *dataset.Uncertain
}

// NewCertainEngine validates the points and builds the engine with a
// bulk-loaded R-tree.
func NewCertainEngine(points []Point) (*CertainEngine, error) {
	ds, err := dataset.NewCertain(points)
	if err != nil {
		return nil, err
	}
	e := &CertainEngine{ix: skyline.NewIndex(ds.Points)}
	e.ix.SetCounter(&e.io)
	return e, nil
}

// Len returns the number of points.
func (e *CertainEngine) Len() int { return e.ix.Len() }

// Dims returns the dataset dimensionality.
func (e *CertainEngine) Dims() int { return e.ix.Dims() }

// Point returns the point at the given index.
func (e *CertainEngine) Point(i int) Point { return e.ix.Points()[i] }

// NodeAccesses returns the simulated I/O performed since the last Reset.
func (e *CertainEngine) NodeAccesses() int64 { return e.io.Value() }

// ResetCounters zeroes the I/O counter.
func (e *CertainEngine) ResetCounters() { e.io.Reset() }

// IsReverseSkylinePoint reports whether point i belongs to the reverse
// skyline of q (Definition 3).
func (e *CertainEngine) IsReverseSkylinePoint(i int, q Point) bool {
	return e.ix.Member(i, q)
}

// ReverseSkyline returns the indices of all reverse skyline points of q.
func (e *CertainEngine) ReverseSkyline(q Point) []int {
	return e.ix.ReverseSkyline(q)
}

// Explain computes the causality and responsibility for non-answer i using
// algorithm CR (single window query, Lemma 7 — no verification).
func (e *CertainEngine) Explain(i int, q Point) (*Explanation, error) {
	return causality.CR(e.ix, q, i)
}

// ExplainNaive runs the Naive-II baseline (same filter, exhaustive
// verification); used by the benchmark harness.
func (e *CertainEngine) ExplainNaive(i int, q Point, opts Options) (*Explanation, error) {
	return causality.NaiveII(e.ix, q, i, opts)
}

// Insert adds a point to the engine and returns its index. Existing
// indexes remain valid. The reduction cache is invalidated AFTER the
// mutation: invalidating first would let a concurrent Verify/SuggestRepair
// rebuild and cache the pre-mutation reduction, which would then stay
// stale past this call.
func (e *CertainEngine) Insert(p Point) int {
	idx := e.ix.Insert(p)
	e.invalidateReduction()
	return idx
}

// Delete removes the point with the given index; the index becomes a
// tombstone and is never reused. See Insert for the invalidation order.
func (e *CertainEngine) Delete(i int) error {
	err := e.ix.Delete(i)
	e.invalidateReduction()
	return err
}

// Deleted reports whether index i is a tombstone.
func (e *CertainEngine) Deleted(i int) bool { return e.ix.Deleted(i) }

// ReverseSkylineBBRS computes the reverse skyline with the branch-and-bound
// BBRS-style algorithm — identical results to ReverseSkyline with far fewer
// node accesses on large datasets.
func (e *CertainEngine) ReverseSkylineBBRS(q Point) []int {
	return e.ix.ReverseSkylineBBRS(q)
}

// PDFEngine answers and explains probabilistic reverse skyline queries over
// continuous-model uncertain data (Section 3.2).
type PDFEngine struct {
	set *causality.PDFSet
	io  stats.Counter
}

// NewPDFEngine validates the objects and builds the engine.
func NewPDFEngine(objects []*PDFObject) (*PDFEngine, error) {
	set, err := causality.NewPDFSet(objects)
	if err != nil {
		return nil, err
	}
	e := &PDFEngine{set: set}
	set.Tree().SetCounter(&e.io)
	return e, nil
}

// Len returns the number of objects.
func (e *PDFEngine) Len() int { return e.set.Len() }

// Dims returns the dataset dimensionality.
func (e *PDFEngine) Dims() int { return e.set.Dims() }

// Object returns the pdf object with the given ID.
func (e *PDFEngine) Object(id int) *PDFObject { return e.set.Objects[id] }

// NodeAccesses returns the simulated I/O performed since the last Reset.
func (e *PDFEngine) NodeAccesses() int64 { return e.io.Value() }

// ResetCounters zeroes the I/O counter.
func (e *PDFEngine) ResetCounters() { e.io.Reset() }

// Prob returns Pr(u) for object id by quadrature over its region;
// nodesPerDim <= 0 selects the dimension-adapted default. The full object
// slice is passed straight through (the evaluation skips id by pointer),
// so no per-call candidate slice is rebuilt.
func (e *PDFEngine) Prob(id int, q Point, nodesPerDim int) float64 {
	an := e.set.Objects[id]
	if an == nil { // tombstone: a deleted object is never an answer
		return 0
	}
	return prob.PrReverseSkylinePDF(an, q, e.set.Objects, nodesPerDim)
}

// ProbabilisticReverseSkyline returns the IDs of every object whose
// probability of being a reverse skyline point of q is at least alpha,
// using the index-accelerated batch path (one R-tree join, Γ1 core-rect
// pruning, parallel quadrature of the survivors). Results are identical to
// thresholding Prob over every object.
func (e *PDFEngine) ProbabilisticReverseSkyline(q Point, alpha float64, nodesPerDim int) []int {
	return prsq.QueryPDF(e.set, q, alpha, nodesPerDim, prsq.Options{})
}

// ProbabilisticReverseSkylineOpts is ProbabilisticReverseSkyline with
// explicit tuning knobs and execution statistics.
func (e *PDFEngine) ProbabilisticReverseSkylineOpts(q Point, alpha float64, nodesPerDim int, opt QueryOptions) ([]int, QueryStats) {
	return prsq.QueryPDFStats(e.set, q, alpha, nodesPerDim, opt)
}

// ProbabilisticReverseSkylineNaive answers the pdf-model query by
// thresholding Prob over every object — no index, no bounds, one full
// quadrature per object. Kept as the correctness oracle the accelerated
// path is conformance-tested against.
func (e *PDFEngine) ProbabilisticReverseSkylineNaive(q Point, alpha float64, nodesPerDim int) []int {
	var out []int
	for id, o := range e.set.Objects {
		if o == nil {
			continue
		}
		if prob.GEq(e.Prob(id, q, nodesPerDim), alpha) {
			out = append(out, id)
		}
	}
	return out
}

// Explain computes the causality and responsibility for non-answer id with
// the pdf-model variant of CP.
func (e *PDFEngine) Explain(id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	return causality.CPPDF(e.set, q, id, alpha, opts)
}
