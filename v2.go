package crsky

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prsq"
)

// This file is the v2 engine API: one model-generic, context-first surface
// implemented by all three engines. The paper defines a single
// causality/responsibility semantics (Definition 1, responsibility
// 1/(1+|Γ|)) instantiated over three data models; v2 makes the public API
// mirror that fact, so serving layers, CLIs, and conformance harnesses
// dispatch through one interface instead of re-implementing model switches.
//
// Contract, uniform across engines:
//
//   - Every *Ctx method observes ctx: searches poll it with an amortized
//     stride (ctxutil.DefaultStride work units) at the existing budget
//     charging points, so cancellation support never perturbs search
//     order, results, or node-access accounting of uncanceled runs.
//   - A canceled call returns an error wrapping *CanceledError (and
//     therefore matching errors.Is(err, context.Canceled) /
//     context.DeadlineExceeded) carrying partial work statistics; engine
//     state is fully restored, so the next call behaves as if the
//     canceled one never happened.
//   - alpha is always present. The probabilistic engines require
//     alpha ∈ (0, 1]; CertainEngine accepts the parameter and validates
//     it is exactly 1 (certain-data membership is exact), failing with
//     ErrBadAlpha otherwise.
//   - The legacy context-free methods (Explain, ProbabilisticReverseSkyline,
//     SuggestRepair, …) remain as thin context.Background() wrappers and
//     are frozen; new call sites should use the v2 methods.

// CanceledError is the typed error wrapped into every cancellation return:
// it unwraps to the context error and carries the partial work counters
// (subsets examined on explanation paths, exact evaluations on query
// paths).
type CanceledError = ctxutil.CanceledError

// ErrUnsupported reports a v2 operation an engine cannot provide. All
// three built-in engines now implement the full Explainer surface —
// including verification and repair on the pdf model — so none of them
// returns it; the sentinel remains for third-party Explainer
// implementations. Test with errors.Is.
var ErrUnsupported = errors.New("crsky: operation not supported by this engine")

// ErrBadAlpha reports a probability threshold outside the engine's domain:
// (0, 1] for the probabilistic engines, exactly 1 for CertainEngine.
var ErrBadAlpha = errors.New("crsky: alpha out of range for this engine")

// ExplainRequest is one item of an ExplainBatch call.
type ExplainRequest struct {
	// ID is the non-answer object to explain.
	ID int
	// Q is the query point.
	Q Point
	// Alpha is the probability threshold (must be 1 for CertainEngine).
	Alpha float64
	// Timeout, when positive, bounds this item alone: the item's search
	// runs under a deadline derived from the batch context, and hitting it
	// fails just this item — its siblings keep computing, and a streaming
	// batch keeps emitting past it. Zero means no per-item bound.
	Timeout time.Duration
}

// ExplainItem is the per-item outcome of an ExplainBatch call: exactly one
// of Result and Err is set. Index is the position in the request slice.
type ExplainItem struct {
	Index  int
	Result *Explanation
	Err    error
}

// Querier is the model-generic query surface shared by all three engines.
type Querier interface {
	// Len returns the number of objects.
	Len() int
	// Dims returns the dataset dimensionality.
	Dims() int
	// Warm forces the lazy index and derived-cache builds so concurrent
	// readers never race on them.
	Warm()
	// NodeAccesses returns the simulated I/O since the last reset — the
	// paper's primary cost metric.
	NodeAccesses() int64
	// ResetCounters zeroes the I/O counter.
	ResetCounters()
	// QueryCtx returns the IDs (ascending) of every object whose
	// probability of being a reverse skyline point of q is at least
	// alpha, with execution statistics.
	QueryCtx(ctx context.Context, q Point, alpha float64, opts QueryOptions) ([]int, QueryStats, error)
	// QueryBatch answers many query points at once — one answer slice per
	// point, element-wise identical to per-point QueryCtx calls — sharing
	// index traversal, warm-up, and the evaluation worker pool across the
	// batch.
	QueryBatch(ctx context.Context, qs []Point, alpha float64, opts QueryOptions) ([][]int, QueryStats, error)
	// QueryBatchStream is QueryBatch with per-item streaming: a non-nil
	// emit observes every query's final ascending answer slice in request
	// order, each exactly once, as soon as it is final — before the rest
	// of the batch finishes computing. Emit calls are serialized; the
	// callback must not call back into the engine. On a mid-batch
	// cancellation only the completed prefix has been emitted, and the
	// call returns the error with no answers.
	QueryBatchStream(ctx context.Context, qs []Point, alpha float64, opts QueryOptions, emit func(index int, ids []int)) ([][]int, QueryStats, error)
	// QueryApprox is the degraded-mode query: the shared filter-and-bound
	// stage settles everything it can exactly, and the remaining band is
	// estimated by seeded Monte Carlo with per-object Hoeffding confidence
	// intervals at the requested error budget. Engines with an exact fast
	// path (certain data) answer exactly and set Exact. Deterministic in
	// (data, q, alpha, opts, approx) — worker count and scheduling never
	// change the result.
	QueryApprox(ctx context.Context, q Point, alpha float64, opts QueryOptions, approx ApproxOptions) (*ApproxResult, QueryStats, error)
}

// Explainer is the full v2 engine surface: queries plus causality
// explanations, minimal repairs, and independent verification.
type Explainer interface {
	Querier
	// ExplainCtx computes the causality and responsibility for non-answer
	// id (ErrNotNonAnswer if it is an answer).
	ExplainCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Explanation, error)
	// ExplainBatch explains many non-answers with per-item results and
	// errors; one item's failure (or cancellation after some items have
	// finished) never discards its siblings' results. A per-item
	// ExplainRequest.Timeout bounds that item alone.
	ExplainBatch(ctx context.Context, reqs []ExplainRequest, opts Options) []ExplainItem
	// ExplainBatchStream is ExplainBatch with per-item streaming: a
	// non-nil emit observes every item in request order, each exactly
	// once, as soon as it and every earlier item have finished. Emit
	// calls are serialized; the callback must not call back into the
	// engine.
	ExplainBatchStream(ctx context.Context, reqs []ExplainRequest, opts Options, emit func(ExplainItem)) []ExplainItem
	// RepairCtx finds a smallest removal set making non-answer id an
	// answer.
	RepairCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Repair, error)
	// VerifyCtx independently re-checks an explanation against
	// Definition 1. The check itself is not interruptible; ctx is observed
	// on entry.
	VerifyCtx(ctx context.Context, q Point, alpha float64, res *Explanation) error
}

// Compile-time conformance of all three engines.
var (
	_ Explainer = (*Engine)(nil)
	_ Explainer = (*CertainEngine)(nil)
	_ Explainer = (*PDFEngine)(nil)
)

// checkAlphaUnit validates a probabilistic threshold.
func checkAlphaUnit(alpha float64) error {
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("%w: alpha %v out of (0, 1]", ErrBadAlpha, alpha)
	}
	return nil
}

// checkAlphaOne validates the certain-data threshold: the parameter is
// accepted for signature uniformity but must be exactly 1.
func checkAlphaOne(alpha float64) error {
	if alpha != 1 {
		return fmt.Errorf("%w: certain-data membership is exact, alpha must be 1 (got %v)", ErrBadAlpha, alpha)
	}
	return nil
}

func checkDims(q Point, dims int) error {
	if q.Dims() != dims {
		return fmt.Errorf("crsky: query point has %d dims, dataset has %d", q.Dims(), dims)
	}
	if !q.IsFinite() {
		return fmt.Errorf("crsky: query point has non-finite coordinates")
	}
	return nil
}

// ctxPrecheck returns the wrapped cancellation error of an already-dead
// context (the shared ctxutil helper, re-exported for this file's
// engine methods).
func ctxPrecheck(ctx context.Context) error { return ctxutil.Precheck(ctx) }

// explainBatch fans reqs out over worker goroutines, collecting per-item
// results. The item fan-out provides the first level of parallelism
// (bounded by opts.Parallel or GOMAXPROCS); when the batch is smaller
// than the worker budget, the leftover budget is redistributed into each
// item's own search (per-item Parallel = budget / item workers), so a
// two-item batch on an eight-way budget still uses eight cores. A
// single-item batch degenerates to one ExplainCtx call with the caller's
// options untouched. After a cancellation the unstarted items are marked
// with the wrapped context error; finished items keep their results.
//
// A positive ExplainRequest.Timeout wraps that item's context alone, so a
// hard item times out by itself instead of eating the batch deadline. A
// non-nil emit observes finished items in request order, each exactly
// once, behind an ordered frontier: item i fires as soon as items 0..i
// have all finished, however the workers interleave.
func explainBatch(ctx context.Context, reqs []ExplainRequest, opts Options,
	explain func(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Explanation, error),
	emit func(ExplainItem)) []ExplainItem {

	items := make([]ExplainItem, len(reqs))
	for i := range items {
		items[i].Index = i
	}
	if len(reqs) == 0 {
		return items
	}

	// runOne executes one item under its per-item deadline (if any).
	runOne := func(ctx context.Context, i int, o Options) {
		if d := reqs[i].Timeout; d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		items[i].Result, items[i].Err = explain(ctx, reqs[i].ID, reqs[i].Q, reqs[i].Alpha, o)
	}

	if len(reqs) == 1 {
		runOne(ctx, 0, opts)
		if emit != nil {
			emit(items[0])
		}
		return items
	}
	budget := opts.Parallel
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := budget
	if workers > len(reqs) {
		workers = len(reqs)
	}
	itemOpts := opts
	itemOpts.Parallel = budget / workers

	// The ordered emission frontier: finished marks completed items, and
	// the frontier advances — emitting under the mutex, so calls are
	// serialized and strictly ordered — whenever the next unemitted item
	// has finished. The mutex also publishes the worker's writes to
	// items[i] to whichever goroutine later emits it.
	var mu sync.Mutex
	finished := make([]bool, len(reqs))
	next := 0
	finish := func(i int) {
		if emit == nil {
			return
		}
		mu.Lock()
		finished[i] = true
		for next < len(finished) && finished[next] {
			emit(items[next])
			next++
		}
		mu.Unlock()
	}

	// runItem isolates one item, converting a panic into that item's error:
	// these worker goroutines are not under net/http's recover, so an
	// unrecovered engine panic would kill the whole process instead of one
	// batch item.
	runItem := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				items[i].Err = fmt.Errorf("crsky: explain item %d panicked: %v", i, r)
			}
			finish(i)
		}()
		runOne(ctx, i, itemOpts)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				if err := ctxPrecheck(ctx); err != nil {
					items[i].Err = err
					finish(i)
					continue
				}
				runItem(i)
			}
			done <- struct{}{}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return items
}

// --- Engine (discrete-sample model) -----------------------------------

// QueryCtx implements Querier: the index-accelerated batch path of
// ProbabilisticReverseSkylineOpts under a context.
func (e *Engine) QueryCtx(ctx context.Context, q Point, alpha float64, opts QueryOptions) ([]int, QueryStats, error) {
	if err := checkDims(q, e.Dims()); err != nil {
		return nil, QueryStats{}, err
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryStatsCtx(ctx, e.ds, q, alpha, opts)
}

// QueryBatch implements Querier: one shared left-descent R-tree self-join
// answers every query point, with strictly fewer total node accesses than
// the equivalent per-point QueryCtx calls for batches of two or more.
func (e *Engine) QueryBatch(ctx context.Context, qs []Point, alpha float64, opts QueryOptions) ([][]int, QueryStats, error) {
	return e.QueryBatchStream(ctx, qs, alpha, opts, nil)
}

// QueryBatchStream implements Querier: the shared-join batch with answers
// streamed per query as their undecided bands settle.
func (e *Engine) QueryBatchStream(ctx context.Context, qs []Point, alpha float64, opts QueryOptions,
	emit func(index int, ids []int)) ([][]int, QueryStats, error) {

	for _, q := range qs {
		if err := checkDims(q, e.Dims()); err != nil {
			return nil, QueryStats{}, err
		}
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryBatchStreamStatsCtx(ctx, e.ds, qs, alpha, opts, emit)
}

// QueryApprox implements Querier: the filter stage runs unchanged and the
// undecided band is settled by seeded possible-world sampling over each
// object's candidate set (prob.PrReverseSkylineMC) instead of the exact
// Eq.-2 product.
func (e *Engine) QueryApprox(ctx context.Context, q Point, alpha float64, opts QueryOptions, approx ApproxOptions) (*ApproxResult, QueryStats, error) {
	if err := checkDims(q, e.Dims()); err != nil {
		return nil, QueryStats{}, err
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryApproxStatsCtx(ctx, e.ds, q, alpha, opts, approx)
}

// ExplainCtx implements Explainer: algorithm CP under a context.
func (e *Engine) ExplainCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	return causality.CPCtx(ctx, e.ds, q, id, alpha, opts)
}

// ExplainBatch implements Explainer.
func (e *Engine) ExplainBatch(ctx context.Context, reqs []ExplainRequest, opts Options) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, nil)
}

// ExplainBatchStream implements Explainer.
func (e *Engine) ExplainBatchStream(ctx context.Context, reqs []ExplainRequest, opts Options, emit func(ExplainItem)) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, emit)
}

// RepairCtx implements Explainer: MinimalRepair under a context.
func (e *Engine) RepairCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Repair, error) {
	return causality.MinimalRepairCtx(ctx, e.ds, q, id, alpha, opts)
}

// VerifyCtx implements Explainer: the Definition-1 re-check of Verify.
func (e *Engine) VerifyCtx(ctx context.Context, q Point, alpha float64, res *Explanation) error {
	if err := ctxPrecheck(ctx); err != nil {
		return err
	}
	defer obs.FromContext(ctx).StartSpan("explain.verify")()
	return causality.VerifyExplanation(e.ds, q, alpha, res)
}

// --- CertainEngine (certain data, Section 4) --------------------------

// QueryCtx implements Querier over certain data: alpha is validated to be
// exactly 1, and the reverse skyline is computed with the branch-and-bound
// BBRS traversal (ascending IDs).
func (e *CertainEngine) QueryCtx(ctx context.Context, q Point, alpha float64, opts QueryOptions) ([]int, QueryStats, error) {
	if err := checkDims(q, e.Dims()); err != nil {
		return nil, QueryStats{}, err
	}
	if err := checkAlphaOne(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	if err := ctxPrecheck(ctx); err != nil {
		return nil, QueryStats{}, err
	}
	endBBRS := obs.FromContext(ctx).StartSpan("query.bbrs")
	ids := e.ix.ReverseSkylineBBRS(q)
	endBBRS()
	sort.Ints(ids)
	if ids == nil {
		ids = []int{}
	}
	// Evaluated counts exact Eq.-2 evaluations; BBRS performs none, so the
	// stat stays zero and cross-model aggregation stays meaningful.
	return ids, QueryStats{Objects: e.Len()}, nil
}

// QueryBatch implements Querier: one branch-and-bound traversal with a
// frontier SHARED across every query point — the certain-data twin of the
// probabilistic models' shared left-descent join. Each R-tree node is read
// (and charged to the access counter) once however many queries' frontiers
// it sits on, so for two or more queries the batch records strictly fewer
// node accesses than per-point QueryCtx calls, while the exact per-query
// verification keeps the answers element-wise identical to them.
func (e *CertainEngine) QueryBatch(ctx context.Context, qs []Point, alpha float64, opts QueryOptions) ([][]int, QueryStats, error) {
	return e.QueryBatchStream(ctx, qs, alpha, opts, nil)
}

// QueryBatchStream implements Querier: the shared-frontier batch traversal
// with each query's verified answer streamed in request order. The shared
// traversal itself is one uninterruptible pass (like QueryCtx's BBRS); ctx
// is observed on entry and again before each query's verification/emission,
// so a cancellation stops the batch between items.
func (e *CertainEngine) QueryBatchStream(ctx context.Context, qs []Point, alpha float64, opts QueryOptions,
	emit func(index int, ids []int)) ([][]int, QueryStats, error) {

	for _, q := range qs {
		if err := checkDims(q, e.Dims()); err != nil {
			return nil, QueryStats{}, err
		}
	}
	if err := checkAlphaOne(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	if err := ctxPrecheck(ctx); err != nil {
		return nil, QueryStats{}, err
	}
	endBBRS := obs.FromContext(ctx).StartSpan("query.bbrs")
	var ctxErr error
	out, _ := e.ix.ReverseSkylineBBRSBatch(qs, func(k int, ids []int) bool {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return false
		}
		if emit != nil {
			if ids == nil {
				ids = []int{}
			}
			emit(k, ids)
		}
		return true
	})
	endBBRS()
	if ctxErr != nil {
		return nil, QueryStats{}, ctxutil.WrapCanceled(ctxErr, 0, 0)
	}
	for k := range out {
		if out[k] == nil {
			out[k] = []int{}
		}
	}
	// Evaluated stays zero exactly as in QueryCtx; Objects aggregates the
	// per-query decision counts the per-point calls would report.
	return out, QueryStats{Objects: e.Len() * len(qs)}, nil
}

// QueryApprox implements Querier. Certain-data membership is exact and
// BBRS is already the fast path, so the approximate API answers exactly
// with Exact set and no intervals — degraded mode never needs to sample
// certain data.
func (e *CertainEngine) QueryApprox(ctx context.Context, q Point, alpha float64, opts QueryOptions, approx ApproxOptions) (*ApproxResult, QueryStats, error) {
	ids, st, err := e.QueryCtx(ctx, q, alpha, opts)
	if err != nil {
		return nil, st, err
	}
	return prsq.ExactApproxResult(ids, approx), st, nil
}

// ExplainCtx implements Explainer: algorithm CR (Lemma 7 — single window
// query, no refinement, so opts carries no tuning for this engine). alpha
// is validated to be exactly 1.
func (e *CertainEngine) ExplainCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	if err := checkAlphaOne(alpha); err != nil {
		return nil, err
	}
	if err := ctxPrecheck(ctx); err != nil {
		return nil, err
	}
	return causality.CR(e.ix, q, id)
}

// ExplainBatch implements Explainer.
func (e *CertainEngine) ExplainBatch(ctx context.Context, reqs []ExplainRequest, opts Options) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, nil)
}

// ExplainBatchStream implements Explainer.
func (e *CertainEngine) ExplainBatchStream(ctx context.Context, reqs []ExplainRequest, opts Options, emit func(ExplainItem)) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, emit)
}

// RepairCtx implements Explainer via the cached Section-4 reduction.
func (e *CertainEngine) RepairCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Repair, error) {
	if err := checkAlphaOne(alpha); err != nil {
		return nil, err
	}
	ds, err := e.reduction()
	if err != nil {
		return nil, err
	}
	return causality.MinimalRepairCtx(ctx, ds, q, id, 1, opts)
}

// VerifyCtx implements Explainer via the cached Section-4 reduction.
func (e *CertainEngine) VerifyCtx(ctx context.Context, q Point, alpha float64, res *Explanation) error {
	if err := checkAlphaOne(alpha); err != nil {
		return err
	}
	if err := ctxPrecheck(ctx); err != nil {
		return err
	}
	ds, err := e.reduction()
	if err != nil {
		return err
	}
	defer obs.FromContext(ctx).StartSpan("explain.verify")()
	return causality.VerifyExplanation(ds, q, 1, res)
}

// --- PDFEngine (continuous model) --------------------------------------

// QueryCtx implements Querier: the index-accelerated pdf batch path under
// a context. The quadrature resolution comes from opts.QuadNodes (<= 0
// selects the dimension-adapted default).
func (e *PDFEngine) QueryCtx(ctx context.Context, q Point, alpha float64, opts QueryOptions) ([]int, QueryStats, error) {
	if err := checkDims(q, e.Dims()); err != nil {
		return nil, QueryStats{}, err
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryPDFStatsCtx(ctx, e.set, q, alpha, opts.QuadNodes, opts)
}

// QueryBatch implements Querier with the shared left-descent join of the
// sample model applied to the pdf geometry.
func (e *PDFEngine) QueryBatch(ctx context.Context, qs []Point, alpha float64, opts QueryOptions) ([][]int, QueryStats, error) {
	return e.QueryBatchStream(ctx, qs, alpha, opts, nil)
}

// QueryBatchStream implements Querier: the pdf shared-join batch with
// answers streamed per query as their undecided bands settle.
func (e *PDFEngine) QueryBatchStream(ctx context.Context, qs []Point, alpha float64, opts QueryOptions,
	emit func(index int, ids []int)) ([][]int, QueryStats, error) {

	for _, q := range qs {
		if err := checkDims(q, e.Dims()); err != nil {
			return nil, QueryStats{}, err
		}
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryBatchPDFStreamStatsCtx(ctx, e.set, qs, alpha, opts.QuadNodes, opts, emit)
}

// QueryApprox implements Querier: the pdf filter stage runs unchanged and
// the undecided band is settled by per-density sampling — no quadrature
// grid, so degraded-mode cost is independent of QuadNodes.
func (e *PDFEngine) QueryApprox(ctx context.Context, q Point, alpha float64, opts QueryOptions, approx ApproxOptions) (*ApproxResult, QueryStats, error) {
	if err := checkDims(q, e.Dims()); err != nil {
		return nil, QueryStats{}, err
	}
	if err := checkAlphaUnit(alpha); err != nil {
		return nil, QueryStats{}, err
	}
	return prsq.QueryApproxPDFStatsCtx(ctx, e.set, q, alpha, opts, approx)
}

// ExplainCtx implements Explainer: the pdf-model variant of CP under a
// context.
func (e *PDFEngine) ExplainCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Explanation, error) {
	return causality.CPPDFCtx(ctx, e.set, q, id, alpha, opts)
}

// ExplainBatch implements Explainer.
func (e *PDFEngine) ExplainBatch(ctx context.Context, reqs []ExplainRequest, opts Options) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, nil)
}

// ExplainBatchStream implements Explainer.
func (e *PDFEngine) ExplainBatchStream(ctx context.Context, reqs []ExplainRequest, opts Options, emit func(ExplainItem)) []ExplainItem {
	return explainBatch(ctx, reqs, opts, e.ExplainCtx, emit)
}

// RepairCtx implements Explainer: the Section-4 analogue on the memoized
// quadrature rules — CPPDF's sub-quadrant candidate filter feeding the
// shared kernel/greedy/branch-and-bound repair search, with every
// probability an integral over the non-answer's uncertainty region.
func (e *PDFEngine) RepairCtx(ctx context.Context, id int, q Point, alpha float64, opts Options) (*Repair, error) {
	return causality.MinimalRepairPDFCtx(ctx, e.set, q, id, alpha, opts)
}

// VerifyCtx implements Explainer: the Definition-1 re-check with each
// condition integrated by Gauss–Legendre cubature. The quadrature
// resolution comes from res.QuadNodes — recorded by ExplainCtx — so the
// verifier re-integrates at exactly the discretization the search used (a
// zero falls back to the dimension-adapted default).
func (e *PDFEngine) VerifyCtx(ctx context.Context, q Point, alpha float64, res *Explanation) error {
	if err := ctxPrecheck(ctx); err != nil {
		return err
	}
	quadNodes := 0
	if res != nil {
		quadNodes = res.QuadNodes
	}
	defer obs.FromContext(ctx).StartSpan("explain.verify")()
	return causality.VerifyExplanationPDF(e.set, q, alpha, quadNodes, res)
}
