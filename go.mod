module github.com/crsky/crsky

go 1.24
