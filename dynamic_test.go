package crsky

import (
	"errors"
	"reflect"
	"testing"
)

// TestCertainEngineDynamic exercises the public insert/delete path: an
// explanation changes as competitors appear and disappear.
func TestCertainEngineDynamic(t *testing.T) {
	e, err := NewCertainEngine([]Point{
		{40, 40}, // 0: will be the non-answer
		{25, 25}, // 1: dominates q w.r.t. 0
		{-80, 90},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Point{10, 10}

	res, err := e.Explain(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 1 || res.Causes[0].ID != 1 {
		t.Fatalf("causes = %v, want just object 1", res.Causes)
	}

	// A new competitor arrives: responsibilities dilute to 1/2.
	id := e.Insert(Point{30, 34})
	if id != 3 {
		t.Fatalf("Insert returned %d", id)
	}
	res, err = e.Explain(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 2 || res.Causes[0].Responsibility != 0.5 {
		t.Fatalf("after insert: %v", res.Causes)
	}

	// Both competitors leave: object 0 becomes an answer again.
	if err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain(0, q); !errors.Is(err, ErrNotNonAnswer) {
		t.Fatalf("expected ErrNotNonAnswer, got %v", err)
	}
	if !e.Deleted(1) || e.Deleted(0) {
		t.Fatal("tombstone bookkeeping broken")
	}
	if _, err := e.Explain(1, q); !errors.Is(err, ErrBadObject) {
		t.Fatalf("explaining a tombstone: %v", err)
	}

	// BBRS agrees with the scan on the mutated engine.
	if got, want := e.ReverseSkylineBBRS(q), e.ReverseSkyline(q); !reflect.DeepEqual(got, want) {
		t.Fatalf("BBRS %v vs scan %v", got, want)
	}
}
