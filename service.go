package crsky

import (
	"fmt"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/uncertain"
)

// This file holds the engine surface needed by long-lived serving layers
// (cmd/crskyd): index warm-up for safe concurrent readers and certain-data
// verification/repair via the Section-4 reduction. For result-cache
// keying, Options exposes the canonical Key method (via the alias to
// causality.Options).

// Warm forces the lazy R-tree index build and the derived per-object
// caches. Engines build these on first query; a server that shares one
// engine among concurrent readers must call Warm once before serving so
// that no two requests race on the build. All read-only query methods are
// safe for concurrent use after Warm returns.
func (e *Engine) Warm() {
	e.ds.Tree()
	e.ds.WeightSums()
	e.ds.Summaries()
}

// Warm forces the lazy derived caches (see Engine.Warm). The certain-data
// index itself is built eagerly, but the Section-4 reduction behind
// Verify/SuggestRepair is lazy; warming builds it up front so the first
// verify/repair request does not pay the O(n) conversion and R-tree build
// inside a serving slot. The build can legitimately fail (deleted points
// leave the reduction unbuildable) — that error resurfaces on the calls
// that need the reduction, so Warm ignores it.
func (e *CertainEngine) Warm() { _, _ = e.reduction() }

// Warm forces the lazy R-tree index build (see Engine.Warm).
func (e *PDFEngine) Warm() { e.set.Tree() }

// reduction returns the engine's points as the degenerate uncertain
// dataset of Section 4's reduction (one sample, probability 1), built and
// warmed once and cached until Insert/Delete invalidate it — long-lived
// serving layers verify and repair against the same engine repeatedly, so
// the O(n) conversion and the R-tree build are paid once, not per call.
// It fails when points have been deleted: tombstones have no location, so
// the reduction — which requires object IDs to stay index-aligned — is no
// longer faithful.
func (e *CertainEngine) reduction() (*dataset.Uncertain, error) {
	e.redMu.Lock()
	defer e.redMu.Unlock()
	if e.red != nil {
		return e.red, nil
	}
	pts := e.ix.Points()
	objs := make([]*uncertain.Object, len(pts))
	for i, p := range pts {
		if p == nil {
			return nil, fmt.Errorf("crsky: certain engine has deleted points; verify/repair need an intact dataset")
		}
		objs[i] = uncertain.Certain(i, p)
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		return nil, err
	}
	// Warm the lazy derived state under the lock so concurrent callers of
	// Verify/SuggestRepair never race on the builds, and charge the
	// reduction tree's traversals to the engine's I/O counter so
	// verify/repair node accesses stay visible in NodeAccesses.
	ds.Tree().SetCounter(&e.io)
	ds.WeightSums()
	ds.Summaries()
	e.red = ds
	return ds, nil
}

// invalidateReduction drops the cached reduction after a mutation.
func (e *CertainEngine) invalidateReduction() {
	e.redMu.Lock()
	e.red = nil
	e.redMu.Unlock()
}

// Verify independently re-checks a CR explanation against Definition 1 via
// the Section-4 reduction: certain data is the degenerate uncertain dataset
// where every object has one sample with probability 1 and membership is
// Pr = 1, so the CP verification applies with α = 1. A trust layer over
// Explain, mirroring Engine.Verify. It fails when points have been deleted
// since the engine was built.
func (e *CertainEngine) Verify(q Point, res *Explanation) error {
	ds, err := e.reduction()
	if err != nil {
		return err
	}
	return causality.VerifyExplanation(ds, q, 1, res)
}

// SuggestRepair finds a smallest set of points whose removal makes the
// non-answer i a reverse skyline point, via the same Section-4 reduction
// (α = 1). Mirrors Engine.SuggestRepair; see there for the exact/greedy
// contract.
func (e *CertainEngine) SuggestRepair(i int, q Point, opts Options) (*Repair, error) {
	ds, err := e.reduction()
	if err != nil {
		return nil, err
	}
	return causality.MinimalRepair(ds, q, i, 1, opts)
}
