package crsky

import (
	"errors"
	"testing"
)

// TestLargeScaleEndToEnd drives the whole pipeline at a realistic scale:
// generate a 50K-object uncertain dataset, locate non-answers, explain them
// with CP (serial and parallel), independently verify every explanation,
// and confirm the suggested repairs work. Skipped with -short.
func TestLargeScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale integration test")
	}
	objs, err := GenerateUncertain(UncertainConfig{N: 50_000, Dims: 3, RMax: 5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := Point{4200, 5100, 4800}
	const alpha = 0.6

	explained := 0
	for id := 0; id < engine.Len() && explained < 10; id += 17 {
		res, err := engine.Explain(id, q, alpha, Options{MaxCandidates: 250, MaxSubsets: 500_000})
		if err != nil {
			if errors.Is(err, ErrNotNonAnswer) || errors.Is(err, ErrTooManyCandidates) ||
				errors.Is(err, ErrSubsetBudget) {
				continue
			}
			t.Fatal(err)
		}
		explained++

		// The explanation must survive independent Definition-1 checking.
		if err := engine.Verify(q, alpha, res); err != nil {
			t.Fatalf("an=%d: verification failed: %v", id, err)
		}
		// Parallel refinement agrees with serial.
		par, err := engine.Explain(id, q, alpha, Options{MaxCandidates: 250, MaxSubsets: 500_000, Parallel: 4})
		if err != nil {
			t.Fatalf("an=%d parallel: %v", id, err)
		}
		if len(par.Causes) != len(res.Causes) {
			t.Fatalf("an=%d: parallel %d causes vs serial %d", id, len(par.Causes), len(res.Causes))
		}
		// The repair must lift the object over the threshold.
		rep, err := engine.SuggestRepair(id, q, alpha, Options{MaxSubsets: 500_000})
		if err != nil {
			t.Fatalf("an=%d repair: %v", id, err)
		}
		if rep.NewPr < alpha-1e-9 {
			t.Fatalf("an=%d: repair reaches only Pr=%v", id, rep.NewPr)
		}
		// Counterfactual causes and singleton exact repairs line up.
		if len(res.Causes) > 0 && res.Causes[0].Counterfactual && rep.Exact && len(rep.Removed) != 1 {
			t.Fatalf("an=%d: counterfactual cause but repair size %d", id, len(rep.Removed))
		}
	}
	if explained < 5 {
		t.Fatalf("only %d objects explained; workload too easy or too hard", explained)
	}
	if engine.NodeAccesses() == 0 {
		t.Fatal("no I/O recorded")
	}
}
