package uncertain

import (
	"math"
	"sync"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func memoRegion() geom.Rect {
	return geom.NewRect(geom.Point{1, 2}, geom.Point{4, 7})
}

func TestQuadratureCachedMatchesFresh(t *testing.T) {
	ResetQuadMemo()
	defer ResetQuadMemo()
	for _, o := range []*PDFObject{
		NewUniformPDF(0, memoRegion()),
		NewGaussianPDF(1, memoRegion(), nil, nil),
	} {
		for _, k := range []int{0, 1, 2, 9} {
			fresh := o.Quadrature(k)
			cached := o.QuadratureCached(k)
			if len(fresh) != len(cached) {
				t.Fatalf("k=%d: %d cached nodes, %d fresh", k, len(cached), len(fresh))
			}
			for i := range fresh {
				if fresh[i].W != cached[i].W || !fresh[i].X.Equal(cached[i].X) {
					t.Fatalf("k=%d node %d: cached %+v, fresh %+v", k, i, cached[i], fresh[i])
				}
			}
			again := o.QuadratureCached(k)
			if &again[0] != &cached[0] {
				t.Fatalf("k=%d: second lookup did not reuse the resident slice", k)
			}
		}
	}
	st := QuadMemoMetrics()
	// k=0 and k=1 normalize to the same key, so each object contributes 3
	// distinct entries and one extra hit.
	if st.Entries != 6 {
		t.Fatalf("entries = %d, want 6 (%+v)", st.Entries, st)
	}
	if st.Hits < 8 || st.Misses != 6 {
		t.Fatalf("hits/misses = %d/%d, want >=8/6 (%+v)", st.Hits, st.Misses, st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %v, want positive", st.HitRate())
	}
}

func TestQuadMemoEvictsAtNodeCap(t *testing.T) {
	ResetQuadMemo()
	prev := SetQuadMemoNodeCap(100)
	defer func() {
		SetQuadMemoNodeCap(prev)
		ResetQuadMemo()
	}()

	objs := make([]*PDFObject, 30)
	for i := range objs {
		objs[i] = NewUniformPDF(i, memoRegion())
		objs[i].QuadratureCached(3) // 9 nodes each; cap fits at most 11 entries
	}
	st := QuadMemoMetrics()
	if st.Nodes > 100 {
		t.Fatalf("memo holds %d nodes, cap is 100 (%+v)", st.Nodes, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite overflow (%+v)", st)
	}
	// LRU: the most recent entries are resident, the oldest are not.
	before := QuadMemoMetrics().Hits
	objs[len(objs)-1].QuadratureCached(3)
	if QuadMemoMetrics().Hits != before+1 {
		t.Fatal("most recent entry was evicted")
	}
	objs[0].QuadratureCached(3)
	if QuadMemoMetrics().Hits != before+1 {
		t.Fatal("oldest entry survived past the cap")
	}

	// An entry larger than the whole cache must not wipe the memo.
	entriesBefore := QuadMemoMetrics().Entries
	big := NewUniformPDF(99, memoRegion())
	if got := big.QuadratureCached(11); len(got) != 121 {
		t.Fatalf("oversized rule has %d nodes, want 121", len(got))
	}
	if after := QuadMemoMetrics(); after.Entries < entriesBefore {
		t.Fatalf("oversized rule evicted resident entries: %d -> %d", entriesBefore, after.Entries)
	}
}

func TestQuadMemoConcurrentSharing(t *testing.T) {
	ResetQuadMemo()
	defer ResetQuadMemo()
	o := NewGaussianPDF(7, memoRegion(), nil, nil)
	var wg sync.WaitGroup
	out := make([][]QuadNode, 16)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = o.QuadratureCached(6)
		}(i)
	}
	wg.Wait()
	var sum float64
	for _, n := range out[0] {
		sum += n.W
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	for i := 1; i < len(out); i++ {
		if len(out[i]) != len(out[0]) {
			t.Fatalf("goroutine %d saw %d nodes, want %d", i, len(out[i]), len(out[0]))
		}
	}
	st := QuadMemoMetrics()
	if st.Entries != 1 {
		t.Fatalf("%d entries resident after concurrent lookups of one key", st.Entries)
	}
}
