package uncertain

import (
	"math"

	"github.com/crsky/crsky/internal/geom"
)

// QuadNode is one node of a probability-weighted cubature rule over an
// uncertain object's region: evaluating Σ w_k · f(x_k) approximates
// E[f(X)] = ∫ f(x)·pdf(x) dx. The weights sum to 1.
type QuadNode struct {
	X geom.Point
	W float64
}

// Quadrature builds a tensor-product Gauss–Legendre cubature with nodesPerDim
// nodes along each dimension, weighted by the object's density. For the
// Uniform kind with polynomially-behaved integrands the rule is essentially
// exact; for Gaussian kinds it converges quickly because the truncated
// density is smooth on the region.
func (o *PDFObject) Quadrature(nodesPerDim int) []QuadNode {
	if nodesPerDim < 1 {
		nodesPerDim = 1
	}
	d := o.Dims()
	xs, ws := gaussLegendre(nodesPerDim)

	// Per-dimension nodes mapped to [Min, Max] and weights carrying the
	// normalized marginal density mass.
	nodes1 := make([][]float64, d)
	weights1 := make([][]float64, d)
	for i := 0; i < d; i++ {
		lo, hi := o.Region.Min[i], o.Region.Max[i]
		half := (hi - lo) / 2
		mid := (hi + lo) / 2
		nodes1[i] = make([]float64, nodesPerDim)
		weights1[i] = make([]float64, nodesPerDim)
		var total float64
		for k := 0; k < nodesPerDim; k++ {
			x := mid + half*xs[k]
			nodes1[i][k] = x
			w := ws[k] * half * o.marginalDensity1(i, x)
			weights1[i][k] = w
			total += w
		}
		// Renormalize so each marginal integrates to exactly 1,
		// removing the residual quadrature error from the total mass.
		if total > 0 {
			for k := range weights1[i] {
				weights1[i][k] /= total
			}
		} else {
			for k := range weights1[i] {
				weights1[i][k] = 1 / float64(nodesPerDim)
			}
		}
	}

	// Tensor product.
	count := 1
	for i := 0; i < d; i++ {
		count *= nodesPerDim
	}
	out := make([]QuadNode, 0, count)
	idx := make([]int, d)
	for {
		x := make(geom.Point, d)
		w := 1.0
		for i := 0; i < d; i++ {
			x[i] = nodes1[i][idx[i]]
			w *= weights1[i][idx[i]]
		}
		out = append(out, QuadNode{X: x, W: w})
		// Advance the mixed-radix counter.
		i := 0
		for ; i < d; i++ {
			idx[i]++
			if idx[i] < nodesPerDim {
				break
			}
			idx[i] = 0
		}
		if i == d {
			break
		}
	}
	return out
}

// marginalDensity1 is the normalized one-dimensional marginal density of
// dimension i at x (inside the region).
func (o *PDFObject) marginalDensity1(i int, x float64) float64 {
	lo, hi := o.Region.Min[i], o.Region.Max[i]
	if x < lo || x > hi {
		return 0
	}
	switch o.Kind {
	case Uniform:
		if hi == lo {
			return 1
		}
		return 1 / (hi - lo)
	case Gaussian:
		o.fillGaussianDefaults()
		mu, sg := o.Mean[i], o.Sigma[i]
		z := stdNormalCDF((hi-mu)/sg) - stdNormalCDF((lo-mu)/sg)
		if z <= 0 {
			return 1 / (hi - lo)
		}
		return stdNormalPDF((x-mu)/sg) / (sg * z)
	default:
		panic("uncertain: unknown pdf kind")
	}
}

// DefaultQuadNodes picks a per-dimension node count that keeps the tensor
// grid tractable as the dimensionality grows (the same trade-off the paper's
// pdf-model experiments face).
func DefaultQuadNodes(dims int) int {
	switch {
	case dims <= 1:
		return 48
	case dims == 2:
		return 24
	case dims == 3:
		return 12
	case dims == 4:
		return 8
	default:
		return 6
	}
}

// gaussLegendre returns the nodes and weights of the n-point Gauss–Legendre
// rule on [-1, 1], computed by Newton iteration on the Legendre polynomials.
func gaussLegendre(n int) (x, w []float64) {
	x = make([]float64, n)
	w = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess: Chebyshev-like approximation to the i-th root.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / float64(j+1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		x[i] = -z
		x[n-1-i] = z
		w[i] = 2 / ((1 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w
}
