package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func region2D() geom.Rect {
	return geom.NewRect(geom.Point{2, 10}, geom.Point{6, 14})
}

func TestUniformProb(t *testing.T) {
	o := NewUniformPDF(1, region2D())
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Whole region.
	if got := o.Prob(region2D()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Prob(region) = %v", got)
	}
	// Half along dim 0.
	half := geom.NewRect(geom.Point{2, 10}, geom.Point{4, 14})
	if got := o.Prob(half); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Prob(half) = %v", got)
	}
	// Quarter.
	quarter := geom.NewRect(geom.Point{2, 10}, geom.Point{4, 12})
	if got := o.Prob(quarter); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Prob(quarter) = %v", got)
	}
	// Disjoint box.
	if got := o.Prob(geom.NewRect(geom.Point{7, 7}, geom.Point{8, 8})); got != 0 {
		t.Fatalf("Prob(disjoint) = %v", got)
	}
	// Superset box.
	if got := o.Prob(geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Prob(superset) = %v", got)
	}
}

func TestGaussianProbProperties(t *testing.T) {
	o := NewGaussianPDF(1, region2D(), nil, nil)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.Prob(region2D()); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Prob(region) = %v", got)
	}
	// Mass concentrates around the center: central box beats a corner box
	// of the same size.
	center := geom.NewRect(geom.Point{3.5, 11.5}, geom.Point{4.5, 12.5})
	corner := geom.NewRect(geom.Point{2, 10}, geom.Point{3, 11})
	if o.Prob(center) <= o.Prob(corner) {
		t.Fatalf("central mass %v should exceed corner mass %v",
			o.Prob(center), o.Prob(corner))
	}
	// Symmetric halves are equal for the default centered mean.
	left := geom.NewRect(geom.Point{2, 10}, geom.Point{4, 14})
	right := geom.NewRect(geom.Point{4, 10}, geom.Point{6, 14})
	if math.Abs(o.Prob(left)-o.Prob(right)) > 1e-9 {
		t.Fatalf("symmetric halves differ: %v vs %v", o.Prob(left), o.Prob(right))
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	for _, kind := range []PDFKind{Uniform, Gaussian} {
		o := &PDFObject{ID: 1, Region: region2D(), Kind: kind}
		// Midpoint grid integration of the density.
		const n = 80
		var sum float64
		dx := o.Region.Side(0) / n
		dy := o.Region.Side(1) / n
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x := geom.Point{
					o.Region.Min[0] + (float64(i)+0.5)*dx,
					o.Region.Min[1] + (float64(j)+0.5)*dy,
				}
				sum += o.Density(x) * dx * dy
			}
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%v density integrates to %v", kind, sum)
		}
		if o.Density(geom.Point{0, 0}) != 0 {
			t.Errorf("%v density outside region must be 0", kind)
		}
	}
}

func TestProbMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	box := geom.NewRect(geom.Point{3, 11}, geom.Point{5, 13})
	for _, kind := range []PDFKind{Uniform, Gaussian} {
		o := &PDFObject{ID: 1, Region: region2D(), Kind: kind}
		exact := o.Prob(box)
		const n = 200_000
		hits := 0
		for i := 0; i < n; i++ {
			if box.ContainsPoint(o.SampleFrom(rng)) {
				hits++
			}
		}
		mc := float64(hits) / n
		if math.Abs(mc-exact) > 0.01 {
			t.Errorf("%v: Monte Carlo %v vs exact %v", kind, mc, exact)
		}
	}
}

func TestDiscretize(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	o := NewUniformPDF(5, region2D())
	d := o.Discretize(64, rng)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ID != 5 || len(d.Samples) != 64 {
		t.Fatalf("bad discretization: id=%d n=%d", d.ID, len(d.Samples))
	}
	for _, s := range d.Samples {
		if !o.Region.ContainsPoint(s.Loc) {
			t.Fatalf("sample %v escapes the region", s.Loc)
		}
	}
}

func TestPDFValidateFailures(t *testing.T) {
	bad := &PDFObject{ID: 1, Region: geom.Rect{Min: geom.Point{1, 1}, Max: geom.Point{0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid region should fail validation")
	}
	badKind := &PDFObject{ID: 2, Region: region2D(), Kind: PDFKind(42)}
	if err := badKind.Validate(); err == nil {
		t.Error("unknown kind should fail validation")
	}
	badSigma := &PDFObject{ID: 3, Region: region2D(), Kind: Gaussian, Sigma: geom.Point{1, -1}}
	if err := badSigma.Validate(); err == nil {
		t.Error("negative sigma should fail validation")
	}
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" {
		t.Error("PDFKind.String broken")
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// n-point Gauss-Legendre integrates polynomials of degree 2n-1 exactly.
	x, w := gaussLegendre(5)
	integrate := func(f func(float64) float64) float64 {
		var s float64
		for i := range x {
			s += w[i] * f(x[i])
		}
		return s
	}
	if got := integrate(func(float64) float64 { return 1 }); math.Abs(got-2) > 1e-12 {
		t.Errorf("∫1 = %v, want 2", got)
	}
	if got := integrate(func(t float64) float64 { return t * t }); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("∫t² = %v, want 2/3", got)
	}
	if got := integrate(func(t float64) float64 { return math.Pow(t, 8) }); math.Abs(got-2.0/9) > 1e-12 {
		t.Errorf("∫t⁸ = %v, want 2/9", got)
	}
	if got := integrate(func(t float64) float64 { return t }); math.Abs(got) > 1e-12 {
		t.Errorf("∫t = %v, want 0", got)
	}
}

func TestQuadratureExpectation(t *testing.T) {
	for _, kind := range []PDFKind{Uniform, Gaussian} {
		o := &PDFObject{ID: 1, Region: region2D(), Kind: kind}
		nodes := o.Quadrature(16)
		var wsum float64
		var mean geom.Point = geom.Point{0, 0}
		for _, n := range nodes {
			wsum += n.W
			mean[0] += n.W * n.X[0]
			mean[1] += n.W * n.X[1]
			if !o.Region.ContainsPoint(n.X) {
				t.Fatalf("%v: node %v escapes region", kind, n.X)
			}
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Errorf("%v: weights sum to %v", kind, wsum)
		}
		// Both kinds are symmetric about the center here.
		c := o.Region.Center()
		if math.Abs(mean[0]-c[0]) > 1e-6 || math.Abs(mean[1]-c[1]) > 1e-6 {
			t.Errorf("%v: quadrature mean %v, want %v", kind, mean, c)
		}
	}
}

func TestQuadratureEstimatesProb(t *testing.T) {
	// E[1_box(X)] should approximate Prob(box). Indicator functions are
	// discontinuous, so allow a loose tolerance.
	box := geom.NewRect(geom.Point{3, 11}, geom.Point{5, 13})
	for _, kind := range []PDFKind{Uniform, Gaussian} {
		o := &PDFObject{ID: 1, Region: region2D(), Kind: kind}
		nodes := o.Quadrature(40)
		var est float64
		for _, n := range nodes {
			if box.ContainsPoint(n.X) {
				est += n.W
			}
		}
		if math.Abs(est-o.Prob(box)) > 0.05 {
			t.Errorf("%v: quadrature %v vs exact %v", kind, est, o.Prob(box))
		}
	}
}

func TestDefaultQuadNodes(t *testing.T) {
	if DefaultQuadNodes(1) < DefaultQuadNodes(3) {
		t.Error("node count should not grow with dimensionality")
	}
	for d := 1; d <= 6; d++ {
		n := DefaultQuadNodes(d)
		total := math.Pow(float64(n), float64(d))
		if total > 2e6 {
			t.Errorf("d=%d: tensor grid too large (%g)", d, total)
		}
	}
}
