package uncertain

import (
	"math"
	"strings"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func TestNewUniform(t *testing.T) {
	o := NewUniform(7, []geom.Point{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	if o.ID != 7 || len(o.Samples) != 4 {
		t.Fatalf("bad object: %+v", o)
	}
	for _, s := range o.Samples {
		if s.P != 0.25 {
			t.Fatalf("sample probability %v, want 0.25", s.P)
		}
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if o.Dims() != 2 {
		t.Fatalf("Dims = %d", o.Dims())
	}
}

func TestNewUniformEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample list")
		}
	}()
	NewUniform(0, nil)
}

func TestCertain(t *testing.T) {
	o := Certain(3, geom.Point{9, 9})
	if !o.IsCertain() {
		t.Fatal("Certain object should report IsCertain")
	}
	if !o.Loc().Equal(geom.Point{9, 9}) {
		t.Fatalf("Loc = %v", o.Loc())
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	u := NewUniform(4, []geom.Point{{1, 1}, {2, 2}})
	if u.IsCertain() {
		t.Fatal("two-sample object must not be certain")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Loc on multi-sample object should panic")
		}
	}()
	u.Loc()
}

func TestMBR(t *testing.T) {
	o := NewUniform(1, []geom.Point{{1, 5}, {3, 2}, {2, 7}})
	mbr := o.MBR()
	if !mbr.Min.Equal(geom.Point{1, 2}) || !mbr.Max.Equal(geom.Point{3, 7}) {
		t.Fatalf("MBR = %v", mbr)
	}
	c := Certain(2, geom.Point{4, 4})
	if c.MBR().Volume() != 0 {
		t.Fatal("certain object MBR should be degenerate")
	}
}

func TestValidateFailures(t *testing.T) {
	cases := map[string]*Object{
		"no samples":    {ID: 1},
		"zero dim":      {ID: 2, Samples: []Sample{{Loc: geom.Point{}, P: 1}}},
		"mixed dims":    {ID: 3, Samples: []Sample{{Loc: geom.Point{1}, P: 0.5}, {Loc: geom.Point{1, 2}, P: 0.5}}},
		"bad prob":      {ID: 4, Samples: []Sample{{Loc: geom.Point{1}, P: 0}, {Loc: geom.Point{2}, P: 1}}},
		"prob over one": {ID: 5, Samples: []Sample{{Loc: geom.Point{1}, P: 1.5}}},
		"sum not one":   {ID: 6, Samples: []Sample{{Loc: geom.Point{1}, P: 0.3}, {Loc: geom.Point{2}, P: 0.3}}},
		"nan coord":     {ID: 7, Samples: []Sample{{Loc: geom.Point{math.NaN()}, P: 1}}},
		"nan prob":      {ID: 8, Samples: []Sample{{Loc: geom.Point{1}, P: math.NaN()}}},
	}
	for name, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		} else if !strings.Contains(err.Error(), "object") {
			t.Errorf("%s: error %q should mention the object", name, err)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	o := NewUniform(1, []geom.Point{{1, 1}, {2, 2}})
	c := o.Clone()
	c.Samples[0].Loc[0] = 99
	c.Samples[1].P = 0.9
	if o.Samples[0].Loc[0] != 1 || o.Samples[1].P != 0.5 {
		t.Fatal("Clone aliases the original")
	}
}
