package uncertain

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultQuadMemoNodeCap bounds the total number of QuadNodes the process-
// wide quadrature memo may hold. Each resident node costs 32 bytes of
// struct (24-byte point slice header + weight) plus an 8·dims-byte
// coordinate array and its allocator overhead, so the default cap bounds
// the memo at roughly 50–100 MB depending on dimensionality. The cap is
// counted in nodes rather than entries because an entry's size varies by
// orders of magnitude with (nodesPerDim)^dims.
const DefaultQuadMemoNodeCap = 1 << 20

// quadMemo is the process-wide cubature cache keyed by (object identity,
// nodesPerDim). PDFObjects are immutable once built, so identity keying is
// sound; keys pin their objects in memory only while resident, and eviction
// is LRU by total node count so a long-lived crskyd process converges to at
// most nodeCap nodes regardless of how many datasets come and go.
type quadMemo struct {
	mu      sync.Mutex
	nodeCap int
	nodes   int
	order   *list.List // front = most recently used; values are *quadMemoEntry
	byKey   map[quadMemoKey]*list.Element

	hits, misses, evictions atomic.Int64
}

type quadMemoKey struct {
	obj *PDFObject
	k   int
}

type quadMemoEntry struct {
	key   quadMemoKey
	nodes []QuadNode
}

var memo = &quadMemo{
	nodeCap: DefaultQuadMemoNodeCap,
	order:   list.New(),
	byKey:   make(map[quadMemoKey]*list.Element),
}

// QuadratureCached is Quadrature backed by the process-wide memo: repeated
// queries against the same object reuse the derived cubature instead of
// re-running the Newton iterations and density normalization. The returned
// slice is shared — callers must treat it as read-only.
func (o *PDFObject) QuadratureCached(nodesPerDim int) []QuadNode {
	if nodesPerDim < 1 {
		nodesPerDim = 1
	}
	key := quadMemoKey{obj: o, k: nodesPerDim}

	memo.mu.Lock()
	if el, ok := memo.byKey[key]; ok {
		memo.order.MoveToFront(el)
		memo.mu.Unlock()
		memo.hits.Add(1)
		return el.Value.(*quadMemoEntry).nodes
	}
	memo.mu.Unlock()
	memo.misses.Add(1)

	nodes := o.Quadrature(nodesPerDim)

	memo.mu.Lock()
	defer memo.mu.Unlock()
	if el, ok := memo.byKey[key]; ok {
		// Another goroutine computed the same rule while we did; keep the
		// resident copy so every caller shares one slice.
		memo.order.MoveToFront(el)
		return el.Value.(*quadMemoEntry).nodes
	}
	if len(nodes) > memo.nodeCap {
		// Larger than the whole cache: hand it to the caller uncached
		// rather than evicting everything for a single entry.
		return nodes
	}
	memo.byKey[key] = memo.order.PushFront(&quadMemoEntry{key: key, nodes: nodes})
	memo.nodes += len(nodes)
	for memo.nodes > memo.nodeCap {
		last := memo.order.Back()
		ent := last.Value.(*quadMemoEntry)
		memo.order.Remove(last)
		delete(memo.byKey, ent.key)
		memo.nodes -= len(ent.nodes)
		memo.evictions.Add(1)
	}
	return nodes
}

// QuadMemoStats is a point-in-time snapshot of the quadrature memo.
type QuadMemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Nodes     int   `json:"nodes"`
	NodeCap   int   `json:"nodeCap"`
}

// HitRate returns the fraction of lookups served from the memo (0 before
// any lookup).
func (s QuadMemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// QuadMemoMetrics snapshots the process-wide quadrature memo counters.
func QuadMemoMetrics() QuadMemoStats {
	memo.mu.Lock()
	entries, nodes, cap := len(memo.byKey), memo.nodes, memo.nodeCap
	memo.mu.Unlock()
	return QuadMemoStats{
		Hits:      memo.hits.Load(),
		Misses:    memo.misses.Load(),
		Evictions: memo.evictions.Load(),
		Entries:   entries,
		Nodes:     nodes,
		NodeCap:   cap,
	}
}

// SetQuadMemoNodeCap resizes the memo (<= 0 restores the default), evicting
// LRU entries until the new cap holds, and returns the previous cap. Mostly
// a test hook; production processes keep the default.
func SetQuadMemoNodeCap(n int) int {
	if n <= 0 {
		n = DefaultQuadMemoNodeCap
	}
	memo.mu.Lock()
	defer memo.mu.Unlock()
	prev := memo.nodeCap
	memo.nodeCap = n
	for memo.nodes > memo.nodeCap {
		last := memo.order.Back()
		ent := last.Value.(*quadMemoEntry)
		memo.order.Remove(last)
		delete(memo.byKey, ent.key)
		memo.nodes -= len(ent.nodes)
		memo.evictions.Add(1)
	}
	return prev
}

// ResetQuadMemo drops every cached rule and zeroes the counters (test hook).
func ResetQuadMemo() {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.order.Init()
	memo.byKey = make(map[quadMemoKey]*list.Element)
	memo.nodes = 0
	memo.hits.Store(0)
	memo.misses.Store(0)
	memo.evictions.Store(0)
}
