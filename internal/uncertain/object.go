// Package uncertain implements the paper's two uncertain data models: the
// discrete sample model (each object is a set of mutually exclusive samples
// with appearance probabilities summing to one) and the continuous pdf model
// (an uncertainty region with a uniform or truncated-Gaussian density).
// Objects in a dataset are independent of each other, as assumed throughout
// the paper.
package uncertain

import (
	"fmt"
	"math"
	"sync"

	"github.com/crsky/crsky/internal/geom"
)

// ProbEps is the tolerance used when validating that sample probabilities
// sum to one and when comparing probabilities elsewhere in the system.
const ProbEps = 1e-9

// Sample is one possible location of an uncertain object together with its
// appearance probability.
type Sample struct {
	Loc geom.Point
	P   float64
}

// Object is a discrete-sample uncertain object. Exactly one of its samples
// materializes in any possible world.
type Object struct {
	ID      int
	Samples []Sample

	soaOnce sync.Once
	soa     *SoA
}

// SoA is a structure-of-arrays view of an object's samples: coordinates
// stored per-dimension contiguously plus a flat probability slice. Dominance
// tests over many samples stream each dimension's array sequentially (and
// usually reject on dimension 0 without touching the others), instead of
// chasing one slice header per sample — the layout the evaluator-construction
// hot loop wants. The view preserves sample order exactly, so probability
// sums accumulate in the same order as the Samples slice and results are
// bit-identical to the AoS path.
type SoA struct {
	// Coords[d][i] is the d-th coordinate of sample i.
	Coords [][]float64
	// Probs[i] is the appearance probability of sample i.
	Probs []float64
}

// Len returns the number of samples in the view.
func (s *SoA) Len() int { return len(s.Probs) }

// SoA returns the structure-of-arrays view of the object's samples, built on
// first use and cached (concurrent first calls are safe). The view aliases
// nothing: mutating Samples after the first SoA call leaves a stale view, so
// treat objects as immutable once queried — every engine already does.
func (o *Object) SoA() *SoA {
	o.soaOnce.Do(func() {
		d := o.Dims()
		s := &SoA{
			Coords: make([][]float64, d),
			Probs:  make([]float64, len(o.Samples)),
		}
		flat := make([]float64, d*len(o.Samples))
		for k := 0; k < d; k++ {
			s.Coords[k] = flat[k*len(o.Samples) : (k+1)*len(o.Samples)]
		}
		for i, sm := range o.Samples {
			s.Probs[i] = sm.P
			for k := 0; k < d; k++ {
				s.Coords[k][i] = sm.Loc[k]
			}
		}
		o.soa = s
	})
	return o.soa
}

// New builds an object from explicit samples without validating them; call
// Validate before trusting external input.
func New(id int, samples []Sample) *Object {
	return &Object{ID: id, Samples: samples}
}

// NewUniform builds an object whose samples share equal probability 1/n,
// the convention used by the paper's running examples and the NBA dataset.
func NewUniform(id int, locs []geom.Point) *Object {
	if len(locs) == 0 {
		panic("uncertain: object needs at least one sample")
	}
	p := 1 / float64(len(locs))
	samples := make([]Sample, len(locs))
	for i, l := range locs {
		samples[i] = Sample{Loc: l.Clone(), P: p}
	}
	return &Object{ID: id, Samples: samples}
}

// Certain builds the degenerate one-sample object with probability 1, which
// is how Section 4 treats certain data.
func Certain(id int, loc geom.Point) *Object {
	return &Object{ID: id, Samples: []Sample{{Loc: loc.Clone(), P: 1}}}
}

// Dims returns the dimensionality of the object's samples (0 when empty).
func (o *Object) Dims() int {
	if len(o.Samples) == 0 {
		return 0
	}
	return o.Samples[0].Loc.Dims()
}

// IsCertain reports whether the object degenerates to certain data: a single
// sample with probability 1.
func (o *Object) IsCertain() bool {
	return len(o.Samples) == 1 && math.Abs(o.Samples[0].P-1) <= ProbEps
}

// Loc returns the single location of a certain object and panics otherwise.
func (o *Object) Loc() geom.Point {
	if len(o.Samples) != 1 {
		panic(fmt.Sprintf("uncertain: object %d has %d samples, not certain", o.ID, len(o.Samples)))
	}
	return o.Samples[0].Loc
}

// MBR returns the minimum bounding rectangle of the object's samples —
// the uncertain region indexed by the R-tree.
func (o *Object) MBR() geom.Rect {
	r := geom.PointRect(o.Samples[0].Loc)
	for _, s := range o.Samples[1:] {
		r.ExpandToPoint(s.Loc)
	}
	return r
}

// Validate checks structural soundness: at least one sample, consistent
// dimensionality, finite coordinates, probabilities in (0,1] summing to 1.
func (o *Object) Validate() error {
	if len(o.Samples) == 0 {
		return fmt.Errorf("object %d: no samples", o.ID)
	}
	d := o.Samples[0].Loc.Dims()
	if d == 0 {
		return fmt.Errorf("object %d: zero-dimensional sample", o.ID)
	}
	var sum float64
	for i, s := range o.Samples {
		if s.Loc.Dims() != d {
			return fmt.Errorf("object %d: sample %d has %d dims, want %d", o.ID, i, s.Loc.Dims(), d)
		}
		if !s.Loc.IsFinite() {
			return fmt.Errorf("object %d: sample %d has non-finite coordinates", o.ID, i)
		}
		if math.IsNaN(s.P) || s.P <= 0 || s.P > 1 {
			return fmt.Errorf("object %d: sample %d probability %v out of (0,1]", o.ID, i, s.P)
		}
		sum += s.P
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("object %d: sample probabilities sum to %v, want 1", o.ID, sum)
	}
	return nil
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	samples := make([]Sample, len(o.Samples))
	for i, s := range o.Samples {
		samples[i] = Sample{Loc: s.Loc.Clone(), P: s.P}
	}
	return &Object{ID: o.ID, Samples: samples}
}
