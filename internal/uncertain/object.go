// Package uncertain implements the paper's two uncertain data models: the
// discrete sample model (each object is a set of mutually exclusive samples
// with appearance probabilities summing to one) and the continuous pdf model
// (an uncertainty region with a uniform or truncated-Gaussian density).
// Objects in a dataset are independent of each other, as assumed throughout
// the paper.
package uncertain

import (
	"fmt"
	"math"

	"github.com/crsky/crsky/internal/geom"
)

// ProbEps is the tolerance used when validating that sample probabilities
// sum to one and when comparing probabilities elsewhere in the system.
const ProbEps = 1e-9

// Sample is one possible location of an uncertain object together with its
// appearance probability.
type Sample struct {
	Loc geom.Point
	P   float64
}

// Object is a discrete-sample uncertain object. Exactly one of its samples
// materializes in any possible world.
type Object struct {
	ID      int
	Samples []Sample
}

// New builds an object from explicit samples without validating them; call
// Validate before trusting external input.
func New(id int, samples []Sample) *Object {
	return &Object{ID: id, Samples: samples}
}

// NewUniform builds an object whose samples share equal probability 1/n,
// the convention used by the paper's running examples and the NBA dataset.
func NewUniform(id int, locs []geom.Point) *Object {
	if len(locs) == 0 {
		panic("uncertain: object needs at least one sample")
	}
	p := 1 / float64(len(locs))
	samples := make([]Sample, len(locs))
	for i, l := range locs {
		samples[i] = Sample{Loc: l.Clone(), P: p}
	}
	return &Object{ID: id, Samples: samples}
}

// Certain builds the degenerate one-sample object with probability 1, which
// is how Section 4 treats certain data.
func Certain(id int, loc geom.Point) *Object {
	return &Object{ID: id, Samples: []Sample{{Loc: loc.Clone(), P: 1}}}
}

// Dims returns the dimensionality of the object's samples (0 when empty).
func (o *Object) Dims() int {
	if len(o.Samples) == 0 {
		return 0
	}
	return o.Samples[0].Loc.Dims()
}

// IsCertain reports whether the object degenerates to certain data: a single
// sample with probability 1.
func (o *Object) IsCertain() bool {
	return len(o.Samples) == 1 && math.Abs(o.Samples[0].P-1) <= ProbEps
}

// Loc returns the single location of a certain object and panics otherwise.
func (o *Object) Loc() geom.Point {
	if len(o.Samples) != 1 {
		panic(fmt.Sprintf("uncertain: object %d has %d samples, not certain", o.ID, len(o.Samples)))
	}
	return o.Samples[0].Loc
}

// MBR returns the minimum bounding rectangle of the object's samples —
// the uncertain region indexed by the R-tree.
func (o *Object) MBR() geom.Rect {
	r := geom.PointRect(o.Samples[0].Loc)
	for _, s := range o.Samples[1:] {
		r.ExpandToPoint(s.Loc)
	}
	return r
}

// Validate checks structural soundness: at least one sample, consistent
// dimensionality, finite coordinates, probabilities in (0,1] summing to 1.
func (o *Object) Validate() error {
	if len(o.Samples) == 0 {
		return fmt.Errorf("object %d: no samples", o.ID)
	}
	d := o.Samples[0].Loc.Dims()
	if d == 0 {
		return fmt.Errorf("object %d: zero-dimensional sample", o.ID)
	}
	var sum float64
	for i, s := range o.Samples {
		if s.Loc.Dims() != d {
			return fmt.Errorf("object %d: sample %d has %d dims, want %d", o.ID, i, s.Loc.Dims(), d)
		}
		if !s.Loc.IsFinite() {
			return fmt.Errorf("object %d: sample %d has non-finite coordinates", o.ID, i)
		}
		if math.IsNaN(s.P) || s.P <= 0 || s.P > 1 {
			return fmt.Errorf("object %d: sample %d probability %v out of (0,1]", o.ID, i, s.P)
		}
		sum += s.P
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("object %d: sample probabilities sum to %v, want 1", o.ID, sum)
	}
	return nil
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	samples := make([]Sample, len(o.Samples))
	for i, s := range o.Samples {
		samples[i] = Sample{Loc: s.Loc.Clone(), P: s.P}
	}
	return &Object{ID: o.ID, Samples: samples}
}
