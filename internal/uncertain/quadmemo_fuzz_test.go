package uncertain

import (
	"math"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

// FuzzQuadratureMemo hammers the cubature builder and its memo with
// byte-derived geometry: degenerate (zero-width) regions, tiny and skewed
// Gaussian parameters, k = 0/1 edge cases, and caps small enough to force
// eviction mid-sequence. Properties: no panic, finite nodes inside the
// region, weights summing to 1, and the cached rule bit-identical to a
// fresh derivation.
func FuzzQuadratureMemo(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(1), false, uint16(0))
	f.Add(uint8(10), uint8(0), uint8(20), uint8(5), uint8(0), true, uint16(50)) // k=0, tight cap
	f.Add(uint8(255), uint8(255), uint8(1), uint8(1), uint8(7), true, uint16(9))
	f.Add(uint8(3), uint8(3), uint8(0), uint8(0), uint8(4), false, uint16(1000)) // zero-width region

	f.Fuzz(func(t *testing.T, loRaw, loRaw2, wRaw, hRaw, kRaw uint8, gaussian bool, capRaw uint16) {
		ResetQuadMemo()
		prev := SetQuadMemoNodeCap(int(capRaw)%2000 + 1)
		defer func() {
			SetQuadMemoNodeCap(prev)
			ResetQuadMemo()
		}()

		lo := geom.Point{float64(loRaw) / 4, float64(loRaw2) / 4}
		hi := geom.Point{lo[0] + float64(wRaw)/8, lo[1] + float64(hRaw)/8}
		region := geom.Rect{Min: lo, Max: hi}
		var o *PDFObject
		if gaussian {
			o = NewGaussianPDF(1, region, nil, nil)
		} else {
			o = NewUniformPDF(1, region)
		}
		if err := o.Validate(); err != nil {
			return
		}
		k := int(kRaw) % 10 // includes 0 and 1

		fresh := o.Quadrature(k)
		cached := o.QuadratureCached(k)
		if len(fresh) != len(cached) {
			t.Fatalf("k=%d: cached %d nodes, fresh %d", k, len(cached), len(fresh))
		}
		var sum float64
		for i := range fresh {
			if fresh[i].W != cached[i].W || !fresh[i].X.Equal(cached[i].X) {
				t.Fatalf("k=%d node %d: cached %+v, fresh %+v", k, i, cached[i], fresh[i])
			}
			if math.IsNaN(cached[i].W) || math.IsInf(cached[i].W, 0) {
				t.Fatalf("k=%d node %d: non-finite weight %v", k, i, cached[i].W)
			}
			for d, x := range cached[i].X {
				if math.IsNaN(x) || x < region.Min[d]-1e-9 || x > region.Max[d]+1e-9 {
					t.Fatalf("k=%d node %d: coordinate %v escapes region %v", k, i, x, region)
				}
			}
			sum += cached[i].W
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("k=%d: weights sum to %v, want 1", k, sum)
		}

		// Second derivation at a different resolution, then re-read the
		// first: whatever the cap evicted, contents must stay correct.
		o.QuadratureCached(k + 1)
		again := o.QuadratureCached(k)
		if len(again) != len(fresh) {
			t.Fatalf("k=%d: re-read has %d nodes, want %d", k, len(again), len(fresh))
		}
		for i := range again {
			if again[i].W != fresh[i].W || !again[i].X.Equal(fresh[i].X) {
				t.Fatalf("k=%d node %d after eviction churn: %+v, want %+v", k, i, again[i], fresh[i])
			}
		}
		st := QuadMemoMetrics()
		if st.Nodes > st.NodeCap {
			t.Fatalf("memo holds %d nodes over cap %d", st.Nodes, st.NodeCap)
		}
	})
}
