package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/crsky/crsky/internal/geom"
)

// PDFKind selects the density family of a continuous uncertain object.
type PDFKind int

const (
	// Uniform spreads mass evenly over the uncertainty region.
	Uniform PDFKind = iota
	// Gaussian uses a per-dimension truncated normal centered in the
	// region (independent coordinates, as assumed by the paper).
	Gaussian
)

func (k PDFKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("PDFKind(%d)", int(k))
	}
}

// PDFObject is a continuous-model uncertain object: an axis-aligned
// uncertainty region UR with a separable density over it. Coordinates are
// independent, so every probability over an axis-aligned box factorizes
// into per-dimension integrals — the property the pdf-model algorithms in
// Section 3.2 rely on.
type PDFObject struct {
	ID     int
	Region geom.Rect
	Kind   PDFKind
	// Mean and Sigma parametrize the Gaussian kind (ignored for Uniform).
	// Zero values default to the region center and a quarter side length.
	Mean  geom.Point
	Sigma geom.Point
}

// NewUniformPDF builds a uniform-density object over region.
func NewUniformPDF(id int, region geom.Rect) *PDFObject {
	return &PDFObject{ID: id, Region: region.Clone(), Kind: Uniform}
}

// NewGaussianPDF builds a truncated-Gaussian object over region. Nil mean or
// sigma select the defaults (center, side/4).
func NewGaussianPDF(id int, region geom.Rect, mean, sigma geom.Point) *PDFObject {
	o := &PDFObject{ID: id, Region: region.Clone(), Kind: Gaussian}
	if mean != nil {
		o.Mean = mean.Clone()
	}
	if sigma != nil {
		o.Sigma = sigma.Clone()
	}
	o.fillGaussianDefaults()
	return o
}

func (o *PDFObject) fillGaussianDefaults() {
	d := o.Region.Dims()
	if o.Mean == nil {
		o.Mean = o.Region.Center()
	}
	if o.Sigma == nil {
		o.Sigma = make(geom.Point, d)
		for i := 0; i < d; i++ {
			s := o.Region.Side(i) / 4
			if s == 0 {
				s = 1e-12
			}
			o.Sigma[i] = s
		}
	}
}

// Dims returns the dimensionality of the object.
func (o *PDFObject) Dims() int { return o.Region.Dims() }

// Validate checks structural soundness of the pdf object.
func (o *PDFObject) Validate() error {
	if !o.Region.Valid() {
		return fmt.Errorf("pdf object %d: invalid region %v", o.ID, o.Region)
	}
	if o.Kind != Uniform && o.Kind != Gaussian {
		return fmt.Errorf("pdf object %d: unknown pdf kind %d", o.ID, int(o.Kind))
	}
	if o.Kind == Gaussian {
		d := o.Region.Dims()
		if o.Mean != nil && o.Mean.Dims() != d {
			return fmt.Errorf("pdf object %d: mean dims %d, want %d", o.ID, o.Mean.Dims(), d)
		}
		if o.Sigma != nil {
			if o.Sigma.Dims() != d {
				return fmt.Errorf("pdf object %d: sigma dims %d, want %d", o.ID, o.Sigma.Dims(), d)
			}
			for i, s := range o.Sigma {
				if s <= 0 || math.IsNaN(s) {
					return fmt.Errorf("pdf object %d: sigma[%d]=%v must be positive", o.ID, i, s)
				}
			}
		}
	}
	return nil
}

// cdf1 returns the mass of the object's dimension-i marginal on (-inf, x],
// already renormalized to the truncation interval [Region.Min[i], Max[i]].
func (o *PDFObject) cdf1(i int, x float64) float64 {
	lo, hi := o.Region.Min[i], o.Region.Max[i]
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	switch o.Kind {
	case Uniform:
		if hi == lo {
			return 1
		}
		return (x - lo) / (hi - lo)
	case Gaussian:
		o.fillGaussianDefaults()
		mu, sg := o.Mean[i], o.Sigma[i]
		den := stdNormalCDF((hi-mu)/sg) - stdNormalCDF((lo-mu)/sg)
		if den <= 0 {
			// Degenerate truncation: fall back to uniform.
			return (x - lo) / (hi - lo)
		}
		return (stdNormalCDF((x-mu)/sg) - stdNormalCDF((lo-mu)/sg)) / den
	default:
		panic("uncertain: unknown pdf kind")
	}
}

// Prob returns the probability mass of the object inside the axis-aligned
// box r. Thanks to coordinate independence this is an exact product of
// per-dimension interval masses — the closed form behind the pdf-model
// variant of the candidate filter.
func (o *PDFObject) Prob(r geom.Rect) float64 {
	d := o.Dims()
	if r.Dims() != d {
		panic("uncertain: rect dimensionality mismatch")
	}
	p := 1.0
	for i := 0; i < d; i++ {
		m := o.cdf1(i, r.Max[i]) - o.cdf1(i, r.Min[i])
		if m <= 0 {
			return 0
		}
		p *= m
	}
	return p
}

// Density returns the pdf value at x (0 outside the region).
func (o *PDFObject) Density(x geom.Point) float64 {
	d := o.Dims()
	if x.Dims() != d {
		panic("uncertain: point dimensionality mismatch")
	}
	if !o.Region.ContainsPoint(x) {
		return 0
	}
	den := 1.0
	switch o.Kind {
	case Uniform:
		v := o.Region.Volume()
		if v == 0 {
			return math.Inf(1)
		}
		return 1 / v
	case Gaussian:
		o.fillGaussianDefaults()
		for i := 0; i < d; i++ {
			lo, hi := o.Region.Min[i], o.Region.Max[i]
			mu, sg := o.Mean[i], o.Sigma[i]
			z := stdNormalCDF((hi-mu)/sg) - stdNormalCDF((lo-mu)/sg)
			if z <= 0 {
				den *= 1 / (hi - lo)
				continue
			}
			den *= stdNormalPDF((x[i]-mu)/sg) / (sg * z)
		}
		return den
	default:
		panic("uncertain: unknown pdf kind")
	}
}

// SampleFrom draws one random point from the object's density.
func (o *PDFObject) SampleFrom(rng *rand.Rand) geom.Point {
	d := o.Dims()
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		u := rng.Float64()
		p[i] = o.invCDF1(i, u)
	}
	return p
}

// invCDF1 inverts cdf1 by bisection (cdf1 is monotone on the region).
func (o *PDFObject) invCDF1(i int, u float64) float64 {
	lo, hi := o.Region.Min[i], o.Region.Max[i]
	if o.Kind == Uniform {
		return lo + u*(hi-lo)
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if o.cdf1(i, mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Discretize approximates the continuous object with n equally probable
// random samples. Used to cross-validate the pdf-model algorithms against
// the discrete-sample implementations.
func (o *PDFObject) Discretize(n int, rng *rand.Rand) *Object {
	locs := make([]geom.Point, n)
	for i := range locs {
		locs[i] = o.SampleFrom(rng)
	}
	obj := NewUniform(o.ID, locs)
	return obj
}

// stdNormalCDF is Φ(z) for the standard normal distribution.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalPDF is φ(z) for the standard normal distribution.
func stdNormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}
