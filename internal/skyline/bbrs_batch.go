package skyline

import (
	"container/heap"
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
)

// ReverseSkylineBBRSBatch answers many reverse-skyline queries with ONE
// best-first traversal sharing the R-tree frontier across all query points:
// each heap item carries the set of queries for which its subtree is still
// unpruned, a popped node is charged to the access counter once regardless
// of how many queries needed it, and a subtree is descended only while at
// least one query keeps it alive. Answers are element-wise identical to
// per-query ReverseSkylineBBRS: the pruning rule discards a subtree only
// when an already-found candidate of that query proves every point inside
// is a non-member — sound in any traversal order — and the final
// window-query verification is exact, so the per-query candidate supersets
// collapse to the same reverse skylines the solo traversals produce.
//
// After the shared traversal each query's candidates are verified in
// ascending query order; emit (optional) observes every result exactly
// once, in that order, as soon as its verification finishes. Returning
// false from emit abandons the remaining queries: the call returns the
// prefix computed so far with done=false.
func (ix *Index) ReverseSkylineBBRSBatch(qs []geom.Point, emit func(k int, ids []int) bool) (out [][]int, done bool) {
	for _, q := range qs {
		if q.Dims() != ix.dims {
			panic("skyline: query dimensionality mismatch")
		}
	}
	out = make([][]int, len(qs))
	candidates := make([][]int, len(qs))

	// Per-query pruning, identical to the single-query closures but
	// parameterized by the query index (each query prunes against its OWN
	// candidate set — candidates certify non-membership only for the query
	// they were collected under).
	prunedRect := func(k int, r geom.Rect) bool {
		q := qs[k]
		if !geom.InSingleQuadrant(r, q) {
			return false
		}
		near := r.NearestCorner(q)
		for _, c := range candidates[k] {
			if geom.DynDominates(ix.pts[c], q, near) {
				return true
			}
		}
		return false
	}
	prunedPoint := func(k int, p geom.Point) bool {
		q := qs[k]
		for _, c := range candidates[k] {
			if geom.DynDominates(ix.pts[c], q, p) {
				return true
			}
		}
		return false
	}

	if root, ok := ix.tree.RootHandle(); ok && len(qs) > 0 {
		all := make([]int, len(qs))
		for k := range all {
			all[k] = k
		}
		h := &bbrsBatchHeap{}
		heap.Push(h, bbrsBatchItem{key: 0, node: &root, active: all})
		for h.Len() > 0 {
			it := heap.Pop(h).(bbrsBatchItem)
			if it.node != nil {
				n := *it.node
				// Union access accounting: the node is read once, however
				// many queries' frontiers it sits on.
				ix.tree.RecordAccess()
				for i := 0; i < n.NumEntries(); i++ {
					r := n.EntryRect(i)
					var surviving []int
					key := 0.0
					for _, k := range it.active {
						if prunedRect(k, r) {
							continue
						}
						if d := transformedL1(r, qs[k]); len(surviving) == 0 || d < key {
							key = d
						}
						surviving = append(surviving, k)
					}
					if len(surviving) == 0 {
						continue
					}
					// The traversal key is the best key any live query gives
					// the entry: the shared frontier stays best-first for
					// whichever query would reach it soonest, so near-q
					// points keep arriving early enough to prune for
					// everyone.
					child := bbrsBatchItem{key: key, active: surviving}
					if n.IsLeaf() {
						child.id = n.EntryID(i)
						child.pt = ix.pts[child.id]
					} else {
						c := n.EntryChild(i)
						child.node = &c
					}
					heap.Push(h, child)
				}
				continue
			}
			for _, k := range it.active {
				if !prunedPoint(k, it.pt) {
					candidates[k] = append(candidates[k], it.id)
				}
			}
		}
	}

	// Per-query exact verification, streamed in request order.
	for k := range qs {
		var ids []int
		for _, c := range candidates[k] {
			if ix.Member(c, qs[k]) {
				ids = append(ids, c)
			}
		}
		sort.Ints(ids)
		out[k] = ids
		if emit != nil && !emit(k, ids) {
			return out, false
		}
	}
	return out, true
}

type bbrsBatchItem struct {
	key    float64
	node   *rtree.NodeHandle
	id     int
	pt     geom.Point
	active []int
}

type bbrsBatchHeap []bbrsBatchItem

func (h bbrsBatchHeap) Len() int           { return len(h) }
func (h bbrsBatchHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h bbrsBatchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bbrsBatchHeap) Push(x any)        { *h = append(*h, x.(bbrsBatchItem)) }
func (h *bbrsBatchHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
