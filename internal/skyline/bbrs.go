package skyline

import (
	"container/heap"
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
)

// ReverseSkylineBBRS computes the reverse skyline of q with a BBRS-style
// branch-and-bound algorithm (Dellis & Seeger, VLDB 2007): a single
// best-first traversal of the R-tree collects a small superset of the
// reverse skyline — the quadrant-aware global skyline candidates — pruning
// every subtree that is provably dominated, and a verification window query
// per candidate finishes the job. Results are identical to ReverseSkyline;
// the traversal just touches far fewer nodes on large datasets.
//
// Pruning rule: a subtree confined to a single sub-quadrant of q can be
// discarded once some already-found candidate s dynamically dominates q
// with respect to the subtree's nearest corner — by the nesting of
// dominance rectangles along a quadrant, s then dominates q w.r.t. every
// point of the subtree.
func (ix *Index) ReverseSkylineBBRS(q geom.Point) []int {
	if q.Dims() != ix.dims {
		panic("skyline: query dimensionality mismatch")
	}
	root, ok := ix.tree.RootHandle()
	if !ok {
		return nil
	}
	var candidates []int

	// prunedRect reports whether every point in r is provably not a
	// reverse skyline member given the current candidates.
	prunedRect := func(r geom.Rect) bool {
		if !geom.InSingleQuadrant(r, q) {
			return false
		}
		near := r.NearestCorner(q)
		for _, c := range candidates {
			if geom.DynDominates(ix.pts[c], q, near) {
				return true
			}
		}
		return false
	}
	prunedPoint := func(p geom.Point) bool {
		for _, c := range candidates {
			if geom.DynDominates(ix.pts[c], q, p) {
				return true
			}
		}
		return false
	}

	// Best-first traversal by transformed L1 distance: points close to q
	// in the |x−q| space dominate the most, so visiting them first
	// maximizes pruning.
	h := &bbrsHeap{}
	heap.Push(h, bbrsItem{key: 0, node: &root})
	for h.Len() > 0 {
		it := heap.Pop(h).(bbrsItem)
		if it.node != nil {
			n := *it.node
			ix.tree.RecordAccess()
			for i := 0; i < n.NumEntries(); i++ {
				r := n.EntryRect(i)
				if prunedRect(r) {
					continue
				}
				child := bbrsItem{key: transformedL1(r, q)}
				if n.IsLeaf() {
					child.id = n.EntryID(i)
					child.pt = ix.pts[child.id]
				} else {
					c := n.EntryChild(i)
					child.node = &c
				}
				heap.Push(h, child)
			}
			continue
		}
		if !prunedPoint(it.pt) {
			candidates = append(candidates, it.id)
		}
	}

	// Verification: global-skyline candidacy is necessary but not
	// sufficient, so each survivor still takes the exact window-query
	// membership test.
	var out []int
	for _, c := range candidates {
		if ix.Member(c, q) {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// transformedL1 is the minimal Σ_j |x_j − q_j| over x in r — the BBS
// traversal key in the transformed space.
func transformedL1(r geom.Rect, q geom.Point) float64 {
	var sum float64
	for j := range q {
		switch {
		case q[j] < r.Min[j]:
			sum += r.Min[j] - q[j]
		case q[j] > r.Max[j]:
			sum += q[j] - r.Max[j]
		}
	}
	return sum
}

type bbrsItem struct {
	key  float64
	node *rtree.NodeHandle
	id   int
	pt   geom.Point
}

type bbrsHeap []bbrsItem

func (h bbrsHeap) Len() int           { return len(h) }
func (h bbrsHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h bbrsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bbrsHeap) Push(x any)        { *h = append(*h, x.(bbrsItem)) }
func (h *bbrsHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
