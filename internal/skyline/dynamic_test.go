package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
)

func TestInsertDeleteConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(181))
	pts := randPts(r, 200, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(8))
	q := geom.Point{500, 500}

	// Insert 100 more points; results must match a fresh brute force over
	// the live set at every step (sampled).
	for i := 0; i < 100; i++ {
		p := randPts(r, 1, 2, 1000)[0]
		id := ix.Insert(p)
		if id != 200+i {
			t.Fatalf("Insert returned %d, want %d", id, 200+i)
		}
	}
	if ix.Live() != 300 {
		t.Fatalf("Live = %d", ix.Live())
	}

	livePts := func() ([]geom.Point, []int) {
		var ps []geom.Point
		var idx []int
		for i, p := range ix.Points() {
			if p != nil {
				ps = append(ps, p)
				idx = append(idx, i)
			}
		}
		return ps, idx
	}

	check := func() {
		t.Helper()
		ps, idx := livePts()
		want := BruteReverseSkyline(ps, q)
		mapped := make([]int, len(want))
		for i, w := range want {
			mapped[i] = idx[w]
		}
		got := ix.ReverseSkyline(q)
		if !reflect.DeepEqual(got, mapped) {
			t.Fatalf("ReverseSkyline %v, want %v", got, mapped)
		}
		bbrs := ix.ReverseSkylineBBRS(q)
		if !reflect.DeepEqual(bbrs, mapped) {
			t.Fatalf("BBRS %v, want %v", bbrs, mapped)
		}
	}
	check()

	// Delete a third of the points, including some of the inserted ones.
	perm := r.Perm(300)
	for _, i := range perm[:100] {
		if err := ix.Delete(i); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if ix.Live() != 200 {
		t.Fatalf("Live = %d after deletes", ix.Live())
	}
	check()

	// Tombstone semantics.
	victim := perm[0]
	if !ix.Deleted(victim) {
		t.Fatal("Deleted should report the tombstone")
	}
	if err := ix.Delete(victim); err == nil {
		t.Fatal("double delete should fail")
	}
	if ix.Member(victim, q) {
		t.Fatal("tombstone must not be a member")
	}
	if ix.Dominators(victim, q) != nil {
		t.Fatal("tombstone must have no dominators")
	}
	if err := ix.Delete(-1); err == nil {
		t.Fatal("out-of-range delete should fail")
	}
	if err := ix.Delete(999); err == nil {
		t.Fatal("out-of-range delete should fail")
	}
}

func TestInsertDimMismatchPanics(t *testing.T) {
	ix := NewIndex([]geom.Point{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Insert(geom.Point{1, 2, 3})
}
