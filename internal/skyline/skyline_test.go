package skyline

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
)

func randPts(r *rand.Rand, n, d int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// TestFig1Example rebuilds the paper's Fig. 1(a)/(b) semantics on a small
// handcrafted configuration: d, e, g form the reverse skyline while a does
// not because q is outside its dynamic skyline.
func TestHandcraftedReverseSkyline(t *testing.T) {
	q := geom.Point{5, 5}
	pts := []geom.Point{
		{6, 6},   // 0: very close to q -> reverse skyline
		{9, 9},   // 1: dominated w.r.t. itself by 0? |6-9|=3 <= |5-9|=4 yes, strict -> not member
		{1, 9},   // 2: DomRect extent (4,4): is (6,6) inside [ -3..5 x 5..13 ]? dim0: |6-1|=5 > 4 no. member unless someone else dominates.
		{40, 40}, // 3: far away; 0,1,2 all dominate q w.r.t. it -> not member
	}
	want := []int{0, 2}
	got := BruteReverseSkyline(pts, q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BruteReverseSkyline = %v, want %v", got, want)
	}
}

// TestMembershipDuality verifies the defining equivalence: p is a reverse
// skyline point of q iff q belongs to the dynamic skyline of p over the
// other points plus q itself.
func TestMembershipDuality(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		d := 1 + r.Intn(3)
		pts := randPts(r, 12, d, 100)
		q := randPts(r, 1, d, 100)[0]
		for i, p := range pts {
			others := make([]geom.Point, 0, len(pts)-1)
			for j, o := range pts {
				if j != i {
					others = append(others, o)
				}
			}
			member := IsReverseSkylineMember(p, q, others)
			// Dynamic skyline of p over others ∪ {q}: q's index is len(others).
			all := append(append([]geom.Point{}, others...), q)
			dyn := DynamicSkyline(p, all)
			qInDyn := false
			for _, idx := range dyn {
				if idx == len(others) {
					qInDyn = true
					break
				}
			}
			if member != qInDyn {
				t.Fatalf("duality violated: member=%v qInDyn=%v (p=%v q=%v)", member, qInDyn, p, q)
			}
		}
	}
}

func TestDynamicSkylineBasics(t *testing.T) {
	ref := geom.Point{0, 0}
	pts := []geom.Point{
		{1, 1}, // dominates everything farther out
		{2, 2}, // dominated by (1,1)
		{5, 0.5},
		{0.5, 5},
	}
	got := DynamicSkyline(ref, pts)
	want := []int{0, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DynamicSkyline = %v, want %v", got, want)
	}
	// Duplicates never dominate each other.
	dup := []geom.Point{{3, 3}, {3, 3}}
	if got := DynamicSkyline(ref, dup); len(got) != 2 {
		t.Fatalf("duplicates should both survive: %v", got)
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for _, d := range []int{2, 3} {
		pts := randPts(r, 400, d, 1000)
		ix := NewIndex(pts, rtree.WithMaxEntries(16))
		for trial := 0; trial < 10; trial++ {
			q := randPts(r, 1, d, 1000)[0]
			want := BruteReverseSkyline(pts, q)
			got := ix.ReverseSkyline(q)
			sort.Ints(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("d=%d: index %v vs brute %v", d, got, want)
			}
		}
	}
}

func TestDominatorsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	pts := randPts(r, 300, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(8))
	q := geom.Point{500, 500}
	for i := 0; i < len(pts); i += 17 {
		var want []int
		for j, o := range pts {
			if j != i && geom.DynDominates(o, q, pts[i]) {
				want = append(want, j)
			}
		}
		got := ix.Dominators(i, q)
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Dominators(%d) = %v, want %v", i, got, want)
		}
		if member := ix.Member(i, q); member != (len(want) == 0) {
			t.Fatalf("Member(%d) = %v inconsistent with %d dominators", i, member, len(want))
		}
	}
}

func TestIndexCounterAndAccessors(t *testing.T) {
	pts := randPts(rand.New(rand.NewSource(64)), 500, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(8))
	var c stats.Counter
	ix.SetCounter(&c)
	ix.Member(0, geom.Point{500, 500})
	if c.Value() == 0 {
		t.Fatal("Member should cost node accesses")
	}
	if ix.Len() != 500 || len(ix.Points()) != 500 {
		t.Fatal("accessors broken")
	}
	if ix.Tree() == nil {
		t.Fatal("Tree accessor broken")
	}
}

func TestNewIndexValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { NewIndex(nil) },
		"mixed": func() { NewIndex([]geom.Point{{1, 2}, {1, 2, 3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
