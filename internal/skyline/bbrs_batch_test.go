package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
)

// TestBBRSBatchMatchesPerQuery asserts the shared-frontier batch is
// element-wise identical to per-query BBRS across dimensionalities and
// query mixes — the traversal order differs, the verified answers must not.
func TestBBRSBatchMatchesPerQuery(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for _, d := range []int{2, 3, 4} {
		pts := randPts(r, 600, d, 1000)
		ix := NewIndex(pts, rtree.WithMaxEntries(12))
		qs := randPts(r, 7, d, 1000)
		got, done := ix.ReverseSkylineBBRSBatch(qs, nil)
		if !done {
			t.Fatalf("d=%d: batch reported early stop with nil emit", d)
		}
		for k, q := range qs {
			want := ix.ReverseSkylineBBRS(q)
			if !reflect.DeepEqual(got[k], want) {
				t.Fatalf("d=%d q#%d: batch %v vs per-query %v", d, k, got[k], want)
			}
		}
	}
}

// TestBBRSBatchUnionAccounting verifies the point of the shared frontier:
// one traversal serving N queries touches strictly fewer nodes than N
// independent traversals.
func TestBBRSBatchUnionAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(212))
	pts := randPts(r, 5000, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(16))
	qs := randPts(r, 8, 2, 1000)
	var c stats.Counter
	ix.SetCounter(&c)

	c.Reset()
	for _, q := range qs {
		ix.ReverseSkylineBBRS(q)
	}
	singleIO := c.Value()

	c.Reset()
	ix.ReverseSkylineBBRSBatch(qs, nil)
	batchIO := c.Value()

	if batchIO >= singleIO {
		t.Fatalf("batch I/O %d not below %d per-query traversals' %d", batchIO, len(qs), singleIO)
	}
}

// TestBBRSBatchEmitOrderAndEarlyStop asserts emit sees every query exactly
// once in ascending order, and that returning false abandons the tail.
func TestBBRSBatchEmitOrderAndEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(213))
	pts := randPts(r, 400, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(8))
	qs := randPts(r, 5, 2, 1000)

	var seen []int
	full, done := ix.ReverseSkylineBBRSBatch(qs, func(k int, ids []int) bool {
		seen = append(seen, k)
		if want := ix.ReverseSkylineBBRS(qs[k]); !reflect.DeepEqual(ids, want) {
			t.Fatalf("emit q#%d: %v, want %v", k, ids, want)
		}
		return true
	})
	if !done || !reflect.DeepEqual(seen, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("emit order %v (done=%v), want ascending 0..4", seen, done)
	}

	seen = seen[:0]
	partial, done := ix.ReverseSkylineBBRSBatch(qs, func(k int, ids []int) bool {
		seen = append(seen, k)
		return k < 2
	})
	if done || !reflect.DeepEqual(seen, []int{0, 1, 2}) {
		t.Fatalf("early stop emitted %v (done=%v), want 0..2 with done=false", seen, done)
	}
	for k := 0; k <= 2; k++ {
		if !reflect.DeepEqual(partial[k], full[k]) {
			t.Fatalf("early-stopped prefix q#%d differs: %v vs %v", k, partial[k], full[k])
		}
	}
	for k := 3; k < 5; k++ {
		if partial[k] != nil {
			t.Fatalf("abandoned q#%d has non-nil answer %v", k, partial[k])
		}
	}
}

// TestBBRSBatchEmptyInputs covers the degenerate shapes: no queries, and a
// batch against an empty index.
func TestBBRSBatchEmptyInputs(t *testing.T) {
	r := rand.New(rand.NewSource(214))
	pts := randPts(r, 50, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(8))
	if out, done := ix.ReverseSkylineBBRSBatch(nil, nil); !done || len(out) != 0 {
		t.Fatalf("empty batch: out=%v done=%v", out, done)
	}
}
