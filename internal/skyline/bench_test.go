package skyline

import (
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func benchIndex(n int) *Index {
	r := rand.New(rand.NewSource(1))
	return NewIndex(randPts(r, n, 2, 10000))
}

// BenchmarkReverseSkylineScan vs BenchmarkReverseSkylineBBRS quantify the
// branch-and-bound advantage on the full reverse skyline query.
func BenchmarkReverseSkylineScan(b *testing.B) {
	ix := benchIndex(20_000)
	q := geom.Point{5000, 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ReverseSkyline(q)
	}
}

func BenchmarkReverseSkylineBBRS(b *testing.B) {
	ix := benchIndex(20_000)
	q := geom.Point{5000, 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ReverseSkylineBBRS(q)
	}
}

func BenchmarkMembershipTest(b *testing.B) {
	ix := benchIndex(100_000)
	q := geom.Point{5000, 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Member(i%ix.Len(), q)
	}
}
