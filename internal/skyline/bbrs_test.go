package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
)

func TestBBRSMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for _, d := range []int{2, 3, 4} {
		pts := randPts(r, 500, d, 1000)
		ix := NewIndex(pts, rtree.WithMaxEntries(12))
		for trial := 0; trial < 8; trial++ {
			q := randPts(r, 1, d, 1000)[0]
			want := BruteReverseSkyline(pts, q)
			got := ix.ReverseSkylineBBRS(q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("d=%d trial %d: BBRS %v vs brute %v", d, trial, got, want)
			}
		}
	}
}

func TestBBRSMatchesPerPointScan(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	pts := randPts(r, 2000, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(16))
	q := geom.Point{500, 500}
	scan := ix.ReverseSkyline(q)
	bbrs := ix.ReverseSkylineBBRS(q)
	if !reflect.DeepEqual(scan, bbrs) {
		t.Fatalf("BBRS %v vs per-point scan %v", bbrs, scan)
	}
}

// TestBBRSCheaperThanScan verifies the point of the algorithm: the
// branch-and-bound traversal performs far fewer node accesses than testing
// every point with its own window query.
func TestBBRSCheaperThanScan(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	pts := randPts(r, 5000, 2, 1000)
	ix := NewIndex(pts, rtree.WithMaxEntries(16))
	var c stats.Counter
	ix.SetCounter(&c)
	q := geom.Point{500, 500}

	c.Reset()
	ix.ReverseSkylineBBRS(q)
	bbrsIO := c.Value()

	c.Reset()
	ix.ReverseSkyline(q)
	scanIO := c.Value()

	if bbrsIO*4 > scanIO {
		t.Fatalf("BBRS I/O %d not clearly below scan I/O %d", bbrsIO, scanIO)
	}
}

func TestBBRSQueryAtDataPoint(t *testing.T) {
	// A data point exactly at q is the classic boundary trap: it never
	// dynamically dominates q w.r.t. anything (all deviations tie at 0
	// against |q−p| — no wait, |q_at−p| = |q−p| so ties on every dim).
	pts := []geom.Point{
		{5, 5}, // exactly at q
		{6, 6},
		{9, 9},
		{40, 40},
	}
	ix := NewIndex(pts, rtree.WithMaxEntries(4))
	q := geom.Point{5, 5}
	want := BruteReverseSkyline(pts, q)
	got := ix.ReverseSkylineBBRS(q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BBRS %v vs brute %v", got, want)
	}
}

func TestBBRSDimMismatchPanics(t *testing.T) {
	ix := NewIndex([]geom.Point{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.ReverseSkylineBBRS(geom.Point{1})
}
