package skyline

import (
	"fmt"

	"github.com/crsky/crsky/internal/geom"
)

// Insert adds a point to the index and returns its new index — reverse
// skylines over slowly changing data (the data-stream setting of the
// paper's related work) re-query instead of rebuilding.
func (ix *Index) Insert(p geom.Point) int {
	if p.Dims() != ix.dims {
		panic("skyline: point dimensionality mismatch")
	}
	id := len(ix.pts)
	ix.pts = append(ix.pts, p.Clone())
	ix.tree.Insert(geom.PointRect(p), id)
	return id
}

// Delete removes the point with the given index. The slot becomes a
// tombstone: its index is never reused, queries skip it, and membership
// tests against it fail with an error from the callers that check Deleted.
func (ix *Index) Delete(i int) error {
	if i < 0 || i >= len(ix.pts) {
		return fmt.Errorf("skyline: index %d out of range", i)
	}
	if ix.pts[i] == nil {
		return fmt.Errorf("skyline: point %d already deleted", i)
	}
	if !ix.tree.Delete(geom.PointRect(ix.pts[i]), i) {
		return fmt.Errorf("skyline: point %d missing from the index", i)
	}
	ix.pts[i] = nil
	return nil
}

// CloneCOW returns a copy-on-write clone: the point slice is copied
// shallowly (points themselves are immutable) and the R-tree shares nodes
// until either side mutates, so readers of the original index never see
// the clone's inserts or deletes. The clone starts with no node-access
// counter; attach one with SetCounter.
func (ix *Index) CloneCOW() *Index {
	pts := make([]geom.Point, len(ix.pts))
	copy(pts, ix.pts)
	return &Index{pts: pts, dims: ix.dims, tree: ix.tree.CloneCOW()}
}

// Deleted reports whether slot i is a tombstone.
func (ix *Index) Deleted(i int) bool {
	return i >= 0 && i < len(ix.pts) && ix.pts[i] == nil
}

// Live returns the number of non-deleted points.
func (ix *Index) Live() int { return ix.tree.Len() }
