// Package skyline implements the certain-data (reverse) skyline machinery
// the paper builds on: dynamic skylines (Papadias et al.), reverse skyline
// membership tests and full reverse skyline queries (Dellis & Seeger), both
// brute-force and R-tree accelerated.
package skyline

import (
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
)

// DynamicSkyline returns the indices of the points of pts that belong to the
// dynamic skyline of ref: points not dynamically dominated w.r.t. ref by any
// other point of pts. Duplicate coordinates never dominate each other, so
// duplicates are all reported.
func DynamicSkyline(ref geom.Point, pts []geom.Point) []int {
	var out []int
	for i, p := range pts {
		dominated := false
		for j, p2 := range pts {
			if i == j {
				continue
			}
			if geom.DynDominates(p2, p, ref) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// IsReverseSkylineMember reports whether p is a reverse skyline point of q
// given the other points: no o ∈ others dynamically dominates q w.r.t. p
// (Definition 3). Points equal to p should not be passed in others.
func IsReverseSkylineMember(p, q geom.Point, others []geom.Point) bool {
	for _, o := range others {
		if geom.DynDominates(o, q, p) {
			return false
		}
	}
	return true
}

// BruteReverseSkyline computes the reverse skyline of q over pts by direct
// pairwise testing — the quadratic reference implementation used as a test
// oracle and baseline.
func BruteReverseSkyline(pts []geom.Point, q geom.Point) []int {
	var out []int
	for i, p := range pts {
		member := true
		for j, o := range pts {
			if i == j {
				continue
			}
			if geom.DynDominates(o, q, p) {
				member = false
				break
			}
		}
		if member {
			out = append(out, i)
		}
	}
	return out
}

// Index is an R-tree backed certain dataset supporting reverse skyline
// queries with node-access accounting. Deleted points leave nil tombstones
// in the Points slice; indexes are never reused.
type Index struct {
	pts  []geom.Point
	dims int
	tree *rtree.Tree
}

// NewIndex bulk-loads an R-tree over the points. The slice is retained; do
// not mutate it afterwards.
func NewIndex(pts []geom.Point, opts ...rtree.Option) *Index {
	if len(pts) == 0 {
		panic("skyline: empty point set")
	}
	d := pts[0].Dims()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		if p.Dims() != d {
			panic("skyline: mixed dimensionalities")
		}
		items[i] = rtree.Item{Rect: geom.PointRect(p), ID: i}
	}
	t := rtree.New(d, opts...)
	t.BulkLoad(items)
	return &Index{pts: pts, dims: d, tree: t}
}

// Dims returns the index dimensionality.
func (ix *Index) Dims() int { return ix.dims }

// SetCounter attaches a node-access counter to the underlying tree.
func (ix *Index) SetCounter(c *stats.Counter) { ix.tree.SetCounter(c) }

// Tree exposes the underlying R-tree (for traversals that need it).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// Points returns the indexed points (shared, read-only).
func (ix *Index) Points() []geom.Point { return ix.pts }

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Member reports whether point i is a reverse skyline point of q: a window
// query on the dominance rectangle DomRect(pts[i], q) that stops at the
// first dominator found. Deleted points are never members.
func (ix *Index) Member(i int, q geom.Point) bool {
	p := ix.pts[i]
	if p == nil {
		return false
	}
	window := geom.DomRectOuter(p, q)
	member := true
	ix.tree.Search(window, func(id int, _ geom.Rect) bool {
		if id == i {
			return true
		}
		if geom.DynDominates(ix.pts[id], q, p) {
			member = false
			return false
		}
		return true
	})
	return member
}

// ReverseSkyline returns the indices of all reverse skyline points of q,
// testing each live point with an early-terminating window query.
func (ix *Index) ReverseSkyline(q geom.Point) []int {
	var out []int
	for i := range ix.pts {
		if ix.pts[i] != nil && ix.Member(i, q) {
			out = append(out, i)
		}
	}
	return out
}

// Dominators returns the indices of all points that dynamically dominate q
// w.r.t. pts[i] — exactly the candidate causes of Section 4 when pts[i] is a
// non-reverse-skyline object (single window query, Lemma 1 restated for
// certain data).
func (ix *Index) Dominators(i int, q geom.Point) []int {
	p := ix.pts[i]
	if p == nil {
		return nil
	}
	window := geom.DomRectOuter(p, q)
	var out []int
	ix.tree.Search(window, func(id int, _ geom.Rect) bool {
		if id != i && geom.DynDominates(ix.pts[id], q, p) {
			out = append(out, id)
		}
		return true
	})
	return out
}
