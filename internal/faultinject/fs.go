package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"github.com/crsky/crsky/internal/store"
)

// ErrCrashed marks every filesystem operation attempted after a simulated
// crash point: the moment the budget runs out, the "process" is dead and
// nothing more reaches the disk. Torn-write mode makes the dying write
// itself land partially first — the torn-page failure mode the store's
// checksums exist for.
var ErrCrashed = errors.New("faultinject: simulated crash")

// CrashFS wraps a store.FS with a mutation-op budget. Every state-changing
// operation (write, sync, create, rename, remove, truncate) consumes one
// unit; the operation that exhausts the budget fails — partially applied,
// per the mode — and every mutation after it fails immediately. Reads keep
// working so the test harness can inspect the post-crash directory, which
// is exactly what the recovering process will see.
//
// Budget < 0 means unlimited: the FS then only counts mutations, which is
// how the crash-matrix tests size their crash-point loops.
type CrashFS struct {
	inner store.FS

	mu      sync.Mutex
	budget  int64
	ops     int64
	crashed bool
	// torn makes the crashing Write persist a strict prefix of its
	// buffer (possibly empty); false drops the crashing write entirely
	// (a short write at the block layer).
	torn bool
	rng  *rand.Rand
}

// NewCrashFS wraps inner (nil = the OS) with a crash after budget
// mutations. Seed drives the torn-write prefix lengths.
func NewCrashFS(inner store.FS, budget int64, torn bool, seed int64) *CrashFS {
	if inner == nil {
		inner = store.OS
	}
	return &CrashFS{inner: inner, budget: budget, torn: torn, rng: rand.New(rand.NewSource(seed))}
}

// Ops returns how many mutation operations have been attempted.
func (c *CrashFS) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the crash point has been reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// spend consumes one mutation unit. It returns (tornLen, err): err is
// ErrCrashed when this op crashes or the crash already happened; tornLen
// >= 0 only for the crashing op in torn mode, giving the prefix length to
// persist out of n bytes.
func (c *CrashFS) spend(n int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return -1, ErrCrashed
	}
	c.ops++
	if c.budget >= 0 && c.ops > c.budget {
		c.crashed = true
		if c.torn && n > 0 {
			return c.rng.Intn(n), nil // persist a strict prefix, then die
		}
		return -1, ErrCrashed
	}
	return -1, nil
}

func (c *CrashFS) MkdirAll(dir string) error {
	// Directory creation happens once at open and is not an interesting
	// crash point; it stays uncounted so crash loops focus on the
	// snapshot+WAL protocol.
	if c.Crashed() {
		return ErrCrashed
	}
	return c.inner.MkdirAll(dir)
}

func (c *CrashFS) Create(path string) (store.File, error) {
	if _, err := c.spend(0); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

func (c *CrashFS) OpenAppend(path string) (store.File, error) {
	if _, err := c.spend(0); err != nil {
		return nil, err
	}
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, inner: f}, nil
}

func (c *CrashFS) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

func (c *CrashFS) Rename(oldpath, newpath string) error {
	if _, err := c.spend(0); err != nil {
		return err
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *CrashFS) Remove(path string) error {
	if _, err := c.spend(0); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

func (c *CrashFS) Truncate(path string, size int64) error {
	if _, err := c.spend(0); err != nil {
		return err
	}
	return c.inner.Truncate(path, size)
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) { return c.inner.ReadDir(dir) }

func (c *CrashFS) Stat(path string) (int64, error) { return c.inner.Stat(path) }

func (c *CrashFS) SyncDir(dir string) error {
	if _, err := c.spend(0); err != nil {
		return err
	}
	return c.inner.SyncDir(dir)
}

// crashFile charges the budget per Write/Sync and tears the dying write.
type crashFile struct {
	fs    *CrashFS
	inner store.File
}

func (f *crashFile) Write(p []byte) (int, error) {
	tornLen, err := f.fs.spend(len(p))
	if err != nil {
		return 0, err
	}
	if tornLen >= 0 {
		// The crashing write: persist a strict prefix, then report the
		// crash. The file now holds a torn record/section.
		if tornLen > 0 {
			_, _ = f.inner.Write(p[:tornLen])
		}
		return tornLen, ErrCrashed
	}
	return f.inner.Write(p)
}

func (f *crashFile) Sync() error {
	if _, err := f.fs.spend(0); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *crashFile) Close() error {
	// Closing is free: a dying process's descriptors close anyway.
	return f.inner.Close()
}

// FlipByte XORs one bit of the byte at offset in path (offset taken modulo
// the file size; negative counts from the end) — the silent single-bit
// corruption the store's CRC32C framing must catch and quarantine.
func FlipByte(path string, offset int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("faultinject: %s is empty", path)
	}
	off := offset % int64(len(b))
	if off < 0 {
		off += int64(len(b))
	}
	b[off] ^= 0x40
	return os.WriteFile(path, b, 0o644)
}

// TruncateTail cuts n bytes off the end of path — a short write /
// truncated-file fault for recovery tests.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
