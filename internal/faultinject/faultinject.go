// Package faultinject is a deterministic, seed-driven fault injector for
// chaos-testing the serving stack: delayed worker-pool slots, injected
// engine errors, and injected engine panics, all drawn from one seeded
// generator so a failing run replays exactly. The package has no effect on
// production binaries — the server only consults an injector when one is
// installed in its Config, which only tests do.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	crsky "github.com/crsky/crsky"
)

// ErrInjected marks every injected engine failure. The server maps it to a
// 500 (infrastructure fault, not a client error); chaos tests use it to
// separate injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected failure")

// Config sets the fault probabilities. All zero disables every fault, so
// the zero-value injector is a deterministic no-op.
type Config struct {
	// Seed drives the fault schedule; identical configs replay identical
	// schedules.
	Seed int64
	// SlotDelayP is the probability a worker-pool slot stalls after
	// acquisition, for a uniform duration in (0, SlotDelayMax].
	SlotDelayP   float64
	SlotDelayMax time.Duration
	// ErrP is the probability an engine operation fails with ErrInjected
	// before doing any work.
	ErrP float64
	// PanicP is the probability an engine operation panics before doing
	// any work (exercising the recovery middleware and slot cleanup).
	PanicP float64
}

// Counts reports how many faults of each kind actually fired.
type Counts struct {
	SlotDelays int64 `json:"slotDelays"`
	Errors     int64 `json:"errors"`
	Panics     int64 `json:"panics"`
}

// Injector draws faults from a seeded generator. All methods are safe for
// concurrent use; the draw order under concurrency is scheduling-dependent,
// but the fault RATE and determinism-per-draw-sequence are what the chaos
// tests rely on.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	slotDelays atomic.Int64
	errs       atomic.Int64
	panics     atomic.Int64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (in *Injector) draw() float64 {
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v
}

// SlotDelay returns how long the current pool slot should stall before
// running its computation (0 = no fault). The server's worker pool calls it
// after slot acquisition.
func (in *Injector) SlotDelay() time.Duration {
	if in == nil || in.cfg.SlotDelayP <= 0 || in.cfg.SlotDelayMax <= 0 {
		return 0
	}
	if in.draw() >= in.cfg.SlotDelayP {
		return 0
	}
	in.mu.Lock()
	d := time.Duration(in.rng.Int63n(int64(in.cfg.SlotDelayMax))) + 1
	in.mu.Unlock()
	in.slotDelays.Add(1)
	return d
}

// Err returns an injected failure for the named engine operation, or nil.
func (in *Injector) Err(op string) error {
	if in == nil || in.cfg.ErrP <= 0 {
		return nil
	}
	if in.draw() >= in.cfg.ErrP {
		return nil
	}
	in.errs.Add(1)
	return fmt.Errorf("%w: %s", ErrInjected, op)
}

// MaybePanic panics for the named engine operation with probability
// PanicP — the fault the recovery middleware must contain.
func (in *Injector) MaybePanic(op string) {
	if in == nil || in.cfg.PanicP <= 0 {
		return
	}
	if in.draw() >= in.cfg.PanicP {
		return
	}
	in.panics.Add(1)
	panic(fmt.Sprintf("faultinject: injected panic in %s", op))
}

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		SlotDelays: in.slotDelays.Load(),
		Errors:     in.errs.Load(),
		Panics:     in.panics.Load(),
	}
}

// Wrap decorates an engine so every compute operation may fail or panic
// per the injector's schedule before reaching the real engine. The
// decorated engine is what a chaos-test server registers; all pass-through
// behavior (warming, counters, result values) is unchanged when no fault
// fires.
func Wrap(eng crsky.Explainer, in *Injector) crsky.Explainer {
	return &faultyEngine{inner: eng, in: in}
}

type faultyEngine struct {
	inner crsky.Explainer
	in    *Injector
}

func (f *faultyEngine) Len() int            { return f.inner.Len() }
func (f *faultyEngine) Dims() int           { return f.inner.Dims() }
func (f *faultyEngine) Warm()               { f.inner.Warm() }
func (f *faultyEngine) NodeAccesses() int64 { return f.inner.NodeAccesses() }
func (f *faultyEngine) ResetCounters()      { f.inner.ResetCounters() }

func (f *faultyEngine) QueryCtx(ctx context.Context, q crsky.Point, alpha float64, opts crsky.QueryOptions) ([]int, crsky.QueryStats, error) {
	if err := f.in.Err("query"); err != nil {
		return nil, crsky.QueryStats{}, err
	}
	f.in.MaybePanic("query")
	return f.inner.QueryCtx(ctx, q, alpha, opts)
}

func (f *faultyEngine) QueryBatch(ctx context.Context, qs []crsky.Point, alpha float64, opts crsky.QueryOptions) ([][]int, crsky.QueryStats, error) {
	if err := f.in.Err("queryBatch"); err != nil {
		return nil, crsky.QueryStats{}, err
	}
	f.in.MaybePanic("queryBatch")
	return f.inner.QueryBatch(ctx, qs, alpha, opts)
}

func (f *faultyEngine) QueryBatchStream(ctx context.Context, qs []crsky.Point, alpha float64, opts crsky.QueryOptions,
	emit func(index int, ids []int)) ([][]int, crsky.QueryStats, error) {

	// Failing before the first emit exercises the server's whole-batch
	// error path; mid-stream faults are the engine's own cancellation
	// behavior and stay un-injected so chaos runs keep the emitted-prefix
	// invariant observable.
	if err := f.in.Err("queryBatchStream"); err != nil {
		return nil, crsky.QueryStats{}, err
	}
	f.in.MaybePanic("queryBatchStream")
	return f.inner.QueryBatchStream(ctx, qs, alpha, opts, emit)
}

func (f *faultyEngine) QueryApprox(ctx context.Context, q crsky.Point, alpha float64, opts crsky.QueryOptions, approx crsky.ApproxOptions) (*crsky.ApproxResult, crsky.QueryStats, error) {
	if err := f.in.Err("queryApprox"); err != nil {
		return nil, crsky.QueryStats{}, err
	}
	f.in.MaybePanic("queryApprox")
	return f.inner.QueryApprox(ctx, q, alpha, opts, approx)
}

func (f *faultyEngine) ExplainCtx(ctx context.Context, id int, q crsky.Point, alpha float64, opts crsky.Options) (*crsky.Explanation, error) {
	if err := f.in.Err("explain"); err != nil {
		return nil, err
	}
	f.in.MaybePanic("explain")
	return f.inner.ExplainCtx(ctx, id, q, alpha, opts)
}

func (f *faultyEngine) ExplainBatch(ctx context.Context, reqs []crsky.ExplainRequest, opts crsky.Options) []crsky.ExplainItem {
	// Per-item faults arrive through ExplainCtx on single-item batches; a
	// whole-batch fault here would discard sibling results, which the v2
	// contract forbids even under chaos, so the batch surface only panics.
	f.in.MaybePanic("explainBatch")
	return f.inner.ExplainBatch(ctx, reqs, opts)
}

func (f *faultyEngine) ExplainBatchStream(ctx context.Context, reqs []crsky.ExplainRequest, opts crsky.Options,
	emit func(crsky.ExplainItem)) []crsky.ExplainItem {

	// Same contract as ExplainBatch: only a panic, never a whole-batch
	// error that would discard sibling results.
	f.in.MaybePanic("explainBatchStream")
	return f.inner.ExplainBatchStream(ctx, reqs, opts, emit)
}

func (f *faultyEngine) RepairCtx(ctx context.Context, id int, q crsky.Point, alpha float64, opts crsky.Options) (*crsky.Repair, error) {
	if err := f.in.Err("repair"); err != nil {
		return nil, err
	}
	f.in.MaybePanic("repair")
	return f.inner.RepairCtx(ctx, id, q, alpha, opts)
}

func (f *faultyEngine) VerifyCtx(ctx context.Context, q crsky.Point, alpha float64, res *crsky.Explanation) error {
	if err := f.in.Err("verify"); err != nil {
		return err
	}
	f.in.MaybePanic("verify")
	return f.inner.VerifyCtx(ctx, q, alpha, res)
}

// WithInsert implements crsky.Mutable: the insert may fail or panic before
// reaching the real engine, and a successful successor engine is wrapped
// with the same injector so faults persist across generations.
func (f *faultyEngine) WithInsert(spec crsky.InsertSpec) (crsky.Explainer, int, error) {
	m, ok := f.inner.(crsky.Mutable)
	if !ok {
		return nil, 0, crsky.ErrUnsupported
	}
	if err := f.in.Err("insert"); err != nil {
		return nil, 0, err
	}
	f.in.MaybePanic("insert")
	ne, id, err := m.WithInsert(spec)
	if err != nil {
		return nil, 0, err
	}
	return Wrap(ne, f.in), id, nil
}

// WithDelete implements crsky.Mutable; see WithInsert.
func (f *faultyEngine) WithDelete(id int) (crsky.Explainer, error) {
	m, ok := f.inner.(crsky.Mutable)
	if !ok {
		return nil, crsky.ErrUnsupported
	}
	if err := f.in.Err("delete"); err != nil {
		return nil, err
	}
	f.in.MaybePanic("delete")
	ne, err := m.WithDelete(id)
	if err != nil {
		return nil, err
	}
	return Wrap(ne, f.in), nil
}
