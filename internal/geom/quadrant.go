package geom

// Quadrant identifies one of the 2^D sub-quadrants ("sub-quadrates" in the
// paper) of the data space induced by a query object q: bit i is set when
// the sub-quadrant lies on the side with coordinates >= q[i] along
// dimension i.
type Quadrant uint32

// MaxQuadrantDims bounds the dimensionality supported by the Quadrant bit
// encoding. Far beyond the paper's 2–5 dimensional workloads.
const MaxQuadrantDims = 30

// QuadrantOf returns the sub-quadrant of q that contains p. Points exactly
// on a splitting hyperplane are assigned to the upper side, matching the
// convention used by SplitByQuadrants.
func QuadrantOf(p, q Point) Quadrant {
	checkDims(len(p), len(q))
	var idx Quadrant
	for i := range q {
		if p[i] >= q[i] {
			idx |= 1 << uint(i)
		}
	}
	return idx
}

// QuadrantPiece is a fragment of a rectangle clipped to one sub-quadrant
// of the query object.
type QuadrantPiece struct {
	Quad Quadrant
	Rect Rect
}

// SplitByQuadrants clips r against the 2^D sub-quadrants induced by q and
// returns every non-empty piece. A rectangle fully inside one sub-quadrant
// yields a single piece equal to itself. Pieces are closed rectangles, so
// adjacent pieces share their boundary on the splitting hyperplanes; this
// is harmless for the dominance-rectangle constructions that consume them.
func SplitByQuadrants(r Rect, q Point) []QuadrantPiece {
	d := r.Dims()
	checkDims(d, len(q))
	if d > MaxQuadrantDims {
		panic("geom: dimensionality too high for quadrant decomposition")
	}
	pieces := []QuadrantPiece{{Quad: 0, Rect: r.Clone()}}
	for i := 0; i < d; i++ {
		split := q[i]
		next := pieces[:0:0]
		for _, pc := range pieces {
			switch {
			case pc.Rect.Max[i] <= split:
				// Entirely on the lower side.
				next = append(next, pc)
			case pc.Rect.Min[i] >= split:
				pc.Quad |= 1 << uint(i)
				next = append(next, pc)
			default:
				lo := pc.Rect.Clone()
				lo.Max[i] = split
				hi := pc.Rect.Clone()
				hi.Min[i] = split
				next = append(next,
					QuadrantPiece{Quad: pc.Quad, Rect: lo},
					QuadrantPiece{Quad: pc.Quad | 1<<uint(i), Rect: hi},
				)
			}
		}
		pieces = next
	}
	return pieces
}

// InSingleQuadrant reports whether r lies entirely inside one sub-quadrant
// of q (needed for the pdf-model Γ1 test: objects straddling a splitting
// hyperplane cannot form the "nearest corner" rectangle, cf. Fig. 4 of the
// paper).
func InSingleQuadrant(r Rect, q Point) bool {
	checkDims(r.Dims(), len(q))
	for i := range q {
		if r.Min[i] < q[i] && r.Max[i] > q[i] {
			return false
		}
	}
	return true
}
