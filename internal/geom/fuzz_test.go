package geom

import (
	"math"
	"testing"
)

// FuzzDomRect checks the structural invariants of dominance rectangles on
// arbitrary 2-D inputs: validity, q on the boundary, and consistency with
// the dominance predicate.
func FuzzDomRect(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5)
	f.Add(5.0, 5.0, 8.0, 3.0, 6.0, 4.0)
	f.Add(-1e6, 1e6, 0.0, 0.0, 3.0, -3.0)
	f.Fuzz(func(t *testing.T, cx, cy, qx, qy, px, py float64) {
		for _, v := range []float64{cx, cy, qx, qy, px, py} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		center := Point{cx, cy}
		q := Point{qx, qy}
		p := Point{px, py}
		r := DomRect(center, q)
		if !r.Valid() {
			t.Fatalf("DomRect invalid: %v", r)
		}
		if !r.ContainsPoint(q) {
			t.Fatalf("q %v outside DomRect %v", q, r)
		}
		if !r.ContainsPoint(center) {
			t.Fatalf("center %v outside DomRect %v", center, r)
		}
		// Dominating points are guaranteed to lie inside the padded
		// filter rectangle (DomRect itself can miss them by an ULP —
		// that is exactly why the filters use the outer variant).
		outer := DomRectOuter(center, q)
		if DynDominates(p, q, center) && !outer.ContainsPoint(p) {
			t.Fatalf("dominating point %v outside DomRectOuter %v", p, outer)
		}
		if !outer.ContainsRect(r) {
			t.Fatalf("outer rect %v does not contain %v", outer, r)
		}
		inner := DomRectInner(center, q)
		if !r.ContainsRect(inner) {
			t.Fatalf("inner rect %v escapes %v", inner, r)
		}
	})
}

// FuzzSplitByQuadrants checks that the decomposition always partitions the
// rectangle (volume preserved, pieces contained, no straddling).
func FuzzSplitByQuadrants(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 4.0, 2.0, 2.0)
	f.Add(-3.0, 1.0, 5.0, 2.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, qx, qy float64) {
		for _, v := range []float64{ax, ay, bx, by, qx, qy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return
			}
		}
		r := NewRect(Point{ax, ay}, Point{bx, by})
		q := Point{qx, qy}
		pieces := SplitByQuadrants(r, q)
		if len(pieces) == 0 || len(pieces) > 4 {
			t.Fatalf("%d pieces", len(pieces))
		}
		var vol float64
		for _, pc := range pieces {
			if !r.ContainsRect(pc.Rect) {
				t.Fatalf("piece %v escapes %v", pc.Rect, r)
			}
			for j := 0; j < 2; j++ {
				if pc.Rect.Min[j] < q[j] && pc.Rect.Max[j] > q[j] {
					t.Fatal("piece straddles a hyperplane")
				}
			}
			vol += pc.Rect.Volume()
		}
		if tot := r.Volume(); math.Abs(vol-tot) > 1e-6*(1+tot) {
			t.Fatalf("volume %v, want %v", vol, tot)
		}
	})
}
