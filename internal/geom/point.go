// Package geom provides the geometric primitives used throughout crsky:
// D-dimensional points, axis-aligned hyper-rectangles, the dynamic-dominance
// relation that underlies (reverse) skyline semantics, and the sub-quadrant
// decomposition required by the continuous-pdf uncertain data model.
//
// All operations treat dimensionality mismatches as programmer errors and
// panic; datasets are validated at construction time so mismatches cannot
// arise from user input at query time.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a D-dimensional point. The zero value (nil) has zero dimensions.
type Point []float64

// Dims reports the dimensionality of p.
func (p Point) Dims() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	if p == nil {
		return nil
	}
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q as a new point.
func (p Point) Add(q Point) Point {
	checkDims(len(p), len(q))
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p − q as a new point.
func (p Point) Sub(q Point) Point {
	checkDims(len(p), len(q))
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns p scaled by s as a new point.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Dist returns the Euclidean (L2) distance between p and q.
func (p Point) Dist(q Point) float64 {
	checkDims(len(p), len(q))
	var sum float64
	for i := range p {
		d := p[i] - q[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// L1Dist returns the Manhattan (L1) distance between p and q.
func (p Point) L1Dist(q Point) float64 {
	checkDims(len(p), len(q))
	var sum float64
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum
}

// ChebyshevDist returns the L∞ distance between p and q.
func (p Point) ChebyshevDist(q Point) float64 {
	checkDims(len(p), len(q))
	var m float64
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > m {
			m = d
		}
	}
	return m
}

// IsFinite reports whether every coordinate of p is a finite number.
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders p as "(x1, x2, ...)" with compact float formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

func checkDims(a, b int) {
	if a != b {
		panic(fmt.Sprintf("geom: dimensionality mismatch (%d vs %d)", a, b))
	}
}
