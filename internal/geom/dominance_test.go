package geom

import (
	"math/rand"
	"testing"
)

func TestDynDominatesBasics(t *testing.T) {
	ref := Point{5, 5}
	q := Point{8, 8} // |q-ref| = (3,3)
	tests := []struct {
		name string
		a    Point
		want bool
	}{
		{"closer on both dims", Point{6, 6}, true},
		{"equal dist, no strict", Point{8, 8}, false},
		{"equal dist mirrored, no strict", Point{2, 2}, false},
		{"closer on one, equal on other", Point{6, 8}, true},
		{"closer on one, farther on other", Point{6, 9.5}, false},
		{"the reference itself", Point{5, 5}, true},
		{"mirrored closer", Point{3, 3}, true},
	}
	for _, tt := range tests {
		if got := DynDominates(tt.a, q, ref); got != tt.want {
			t.Errorf("%s: DynDominates(%v, %v, %v) = %v, want %v",
				tt.name, tt.a, q, ref, got, tt.want)
		}
	}
}

func TestDynDominatesIrreflexive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		d := 1 + r.Intn(5)
		a, ref := randPoint(r, d), randPoint(r, d)
		if DynDominates(a, a, ref) {
			t.Fatalf("DynDominates(a, a, ref) must be false: a=%v ref=%v", a, ref)
		}
	}
}

func TestDynDominatesAsymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		d := 1 + r.Intn(5)
		a, b, ref := randPoint(r, d), randPoint(r, d), randPoint(r, d)
		if DynDominates(a, b, ref) && DynDominates(b, a, ref) {
			t.Fatalf("dominance must be asymmetric: a=%v b=%v ref=%v", a, b, ref)
		}
	}
}

func TestDynDominatesTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		d := 1 + r.Intn(3)
		a, b, c, ref := randPoint(r, d), randPoint(r, d), randPoint(r, d), randPoint(r, d)
		if DynDominates(a, b, ref) && DynDominates(b, c, ref) {
			if !DynDominates(a, c, ref) {
				t.Fatalf("transitivity violated: a=%v b=%v c=%v ref=%v", a, b, c, ref)
			}
		}
	}
}

func TestStaticDominates(t *testing.T) {
	if !Dominates(Point{1, 1}, Point{2, 2}) {
		t.Error("strictly smaller point should dominate")
	}
	if Dominates(Point{1, 1}, Point{1, 1}) {
		t.Error("equal points must not dominate (irreflexive)")
	}
	if !Dominates(Point{1, 2}, Point{1, 3}) {
		t.Error("equal-on-one-dim should still dominate")
	}
	if Dominates(Point{1, 4}, Point{2, 3}) || Dominates(Point{2, 3}, Point{1, 4}) {
		t.Error("incomparable points must not dominate each other")
	}
}

func TestDomRect(t *testing.T) {
	center := Point{5, 5}
	q := Point{8, 3}
	r := DomRect(center, q)
	if !r.Min.Equal(Point{2, 3}) || !r.Max.Equal(Point{8, 7}) {
		t.Fatalf("DomRect = %v", r)
	}
	// q itself is always on the boundary of the dominance rectangle.
	if !r.ContainsPoint(q) {
		t.Error("q must lie on the dominance rectangle boundary")
	}
	// The mirror image of q w.r.t. center is the opposite corner.
	mirror := Point{2, 7}
	if !r.ContainsPoint(mirror) {
		t.Error("mirror of q must lie on the dominance rectangle boundary")
	}
}

// TestDomRectCharacterizesDominance is the key geometric fact behind
// Lemma 2: a point dominates q w.r.t. center iff it lies inside
// DomRect(center, q) and is not at per-dimension-equal distance everywhere.
func TestDomRectCharacterizesDominance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		d := 1 + r.Intn(4)
		center, q, p := randPoint(r, d), randPoint(r, d), randPoint(r, d)
		rect := DomRect(center, q)
		dom := DynDominates(p, q, center)
		if dom && !rect.ContainsPoint(p) {
			t.Fatalf("dominating point outside DomRect: p=%v center=%v q=%v", p, center, q)
		}
		if rect.ContainsPoint(p) && !dom {
			// Must be a boundary tie on every dimension: |p-c| == |q-c| for all dims.
			for j := range p {
				da := abs(p[j] - center[j])
				db := abs(q[j] - center[j])
				if da != db {
					t.Fatalf("inside DomRect but not dominating and not all-ties: p=%v center=%v q=%v", p, center, q)
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDomRects(t *testing.T) {
	samples := []Point{{1, 1}, {3, 3}}
	q := Point{2, 2}
	recs := DomRects(samples, q)
	if len(recs) != 2 {
		t.Fatalf("got %d rects", len(recs))
	}
	if !recs[0].Min.Equal(Point{0, 0}) || !recs[0].Max.Equal(Point{2, 2}) {
		t.Errorf("rec0 = %v", recs[0])
	}
	if !recs[1].Min.Equal(Point{2, 2}) || !recs[1].Max.Equal(Point{4, 4}) {
		t.Errorf("rec1 = %v", recs[1])
	}
}

// TestDomRectUnionOuter checks the two properties the batch join relies
// on: the window of a region covers the dominance rectangle of every
// anchor inside it, and the bound is monotone under region growth.
func TestDomRectUnionOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(3)
		q := randPoint(rng, d)
		lo := randPoint(rng, d)
		hi := make(Point, d)
		for i := range hi {
			hi[i] = lo[i] + rng.Float64()*20
		}
		region := NewRect(lo, hi)
		window := DomRectUnionOuter(region, q)
		for k := 0; k < 20; k++ {
			anchor := make(Point, d)
			for i := range anchor {
				anchor[i] = region.Min[i] + rng.Float64()*(region.Max[i]-region.Min[i])
			}
			if !window.ContainsRect(DomRect(anchor, q)) {
				t.Fatalf("window %v misses DomRect(%v, %v) = %v", window, anchor, q, DomRect(anchor, q))
			}
		}
		bigger := region.Clone()
		for i := range bigger.Min {
			bigger.Min[i] -= rng.Float64() * 5
			bigger.Max[i] += rng.Float64() * 5
		}
		if !DomRectUnionOuter(bigger, q).ContainsRect(window) {
			t.Fatalf("union window not monotone: region %v ⊂ %v", region, bigger)
		}
	}
}
