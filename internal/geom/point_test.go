package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = r.Float64()*200 - 100
	}
	return p
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone aliased the original: %v", p)
	}
	if !p.Equal(Point{1, 2, 3}) {
		t.Fatalf("original mutated: %v", p)
	}
	var nilPt Point
	if nilPt.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestPointEqual(t *testing.T) {
	tests := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
		{nil, Point{}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2, 3}
	b := Point{4, 5, 6}
	if got := a.Add(b); !got.Equal(Point{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(Point{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(Point{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointDistances(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.L1Dist(b); got != 7 {
		t.Errorf("L1Dist = %v, want 7", got)
	}
	if got := a.ChebyshevDist(b); got != 4 {
		t.Errorf("ChebyshevDist = %v, want 4", got)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		d := 1 + r.Intn(5)
		a, b, c := randPoint(r, d), randPoint(r, d), randPoint(r, d)
		for name, dist := range map[string]func(Point, Point) float64{
			"L2":   Point.Dist,
			"L1":   Point.L1Dist,
			"Linf": Point.ChebyshevDist,
		} {
			if got := dist(a, a); got != 0 {
				t.Fatalf("%s(a,a) = %v, want 0", name, got)
			}
			if math.Abs(dist(a, b)-dist(b, a)) > 1e-12 {
				t.Fatalf("%s not symmetric", name)
			}
			if dist(a, c) > dist(a, b)+dist(b, c)+1e-9 {
				t.Fatalf("%s violates triangle inequality", name)
			}
		}
	}
}

func TestPointIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if (Point{1, math.NaN()}).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if (Point{math.Inf(1)}).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"Add":   func() { Point{1}.Add(Point{1, 2}) },
		"Sub":   func() { Point{1}.Sub(Point{1, 2}) },
		"Dist":  func() { Point{1}.Dist(Point{1, 2}) },
		"DynD":  func() { DynDominates(Point{1}, Point{1, 2}, Point{1, 2}) },
		"CtPnt": func() { NewRect(Point{0, 0}, Point{1, 1}).ContainsPoint(Point{0}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on dimensionality mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestScaleRoundTripQuick(t *testing.T) {
	f := func(xs []float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		s = math.Mod(s, 1e3)
		if math.Abs(s) < 1e-3 {
			return true
		}
		p := make(Point, len(xs))
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			p[i] = math.Mod(v, 1e6)
		}
		back := p.Scale(s).Scale(1 / s)
		for i := range p {
			if math.Abs(back[i]-p[i]) > 1e-6*(1+math.Abs(p[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
