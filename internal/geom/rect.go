package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned hyper-rectangle given by its lower-left (Min) and
// upper-right (Max) corners. A Rect is valid when both corners have the same
// dimensionality and Min[i] <= Max[i] on every axis; a point is represented
// as a degenerate rectangle with Min == Max.
type Rect struct {
	Min, Max Point
}

// NewRect builds a Rect from two corner points, normalizing the coordinate
// order so the result is valid regardless of the corner order passed in.
func NewRect(a, b Point) Rect {
	checkDims(len(a), len(b))
	min := make(Point, len(a))
	max := make(Point, len(a))
	for i := range a {
		min[i] = math.Min(a[i], b[i])
		max[i] = math.Max(a[i], b[i])
	}
	return Rect{Min: min, Max: max}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// Dims reports the dimensionality of r.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Valid reports whether r has matching dimensionalities, finite bounds, and
// Min <= Max on every axis.
func (r Rect) Valid() bool {
	if len(r.Min) != len(r.Max) || len(r.Min) == 0 {
		return false
	}
	if !r.Min.IsFinite() || !r.Max.IsFinite() {
		return false
	}
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Side returns the extent of r along dimension i.
func (r Rect) Side(i int) float64 { return r.Max[i] - r.Min[i] }

// Volume returns the D-dimensional volume (area in 2-D) of r.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Margin returns the sum of edge lengths of r (the R*-tree margin metric).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	checkDims(len(r.Min), len(p))
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	checkDims(len(r.Min), len(s.Min))
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count as intersecting).
func (r Rect) Intersects(s Rect) bool {
	checkDims(len(r.Min), len(s.Min))
	for i := range r.Min {
		if s.Max[i] < r.Min[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersection returns r ∩ s and whether it is non-empty.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	checkDims(len(r.Min), len(s.Min))
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Max(r.Min[i], s.Min[i])
		max[i] = math.Min(r.Max[i], s.Max[i])
		if min[i] > max[i] {
			return Rect{}, false
		}
	}
	return Rect{Min: min, Max: max}, true
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	checkDims(len(r.Min), len(s.Min))
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], s.Min[i])
		max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// ExpandToPoint grows r in place so that it covers p.
func (r *Rect) ExpandToPoint(p Point) {
	checkDims(len(r.Min), len(p))
	for i := range p {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// ExpandToRect grows r in place so that it covers s.
func (r *Rect) ExpandToRect(s Rect) {
	checkDims(len(r.Min), len(s.Min))
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Enlargement returns the volume increase of r required to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Volume() - r.Volume()
}

// OverlapVolume returns the volume of r ∩ s (0 when disjoint).
func (r Rect) OverlapVolume(s Rect) float64 {
	v := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (0 when p is inside r). This is the MINDIST metric used for best-first
// R-tree traversal.
func (r Rect) MinDist(p Point) float64 {
	checkDims(len(r.Min), len(p))
	var sum float64
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// FarthestCorner returns the corner of r with the maximum per-dimension
// distance from p. Within a single sub-quadrant of p this is the point of r
// farthest from p on every axis simultaneously.
func (r Rect) FarthestCorner(p Point) Point {
	checkDims(len(r.Min), len(p))
	c := make(Point, len(p))
	for i := range p {
		if math.Abs(r.Min[i]-p[i]) >= math.Abs(r.Max[i]-p[i]) {
			c[i] = r.Min[i]
		} else {
			c[i] = r.Max[i]
		}
	}
	return c
}

// NearestCorner returns the corner of r with the minimum per-dimension
// distance from p.
func (r Rect) NearestCorner(p Point) Point {
	checkDims(len(r.Min), len(p))
	c := make(Point, len(p))
	for i := range p {
		if math.Abs(r.Min[i]-p[i]) <= math.Abs(r.Max[i]-p[i]) {
			c[i] = r.Min[i]
		} else {
			c[i] = r.Max[i]
		}
	}
	return c
}

// String renders r as "[min; max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v; %v]", r.Min, r.Max)
}
