package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuadrantOf(t *testing.T) {
	q := Point{5, 5}
	tests := []struct {
		p    Point
		want Quadrant
	}{
		{Point{3, 3}, 0},
		{Point{7, 3}, 1},
		{Point{3, 7}, 2},
		{Point{7, 7}, 3},
		{Point{5, 5}, 3}, // on both hyperplanes -> upper side
		{Point{5, 3}, 1},
	}
	for _, tt := range tests {
		if got := QuadrantOf(tt.p, q); got != tt.want {
			t.Errorf("QuadrantOf(%v) = %b, want %b", tt.p, got, tt.want)
		}
	}
}

func TestSplitByQuadrantsSingle(t *testing.T) {
	q := Point{0, 0}
	r := NewRect(Point{1, 1}, Point{3, 4})
	pieces := SplitByQuadrants(r, q)
	if len(pieces) != 1 {
		t.Fatalf("expected 1 piece, got %d", len(pieces))
	}
	if pieces[0].Quad != 3 {
		t.Errorf("quad = %b, want 11", pieces[0].Quad)
	}
	if !pieces[0].Rect.Min.Equal(r.Min) || !pieces[0].Rect.Max.Equal(r.Max) {
		t.Errorf("piece rect = %v", pieces[0].Rect)
	}
}

func TestSplitByQuadrantsCross(t *testing.T) {
	q := Point{5, 5}
	r := NewRect(Point{3, 3}, Point{7, 7})
	pieces := SplitByQuadrants(r, q)
	if len(pieces) != 4 {
		t.Fatalf("expected 4 pieces, got %d", len(pieces))
	}
	seen := map[Quadrant]bool{}
	var vol float64
	for _, pc := range pieces {
		if seen[pc.Quad] {
			t.Fatalf("duplicate quadrant %b", pc.Quad)
		}
		seen[pc.Quad] = true
		vol += pc.Rect.Volume()
		if !r.ContainsRect(pc.Rect) {
			t.Fatalf("piece %v escapes original %v", pc.Rect, r)
		}
	}
	if math.Abs(vol-r.Volume()) > 1e-9 {
		t.Errorf("piece volumes sum to %v, want %v", vol, r.Volume())
	}
}

func TestSplitByQuadrantsPartial(t *testing.T) {
	q := Point{5, 5}
	// Straddles only dimension 0.
	r := NewRect(Point{3, 6}, Point{7, 8})
	pieces := SplitByQuadrants(r, q)
	if len(pieces) != 2 {
		t.Fatalf("expected 2 pieces, got %d", len(pieces))
	}
	if InSingleQuadrant(r, q) {
		t.Error("straddling rect reported as single-quadrant")
	}
	if !InSingleQuadrant(NewRect(Point{6, 6}, Point{7, 8}), q) {
		t.Error("contained rect reported as straddling")
	}
	// Touching the hyperplane without crossing stays single-quadrant.
	if !InSingleQuadrant(NewRect(Point{5, 6}, Point{7, 8}), q) {
		t.Error("touching rect should count as single-quadrant")
	}
}

func TestSplitByQuadrantsRandomVolume(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		d := 1 + r.Intn(4)
		rect := randRect(r, d)
		q := randPoint(r, d)
		pieces := SplitByQuadrants(rect, q)
		if len(pieces) == 0 || len(pieces) > 1<<uint(d) {
			t.Fatalf("piece count %d out of range for d=%d", len(pieces), d)
		}
		var vol float64
		for _, pc := range pieces {
			vol += pc.Rect.Volume()
			if !rect.ContainsRect(pc.Rect) {
				t.Fatal("piece escapes the original rect")
			}
			// Every piece must be on one side of each hyperplane.
			for j := 0; j < d; j++ {
				if pc.Rect.Min[j] < q[j] && pc.Rect.Max[j] > q[j] {
					t.Fatal("piece straddles a splitting hyperplane")
				}
			}
		}
		if math.Abs(vol-rect.Volume()) > 1e-6*(1+rect.Volume()) {
			t.Fatalf("volumes sum to %v, want %v", vol, rect.Volume())
		}
	}
}
