package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randRect(r *rand.Rand, d int) Rect {
	return NewRect(randPoint(r, d), randPoint(r, d))
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 0}, Point{1, 4})
	if !r.Min.Equal(Point{1, 0}) || !r.Max.Equal(Point{5, 4}) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestRectValid(t *testing.T) {
	tests := []struct {
		r    Rect
		want bool
	}{
		{NewRect(Point{0, 0}, Point{1, 1}), true},
		{Rect{Min: Point{1, 1}, Max: Point{0, 0}}, false},
		{Rect{Min: Point{0}, Max: Point{0, 1}}, false},
		{Rect{}, false},
		{Rect{Min: Point{math.NaN()}, Max: Point{1}}, false},
		{PointRect(Point{3, 3}), true},
	}
	for i, tt := range tests {
		if got := tt.r.Valid(); got != tt.want {
			t.Errorf("case %d: Valid(%v) = %v, want %v", i, tt.r, got, tt.want)
		}
	}
}

func TestRectVolumeMarginCenter(t *testing.T) {
	r := NewRect(Point{0, 0, 0}, Point{2, 3, 4})
	if got := r.Volume(); got != 24 {
		t.Errorf("Volume = %v, want 24", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %v, want 9", got)
	}
	if got := r.Center(); !got.Equal(Point{1, 1.5, 2}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Side(2); got != 4 {
		t.Errorf("Side(2) = %v, want 4", got)
	}
}

func TestRectContainment(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.ContainsPoint(Point{5, 5}) || !r.ContainsPoint(Point{0, 10}) {
		t.Error("ContainsPoint failed on interior/boundary")
	}
	if r.ContainsPoint(Point{10.01, 5}) {
		t.Error("ContainsPoint accepted outside point")
	}
	if !r.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("ContainsRect failed on nested rect")
	}
	if r.ContainsRect(NewRect(Point{1, 1}, Point{11, 9})) {
		t.Error("ContainsRect accepted protruding rect")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
}

func TestRectIntersection(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{5, 5})
	b := NewRect(Point{3, 3}, Point{8, 8})
	c := NewRect(Point{6, 6}, Point{7, 7})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects reported intersecting")
	}
	// Touching boundary counts as intersecting.
	d := NewRect(Point{5, 0}, Point{9, 5})
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	got, ok := a.Intersection(b)
	if !ok || !got.Min.Equal(Point{3, 3}) || !got.Max.Equal(Point{5, 5}) {
		t.Errorf("Intersection = %v, %v", got, ok)
	}
	if _, ok := a.Intersection(c); ok {
		t.Error("Intersection of disjoint rects should report empty")
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{5, -1}, Point{6, 1})
	u := a.Union(b)
	if !u.Min.Equal(Point{0, -1}) || !u.Max.Equal(Point{6, 2}) {
		t.Errorf("Union = %v", u)
	}
	r := a.Clone()
	r.ExpandToRect(b)
	if !r.Min.Equal(u.Min) || !r.Max.Equal(u.Max) {
		t.Errorf("ExpandToRect = %v, want %v", r, u)
	}
	r2 := a.Clone()
	r2.ExpandToPoint(Point{-3, 7})
	if !r2.Min.Equal(Point{-3, 0}) || !r2.Max.Equal(Point{2, 7}) {
		t.Errorf("ExpandToPoint = %v", r2)
	}
}

func TestRectEnlargementOverlap(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	if got := a.Enlargement(a); got != 0 {
		t.Errorf("Enlargement(self) = %v", got)
	}
	if got := a.Enlargement(b); got != 9-4 {
		t.Errorf("Enlargement = %v, want 5", got)
	}
	if got := a.OverlapVolume(b); got != 1 {
		t.Errorf("OverlapVolume = %v, want 1", got)
	}
	c := NewRect(Point{5, 5}, Point{6, 6})
	if got := a.OverlapVolume(c); got != 0 {
		t.Errorf("OverlapVolume disjoint = %v, want 0", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 4})
	if got := r.MinDist(Point{2, 2}); got != 0 {
		t.Errorf("MinDist inside = %v", got)
	}
	if got := r.MinDist(Point{7, 4}); got != 3 {
		t.Errorf("MinDist lateral = %v, want 3", got)
	}
	if got := r.MinDist(Point{7, 8}); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinDist corner = %v, want 5", got)
	}
}

func TestRectCorners(t *testing.T) {
	r := NewRect(Point{2, 2}, Point{4, 6})
	q := Point{0, 0}
	if got := r.FarthestCorner(q); !got.Equal(Point{4, 6}) {
		t.Errorf("FarthestCorner = %v", got)
	}
	if got := r.NearestCorner(q); !got.Equal(Point{2, 2}) {
		t.Errorf("NearestCorner = %v", got)
	}
	// Query inside another quadrant: nearest/farthest flip per-dimension.
	q2 := Point{10, 0}
	if got := r.FarthestCorner(q2); !got.Equal(Point{2, 6}) {
		t.Errorf("FarthestCorner q2 = %v", got)
	}
	if got := r.NearestCorner(q2); !got.Equal(Point{4, 2}) {
		t.Errorf("NearestCorner q2 = %v", got)
	}
}

func TestRectPropertiesRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := 1 + r.Intn(4)
		a, b := randRect(r, d), randRect(r, d)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatal("union does not contain operands")
		}
		if u.Volume()+1e-9 < a.Volume() || u.Volume()+1e-9 < b.Volume() {
			t.Fatal("union volume smaller than operand")
		}
		inter, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			t.Fatal("Intersection/Intersects disagree")
		}
		if ok {
			if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
				t.Fatal("intersection not contained in operands")
			}
			if math.Abs(inter.Volume()-a.OverlapVolume(b)) > 1e-9 {
				t.Fatal("OverlapVolume disagrees with Intersection().Volume()")
			}
		}
		p := randPoint(r, d)
		if u.ContainsPoint(p) != (u.MinDist(p) == 0) {
			t.Fatal("MinDist==0 iff ContainsPoint violated")
		}
	}
}
