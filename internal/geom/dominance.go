package geom

import "math"

// DynDominates reports whether a dynamically dominates b with respect to the
// reference point ref, written a ≺_ref b in the paper: on every dimension
// |a[i]−ref[i]| <= |b[i]−ref[i]|, with strict inequality on at least one
// dimension (Papadias et al.'s dominance transported into the coordinate
// frame of ref; smaller absolute deviation is better).
func DynDominates(a, b, ref Point) bool {
	checkDims(len(a), len(ref))
	checkDims(len(b), len(ref))
	strict := false
	for i := range ref {
		da := math.Abs(a[i] - ref[i])
		db := math.Abs(b[i] - ref[i])
		if da > db {
			return false
		}
		if da < db {
			strict = true
		}
	}
	return strict
}

// Dominates reports classic (static) skyline dominance with minimization
// semantics: a <= b on every dimension and a < b on at least one.
func Dominates(a, b Point) bool {
	checkDims(len(a), len(b))
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// DomRect returns the hyper-rectangle centered at center whose per-dimension
// extent equals the coordinate-wise distance |q[i]−center[i]| to the query
// object q (Lemma 2 of the paper). Any point strictly inside this rectangle
// dynamically dominates q w.r.t. center; boundary points need the strictness
// check performed by DynDominates.
//
// The rectangle is built from its two opposite corners q and 2·center−q
// rather than center±extent, so that q and center are contained exactly
// even under floating-point rounding.
func DomRect(center, q Point) Rect {
	checkDims(len(center), len(q))
	mirror := make(Point, len(center))
	for i := range center {
		mirror[i] = 2*center[i] - q[i]
	}
	return NewRect(q, mirror)
}

// DomRects builds the dominance rectangle list ("RecList" in Algorithm 1)
// for a set of sample points of an uncertain object against q.
func DomRects(samples []Point, q Point) []Rect {
	recs := make([]Rect, len(samples))
	for i, s := range samples {
		recs[i] = DomRect(s, q)
	}
	return recs
}

// boundaryPad is the relative padding used to reconcile the dominance
// predicate with rectangle containment under floating-point rounding: the
// two are computed along different float paths and can disagree by an ULP
// exactly on the rectangle boundary.
const boundaryPad = 1e-12

// DomRectOuter returns DomRect padded outward by a relative epsilon. Filter
// windows use it so that every point satisfying DynDominates is guaranteed
// to fall inside the window; exactness is restored by the dominance check
// on the filtered candidates.
func DomRectOuter(center, q Point) Rect {
	r := DomRect(center, q)
	for i := range r.Min {
		eps := boundaryPad * (1 + math.Abs(r.Min[i]) + math.Abs(r.Max[i]))
		r.Min[i] -= eps
		r.Max[i] += eps
	}
	return r
}

// DomRectUnionOuter bounds the union of the dominance rectangles of every
// anchor inside region: since DomRect(a, q) spans the corners q and 2a−q,
// and the mirror 2a−q ranges over the rectangle 2·region−q as a ranges over
// region, the union is contained in the bounding box of q and that mirrored
// rectangle. The result is padded outward like DomRectOuter. This is the
// node-level window of the batch candidate filter: an object can dominate q
// w.r.t. some anchor in region only if its MBR intersects this box, and the
// bound is monotone (region ⊆ region' ⇒ window ⊆ window'), which makes it
// safe for branch-and-bound descent over R-tree node MBRs.
func DomRectUnionOuter(region Rect, q Point) Rect {
	checkDims(len(region.Min), len(q))
	min := make(Point, len(q))
	max := make(Point, len(q))
	for i := range q {
		lo := 2*region.Min[i] - q[i]
		hi := 2*region.Max[i] - q[i]
		min[i] = math.Min(q[i], lo)
		max[i] = math.Max(q[i], hi)
		// Each side is padded relative to its own magnitude only:
		// x − pad(|x|) and x + pad(|x|) are monotone in x, which keeps
		// the whole construction monotone under region growth (a pad
		// derived from the opposite side could shrink while the window
		// grows and break containment by an ULP-scale sliver).
		min[i] -= boundaryPad * (1 + math.Abs(min[i]))
		max[i] += boundaryPad * (1 + math.Abs(max[i]))
	}
	return Rect{Min: min, Max: max}
}

// DomRectInner returns DomRect shrunk inward by a relative epsilon (never
// collapsing past the center). Soundness-critical containment tests — e.g.
// the pdf-model Γ1 rectangle, where a false positive would wrongly force an
// object into every contingency set — use it as the conservative direction.
func DomRectInner(center, q Point) Rect {
	r := DomRect(center, q)
	for i := range r.Min {
		eps := boundaryPad * (1 + math.Abs(r.Min[i]) + math.Abs(r.Max[i]))
		half := (r.Max[i] - r.Min[i]) / 2
		if eps > half {
			eps = half
		}
		r.Min[i] += eps
		r.Max[i] -= eps
	}
	return r
}
