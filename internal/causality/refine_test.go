package causality

import (
	"context"
	"math"
	"testing"

	"github.com/crsky/crsky/internal/prob"
)

// TestTightenGainsZeroCoverage pins the per-sample zero-coverage
// refinement of the admissible bound on a hand-built instance: candidate A
// dominates sample 0 with probability 1 and is counterfactual, so Lemma 5
// keeps it active through every contingency search and sample 0's mass is
// permanently dead — the other candidates' gains must shed their sample-0
// share, and the search must still find the exact causes.
func TestTightenGainsZeroCoverage(t *testing.T) {
	weights := []float64{0.5, 0.5}
	d := [][]float64{
		{1, 0},     // A: blocks sample 0 outright, inert on sample 1
		{0.1, 0.9}, // B
		{0.1, 0.8}, // C
	}
	alpha := 0.2
	e := prob.NewEvaluatorRaw(weights, d)

	// Sanity: A is the sole counterfactual at this α.
	if pr := e.PrWithout(0); prob.Less(pr, alpha) {
		t.Fatalf("PrWithout(A) = %v, scenario wants a counterfactual A", pr)
	}
	for j := 1; j < 3; j++ {
		if pr := e.PrWithout(j); prob.GEq(pr, alpha) {
			t.Fatalf("PrWithout(%d) = %v, scenario wants a non-counterfactual", j, pr)
		}
	}

	r := newRefiner(context.Background(), e, []int{0, 1, 2}, alpha, Options{})
	rawB, rawC := r.gains[1], r.gains[2]
	r.classify()
	if !r.counterfactual[0] || r.counterfactual[1] || r.counterfactual[2] {
		t.Fatalf("classify marks = %v", r.counterfactual)
	}
	r.tightenGains()

	// Each candidate's gain drops by exactly its sample-0 mass (w=0.5,
	// d=0.1): the blocked sample can never pay out.
	for j, raw := range map[int]float64{1: rawB, 2: rawC} {
		want := raw - 0.5*d[j][0]
		if math.Abs(r.gains[j]-want) > 1e-12 {
			t.Fatalf("tightened gain[%d] = %v, want %v (raw %v)", j, r.gains[j], want, raw)
		}
	}

	// End-to-end through run(): A counterfactual (responsibility 1), B and
	// C mutual contingencies (responsibility 1/2 each).
	causes, err := newRefiner(context.Background(), prob.NewEvaluatorRaw(weights, d),
		[]int{0, 1, 2}, alpha, Options{}).run()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 1, 1: 0.5, 2: 0.5}
	if len(causes) != len(want) {
		t.Fatalf("causes = %v, want 3", causes)
	}
	for _, c := range causes {
		if math.Abs(c.Responsibility-want[c.ID]) > 1e-12 {
			t.Fatalf("cause %d responsibility %v, want %v", c.ID, c.Responsibility, want[c.ID])
		}
	}
}

// TestTightenGainsNoBlockerNoChange: without a probability-1 blocker among
// the counterfactuals the gains are untouched (the mask is nil and the
// bound reduces to the plain dominance mass).
func TestTightenGainsNoBlockerNoChange(t *testing.T) {
	weights := []float64{0.5, 0.5}
	d := [][]float64{
		{0.95, 0.9}, // counterfactual at α=0.01, but never d == 1
		{0.3, 0.4},
	}
	e := prob.NewEvaluatorRaw(weights, d)
	r := newRefiner(context.Background(), e, []int{0, 1}, 0.01, Options{})
	before := append([]float64(nil), r.gains...)
	r.classify()
	if !r.counterfactual[0] {
		t.Fatalf("scenario wants candidate 0 counterfactual (marks %v)", r.counterfactual)
	}
	r.tightenGains()
	for j := range before {
		if r.gains[j] != before[j] {
			t.Fatalf("gain[%d] changed %v -> %v without a hard blocker", j, before[j], r.gains[j])
		}
	}
}
