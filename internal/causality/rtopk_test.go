package causality

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func TestScore(t *testing.T) {
	if got := Score(geom.Point{1, 2}, geom.Point{3, 4}); got != 11 {
		t.Fatalf("Score = %v, want 11", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	Score(geom.Point{1}, geom.Point{1, 2})
}

func TestIsReverseTopKAnswer(t *testing.T) {
	products := []geom.Point{{1, 1}, {2, 2}, {9, 9}}
	w := geom.Point{1, 1}
	q := geom.Point{3, 3} // score 6; better: (1,1)=2, (2,2)=4 -> b=2
	if IsReverseTopKAnswer(products, w, q, 2) {
		t.Fatal("b=2, k=2: q not in top-2")
	}
	if !IsReverseTopKAnswer(products, w, q, 3) {
		t.Fatal("b=2, k=3: q in top-3")
	}
}

// TestCRTopKMatchesOracle validates the closed-form reverse top-k causality
// against the Definition-1 exhaustive oracle.
func TestCRTopKMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	ran := 0
	for trial := 0; trial < 300 && ran < 100; trial++ {
		d := 1 + r.Intn(3)
		n := 3 + r.Intn(6)
		products := make([]geom.Point, n)
		for i := range products {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = r.Float64() * 10
			}
			products[i] = p
		}
		w := make(geom.Point, d)
		for j := range w {
			w[j] = r.Float64()
		}
		q := make(geom.Point, d)
		for j := range q {
			q[j] = r.Float64() * 10
		}
		k := 1 + r.Intn(3)
		got, err := CRTopK(products, w, q, k)
		if errors.Is(err, ErrNotNonAnswer) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ran++
		want := BruteCausesRTopK(products, w, q, k)
		causesEqual(t, got.Causes, want, "CRTopK vs oracle")
	}
	if ran < 40 {
		t.Fatalf("only %d informative trials", ran)
	}
}

func TestCRTopKClosedForm(t *testing.T) {
	// 5 better products, k=3: every cause has |Γ| = 2, responsibility 1/3.
	products := []geom.Point{
		{1}, {2}, {3}, {4}, {5}, // scores 1..5 under w=(1)
		{100}, {200},
	}
	w := geom.Point{1}
	q := geom.Point{6} // b = 5
	res, err := CRTopK(products, w, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 5 || len(res.Causes) != 5 {
		t.Fatalf("candidates/causes = %d/%d", res.Candidates, len(res.Causes))
	}
	for _, c := range res.Causes {
		if math.Abs(c.Responsibility-1.0/3) > 1e-12 || len(c.Contingency) != 2 {
			t.Fatalf("cause %+v, want responsibility 1/3 with |Γ|=2", c)
		}
	}
	// b == k: counterfactual causes.
	res2, err := CRTopK(products, w, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.Causes {
		if !c.Counterfactual || c.Responsibility != 1 {
			t.Fatalf("b==k should make every cause counterfactual: %+v", c)
		}
	}
}

func TestCRTopKErrors(t *testing.T) {
	products := []geom.Point{{1, 1}, {2, 2}}
	w := geom.Point{1, 1}
	q := geom.Point{9, 9}
	if _, err := CRTopK(nil, w, q, 1); err == nil {
		t.Error("empty products should fail")
	}
	if _, err := CRTopK(products, w, q, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := CRTopK(products, geom.Point{1}, q, 1); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := CRTopK(products, geom.Point{-1, 1}, q, 1); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := CRTopK(products, w, geom.Point{0, 0}, 1); !errors.Is(err, ErrNotNonAnswer) {
		t.Errorf("answer user: %v", err)
	}
	if _, err := CRTopK([]geom.Point{{1}, {1, 2}}, geom.Point{1}, geom.Point{5}, 1); err == nil {
		t.Error("mixed product dims should fail")
	}
}
