package causality

import (
	"context"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/uncertain"
)

// PDFSet is a continuous-model uncertain dataset: pdf objects whose IDs
// equal their slice positions, with a lazily built R-tree over the
// uncertainty regions. Deleted objects leave nil tombstones (see
// WithDelete); IDs are never reused.
type PDFSet struct {
	Objects []*uncertain.PDFObject
	tree    *rtree.Tree
	// dims pins the dimensionality on sets that may hold tombstones;
	// 0 = derive from the first live object.
	dims int
}

// NewPDFSet validates the objects and wraps them.
func NewPDFSet(objs []*uncertain.PDFObject) (*PDFSet, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("causality: no pdf objects")
	}
	d := objs[0].Dims()
	for i, o := range objs {
		if o.ID != i {
			return nil, fmt.Errorf("causality: pdf object at index %d has ID %d", i, o.ID)
		}
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if o.Dims() != d {
			return nil, fmt.Errorf("causality: pdf object %d has %d dims, want %d", i, o.Dims(), d)
		}
	}
	return &PDFSet{Objects: objs}, nil
}

// Len returns the number of objects.
func (s *PDFSet) Len() int { return len(s.Objects) }

// Dims returns the dataset dimensionality.
func (s *PDFSet) Dims() int {
	if s.dims > 0 {
		return s.dims
	}
	for _, o := range s.Objects {
		if o != nil {
			return o.Dims()
		}
	}
	return 0
}

// Tree returns the R-tree over uncertainty regions, built on first use.
// Tombstone slots are not indexed.
func (s *PDFSet) Tree(opts ...rtree.Option) *rtree.Tree {
	if s.tree == nil {
		items := make([]rtree.Item, 0, len(s.Objects))
		for i, o := range s.Objects {
			if o == nil {
				continue
			}
			items = append(items, rtree.Item{Rect: o.Region.Clone(), ID: i})
		}
		t := rtree.New(s.Dims(), opts...)
		t.BulkLoad(items)
		s.tree = t
	}
	return s.tree
}

// WithInsert returns a copy of s with o appended, sharing index structure
// copy-on-write with the receiver (which is never modified). The object's
// ID must be len(s.Objects), the next positional slot.
func (s *PDFSet) WithInsert(o *uncertain.PDFObject) (*PDFSet, error) {
	if o == nil {
		return nil, fmt.Errorf("causality: nil pdf object")
	}
	if o.ID != len(s.Objects) {
		return nil, fmt.Errorf("causality: insert ID %d, want next slot %d", o.ID, len(s.Objects))
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if d := s.Dims(); d > 0 && o.Dims() != d {
		return nil, fmt.Errorf("causality: pdf object has %d dims, set has %d", o.Dims(), d)
	}
	ns := s.cowShell()
	ns.Objects = append(ns.Objects, o)
	ns.tree.Insert(o.Region.Clone(), o.ID)
	return ns, nil
}

// WithDelete returns a copy of s with object id tombstoned.
func (s *PDFSet) WithDelete(id int) (*PDFSet, error) {
	if id < 0 || id >= len(s.Objects) {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, id)
	}
	o := s.Objects[id]
	if o == nil {
		return nil, fmt.Errorf("%w: %d already deleted", ErrBadObject, id)
	}
	ns := s.cowShell()
	if !ns.tree.Delete(o.Region, id) {
		return nil, fmt.Errorf("causality: pdf object %d missing from the index", id)
	}
	ns.Objects[id] = nil
	return ns, nil
}

func (s *PDFSet) cowShell() *PDFSet {
	tree := s.Tree().CloneCOW()
	objs := make([]*uncertain.PDFObject, len(s.Objects))
	copy(objs, s.Objects)
	return &PDFSet{Objects: objs, tree: tree, dims: s.Dims()}
}

// CPPDF is the continuous-pdf variant of CP (Section 3.2). The three
// differences from the discrete algorithm are exactly the paper's:
//
//  1. the candidate filter uses one dominance rectangle per sub-quadrant
//     piece of an's uncertainty region, formed through the piece's
//     farthest corner from q (instead of one rectangle per sample);
//  2. Γ1 membership is certified geometrically through the rectangle of
//     the nearest corner (objects inside it dominate q w.r.t. every point
//     of an's region), complemented by the evaluator's exact mass test;
//  3. probabilities are integrals instead of sums — dominance masses are
//     exact per-dimension products, and Pr(an | ·) integrates over an's
//     region with Gauss–Legendre cubature (Options.QuadNodes per dim).
func CPPDF(s *PDFSet, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	return CPPDFCtx(context.Background(), s, q, anID, alpha, opts)
}

// CPPDFCtx is CPPDF under a context, with the same cancellation contract as
// CPCtx: an amortized poll at the budget-charging points and a typed
// *ctxutil.CanceledError with partial statistics on cancellation.
func CPPDFCtx(ctx context.Context, s *PDFSet, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	if anID < 0 || anID >= s.Len() || s.Objects[anID] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, s.Dims(), alpha); err != nil {
		return nil, err
	}
	if err := precheck(ctx); err != nil {
		return nil, err
	}
	an := s.Objects[anID]

	// Resolve the quadrature resolution up front so the recorded value (and
	// any later re-verification) matches the integrals the search ran on.
	quadNodes := opts.QuadNodes
	if quadNodes <= 0 {
		quadNodes = uncertain.DefaultQuadNodes(s.Dims())
	}

	// Difference 1: sub-quadrant farthest-corner rectangles.
	tr := obs.FromContext(ctx)
	endFilter := tr.StartSpan("explain.filter")
	recs := prob.CandidateRectsPDF(an, q)
	var candIDs []int
	filterIO := s.Tree().SearchAnyCounted(recs, func(id int, _ geom.Rect) bool {
		if id != anID {
			candIDs = append(candIDs, id)
		}
		return true
	})
	endFilter()
	sort.Ints(candIDs)
	if opts.MaxCandidates > 0 && len(candIDs) > opts.MaxCandidates {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyCandidates, len(candIDs), opts.MaxCandidates)
	}

	cands := make([]*uncertain.PDFObject, len(candIDs))
	for i, id := range candIDs {
		cands[i] = s.Objects[id]
	}
	e := prob.NewPDFEvaluator(an, q, cands, quadNodes)

	// Drop geometric false positives (regions touching a filter rectangle
	// with zero dominance mass) so the refinement space stays tight.
	keptRows := 0
	for j := range cands {
		if !e.NeverDominates(j) {
			candIDs[keptRows] = candIDs[j]
			cands[keptRows] = cands[j]
			keptRows++
		}
	}
	wasN := e.N()
	candIDs = candIDs[:keptRows]
	cands = cands[:keptRows]
	if keptRows != wasN {
		e = prob.NewPDFEvaluator(an, q, cands, quadNodes)
	}

	pr := e.Pr()
	if prob.GEq(pr, alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, pr, alpha)
	}

	res := &Result{NonAnswer: anID, Pr: pr, Candidates: len(candIDs), FilterNodeAccesses: filterIO, QuadNodes: quadNodes}
	if prob.GEq(alpha, 1) {
		res.Causes = alphaOneCauses(candIDs)
		res.addToTrace(tr)
		return res, nil
	}

	r := newRefiner(ctx, e, candIDs, alpha, opts)
	// Difference 2: geometric Γ1 certification via the nearest-corner
	// rectangle. The evaluator's mass-based AlwaysDominates (set in
	// classify) and this test agree on exact arithmetic; the geometric
	// test is added for robustness against quadrature discretization.
	if core, ok := prob.CoreRectPDF(an, q); ok {
		for j, c := range cands {
			if core.ContainsRect(c.Region) {
				r.forced[j] = true
			}
		}
	}
	causes, err := r.run()
	if err != nil {
		return nil, err
	}
	res.Causes = causes
	res.SubsetsExamined = r.subsetsCount()
	res.GreedySeeds, res.GreedyHits = r.greedyStats()
	res.addToTrace(tr)
	return res, nil
}
