package causality

import (
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/geom"
)

// This file implements the paper's stated future work (Section 7): the
// causality and responsibility problem on reverse top-k queries.
//
// Setting (Vlachou et al.'s monochromatic reverse top-k): products are
// points with smaller-is-better attributes, a user is a non-negative weight
// vector w, and the score of product p for user w is the weighted sum
// Σ_j w[j]·p[j]. User w belongs to the reverse top-k of a query product q
// when fewer than k products score strictly better than q for w. A user
// missing from that result asks which products push q out of their top-k.
//
// The causality structure mirrors CR's Lemma 7: exactly the products
// scoring strictly better than q are actual causes, every minimum
// contingency set has size b−k (b = number of better products), and every
// cause has responsibility 1/(1+b−k).

// Score returns the linear score Σ_j w[j]·p[j] of product p for user w.
func Score(w, p geom.Point) float64 {
	if len(w) != len(p) {
		panic("causality: weight/product dimensionality mismatch")
	}
	var s float64
	for j := range w {
		s += w[j] * p[j]
	}
	return s
}

// IsReverseTopKAnswer reports whether user w belongs to the reverse top-k
// result of query product q over the products: q ranks in w's top-k, i.e.,
// fewer than k products score strictly better than q.
func IsReverseTopKAnswer(products []geom.Point, w, q geom.Point, k int) bool {
	return betterCount(products, w, q) < k
}

func betterCount(products []geom.Point, w, q geom.Point) int {
	sq := Score(w, q)
	b := 0
	for _, p := range products {
		if Score(w, p) < sq {
			b++
		}
	}
	return b
}

// CRTopK computes the causality and responsibility for a user w that is a
// non-answer to the reverse top-k query of product q. The Result reuses the
// CRP vocabulary: Causes hold product indexes, Candidates is the number of
// better-scoring products b, and every responsibility is 1/(1+b−k).
func CRTopK(products []geom.Point, w, q geom.Point, k int) (*Result, error) {
	if len(products) == 0 {
		return nil, fmt.Errorf("causality: no products")
	}
	if k <= 0 {
		return nil, fmt.Errorf("causality: k must be positive, got %d", k)
	}
	d := q.Dims()
	if w.Dims() != d {
		return nil, fmt.Errorf("causality: weight vector has %d dims, query product has %d", w.Dims(), d)
	}
	for j, v := range w {
		if v < 0 {
			return nil, fmt.Errorf("causality: negative weight w[%d]=%v", j, v)
		}
	}
	sq := Score(w, q)
	var better []int
	for i, p := range products {
		if p.Dims() != d {
			return nil, fmt.Errorf("causality: product %d has %d dims, want %d", i, p.Dims(), d)
		}
		if Score(w, p) < sq {
			better = append(better, i)
		}
	}
	b := len(better)
	if b < k {
		return nil, fmt.Errorf("%w: q is in the user's top-%d (only %d better products)", ErrNotNonAnswer, k, b)
	}

	// Every better product is an actual cause: choose any Γ of b−k other
	// better products; then b−k+1 removals drop the better count to k−1.
	// No smaller Γ works because |B−Γ| must be exactly k before the cause
	// itself is removed.
	res := &Result{NonAnswer: -1, Candidates: b}
	gammaSize := b - k
	for _, idx := range better {
		contingency := make([]int, 0, gammaSize)
		for _, other := range better {
			if other != idx && len(contingency) < gammaSize {
				contingency = append(contingency, other)
			}
		}
		sort.Ints(contingency)
		res.Causes = append(res.Causes, Cause{
			ID:             idx,
			Responsibility: 1 / float64(1+gammaSize),
			Contingency:    contingency,
			Counterfactual: gammaSize == 0,
		})
	}
	sortCauses(res.Causes)
	return res, nil
}

// BruteCausesRTopK is the Definition-1 oracle for reverse top-k causality:
// exhaustive subset search over the products. Exponential — test use only.
func BruteCausesRTopK(products []geom.Point, w, q geom.Point, k int) []Cause {
	n := len(products)
	isAnswer := func(removed map[int]bool, extra int) bool {
		sq := Score(w, q)
		b := 0
		for i, p := range products {
			if !removed[i] && i != extra && Score(w, p) < sq {
				b++
			}
		}
		return b < k
	}
	var causes []Cause
	for p := 0; p < n; p++ {
		pool := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != p {
				pool = append(pool, i)
			}
		}
		found := false
		for size := 0; size <= len(pool) && !found; size++ {
			forEachSubset(pool, size, func(gamma []int) bool {
				removed := make(map[int]bool, len(gamma))
				for _, id := range gamma {
					removed[id] = true
				}
				if !isAnswer(removed, -1) && isAnswer(removed, p) {
					contingency := append([]int{}, gamma...)
					sort.Ints(contingency)
					causes = append(causes, Cause{
						ID:             p,
						Responsibility: 1 / float64(1+size),
						Contingency:    contingency,
						Counterfactual: size == 0,
					})
					found = true
					return false
				}
				return true
			})
		}
	}
	sortCauses(causes)
	return causes
}
