// Package causality implements the paper's contribution: computing the
// causality and responsibility for non-answers to probabilistic reverse
// skyline queries (algorithm CP with FMCS, Section 3), its continuous-pdf
// variant (Section 3.2), the certain-data algorithm CR (Section 4,
// Lemma 7), the Naive-I/Naive-II baselines used in the evaluation, and a
// brute-force Definition-1 oracle for testing.
package causality

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/ctxutil"
)

// Cause is one actual cause for a non-answer, with its responsibility and a
// minimum contingency set witnessing it (Definitions 1–2).
type Cause struct {
	// ID is the causing object's ID.
	ID int
	// Responsibility is 1/(1+|Γ|) for a minimum contingency set Γ.
	Responsibility float64
	// Contingency is one minimum contingency set (object IDs, sorted).
	// Empty for counterfactual causes.
	Contingency []int
	// Counterfactual marks causes whose contingency set is empty.
	Counterfactual bool
}

// Result is the output of a causality computation plus diagnostics used by
// the experiment harness.
type Result struct {
	// NonAnswer is the ID of the explained non-answer object.
	NonAnswer int
	// Pr is the probability of the non-answer being a reverse skyline
	// point over the full dataset (always < α).
	Pr float64
	// Causes lists every actual cause, sorted by descending responsibility
	// and ascending ID.
	Causes []Cause
	// Candidates is |Cc|, the candidate-cause count after filtering.
	Candidates int
	// SubsetsExamined counts contingency-set verifications performed
	// during refinement (the work the paper's lemmas save).
	SubsetsExamined int64
	// GreedySeeds counts candidates for which the greedy incumbent pass
	// produced a verified contingency-set upper bound.
	GreedySeeds int64
	// GreedyHits counts candidates whose final minimum contingency size
	// equals their greedy incumbent — the search only certified
	// minimality instead of discovering the set.
	GreedyHits int64
	// FilterNodeAccesses is the simulated I/O of the candidate-retrieval
	// R-tree traversal (the Lemma-2 filter step) for this explanation.
	FilterNodeAccesses int64
	// QuadNodes is the per-dimension quadrature resolution the pdf-model
	// computation actually ran at (0 for the discrete models). Recording
	// the resolved value lets an independent verifier re-integrate at the
	// same discretization the search used.
	QuadNodes int
}

// Options tunes the refinement stage.
type Options struct {
	// MaxCandidates aborts with ErrTooManyCandidates when the filter
	// returns more candidates than this (0 = unlimited). The refinement
	// is exponential in the candidate count in the worst case, exactly as
	// Theorem 1 states; the cap makes misuse fail fast instead of hanging.
	MaxCandidates int
	// MaxSubsets aborts with ErrSubsetBudget after this many refinement
	// evaluation units — contingency-set verifications, branch points a
	// prune killed, and the greedy incumbent pass's probability
	// evaluations (0 = unlimited). Charging pruned branch points and the
	// greedy pass keeps the budget a real latency bound under the
	// branch-and-bound search: prunes convert leaf verifications into
	// internal-node work, and the seed pass runs before any enumeration.
	MaxSubsets int64
	// QuadNodes is the per-dimension quadrature resolution for the
	// pdf-model algorithms (0 = dimension-adapted default).
	QuadNodes int

	// Parallel runs the per-candidate contingency searches on this many
	// worker goroutines (0 or 1 = serial). Each worker owns a clone of
	// the probability evaluator; Lemma-6 bounds are shared, which only
	// shrinks search spaces, so results are identical to the serial run.
	Parallel int

	// Ablation switches (benchmarking only — results stay correct, the
	// refinement just loses the corresponding optimization):
	// NoLemma4 stops forcing always-dominating objects into every
	// contingency set, NoLemma5 stops excluding counterfactual causes
	// from the search pools, NoLemma6 stops propagating found minimum
	// sets to their members, and NoPrune disables the monotonicity prune.
	NoLemma4 bool
	NoLemma5 bool
	NoLemma6 bool
	NoPrune  bool

	// Branch-and-bound ablations (same contract — results stay correct):
	// NoGreedySeed skips the greedy incumbent pass that seeds per-
	// candidate upper bounds before the exhaustive search, NoAdmissible
	// disables the removal-gain bound that prunes enumeration subtrees,
	// and NoMassOrder keeps pools and the candidate processing sequence
	// in index order instead of descending dominance mass.
	NoGreedySeed bool
	NoAdmissible bool
	NoMassOrder  bool
}

// Errors reported by the causality algorithms.
var (
	// ErrNotNonAnswer reports that the object to explain is actually an
	// answer to the query, so it has no non-answer causality.
	ErrNotNonAnswer = errors.New("causality: object is an answer, not a non-answer")
	// ErrTooManyCandidates reports a candidate set beyond Options.MaxCandidates.
	ErrTooManyCandidates = errors.New("causality: candidate set exceeds MaxCandidates")
	// ErrSubsetBudget reports that refinement exceeded Options.MaxSubsets.
	ErrSubsetBudget = errors.New("causality: subset verification budget exhausted")
	// ErrBadObject reports an unknown object reference.
	ErrBadObject = errors.New("causality: object index out of range")
)

// canceled and precheck are thin aliases over the shared ctxutil helpers,
// binding this package's partial-statistic (the subset counter) into the
// typed cancellation error.
func canceled(err error, subsets int64) error {
	return ctxutil.WrapCanceled(err, subsets, 0)
}

func precheck(ctx context.Context) error { return ctxutil.Precheck(ctx) }

func sortCauses(causes []Cause) {
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Responsibility != causes[j].Responsibility {
			return causes[i].Responsibility > causes[j].Responsibility
		}
		return causes[i].ID < causes[j].ID
	})
}

func (c Cause) String() string {
	if c.Counterfactual {
		return fmt.Sprintf("cause %d (counterfactual, r=1)", c.ID)
	}
	return fmt.Sprintf("cause %d (r=%.4g, |Γ|=%d)", c.ID, c.Responsibility, len(c.Contingency))
}
