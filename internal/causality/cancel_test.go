package causality

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
)

// countdownCtx is a deterministic cancellation source: Err() returns
// context.Canceled after the n-th call. Combined with the amortized poll it
// cancels the search at an exact, reproducible point mid-run — no timing,
// no sleeps.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func newCountdownCtx(after int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.n.Store(after)
	return c
}

// Done returns a non-nil channel so ctxutil.NewPoll treats the context as
// cancelable (context.Background().Done() is nil).
func (c *countdownCtx) Done() <-chan struct{} { return make(chan struct{}) }

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// cancelWorkload builds an instance whose refinement performs well over one
// poll stride of work, so a countdown context reliably cancels mid-search.
func cancelWorkload(t *testing.T) (*dataset.Uncertain, geom.Point, float64, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	cfg := dataset.LUrU(22, 2, 0, 3000, rng.Int63())
	cfg.Samples = 2
	cfg.Domain = 1000
	ds, err := dataset.GenerateUncertain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{400, 400}
	const alpha = 0.6
	for an := 0; an < ds.Len(); an++ {
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[an], q, ds.Objects), alpha) {
			continue
		}
		// The deepest countdown in the tests cancels after ~6 poll strides,
		// so the search must charge well beyond that many work units.
		res, err := CP(ds, q, an, alpha, Options{})
		if err == nil && res.SubsetsExamined > 10*ctxutil.DefaultStride && len(res.Causes) > 0 {
			return ds, q, alpha, an
		}
	}
	t.Fatal("no workload with a substantial search found; regenerate the seed")
	return nil, nil, 0, 0
}

// TestExplainCtxCanceledPromptly asserts the cancellation contract of
// CPCtx: a context dying mid-search surfaces as a *ctxutil.CanceledError
// that unwraps to context.Canceled, carries partial statistics, and stops
// within one poll stride of additional work.
func TestExplainCtxCanceledPromptly(t *testing.T) {
	ds, q, alpha, an := cancelWorkload(t)

	// Pre-canceled context: no work at all.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CPCtx(dead, ds, q, an, alpha, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled CPCtx returned %v, want context.Canceled", err)
	}

	// Countdown cancellation at several depths: typed error, partial
	// stats, and stride-bounded overshoot.
	full, err := CP(ds, q, an, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, after := range []int64{1, 2, 5} {
		ctx := newCountdownCtx(after)
		_, err := CPCtx(ctx, ds, q, an, alpha, Options{})
		if err == nil {
			t.Fatalf("after=%d: CPCtx survived a canceled context (search only needs %d subsets)",
				after, full.SubsetsExamined)
		}
		var ce *ctxutil.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("after=%d: error %T (%v) is not a *ctxutil.CanceledError", after, err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: %v does not unwrap to context.Canceled", after, err)
		}
		// The poll fires every stride work units and Err() goes non-nil at
		// the (after+1)-th poll, so the search performs at most
		// (after+1)×stride units — SubsetsExamined (leaves only) is a lower
		// bound of work units, so it must stay below that ceiling.
		if max := (after + 1) * ctxutil.DefaultStride; ce.SubsetsExamined > max {
			t.Fatalf("after=%d: %d subsets examined after cancellation, stride bound is %d",
				after, ce.SubsetsExamined, max)
		}
	}
}

// TestExplainCtxLeavesEngineReusable asserts a canceled run leaves no
// residue: the next uncanceled call returns a result bit-identical to a
// run on a fresh evaluator — causes, responsibilities, contingency sets,
// and the (deterministic, serial) SubsetsExamined counter.
func TestExplainCtxLeavesEngineReusable(t *testing.T) {
	ds, q, alpha, an := cancelWorkload(t)
	want, err := CP(ds, q, an, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, after := range []int64{1, 3} {
		if _, err := CPCtx(newCountdownCtx(after), ds, q, an, alpha, Options{}); err == nil {
			t.Fatalf("after=%d: expected cancellation", after)
		}
		got, err := CPCtx(context.Background(), ds, q, an, alpha, Options{})
		if err != nil {
			t.Fatalf("after=%d: run following a canceled one failed: %v", after, err)
		}
		if !reflect.DeepEqual(got.Causes, want.Causes) {
			t.Fatalf("after=%d: causes diverged after a canceled run:\n got %v\nwant %v", after, got.Causes, want.Causes)
		}
		if got.SubsetsExamined != want.SubsetsExamined {
			t.Fatalf("after=%d: SubsetsExamined %d after a canceled run, want %d",
				after, got.SubsetsExamined, want.SubsetsExamined)
		}
	}
}

// TestExplainCtxCancelParallel cancels mid-search under Parallel=4 from a
// live goroutine — the race-detector companion of the deterministic tests:
// workers must drain cleanly and the engine must stay reusable. Run with
// -race (CI does).
func TestExplainCtxCancelParallel(t *testing.T) {
	ds, q, alpha, an := cancelWorkload(t)
	want, err := CP(ds, q, an, alpha, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i%4) * 50 * time.Microsecond)
			cancel()
		}()
		res, err := CPCtx(ctx, ds, q, an, alpha, Options{Parallel: 4})
		switch {
		case err == nil:
			// The search may legitimately win the race; the result must be
			// the real one.
			if fmt.Sprint(res.Causes) != fmt.Sprint(want.Causes) {
				t.Fatalf("iteration %d: racy run returned wrong causes", i)
			}
		case errors.Is(err, context.Canceled):
			// Expected; engine must stay reusable.
		default:
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
		cancel()
	}
	got, err := CP(ds, q, an, alpha, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Causes) != fmt.Sprint(want.Causes) {
		t.Fatal("engine not reusable after parallel cancellations")
	}
}

// TestRepairCtxCanceled asserts MinimalRepairCtx honors cancellation in
// both phases (greedy and exact) and stays reusable.
func TestRepairCtxCanceled(t *testing.T) {
	ds, q, alpha, an := cancelWorkload(t)
	want, err := MinimalRepair(ds, q, an, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinimalRepairCtx(dead, ds, q, an, alpha, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled repair returned %v", err)
	}
	for _, after := range []int64{1, 2} {
		_, err := MinimalRepairCtx(newCountdownCtx(after), ds, q, an, alpha, Options{})
		if err == nil {
			continue // small instances may finish under the countdown
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: %v does not unwrap to context.Canceled", after, err)
		}
	}
	got, err := MinimalRepair(ds, q, an, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("repair diverged after cancellations: got %+v want %+v", got, want)
	}
}

// TestNaiveICtxCanceled pins the oracle's cancellation path.
func TestNaiveICtxCanceled(t *testing.T) {
	ds, q, alpha, an := cancelWorkload(t)
	_, err := NaiveICtx(newCountdownCtx(0), ds, q, an, alpha, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NaiveICtx returned %v, want context.Canceled", err)
	}
}
