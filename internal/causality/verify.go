package causality

import (
	"fmt"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// VerifyExplanation independently re-checks a CP result against
// Definition 1: for every reported cause c it confirms that the recorded
// contingency set Γ witnesses causehood — Pr(an | P−Γ) < α while
// Pr(an | P−Γ−{c}) >= α — and that responsibility equals 1/(1+|Γ|). It
// does not re-prove minimality (that would repeat the search); it proves
// the explanation is sound. Useful as a trust layer on top of Explain and
// heavily used by the integration tests.
func VerifyExplanation(ds *dataset.Uncertain, q geom.Point, alpha float64, res *Result) error {
	if res == nil {
		return fmt.Errorf("causality: nil result")
	}
	if res.NonAnswer >= 0 && res.NonAnswer < ds.Len() && ds.Objects[res.NonAnswer] == nil {
		return fmt.Errorf("%w: %d", ErrBadObject, res.NonAnswer)
	}
	return verifyCauses(ds.Len(), alpha, res, func(removed map[int]bool, extra int) float64 {
		return prWithRemoved(ds.Objects[res.NonAnswer], q, ds.Objects, removed, extra)
	})
}

// VerifyExplanationPDF is VerifyExplanation for the continuous model: the
// same Definition-1 checks with every probability an integral over an's
// uncertainty region instead of a sum over samples. quadNodes is the
// per-dimension Gauss–Legendre resolution (<= 0 selects the
// dimension-adapted default); pass Result.QuadNodes to re-integrate at the
// resolution the explanation was computed at, so the verifier and the
// search agree on the quadrature discretization.
func VerifyExplanationPDF(s *PDFSet, q geom.Point, alpha float64, quadNodes int, res *Result) error {
	if res == nil {
		return fmt.Errorf("causality: nil result")
	}
	if res.NonAnswer >= 0 && res.NonAnswer < s.Len() && s.Objects[res.NonAnswer] == nil {
		return fmt.Errorf("%w: %d", ErrBadObject, res.NonAnswer)
	}
	return verifyCauses(s.Len(), alpha, res, func(removed map[int]bool, extra int) float64 {
		return prWithRemovedPDF(s.Objects[res.NonAnswer], q, s.Objects, removed, extra, quadNodes)
	})
}

// verifyCauses runs the model-independent Definition-1 audit: structural
// checks (ID ranges, duplicates, the responsibility formula, the
// counterfactual flag) plus the two probability conditions per cause,
// evaluated through pr — Pr(an | P − removed − {extra}) under whichever
// probability model the caller binds in (extra < 0 removes nothing extra).
func verifyCauses(n int, alpha float64, res *Result, pr func(removed map[int]bool, extra int) float64) error {
	if res.NonAnswer < 0 || res.NonAnswer >= n {
		return fmt.Errorf("%w: %d", ErrBadObject, res.NonAnswer)
	}
	seen := make(map[int]bool, len(res.Causes))
	for i, c := range res.Causes {
		if c.ID < 0 || c.ID >= n || c.ID == res.NonAnswer {
			return fmt.Errorf("cause %d: bad object ID %d", i, c.ID)
		}
		if seen[c.ID] {
			return fmt.Errorf("cause %d: duplicate object ID %d", i, c.ID)
		}
		seen[c.ID] = true

		want := 1 / float64(1+len(c.Contingency))
		if diff := c.Responsibility - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("cause %d: responsibility %v, want 1/%d",
				c.ID, c.Responsibility, 1+len(c.Contingency))
		}
		if c.Counterfactual != (len(c.Contingency) == 0) {
			return fmt.Errorf("cause %d: counterfactual flag inconsistent with |Γ|=%d",
				c.ID, len(c.Contingency))
		}

		removed := make(map[int]bool, len(c.Contingency)+1)
		for _, g := range c.Contingency {
			if g == c.ID || g == res.NonAnswer || g < 0 || g >= n {
				return fmt.Errorf("cause %d: invalid contingency member %d", c.ID, g)
			}
			if removed[g] {
				return fmt.Errorf("cause %d: duplicate contingency member %d", c.ID, g)
			}
			removed[g] = true
		}

		pr1 := pr(removed, -1)
		if !prob.Less(pr1, alpha) {
			return fmt.Errorf("cause %d: an is already an answer on P−Γ (Pr=%v >= α=%v)",
				c.ID, pr1, alpha)
		}
		pr2 := pr(removed, c.ID)
		if !prob.GEq(pr2, alpha) {
			return fmt.Errorf("cause %d: removing it does not flip an (Pr=%v < α=%v)",
				c.ID, pr2, alpha)
		}
	}
	return nil
}

func prWithRemoved(an *uncertain.Object, q geom.Point, objs []*uncertain.Object,
	removed map[int]bool, extra int) float64 {

	act := make([]*uncertain.Object, 0, len(objs))
	for _, o := range objs {
		if o == nil || o.ID == an.ID || removed[o.ID] || o.ID == extra {
			continue
		}
		act = append(act, o)
	}
	return prob.PrReverseSkyline(an, q, act)
}

func prWithRemovedPDF(an *uncertain.PDFObject, q geom.Point, objs []*uncertain.PDFObject,
	removed map[int]bool, extra int, quadNodes int) float64 {

	act := make([]*uncertain.PDFObject, 0, len(objs))
	for _, o := range objs {
		if o == nil || o.ID == an.ID || removed[o.ID] || o.ID == extra {
			continue
		}
		act = append(act, o)
	}
	return prob.PrReverseSkylinePDF(an, q, act, quadNodes)
}
