package causality

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
)

// TestParallelCPMatchesSerial: the parallel refinement must produce exactly
// the serial results — same causes, responsibilities and contingency sizes.
func TestParallelCPMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(161))
	ran := 0
	for trial := 0; trial < 120 && ran < 40; trial++ {
		n := 5 + r.Intn(6)
		ds := randTinyUncertain(r, n, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		ran++
		serial, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := CP(ds, q, anID, 0.5, Options{Parallel: workers})
			if err != nil {
				t.Fatalf("parallel %d: %v", workers, err)
			}
			causesEqual(t, par.Causes, serial.Causes, "parallel vs serial")
		}
	}
	if ran < 15 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestParallelCPBudget: the shared subset budget aborts parallel runs too.
func TestParallelCPBudget(t *testing.T) {
	r := rand.New(rand.NewSource(162))
	for trial := 0; trial < 60; trial++ {
		ds := randTinyUncertain(r, 10, 2, 2)
		q := geom.Point{30, 30}
		anID := r.Intn(10)
		res, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil || res.SubsetsExamined < 4 {
			continue
		}
		_, err = CP(ds, q, anID, 0.5, Options{Parallel: 4, MaxSubsets: 1})
		if !errors.Is(err, ErrSubsetBudget) {
			t.Fatalf("expected budget error, got %v", err)
		}
		return
	}
	t.Skip("no instance with enough refinement work found")
}
