package causality

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// bruteMinRepairSize finds the true minimum removal-set size by exhaustive
// search over all objects (not just candidates).
func bruteMinRepairSize(objs []*uncertain.Object, q geom.Point, anID int, alpha float64) int {
	an := objs[anID]
	var pool []int
	for _, o := range objs {
		if o.ID != anID {
			pool = append(pool, o.ID)
		}
	}
	prWith := func(removed map[int]bool) float64 {
		var act []*uncertain.Object
		for _, o := range objs {
			if o.ID != anID && !removed[o.ID] {
				act = append(act, o)
			}
		}
		return prob.PrReverseSkyline(an, q, act)
	}
	for size := 0; size <= len(pool); size++ {
		found := false
		forEachSubset(pool, size, func(gamma []int) bool {
			removed := map[int]bool{}
			for _, id := range gamma {
				removed[id] = true
			}
			if prob.GEq(prWith(removed), alpha) {
				found = true
				return false
			}
			return true
		})
		if found {
			return size
		}
	}
	return len(pool)
}

// TestMinimalRepairMatchesBruteForce: the exact path must find a removal
// set of the true minimum size, and the set must actually work.
func TestMinimalRepairMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	ran := 0
	for trial := 0; trial < 200 && ran < 60; trial++ {
		n := 4 + r.Intn(5)
		ds := randTinyUncertain(r, n, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		ran++
		rep, err := MinimalRepair(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Exact {
			t.Fatalf("small instance should use the exact path")
		}
		want := bruteMinRepairSize(ds.Objects, q, anID, 0.5)
		if len(rep.Removed) != want {
			t.Fatalf("repair size %d, want %d (removed %v)", len(rep.Removed), want, rep.Removed)
		}
		// The repair must actually work.
		removed := map[int]bool{}
		for _, id := range rep.Removed {
			removed[id] = true
		}
		var act []*uncertain.Object
		for _, o := range ds.Objects {
			if o.ID != anID && !removed[o.ID] {
				act = append(act, o)
			}
		}
		if pr := prob.PrReverseSkyline(ds.Objects[anID], q, act); !prob.GEq(pr, 0.5) {
			t.Fatalf("repair does not reach the threshold: Pr=%v", pr)
		}
		if diff := rep.NewPr - prob.PrReverseSkyline(ds.Objects[anID], q, act); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("reported NewPr %v inconsistent", rep.NewPr)
		}
	}
	if ran < 25 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestRepairCounterfactualSingleton: when a counterfactual cause exists,
// the minimal repair is that single object.
func TestRepairCounterfactualSingleton(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniform(0, []geom.Point{{20, 20}, {24, 24}})
	blocker := uncertain.NewUniform(1, []geom.Point{{10, 10}, {11, 11}})
	bystander := uncertain.Certain(2, geom.Point{-70, -70})
	ds := dataset.MustUncertain([]*uncertain.Object{an, blocker, bystander})
	rep, err := MinimalRepair(ds, q, 0, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != 1 || !rep.Exact {
		t.Fatalf("repair = %+v, want exactly the blocker", rep)
	}
	if rep.NewPr != 1 {
		t.Fatalf("NewPr = %v, want 1", rep.NewPr)
	}
}

func TestRepairErrors(t *testing.T) {
	ds := dataset.MustUncertain([]*uncertain.Object{
		uncertain.Certain(0, geom.Point{5, 5}),
		uncertain.Certain(1, geom.Point{500, 500}),
	})
	if _, err := MinimalRepair(ds, geom.Point{4, 4}, 0, 0.5, Options{}); !errors.Is(err, ErrNotNonAnswer) {
		t.Errorf("answer object: %v", err)
	}
	if _, err := MinimalRepair(ds, geom.Point{4, 4}, 9, 0.5, Options{}); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := MinimalRepair(ds, geom.Point{4}, 0, 0.5, Options{}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

// TestGreedyRepairOnLargePool: force the greedy fallback with a dataset of
// many partial blockers and verify it still produces a working repair.
func TestGreedyRepairOnLargePool(t *testing.T) {
	r := rand.New(rand.NewSource(172))
	objs := []*uncertain.Object{
		uncertain.NewUniform(0, []geom.Point{{50, 50}, {52, 52}}),
	}
	// 30 partial blockers close to the dominance region boundary.
	for i := 1; i <= 30; i++ {
		x := 20 + r.Float64()*20
		far := 500 + r.Float64()*100
		objs = append(objs, uncertain.NewUniform(i, []geom.Point{{x, x}, {far, far}}))
	}
	ds := dataset.MustUncertain(objs)
	q := geom.Point{0, 0}
	rep, err := MinimalRepair(ds, q, 0, 0.9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact {
		t.Log("exact path handled the pool; greedy not exercised at this seed")
	}
	if !prob.GEq(rep.NewPr, 0.9) {
		t.Fatalf("repair does not reach the threshold: %v", rep.NewPr)
	}
}
