package causality

import (
	"context"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// MinimalRepairPDF is MinimalRepair for the continuous model: a smallest
// removal set R with Pr(an | P−R) >= alpha, every probability an integral
// over an's uncertainty region (Gauss–Legendre cubature at
// Options.QuadNodes nodes per dimension, 0 = dimension-adapted default).
// The candidate filter is CPPDF's — one dominance rectangle per
// sub-quadrant piece of an's region — and the search itself is the shared
// kernel/greedy/branch-and-bound scheme, running unchanged on the
// quadrature-backed evaluator.
func MinimalRepairPDF(s *PDFSet, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	return MinimalRepairPDFCtx(context.Background(), s, q, anID, alpha, opts)
}

// MinimalRepairPDFCtx is MinimalRepairPDF under a context, with the same
// cancellation contract as MinimalRepairCtx.
func MinimalRepairPDFCtx(ctx context.Context, s *PDFSet, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	if anID < 0 || anID >= s.Len() || s.Objects[anID] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, s.Dims(), alpha); err != nil {
		return nil, err
	}
	if err := precheck(ctx); err != nil {
		return nil, err
	}
	an := s.Objects[anID]

	tr := obs.FromContext(ctx)
	endFilter := tr.StartSpan("repair.filter")
	recs := prob.CandidateRectsPDF(an, q)
	var candIDs []int
	s.Tree().SearchAnyCounted(recs, func(id int, _ geom.Rect) bool {
		if id != anID {
			candIDs = append(candIDs, id)
		}
		return true
	})
	endFilter()
	sort.Ints(candIDs)

	cands := make([]*uncertain.PDFObject, len(candIDs))
	for i, id := range candIDs {
		cands[i] = s.Objects[id]
	}
	e := prob.NewPDFEvaluator(an, q, cands, opts.QuadNodes)

	// Drop geometric false positives exactly as CPPDFCtx does: regions
	// touching a filter rectangle with zero dominance mass can never be
	// part of a minimum repair, and a tight pool keeps the exact phase
	// below its enumeration threshold more often.
	keptRows := 0
	for j := range cands {
		if !e.NeverDominates(j) {
			candIDs[keptRows] = candIDs[j]
			cands[keptRows] = cands[j]
			keptRows++
		}
	}
	wasN := e.N()
	candIDs = candIDs[:keptRows]
	cands = cands[:keptRows]
	if keptRows != wasN {
		e = prob.NewPDFEvaluator(an, q, cands, opts.QuadNodes)
	}

	return repairCore(ctx, e, candIDs, alpha, opts)
}
