package causality

import (
	"reflect"
	"testing"
)

// TestOptionsKeyCoversEveryField walks Options by reflection, perturbs one
// field at a time, and demands a distinct Key for every perturbation: a
// field the Key ignores would let crskyd serve a cached result computed
// under different options. The test fails automatically when a new field is
// added without extending Key.
func TestOptionsKeyCoversEveryField(t *testing.T) {
	base := Options{}
	baseKey := base.Key()
	typ := reflect.TypeOf(base)

	seen := map[string]string{baseKey: "<zero>"}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		v := reflect.New(typ).Elem()
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(7)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(0.5)
		case reflect.String:
			fv.SetString("x")
		default:
			t.Fatalf("field %s has kind %s: teach the key test how to perturb it", f.Name, fv.Kind())
		}
		key := v.Interface().(Options).Key()
		if key == baseKey {
			t.Errorf("field %s is not covered by Options.Key(): perturbing it left the key %q unchanged",
				f.Name, key)
			continue
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("fields %s and %s collide on key %q", prev, f.Name, key)
		}
		seen[key] = f.Name
	}
}

// TestOptionsKeyDistinguishesValues spot-checks that the Key separates
// different values of the same field, not just zero vs non-zero.
func TestOptionsKeyDistinguishesValues(t *testing.T) {
	pairs := []struct {
		a, b Options
	}{
		{Options{MaxSubsets: 10}, Options{MaxSubsets: 100}},
		{Options{Parallel: 2}, Options{Parallel: 4}},
		{Options{QuadNodes: 3}, Options{QuadNodes: 5}},
		{Options{NoGreedySeed: true}, Options{NoAdmissible: true}},
		{Options{NoAdmissible: true}, Options{NoMassOrder: true}},
	}
	for i, p := range pairs {
		if p.a.Key() == p.b.Key() {
			t.Errorf("pair %d: %+v and %+v share key %q", i, p.a, p.b, p.a.Key())
		}
	}
}
