package causality

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// randTinyUncertain builds a small clustered uncertain dataset where
// objects interact enough for interesting causality structure.
func randTinyUncertain(r *rand.Rand, n, d, maxSamples int) *dataset.Uncertain {
	objs := make([]*uncertain.Object, n)
	for i := 0; i < n; i++ {
		ns := 1 + r.Intn(maxSamples)
		center := make(geom.Point, d)
		for j := range center {
			center[j] = r.Float64() * 60
		}
		locs := make([]geom.Point, ns)
		for s := range locs {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = center[j] + (r.Float64()-0.5)*20
			}
			locs[s] = p
		}
		objs[i] = uncertain.NewUniform(i, locs)
	}
	return dataset.MustUncertain(objs)
}

func causesEqual(t *testing.T, got, want []Cause, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d causes, want %d\n got: %v\nwant: %v", context, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: cause %d ID %d, want %d", context, i, got[i].ID, want[i].ID)
		}
		if math.Abs(got[i].Responsibility-want[i].Responsibility) > 1e-9 {
			t.Fatalf("%s: cause %d responsibility %v, want %v",
				context, i, got[i].Responsibility, want[i].Responsibility)
		}
		if len(got[i].Contingency) != len(want[i].Contingency) {
			t.Fatalf("%s: cause %d |Γ| = %d, want %d (Γ=%v vs %v)",
				context, i, len(got[i].Contingency), len(want[i].Contingency),
				got[i].Contingency, want[i].Contingency)
		}
	}
}

// TestCPMatchesOracle is the central correctness test of the reproduction:
// CP must return exactly the Definition-1 causes with exact
// responsibilities on random small instances, validated against exhaustive
// search over all objects and all contingency subsets.
func TestCPMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	trials, ran := 0, 0
	for trials < 400 {
		trials++
		d := 1 + r.Intn(2)
		n := 3 + r.Intn(5)
		ds := randTinyUncertain(r, n, d, 3)
		q := make(geom.Point, d)
		for j := range q {
			q[j] = r.Float64() * 60
		}
		alpha := [5]float64{0.2, 0.4, 0.5, 0.6, 0.8}[r.Intn(5)]
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), alpha) {
			continue // an answer; nothing to explain
		}
		ran++
		got, err := CP(ds, q, anID, alpha, Options{})
		if err != nil {
			t.Fatalf("trial %d: CP: %v", trials, err)
		}
		want := BruteCausesUncertain(ds.Objects, q, anID, alpha)
		causesEqual(t, got.Causes, want, "CP vs oracle")
		// Every cause must be a candidate (Lemma 1) and the candidate
		// count must bound the causes.
		if len(got.Causes) > got.Candidates {
			t.Fatalf("more causes (%d) than candidates (%d)", len(got.Causes), got.Candidates)
		}
	}
	if ran < 100 {
		t.Fatalf("only %d informative trials out of %d", ran, trials)
	}
}

// TestNaiveIMatchesCP: the baseline must agree with CP while examining at
// least as many subsets.
func TestNaiveIMatchesCP(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	ran := 0
	for trial := 0; trial < 150 && ran < 60; trial++ {
		d := 1 + r.Intn(2)
		n := 4 + r.Intn(4)
		ds := randTinyUncertain(r, n, d, 3)
		q := make(geom.Point, d)
		for j := range q {
			q[j] = r.Float64() * 60
		}
		alpha := 0.5
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), alpha) {
			continue
		}
		ran++
		cp, err := CP(ds, q, anID, alpha, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveI(ds, q, anID, alpha, Options{})
		if err != nil {
			t.Fatal(err)
		}
		causesEqual(t, naive.Causes, cp.Causes, "NaiveI vs CP")
		if naive.Candidates != cp.Candidates {
			t.Fatalf("candidate counts differ: %d vs %d", naive.Candidates, cp.Candidates)
		}
		if len(cp.Causes) > 0 && naive.SubsetsExamined < cp.SubsetsExamined {
			t.Fatalf("NaiveI examined fewer subsets (%d) than CP (%d)",
				naive.SubsetsExamined, cp.SubsetsExamined)
		}
	}
	if ran < 30 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestCounterfactualExample mirrors the paper's Fig.-1c discussion: if a
// single uncertain object blocks an entirely, it is a counterfactual cause
// with responsibility 1.
func TestCounterfactualExample(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniform(0, []geom.Point{{20, 20}, {22, 22}})
	// blocker dominates q w.r.t. both samples of an in every world.
	blocker := uncertain.NewUniform(1, []geom.Point{{10, 10}, {11, 11}})
	// bystander cannot dominate q w.r.t. an at all.
	bystander := uncertain.Certain(2, geom.Point{-50, -50})
	ds := dataset.MustUncertain([]*uncertain.Object{an, blocker, bystander})

	res, err := CP(ds, q, 0, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pr != 0 {
		t.Fatalf("Pr(an) = %v, want 0", res.Pr)
	}
	if len(res.Causes) != 1 {
		t.Fatalf("causes = %v, want exactly the blocker", res.Causes)
	}
	c := res.Causes[0]
	if c.ID != 1 || !c.Counterfactual || c.Responsibility != 1 || len(c.Contingency) != 0 {
		t.Fatalf("unexpected cause: %+v", c)
	}
}

// TestAlphaOneFastPath checks Algorithm 1 lines 9–11: at α = 1 every
// candidate is a cause with responsibility 1/|Cc|.
func TestAlphaOneFastPath(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniform(0, []geom.Point{{20, 20}, {24, 24}})
	// Two partial blockers, each dominating in only some worlds.
	b1 := uncertain.NewUniform(1, []geom.Point{{10, 10}, {100, 100}})
	b2 := uncertain.NewUniform(2, []geom.Point{{15, 15}, {-90, 90}})
	ds := dataset.MustUncertain([]*uncertain.Object{an, b1, b2})

	res, err := CP(ds, q, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 2 || len(res.Causes) != 2 {
		t.Fatalf("candidates/causes = %d/%d, want 2/2", res.Candidates, len(res.Causes))
	}
	for _, c := range res.Causes {
		if math.Abs(c.Responsibility-0.5) > 1e-12 {
			t.Fatalf("responsibility %v, want 1/2", c.Responsibility)
		}
		if len(c.Contingency) != 1 {
			t.Fatalf("|Γ| = %d, want 1", len(c.Contingency))
		}
	}
	// Cross-check the fast path against the oracle.
	want := BruteCausesUncertain(ds.Objects, q, 0, 1)
	causesEqual(t, res.Causes, want, "alpha=1 vs oracle")
}

// TestLemma4ForcedMember builds an instance with a Γ1 object: a candidate
// whose every sample dominates q w.r.t. every sample of an must appear in
// every other cause's minimum contingency set.
func TestLemma4ForcedMember(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniform(0, []geom.Point{{20, 20}, {26, 26}})
	// forced: both samples dominate q w.r.t. both samples of an.
	forced := uncertain.NewUniform(1, []geom.Point{{8, 8}, {12, 12}})
	// partial: dominates only in one world.
	partial := uncertain.NewUniform(2, []geom.Point{{24, 24}, {200, 200}})
	ds := dataset.MustUncertain([]*uncertain.Object{an, forced, partial})

	res, err := CP(ds, q, 0, 0.6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := BruteCausesUncertain(ds.Objects, q, 0, 0.6)
	causesEqual(t, res.Causes, want, "Lemma 4 instance vs oracle")
	for _, c := range res.Causes {
		if c.ID == 1 {
			continue
		}
		inGamma := false
		for _, g := range c.Contingency {
			if g == 1 {
				inGamma = true
			}
		}
		if !inGamma {
			t.Fatalf("forced object missing from Γ of cause %d: %v", c.ID, c.Contingency)
		}
	}
}

func TestCPErrors(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	ds := randTinyUncertain(r, 6, 2, 2)
	q := geom.Point{30, 30}

	if _, err := CP(ds, q, -1, 0.5, Options{}); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := CP(ds, q, 99, 0.5, Options{}); !errors.Is(err, ErrBadObject) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := CP(ds, geom.Point{1}, 0, 0.5, Options{}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := CP(ds, q, 0, 0, Options{}); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := CP(ds, q, 0, 1.5, Options{}); err == nil {
		t.Error("alpha>1 should fail")
	}
	if _, err := CP(ds, q, 0, math.NaN(), Options{}); err == nil {
		t.Error("alpha=NaN should fail")
	}

	// An object with no dominators is an answer -> ErrNotNonAnswer.
	lonely := dataset.MustUncertain([]*uncertain.Object{
		uncertain.Certain(0, geom.Point{5, 5}),
		uncertain.Certain(1, geom.Point{500, 500}),
	})
	if _, err := CP(lonely, geom.Point{4, 4}, 0, 0.5, Options{}); !errors.Is(err, ErrNotNonAnswer) {
		t.Errorf("answer object: %v", err)
	}
}

func TestCPBudgets(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	var ds *dataset.Uncertain
	var q geom.Point
	var anID int
	// Find an instance with several candidates.
	for {
		ds = randTinyUncertain(r, 10, 2, 2)
		q = geom.Point{30, 30}
		anID = r.Intn(10)
		if prob.Less(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			res, err := CP(ds, q, anID, 0.5, Options{})
			if err == nil && res.Candidates >= 3 && res.SubsetsExamined > 1 {
				break
			}
		}
	}
	if _, err := CP(ds, q, anID, 0.5, Options{MaxCandidates: 1}); !errors.Is(err, ErrTooManyCandidates) {
		t.Errorf("MaxCandidates: %v", err)
	}
	if _, err := CP(ds, q, anID, 0.5, Options{MaxSubsets: 1}); !errors.Is(err, ErrSubsetBudget) {
		t.Errorf("MaxSubsets: %v", err)
	}
}

func TestCPDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	for {
		ds := randTinyUncertain(r, 8, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(8)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		a, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("CP not deterministic:\n%v\n%v", a, b)
		}
		return
	}
}

// TestResponsibilityInverseLaw checks the Definition-2 arithmetic on CP
// output: responsibility * (1 + |Γ|) == 1 for every non-counterfactual
// cause, and counterfactual causes have responsibility exactly 1.
func TestResponsibilityInverseLaw(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	checked := 0
	for trial := 0; trial < 100 && checked < 40; trial++ {
		ds := randTinyUncertain(r, 7, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(7)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.4) {
			continue
		}
		res, err := CP(ds, q, anID, 0.4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Causes {
			checked++
			if c.Counterfactual {
				if c.Responsibility != 1 || len(c.Contingency) != 0 {
					t.Fatalf("counterfactual law violated: %+v", c)
				}
				continue
			}
			if math.Abs(c.Responsibility*float64(1+len(c.Contingency))-1) > 1e-12 {
				t.Fatalf("responsibility law violated: %+v", c)
			}
		}
	}
}
