package causality

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/skyline"
)

func certainAsUncertain(pts []geom.Point) *dataset.Uncertain {
	return dataset.MustCertain(pts).AsUncertain()
}

func randCertainPts(r *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// TestCRMatchesOracle validates CR (and through it Lemma 7) against the
// brute-force Definition-1 oracle over reverse skyline semantics.
func TestCRMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	ran := 0
	for trial := 0; trial < 200 && ran < 80; trial++ {
		d := 1 + r.Intn(3)
		n := 4 + r.Intn(6)
		pts := randCertainPts(r, n, d)
		ix := skyline.NewIndex(pts, rtree.WithMaxEntries(4))
		q := randCertainPts(r, 1, d)[0]
		anIdx := r.Intn(n)
		res, err := CR(ix, q, anIdx)
		if errors.Is(err, ErrNotNonAnswer) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ran++
		want := BruteCausesCertain(pts, q, anIdx)
		causesEqual(t, res.Causes, want, "CR vs oracle")
		// Lemma 7 shape: all responsibilities equal 1/|Cc|.
		for _, c := range res.Causes {
			if math.Abs(c.Responsibility-1/float64(res.Candidates)) > 1e-12 {
				t.Fatalf("responsibility %v, want 1/%d", c.Responsibility, res.Candidates)
			}
		}
		if len(res.Causes) != res.Candidates {
			t.Fatalf("causes %d != candidates %d (Lemma 7 says all candidates are causes)",
				len(res.Causes), res.Candidates)
		}
	}
	if ran < 40 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestNaiveIIMatchesCR: the certain-data baseline agrees with CR but pays
// an exponential number of subset verifications.
func TestNaiveIIMatchesCR(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	ran := 0
	for trial := 0; trial < 100 && ran < 30; trial++ {
		pts := randCertainPts(r, 10, 2)
		ix := skyline.NewIndex(pts, rtree.WithMaxEntries(4))
		q := randCertainPts(r, 1, 2)[0]
		anIdx := r.Intn(10)
		cr, err := CR(ix, q, anIdx)
		if errors.Is(err, ErrNotNonAnswer) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if cr.Candidates > 12 {
			continue // keep the exponential baseline fast
		}
		ran++
		naive, err := NaiveII(ix, q, anIdx, Options{})
		if err != nil {
			t.Fatal(err)
		}
		causesEqual(t, naive.Causes, cr.Causes, "NaiveII vs CR")
		if naive.Candidates != cr.Candidates {
			t.Fatalf("candidates differ: %d vs %d", naive.Candidates, cr.Candidates)
		}
		wantSubsets := int64(0)
		if cr.Candidates > 1 {
			// For each candidate the only valid Γ is Cc−{cc}, found last:
			// 2^(|Cc|-1) subsets per candidate.
			wantSubsets = int64(cr.Candidates) << uint(cr.Candidates-1)
		} else {
			wantSubsets = 1 // single candidate: empty subset hits immediately
		}
		if naive.SubsetsExamined != wantSubsets {
			t.Fatalf("NaiveII examined %d subsets, want %d (|Cc|=%d)",
				naive.SubsetsExamined, wantSubsets, cr.Candidates)
		}
	}
	if ran < 10 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestCRCaseStudyShape mirrors the Table-4 scenario: every returned cause
// must dominate q w.r.t. the non-answer coordinate-wise, which is how the
// paper argues the causes are "meaningful".
func TestCRCaseStudyShape(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	pts := randCertainPts(r, 500, 2)
	ix := skyline.NewIndex(pts, rtree.WithMaxEntries(16))
	q := geom.Point{50, 50}
	found := false
	for anIdx := 0; anIdx < 500; anIdx++ {
		res, err := CR(ix, q, anIdx)
		if errors.Is(err, ErrNotNonAnswer) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		found = true
		an := pts[anIdx]
		for _, c := range res.Causes {
			if !geom.DynDominates(pts[c.ID], q, an) {
				t.Fatalf("cause %d does not dominate q w.r.t. an", c.ID)
			}
		}
	}
	if !found {
		t.Fatal("no non-answers in the dataset")
	}
}

func TestCRErrors(t *testing.T) {
	pts := []geom.Point{{1, 1}, {2, 2}, {50, 50}}
	ix := skyline.NewIndex(pts, rtree.WithMaxEntries(4))
	if _, err := CR(ix, geom.Point{0, 0}, -1); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := CR(ix, geom.Point{0, 0}, 9); !errors.Is(err, ErrBadObject) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := CR(ix, geom.Point{0}, 0); err == nil {
		t.Error("dim mismatch should fail")
	}
	// Point 0 is its own reverse skyline member for a nearby q.
	if _, err := CR(ix, geom.Point{0.5, 0.5}, 0); !errors.Is(err, ErrNotNonAnswer) {
		t.Errorf("answer object: %v", err)
	}
	// NaiveII budget.
	r := rand.New(rand.NewSource(84))
	pts2 := randCertainPts(r, 40, 2)
	ix2 := skyline.NewIndex(pts2, rtree.WithMaxEntries(8))
	for anIdx := 0; anIdx < 40; anIdx++ {
		res, err := CR(ix2, geom.Point{50, 50}, anIdx)
		if err != nil || res.Candidates < 4 {
			continue
		}
		if _, err := NaiveII(ix2, geom.Point{50, 50}, anIdx, Options{MaxSubsets: 2}); !errors.Is(err, ErrSubsetBudget) {
			t.Errorf("MaxSubsets: %v", err)
		}
		if _, err := NaiveII(ix2, geom.Point{50, 50}, anIdx, Options{MaxCandidates: 1}); !errors.Is(err, ErrTooManyCandidates) {
			t.Errorf("MaxCandidates: %v", err)
		}
		return
	}
	t.Skip("no instance with enough candidates found")
}

// TestCRAndCPAgreeOnCertainData: running CP over the degenerate uncertain
// form of certain data must reproduce CR's causes (the Section-4 reduction).
func TestCRAndCPAgreeOnCertainData(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	ran := 0
	for trial := 0; trial < 60 && ran < 20; trial++ {
		pts := randCertainPts(r, 8, 2)
		ix := skyline.NewIndex(pts, rtree.WithMaxEntries(4))
		q := randCertainPts(r, 1, 2)[0]
		anIdx := r.Intn(8)
		crRes, err := CR(ix, q, anIdx)
		if errors.Is(err, ErrNotNonAnswer) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ran++
		uds := certainAsUncertain(pts)
		// Any alpha in (0,1] gives the same semantics on certain data.
		cpRes, err := CP(uds, q, anIdx, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		causesEqual(t, cpRes.Causes, crRes.Causes, "CP on certain data vs CR")
	}
	if ran < 5 {
		t.Fatalf("only %d informative trials", ran)
	}
}
