package causality

import (
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// TestCPPermutationInvariance: relabeling the dataset objects must yield
// the same causes modulo the relabeling — CP's output is a function of the
// data, not of storage order.
func TestCPPermutationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	ran := 0
	for trial := 0; trial < 80 && ran < 25; trial++ {
		n := 6 + r.Intn(4)
		ds := randTinyUncertain(r, n, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		ran++
		base, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Apply a random permutation: object old i becomes new perm[i].
		perm := r.Perm(n)
		objs := make([]*uncertain.Object, n)
		for i, o := range ds.Objects {
			c := o.Clone()
			c.ID = perm[i]
			objs[perm[i]] = c
		}
		permDS := dataset.MustUncertain(objs)
		got, err := CP(permDS, q, perm[anID], 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}

		if len(got.Causes) != len(base.Causes) || got.Candidates != base.Candidates {
			t.Fatalf("permutation changed the result: %d/%d causes, %d/%d candidates",
				len(got.Causes), len(base.Causes), got.Candidates, base.Candidates)
		}
		// Compare per-cause responsibilities through the relabeling.
		baseResp := map[int]float64{}
		for _, c := range base.Causes {
			baseResp[perm[c.ID]] = c.Responsibility
		}
		for _, c := range got.Causes {
			want, ok := baseResp[c.ID]
			if !ok {
				t.Fatalf("cause %d not present in base result", c.ID)
			}
			if diff := c.Responsibility - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("cause %d responsibility %v, want %v", c.ID, c.Responsibility, want)
			}
		}
	}
	if ran < 10 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestCPSampleOrderInvariance: permuting the samples inside each uncertain
// object must not change the causes (Eq. 2 is order-free).
func TestCPSampleOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	ran := 0
	for trial := 0; trial < 60 && ran < 15; trial++ {
		n := 5 + r.Intn(4)
		ds := randTinyUncertain(r, n, 2, 4)
		q := geom.Point{30, 30}
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		ran++
		base, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		objs := make([]*uncertain.Object, n)
		for i, o := range ds.Objects {
			c := o.Clone()
			r.Shuffle(len(c.Samples), func(a, b int) {
				c.Samples[a], c.Samples[b] = c.Samples[b], c.Samples[a]
			})
			objs[i] = c
		}
		got, err := CP(dataset.MustUncertain(objs), q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		causesEqual(t, got.Causes, base.Causes, "sample-order invariance")
	}
	if ran < 5 {
		t.Fatalf("only %d informative trials", ran)
	}
}

// TestAblationFlagsPreserveResults: every ablation switch must leave the
// causes untouched — the lemmas are optimizations, not semantics.
func TestAblationFlagsPreserveResults(t *testing.T) {
	r := rand.New(rand.NewSource(143))
	variants := []struct {
		opts Options
		// monotone marks variants that only grow the search space without
		// changing the enumeration order or the seeded bounds, for which
		// "examines at least as many subsets as full CP" is a theorem. The
		// order/bound ablations (NoMassOrder, NoGreedySeed) can luck into
		// hits earlier on specific instances, so only result equality is
		// asserted for them.
		monotone bool
	}{
		{Options{NoLemma4: true}, false},
		{Options{NoLemma5: true}, false},
		{Options{NoLemma6: true}, true},
		{Options{NoPrune: true}, true},
		{Options{NoAdmissible: true}, true},
		{Options{NoLemma4: true, NoLemma5: true, NoLemma6: true, NoPrune: true}, false},
		{Options{NoGreedySeed: true}, false},
		{Options{NoMassOrder: true}, false},
		{Options{NoGreedySeed: true, NoAdmissible: true, NoMassOrder: true}, false},
		{Options{NoLemma4: true, NoLemma5: true, NoLemma6: true, NoPrune: true,
			NoGreedySeed: true, NoAdmissible: true, NoMassOrder: true}, false},
	}
	ran := 0
	for trial := 0; trial < 80 && ran < 20; trial++ {
		n := 4 + r.Intn(4)
		ds := randTinyUncertain(r, n, 2, 3)
		q := geom.Point{30, 30}
		anID := r.Intn(n)
		if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), 0.5) {
			continue
		}
		ran++
		base, err := CP(ds, q, anID, 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for vi, v := range variants {
			got, err := CP(ds, q, anID, 0.5, v.opts)
			if err != nil {
				t.Fatalf("variant %d: %v", vi, err)
			}
			causesEqual(t, got.Causes, base.Causes, "ablation variant")
			if v.monotone && got.SubsetsExamined < base.SubsetsExamined {
				t.Fatalf("variant %d examined fewer subsets (%d) than full CP (%d)",
					vi, got.SubsetsExamined, base.SubsetsExamined)
			}
		}
	}
	if ran < 8 {
		t.Fatalf("only %d informative trials", ran)
	}
}
