package causality

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

func randPDFSet(r *rand.Rand, n, d int, kind uncertain.PDFKind) *PDFSet {
	objs := make([]*uncertain.PDFObject, n)
	for i := 0; i < n; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			lo[j] = r.Float64() * 60
			hi[j] = lo[j] + 2 + r.Float64()*15
		}
		region := geom.Rect{Min: lo, Max: hi}
		if kind == uncertain.Gaussian {
			objs[i] = uncertain.NewGaussianPDF(i, region, nil, nil)
		} else {
			objs[i] = uncertain.NewUniformPDF(i, region)
		}
	}
	s, err := NewPDFSet(objs)
	if err != nil {
		panic(err)
	}
	return s
}

// brutePDFCauses is the Definition-1 oracle under the same quadrature
// semantics CPPDF uses: probabilities evaluated with
// prob.PrReverseSkylinePDF at the given resolution.
func brutePDFCauses(objs []*uncertain.PDFObject, q geom.Point, anID int, alpha float64, nodes int) []Cause {
	an := objs[anID]
	var others []*uncertain.PDFObject
	for _, o := range objs {
		if o.ID != anID {
			others = append(others, o)
		}
	}
	prWith := func(removed map[int]bool, extra int) float64 {
		var act []*uncertain.PDFObject
		for _, o := range others {
			if !removed[o.ID] && o.ID != extra {
				act = append(act, o)
			}
		}
		return prob.PrReverseSkylinePDF(an, q, act, nodes)
	}
	var causes []Cause
	for _, p := range others {
		var pool []int
		for _, o := range others {
			if o.ID != p.ID {
				pool = append(pool, o.ID)
			}
		}
		found := false
		for size := 0; size <= len(pool) && !found; size++ {
			forEachSubset(pool, size, func(gamma []int) bool {
				removed := make(map[int]bool, len(gamma))
				for _, id := range gamma {
					removed[id] = true
				}
				if prob.Less(prWith(removed, -1), alpha) && prob.GEq(prWith(removed, p.ID), alpha) {
					contingency := append([]int{}, gamma...)
					sort.Ints(contingency)
					causes = append(causes, Cause{
						ID:             p.ID,
						Responsibility: 1 / float64(1+size),
						Contingency:    contingency,
						Counterfactual: size == 0,
					})
					found = true
					return false
				}
				return true
			})
		}
	}
	sortCauses(causes)
	return causes
}

// TestCPPDFMatchesOracle validates the Section-3.2 pdf variant against
// exhaustive Definition-1 search under identical quadrature semantics.
func TestCPPDFMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	const nodes = 12
	for _, kind := range []uncertain.PDFKind{uncertain.Uniform, uncertain.Gaussian} {
		ran := 0
		for trial := 0; trial < 120 && ran < 25; trial++ {
			d := 1 + r.Intn(2)
			n := 3 + r.Intn(4)
			s := randPDFSet(r, n, d, kind)
			q := make(geom.Point, d)
			for j := range q {
				q[j] = r.Float64() * 60
			}
			alpha := [3]float64{0.3, 0.5, 0.7}[r.Intn(3)]
			anID := r.Intn(n)
			res, err := CPPDF(s, q, anID, alpha, Options{QuadNodes: nodes})
			if errors.Is(err, ErrNotNonAnswer) {
				continue
			}
			if err != nil {
				t.Fatalf("%v trial %d: %v", kind, trial, err)
			}
			// Skip threshold-knife-edge instances where the oracle and
			// the filtered evaluator could diverge by quadrature noise.
			if knifeEdge(s, q, anID, alpha, nodes) {
				continue
			}
			ran++
			want := brutePDFCauses(s.Objects, q, anID, alpha, nodes)
			causesEqual(t, res.Causes, want, kind.String()+" CPPDF vs oracle")
		}
		if ran < 10 {
			t.Fatalf("%v: only %d informative trials", kind, ran)
		}
	}
}

// knifeEdge reports whether any subset probability falls within a loose
// band of alpha, which would make oracle-vs-algorithm comparisons depend on
// sub-epsilon quadrature differences.
func knifeEdge(s *PDFSet, q geom.Point, anID int, alpha float64, nodes int) bool {
	an := s.Objects[anID]
	var others []*uncertain.PDFObject
	for _, o := range s.Objects {
		if o.ID != anID {
			others = append(others, o)
		}
	}
	n := len(others)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var act []*uncertain.PDFObject
		for i, o := range others {
			if mask&(1<<uint(i)) == 0 {
				act = append(act, o)
			}
		}
		pr := prob.PrReverseSkylinePDF(an, q, act, nodes)
		if pr > alpha-1e-4 && pr < alpha+1e-4 {
			return true
		}
	}
	return false
}

func TestCPPDFCounterfactualBlocker(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniformPDF(0, geom.NewRect(geom.Point{20, 20}, geom.Point{24, 24}))
	blocker := uncertain.NewUniformPDF(1, geom.NewRect(geom.Point{8, 8}, geom.Point{12, 12}))
	bystander := uncertain.NewUniformPDF(2, geom.NewRect(geom.Point{55, 55}, geom.Point{60, 60}))
	s, err := NewPDFSet([]*uncertain.PDFObject{an, blocker, bystander})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPPDF(s, q, 0, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Causes) != 1 || res.Causes[0].ID != 1 || !res.Causes[0].Counterfactual {
		t.Fatalf("causes = %v, want counterfactual blocker", res.Causes)
	}
	if res.Pr != 0 {
		t.Fatalf("Pr = %v, want 0 (blocker always dominates)", res.Pr)
	}
}

func TestCPPDFErrors(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	s := randPDFSet(r, 5, 2, uncertain.Uniform)
	if _, err := CPPDF(s, geom.Point{1, 1}, -1, 0.5, Options{}); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := CPPDF(s, geom.Point{1}, 0, 0.5, Options{}); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := CPPDF(s, geom.Point{1, 1}, 0, 0, Options{}); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestNewPDFSetValidation(t *testing.T) {
	if _, err := NewPDFSet(nil); err == nil {
		t.Error("empty set should fail")
	}
	bad := []*uncertain.PDFObject{uncertain.NewUniformPDF(3, geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}))}
	if _, err := NewPDFSet(bad); err == nil {
		t.Error("misnumbered IDs should fail")
	}
	mixed := []*uncertain.PDFObject{
		uncertain.NewUniformPDF(0, geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})),
		uncertain.NewUniformPDF(1, geom.NewRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1})),
	}
	if _, err := NewPDFSet(mixed); err == nil {
		t.Error("mixed dims should fail")
	}
}

func TestPDFSetTree(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	s := randPDFSet(r, 50, 2, uncertain.Uniform)
	tr := s.Tree()
	if tr.Len() != 50 {
		t.Fatalf("tree Len = %d", tr.Len())
	}
	if s.Tree() != tr {
		t.Fatal("tree should be cached")
	}
	if s.Len() != 50 || s.Dims() != 2 {
		t.Fatalf("Len/Dims = %d/%d", s.Len(), s.Dims())
	}
}
