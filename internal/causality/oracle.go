package causality

import (
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/skyline"
	"github.com/crsky/crsky/internal/uncertain"
)

// BruteCausesUncertain computes the exact causality and responsibility for
// a probabilistic reverse skyline non-answer straight from Definition 1:
// for every object p ≠ an it searches all subsets Γ ⊆ P − {an, p} in
// ascending cardinality for a contingency set. Exponential in |P| — this is
// the test oracle CP is validated against, not a usable algorithm.
func BruteCausesUncertain(objs []*uncertain.Object, q geom.Point, anID int, alpha float64) []Cause {
	an := objs[anID]
	others := make([]*uncertain.Object, 0, len(objs)-1)
	for _, o := range objs {
		if o.ID != anID {
			others = append(others, o)
		}
	}

	prWith := func(removed map[int]bool, extra int) float64 {
		act := make([]*uncertain.Object, 0, len(others))
		for _, o := range others {
			if !removed[o.ID] && o.ID != extra {
				act = append(act, o)
			}
		}
		return prob.PrReverseSkyline(an, q, act)
	}

	var causes []Cause
	for _, p := range others {
		pool := make([]int, 0, len(others)-1)
		for _, o := range others {
			if o.ID != p.ID {
				pool = append(pool, o.ID)
			}
		}
		found := false
		for size := 0; size <= len(pool) && !found; size++ {
			forEachSubset(pool, size, func(gamma []int) bool {
				removed := make(map[int]bool, len(gamma))
				for _, id := range gamma {
					removed[id] = true
				}
				if prob.Less(prWith(removed, -1), alpha) && prob.GEq(prWith(removed, p.ID), alpha) {
					contingency := append([]int{}, gamma...)
					sort.Ints(contingency)
					causes = append(causes, Cause{
						ID:             p.ID,
						Responsibility: 1 / float64(1+size),
						Contingency:    contingency,
						Counterfactual: size == 0,
					})
					found = true
					return false
				}
				return true
			})
		}
	}
	sortCauses(causes)
	return causes
}

// BruteCausesCertain computes exact causality for a certain reverse skyline
// non-answer straight from Definition 1 over RSQ semantics.
func BruteCausesCertain(pts []geom.Point, q geom.Point, anIdx int) []Cause {
	an := pts[anIdx]
	pool := make([]int, 0, len(pts)-1)
	for i := range pts {
		if i != anIdx {
			pool = append(pool, i)
		}
	}

	isAnswer := func(removed map[int]bool, extra int) bool {
		others := make([]geom.Point, 0, len(pool))
		for _, i := range pool {
			if !removed[i] && i != extra {
				others = append(others, pts[i])
			}
		}
		return skyline.IsReverseSkylineMember(an, q, others)
	}

	var causes []Cause
	for _, p := range pool {
		sub := make([]int, 0, len(pool)-1)
		for _, i := range pool {
			if i != p {
				sub = append(sub, i)
			}
		}
		found := false
		for size := 0; size <= len(sub) && !found; size++ {
			forEachSubset(sub, size, func(gamma []int) bool {
				removed := make(map[int]bool, len(gamma))
				for _, id := range gamma {
					removed[id] = true
				}
				if !isAnswer(removed, -1) && isAnswer(removed, p) {
					contingency := append([]int{}, gamma...)
					sort.Ints(contingency)
					causes = append(causes, Cause{
						ID:             p,
						Responsibility: 1 / float64(1+size),
						Contingency:    contingency,
						Counterfactual: size == 0,
					})
					found = true
					return false
				}
				return true
			})
		}
	}
	sortCauses(causes)
	return causes
}

// forEachSubset invokes fn for every size-k subset of pool until fn returns
// false.
func forEachSubset(pool []int, k int, fn func([]int) bool) {
	subset := make([]int, 0, k)
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(subset) == k {
			return fn(subset)
		}
		for i := start; i <= len(pool)-(k-len(subset)); i++ {
			subset = append(subset, pool[i])
			if !rec(i + 1) {
				return false
			}
			subset = subset[:len(subset)-1]
		}
		return true
	}
	rec(0)
}
