package causality

import (
	"errors"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// TestRunningExampleFig2 rebuilds the structure of the paper's running
// example (Fig. 2): nine uncertain objects a..i, a non-answer c, a
// candidate set {b, d, e, f, h, i}, an always-dominating object i that must
// sit in every other cause's minimum contingency set (Lemma 4), and
// non-candidates a and g that Lemma 1 excludes. The exact coordinates of
// the figure are not published, so the configuration is re-engineered to
// produce the same qualitative structure; exact responsibilities are pinned
// against the Definition-1 oracle.
func TestRunningExampleFig2(t *testing.T) {
	q := geom.Point{0, 0}
	const (
		idA = 0
		idB = 1
		idC = 2 // the non-answer
		idD = 3
		idE = 4
		idF = 5
		idG = 6
		idH = 7
		idI = 8
	)
	objs := []*uncertain.Object{
		// a: close to q on one axis only — never dominates q w.r.t. c.
		idA: uncertain.NewUniform(idA, []geom.Point{{40, -40}, {42, -38}}),
		// b..h: partial dominators (one sample inside the rectangles, one far out).
		idB: uncertain.NewUniform(idB, []geom.Point{{9, 9}, {100, 100}}),
		// c: the non-answer, samples at (10,10) and (12,12).
		idC: uncertain.NewUniform(idC, []geom.Point{{10, 10}, {12, 12}}),
		idD: uncertain.NewUniform(idD, []geom.Point{{8, 8}, {90, 110}}),
		idE: uncertain.NewUniform(idE, []geom.Point{{7, 9}, {-80, 95}}),
		idF: uncertain.NewUniform(idF, []geom.Point{{11, 11}, {70, -120}}),
		idH: uncertain.NewUniform(idH, []geom.Point{{9, 7}, {130, 60}}),
		// g: entirely outside every dominance rectangle of c.
		idG: uncertain.NewUniform(idG, []geom.Point{{-60, 60}, {-58, 64}}),
		// i: both samples dominate q w.r.t. both samples of c -> Γ1.
		idI: uncertain.NewUniform(idI, []geom.Point{{4, 4}, {5, 5}}),
	}
	ds := dataset.MustUncertain(objs)
	const alpha = 0.5

	res, err := CP(ds, q, idC, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The filtering step must produce exactly {b, d, e, f, h, i}.
	wantCandidates := 6
	if res.Candidates != wantCandidates {
		t.Fatalf("candidates = %d, want %d", res.Candidates, wantCandidates)
	}
	causeIDs := map[int]Cause{}
	for _, c := range res.Causes {
		causeIDs[c.ID] = c
	}
	if _, ok := causeIDs[idA]; ok {
		t.Fatal("a must not be a cause (Lemma 1)")
	}
	if _, ok := causeIDs[idG]; ok {
		t.Fatal("g must not be a cause (Lemma 1)")
	}

	// i is in Γ1: while present, Pr(c)=0, so every other cause's minimum
	// contingency set must contain it (Lemma 4).
	for id, c := range causeIDs {
		if id == idI {
			continue
		}
		found := false
		for _, g := range c.Contingency {
			if g == idI {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cause %d: Γ=%v misses the always-dominating object i", id, c.Contingency)
		}
	}

	// Exact causes and responsibilities: pinned by the oracle.
	want := BruteCausesUncertain(ds.Objects, q, idC, alpha)
	causesEqual(t, res.Causes, want, "Fig.2-style example vs oracle")

	// Like the paper's worked example, every candidate ends up an actual
	// cause in this configuration.
	if len(res.Causes) != wantCandidates {
		t.Fatalf("causes = %d, want %d", len(res.Causes), wantCandidates)
	}

	// The explanation must pass independent verification.
	if err := VerifyExplanation(ds, q, alpha, res); err != nil {
		t.Fatalf("VerifyExplanation: %v", err)
	}

	// And the naive baseline agrees end to end.
	naive, err := NaiveI(ds, q, idC, alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	causesEqual(t, naive.Causes, res.Causes, "NaiveI on the running example")
}

func TestVerifyExplanationRejectsTampering(t *testing.T) {
	q := geom.Point{0, 0}
	an := uncertain.NewUniform(0, []geom.Point{{20, 20}, {24, 24}})
	b1 := uncertain.NewUniform(1, []geom.Point{{10, 10}, {100, 100}})
	b2 := uncertain.NewUniform(2, []geom.Point{{15, 15}, {-90, 95}})
	ds := dataset.MustUncertain([]*uncertain.Object{an, b1, b2})
	res, err := CP(ds, q, 0, 0.6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyExplanation(ds, q, 0.6, res); err != nil {
		t.Fatalf("genuine explanation rejected: %v", err)
	}

	tamper := func(mutate func(r *Result)) error {
		clone := *res
		clone.Causes = make([]Cause, len(res.Causes))
		for i, c := range res.Causes {
			clone.Causes[i] = Cause{
				ID:             c.ID,
				Responsibility: c.Responsibility,
				Contingency:    append([]int{}, c.Contingency...),
				Counterfactual: c.Counterfactual,
			}
		}
		mutate(&clone)
		return VerifyExplanation(ds, q, 0.6, &clone)
	}

	if len(res.Causes) == 0 {
		t.Fatal("fixture needs at least one cause")
	}
	cases := map[string]func(r *Result){
		"wrong responsibility": func(r *Result) { r.Causes[0].Responsibility = 0.123 },
		"bad cause id":         func(r *Result) { r.Causes[0].ID = 99 },
		"self as cause":        func(r *Result) { r.Causes[0].ID = 0 },
		"fake counterfactual": func(r *Result) {
			r.Causes[0].Contingency = nil
			r.Causes[0].Counterfactual = true
			r.Causes[0].Responsibility = 1
		},
		"contingency includes cause": func(r *Result) {
			r.Causes[0].Contingency = append(r.Causes[0].Contingency, r.Causes[0].ID)
			r.Causes[0].Responsibility = 1 / float64(1+len(r.Causes[0].Contingency))
		},
	}
	for name, mutate := range cases {
		if err := tamper(mutate); err == nil {
			t.Errorf("%s: tampered explanation accepted", name)
		}
	}
	// Nil and bad-target results are rejected.
	if err := VerifyExplanation(ds, q, 0.6, nil); err == nil {
		t.Error("nil result accepted")
	}
	bad := *res
	bad.NonAnswer = 77
	if err := VerifyExplanation(ds, q, 0.6, &bad); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad NonAnswer: %v", err)
	}
}
