package causality

import (
	"context"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// NaiveI is the improved baseline of Section 5.3: it shares CP's candidate
// filter (hence identical I/O) but refines by enumerating the subsets of
// the whole candidate set in ascending cardinality for every candidate,
// without Lemma 4/5/6 or any pruning. The first subset satisfying the
// contingency conditions is the minimum by construction.
func NaiveI(ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	return NaiveICtx(context.Background(), ds, q, anID, alpha, opts)
}

// NaiveICtx is NaiveI under a context: the exhaustive enumeration polls ctx
// with the same amortized stride as the refiner, so even the baseline is
// cancellable when used as an online oracle.
func NaiveICtx(ctx context.Context, ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	if anID < 0 || anID >= ds.Len() || ds.Objects[anID] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, ds.Dims(), alpha); err != nil {
		return nil, err
	}
	if err := precheck(ctx); err != nil {
		return nil, err
	}
	poll := ctxutil.NewPoll(ctx, ctxutil.DefaultStride)
	an := ds.Objects[anID]
	candIDs := FilterCandidates(ds, q, an)
	if opts.MaxCandidates > 0 && len(candIDs) > opts.MaxCandidates {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyCandidates, len(candIDs), opts.MaxCandidates)
	}
	cands := make([]*uncertain.Object, len(candIDs))
	for i, id := range candIDs {
		cands[i] = ds.Objects[id]
	}
	e := prob.NewEvaluator(an, q, cands)
	pr := e.Pr()
	if prob.GEq(pr, alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, pr, alpha)
	}

	res := &Result{NonAnswer: anID, Pr: pr, Candidates: len(candIDs)}
	n := len(candIDs)
	pool := make([]int, 0, n-1)
	for cc := 0; cc < n; cc++ {
		pool = pool[:0]
		for j := 0; j < n; j++ {
			if j != cc {
				pool = append(pool, j)
			}
		}
		gamma, ok, err := naiveFMCS(e, cc, pool, alpha, &res.SubsetsExamined, opts.MaxSubsets, poll)
		if err != nil {
			return nil, canceled(err, res.SubsetsExamined)
		}
		if !ok {
			continue
		}
		contingency := make([]int, len(gamma))
		for i, idx := range gamma {
			contingency[i] = candIDs[idx]
		}
		sort.Ints(contingency)
		res.Causes = append(res.Causes, Cause{
			ID:             candIDs[cc],
			Responsibility: 1 / float64(1+len(contingency)),
			Contingency:    contingency,
			Counterfactual: len(contingency) == 0,
		})
	}
	sortCauses(res.Causes)
	return res, nil
}

// naiveFMCS enumerates every subset of pool in ascending cardinality and
// returns the first contingency set for cc.
func naiveFMCS(e *prob.Evaluator, cc int, pool []int, alpha float64, counter *int64, budget int64, poll *ctxutil.Poll) ([]int, bool, error) {
	var chosen []int
	var rec func(start, need int) (bool, error)
	rec = func(start, need int) (bool, error) {
		if err := poll.Check(); err != nil {
			return false, err
		}
		if need == 0 {
			*counter++
			if budget > 0 && *counter > budget {
				return false, ErrSubsetBudget
			}
			if prob.Less(e.Pr(), alpha) && prob.GEq(e.PrWithout(cc), alpha) {
				return true, nil
			}
			return false, nil
		}
		for i := start; i+need <= len(pool); i++ {
			j := pool[i]
			e.Remove(j)
			chosen = append(chosen, j)
			hit, err := rec(i+1, need-1)
			if hit || err != nil {
				e.Add(j)
				return hit, err
			}
			chosen = chosen[:len(chosen)-1]
			e.Add(j)
		}
		return false, nil
	}
	for m := 0; m <= len(pool); m++ {
		hit, err := rec(0, m)
		if err != nil {
			return nil, false, err
		}
		if hit {
			out := make([]int, len(chosen))
			copy(out, chosen)
			return out, true, nil
		}
	}
	return nil, false, nil
}
