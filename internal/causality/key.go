package causality

import "fmt"

// Key returns a canonical, collision-free encoding of the options for use
// in cache keys: two Options values produce the same Key exactly when every
// tuning field matches. Serving layers combine it with the dataset, query,
// non-answer, and threshold to deduplicate identical explanation requests.
//
// EVERY Options field must appear here: a field missing from the Key makes
// crskyd silently share cache entries across variants that compute
// different work (TestOptionsKeyCoversEveryField enforces coverage by
// reflection, so adding a field without extending the Key fails the build's
// test step rather than corrupting caches at runtime).
func (o Options) Key() string {
	return fmt.Sprintf("mc=%d,ms=%d,qn=%d,par=%d,l4=%t,l5=%t,l6=%t,np=%t,gs=%t,ad=%t,mo=%t",
		o.MaxCandidates, o.MaxSubsets, o.QuadNodes, o.Parallel,
		o.NoLemma4, o.NoLemma5, o.NoLemma6, o.NoPrune,
		o.NoGreedySeed, o.NoAdmissible, o.NoMassOrder)
}
