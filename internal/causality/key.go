package causality

import "fmt"

// Key returns a canonical, collision-free encoding of the options for use
// in cache keys: two Options values produce the same Key exactly when every
// tuning field matches. Serving layers combine it with the dataset, query,
// non-answer, and threshold to deduplicate identical explanation requests.
func (o Options) Key() string {
	return fmt.Sprintf("mc=%d,ms=%d,qn=%d,par=%d,l4=%t,l5=%t,l6=%t,np=%t",
		o.MaxCandidates, o.MaxSubsets, o.QuadNodes, o.Parallel,
		o.NoLemma4, o.NoLemma5, o.NoLemma6, o.NoPrune)
}
