package causality

import (
	"sort"

	"github.com/crsky/crsky/internal/prob"
)

// This file holds the one copy of the sorted-pool / prefix-sum / budgeted-
// recursion search shape shared by the FMCS refiner (refine.go) and the
// exact repair phase (repair.go). Both enumerate size-need subsets of a
// dominance-mass-sorted pool on top of removals already applied to an
// incremental evaluator, prune subtrees with an admissible removal-gain
// bound over prefix sums, and charge every enumeration node — leaves and
// pruned branch points alike — to a work budget. Only the leaf predicate
// and the branch-point prune differ, so they plug in as callbacks; the
// context-cancellation poll of the v2 API lands in exactly one place (the
// charge callback), instead of being duplicated per search.

// subsetSearch enumerates size-need subsets of pool[start:] on top of the
// removals already applied to the evaluator. charge draws one unit per
// enumeration node from the caller's budget (and is where context
// cancellation is polled); leaf tests the contingency/repair condition at
// need == 0; prune (optional) kills a branch point before its children are
// enumerated. On success the selected pool entries are left in *chosen and
// the evaluator is restored by the unwinding; on a miss or an error the
// evaluator and *chosen are restored exactly.
type subsetSearch struct {
	e      *prob.Evaluator
	pool   []int
	charge func(n int64) error
	leaf   func() (bool, error)
	prune  func(start, need int) bool
}

func (s *subsetSearch) run(start, need int, chosen *[]int) (bool, error) {
	if err := s.charge(1); err != nil {
		return false, err
	}
	if need == 0 {
		return s.leaf()
	}
	if s.prune != nil && s.prune(start, need) {
		return false, nil
	}
	for i := start; i+need <= len(s.pool); i++ {
		j := s.pool[i]
		s.e.Remove(j)
		*chosen = append(*chosen, j)
		hit, err := s.run(i+1, need-1, chosen)
		if hit || err != nil {
			s.e.Add(j)
			if err != nil {
				// Pop this level's selection so the error unwind restores
				// *chosen exactly, as the contract above promises — a
				// caller retrying with the same slice must not inherit a
				// stale partial path.
				*chosen = (*chosen)[:len(*chosen)-1]
			}
			return hit, err
		}
		*chosen = (*chosen)[:len(*chosen)-1]
		s.e.Add(j)
	}
	return false, nil
}

// sortPoolByGain orders pool by descending removal gain, breaking ties by
// ascending index so the order is deterministic. With the pool mass-sorted,
// the best `need` removals available from position `start` onward are
// exactly pool[start:start+need] — the fact the admissible prefix bound
// relies on.
func sortPoolByGain(pool []int, gain func(j int) float64) {
	sort.Slice(pool, func(a, b int) bool {
		if gain(pool[a]) != gain(pool[b]) {
			return gain(pool[a]) > gain(pool[b])
		}
		return pool[a] < pool[b]
	})
}

// gainPrefix appends the prefix sums of the pool's gains to buf[:0]:
// prefix[i] is the total gain of pool[:i], so a range sum is one
// subtraction. The returned slice has length len(pool)+1.
func gainPrefix(pool []int, gain func(j int) float64, buf []float64) []float64 {
	prefix := append(buf[:0], 0)
	for _, j := range pool {
		prefix = append(prefix, prefix[len(prefix)-1]+gain(j))
	}
	return prefix
}
