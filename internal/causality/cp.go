package causality

import (
	"context"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// CP computes the causality and responsibility for a non-answer to a
// probabilistic reverse skyline query (Algorithm 1). It follows the paper's
// filter-and-refinement framework:
//
//  1. Filter (Lemma 2): one multi-window R-tree traversal over the dominance
//     rectangles of an's samples collects the candidate causes — the only
//     objects that can dominate q w.r.t. an in some possible world
//     (Lemma 1), and by Lemma 3 the only possible contingency-set members.
//  2. α = 1 fast path (lines 9–11): every candidate is an actual cause with
//     responsibility 1/|Cc|.
//  3. Refinement: counterfactual causes are reported directly (Lemma 5) and
//     each remaining candidate's minimum contingency set is found by FMCS
//     with Γ1 forcing (Lemma 4) and Lemma 6 bound propagation.
func CP(ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	return CPCtx(context.Background(), ds, q, anID, alpha, opts)
}

// CPCtx is CP under a context: the refinement polls ctx every
// ctxutil.DefaultStride search nodes (reusing the MaxSubsets budget-charging
// points, so the check never perturbs the search order) and returns a typed
// *ctxutil.CanceledError wrapping the context error — with the partial
// SubsetsExamined counter — when canceled. The engine state is fully
// restored on cancellation; a subsequent call computes the same result an
// uncanceled run would have.
func CPCtx(ctx context.Context, ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Result, error) {
	if anID < 0 || anID >= ds.Len() || ds.Objects[anID] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, ds.Dims(), alpha); err != nil {
		return nil, err
	}
	if err := precheck(ctx); err != nil {
		return nil, err
	}
	an := ds.Objects[anID]

	tr := obs.FromContext(ctx)
	endFilter := tr.StartSpan("explain.filter")
	candIDs, filterIO := FilterCandidatesCounted(ds, q, an)
	endFilter()
	if opts.MaxCandidates > 0 && len(candIDs) > opts.MaxCandidates {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyCandidates, len(candIDs), opts.MaxCandidates)
	}
	cands := make([]*uncertain.Object, len(candIDs))
	for i, id := range candIDs {
		cands[i] = ds.Objects[id]
	}
	e := prob.NewEvaluator(an, q, cands)

	pr := e.Pr()
	if prob.GEq(pr, alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, pr, alpha)
	}

	res := &Result{NonAnswer: anID, Pr: pr, Candidates: len(candIDs), FilterNodeAccesses: filterIO}

	if prob.GEq(alpha, 1) {
		// Lines 9–11: the only contingency set for each candidate is all
		// the other candidates, so responsibilities are all 1/|Cc|.
		res.Causes = alphaOneCauses(candIDs)
		res.addToTrace(tr)
		return res, nil
	}

	r := newRefiner(ctx, e, candIDs, alpha, opts)
	causes, err := r.run()
	if err != nil {
		return nil, err
	}
	res.Causes = causes
	res.SubsetsExamined = r.subsetsCount()
	res.GreedySeeds, res.GreedyHits = r.greedyStats()
	res.addToTrace(tr)
	return res, nil
}

// addToTrace folds the explanation's effort counters into a request trace
// (nil tr is a no-op) — the same vocabulary the ?trace=1 response and the
// slow-query log share.
func (r *Result) addToTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Add("explain.candidates", int64(r.Candidates))
	tr.Add("explain.filterNodeAccesses", r.FilterNodeAccesses)
	tr.Add("explain.subsetsExamined", r.SubsetsExamined)
	tr.Add("explain.greedySeeds", r.GreedySeeds)
	tr.Add("explain.greedyHits", r.GreedyHits)
}

// FilterCandidates performs the Lemma-2 filtering step: a single
// branch-and-bound traversal of the dataset R-tree against the dominance
// rectangles of every sample of an, followed by the exact dominance check
// (rectangle boundaries where every coordinate ties do not dominate).
// Returns candidate object IDs in ascending order. Node accesses are
// charged to the counter attached to the dataset's tree.
func FilterCandidates(ds *dataset.Uncertain, q geom.Point, an *uncertain.Object) []int {
	ids, _ := FilterCandidatesCounted(ds, q, an)
	return ids
}

// FilterCandidatesCounted is FilterCandidates additionally reporting the
// node accesses of the retrieval traversal, so explanation results can
// attribute their filter I/O without relying on the dataset-wide counter
// (which concurrent requests share).
func FilterCandidatesCounted(ds *dataset.Uncertain, q geom.Point, an *uncertain.Object) ([]int, int64) {
	recs := make([]geom.Rect, len(an.Samples))
	anchors := make([]geom.Point, len(an.Samples))
	for i, s := range an.Samples {
		recs[i] = geom.DomRectOuter(s.Loc, q)
		anchors[i] = s.Loc
	}
	// Windows fully contained in another window are redundant: any
	// rectangle meeting the contained one meets its container, so the
	// traversal's intersects-any decisions — and therefore its node
	// accesses — are unchanged while each visited entry tests fewer
	// windows. Samples of a tight object mostly mirror each other's
	// dominance rectangles, so the dedup routinely collapses the list.
	recs = dropContainedWindows(recs)
	var ids []int
	accesses := ds.Tree().SearchAnyCounted(recs, func(id int, _ geom.Rect) bool {
		if id == an.ID {
			return true
		}
		if objectCanDominate(ds.Objects[id], anchors, q) {
			ids = append(ids, id)
		}
		return true
	})
	sort.Ints(ids)
	return ids, accesses
}

// dropContainedWindows removes every rectangle contained in another one,
// preserving the union of the windows exactly. Quadratic in the window
// count, which is bounded by an object's sample count.
func dropContainedWindows(recs []geom.Rect) []geom.Rect {
	if len(recs) < 2 {
		return recs
	}
	drop := make([]bool, len(recs))
	for i, r := range recs {
		for j, s := range recs {
			if i == j || drop[j] {
				continue
			}
			// Break containment ties (identical rectangles) by index so
			// exactly one survives.
			if s.ContainsRect(r) && !(r.ContainsRect(s) && i < j) {
				drop[i] = true
				break
			}
		}
	}
	kept := recs[:0]
	for i, r := range recs {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	return kept
}

// objectCanDominate reports whether some sample of o dynamically dominates
// q w.r.t. some anchor — the exact form of the Lemma-2 candidate test.
func objectCanDominate(o *uncertain.Object, anchors []geom.Point, q geom.Point) bool {
	for _, s := range o.Samples {
		for _, a := range anchors {
			if geom.DynDominates(s.Loc, q, a) {
				return true
			}
		}
	}
	return false
}

func alphaOneCauses(candIDs []int) []Cause {
	causes := make([]Cause, len(candIDs))
	for i, id := range candIDs {
		contingency := make([]int, 0, len(candIDs)-1)
		for _, other := range candIDs {
			if other != id {
				contingency = append(contingency, other)
			}
		}
		causes[i] = Cause{
			ID:             id,
			Responsibility: 1 / float64(len(candIDs)),
			Contingency:    contingency,
			Counterfactual: len(candIDs) == 1,
		}
	}
	sortCauses(causes)
	return causes
}

func checkQuery(q geom.Point, dims int, alpha float64) error {
	if q.Dims() != dims {
		return fmt.Errorf("causality: query point has %d dims, dataset has %d", q.Dims(), dims)
	}
	if !q.IsFinite() {
		return fmt.Errorf("causality: query point has non-finite coordinates")
	}
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("causality: alpha %v out of (0, 1]", alpha)
	}
	return nil
}
