package causality

import (
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// Repair is a minimal intervention turning a non-answer into an answer:
// deleting the Removed objects raises Pr(an) to NewPr >= α. It answers the
// actionable follow-up to a causality explanation — "what is the smallest
// set of competitors I need to beat?" — and generalizes counterfactual
// causes (a counterfactual cause is exactly a singleton repair).
type Repair struct {
	// Removed lists the object IDs whose deletion makes an an answer,
	// sorted ascending.
	Removed []int
	// NewPr is Pr(an | P − Removed).
	NewPr float64
	// Exact reports whether Removed is provably minimum; false means the
	// greedy fallback produced it (still valid, possibly larger).
	Exact bool
}

// MinimalRepair finds a smallest removal set R ⊆ P with
// Pr(an | P−R) >= alpha. Only candidate causes can matter (Lemma 1), every
// always-dominating object must be in R (its presence pins Pr(an) to 0),
// and Pr is monotone in R. The search runs the same branch-and-bound scheme
// as the FMCS refiner: a greedy marginal-gain construction first yields an
// incumbent upper bound, then (for pools up to greedyThreshold) the exact
// phase enumerates only cardinalities BELOW the incumbent, with subtrees
// pruned whenever even the `need` largest remaining removal gains cannot
// lift Pr to α. If that bounded search comes up empty the incumbent is
// provably minimum and reported Exact=true; larger pools or an exceeded
// Options.MaxSubsets budget keep the greedy set with Exact=false.
func MinimalRepair(ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	if anID < 0 || anID >= ds.Len() {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, ds.Dims(), alpha); err != nil {
		return nil, err
	}
	an := ds.Objects[anID]
	candIDs := FilterCandidates(ds, q, an)
	cands := make([]*uncertain.Object, len(candIDs))
	for i, id := range candIDs {
		cands[i] = ds.Objects[id]
	}
	e := prob.NewEvaluator(an, q, cands)
	if prob.GEq(e.Pr(), alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, e.Pr(), alpha)
	}

	// Forced kernel: while an always-dominating candidate is present,
	// Pr(an) = 0 < α, so it belongs to every repair.
	var kernel, pool []int
	for j := range cands {
		if e.AlwaysDominates(j) {
			kernel = append(kernel, j)
			e.Remove(j)
		} else {
			pool = append(pool, j)
		}
	}
	// The kernel alone may already suffice.
	if prob.GEq(e.Pr(), alpha) {
		return finishRepair(e, candIDs, kernel, nil, true), nil
	}

	// Greedy incumbent: repeatedly remove the pool candidate with the
	// largest marginal probability gain. Always a valid repair (removing
	// the whole pool yields Pr = 1) and usually at or near the minimum.
	greedy := greedyRepair(e, pool, alpha)
	if greedy == nil {
		// Cannot happen: removing every candidate yields Pr = 1.
		return nil, fmt.Errorf("causality: repair construction failed")
	}
	for _, j := range greedy {
		e.Add(j) // back to the kernel-only state for the exact phase
	}

	const greedyThreshold = 24
	if len(pool) <= greedyThreshold {
		chosen, found, ok := exactRepairBelow(e, pool, alpha, opts.MaxSubsets, len(greedy))
		if ok && found {
			for _, j := range chosen {
				e.Remove(j)
			}
			return finishRepair(e, candIDs, kernel, chosen, true), nil
		}
		if ok {
			// The bounded search exhausted every smaller cardinality:
			// the greedy incumbent is a provably minimum repair.
			for _, j := range greedy {
				e.Remove(j)
			}
			return finishRepair(e, candIDs, kernel, greedy, true), nil
		}
		// Budget ran out mid-proof; fall through to the inexact answer.
	}

	for _, j := range greedy {
		e.Remove(j)
	}
	return finishRepair(e, candIDs, kernel, greedy, false), nil
}

// greedyRepair removes pool candidates in descending marginal-gain order
// until the threshold is reached, returning the chosen evaluator indexes
// (which remain removed). nil means the pool was exhausted below α.
func greedyRepair(e *prob.Evaluator, pool []int, alpha float64) []int {
	var chosen []int
	remaining := append([]int{}, pool...)
	for !prob.GEq(e.Pr(), alpha) {
		if len(remaining) == 0 {
			for _, j := range chosen {
				e.Add(j)
			}
			return nil
		}
		bestIdx, bestGain := -1, -1.0
		base := e.Pr()
		for i, j := range remaining {
			if gain := e.PrWithout(j) - base; gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		j := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		e.Remove(j)
		chosen = append(chosen, j)
	}
	return chosen
}

// exactRepairBelow enumerates pool subsets of size < upper in ascending
// cardinality on an evaluator whose kernel is already removed, returning
// the first (hence minimum) subset reaching the threshold. The pool is
// visited in descending removal-gain order and a subtree dies when even the
// `need` largest remaining gains cannot lift the current probability to α —
// the same admissible bound the FMCS refiner uses, so the phase only pays
// for cardinalities the incumbent has not already ruled out. found=false
// with ok=true means no smaller repair exists; ok=false means the budget
// ran out. The evaluator is restored either way.
func exactRepairBelow(e *prob.Evaluator, pool []int, alpha float64, budget int64, upper int) (chosen []int, found, ok bool) {
	if upper <= 1 {
		return nil, false, true // the incumbent is a singleton: nothing below it
	}
	gains := make(map[int]float64, len(pool))
	for _, j := range pool {
		gains[j] = e.RemovalGain(j)
	}
	ordered := append([]int{}, pool...)
	sort.Slice(ordered, func(a, b int) bool {
		if gains[ordered[a]] != gains[ordered[b]] {
			return gains[ordered[a]] > gains[ordered[b]]
		}
		return ordered[a] < ordered[b]
	})
	prefix := make([]float64, len(ordered)+1)
	for i, j := range ordered {
		prefix[i+1] = prefix[i] + gains[j]
	}

	var examined int64
	var rec func(start, need int) (bool, bool)
	rec = func(start, need int) (hit, inBudget bool) {
		// Charge every node, pruned branch points included, so the budget
		// trips even when the admissible bound kills everything.
		examined++
		if budget > 0 && examined > budget {
			return false, false
		}
		if need == 0 {
			return prob.GEq(e.Pr(), alpha), true
		}
		if mass := prefix[start+need] - prefix[start]; prob.Less(e.Pr()+mass+admissibleSlack, alpha) {
			return false, true
		}
		for i := start; i+need <= len(ordered); i++ {
			j := ordered[i]
			e.Remove(j)
			chosen = append(chosen, j)
			hit, inBudget := rec(i+1, need-1)
			e.Add(j)
			if hit || !inBudget {
				return hit, inBudget
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false, true
	}
	for m := 1; m < upper; m++ {
		if m > len(ordered) {
			break
		}
		hit, inBudget := rec(0, m)
		if !inBudget {
			return nil, false, false
		}
		if hit {
			return chosen, true, true
		}
	}
	return nil, false, true
}

func finishRepair(e *prob.Evaluator, candIDs, kernel, chosen []int, exact bool) *Repair {
	removed := make([]int, 0, len(kernel)+len(chosen))
	for _, j := range kernel {
		removed = append(removed, candIDs[j])
	}
	for _, j := range chosen {
		removed = append(removed, candIDs[j])
	}
	sort.Ints(removed)
	return &Repair{Removed: removed, NewPr: e.Pr(), Exact: exact}
}
