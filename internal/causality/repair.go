package causality

import (
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// Repair is a minimal intervention turning a non-answer into an answer:
// deleting the Removed objects raises Pr(an) to NewPr >= α. It answers the
// actionable follow-up to a causality explanation — "what is the smallest
// set of competitors I need to beat?" — and generalizes counterfactual
// causes (a counterfactual cause is exactly a singleton repair).
type Repair struct {
	// Removed lists the object IDs whose deletion makes an an answer,
	// sorted ascending.
	Removed []int
	// NewPr is Pr(an | P − Removed).
	NewPr float64
	// Exact reports whether Removed is provably minimum; false means the
	// greedy fallback produced it (still valid, possibly larger).
	Exact bool
}

// MinimalRepair finds a smallest removal set R ⊆ P with
// Pr(an | P−R) >= alpha. Only candidate causes can matter (Lemma 1), every
// always-dominating object must be in R (its presence pins Pr(an) to 0),
// and Pr is monotone in R, so the search enumerates pool subsets in
// ascending cardinality on top of the forced kernel — exactly when the
// pool is small. Pools larger than greedyThreshold (or an exceeded
// Options.MaxSubsets budget) fall back to a greedy marginal-gain
// construction, reported with Exact=false.
func MinimalRepair(ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	if anID < 0 || anID >= ds.Len() {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, ds.Dims(), alpha); err != nil {
		return nil, err
	}
	an := ds.Objects[anID]
	candIDs := FilterCandidates(ds, q, an)
	cands := make([]*uncertain.Object, len(candIDs))
	for i, id := range candIDs {
		cands[i] = ds.Objects[id]
	}
	e := prob.NewEvaluator(an, q, cands)
	if prob.GEq(e.Pr(), alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, e.Pr(), alpha)
	}

	// Forced kernel: while an always-dominating candidate is present,
	// Pr(an) = 0 < α, so it belongs to every repair.
	var kernel, pool []int
	for j := range cands {
		if e.AlwaysDominates(j) {
			kernel = append(kernel, j)
			e.Remove(j)
		} else {
			pool = append(pool, j)
		}
	}
	// The kernel alone may already suffice.
	if prob.GEq(e.Pr(), alpha) {
		return finishRepair(e, candIDs, kernel, nil, true), nil
	}

	const greedyThreshold = 24
	if len(pool) <= greedyThreshold {
		if chosen, ok := exactRepairSearch(e, pool, alpha, opts.MaxSubsets); ok {
			return finishRepair(e, candIDs, kernel, chosen, true), nil
		}
	}

	// Greedy fallback: repeatedly remove the pool candidate with the
	// largest marginal probability gain.
	var chosen []int
	remaining := append([]int{}, pool...)
	for !prob.GEq(e.Pr(), alpha) && len(remaining) > 0 {
		bestIdx, bestGain := -1, -1.0
		base := e.Pr()
		for i, j := range remaining {
			if gain := e.PrWithout(j) - base; gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		j := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		e.Remove(j)
		chosen = append(chosen, j)
	}
	if !prob.GEq(e.Pr(), alpha) {
		// Cannot happen: removing every candidate yields Pr = 1.
		return nil, fmt.Errorf("causality: repair construction failed")
	}
	return finishRepair(e, candIDs, kernel, chosen, false), nil
}

// exactRepairSearch enumerates pool subsets in ascending cardinality on an
// evaluator whose kernel is already removed; returns the first (hence
// minimum) subset reaching the threshold. ok=false when the budget ran out.
func exactRepairSearch(e *prob.Evaluator, pool []int, alpha float64, budget int64) ([]int, bool) {
	var examined int64
	var chosen []int
	var rec func(start, need int) (bool, bool)
	rec = func(start, need int) (hit, ok bool) {
		if need == 0 {
			examined++
			if budget > 0 && examined > budget {
				return false, false
			}
			return prob.GEq(e.Pr(), alpha), true
		}
		// Monotone prune in reverse: if already above the threshold
		// with fewer removals, the smaller subset would have been found
		// at an earlier cardinality — still enumerate for correctness
		// of the exact bound, but the success test short-circuits.
		for i := start; i+need <= len(pool); i++ {
			j := pool[i]
			e.Remove(j)
			chosen = append(chosen, j)
			hit, ok := rec(i+1, need-1)
			if hit || !ok {
				e.Add(j)
				return hit, ok
			}
			chosen = chosen[:len(chosen)-1]
			e.Add(j)
		}
		return false, true
	}
	for m := 1; m <= len(pool); m++ {
		hit, ok := rec(0, m)
		if !ok {
			return nil, false
		}
		if hit {
			out := append([]int{}, chosen...)
			// Leave the evaluator with the chosen set removed so the
			// caller can read the achieved probability.
			for _, j := range out {
				e.Remove(j)
			}
			return out, true
		}
	}
	return nil, true // unreachable: full pool removal always reaches 1
}

func finishRepair(e *prob.Evaluator, candIDs, kernel, chosen []int, exact bool) *Repair {
	removed := make([]int, 0, len(kernel)+len(chosen))
	for _, j := range kernel {
		removed = append(removed, candIDs[j])
	}
	for _, j := range chosen {
		removed = append(removed, candIDs[j])
	}
	sort.Ints(removed)
	return &Repair{Removed: removed, NewPr: e.Pr(), Exact: exact}
}
