package causality

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// Repair is a minimal intervention turning a non-answer into an answer:
// deleting the Removed objects raises Pr(an) to NewPr >= α. It answers the
// actionable follow-up to a causality explanation — "what is the smallest
// set of competitors I need to beat?" — and generalizes counterfactual
// causes (a counterfactual cause is exactly a singleton repair).
type Repair struct {
	// Removed lists the object IDs whose deletion makes an an answer,
	// sorted ascending.
	Removed []int
	// NewPr is Pr(an | P − Removed).
	NewPr float64
	// Exact reports whether Removed is provably minimum; false means the
	// greedy fallback produced it (still valid, possibly larger).
	Exact bool
}

// MinimalRepair finds a smallest removal set R ⊆ P with
// Pr(an | P−R) >= alpha. Only candidate causes can matter (Lemma 1), every
// always-dominating object must be in R (its presence pins Pr(an) to 0),
// and Pr is monotone in R. The search runs the same branch-and-bound scheme
// as the FMCS refiner: a greedy marginal-gain construction first yields an
// incumbent upper bound, then (for pools up to greedyThreshold) the exact
// phase enumerates only cardinalities BELOW the incumbent, with subtrees
// pruned whenever even the `need` largest remaining removal gains cannot
// lift Pr to α. If that bounded search comes up empty the incumbent is
// provably minimum and reported Exact=true; larger pools or an exceeded
// Options.MaxSubsets budget keep the greedy set with Exact=false.
func MinimalRepair(ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	return MinimalRepairCtx(context.Background(), ds, q, anID, alpha, opts)
}

// MinimalRepairCtx is MinimalRepair under a context, with the same
// cancellation contract as CPCtx: the greedy construction and the exact
// phase poll ctx with an amortized stride and return a typed
// *ctxutil.CanceledError on cancellation. Unlike a MaxSubsets exhaustion —
// which degrades to the greedy answer — a cancellation is an error: the
// caller asked the computation to stop, so no partial repair is reported.
func MinimalRepairCtx(ctx context.Context, ds *dataset.Uncertain, q geom.Point, anID int, alpha float64, opts Options) (*Repair, error) {
	if anID < 0 || anID >= ds.Len() || ds.Objects[anID] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anID)
	}
	if err := checkQuery(q, ds.Dims(), alpha); err != nil {
		return nil, err
	}
	if err := precheck(ctx); err != nil {
		return nil, err
	}
	an := ds.Objects[anID]
	tr := obs.FromContext(ctx)
	endFilter := tr.StartSpan("repair.filter")
	candIDs := FilterCandidates(ds, q, an)
	endFilter()
	cands := make([]*uncertain.Object, len(candIDs))
	for i, id := range candIDs {
		cands[i] = ds.Objects[id]
	}
	return repairCore(ctx, prob.NewEvaluator(an, q, cands), candIDs, alpha, opts)
}

// repairCore is the model-agnostic half of the repair search, shared by the
// sample and pdf entry points: everything after candidate filtering and
// evaluator construction. The evaluator abstracts the probability model
// (sample weights or quadrature pseudo-samples), so the kernel extraction,
// the greedy incumbent, and the exact branch-and-bound phase below are
// written once against it.
func repairCore(ctx context.Context, e *prob.Evaluator, candIDs []int, alpha float64, opts Options) (*Repair, error) {
	poll := ctxutil.NewPoll(ctx, ctxutil.DefaultStride)
	tr := obs.FromContext(ctx)
	if prob.GEq(e.Pr(), alpha) {
		return nil, fmt.Errorf("%w: Pr=%.6g, α=%.6g", ErrNotNonAnswer, e.Pr(), alpha)
	}

	// Forced kernel: while an always-dominating candidate is present,
	// Pr(an) = 0 < α, so it belongs to every repair.
	var kernel, pool []int
	for j := 0; j < e.N(); j++ {
		if e.AlwaysDominates(j) {
			kernel = append(kernel, j)
			e.Remove(j)
		} else {
			pool = append(pool, j)
		}
	}
	// The kernel alone may already suffice.
	if prob.GEq(e.Pr(), alpha) {
		return finishRepair(e, candIDs, kernel, nil, true), nil
	}

	// Greedy incumbent: repeatedly remove the pool candidate with the
	// largest marginal probability gain. Always a valid repair (removing
	// the whole pool yields Pr = 1) and usually at or near the minimum.
	endGreedy := tr.StartSpan("repair.greedy")
	greedy, err := greedyRepair(e, pool, alpha, poll)
	endGreedy()
	if err != nil {
		return nil, canceled(err, 0)
	}
	if greedy == nil {
		// Cannot happen: removing every candidate yields Pr = 1.
		return nil, fmt.Errorf("causality: repair construction failed")
	}
	for _, j := range greedy {
		e.Add(j) // back to the kernel-only state for the exact phase
	}

	const greedyThreshold = 24
	if len(pool) <= greedyThreshold {
		endSearch := tr.StartSpan("repair.search")
		chosen, found, ok, err := exactRepairBelow(e, pool, alpha, opts.MaxSubsets, len(greedy), poll)
		endSearch()
		if err != nil {
			return nil, canceled(err, 0)
		}
		if ok && found {
			for _, j := range chosen {
				e.Remove(j)
			}
			return finishRepair(e, candIDs, kernel, chosen, true), nil
		}
		if ok {
			// The bounded search exhausted every smaller cardinality:
			// the greedy incumbent is a provably minimum repair.
			for _, j := range greedy {
				e.Remove(j)
			}
			return finishRepair(e, candIDs, kernel, greedy, true), nil
		}
		// Budget ran out mid-proof; fall through to the inexact answer.
	}

	for _, j := range greedy {
		e.Remove(j)
	}
	return finishRepair(e, candIDs, kernel, greedy, false), nil
}

// greedyRepair removes pool candidates in descending marginal-gain order
// until the threshold is reached, returning the chosen evaluator indexes
// (which remain removed). nil means the pool was exhausted below α. On
// cancellation the evaluator is restored to the kernel-only state and the
// context error is returned.
func greedyRepair(e *prob.Evaluator, pool []int, alpha float64, poll *ctxutil.Poll) ([]int, error) {
	var chosen []int
	remaining := append([]int{}, pool...)
	for !prob.GEq(e.Pr(), alpha) {
		if len(remaining) == 0 {
			for _, j := range chosen {
				e.Add(j)
			}
			return nil, nil
		}
		bestIdx, bestGain := -1, -1.0
		base := e.Pr()
		for i, j := range remaining {
			if err := poll.Check(); err != nil {
				for _, k := range chosen {
					e.Add(k)
				}
				return nil, err
			}
			if gain := e.PrWithout(j) - base; gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		j := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		e.Remove(j)
		chosen = append(chosen, j)
	}
	return chosen, nil
}

// errRepairBudget distinguishes MaxSubsets exhaustion (degrade to the
// greedy incumbent) from a context cancellation (a real error) inside the
// shared subset search.
var errRepairBudget = errors.New("causality: repair enumeration budget exhausted")

// exactRepairBelow enumerates pool subsets of size < upper in ascending
// cardinality on an evaluator whose kernel is already removed, returning
// the first (hence minimum) subset reaching the threshold. It runs the
// shared sorted-pool/prefix-sum/budgeted search (subsetSearch) with the
// repair leaf plugged in: the pool is visited in descending removal-gain
// order and a subtree dies when even the `need` largest remaining gains
// cannot lift the current probability to α — the same admissible bound the
// FMCS refiner uses, so the phase only pays for cardinalities the incumbent
// has not already ruled out. found=false with ok=true means no smaller
// repair exists; ok=false means the budget ran out; a non-nil err is a
// context cancellation. The evaluator is restored in every case.
func exactRepairBelow(e *prob.Evaluator, pool []int, alpha float64, budget int64, upper int, poll *ctxutil.Poll) (chosen []int, found, ok bool, err error) {
	if upper <= 1 {
		return nil, false, true, nil // the incumbent is a singleton: nothing below it
	}
	gains := make(map[int]float64, len(pool))
	for _, j := range pool {
		gains[j] = e.RemovalGain(j)
	}
	gain := func(j int) float64 { return gains[j] }
	ordered := append([]int{}, pool...)
	sortPoolByGain(ordered, gain)
	prefix := gainPrefix(ordered, gain, nil)

	var examined int64
	search := &subsetSearch{
		e:    e,
		pool: ordered,
		// Charge every node, pruned branch points included, so the budget
		// trips even when the admissible bound kills everything. The
		// context poll rides on the same charging point.
		charge: func(n int64) error {
			if err := poll.Charge(n); err != nil {
				// Type the error here, where the partial node count lives,
				// so the CanceledError reports the abandoned work.
				return &ctxutil.CanceledError{Err: err, SubsetsExamined: examined}
			}
			if examined += n; budget > 0 && examined > budget {
				return errRepairBudget
			}
			return nil
		},
		leaf: func() (bool, error) { return prob.GEq(e.Pr(), alpha), nil },
		prune: func(start, need int) bool {
			mass := prefix[start+need] - prefix[start]
			return prob.Less(e.Pr()+mass+admissibleSlack, alpha)
		},
	}
	for m := 1; m < upper; m++ {
		if m > len(ordered) {
			break
		}
		hit, err := search.run(0, m, &chosen)
		if errors.Is(err, errRepairBudget) {
			return nil, false, false, nil
		}
		if err != nil {
			return nil, false, false, err
		}
		if hit {
			return chosen, true, true, nil
		}
	}
	return nil, false, true, nil
}

func finishRepair(e *prob.Evaluator, candIDs, kernel, chosen []int, exact bool) *Repair {
	removed := make([]int, 0, len(kernel)+len(chosen))
	for _, j := range kernel {
		removed = append(removed, candIDs[j])
	}
	for _, j := range chosen {
		removed = append(removed, candIDs[j])
	}
	sort.Ints(removed)
	return &Repair{Removed: removed, NewPr: e.Pr(), Exact: exact}
}
