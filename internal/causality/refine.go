package causality

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
)

// refiner is the shared refinement engine behind CP and its pdf-model
// variant: given an incremental probability evaluator over the candidate
// causes, it classifies counterfactual causes (Lemma 5), forced
// contingency members (Lemma 4 / Γ1), and finds each candidate's minimum
// contingency set (FMCS, Algorithm 2) with Lemma 6 bound propagation.
//
// The key structural fact exploited for pruning is monotonicity:
// Pr(an | P−X) is non-decreasing in X (removing an object can only remove
// dominance mass), so once a partial removal set already satisfies
// Pr >= α, every superset violates contingency condition (i) and the
// whole enumeration branch dies.
//
// On top of the cardinality-ascending enumeration the refiner runs a true
// branch-and-bound search:
//
//   - a greedy incumbent pass (largest-marginal-gain removals until the
//     contingency conditions hold) seeds a per-candidate upper bound
//     BEFORE any exhaustive work, so the search proves minimality below a
//     tight incumbent instead of climbing from the bottom blindly
//     (Options.NoGreedySeed ablates it);
//   - an admissible bound prunes subtrees inside the enumeration: each
//     candidate's removal can raise Pr(an | ·) by at most its dominance
//     mass Σ_i w_i·d(j,i) in any context, so a branch whose `need` best
//     remaining removals cannot lift Pr(an | · −{cc}) to α has no
//     satisfying leaf (Options.NoAdmissible ablates it);
//   - pools and the candidate processing order are sorted by descending
//     dominance mass, so satisfying sets are met early and Lemma-6 bounds
//     propagate before, not after, the expensive searches
//     (Options.NoMassOrder ablates it).
//
// All three are pure search-space reductions: they never change which
// cause IDs are reported or their responsibilities (minimum contingency
// sizes are unique even though the witnessing sets are not).
//
// With Options.Parallel > 1 the per-candidate searches run on worker
// goroutines, each owning a clone of the evaluator; the Lemma-6 bounds are
// shared under a mutex. Bounds only ever shrink the search space, never
// change its answer, so the output is identical to the serial run.
type refiner struct {
	e     *prob.Evaluator
	ids   []int // candidate object IDs, parallel to evaluator indexes
	alpha float64

	// ctx cancels the search; poll amortizes the check to one ctx.Err()
	// read per ctxutil.DefaultStride charged work units (each parallel
	// worker owns its own poll over the shared ctx). The poll sits inside
	// chargeWork, so it never perturbs the search order or the budget
	// counters of an uncanceled run.
	ctx  context.Context
	poll *ctxutil.Poll

	forced         []bool // Lemma 4: in every minimum contingency set
	counterfactual []bool // Lemma 5: in no minimum contingency set

	// gains[j] is the admissible removal gain of candidate j (its total
	// dominance mass against an): an upper bound on how much removing j
	// can raise Pr(an | ·) in any context. Computed once on the root
	// evaluator and shared read-only across workers.
	gains []float64

	opts   Options
	shared *refinerShared

	// Per-instance scratch reused across fmcs calls (each parallel worker
	// owns its own refiner, so no synchronization is needed). Deep
	// enumeration calls fmcs once per candidate; without reuse every call
	// reallocates the forced/pool partitions and the chosen stack.
	scratchForced []int
	scratchPool   []int
	scratchChosen []int
	scratchPrefix []float64
	scratchPicked []bool
}

// admissibleSlack widens the admissible prune threshold beyond the Eps
// already inside prob.Less: the bound and the leaf probabilities travel
// different float paths (direct gain sums vs the incremental product), so
// the prune keeps a full comparison-tolerance of margin to stay sound.
const admissibleSlack = 1e-9

// refinerShared is the cross-worker state.
type refinerShared struct {
	mu         sync.Mutex
	bestKnown  []int   // per candidate: best known contingency size (-1 unknown)
	bestSet    [][]int // the recorded set (evaluator indexes)
	greedySize []int   // per candidate: greedy incumbent size (-1 = no seed)

	subsetsExamined atomic.Int64
	// workUnits counts every enumeration node — leaves AND branch points
	// killed by a prune. The MaxSubsets budget draws from this counter:
	// pruning turns would-be leaf verifications into internal-node
	// evaluations, and a budget that only counted leaves would never trip
	// on a search that prunes everything while still churning through an
	// exponential frontier.
	workUnits   atomic.Int64
	greedySeeds atomic.Int64
	greedyHits  atomic.Int64
	maxSubsets  int64
	aborted     atomic.Bool
}

func newRefiner(ctx context.Context, e *prob.Evaluator, ids []int, alpha float64, opts Options) *refiner {
	n := e.N()
	shared := &refinerShared{
		bestKnown:  make([]int, n),
		bestSet:    make([][]int, n),
		greedySize: make([]int, n),
		maxSubsets: opts.MaxSubsets,
	}
	for j := range shared.bestKnown {
		shared.bestKnown[j] = -1
		shared.greedySize[j] = -1
	}
	gains := make([]float64, n)
	for j := range gains {
		gains[j] = e.RemovalGain(j)
	}
	return &refiner{
		e:              e,
		ids:            ids,
		alpha:          alpha,
		ctx:            ctx,
		poll:           ctxutil.NewPoll(ctx, ctxutil.DefaultStride),
		forced:         make([]bool, n),
		counterfactual: make([]bool, n),
		gains:          gains,
		opts:           opts,
		shared:         shared,
	}
}

// wrapCanceled converts a context error escaping the refinement into the
// typed CanceledError carrying the partial subset counter; every other
// error (ErrSubsetBudget in particular) passes through unchanged.
func (r *refiner) wrapCanceled(err error) error {
	return canceled(err, r.subsetsCount())
}

// subsetsExamined reports the shared verification counter.
func (r *refiner) subsetsCount() int64 { return r.shared.subsetsExamined.Load() }

// greedyStats reports how many greedy incumbents were seeded and how many
// turned out to already be minimum contingency sets.
func (r *refiner) greedyStats() (seeds, hits int64) {
	return r.shared.greedySeeds.Load(), r.shared.greedyHits.Load()
}

// classify fills the forced and counterfactual marks (Lemmas 4 and 5);
// either classification can be ablated away without affecting correctness,
// only the search-space size.
func (r *refiner) classify() {
	for j := 0; j < r.e.N(); j++ {
		if !r.opts.NoLemma4 && r.e.AlwaysDominates(j) {
			r.forced[j] = true
		}
		if !r.opts.NoLemma5 && prob.GEq(r.e.PrWithout(j), r.alpha) {
			r.counterfactual[j] = true
		}
	}
}

// tightenGains is the per-sample remaining-zero-coverage refinement of the
// admissible removal gains: a counterfactual candidate is never removed
// during any contingency search (Lemma 5 keeps it out of every pool and
// every greedy pick), so a sample it dominates with probability 1 keeps a
// zero Eq. (2) factor in every context the search can reach — no sequence
// of pool removals ever reclaims that sample's mass. Subtracting the
// permanently dead mass from each candidate's gain tightens the
// branch-and-bound budget while staying admissible. The mass ordering uses
// the same tightened gains, so the prefix-sum bound stays an exact range
// sum over the sorted pool, and every ablation variant sees the same
// enumeration order (the monotonicity gates compare subset counts across
// variants).
func (r *refiner) tightenGains() {
	blocked := r.e.BlockedSampleMask(r.counterfactual)
	if blocked == nil {
		return
	}
	for j := range r.gains {
		r.gains[j] = r.e.RemovalGainMasked(j, blocked)
	}
}

// run executes the refinement and returns the causes.
func (r *refiner) run() ([]Cause, error) {
	r.classify()
	r.tightenGains()

	// Degenerate conflict: a candidate that is both forced and
	// counterfactual blocks every other cause — while it is present,
	// Pr(an) is exactly 0, so no other removal can flip an into an
	// answer; and removing it alone already flips an. It is the unique
	// actual cause.
	for j := range r.forced {
		if r.forced[j] && r.counterfactual[j] {
			return []Cause{{ID: r.ids[j], Responsibility: 1, Counterfactual: true}}, nil
		}
	}

	var causes []Cause
	for j := range r.counterfactual {
		if r.counterfactual[j] {
			causes = append(causes, Cause{ID: r.ids[j], Responsibility: 1, Counterfactual: true})
		}
	}

	tr := obs.FromContext(r.ctx)
	if !r.opts.NoGreedySeed {
		endGreedy := tr.StartSpan("explain.greedy")
		err := r.greedySeedAll()
		endGreedy()
		if err != nil {
			return nil, r.wrapCanceled(err)
		}
	}

	endSearch := tr.StartSpan("explain.search")
	perCandidate, err := r.searchAll()
	endSearch()
	if err != nil {
		return nil, r.wrapCanceled(err)
	}
	for cc, gamma := range perCandidate {
		if gamma == nil {
			continue // counterfactual (handled above) or not a cause
		}
		contingency := make([]int, len(gamma))
		for i, idx := range gamma {
			contingency[i] = r.ids[idx]
		}
		sort.Ints(contingency)
		causes = append(causes, Cause{
			ID:             r.ids[cc],
			Responsibility: 1 / float64(1+len(contingency)),
			Contingency:    contingency,
			Counterfactual: len(contingency) == 0,
		})
	}
	sortCauses(causes)
	return causes, nil
}

// searchOrder lists the candidates to search, skipping counterfactual ones.
// Unless ablated, candidates are visited in descending dominance-mass order:
// heavy candidates tend to share contingency structure, so their freshly
// found minimum sets seed Lemma-6 bounds for the candidates still queued.
func (r *refiner) searchOrder() []int {
	order := make([]int, 0, r.e.N())
	for cc := 0; cc < r.e.N(); cc++ {
		if !r.counterfactual[cc] {
			order = append(order, cc)
		}
	}
	if !r.opts.NoMassOrder {
		sortPoolByGain(order, func(j int) float64 { return r.gains[j] })
	}
	return order
}

// searchAll runs fmcs for every non-counterfactual candidate, serially or
// on Options.Parallel workers, and returns the found minimum contingency
// set per candidate (nil when not a cause or counterfactual).
func (r *refiner) searchAll() ([][]int, error) {
	n := r.e.N()
	out := make([][]int, n)
	order := r.searchOrder()

	if r.opts.Parallel <= 1 {
		for _, cc := range order {
			gamma, ok, err := r.fmcs(cc)
			if err != nil {
				return nil, err
			}
			if ok {
				out[cc] = gamma
				if out[cc] == nil {
					out[cc] = []int{} // counterfactual found by search
				}
			}
		}
		return out, nil
	}

	err := r.runParallel(order, func(wr *refiner, cc int) error {
		gamma, ok, err := wr.fmcs(cc)
		if err != nil {
			return err
		}
		if ok {
			if gamma == nil {
				gamma = []int{}
			}
			out[cc] = gamma // per-cc slot: no two workers share an index
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// workerClone builds a worker-owned refiner for the parallel passes: a
// private evaluator clone and context poll over the shared read-only marks,
// gains, options, and cross-worker bound state.
func (r *refiner) workerClone() *refiner {
	return &refiner{
		e:              r.e.Clone(),
		ids:            r.ids,
		alpha:          r.alpha,
		ctx:            r.ctx,
		poll:           ctxutil.NewPoll(r.ctx, ctxutil.DefaultStride),
		forced:         r.forced,
		counterfactual: r.counterfactual,
		gains:          r.gains,
		opts:           r.opts,
		shared:         r.shared,
	}
}

// runParallel fans the per-candidate jobs out over Options.Parallel worker
// goroutines, each running work on its own refiner clone, and returns the
// first worker error.
func (r *refiner) runParallel(order []int, work func(wr *refiner, cc int) error) error {
	workers := r.opts.Parallel
	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wr := r.workerClone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cc := range jobs {
				// Drain without working once any worker aborted: returning
				// instead would let the dispatcher block forever on the
				// unbuffered channel when every worker dies between its
				// aborted-check and the send (all workers fail near-
				// simultaneously under a canceled context or an exhausted
				// budget).
				if errs[w] != nil || r.shared.aborted.Load() {
					continue
				}
				if err := work(wr, cc); err != nil {
					errs[w] = err
					r.shared.aborted.Store(true)
				}
			}
		}()
	}
	for _, cc := range order {
		if r.shared.aborted.Load() {
			break
		}
		jobs <- cc
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bound reads the best known contingency size for cc (-1 unknown).
func (r *refiner) bound(cc int) int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	return r.shared.bestKnown[cc]
}

func (r *refiner) boundSet(cc int) []int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	return r.shared.bestSet[cc]
}

// partition splits the candidates other than cc into the forced kernel and
// the searchable pool, excluding counterfactual candidates (Lemma 5). The
// returned slices alias the refiner's scratch space.
func (r *refiner) partition(cc int) (forcedSet, pool []int) {
	forcedSet, pool = r.scratchForced[:0], r.scratchPool[:0]
	for j := 0; j < r.e.N(); j++ {
		if j == cc {
			continue
		}
		switch {
		case r.forced[j]:
			forcedSet = append(forcedSet, j)
		case r.counterfactual[j]:
			// Lemma 5: never in a minimum contingency set.
		default:
			pool = append(pool, j)
		}
	}
	r.scratchForced, r.scratchPool = forcedSet, pool
	return forcedSet, pool
}

// chargeWork draws n evaluation units from the MaxSubsets budget,
// returning ErrSubsetBudget once it is exhausted. It is also the single
// cancellation point of the refinement: the amortized context poll fires
// here, so every budget-charging site — leaves, pruned branch points, the
// greedy incumbent pass — observes a cancellation within one stride.
func (r *refiner) chargeWork(n int64) error {
	if err := r.poll.Charge(n); err != nil {
		return err
	}
	if r.shared.maxSubsets > 0 && r.shared.workUnits.Add(n) > r.shared.maxSubsets {
		return ErrSubsetBudget
	}
	return nil
}

// greedySeedAll runs the greedy incumbent pass for every searchable
// candidate, seeding the shared upper bounds before any exhaustive search
// begins. With Options.Parallel > 1 the pass fans out over worker
// goroutines (the same clone-per-worker scheme as searchAll): the seeds are
// independent per candidate — greedySeed writes the shared bounds but never
// reads them — so every interleaving records the same bounds the serial
// pass would. Probability evaluations are charged to the MaxSubsets budget
// like any other search node, so a tight budget bounds the whole
// refinement, not just the enumeration behind the seeds.
func (r *refiner) greedySeedAll() error {
	order := r.searchOrder()
	if r.opts.Parallel <= 1 {
		for _, cc := range order {
			if err := r.greedySeed(cc); err != nil {
				return err
			}
		}
		return nil
	}
	return r.runParallel(order, func(wr *refiner, cc int) error {
		return wr.greedySeed(cc)
	})
}

// greedySeed builds a contingency-set incumbent for cc by repeatedly
// removing the pool object with the largest marginal gain on
// Pr(an | · − {cc}) until condition (ii) holds, then verifying condition
// (i). A verified incumbent of size s bounds cc's search to cardinalities
// < s; the search only has to prove nothing smaller exists.
func (r *refiner) greedySeed(cc int) error {
	forcedSet, pool := r.partition(cc)

	for _, j := range forcedSet {
		r.e.Remove(j)
	}
	r.e.Remove(cc)

	if cap(r.scratchPicked) < r.e.N() {
		r.scratchPicked = make([]bool, r.e.N())
	}
	picked := r.scratchPicked[:r.e.N()]
	for i := range picked {
		picked[i] = false
	}

	chosen := r.scratchChosen[:0]
	feasible := true
	var budgetErr error
	for budgetErr == nil && prob.Less(r.e.Pr(), r.alpha) {
		best, bestPr := -1, 0.0
		for _, j := range pool {
			if picked[j] {
				continue
			}
			if budgetErr = r.chargeWork(1); budgetErr != nil {
				break
			}
			if pr := r.e.PrWithout(j); best < 0 || pr > bestPr {
				best, bestPr = j, pr
			}
		}
		if budgetErr != nil {
			break
		}
		if best < 0 {
			feasible = false // pool exhausted below α: cc is not a cause
			break
		}
		picked[best] = true
		chosen = append(chosen, best)
		r.e.Remove(best)
	}
	r.scratchChosen = chosen[:0]

	ok := false
	r.e.Add(cc)
	if feasible && budgetErr == nil {
		// Condition (ii) holds; re-adding cc must keep an a non-answer
		// (condition (i)) for Γ = forced ∪ chosen to witness causehood.
		ok = prob.Less(r.e.Pr(), r.alpha)
	}

	var set []int
	if ok {
		set = make([]int, 0, len(forcedSet)+len(chosen))
		set = append(append(set, forcedSet...), chosen...)
	}

	// Restore the evaluator exactly (also on the budget-abort path).
	for _, j := range chosen {
		r.e.Add(j)
	}
	for _, j := range forcedSet {
		r.e.Add(j)
	}

	if !ok {
		return budgetErr
	}
	size := len(set)
	r.shared.greedySeeds.Add(1)
	r.shared.mu.Lock()
	r.shared.greedySize[cc] = size
	if r.shared.bestKnown[cc] < 0 || r.shared.bestKnown[cc] > size {
		r.shared.bestKnown[cc] = size
		r.shared.bestSet[cc] = set
	}
	r.shared.mu.Unlock()
	return nil
}

// recordGreedyHit bumps the hit counter when cc's final minimum size equals
// its greedy incumbent — the measure of how often the incumbent pass alone
// found an optimal set and the search only certified it. Only the
// bound-return path of fmcs can hit: a set found by enumeration is always
// strictly smaller than the incumbent that capped the search.
func (r *refiner) recordGreedyHit(cc, size int) {
	r.shared.mu.Lock()
	hit := r.shared.greedySize[cc] == size
	r.shared.mu.Unlock()
	if hit {
		r.shared.greedyHits.Add(1)
	}
}

// fmcs finds a minimum contingency set for candidate cc (Algorithm 2),
// returning the set as evaluator indexes. ok is false when cc is not an
// actual cause.
func (r *refiner) fmcs(cc int) (gamma []int, ok bool, err error) {
	forcedSet, pool := r.partition(cc)
	maxSize := len(forcedSet) + len(pool)

	// Dominance-mass order: heavy removals first, so satisfying subsets
	// appear early in each cardinality's enumeration — and so the
	// admissible bound's best-remaining prefix is exactly a range sum.
	if !r.opts.NoMassOrder {
		sortPoolByGain(pool, func(j int) float64 { return r.gains[j] })
	}

	// Feasibility precheck: condition (ii) is monotone in Γ, so if even
	// the maximal Γ (everything but cc removed) cannot make an an
	// answer, cc is not an actual cause.
	for _, j := range forcedSet {
		r.e.Remove(j)
	}
	for _, j := range pool {
		r.e.Remove(j)
	}
	feasible := prob.GEq(r.e.PrWithout(cc), r.alpha)
	for _, j := range pool {
		r.e.Add(j)
	}
	if !feasible {
		for _, j := range forcedSet {
			r.e.Add(j)
		}
		return nil, false, nil
	}

	// Admissible-bound prefix sums over the pool's gains: with the pool
	// mass-sorted, the best `need` removals available from position
	// `start` onward are exactly pool[start:start+need].
	var prefix []float64
	if !r.opts.NoAdmissible {
		prefix = gainPrefix(pool, func(j int) float64 { return r.gains[j] }, r.scratchPrefix)
		r.scratchPrefix = prefix
	}

	// The shared budgeted enumeration with the FMCS leaf and prunes
	// plugged in. Two prunes guard each branch point: the monotone prune
	// (condition (i) already violated — dead for every superset) and the
	// admissible prune (even the best `need` remaining removals cannot
	// lift Pr(an | · −{cc}) to α — no satisfying leaf below).
	search := &subsetSearch{
		e:      r.e,
		pool:   pool,
		charge: r.chargeWork,
		leaf: func() (bool, error) {
			r.shared.subsetsExamined.Add(1)
			pr, prWo := r.e.PrPair(cc)
			return prob.Less(pr, r.alpha) && prob.GEq(prWo, r.alpha), nil
		},
		prune: func(start, need int) bool {
			if prefix == nil {
				// Without the admissible bound only Pr is needed, so skip
				// PrPair's PrWithout half — this is exactly the
				// pre-branch-and-bound node cost.
				return !r.opts.NoPrune && prob.GEq(r.e.Pr(), r.alpha)
			}
			pr, prWo := r.e.PrPair(cc)
			if !r.opts.NoPrune && prob.GEq(pr, r.alpha) {
				return true
			}
			budget := prefix[start+need] - prefix[start]
			if r.opts.NoMassOrder {
				// Unsorted pool: fall back to the whole remaining mass,
				// still admissible, just looser.
				budget = prefix[len(pool)] - prefix[start]
			}
			return prob.Less(prWo+budget+admissibleSlack, r.alpha)
		},
	}

	// Search cardinalities strictly below the best known upper bound —
	// the greedy incumbent and/or Lemma-6 sets, else maxSize+1.
	upper := maxSize + 1
	found := -1
	chosen := r.scratchChosen[:0]
	for m := len(forcedSet); ; m++ {
		// Re-read the shared bound each cardinality: parallel workers may
		// have tightened it since the search began.
		if b := r.bound(cc); b >= 0 && b < upper {
			upper = b
		}
		if m >= upper {
			break
		}
		need := m - len(forcedSet)
		if need > len(pool) {
			break
		}
		hit, e := search.run(0, need, &chosen)
		if e != nil {
			for _, j := range forcedSet {
				r.e.Add(j)
			}
			return nil, false, e
		}
		if hit {
			found = m
			break
		}
	}
	for _, j := range forcedSet {
		r.e.Add(j)
	}
	r.scratchChosen = chosen[:0]

	switch {
	case found >= 0:
		gamma = make([]int, 0, len(forcedSet)+len(chosen))
		gamma = append(append(gamma, forcedSet...), chosen...)
		if !r.opts.NoLemma6 {
			r.propagateLemma6(cc, gamma)
		}
		return gamma, true, nil
	case r.bound(cc) >= 0:
		// Nothing smaller exists, so the recorded incumbent (greedy or
		// Lemma-6) is minimal — which is all Lemma 6 itself needs: a
		// certified incumbent propagates same-size bounds to its members
		// exactly like a freshly enumerated set. Guarded by the same
		// ablation flag so NoLemma6 benchmark cells stay comparable.
		r.recordGreedyHit(cc, r.bound(cc))
		gamma = r.boundSet(cc)
		if !r.opts.NoLemma6 {
			r.propagateLemma6(cc, gamma)
		}
		return gamma, true, nil
	default:
		return nil, false, nil
	}
}

// propagateLemma6 records contingency sets for the members of a freshly
// found minimum set: if Γ is minimal for cc and o ∈ Γ satisfies
// Pr(an | P − (Γ−{o}) − {cc}) < α, then (Γ−{o}) ∪ {cc} is a contingency
// set for o of the same size (Lemma 6), sparing o's own search below that
// bound.
func (r *refiner) propagateLemma6(cc int, gamma []int) {
	size := len(gamma)
	for _, o := range gamma {
		if r.counterfactual[o] {
			continue
		}
		if b := r.bound(o); b >= 0 && b <= size {
			continue
		}
		// Build P − (Γ−{o}) − {cc} on the evaluator.
		for _, j := range gamma {
			if j != o {
				r.e.Remove(j)
			}
		}
		pr := r.e.PrWithout(cc)
		for _, j := range gamma {
			if j != o {
				r.e.Add(j)
			}
		}
		if prob.Less(pr, r.alpha) {
			set := make([]int, 0, size)
			for _, j := range gamma {
				if j != o {
					set = append(set, j)
				}
			}
			set = append(set, cc)
			r.shared.mu.Lock()
			if r.shared.bestKnown[o] < 0 || r.shared.bestKnown[o] > size {
				r.shared.bestKnown[o] = size
				r.shared.bestSet[o] = set
			}
			r.shared.mu.Unlock()
		}
	}
}
