package causality

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/crsky/crsky/internal/prob"
)

// refiner is the shared refinement engine behind CP and its pdf-model
// variant: given an incremental probability evaluator over the candidate
// causes, it classifies counterfactual causes (Lemma 5), forced
// contingency members (Lemma 4 / Γ1), and finds each candidate's minimum
// contingency set (FMCS, Algorithm 2) with Lemma 6 bound propagation.
//
// The key structural fact exploited for pruning is monotonicity:
// Pr(an | P−X) is non-decreasing in X (removing an object can only remove
// dominance mass), so once a partial removal set already satisfies
// Pr >= α, every superset violates contingency condition (i) and the
// whole enumeration branch dies.
//
// With Options.Parallel > 1 the per-candidate searches run on worker
// goroutines, each owning a clone of the evaluator; the Lemma-6 bounds are
// shared under a mutex. Bounds only ever shrink the search space, never
// change its answer, so the output is identical to the serial run.
type refiner struct {
	e     *prob.Evaluator
	ids   []int // candidate object IDs, parallel to evaluator indexes
	alpha float64

	forced         []bool // Lemma 4: in every minimum contingency set
	counterfactual []bool // Lemma 5: in no minimum contingency set

	opts   Options
	shared *refinerShared

	// Per-instance scratch reused across fmcs calls (each parallel worker
	// owns its own refiner, so no synchronization is needed). Deep
	// enumeration calls fmcs once per candidate; without reuse every call
	// reallocates the forced/pool partitions and the chosen stack.
	scratchForced []int
	scratchPool   []int
	scratchChosen []int
}

// refinerShared is the cross-worker state.
type refinerShared struct {
	mu        sync.Mutex
	bestKnown []int   // per candidate: best known contingency size (-1 unknown)
	bestSet   [][]int // the recorded set (evaluator indexes)

	subsetsExamined atomic.Int64
	maxSubsets      int64
	aborted         atomic.Bool
}

func newRefiner(e *prob.Evaluator, ids []int, alpha float64, opts Options) *refiner {
	n := e.N()
	shared := &refinerShared{
		bestKnown:  make([]int, n),
		bestSet:    make([][]int, n),
		maxSubsets: opts.MaxSubsets,
	}
	for j := range shared.bestKnown {
		shared.bestKnown[j] = -1
	}
	return &refiner{
		e:              e,
		ids:            ids,
		alpha:          alpha,
		forced:         make([]bool, n),
		counterfactual: make([]bool, n),
		opts:           opts,
		shared:         shared,
	}
}

// subsetsExamined reports the shared verification counter.
func (r *refiner) subsetsCount() int64 { return r.shared.subsetsExamined.Load() }

// classify fills the forced and counterfactual marks (Lemmas 4 and 5);
// either classification can be ablated away without affecting correctness,
// only the search-space size.
func (r *refiner) classify() {
	for j := 0; j < r.e.N(); j++ {
		if !r.opts.NoLemma4 && r.e.AlwaysDominates(j) {
			r.forced[j] = true
		}
		if !r.opts.NoLemma5 && prob.GEq(r.e.PrWithout(j), r.alpha) {
			r.counterfactual[j] = true
		}
	}
}

// run executes the refinement and returns the causes.
func (r *refiner) run() ([]Cause, error) {
	r.classify()

	// Degenerate conflict: a candidate that is both forced and
	// counterfactual blocks every other cause — while it is present,
	// Pr(an) is exactly 0, so no other removal can flip an into an
	// answer; and removing it alone already flips an. It is the unique
	// actual cause.
	for j := range r.forced {
		if r.forced[j] && r.counterfactual[j] {
			return []Cause{{ID: r.ids[j], Responsibility: 1, Counterfactual: true}}, nil
		}
	}

	var causes []Cause
	for j := range r.counterfactual {
		if r.counterfactual[j] {
			causes = append(causes, Cause{ID: r.ids[j], Responsibility: 1, Counterfactual: true})
		}
	}

	perCandidate, err := r.searchAll()
	if err != nil {
		return nil, err
	}
	for cc, gamma := range perCandidate {
		if gamma == nil {
			continue // counterfactual (handled above) or not a cause
		}
		contingency := make([]int, len(gamma))
		for i, idx := range gamma {
			contingency[i] = r.ids[idx]
		}
		sort.Ints(contingency)
		causes = append(causes, Cause{
			ID:             r.ids[cc],
			Responsibility: 1 / float64(1+len(contingency)),
			Contingency:    contingency,
			Counterfactual: len(contingency) == 0,
		})
	}
	sortCauses(causes)
	return causes, nil
}

// searchAll runs fmcs for every non-counterfactual candidate, serially or
// on Options.Parallel workers, and returns the found minimum contingency
// set per candidate (nil when not a cause or counterfactual).
func (r *refiner) searchAll() ([][]int, error) {
	n := r.e.N()
	out := make([][]int, n)

	if r.opts.Parallel <= 1 {
		for cc := 0; cc < n; cc++ {
			if r.counterfactual[cc] {
				continue
			}
			gamma, ok, err := r.fmcs(cc)
			if err != nil {
				return nil, err
			}
			if ok {
				out[cc] = gamma
				if out[cc] == nil {
					out[cc] = []int{} // counterfactual found by search
				}
			}
		}
		return out, nil
	}

	workers := r.opts.Parallel
	jobs := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wr := &refiner{
			e:              r.e.Clone(),
			ids:            r.ids,
			alpha:          r.alpha,
			forced:         r.forced,
			counterfactual: r.counterfactual,
			opts:           r.opts,
			shared:         r.shared,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cc := range jobs {
				gamma, ok, err := wr.fmcs(cc)
				if err != nil {
					errs[w] = err
					r.shared.aborted.Store(true)
					return
				}
				if ok {
					if gamma == nil {
						gamma = []int{}
					}
					out[cc] = gamma
				}
			}
		}()
	}
	for cc := 0; cc < n; cc++ {
		if r.counterfactual[cc] {
			continue
		}
		if r.shared.aborted.Load() {
			break
		}
		jobs <- cc
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// bound reads the best known contingency size for cc (-1 unknown).
func (r *refiner) bound(cc int) int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	return r.shared.bestKnown[cc]
}

func (r *refiner) boundSet(cc int) []int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	return r.shared.bestSet[cc]
}

// fmcs finds a minimum contingency set for candidate cc (Algorithm 2),
// returning the set as evaluator indexes. ok is false when cc is not an
// actual cause.
func (r *refiner) fmcs(cc int) (gamma []int, ok bool, err error) {
	forcedSet, pool := r.scratchForced[:0], r.scratchPool[:0]
	for j := 0; j < r.e.N(); j++ {
		if j == cc {
			continue
		}
		switch {
		case r.forced[j]:
			forcedSet = append(forcedSet, j)
		case r.counterfactual[j]:
			// Lemma 5: never in a minimum contingency set.
		default:
			pool = append(pool, j)
		}
	}
	r.scratchForced, r.scratchPool = forcedSet, pool
	maxSize := len(forcedSet) + len(pool)

	// Feasibility precheck: condition (ii) is monotone in Γ, so if even
	// the maximal Γ (everything but cc removed) cannot make an an
	// answer, cc is not an actual cause.
	for _, j := range forcedSet {
		r.e.Remove(j)
	}
	for _, j := range pool {
		r.e.Remove(j)
	}
	feasible := prob.GEq(r.e.PrWithout(cc), r.alpha)
	for _, j := range pool {
		r.e.Add(j)
	}
	if !feasible {
		for _, j := range forcedSet {
			r.e.Add(j)
		}
		return nil, false, nil
	}

	// Search cardinalities strictly below the best Lemma-6 bound.
	upper := maxSize + 1
	if b := r.bound(cc); b >= 0 && b < upper {
		upper = b
	}
	// The forced set is in every contingency set (Lemma 4), so it is
	// removed for the whole search; sizes below |forcedSet| do not exist.
	found := -1
	chosen := r.scratchChosen[:0]
	for m := len(forcedSet); m < upper; m++ {
		need := m - len(forcedSet)
		if need > len(pool) {
			break
		}
		hit, e := r.combine(cc, pool, 0, need, &chosen)
		if e != nil {
			for _, j := range forcedSet {
				r.e.Add(j)
			}
			return nil, false, e
		}
		if hit {
			found = m
			break
		}
	}
	for _, j := range forcedSet {
		r.e.Add(j)
	}
	r.scratchChosen = chosen[:0]

	switch {
	case found >= 0:
		gamma = make([]int, 0, len(forcedSet)+len(chosen))
		gamma = append(append(gamma, forcedSet...), chosen...)
		if !r.opts.NoLemma6 {
			r.propagateLemma6(cc, gamma)
		}
		return gamma, true, nil
	case r.bound(cc) >= 0:
		// Nothing smaller exists, so the Lemma-6 set is minimal.
		return r.boundSet(cc), true, nil
	default:
		return nil, false, nil
	}
}

// combine enumerates size-need subsets of pool[start:] on top of the
// removals already applied to the evaluator, testing the contingency
// conditions at the leaves. On success the selected pool entries are left
// in *chosen (and the evaluator is restored by the unwinding).
func (r *refiner) combine(cc int, pool []int, start, need int, chosen *[]int) (bool, error) {
	if need == 0 {
		n := r.shared.subsetsExamined.Add(1)
		if r.shared.maxSubsets > 0 && n > r.shared.maxSubsets {
			return false, ErrSubsetBudget
		}
		if prob.Less(r.e.Pr(), r.alpha) && prob.GEq(r.e.PrWithout(cc), r.alpha) {
			return true, nil
		}
		return false, nil
	}
	// Monotone prune: if an is already an answer with the current
	// removals, condition (i) fails for every superset.
	if !r.opts.NoPrune && prob.GEq(r.e.Pr(), r.alpha) {
		return false, nil
	}
	for i := start; i+need <= len(pool); i++ {
		j := pool[i]
		r.e.Remove(j)
		*chosen = append(*chosen, j)
		hit, err := r.combine(cc, pool, i+1, need-1, chosen)
		if hit || err != nil {
			r.e.Add(j)
			return hit, err
		}
		*chosen = (*chosen)[:len(*chosen)-1]
		r.e.Add(j)
	}
	return false, nil
}

// propagateLemma6 records contingency sets for the members of a freshly
// found minimum set: if Γ is minimal for cc and o ∈ Γ satisfies
// Pr(an | P − (Γ−{o}) − {cc}) < α, then (Γ−{o}) ∪ {cc} is a contingency
// set for o of the same size (Lemma 6), sparing o's own search below that
// bound.
func (r *refiner) propagateLemma6(cc int, gamma []int) {
	size := len(gamma)
	for _, o := range gamma {
		if r.counterfactual[o] {
			continue
		}
		if b := r.bound(o); b >= 0 && b <= size {
			continue
		}
		// Build P − (Γ−{o}) − {cc} on the evaluator.
		for _, j := range gamma {
			if j != o {
				r.e.Remove(j)
			}
		}
		pr := r.e.PrWithout(cc)
		for _, j := range gamma {
			if j != o {
				r.e.Add(j)
			}
		}
		if prob.Less(pr, r.alpha) {
			set := make([]int, 0, size)
			for _, j := range gamma {
				if j != o {
					set = append(set, j)
				}
			}
			set = append(set, cc)
			r.shared.mu.Lock()
			if r.shared.bestKnown[o] < 0 || r.shared.bestKnown[o] > size {
				r.shared.bestKnown[o] = size
				r.shared.bestSet[o] = set
			}
			r.shared.mu.Unlock()
		}
	}
}
