package causality

import (
	"fmt"
	"sort"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/skyline"
)

// CR computes the causality and responsibility for a non-answer to a
// (certain) reverse skyline query — Section 4. A single window query over
// the dominance rectangle of an collects every object dominating q w.r.t.
// an; by Lemma 7 each of them is an actual cause whose minimum contingency
// set is all the other candidates, so every responsibility is 1/|Cc|
// (Eq. 4) and no verification is needed.
func CR(ix *skyline.Index, q geom.Point, anIdx int) (*Result, error) {
	if anIdx < 0 || anIdx >= ix.Len() || ix.Deleted(anIdx) {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anIdx)
	}
	if err := checkQuery(q, ix.Dims(), 1); err != nil {
		return nil, err
	}
	candIDs := ix.Dominators(anIdx, q)
	if len(candIDs) == 0 {
		return nil, fmt.Errorf("%w: object %d is a reverse skyline point", ErrNotNonAnswer, anIdx)
	}
	sort.Ints(candIDs)
	res := &Result{NonAnswer: anIdx, Pr: 0, Candidates: len(candIDs)}
	res.Causes = lemma7Causes(candIDs)
	return res, nil
}

// lemma7Causes materializes Lemma 7: every candidate is an actual cause
// with contingency set Cc − {c} and responsibility 1/|Cc|.
func lemma7Causes(candIDs []int) []Cause {
	causes := make([]Cause, len(candIDs))
	for i, id := range candIDs {
		contingency := make([]int, 0, len(candIDs)-1)
		for _, other := range candIDs {
			if other != id {
				contingency = append(contingency, other)
			}
		}
		causes[i] = Cause{
			ID:             id,
			Responsibility: 1 / float64(len(candIDs)),
			Contingency:    contingency,
			Counterfactual: len(candIDs) == 1,
		}
	}
	sortCauses(causes)
	return causes
}

// NaiveII is the certain-data baseline of Section 5.4: it collects the
// candidates with the same window query as CR (identical I/O) but then
// verifies each candidate by enumerating subsets of the candidate set in
// ascending cardinality, testing reverse-skyline membership against the
// in-memory candidate list — ignoring Lemma 7 entirely.
func NaiveII(ix *skyline.Index, q geom.Point, anIdx int, opts Options) (*Result, error) {
	if anIdx < 0 || anIdx >= ix.Len() {
		return nil, fmt.Errorf("%w: %d", ErrBadObject, anIdx)
	}
	if err := checkQuery(q, ix.Dims(), 1); err != nil {
		return nil, err
	}
	candIDs := ix.Dominators(anIdx, q)
	if len(candIDs) == 0 {
		return nil, fmt.Errorf("%w: object %d is a reverse skyline point", ErrNotNonAnswer, anIdx)
	}
	if opts.MaxCandidates > 0 && len(candIDs) > opts.MaxCandidates {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyCandidates, len(candIDs), opts.MaxCandidates)
	}
	sort.Ints(candIDs)
	res := &Result{NonAnswer: anIdx, Pr: 0, Candidates: len(candIDs)}

	n := len(candIDs)
	removed := make([]bool, n)
	// anStillNonAnswer reports whether a dominator survives outside the
	// removal set; extraSkip additionally hides the candidate under test.
	anStillNonAnswer := func(extraSkip int) bool {
		for j := 0; j < n; j++ {
			if !removed[j] && j != extraSkip {
				return true
			}
		}
		return false
	}

	var chosen []int
	var rec func(start, need, cc int) (bool, error)
	rec = func(start, need, cc int) (bool, error) {
		if need == 0 {
			res.SubsetsExamined++
			if opts.MaxSubsets > 0 && res.SubsetsExamined > opts.MaxSubsets {
				return false, ErrSubsetBudget
			}
			// Γ is a contingency set iff an remains a non-answer on
			// P−Γ but becomes an answer on P−Γ−{cc}.
			return anStillNonAnswer(-1) && !anStillNonAnswer(cc), nil
		}
		for i := start; i < n; i++ {
			if i == cc || removed[i] {
				continue
			}
			removed[i] = true
			chosen = append(chosen, i)
			hit, err := rec(i+1, need-1, cc)
			if hit || err != nil {
				removed[i] = false
				return hit, err
			}
			chosen = chosen[:len(chosen)-1]
			removed[i] = false
		}
		return false, nil
	}

	for cc := 0; cc < n; cc++ {
		found := false
		for m := 0; m < n && !found; m++ {
			chosen = chosen[:0]
			hit, err := rec(0, m, cc)
			if err != nil {
				return nil, err
			}
			if hit {
				contingency := make([]int, len(chosen))
				for i, idx := range chosen {
					contingency[i] = candIDs[idx]
				}
				sort.Ints(contingency)
				res.Causes = append(res.Causes, Cause{
					ID:             candIDs[cc],
					Responsibility: 1 / float64(1+len(contingency)),
					Contingency:    contingency,
					Counterfactual: len(contingency) == 0,
				})
				found = true
			}
		}
	}
	sortCauses(res.Causes)
	return res, nil
}
