package conformance

import (
	"math/rand"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// TestConformanceSampleModel asserts every accelerated configuration of the
// discrete-sample engine against the naive per-object oracle on 200+
// randomized (dataset, query, threshold) cases.
func TestConformanceSampleModel(t *testing.T) {
	const workloads = 24 // x 3 queries x 3 alphas = 216 cases per variant
	forEachCaseSeed(t, 1_000, workloads, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		ieng := incrementalSampleEngine(t, w.ds.Objects)
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				want := eng.ProbabilisticReverseSkylineNaive(q, alpha)
				for _, v := range Variants() {
					e := eng
					if v.Incremental {
						e = ieng
					}
					got, st := e.ProbabilisticReverseSkylineOpts(q, alpha, v.Opt)
					if !equalIDs(got, want) {
						t.Errorf("%v q=%v alpha=%g variant=%s: got %v, want %v",
							w, q, alpha, v.Name, got, want)
						return
					}
					if v.Incremental {
						continue // the tombstone slot skews the decided count
					}
					decided := st.EmptyCandidates + st.AcceptedByBound + st.RejectedByBound +
						st.AcceptedByTier2 + st.RejectedByTier2 + st.Evaluated
					if decided != w.ds.Len() {
						t.Errorf("%v q=%v alpha=%g variant=%s: stats decide %d of %d (%+v)",
							w, q, alpha, v.Name, decided, w.ds.Len(), st)
						return
					}
				}
			}
		}
	})
}

// TestConformancePDFModel asserts the continuous-model accelerated path
// against thresholding PDFEngine.Prob over every object, across both
// density kinds, on 200+ randomized cases.
func TestConformancePDFModel(t *testing.T) {
	const workloads = 25 // x 2 kinds x 2 queries x 2 alphas = 200 cases per variant
	forEachCaseSeed(t, 2_000, workloads, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dims := 2 + rng.Intn(2)
		n := 25 + rng.Intn(50)
		rmax := 80 + 900*rng.Float64()
		cfg := families[rng.Intn(len(families))](n, dims, 10, rmax, rng.Int63())
		quad := 3 + rng.Intn(3)
		qs := make([]geom.Point, 2)
		for i := range qs {
			q := make(geom.Point, dims)
			for j := range q {
				q[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
			}
			qs[i] = q
		}
		alphas := []float64{0.2 + 0.6*rng.Float64(), 1}

		for _, kind := range []uncertain.PDFKind{uncertain.Uniform, uncertain.Gaussian} {
			objs, err := dataset.GenerateUncertainPDF(cfg, kind)
			if err != nil {
				t.Errorf("seed=%d kind=%v: %v", seed, kind, err)
				return
			}
			eng, err := crsky.NewPDFEngine(objs)
			if err != nil {
				t.Errorf("seed=%d kind=%v: %v", seed, kind, err)
				return
			}
			ieng := incrementalPDFEngine(t, objs)
			for _, q := range qs {
				for _, alpha := range alphas {
					want := eng.ProbabilisticReverseSkylineNaive(q, alpha, quad)
					for _, v := range Variants() {
						e := eng
						if v.Incremental {
							e = ieng
						}
						got, _ := e.ProbabilisticReverseSkylineOpts(q, alpha, quad, v.Opt)
						if !equalIDs(got, want) {
							t.Errorf("seed=%d kind=%v n=%d dims=%d quad=%d q=%v alpha=%g variant=%s: got %v, want %v",
								seed, kind, n, dims, quad, q, alpha, v.Name, got, want)
							return
						}
					}
				}
			}
		}
	})
}

// TestConformanceCertainModel cross-checks three independent certain-data
// engines on 200+ randomized cases spanning all four correlation families:
// the RecList traversal, the branch-and-bound BBRS variant, and the
// Section-4 reduction (degenerate sample objects at α = 1) running the full
// accelerated prsq pipeline.
func TestConformanceCertainModel(t *testing.T) {
	const workloads = 70 // x 3 queries = 210 cases per engine
	kinds := []dataset.CertainKind{
		dataset.Independent, dataset.Correlated, dataset.AntiCorrelated, dataset.Clustered,
	}
	forEachCaseSeed(t, 3_000, workloads, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.CertainConfig{
			N:    40 + rng.Intn(260),
			Dims: 2 + rng.Intn(3),
			Kind: kinds[rng.Intn(len(kinds))],
			Seed: rng.Int63(),
		}
		ds, err := dataset.GenerateCertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		ce, err := crsky.NewCertainEngine(ds.Points)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		red, err := crsky.NewEngine(ds.AsUncertain().Objects)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		ice := incrementalCertainEngine(t, ds.Points)
		for i := 0; i < 3; i++ {
			q := make(geom.Point, cfg.Dims)
			for j := range q {
				q[j] = 10000 * (0.1 + 0.8*rng.Float64())
			}
			want := ce.ReverseSkyline(q)
			if got := ce.ReverseSkylineBBRS(q); !equalIDs(sortedCopy(got), sortedCopy(want)) {
				t.Errorf("seed=%d kind=%v q=%v: BBRS %v, RecList %v", seed, cfg.Kind, q, got, want)
				return
			}
			if got := ice.ReverseSkyline(q); !equalIDs(sortedCopy(got), sortedCopy(want)) {
				t.Errorf("seed=%d kind=%v q=%v: incremental %v, from-scratch %v", seed, cfg.Kind, q, got, want)
				return
			}
			for _, v := range Variants() {
				if v.Incremental {
					// The certain-model incremental lineage is asserted above
					// on the CertainEngine itself (COW index + repaired
					// Section-4 reduction), where the mutation path lives.
					continue
				}
				got, _ := red.ProbabilisticReverseSkylineOpts(q, 1, v.Opt)
				if !equalIDs(got, sortedCopy(want)) {
					t.Errorf("seed=%d kind=%v q=%v variant=%s: reduction %v, RecList %v",
						seed, cfg.Kind, q, v.Name, got, want)
					return
				}
			}
		}
	})
}
