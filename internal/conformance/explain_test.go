package conformance

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// explainVariant is one refinement configuration cross-checked against the
// Definition-1 brute oracle.
type explainVariant struct {
	name string
	opts causality.Options
}

// explainVariants enumerates every branch-and-bound ablation combination
// (greedy seeding × admissible bound × mass ordering) crossed with serial
// and parallel refinement, plus the legacy lemma ablations stacked on both
// the full branch-and-bound search and the fully stripped enumeration.
func explainVariants() []explainVariant {
	var out []explainVariant
	for _, parallel := range []int{1, 4} {
		for mask := 0; mask < 8; mask++ {
			o := causality.Options{
				Parallel:     parallel,
				NoGreedySeed: mask&1 != 0,
				NoAdmissible: mask&2 != 0,
				NoMassOrder:  mask&4 != 0,
			}
			out = append(out, explainVariant{
				name: fmt.Sprintf("par%d-gs%t-ad%t-mo%t", parallel,
					!o.NoGreedySeed, !o.NoAdmissible, !o.NoMassOrder),
				opts: o,
			})
		}
		out = append(out,
			explainVariant{
				name: fmt.Sprintf("par%d-nolemmas-bb", parallel),
				opts: causality.Options{Parallel: parallel,
					NoLemma4: true, NoLemma5: true, NoLemma6: true, NoPrune: true},
			},
			explainVariant{
				name: fmt.Sprintf("par%d-nolemmas-plain", parallel),
				opts: causality.Options{Parallel: parallel,
					NoLemma4: true, NoLemma5: true, NoLemma6: true, NoPrune: true,
					NoGreedySeed: true, NoAdmissible: true, NoMassOrder: true},
			},
		)
	}
	return out
}

// explainWorkload is a tiny uncertain dataset: the brute oracle enumerates
// all subsets of all objects, so cardinalities stay single-digit.
func explainWorkload(t *testing.T, seed int64) (*dataset.Uncertain, geom.Point, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(4)
	dims := 1 + rng.Intn(2)
	objs := make([]*uncertain.Object, n)
	for i := 0; i < n; i++ {
		ns := 1 + rng.Intn(3)
		center := make(geom.Point, dims)
		for j := range center {
			center[j] = rng.Float64() * 60
		}
		locs := make([]geom.Point, ns)
		for s := range locs {
			p := make(geom.Point, dims)
			for j := range p {
				p[j] = center[j] + (rng.Float64()-0.5)*25
			}
			locs[s] = p
		}
		objs[i] = uncertain.NewUniform(i, locs)
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	q := make(geom.Point, dims)
	for j := range q {
		q[j] = rng.Float64() * 60
	}
	alpha := [4]float64{0.3, 0.5, 0.65, 0.8}[rng.Intn(4)]
	return ds, q, alpha
}

// checkContingencyWitness re-validates one reported cause straight from
// Definition 1 by rebuilding the per-world probabilities without the
// contingency set (condition (i)) and additionally without the cause
// (condition (ii)).
func checkContingencyWitness(t *testing.T, ds *dataset.Uncertain, q geom.Point,
	anID int, alpha float64, c causality.Cause, context string) {
	t.Helper()
	drop := make(map[int]bool, len(c.Contingency)+1)
	for _, id := range c.Contingency {
		drop[id] = true
	}
	active := func(extra int) []*uncertain.Object {
		var out []*uncertain.Object
		for _, o := range ds.Objects {
			if o.ID != anID && !drop[o.ID] && o.ID != extra {
				out = append(out, o)
			}
		}
		return out
	}
	an := ds.Objects[anID]
	if pr := prob.PrReverseSkyline(an, q, active(-1)); !prob.Less(pr, alpha) {
		t.Fatalf("%s: cause %d: removing Γ=%v alone lifted Pr to %v >= α=%v (condition (i) violated)",
			context, c.ID, c.Contingency, pr, alpha)
	}
	if pr := prob.PrReverseSkyline(an, q, active(c.ID)); !prob.GEq(pr, alpha) {
		t.Fatalf("%s: cause %d: removing Γ=%v and the cause left Pr at %v < α=%v (condition (ii) violated)",
			context, c.ID, c.Contingency, pr, alpha)
	}
}

// TestExplainConformance cross-checks the branch-and-bound refiner — every
// ablation combination, serial and parallel — against the Definition-1
// brute oracle on randomized cases: identical cause IDs in identical order,
// exact responsibilities, equal contingency-set sizes, and every witnessed
// contingency set must actually satisfy the contingency conditions (the
// sets themselves may legitimately differ between search orders, the sizes
// may not).
func TestExplainConformance(t *testing.T) {
	variants := explainVariants()
	informative := 0
	forEachCaseSeed(t, 31_000, 24, func(t *testing.T, seed int64) {
		ds, q, alpha := explainWorkload(t, seed)
		checked := 0
		defer func() { informative += checked }()
		for anID := 0; anID < ds.Len() && checked < 2; anID++ {
			if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), alpha) {
				continue
			}
			want := causality.BruteCausesUncertain(ds.Objects, q, anID, alpha)
			if len(want) == 0 {
				continue
			}
			checked++
			for _, v := range variants {
				got, err := causality.CP(ds, q, anID, alpha, v.opts)
				if err != nil {
					t.Fatalf("seed=%d an=%d variant=%s: %v", seed, anID, v.name, err)
				}
				ctx := fmt.Sprintf("seed=%d an=%d α=%g variant=%s", seed, anID, alpha, v.name)
				if len(got.Causes) != len(want) {
					t.Fatalf("%s: %d causes, oracle has %d\n got: %v\nwant: %v",
						ctx, len(got.Causes), len(want), got.Causes, want)
				}
				for i := range want {
					g, w := got.Causes[i], want[i]
					if g.ID != w.ID {
						t.Fatalf("%s: cause %d is object %d, oracle says %d", ctx, i, g.ID, w.ID)
					}
					if math.Abs(g.Responsibility-w.Responsibility) > 1e-12 {
						t.Fatalf("%s: cause %d responsibility %v, oracle says %v",
							ctx, g.ID, g.Responsibility, w.Responsibility)
					}
					if len(g.Contingency) != len(w.Contingency) {
						t.Fatalf("%s: cause %d |Γ|=%d, oracle says %d (Γ=%v vs %v)",
							ctx, g.ID, len(g.Contingency), len(w.Contingency),
							g.Contingency, w.Contingency)
					}
					if g.Counterfactual != w.Counterfactual {
						t.Fatalf("%s: cause %d counterfactual=%t, oracle says %t",
							ctx, g.ID, g.Counterfactual, w.Counterfactual)
					}
					checkContingencyWitness(t, ds, q, anID, alpha, g, ctx)
				}
			}
		}
	})
	if os.Getenv(ReplaySeedEnv) == "" && informative < 10 {
		t.Fatalf("only %d informative non-answers across all case seeds — workload drifted", informative)
	}
}

// TestExplainVariantAgreementLarger runs the variant cross on instances a
// bit beyond the brute oracle's reach, asserting all configurations agree
// with each other (transitively anchored to the oracle by the smaller
// cases) and that every witnessed contingency set checks out.
func TestExplainVariantAgreementLarger(t *testing.T) {
	variants := explainVariants()
	forEachCaseSeed(t, 32_000, 10, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.LUrU(14+rng.Intn(6), 2, 0, 2000+2000*rng.Float64(), rng.Int63())
		cfg.Samples = 1 + rng.Intn(3)
		cfg.Domain = 1000
		ds, err := dataset.GenerateUncertain(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		q := geom.Point{1000 * rng.Float64(), 1000 * rng.Float64()}
		alpha := 0.4 + 0.5*rng.Float64()
		checked := 0
		for anID := 0; anID < ds.Len() && checked < 2; anID++ {
			if prob.GEq(prob.PrReverseSkyline(ds.Objects[anID], q, ds.Objects), alpha) {
				continue
			}
			base, err := causality.CP(ds, q, anID, alpha, causality.Options{})
			if err != nil || len(base.Causes) == 0 {
				continue
			}
			checked++
			for ci, c := range base.Causes {
				if ci >= 3 {
					break
				}
				checkContingencyWitness(t, ds, q, anID, alpha, c,
					fmt.Sprintf("seed=%d an=%d base", seed, anID))
			}
			for _, v := range variants {
				got, err := causality.CP(ds, q, anID, alpha, v.opts)
				if err != nil {
					t.Fatalf("seed=%d an=%d variant=%s: %v", seed, anID, v.name, err)
				}
				ctx := fmt.Sprintf("seed=%d an=%d variant=%s", seed, anID, v.name)
				if len(got.Causes) != len(base.Causes) {
					t.Fatalf("%s: %d causes, base has %d", ctx, len(got.Causes), len(base.Causes))
				}
				for i := range base.Causes {
					g, w := got.Causes[i], base.Causes[i]
					if g.ID != w.ID || math.Abs(g.Responsibility-w.Responsibility) > 1e-12 ||
						len(g.Contingency) != len(w.Contingency) {
						t.Fatalf("%s: cause %d diverges: %+v vs base %+v", ctx, i, g, w)
					}
				}
			}
		}
	})
}
