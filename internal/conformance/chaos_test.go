package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/faultinject"
	"github.com/crsky/crsky/internal/server"
)

// The chaos harness: a real HTTP server with a deterministic fault injector
// wired into its worker pools (delayed slots) and its engine (injected
// errors and panics), hammered by concurrent mixed traffic that also
// misbehaves client-side — canceled requests and slow NDJSON consumers.
// The assertions are the service's overload/fault contract:
//
//   - every response is 200, an expected client error, 500 (only when the
//     injector actually fired), or 503 with an integer Retry-After >= 1;
//   - every 200 exact answer matches the naive oracle — faults may fail a
//     request, never corrupt one;
//   - afterwards both pools are fully drained (no slot leaks, no deadlock)
//     and a fresh request still answers exactly.

type chaosStats struct {
	ok, approx, shed, injected, clientErr, canceled atomic.Int64
}

func chaosPost(ts *httptest.Server, ctx context.Context, path string, body any, slowRead bool) (*http.Response, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if slowRead {
		// A misbehaving consumer: drain the NDJSON stream a few bytes at a
		// time so the handler experiences backpressure mid-response.
		chunk := make([]byte, 7)
		for {
			n, rerr := resp.Body.Read(chunk)
			buf.Write(chunk[:n])
			if rerr != nil {
				if rerr == io.EOF {
					break
				}
				return resp, buf.Bytes(), rerr
			}
			time.Sleep(50 * time.Microsecond)
		}
	} else if _, err := io.Copy(&buf, resp.Body); err != nil {
		return resp, buf.Bytes(), err
	}
	return resp, buf.Bytes(), nil
}

func TestChaosServingConformance(t *testing.T) {
	const seed = 4242
	w := newSampleWorkload(t, seed)
	oracleEng, err := crsky.NewEngine(w.ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	alpha := w.alphas[0]
	oracle := make(map[string][]int, len(w.qs))
	for _, q := range w.qs {
		oracle[fmt.Sprint([]float64(q))] = oracleEng.ProbabilisticReverseSkylineNaive(q, alpha)
	}
	// A non-answer for the explain traffic.
	an := -1
	inAns := map[int]bool{}
	for _, id := range oracle[fmt.Sprint([]float64(w.qs[0]))] {
		inAns[id] = true
	}
	for id := 0; id < w.ds.Len(); id++ {
		if !inAns[id] {
			an = id
			break
		}
	}

	in := faultinject.New(faultinject.Config{
		Seed:         seed,
		SlotDelayP:   0.30,
		SlotDelayMax: 2 * time.Millisecond,
		ErrP:         0.12,
		PanicP:       0.04,
	})
	srv := server.New(server.Config{
		Workers: 2, ApproxWorkers: 1, MaxQueue: 3, CacheSize: 64,
		Faults:     in,
		WrapEngine: func(e crsky.Explainer) crsky.Explainer { return faultinject.Wrap(e, in) },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Register over HTTP like any client.
	specs := make([]server.ObjectSpec, w.ds.Len())
	for i, o := range w.ds.Objects {
		ss := make([]server.SampleSpec, len(o.Samples))
		for j, s := range o.Samples {
			ss[j] = server.SampleSpec{P: s.P, Loc: s.Loc}
		}
		specs[i] = server.ObjectSpec{Samples: ss}
	}
	resp, raw, err := chaosPost(ts, context.Background(), "/v1/datasets",
		&server.DatasetRequest{Name: "chaos", Model: server.ModelSample, Objects: specs}, false)
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v status=%v body=%s", err, resp, raw)
	}

	var st chaosStats
	var wg sync.WaitGroup
	const clients, perClient = 8, 24
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*1000))
			for i := 0; i < perClient; i++ {
				q := w.qs[rng.Intn(len(w.qs))]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Float64() < 0.15 {
					// Client gives up almost immediately.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(4))*time.Millisecond)
				}
				kind := rng.Intn(10)
				var (
					resp *http.Response
					body []byte
					err  error
				)
				switch {
				case kind < 5: // v1 query, all approx modes
					mode := []string{"", "never", "auto", "always"}[rng.Intn(4)]
					resp, body, err = chaosPost(ts, ctx, "/v1/query", &server.QueryRequest{
						Dataset: "chaos", Q: q, Alpha: alpha,
						NoCache: rng.Intn(2) == 0, Approx: mode,
					}, false)
				case kind < 8: // v2 batch, sometimes consumed slowly
					resp, body, err = chaosPost(ts, ctx, "/v2/query", &server.BatchQueryRequest{
						Dataset: "chaos", Qs: [][]float64{w.qs[0], w.qs[1]}, Alpha: alpha,
						NoCache: rng.Intn(2) == 0,
					}, rng.Intn(2) == 0)
				default: // v1 explain of a known non-answer
					resp, body, err = chaosPost(ts, ctx, "/v1/explain", &server.ExplainRequest{
						Dataset: "chaos", Q: w.qs[0], An: an, Alpha: alpha,
						Options: server.OptionsSpec{MaxCandidates: 48},
						NoCache: rng.Intn(2) == 0,
					}, false)
				}
				cancel()
				if err != nil {
					// The only allowed transport failure is the cancellation
					// this client itself caused.
					if ctx.Err() == nil {
						t.Errorf("client %d req %d: transport error without client cancel: %v", g, i, err)
						return
					}
					st.canceled.Add(1)
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					st.ok.Add(1)
					if resp.Request.URL.Path == "/v1/query" {
						var qr server.QueryResponse
						if err := json.Unmarshal(body, &qr); err != nil {
							t.Errorf("bad 200 body: %v (%s)", err, body)
							return
						}
						if qr.Approx {
							st.approx.Add(1)
							for _, iv := range qr.Intervals {
								if !(0 <= iv.Lo && iv.Lo <= iv.Pr && iv.Pr <= iv.Hi && iv.Hi <= 1) {
									t.Errorf("malformed interval %+v", iv)
									return
								}
							}
						} else if want := oracle[fmt.Sprint([]float64(q))]; !equalIDs(qr.Answers, want) {
							t.Errorf("chaos corrupted an exact answer: q=%v got %v want %v", q, qr.Answers, want)
							return
						}
					}
				case resp.StatusCode == http.StatusServiceUnavailable:
					st.shed.Add(1)
					ra := resp.Header.Get("Retry-After")
					if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
						t.Errorf("503 with Retry-After %q, want integer >= 1", ra)
						return
					}
				case resp.StatusCode == http.StatusInternalServerError:
					st.injected.Add(1)
					var e server.ErrorResponse
					if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
						t.Errorf("malformed 500 body %s", body)
						return
					}
				case resp.StatusCode >= 400 && resp.StatusCode < 500:
					// Explain may legitimately reject (e.g. candidate budget);
					// the envelope must still be well-formed.
					st.clientErr.Add(1)
					var e server.ErrorResponse
					if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
						t.Errorf("malformed %d body %s", resp.StatusCode, body)
						return
					}
				default:
					t.Errorf("unexpected status %d (body %s)", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// No slot leaks, no deadlock: both pools fully drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sr server.StatsResponse
		resp, raw, err := chaosGet(ts, "/v1/stats")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %v %v", err, resp)
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Pool.InFlight == 0 && sr.Pool.QueueDepth == 0 &&
			sr.ApproxPool.InFlight == 0 && sr.ApproxPool.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pools did not drain after chaos: %+v / %+v", sr.Pool, sr.ApproxPool)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 500s are only acceptable if the injector actually fired.
	counts := in.Counts()
	if st.injected.Load() > 0 && counts.Errors+counts.Panics == 0 {
		t.Fatalf("saw %d 500s but the injector never fired", st.injected.Load())
	}
	t.Logf("chaos: ok=%d approx=%d shed=%d injected5xx=%d clientErr=%d canceled=%d faults=%+v",
		st.ok.Load(), st.approx.Load(), st.shed.Load(), st.injected.Load(),
		st.clientErr.Load(), st.canceled.Load(), counts)

	// The server still answers exactly after the storm (retrying past the
	// injector's ongoing faults).
	want := oracle[fmt.Sprint([]float64(w.qs[0]))]
	for attempt := 0; ; attempt++ {
		resp, body, err := chaosPost(ts, context.Background(), "/v1/query", &server.QueryRequest{
			Dataset: "chaos", Q: w.qs[0], Alpha: alpha, NoCache: true}, false)
		if err == nil && resp.StatusCode == http.StatusOK {
			var qr server.QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatal(err)
			}
			if !equalIDs(qr.Answers, want) {
				t.Fatalf("post-chaos answer %v, want %v", qr.Answers, want)
			}
			break
		}
		if attempt > 50 {
			t.Fatalf("no successful query in 50 post-chaos attempts (last: %v %v %s)", err, resp, body)
		}
	}
}

func chaosGet(ts *httptest.Server, path string) (*http.Response, []byte, error) {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}
