package conformance

import (
	"math/rand"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// scalePoint returns p with every coordinate multiplied by f. Powers of two
// scale IEEE floats exactly, so with f = 4 every dominance comparison and
// probability in the pipeline reproduces bit-for-bit.
func scalePoint(p geom.Point, f float64) geom.Point {
	out := make(geom.Point, len(p))
	for i, v := range p {
		out[i] = v * f
	}
	return out
}

func scaleObject(o *uncertain.Object, f float64) *uncertain.Object {
	samples := make([]uncertain.Sample, len(o.Samples))
	for i, s := range o.Samples {
		samples[i] = uncertain.Sample{Loc: scalePoint(s.Loc, f), P: s.P}
	}
	return uncertain.New(o.ID, samples)
}

// TestMetamorphicUniformScaling: scaling every coordinate and the query by a
// power of two must not change any engine's answer set.
func TestMetamorphicUniformScaling(t *testing.T) {
	const f = 4
	forEachCaseSeed(t, 11_000, 12, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		scaled := make([]*uncertain.Object, w.ds.Len())
		for i, o := range w.ds.Objects {
			scaled[i] = scaleObject(o, f)
		}
		sEng, err := crsky.NewEngine(scaled)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				want := eng.ProbabilisticReverseSkyline(q, alpha)
				got := sEng.ProbabilisticReverseSkyline(scalePoint(q, f), alpha)
				if !equalIDs(got, want) {
					t.Errorf("%v q=%v alpha=%g: scaled answers %v, original %v", w, q, alpha, got, want)
					return
				}
			}
		}
	})
}

// TestMetamorphicUniformScalingPDF is the continuous-model variant: regions,
// Gaussian parameters, and the query all scale together.
func TestMetamorphicUniformScalingPDF(t *testing.T) {
	const f = 4
	forEachCaseSeed(t, 12_000, 8, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := families[rng.Intn(len(families))](30+rng.Intn(40), 2, 10, 100+800*rng.Float64(), rng.Int63())
		kind := []uncertain.PDFKind{uncertain.Uniform, uncertain.Gaussian}[rng.Intn(2)]
		objs, err := dataset.GenerateUncertainPDF(cfg, kind)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		scaled := make([]*uncertain.PDFObject, len(objs))
		for i, o := range objs {
			s := &uncertain.PDFObject{
				ID:     o.ID,
				Region: geom.NewRect(scalePoint(o.Region.Min, f), scalePoint(o.Region.Max, f)),
				Kind:   o.Kind,
			}
			if o.Mean != nil {
				s.Mean = scalePoint(o.Mean, f)
			}
			if o.Sigma != nil {
				s.Sigma = scalePoint(o.Sigma, f)
			}
			scaled[i] = s
		}
		eng, err := crsky.NewPDFEngine(objs)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		sEng, err := crsky.NewPDFEngine(scaled)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := geom.Point{cfg.Domain * (0.2 + 0.6*rng.Float64()), cfg.Domain * (0.2 + 0.6*rng.Float64())}
		for _, alpha := range []float64{0.3, 0.8, 1} {
			want := eng.ProbabilisticReverseSkyline(q, alpha, 4)
			got := sEng.ProbabilisticReverseSkyline(scalePoint(q, f), alpha, 4)
			if !equalIDs(got, want) {
				t.Errorf("seed=%d kind=%v alpha=%g: scaled answers %v, original %v", seed, kind, alpha, got, want)
				return
			}
		}
	})
}

// TestMetamorphicPermutation: permuting insertion order (and relabeling IDs
// positionally) must map the answer set through the same permutation — the
// R-tree shape changes, the answers must not.
func TestMetamorphicPermutation(t *testing.T) {
	forEachCaseSeed(t, 13_000, 12, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		perm := rng.Perm(w.ds.Len()) // position i holds old object perm[i]
		permuted := make([]*uncertain.Object, w.ds.Len())
		newID := make([]int, w.ds.Len()) // old ID -> new ID
		for i, old := range perm {
			permuted[i] = uncertain.New(i, w.ds.Objects[old].Samples)
			newID[old] = i
		}
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		pEng, err := crsky.NewEngine(permuted)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				want := eng.ProbabilisticReverseSkyline(q, alpha)
				mapped := make([]int, len(want))
				for i, id := range want {
					mapped[i] = newID[id]
				}
				got := pEng.ProbabilisticReverseSkyline(q, alpha)
				if !equalIDs(got, sortedCopy(mapped)) {
					t.Errorf("%v q=%v alpha=%g: permuted answers %v, mapped original %v",
						w, q, alpha, got, sortedCopy(mapped))
					return
				}
			}
		}
	})
}

// TestMetamorphicDuplicateCertain: duplicating a reverse-skyline non-answer
// must not change the answer set, and the duplicate itself must be a
// non-answer. (Duplicating an answer is NOT invariant: the twin dynamically
// dominates q w.r.t. its original, expelling both — so the harness picks
// non-answers.)
func TestMetamorphicDuplicateCertain(t *testing.T) {
	forEachCaseSeed(t, 14_000, 12, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.CertainConfig{
			N:    30 + rng.Intn(120),
			Dims: 2 + rng.Intn(2),
			Kind: dataset.CertainKind(rng.Intn(4)),
			Seed: rng.Int63(),
		}
		ds, err := dataset.GenerateCertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		eng, err := crsky.NewCertainEngine(ds.Points)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := make(geom.Point, cfg.Dims)
		for j := range q {
			q[j] = 10000 * (0.2 + 0.6*rng.Float64())
		}
		want := sortedCopy(eng.ReverseSkyline(q))
		inAnswer := make(map[int]bool, len(want))
		for _, id := range want {
			inAnswer[id] = true
		}
		nonAnswer := -1
		for i := range ds.Points {
			if !inAnswer[i] {
				nonAnswer = i
				break
			}
		}
		if nonAnswer < 0 {
			return // every point answers; nothing to duplicate soundly
		}
		dup := append(append([]geom.Point{}, ds.Points...), ds.Points[nonAnswer].Clone())
		dEng, err := crsky.NewCertainEngine(dup)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		got := sortedCopy(dEng.ReverseSkyline(q))
		if !equalIDs(got, want) {
			t.Errorf("seed=%d q=%v: duplicating non-answer %d changed answers: %v -> %v",
				seed, q, nonAnswer, want, got)
			return
		}
		if dEng.IsReverseSkylinePoint(len(dup)-1, q) {
			t.Errorf("seed=%d q=%v: duplicate of non-answer %d became an answer", seed, q, nonAnswer)
		}
	})
}

// TestMetamorphicDuplicateSample pins the probabilistic duplication laws:
// adding a duplicate multiplies every other object's Eq.-2 terms by extra
// factors ≤ 1, so the answer set restricted to the original objects may
// only shrink, and the twin's membership must equal its original's (their
// probabilities are symmetric).
func TestMetamorphicDuplicateSample(t *testing.T) {
	forEachCaseSeed(t, 15_000, 12, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		rng := rand.New(rand.NewSource(seed ^ 0xd0b))
		dupOf := rng.Intn(w.ds.Len())
		objs := make([]*uncertain.Object, 0, w.ds.Len()+1)
		objs = append(objs, w.ds.Objects...)
		objs = append(objs, uncertain.New(w.ds.Len(), w.ds.Objects[dupOf].Samples))
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		dEng, err := crsky.NewEngine(objs)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		twin := w.ds.Len()
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				before := eng.ProbabilisticReverseSkyline(q, alpha)
				after := dEng.ProbabilisticReverseSkyline(q, alpha)
				inBefore := make(map[int]bool, len(before))
				for _, id := range before {
					inBefore[id] = true
				}
				twinIn, origIn := false, false
				for _, id := range after {
					if id == twin {
						twinIn = true
						continue
					}
					if id == dupOf {
						origIn = true
					}
					if !inBefore[id] {
						t.Errorf("%v q=%v alpha=%g: duplicate of %d promoted %d into the answers",
							w, q, alpha, dupOf, id)
						return
					}
				}
				if twinIn != origIn {
					t.Errorf("%v q=%v alpha=%g: twin membership %v, original %v",
						w, q, alpha, twinIn, origIn)
					return
				}
			}
		}
	})
}
