package conformance

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/server"
	"github.com/crsky/crsky/internal/store"
)

// TestRecoveredServerConformance is the serving-level recovery oracle:
// datasets registered over HTTP into a store-backed server must, after a
// restart that rebuilds every engine from the durable payloads, produce
// byte-identical responses — and the recovered answers must still match
// the naive per-object oracle, so recovery cannot trade correctness for
// availability.
func TestRecoveredServerConformance(t *testing.T) {
	dir := t.TempDir()

	type probe struct {
		path string
		body []byte
	}
	var probes []probe
	want := make(map[int][]byte)

	post := func(ts *httptest.Server, path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	st1, _, err := store.Open(dir, store.Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(server.Config{Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())

	seeds := []int64{11, 12, 13}
	workloads := make(map[int64]*sampleWorkload)
	for _, seed := range seeds {
		w := newSampleWorkload(t, seed)
		workloads[seed] = w
		name := string(rune('a' + seed%26))
		specs := make([]server.ObjectSpec, w.ds.Len())
		for i, o := range w.ds.Objects {
			ss := make([]server.SampleSpec, len(o.Samples))
			for j, s := range o.Samples {
				ss[j] = server.SampleSpec{P: s.P, Loc: s.Loc}
			}
			specs[i] = server.ObjectSpec{Samples: ss}
		}
		reg, err := json.Marshal(&server.DatasetRequest{Name: name, Model: server.ModelSample, Objects: specs})
		if err != nil {
			t.Fatal(err)
		}
		if status, raw := post(ts1, "/v1/datasets", reg); status != http.StatusCreated {
			t.Fatalf("register seed %d: %d (%s)", seed, status, raw)
		}
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				body, err := json.Marshal(&server.QueryRequest{Dataset: name, Q: q, Alpha: alpha, NoCache: true})
				if err != nil {
					t.Fatal(err)
				}
				probes = append(probes, probe{path: "/v1/query", body: body})
			}
		}
		// One explanation probe per workload: whatever response it gets
		// (success or a semantic 422) must reproduce identically.
		eb, err := json.Marshal(&server.ExplainRequest{Dataset: name, Q: w.qs[0], An: 0, Alpha: w.alphas[0],
			Options: server.OptionsSpec{MaxCandidates: 24, MaxSubsets: 20000}, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{path: "/v1/explain", body: eb})
	}
	wantStatus := make(map[int]int)
	for i, p := range probes {
		status, raw := post(ts1, p.path, p.body)
		wantStatus[i], want[i] = status, raw
	}
	ts1.Close()
	st1.Close()

	// Restart: recover the store, rebuild every engine, replay the probes.
	st2, rep, err := store.Open(dir, store.Options{Fsync: false})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st2.Close()
	if len(rep.Quarantined) != 0 {
		t.Fatalf("clean shutdown should recover clean, quarantined %+v", rep.Quarantined)
	}
	srv2 := server.New(server.Config{Store: st2})
	if loaded, quarantined, err := srv2.LoadFromStore(); err != nil || loaded != len(seeds) || len(quarantined) != 0 {
		t.Fatalf("LoadFromStore: loaded=%d quarantined=%v err=%v", loaded, quarantined, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	for i, p := range probes {
		status, raw := post(ts2, p.path, p.body)
		if status != wantStatus[i] || !bytes.Equal(raw, want[i]) {
			t.Fatalf("probe %d %s drifted after recovery:\n  before: %d %s\n  after:  %d %s",
				i, p.path, wantStatus[i], want[i], status, raw)
		}
	}

	// Independent oracle: the recovered answers equal the naive
	// per-object computation over the original objects.
	for _, seed := range seeds {
		w := workloads[seed]
		name := string(rune('a' + seed%26))
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range w.alphas {
			body, err := json.Marshal(&server.QueryRequest{Dataset: name, Q: w.qs[0], Alpha: alpha, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			status, raw := post(ts2, "/v1/query", body)
			if status != http.StatusOK {
				t.Fatalf("seed %d oracle query: %d (%s)", seed, status, raw)
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatal(err)
			}
			if naive := eng.ProbabilisticReverseSkylineNaive(w.qs[0], alpha); !equalIDs(qr.Answers, naive) {
				t.Fatalf("seed %d alpha %g: recovered server answers %v, oracle %v", seed, alpha, qr.Answers, naive)
			}
		}
	}
}
