package conformance

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// This file closes the v2 semantics matrix for VerifyCtx and RepairCtx:
// every model behind crsky.Explainer — sample, certain, AND pdf — must
// (a) verify its own explanations, (b) reject a tampered one, and
// (c) produce repairs whose removal set provably flips the non-answer
// into the answer set under that model's own probability oracle. There
// are deliberately zero per-model carve-outs here; a model that cannot
// pass is a bug, not a documented limitation.

// tamperedCopy returns res with the first cause's responsibility broken,
// leaving the original untouched. The Definition-1 audit checks the
// responsibility formula 1/(1+|Γ|) to 1e-9, so halving it (plus an offset
// in case it was 0) must fail verification under every model.
func tamperedCopy(res *causality.Result) *causality.Result {
	bad := *res
	bad.Causes = append([]causality.Cause(nil), res.Causes...)
	bad.Causes[0].Responsibility = bad.Causes[0].Responsibility/2 + 0.001
	return &bad
}

// TestConformanceVerifyRepairSample runs the matrix on the discrete-sample
// engine: ExplainCtx → VerifyCtx passes, tampering fails, and RepairCtx's
// removal set lifts Pr(an) to α under the exact sample-space oracle.
func TestConformanceVerifyRepairSample(t *testing.T) {
	forEachCaseSeed(t, 45_000, 10, func(t *testing.T, seed int64) {
		ds, q, alpha := explainWorkload(t, seed)
		eng, err := crsky.NewEngine(ds.Objects)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		ctx := context.Background()
		checked := 0
		for an := 0; an < ds.Len() && checked < 2; an++ {
			res, err := eng.ExplainCtx(ctx, an, q, alpha, crsky.Options{})
			if errors.Is(err, crsky.ErrNotNonAnswer) {
				continue
			}
			if err != nil {
				t.Errorf("seed=%d an=%d: explain: %v", seed, an, err)
				return
			}
			checked++
			if err := eng.VerifyCtx(ctx, q, alpha, res); err != nil {
				t.Errorf("seed=%d an=%d: verify rejected a fresh explanation: %v", seed, an, err)
				return
			}
			if len(res.Causes) > 0 {
				if eng.VerifyCtx(ctx, q, alpha, tamperedCopy(res)) == nil {
					t.Errorf("seed=%d an=%d: tampered explanation verified", seed, an)
					return
				}
			}

			rep, err := eng.RepairCtx(ctx, an, q, alpha, crsky.Options{})
			if err != nil {
				t.Errorf("seed=%d an=%d: repair: %v", seed, an, err)
				return
			}
			drop := map[int]bool{}
			for _, id := range rep.Removed {
				drop[id] = true
			}
			kept := make([]*uncertain.Object, 0, ds.Len())
			for _, o := range ds.Objects {
				if !drop[o.ID] {
					kept = append(kept, o)
				}
			}
			pr := prob.PrReverseSkyline(ds.Objects[an], q, kept)
			if !prob.GEq(pr, alpha) {
				t.Errorf("seed=%d an=%d: removing %v leaves Pr=%v < α=%v",
					seed, an, rep.Removed, pr, alpha)
				return
			}
			if math.Abs(pr-rep.NewPr) > 1e-9 {
				t.Errorf("seed=%d an=%d: NewPr=%v, oracle recomputes %v", seed, an, rep.NewPr, pr)
				return
			}
		}
	})
}

// TestConformanceVerifyRepairCertain runs the matrix on the certain-data
// engine (Section-4 reduction): the repair flip is re-checked through live
// index deletes rather than a probability oracle.
func TestConformanceVerifyRepairCertain(t *testing.T) {
	forEachCaseSeed(t, 46_000, 10, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.CertainConfig{
			N:    25 + rng.Intn(75),
			Dims: 2 + rng.Intn(2),
			Kind: dataset.CertainKind(rng.Intn(4)),
			Seed: rng.Int63(),
		}
		ds, err := dataset.GenerateCertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := make(geom.Point, cfg.Dims)
		for j := range q {
			q[j] = 10000 * (0.2 + 0.6*rng.Float64())
		}
		fresh := func() *crsky.CertainEngine {
			pts := make([]geom.Point, len(ds.Points))
			for i, p := range ds.Points {
				pts[i] = p.Clone()
			}
			e, err := crsky.NewCertainEngine(pts)
			if err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			return e
		}
		ctx := context.Background()
		eng := fresh()
		an := -1
		for i := range ds.Points {
			if !eng.IsReverseSkylinePoint(i, q) {
				an = i
				break
			}
		}
		if an < 0 {
			return
		}
		res, err := eng.ExplainCtx(ctx, an, q, 1, crsky.Options{})
		if err != nil {
			t.Errorf("seed=%d an=%d: explain: %v", seed, an, err)
			return
		}
		if err := eng.VerifyCtx(ctx, q, 1, res); err != nil {
			t.Errorf("seed=%d an=%d: verify rejected a fresh explanation: %v", seed, an, err)
			return
		}
		if len(res.Causes) > 0 {
			if eng.VerifyCtx(ctx, q, 1, tamperedCopy(res)) == nil {
				t.Errorf("seed=%d an=%d: tampered explanation verified", seed, an)
				return
			}
		}
		rep, err := eng.RepairCtx(ctx, an, q, 1, crsky.Options{})
		if err != nil {
			t.Errorf("seed=%d an=%d: repair: %v", seed, an, err)
			return
		}
		live := fresh()
		for _, id := range rep.Removed {
			if err := live.Delete(id); err != nil {
				t.Errorf("seed=%d: delete %d: %v", seed, id, err)
				return
			}
		}
		if !live.IsReverseSkylinePoint(an, q) {
			t.Errorf("seed=%d an=%d: removing %v did not flip the non-answer", seed, an, rep.Removed)
			return
		}
		if rep.NewPr != 1 {
			t.Errorf("seed=%d an=%d: certain repair NewPr=%v, want 1", seed, an, rep.NewPr)
		}
	})
}

// TestConformanceVerifyRepairPDF runs the matrix on the continuous model —
// the half the API used to carve out. ExplainCtx must record the quadrature
// resolution it ran at, VerifyCtx must re-integrate and pass at that
// resolution, and RepairCtx's removal set must flip the non-answer under
// the cubature oracle at the same resolution.
func TestConformanceVerifyRepairPDF(t *testing.T) {
	forEachCaseSeed(t, 47_000, 8, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dims := 2 + rng.Intn(2)
		n := 8 + rng.Intn(10)
		rmax := 80 + 400*rng.Float64()
		cfg := families[rng.Intn(len(families))](n, dims, 10, rmax, rng.Int63())
		quad := 3 + rng.Intn(3)
		alpha := 0.3 + 0.5*rng.Float64()
		objs, err := dataset.GenerateUncertainPDF(cfg, uncertain.Uniform)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		eng, err := crsky.NewPDFEngine(objs)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := make(geom.Point, dims)
		for j := range q {
			q[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
		}
		ctx := context.Background()
		opts := crsky.Options{QuadNodes: quad}
		checked := 0
		for an := 0; an < eng.Len() && checked < 2; an++ {
			res, err := eng.ExplainCtx(ctx, an, q, alpha, opts)
			if errors.Is(err, crsky.ErrNotNonAnswer) {
				continue
			}
			if err != nil {
				t.Errorf("seed=%d an=%d: explain: %v", seed, an, err)
				return
			}
			checked++
			if res.QuadNodes != quad {
				t.Errorf("seed=%d an=%d: result records QuadNodes=%d, ran at %d",
					seed, an, res.QuadNodes, quad)
				return
			}
			if err := eng.VerifyCtx(ctx, q, alpha, res); err != nil {
				t.Errorf("seed=%d an=%d: verify rejected a fresh pdf explanation: %v", seed, an, err)
				return
			}
			if len(res.Causes) > 0 {
				if eng.VerifyCtx(ctx, q, alpha, tamperedCopy(res)) == nil {
					t.Errorf("seed=%d an=%d: tampered pdf explanation verified", seed, an)
					return
				}
			}

			rep, err := eng.RepairCtx(ctx, an, q, alpha, opts)
			if err != nil {
				t.Errorf("seed=%d an=%d: repair: %v", seed, an, err)
				return
			}
			drop := map[int]bool{}
			for _, id := range rep.Removed {
				drop[id] = true
			}
			kept := make([]*uncertain.PDFObject, 0, len(objs))
			for _, o := range objs {
				if !drop[o.ID] {
					kept = append(kept, o)
				}
			}
			pr := prob.PrReverseSkylinePDF(objs[an], q, kept, quad)
			if !prob.GEq(pr, alpha) {
				t.Errorf("seed=%d an=%d: removing %v leaves Pr=%v < α=%v",
					seed, an, rep.Removed, pr, alpha)
				return
			}
			if math.Abs(pr-rep.NewPr) > 1e-9 {
				t.Errorf("seed=%d an=%d: NewPr=%v, cubature oracle recomputes %v",
					seed, an, rep.NewPr, pr)
				return
			}
		}
	})
}
