package conformance

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/server"
	"github.com/crsky/crsky/internal/uncertain"
	"github.com/crsky/crsky/internal/watch"
)

// rebuildWithout builds a fresh engine over objs minus the given IDs and
// returns it with the old->new ID mapping (-1 = removed).
func rebuildWithout(t *testing.T, objs []*uncertain.Object, drop map[int]bool) (*crsky.Engine, []int) {
	t.Helper()
	newID := make([]int, len(objs))
	kept := make([]*uncertain.Object, 0, len(objs))
	for i, o := range objs {
		if drop[i] {
			newID[i] = -1
			continue
		}
		newID[i] = len(kept)
		kept = append(kept, uncertain.New(len(kept), o.Samples))
	}
	eng, err := crsky.NewEngine(kept)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return eng, newID
}

func contains(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestCausalityDeleteCauseFlipsSample closes the loop between the causality
// oracle and the query engines: for every actual cause (p, Γ) of a
// non-answer reported by the brute Definition-1 oracle, deleting Γ must
// leave the object a non-answer of the accelerated query, and additionally
// deleting p must flip it into the answer set.
func TestCausalityDeleteCauseFlipsSample(t *testing.T) {
	forEachCaseSeed(t, 21_000, 12, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.LUrU(7, 2, 0, 2500+2500*rng.Float64(), rng.Int63())
		cfg.Samples = 1 + rng.Intn(3)
		cfg.Domain = 1000
		ds, err := dataset.GenerateUncertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := geom.Point{1000 * rng.Float64(), 1000 * rng.Float64()}
		alpha := 0.4 + 0.6*rng.Float64()

		eng, err := crsky.NewEngine(ds.Objects)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		answers := eng.ProbabilisticReverseSkyline(q, alpha)
		checked := 0
		for an := 0; an < ds.Len() && checked < 2; an++ {
			if contains(answers, an) {
				continue
			}
			causes := causality.BruteCausesUncertain(ds.Objects, q, an, alpha)
			if len(causes) == 0 {
				continue
			}
			checked++
			for ci, c := range causes {
				if ci >= 3 {
					break
				}
				drop := map[int]bool{}
				for _, id := range c.Contingency {
					drop[id] = true
				}
				gammaEng, newID := rebuildWithout(t, ds.Objects, drop)
				if contains(gammaEng.ProbabilisticReverseSkyline(q, alpha), newID[an]) {
					t.Errorf("seed=%d an=%d cause=%d Γ=%v: removing the contingency alone already flipped the non-answer",
						seed, an, c.ID, c.Contingency)
					return
				}
				drop[c.ID] = true
				flipEng, newID := rebuildWithout(t, ds.Objects, drop)
				if !contains(flipEng.ProbabilisticReverseSkyline(q, alpha), newID[an]) {
					t.Errorf("seed=%d an=%d cause=%d Γ=%v: removing cause+contingency did not flip the non-answer",
						seed, an, c.ID, c.Contingency)
					return
				}
			}
		}
	})
}

// TestCausalityLiveFlipThroughWatch drives the delete-cause flip oracle
// through the live serving path: register the dataset over HTTP, open a
// /v2/watch subscription on a non-answer, delete the reported cause's
// contingency and then the cause itself via the mutation API, and assert
// the stream delivers exactly one terminal "flipped" event — whose answer
// the naive oracle confirms on the post-delete dataset.
func TestCausalityLiveFlipThroughWatch(t *testing.T) {
	forEachCaseSeed(t, 24_000, 6, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.LUrU(7, 2, 0, 2500+2500*rng.Float64(), rng.Int63())
		cfg.Samples = 1 + rng.Intn(3)
		cfg.Domain = 1000
		ds, err := dataset.GenerateUncertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := geom.Point{1000 * rng.Float64(), 1000 * rng.Float64()}
		alpha := 0.4 + 0.6*rng.Float64()

		eng, err := crsky.NewEngine(ds.Objects)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		answers := eng.ProbabilisticReverseSkyline(q, alpha)

		// Pick the first non-answer with at least one brute-oracle cause.
		an, cause := -1, causality.Cause{}
		for i := 0; i < ds.Len() && an < 0; i++ {
			if contains(answers, i) {
				continue
			}
			if causes := causality.BruteCausesUncertain(ds.Objects, q, i, alpha); len(causes) > 0 {
				an, cause = i, causes[0]
			}
		}
		if an < 0 {
			return // no explainable non-answer in this draw; next seed
		}

		srv := server.New(server.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		specs := make([]server.ObjectSpec, ds.Len())
		for i, o := range ds.Objects {
			ss := make([]server.SampleSpec, len(o.Samples))
			for j, s := range o.Samples {
				ss[j] = server.SampleSpec{P: s.P, Loc: s.Loc}
			}
			specs[i] = server.ObjectSpec{Samples: ss}
		}
		postJSON(t, ts, "/v1/datasets", &server.DatasetRequest{
			Name: "live", Model: server.ModelSample, Objects: specs,
		}, http.StatusCreated)

		wreq, _ := json.Marshal(&server.WatchRequest{Dataset: "live", Q: q, An: an, Alpha: alpha})
		resp, err := ts.Client().Post(ts.URL+"/v2/watch", "application/json", bytes.NewReader(wreq))
		if err != nil {
			t.Fatalf("seed=%d: watch: %v", seed, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed=%d: watch status %d", seed, resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		if ev := nextWatchEvent(t, sc); ev.Event != watch.KindRegistered {
			t.Fatalf("seed=%d: first line %+v, want registered", seed, ev)
		}

		// Contingency first: by monotonicity no prefix of Γ can flip an, so
		// the stream must stay silent until the cause itself goes.
		var lastGen uint64
		for _, id := range append(append([]int(nil), cause.Contingency...), cause.ID) {
			var mr server.MutationResponse
			deleteObject(t, ts, "/v2/datasets/live/objects/"+strconv.Itoa(id), &mr)
			lastGen = mr.Generation
		}

		ev := nextWatchEvent(t, sc)
		if ev.Event != watch.KindFlipped || !ev.Answer || ev.An != an {
			t.Fatalf("seed=%d an=%d cause=%d Γ=%v: event %+v, want flipped",
				seed, an, cause.ID, cause.Contingency, ev)
		}
		if ev.Generation < lastGen {
			t.Fatalf("seed=%d: flip at generation %d, final delete installed %d",
				seed, ev.Generation, lastGen)
		}
		// Terminal: exactly one flipped event, then EOF.
		if sc.Scan() {
			t.Fatalf("seed=%d: unexpected event after terminal flip: %q", seed, sc.Text())
		}

		// The naive oracle on the post-delete dataset must agree the flip is
		// real.
		drop := map[int]bool{cause.ID: true}
		for _, id := range cause.Contingency {
			drop[id] = true
		}
		flipEng, newID := rebuildWithout(t, ds.Objects, drop)
		if !contains(flipEng.ProbabilisticReverseSkyline(q, alpha), newID[an]) {
			t.Fatalf("seed=%d an=%d cause=%d Γ=%v: watch flipped but the oracle disagrees",
				seed, an, cause.ID, cause.Contingency)
		}
	})
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, wantStatus int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d (%s)", path, resp.StatusCode, wantStatus, msg)
	}
}

func deleteObject(t *testing.T, ts *httptest.Server, path string, out *server.MutationResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: status %d (%s)", path, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("DELETE %s: bad ack %s: %v", path, raw, err)
	}
}

func nextWatchEvent(t *testing.T, sc *bufio.Scanner) watch.Event {
	t.Helper()
	done := make(chan struct{})
	var ev watch.Event
	go func() {
		defer close(done)
		if !sc.Scan() {
			t.Errorf("watch stream ended: %v", sc.Err())
			return
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Errorf("bad watch line %q: %v", sc.Text(), err)
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for a watch event")
	}
	return ev
}

// TestCausalityDeleteCauseFlipsPDF is the continuous-model version: for
// every cause (p, Γ) the pdf-variant CP reports, the cubature oracle at the
// explanation's own quadrature resolution must show Pr(an | P−Γ) still
// below α and Pr(an | P−Γ−{p}) at or above it. The explanation is also run
// through VerifyCtx, which performs the same audit inside the engine — the
// carve-out this suite used to have for the pdf model is gone.
func TestCausalityDeleteCauseFlipsPDF(t *testing.T) {
	forEachCaseSeed(t, 23_000, 10, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.LUrU(7, 2, 10, 150+350*rng.Float64(), rng.Int63())
		objs, err := dataset.GenerateUncertainPDF(cfg, uncertain.Uniform)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		eng, err := crsky.NewPDFEngine(objs)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := geom.Point{cfg.Domain * (0.2 + 0.6*rng.Float64()), cfg.Domain * (0.2 + 0.6*rng.Float64())}
		alpha := 0.4 + 0.5*rng.Float64()
		quad := 4

		prWithout := func(an int, drop map[int]bool) float64 {
			kept := make([]*uncertain.PDFObject, 0, len(objs))
			for _, o := range objs {
				if !drop[o.ID] {
					kept = append(kept, o)
				}
			}
			return prob.PrReverseSkylinePDF(objs[an], q, kept, quad)
		}

		answers := eng.ProbabilisticReverseSkylineNaive(q, alpha, quad)
		checked := 0
		for an := 0; an < eng.Len() && checked < 2; an++ {
			if contains(answers, an) {
				continue
			}
			res, err := eng.Explain(an, q, alpha, crsky.Options{QuadNodes: quad})
			if err != nil || len(res.Causes) == 0 {
				if err != nil {
					t.Errorf("seed=%d an=%d: %v", seed, an, err)
					return
				}
				continue
			}
			checked++
			if err := eng.VerifyCtx(context.Background(), q, alpha, res); err != nil {
				t.Errorf("seed=%d an=%d: verify: %v", seed, an, err)
				return
			}
			for ci, c := range res.Causes {
				if ci >= 3 {
					break
				}
				drop := map[int]bool{}
				for _, id := range c.Contingency {
					drop[id] = true
				}
				if prob.GEq(prWithout(an, drop), alpha) {
					t.Errorf("seed=%d an=%d cause=%d Γ=%v: removing the contingency alone already flipped the non-answer",
						seed, an, c.ID, c.Contingency)
					return
				}
				drop[c.ID] = true
				if !prob.GEq(prWithout(an, drop), alpha) {
					t.Errorf("seed=%d an=%d cause=%d Γ=%v: removing cause+contingency did not flip the non-answer",
						seed, an, c.ID, c.Contingency)
					return
				}
			}
		}
	})
}

// TestCausalityDeleteCauseFlipsCertain is the certain-data version driven by
// algorithm CR and the engine's dynamic deletes: removing a reported cause
// plus its contingency set from the live index flips the non-answer.
func TestCausalityDeleteCauseFlipsCertain(t *testing.T) {
	forEachCaseSeed(t, 22_000, 12, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.CertainConfig{
			N:    25 + rng.Intn(75),
			Dims: 2 + rng.Intn(2),
			Kind: dataset.CertainKind(rng.Intn(4)),
			Seed: rng.Int63(),
		}
		ds, err := dataset.GenerateCertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		q := make(geom.Point, cfg.Dims)
		for j := range q {
			q[j] = 10000 * (0.2 + 0.6*rng.Float64())
		}

		// Delete tombstones in place through the shared point slice, so
		// every engine gets its own deep copy of the dataset.
		fresh := func() *crsky.CertainEngine {
			pts := make([]geom.Point, len(ds.Points))
			for i, p := range ds.Points {
				pts[i] = p.Clone()
			}
			e, err := crsky.NewCertainEngine(pts)
			if err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			return e
		}
		eng := fresh()
		an := -1
		for i := range ds.Points {
			if !eng.IsReverseSkylinePoint(i, q) {
				an = i
				break
			}
		}
		if an < 0 {
			return
		}
		res, err := eng.Explain(an, q)
		if err != nil || len(res.Causes) == 0 {
			if err != nil {
				t.Errorf("seed=%d an=%d: %v", seed, an, err)
			}
			return
		}
		for ci, c := range res.Causes {
			if ci >= 3 {
				break
			}
			live := fresh()
			for _, id := range c.Contingency {
				if err := live.Delete(id); err != nil {
					t.Errorf("seed=%d: delete %d: %v", seed, id, err)
					return
				}
			}
			if live.IsReverseSkylinePoint(an, q) {
				t.Errorf("seed=%d an=%d cause=%d Γ=%v: contingency alone flipped the non-answer",
					seed, an, c.ID, c.Contingency)
				return
			}
			if err := live.Delete(c.ID); err != nil {
				t.Errorf("seed=%d: delete %d: %v", seed, c.ID, err)
				return
			}
			if !live.IsReverseSkylinePoint(an, q) {
				t.Errorf("seed=%d an=%d cause=%d Γ=%v: cause+contingency did not flip the non-answer",
					seed, an, c.ID, c.Contingency)
				return
			}
		}
	})
}
