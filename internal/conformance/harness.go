// Package conformance is the cross-engine correctness harness: randomized
// datasets across sizes, dimensionalities, correlation families, and
// thresholds, with every accelerated query configuration asserted
// set-identical to the naive per-object oracle. The causality machinery
// (Meliou et al.; Gao et al.) is only meaningful against exact query
// semantics, so every fast path — indexed join, parallel join, first- and
// second-tier bounds — must reproduce the oracle bit for bit; this package
// enforces that by construction rather than by review.
//
// Every randomized case derives deterministically from a single int64 case
// seed. On failure the harness prints that seed; replay it in isolation
// with
//
//	CRSKY_CONFORMANCE_SEED=<seed> go test ./internal/conformance/ -run <TestName>
//
// which skips every other case and re-runs the failing one verbatim.
package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
)

// ReplaySeedEnv selects a single case seed for replay (see package doc).
const ReplaySeedEnv = "CRSKY_CONFORMANCE_SEED"

// Variant is one accelerated query configuration under test. The list
// covers the full option cross: serial and parallel join/evaluation, second
// tier on and off, and the bound-free ablation.
type Variant struct {
	Name string
	Opt  crsky.QueryOptions
}

// Variants enumerates every accelerated configuration the harness compares
// against the oracle.
func Variants() []Variant {
	return []Variant{
		{"serial", crsky.QueryOptions{Parallel: 1}},
		{"parallel", crsky.QueryOptions{Parallel: 4}},
		{"serial-notier2", crsky.QueryOptions{Parallel: 1, NoTier2: true}},
		{"parallel-notier2", crsky.QueryOptions{Parallel: 4, NoTier2: true}},
		{"nobounds", crsky.QueryOptions{Parallel: 1, NoBounds: true}},
	}
}

// forEachCaseSeed drives the harness: n deterministic case seeds derived
// from base, or exactly the one seed given in CRSKY_CONFORMANCE_SEED.
func forEachCaseSeed(t *testing.T, base int64, n int, run func(t *testing.T, seed int64)) {
	t.Helper()
	if v := os.Getenv(ReplaySeedEnv); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("%s=%q: %v", ReplaySeedEnv, v, err)
		}
		t.Logf("replaying single case seed %d", seed)
		run(t, seed)
		return
	}
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		run(t, seed)
		if t.Failed() {
			t.Fatalf("replay: %s=%d go test ./internal/conformance/ -run %s", ReplaySeedEnv, seed, t.Name())
		}
	}
}

// sampleWorkload is one randomized discrete-sample dataset with query
// points and thresholds, fully determined by its seed.
type sampleWorkload struct {
	seed   int64
	cfg    dataset.UncertainConfig
	ds     *dataset.Uncertain
	qs     []geom.Point
	alphas []float64
}

var families = []func(n, dims int, rmin, rmax float64, seed int64) dataset.UncertainConfig{
	dataset.LUrU, dataset.LUrG, dataset.LSrU, dataset.LSrG,
}

func newSampleWorkload(t *testing.T, seed int64) *sampleWorkload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := 2 + rng.Intn(3)
	n := 30 + rng.Intn(100)
	// Radii large relative to the domain force overlapping dominance
	// neighbourhoods: populated candidate streams, partial overlaps for
	// the second tier, and a non-empty undecided band.
	rmax := 100 + 1400*rng.Float64()
	cfg := families[rng.Intn(len(families))](n, dims, 0, rmax, rng.Int63())
	cfg.Samples = 1 + rng.Intn(6)
	ds, err := dataset.GenerateUncertain(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	w := &sampleWorkload{seed: seed, cfg: cfg, ds: ds}
	for i := 0; i < 3; i++ {
		q := make(geom.Point, dims)
		for j := range q {
			q[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
		}
		w.qs = append(w.qs, q)
	}
	w.alphas = []float64{0.25 + 0.5*rng.Float64(), 0.9, 1}
	return w
}

func (w *sampleWorkload) String() string {
	return fmt.Sprintf("seed=%d n=%d dims=%d samples=%d centers=%v radii=%v rmax=%g",
		w.seed, w.cfg.N, w.cfg.Dims, w.cfg.Samples, w.cfg.Centers, w.cfg.Radii, w.cfg.RMax)
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedCopy returns ints ascending without mutating the input.
func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
