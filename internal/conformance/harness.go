// Package conformance is the cross-engine correctness harness: randomized
// datasets across sizes, dimensionalities, correlation families, and
// thresholds, with every accelerated query configuration asserted
// set-identical to the naive per-object oracle. The causality machinery
// (Meliou et al.; Gao et al.) is only meaningful against exact query
// semantics, so every fast path — indexed join, parallel join, first- and
// second-tier bounds — must reproduce the oracle bit for bit; this package
// enforces that by construction rather than by review.
//
// Every randomized case derives deterministically from a single int64 case
// seed. On failure the harness prints that seed; replay it in isolation
// with
//
//	CRSKY_CONFORMANCE_SEED=<seed> go test ./internal/conformance/ -run <TestName>
//
// which skips every other case and re-runs the failing one verbatim.
package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// ReplaySeedEnv selects a single case seed for replay (see package doc).
const ReplaySeedEnv = "CRSKY_CONFORMANCE_SEED"

// Variant is one accelerated query configuration under test. The list
// covers the full option cross: serial and parallel join/evaluation, second
// tier on and off, the bound-free ablation, and the incremental-maintenance
// build (same query options, different engine lineage).
type Variant struct {
	Name string
	Opt  crsky.QueryOptions
	// Incremental selects the engine rebuilt through the copy-on-write
	// mutation path (half the objects via WithInsert, plus a tombstone from
	// a decoy insert+delete) instead of the from-scratch build. Answers must
	// be identical: the mutation path is maintenance, not approximation.
	Incremental bool
}

// Variants enumerates every accelerated configuration the harness compares
// against the oracle.
func Variants() []Variant {
	return []Variant{
		{Name: "serial", Opt: crsky.QueryOptions{Parallel: 1}},
		{Name: "parallel", Opt: crsky.QueryOptions{Parallel: 4}},
		{Name: "serial-notier2", Opt: crsky.QueryOptions{Parallel: 1, NoTier2: true}},
		{Name: "parallel-notier2", Opt: crsky.QueryOptions{Parallel: 4, NoTier2: true}},
		{Name: "nobounds", Opt: crsky.QueryOptions{Parallel: 1, NoBounds: true}},
		{Name: "incremental", Opt: crsky.QueryOptions{Parallel: 1}, Incremental: true},
	}
}

// rebuildIncremental re-derives an engine through the dynamic data plane's
// copy-on-write mutation path: base already holds a prefix of the objects,
// rest arrive one WithInsert at a time, and the decoy is inserted and
// immediately deleted so the final engine carries a tombstone slot. The
// result must answer every query exactly like the from-scratch build of the
// same live set.
func rebuildIncremental(t *testing.T, base crsky.Explainer, rest []crsky.InsertSpec, decoy crsky.InsertSpec) crsky.Explainer {
	t.Helper()
	eng := base
	for i, spec := range rest {
		ne, _, err := eng.(crsky.Mutable).WithInsert(spec)
		if err != nil {
			t.Fatalf("incremental insert %d: %v", i, err)
		}
		eng = ne
	}
	ne, id, err := eng.(crsky.Mutable).WithInsert(decoy)
	if err != nil {
		t.Fatalf("decoy insert: %v", err)
	}
	eng, err = ne.(crsky.Mutable).WithDelete(id)
	if err != nil {
		t.Fatalf("decoy delete: %v", err)
	}
	return eng
}

// incrementalSampleEngine builds the discrete-sample engine for objs with
// the second half arriving through the mutation path.
func incrementalSampleEngine(t *testing.T, objs []*uncertain.Object) *crsky.Engine {
	t.Helper()
	k := len(objs) / 2
	base, err := crsky.NewEngine(objs[:k])
	if err != nil {
		t.Fatalf("incremental base: %v", err)
	}
	rest := make([]crsky.InsertSpec, len(objs)-k)
	for i, o := range objs[k:] {
		rest[i] = crsky.InsertSpec{Samples: o.Samples}
	}
	decoy := crsky.InsertSpec{Samples: append([]crsky.Sample(nil), objs[0].Samples...)}
	return rebuildIncremental(t, base, rest, decoy).(*crsky.Engine)
}

// incrementalPDFEngine is the continuous-model counterpart.
func incrementalPDFEngine(t *testing.T, objs []*uncertain.PDFObject) *crsky.PDFEngine {
	t.Helper()
	k := len(objs) / 2
	base, err := crsky.NewPDFEngine(objs[:k])
	if err != nil {
		t.Fatalf("incremental base: %v", err)
	}
	rest := make([]crsky.InsertSpec, len(objs)-k)
	for i, o := range objs[k:] {
		rest[i] = crsky.InsertSpec{PDF: o}
	}
	return rebuildIncremental(t, base, rest, crsky.InsertSpec{PDF: objs[0]}).(*crsky.PDFEngine)
}

// incrementalCertainEngine is the certain-model counterpart; the lineage
// also exercises the incremental Section-4 reduction repair.
func incrementalCertainEngine(t *testing.T, pts []geom.Point) *crsky.CertainEngine {
	t.Helper()
	k := len(pts) / 2
	base, err := crsky.NewCertainEngine(pts[:k])
	if err != nil {
		t.Fatalf("incremental base: %v", err)
	}
	rest := make([]crsky.InsertSpec, len(pts)-k)
	for i, p := range pts[k:] {
		rest[i] = crsky.InsertSpec{Point: p}
	}
	return rebuildIncremental(t, base, rest, crsky.InsertSpec{Point: pts[0]}).(*crsky.CertainEngine)
}

// forEachCaseSeed drives the harness: n deterministic case seeds derived
// from base, or exactly the one seed given in CRSKY_CONFORMANCE_SEED.
func forEachCaseSeed(t *testing.T, base int64, n int, run func(t *testing.T, seed int64)) {
	t.Helper()
	if v := os.Getenv(ReplaySeedEnv); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("%s=%q: %v", ReplaySeedEnv, v, err)
		}
		t.Logf("replaying single case seed %d", seed)
		run(t, seed)
		return
	}
	for i := 0; i < n; i++ {
		seed := base + int64(i)
		run(t, seed)
		if t.Failed() {
			t.Fatalf("replay: %s=%d go test ./internal/conformance/ -run %s", ReplaySeedEnv, seed, t.Name())
		}
	}
}

// sampleWorkload is one randomized discrete-sample dataset with query
// points and thresholds, fully determined by its seed.
type sampleWorkload struct {
	seed   int64
	cfg    dataset.UncertainConfig
	ds     *dataset.Uncertain
	qs     []geom.Point
	alphas []float64
}

var families = []func(n, dims int, rmin, rmax float64, seed int64) dataset.UncertainConfig{
	dataset.LUrU, dataset.LUrG, dataset.LSrU, dataset.LSrG,
}

func newSampleWorkload(t *testing.T, seed int64) *sampleWorkload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := 2 + rng.Intn(3)
	n := 30 + rng.Intn(100)
	// Radii large relative to the domain force overlapping dominance
	// neighbourhoods: populated candidate streams, partial overlaps for
	// the second tier, and a non-empty undecided band.
	rmax := 100 + 1400*rng.Float64()
	cfg := families[rng.Intn(len(families))](n, dims, 0, rmax, rng.Int63())
	cfg.Samples = 1 + rng.Intn(6)
	ds, err := dataset.GenerateUncertain(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	w := &sampleWorkload{seed: seed, cfg: cfg, ds: ds}
	for i := 0; i < 3; i++ {
		q := make(geom.Point, dims)
		for j := range q {
			q[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
		}
		w.qs = append(w.qs, q)
	}
	w.alphas = []float64{0.25 + 0.5*rng.Float64(), 0.9, 1}
	return w
}

func (w *sampleWorkload) String() string {
	return fmt.Sprintf("seed=%d n=%d dims=%d samples=%d centers=%v radii=%v rmax=%g",
		w.seed, w.cfg.N, w.cfg.Dims, w.cfg.Samples, w.cfg.Centers, w.cfg.Radii, w.cfg.RMax)
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedCopy returns ints ascending without mutating the input.
func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
