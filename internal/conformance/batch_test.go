package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// This file pins the v2 batch paths to the same oracles as the single
// paths: QueryBatch against the naive per-object loop per query point
// (every accelerated variant), and ExplainBatch against per-item
// ExplainCtx. Randomized cases replay exactly like the rest of the
// harness (CRSKY_CONFORMANCE_SEED).

// TestConformanceQueryBatchSample crosses Engine.QueryBatch — all query
// points of a workload in one shared-join call — against the naive oracle
// per point, for every accelerated variant and threshold.
func TestConformanceQueryBatchSample(t *testing.T) {
	const workloads = 12 // x 3 alphas x variants
	forEachCaseSeed(t, 41_000, workloads, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		for _, alpha := range w.alphas {
			want := make([][]int, len(w.qs))
			for i, q := range w.qs {
				want[i] = eng.ProbabilisticReverseSkylineNaive(q, alpha)
			}
			for _, v := range Variants() {
				got, _, err := eng.QueryBatch(context.Background(), w.qs, alpha, v.Opt)
				if err != nil {
					t.Errorf("%v alpha=%g variant=%s: %v", w, alpha, v.Name, err)
					return
				}
				for i := range w.qs {
					if !equalIDs(got[i], want[i]) {
						t.Errorf("%v alpha=%g variant=%s q#%d: batch %v, naive %v",
							w, alpha, v.Name, i, got[i], want[i])
						return
					}
				}
			}
		}
	})
}

// TestConformanceQueryBatchPDF crosses PDFEngine.QueryBatch against
// thresholding Prob per object per query point.
func TestConformanceQueryBatchPDF(t *testing.T) {
	const workloads = 8
	forEachCaseSeed(t, 42_000, workloads, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dims := 2 + rng.Intn(2)
		n := 25 + rng.Intn(40)
		rmax := 80 + 900*rng.Float64()
		cfg := families[rng.Intn(len(families))](n, dims, 10, rmax, rng.Int63())
		quad := 3 + rng.Intn(3)
		qs := make([]geom.Point, 3)
		for i := range qs {
			q := make(geom.Point, dims)
			for j := range q {
				q[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
			}
			qs[i] = q
		}
		alpha := 0.2 + 0.6*rng.Float64()

		objs, err := dataset.GenerateUncertainPDF(cfg, uncertain.Uniform)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		eng, err := crsky.NewPDFEngine(objs)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		want := make([][]int, len(qs))
		for i, q := range qs {
			want[i] = eng.ProbabilisticReverseSkylineNaive(q, alpha, quad)
		}
		for _, v := range Variants() {
			opt := v.Opt
			opt.QuadNodes = quad
			got, _, err := eng.QueryBatch(context.Background(), qs, alpha, opt)
			if err != nil {
				t.Errorf("seed=%d variant=%s: %v", seed, v.Name, err)
				return
			}
			for i := range qs {
				if !equalIDs(got[i], want[i]) {
					t.Errorf("seed=%d variant=%s q#%d: batch %v, naive %v", seed, v.Name, i, got[i], want[i])
					return
				}
			}
		}
	})
}

// TestConformanceQueryBatchCertain crosses CertainEngine.QueryBatch (BBRS
// per point behind the interface) against the RecList traversal.
func TestConformanceQueryBatchCertain(t *testing.T) {
	const workloads = 20
	kinds := []dataset.CertainKind{
		dataset.Independent, dataset.Correlated, dataset.AntiCorrelated, dataset.Clustered,
	}
	forEachCaseSeed(t, 43_000, workloads, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		cfg := dataset.CertainConfig{
			N:    40 + rng.Intn(200),
			Dims: 2 + rng.Intn(3),
			Kind: kinds[rng.Intn(len(kinds))],
			Seed: rng.Int63(),
		}
		ds, err := dataset.GenerateCertain(cfg)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		eng, err := crsky.NewCertainEngine(ds.Points)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		qs := make([]geom.Point, 3)
		for i := range qs {
			q := make(geom.Point, cfg.Dims)
			for j := range q {
				q[j] = 10000 * (0.1 + 0.8*rng.Float64())
			}
			qs[i] = q
		}
		got, _, err := eng.QueryBatch(context.Background(), qs, 1, crsky.QueryOptions{})
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		for i, q := range qs {
			want := sortedCopy(eng.ReverseSkyline(q))
			if !equalIDs(got[i], want) {
				t.Errorf("seed=%d q#%d: batch %v, RecList %v", seed, i, got[i], want)
				return
			}
		}
		// Shared-frontier identity: the batch must be element-wise
		// identical to per-query BBRS (QueryCtx), whatever the traversal
		// interleaving did to the pruning order.
		for i, q := range qs {
			single, _, err := eng.QueryCtx(context.Background(), q, 1, crsky.QueryOptions{})
			if err != nil {
				t.Errorf("seed=%d q#%d: %v", seed, i, err)
				return
			}
			if !equalIDs(got[i], single) {
				t.Errorf("seed=%d q#%d: batch %v, per-query BBRS %v", seed, i, got[i], single)
				return
			}
		}
		// QueryBatchStream must emit every answer exactly once, ascending,
		// and each streamed answer must equal the collected one.
		var emitted []int
		_, _, serr := eng.QueryBatchStream(context.Background(), qs, 1, crsky.QueryOptions{},
			func(i int, ids []int) {
				emitted = append(emitted, i)
				if !equalIDs(ids, got[i]) {
					t.Errorf("seed=%d q#%d: streamed %v, batch %v", seed, i, ids, got[i])
				}
			})
		if serr != nil {
			t.Errorf("seed=%d: stream: %v", seed, serr)
			return
		}
		if len(emitted) != len(qs) {
			t.Errorf("seed=%d: %d emits for %d queries", seed, len(emitted), len(qs))
			return
		}
		for i, k := range emitted {
			if k != i {
				t.Errorf("seed=%d: emit order %v, want ascending", seed, emitted)
				return
			}
		}
		// The interface must reject a non-unit alpha on certain data.
		if _, _, err := eng.QueryBatch(context.Background(), qs, 0.5, crsky.QueryOptions{}); !errors.Is(err, crsky.ErrBadAlpha) {
			t.Errorf("seed=%d: alpha=0.5 on certain data returned %v, want ErrBadAlpha", seed, err)
		}
	})
}

// TestConformanceQueryBatchCertainSharedIO pins the point of the shared
// frontier at engine level: at index scale (where the upper tree levels
// every query re-reads dominate), one batch traversal must charge strictly
// fewer node accesses than the per-query BBRS calls it replaces. Tiny
// trees can go either way — the interleaved traversal order weakens each
// query's own pruning slightly — so this gate runs on one sizeable
// deterministic workload rather than the randomized small cases above.
func TestConformanceQueryBatchCertainSharedIO(t *testing.T) {
	rng := rand.New(rand.NewSource(4301))
	cfg := dataset.CertainConfig{N: 4000, Dims: 3, Kind: dataset.Clustered, Seed: 4301}
	ds, err := dataset.GenerateCertain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := crsky.NewCertainEngine(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]geom.Point, 8)
	for i := range qs {
		q := make(geom.Point, cfg.Dims)
		for j := range q {
			q[j] = 10000 * (0.1 + 0.8*rng.Float64())
		}
		qs[i] = q
	}
	base := eng.NodeAccesses()
	single := make([][]int, len(qs))
	for i, q := range qs {
		ids, _, err := eng.QueryCtx(context.Background(), q, 1, crsky.QueryOptions{})
		if err != nil {
			t.Fatalf("q#%d: %v", i, err)
		}
		single[i] = ids
	}
	singleIO := eng.NodeAccesses() - base

	base = eng.NodeAccesses()
	got, _, err := eng.QueryBatch(context.Background(), qs, 1, crsky.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batchIO := eng.NodeAccesses() - base

	for i := range qs {
		if !equalIDs(got[i], single[i]) {
			t.Fatalf("q#%d: batch %v, per-query BBRS %v", i, got[i], single[i])
		}
	}
	if batchIO >= singleIO {
		t.Fatalf("batch I/O %d not below %d per-query traversals' %d", batchIO, len(qs), singleIO)
	}
	t.Logf("shared frontier: %d queries, %d batch accesses vs %d per-query", len(qs), batchIO, singleIO)
}

// TestConformanceExplainBatch crosses ExplainBatch — non-answers fanned
// out with per-item errors — against per-item ExplainCtx on the sample
// model: identical causes, responsibilities, contingency sizes, and
// identical per-item error classification (an answer in the batch fails
// with ErrNotNonAnswer exactly like the single call).
func TestConformanceExplainBatch(t *testing.T) {
	const workloads = 10
	forEachCaseSeed(t, 44_000, workloads, func(t *testing.T, seed int64) {
		ds, q, alpha := explainWorkload(t, seed)
		eng, err := crsky.NewEngine(ds.Objects)
		if err != nil {
			t.Errorf("seed=%d: %v", seed, err)
			return
		}
		// Every object goes into the batch: answers exercise the per-item
		// error path, non-answers the result path.
		reqs := make([]crsky.ExplainRequest, ds.Len())
		for id := range reqs {
			reqs[id] = crsky.ExplainRequest{ID: id, Q: q, Alpha: alpha}
		}
		for _, parallel := range []int{1, 3} {
			opts := crsky.Options{Parallel: parallel}
			items := eng.ExplainBatch(context.Background(), reqs, opts)
			if len(items) != len(reqs) {
				t.Errorf("seed=%d: %d items, want %d", seed, len(items), len(reqs))
				return
			}
			for id, item := range items {
				ctx := fmt.Sprintf("seed=%d par=%d an=%d", seed, parallel, id)
				if item.Index != id {
					t.Errorf("%s: index %d", ctx, item.Index)
					return
				}
				want, wantErr := eng.ExplainCtx(context.Background(), id, q, alpha, crsky.Options{})
				if (item.Err == nil) != (wantErr == nil) {
					t.Errorf("%s: batch err %v, single err %v", ctx, item.Err, wantErr)
					return
				}
				if wantErr != nil {
					if !errors.Is(item.Err, crsky.ErrNotNonAnswer) || !errors.Is(wantErr, crsky.ErrNotNonAnswer) {
						t.Errorf("%s: error classification diverged: batch %v, single %v", ctx, item.Err, wantErr)
						return
					}
					continue
				}
				g, w := item.Result, want
				if len(g.Causes) != len(w.Causes) {
					t.Errorf("%s: %d causes, single has %d", ctx, len(g.Causes), len(w.Causes))
					return
				}
				for i := range w.Causes {
					if g.Causes[i].ID != w.Causes[i].ID ||
						math.Abs(g.Causes[i].Responsibility-w.Causes[i].Responsibility) > 1e-12 ||
						len(g.Causes[i].Contingency) != len(w.Causes[i].Contingency) {
						t.Errorf("%s: cause %d diverged: %+v vs %+v", ctx, i, g.Causes[i], w.Causes[i])
						return
					}
				}
				// Witness re-validation straight from Definition 1.
				if prob.GEq(prob.PrReverseSkyline(ds.Objects[id], q, ds.Objects), alpha) {
					t.Errorf("%s: explained object is an answer", ctx)
					return
				}
			}
		}
	})
}
