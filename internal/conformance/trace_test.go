package conformance

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
)

// The tracing instrumentation threads an obs.Trace through the query and
// explanation hot paths. It must be purely observational: every engine
// must return bit-identical results whether or not a trace rides the
// context — and when one does, it must actually record the stage spans.
// Any divergence means a span boundary moved real control flow.

// tracedCtx returns a context carrying a fresh trace alongside the trace.
func tracedCtx() (context.Context, *obs.Trace) {
	tr := obs.New()
	return obs.WithTrace(context.Background(), tr), tr
}

func spanNames(tr *obs.Trace) map[string]bool {
	m := map[string]bool{}
	for _, sp := range tr.Spans() {
		m[sp.Name] = true
	}
	return m
}

func TestTraceBitIdenticalSample(t *testing.T) {
	const workloads = 8
	forEachCaseSeed(t, 7_000, workloads, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		opts := crsky.QueryOptions{Parallel: 2}
		for _, q := range w.qs {
			for _, alpha := range w.alphas {
				plain, plainStats, err := eng.QueryCtx(context.Background(), q, alpha, opts)
				if err != nil {
					t.Errorf("%v: %v", w, err)
					return
				}
				ctx, tr := tracedCtx()
				traced, tracedStats, err := eng.QueryCtx(ctx, q, alpha, opts)
				if err != nil {
					t.Errorf("%v traced: %v", w, err)
					return
				}
				if !equalIDs(plain, traced) {
					t.Errorf("%v q=%v alpha=%g: tracing changed answers: %v vs %v",
						w, q, alpha, plain, traced)
					return
				}
				if plainStats != tracedStats {
					t.Errorf("%v q=%v alpha=%g: tracing changed stats: %+v vs %+v",
						w, q, alpha, plainStats, tracedStats)
					return
				}
				spans := spanNames(tr)
				if !spans["prsq.join"] || !spans["prsq.exact"] {
					t.Errorf("%v: traced query missing stage spans: %v", w, spans)
					return
				}
				if tr.Counter("prsq.objects") != int64(w.ds.Len()) {
					t.Errorf("%v: prsq.objects counter = %d, want %d",
						w, tr.Counter("prsq.objects"), w.ds.Len())
					return
				}
			}
		}
	})
}

func TestTraceBitIdenticalExplain(t *testing.T) {
	const workloads = 6
	forEachCaseSeed(t, 8_000, workloads, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		q, alpha := w.qs[0], w.alphas[0]
		answers, _, err := eng.QueryCtx(context.Background(), q, alpha, crsky.QueryOptions{})
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		inAnswers := map[int]bool{}
		for _, id := range answers {
			inAnswers[id] = true
		}
		opts := crsky.Options{MaxCandidates: 40, MaxSubsets: 200_000}
		explained := 0
		for id := 0; id < w.ds.Len() && explained < 3; id++ {
			if inAnswers[id] {
				continue
			}
			plain, errPlain := eng.ExplainCtx(context.Background(), id, q, alpha, opts)
			ctx, tr := tracedCtx()
			traced, errTraced := eng.ExplainCtx(ctx, id, q, alpha, opts)
			if (errPlain == nil) != (errTraced == nil) {
				t.Errorf("%v an=%d: tracing changed the error: %v vs %v", w, id, errPlain, errTraced)
				return
			}
			if errPlain != nil {
				continue // intractable under the caps either way — skip
			}
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("%v an=%d: tracing changed the explanation:\n%+v\nvs\n%+v", w, id, plain, traced)
				return
			}
			spans := spanNames(tr)
			if !spans["explain.filter"] {
				t.Errorf("%v an=%d: traced explain missing filter span: %v", w, id, spans)
				return
			}
			if tr.Counter("explain.candidates") != int64(traced.Candidates) {
				t.Errorf("%v an=%d: explain.candidates = %d, result says %d",
					w, id, tr.Counter("explain.candidates"), traced.Candidates)
				return
			}
			explained++
		}
	})
}

func TestTraceBitIdenticalCertain(t *testing.T) {
	const workloads = 8
	forEachCaseSeed(t, 9_000, workloads, func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dims := 2 + rng.Intn(3)
		n := 40 + rng.Intn(200)
		kinds := []dataset.CertainKind{dataset.Independent, dataset.Correlated, dataset.AntiCorrelated, dataset.Clustered}
		ds, err := dataset.GenerateCertain(dataset.CertainConfig{
			N: n, Dims: dims, Kind: kinds[rng.Intn(len(kinds))], Seed: rng.Int63(),
		})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return
		}
		eng, err := crsky.NewCertainEngine(ds.Points)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return
		}
		q := make(geom.Point, dims)
		for j := range q {
			q[j] = 100 * (0.2 + 0.6*rng.Float64())
		}
		plain, _, err := eng.QueryCtx(context.Background(), q, 1, crsky.QueryOptions{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return
		}
		ctx, tr := tracedCtx()
		traced, _, err := eng.QueryCtx(ctx, q, 1, crsky.QueryOptions{})
		if err != nil {
			t.Errorf("seed %d traced: %v", seed, err)
			return
		}
		if !equalIDs(plain, traced) {
			t.Errorf("seed %d q=%v: tracing changed certain answers: %v vs %v", seed, q, plain, traced)
			return
		}
		if !spanNames(tr)["query.bbrs"] {
			t.Errorf("seed %d: traced certain query missing query.bbrs span: %v", seed, spanNames(tr))
			return
		}
	})
}
