package conformance

import (
	"context"
	"math"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/prob"
)

// TestApproxConformanceCoverage drives the degraded Monte Carlo tier
// through the public Explainer surface and cross-checks it against the
// naive oracle: objects the filter bounds decided must match the oracle
// exactly, a sampled object may flip membership only when its true
// probability sits within the error budget of the threshold, and the
// Hoeffding intervals must cover the true per-object probability at the
// requested confidence (with the binomial miss budget that 95% coverage
// implies).
func TestApproxConformanceCoverage(t *testing.T) {
	const workloads = 10
	const eps = 0.04
	forEachCaseSeed(t, 7_000, workloads, func(t *testing.T, seed int64) {
		w := newSampleWorkload(t, seed)
		eng, err := crsky.NewEngine(w.ds.Objects)
		if err != nil {
			t.Errorf("%v: %v", w, err)
			return
		}
		for _, q := range w.qs {
			alpha := w.alphas[0]
			res, _, err := eng.QueryApprox(context.Background(), q, alpha,
				crsky.QueryOptions{}, crsky.ApproxOptions{Epsilon: eps, Seed: seed})
			if err != nil {
				t.Errorf("%v q=%v: %v", w, q, err)
				return
			}
			oracle := eng.ProbabilisticReverseSkylineNaive(q, alpha)
			sampled := make(map[int]bool, len(res.Intervals))
			for _, iv := range res.Intervals {
				sampled[iv.ID] = true
			}
			inApprox := make(map[int]bool, len(res.Answers))
			for _, id := range res.Answers {
				inApprox[id] = true
			}
			inOracle := make(map[int]bool, len(oracle))
			for _, id := range oracle {
				inOracle[id] = true
			}

			misses := 0
			for _, iv := range res.Intervals {
				truth := prob.PrReverseSkyline(w.ds.Objects[iv.ID], q, w.ds.Objects)
				if truth < iv.Lo || truth > iv.Hi {
					misses++
				}
				if inApprox[iv.ID] != inOracle[iv.ID] && math.Abs(truth-alpha) > 2*eps {
					t.Errorf("%v q=%v: object %d flipped membership far from the threshold (truth %.4f, alpha %.3f)",
						w, q, iv.ID, truth, alpha)
					return
				}
			}
			for id := 0; id < w.ds.Len(); id++ {
				if sampled[id] {
					continue
				}
				if inApprox[id] != inOracle[id] {
					t.Errorf("%v q=%v: bound-decided object %d disagrees with the oracle", w, q, id)
					return
				}
			}
			if budget := 1 + len(res.Intervals)/10; misses > budget {
				t.Errorf("%v q=%v: %d of %d intervals miss the true probability (budget %d)",
					w, q, misses, len(res.Intervals), budget)
				return
			}
		}
	})
}
