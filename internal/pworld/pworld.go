// Package pworld enumerates the possible worlds of a small discrete-sample
// uncertain dataset. A possible world picks exactly one sample per object
// (samples are mutually exclusive; objects are independent), with
// probability equal to the product of the chosen samples' probabilities.
//
// Enumeration is exponential in the number of objects and exists purely as
// a ground-truth oracle for testing the closed-form probability machinery
// (Eq. 2/3 of the paper) and the causality algorithms against Definition 1.
package pworld

import (
	"fmt"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// MaxWorlds bounds enumeration size; exceeding it panics so that a test
// misconfiguration fails loudly instead of hanging.
const MaxWorlds = 20_000_000

// Count returns the number of possible worlds of the given objects.
func Count(objs []*uncertain.Object) int {
	n := 1
	for _, o := range objs {
		n *= len(o.Samples)
		if n > MaxWorlds {
			panic(fmt.Sprintf("pworld: more than %d possible worlds", MaxWorlds))
		}
	}
	return n
}

// World is one possible world: choice[i] is the selected sample index of
// objs[i] and Prob its probability.
type World struct {
	Choice []int
	Prob   float64
}

// Enumerate invokes fn for every possible world of objs. The Choice slice
// is reused between invocations; callers must copy it to retain it.
func Enumerate(objs []*uncertain.Object, fn func(w World)) {
	Count(objs) // enforce the bound
	choice := make([]int, len(objs))
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == len(objs) {
			fn(World{Choice: choice, Prob: p})
			return
		}
		for j, s := range objs[i].Samples {
			choice[i] = j
			rec(i+1, p*s.P)
		}
	}
	rec(0, 1)
}

// TotalProb returns the summed probability over all worlds (≈1 for valid
// objects); exposed for sanity tests.
func TotalProb(objs []*uncertain.Object) float64 {
	var sum float64
	Enumerate(objs, func(w World) { sum += w.Prob })
	return sum
}

// PrReverseSkyline computes, by brute-force enumeration, the probability
// that object u is a reverse skyline point of q given the other objects:
// the mass of worlds in which no other object's instance dynamically
// dominates q with respect to u's instance. This is the Definition-4 /
// Eq.-2 ground truth.
func PrReverseSkyline(u *uncertain.Object, q geom.Point, others []*uncertain.Object) float64 {
	all := make([]*uncertain.Object, 0, len(others)+1)
	all = append(all, u)
	all = append(all, others...)
	var pr float64
	Enumerate(all, func(w World) {
		anchor := u.Samples[w.Choice[0]].Loc
		for i, o := range others {
			inst := o.Samples[w.Choice[i+1]].Loc
			if geom.DynDominates(inst, q, anchor) {
				return
			}
		}
		pr += w.Prob
	})
	return pr
}

// IsReverseSkylineWorld reports whether, in the certain world formed by the
// given points, p is a reverse skyline point of q (no other point dominates
// q w.r.t. p).
func IsReverseSkylineWorld(p geom.Point, q geom.Point, others []geom.Point) bool {
	for _, o := range others {
		if geom.DynDominates(o, q, p) {
			return false
		}
	}
	return true
}
