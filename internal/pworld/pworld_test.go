package pworld

import (
	"math"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

func obj(id int, pts ...geom.Point) *uncertain.Object {
	return uncertain.NewUniform(id, pts)
}

func TestCount(t *testing.T) {
	objs := []*uncertain.Object{
		obj(0, geom.Point{1, 1}, geom.Point{2, 2}),
		obj(1, geom.Point{3, 3}, geom.Point{4, 4}, geom.Point{5, 5}),
	}
	if got := Count(objs); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := Count(nil); got != 1 {
		t.Fatalf("Count(nil) = %d, want 1", got)
	}
}

func TestEnumerateCoversAllWorlds(t *testing.T) {
	objs := []*uncertain.Object{
		obj(0, geom.Point{1}, geom.Point{2}),
		obj(1, geom.Point{3}, geom.Point{4}),
	}
	seen := map[[2]int]float64{}
	Enumerate(objs, func(w World) {
		key := [2]int{w.Choice[0], w.Choice[1]}
		if _, dup := seen[key]; dup {
			t.Fatalf("world %v enumerated twice", key)
		}
		seen[key] = w.Prob
	})
	if len(seen) != 4 {
		t.Fatalf("enumerated %d worlds, want 4", len(seen))
	}
	for k, p := range seen {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("world %v probability %v, want 0.25", k, p)
		}
	}
}

func TestTotalProbIsOne(t *testing.T) {
	objs := []*uncertain.Object{
		uncertain.New(0, []uncertain.Sample{
			{Loc: geom.Point{1, 1}, P: 0.2},
			{Loc: geom.Point{2, 2}, P: 0.8},
		}),
		obj(1, geom.Point{3, 3}, geom.Point{4, 4}, geom.Point{5, 5}),
		uncertain.Certain(2, geom.Point{6, 6}),
	}
	if got := TotalProb(objs); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TotalProb = %v", got)
	}
}

// TestFig1Probabilities rebuilds the spirit of the paper's Fig. 1(c):
// uncertain objects with two equally likely samples each, verifying a few
// hand-computable reverse-skyline probabilities.
func TestFig1StyleProbabilities(t *testing.T) {
	q := geom.Point{10, 10}
	// u sits around q; v has one sample that dominates q w.r.t. both of
	// u's samples and one sample far away.
	u := obj(0, geom.Point{14, 10}, geom.Point{10, 14})
	v := obj(1, geom.Point{11, 11}, geom.Point{100, 100})
	// With v's first sample (prob 0.5): (11,11) vs q w.r.t. (14,10):
	// |11-14|=3 <= |10-14|=4 and |11-10|=1 <= |10-10|=0? No: 1 > 0, so it
	// does NOT dominate w.r.t. sample 1. W.r.t. (10,14): |11-10|=1 > 0 on
	// dim 0, so no domination either. So Pr(u) = 1.
	if got := PrReverseSkyline(u, q, []*uncertain.Object{v}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pr(u) = %v, want 1", got)
	}
	// w's first sample is strictly between q and both samples of x.
	x := obj(2, geom.Point{18, 18}, geom.Point{20, 20})
	w := obj(3, geom.Point{14, 14}, geom.Point{-50, -50})
	// (14,14) w.r.t. (18,18): |14-18|=4 <= |10-18|=8 both dims, strict: yes,
	// dominates. W.r.t. (20,20): |14-20|=6 <= |10-20|=10: dominates.
	// So x is a reverse skyline point only when w takes its far sample:
	// Pr(x) = 0.5.
	if got := PrReverseSkyline(x, q, []*uncertain.Object{w}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Pr(x) = %v, want 0.5", got)
	}
}

func TestIsReverseSkylineWorld(t *testing.T) {
	q := geom.Point{5, 5}
	p := geom.Point{9, 9}
	if !IsReverseSkylineWorld(p, q, []geom.Point{{0, 0}, {9, 1}}) {
		t.Fatal("no dominator present; p should be a reverse skyline point")
	}
	// (7,7) is within the dominance rectangle of p w.r.t. q.
	if IsReverseSkylineWorld(p, q, []geom.Point{{7, 7}}) {
		t.Fatal("dominator present; p should not be a reverse skyline point")
	}
}

func TestCountPanicsOnExplosion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for huge world counts")
		}
	}()
	objs := make([]*uncertain.Object, 40)
	pts := []geom.Point{{1}, {2}, {3}, {4}}
	for i := range objs {
		objs[i] = obj(i, pts...)
	}
	Count(objs)
}
