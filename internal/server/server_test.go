package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/experiments"
	"github.com/crsky/crsky/internal/geom"
)

// --- shared workload --------------------------------------------------

type testWorkload struct {
	ds  *dataset.Uncertain
	q   geom.Point
	ids []int // tractable non-answers
	eng *crsky.Engine
}

var (
	workloadOnce sync.Once
	workload     *testWorkload
	workloadErr  error
)

// sampleWorkload builds (once) a small uncertain dataset with known
// tractable non-answers plus a direct library engine over the same
// objects, the ground truth every server response is compared against.
func sampleWorkload(tb testing.TB) *testWorkload {
	tb.Helper()
	workloadOnce.Do(func() {
		cfg := experiments.Config{Seed: 1, Runs: 8, MaxPool: 12, MaxCandidates: 60, NaiveMaxCandidates: 12}
		ds, q, ids, err := experiments.BenchWorkloadCP(cfg, "lUrU", 2000, 2, 1, 5, 0.5, 12)
		if err != nil {
			workloadErr = err
			return
		}
		eng, err := crsky.NewEngine(ds.Objects)
		if err != nil {
			workloadErr = err
			return
		}
		eng.Warm()
		workload = &testWorkload{ds: ds, q: q, ids: ids, eng: eng}
	})
	if workloadErr != nil {
		tb.Fatalf("workload: %v", workloadErr)
	}
	return workload
}

func objectSpecs(ds *dataset.Uncertain) []ObjectSpec {
	specs := make([]ObjectSpec, ds.Len())
	for i, o := range ds.Objects {
		ss := make([]SampleSpec, len(o.Samples))
		for j, s := range o.Samples {
			ss[j] = SampleSpec{P: s.P, Loc: s.Loc}
		}
		specs[i] = ObjectSpec{Samples: ss}
	}
	return specs
}

// --- HTTP helpers -----------------------------------------------------

type testClient struct {
	tb testing.TB
	ts *httptest.Server
}

func newTestClient(tb testing.TB, s *Server) *testClient {
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return &testClient{tb: tb, ts: ts}
}

// do issues a request and returns the response; body holds the full
// payload and the response body is already closed.
func (c *testClient) do(method, path string, req any) (*http.Response, []byte) {
	c.tb.Helper()
	var body io.Reader
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			c.tb.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	httpReq, err := http.NewRequest(method, c.ts.URL+path, body)
	if err != nil {
		c.tb.Fatal(err)
	}
	resp, err := c.ts.Client().Do(httpReq)
	if err != nil {
		c.tb.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.tb.Fatal(err)
	}
	return resp, raw
}

func (c *testClient) post(path string, req, out any, wantStatus int) *http.Response {
	c.tb.Helper()
	resp, raw := c.do(http.MethodPost, path, req)
	if resp.StatusCode != wantStatus {
		c.tb.Fatalf("POST %s: status %d, want %d (body %s)", path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.tb.Fatalf("POST %s: bad response %s: %v", path, raw, err)
		}
	}
	return resp
}

func (c *testClient) registerSample(name string, ds *dataset.Uncertain) DatasetInfo {
	c.tb.Helper()
	var info DatasetInfo
	c.post("/v1/datasets", &DatasetRequest{Name: name, Model: ModelSample, Objects: objectSpecs(ds)}, &info, http.StatusCreated)
	return info
}

// resultFromResponse rebuilds the library result from a server response
// so that crsky's independent verifier can re-check it client-side.
func resultFromResponse(er *ExplainResponse) *causality.Result {
	causes := make([]causality.Cause, len(er.Causes))
	for i, cj := range er.Causes {
		causes[i] = causality.Cause{
			ID:             cj.ID,
			Responsibility: cj.Responsibility,
			Contingency:    cj.Contingency,
			Counterfactual: cj.Counterfactual,
		}
	}
	return &causality.Result{NonAnswer: er.NonAnswer, Pr: er.Pr, Causes: causes, Candidates: er.Candidates}
}

// --- end-to-end flow --------------------------------------------------

func TestServerEndToEndSample(t *testing.T) {
	w := sampleWorkload(t)
	c := newTestClient(t, New(Config{Workers: 4, CacheSize: 128}))

	info := c.registerSample("lUrU", w.ds)
	if info.Size != w.ds.Len() || info.Dims != 2 || info.Model != ModelSample {
		t.Fatalf("register info = %+v", info)
	}

	// Query must match the library's probabilistic reverse skyline.
	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "lUrU", Q: w.q, Alpha: 0.5}, &qr, http.StatusOK)
	want := w.eng.ProbabilisticReverseSkyline(w.q, 0.5)
	if want == nil {
		want = []int{}
	}
	if !reflect.DeepEqual(qr.Answers, want) {
		t.Fatalf("query answers = %v, want %v", qr.Answers, want)
	}

	// Explain must match the library's direct output and verify.
	an := w.ids[0]
	opts := causality.Options{MaxCandidates: 64}
	direct, err := w.eng.Explain(an, w.q, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	var er ExplainResponse
	req := &ExplainRequest{Dataset: "lUrU", Q: w.q, An: an, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}, Verify: true}
	resp := c.post("/v1/explain", req, &er, http.StatusOK)
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first explain cache header = %q, want miss", got)
	}
	if !er.Verified {
		t.Fatal("explain response not verified")
	}
	if er.NonAnswer != direct.NonAnswer || er.Pr != direct.Pr || er.Candidates != direct.Candidates {
		t.Fatalf("explain envelope = %+v, direct = %+v", er, direct)
	}
	if !reflect.DeepEqual(er.Causes, causesJSON(direct.Causes)) {
		t.Fatalf("explain causes = %v, want %v", er.Causes, causesJSON(direct.Causes))
	}
	if err := w.eng.Verify(w.q, 0.5, resultFromResponse(&er)); err != nil {
		t.Fatalf("client-side verify: %v", err)
	}

	// Repair must match the library's minimal repair.
	directRep, err := w.eng.SuggestRepair(an, w.q, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	var rr RepairResponse
	c.post("/v1/repair", &RepairRequest{Dataset: "lUrU", Q: w.q, An: an, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}}, &rr, http.StatusOK)
	if !reflect.DeepEqual(rr.Removed, directRep.Removed) || rr.NewPr != directRep.NewPr || rr.Exact != directRep.Exact {
		t.Fatalf("repair = %+v, direct = %+v", rr, directRep)
	}
}

func TestServerEndToEndCertain(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	// q at the origin; p0 is blocked by p1 and p2, p3 is unblocked.
	pts := [][]float64{{4, 4}, {1, 1}, {2, 2}, {-5, 9}}
	var info DatasetInfo
	c.post("/v1/datasets", &DatasetRequest{Name: "cert", Model: ModelCertain, Points: pts}, &info, http.StatusCreated)
	if info.Model != ModelCertain || info.Size != 4 {
		t.Fatalf("register info = %+v", info)
	}

	q := []float64{0, 0}
	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "cert", Q: q}, &qr, http.StatusOK)
	gpts := make([]geom.Point, len(pts))
	for i, p := range pts {
		gpts[i] = geom.Point(p)
	}
	eng, err := crsky.NewCertainEngine(gpts)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.ReverseSkyline(geom.Point(q))
	if !reflect.DeepEqual(qr.Answers, want) {
		t.Fatalf("certain query = %v, want %v", qr.Answers, want)
	}
	if qr.Alpha != 1 {
		t.Fatalf("certain query alpha = %v, want 1", qr.Alpha)
	}

	var er ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "cert", Q: q, An: 0, Verify: true}, &er, http.StatusOK)
	direct, err := eng.Explain(0, geom.Point(q))
	if err != nil {
		t.Fatal(err)
	}
	if !er.Verified || !reflect.DeepEqual(er.Causes, causesJSON(direct.Causes)) {
		t.Fatalf("certain explain = %+v, direct causes = %v", er, direct.Causes)
	}
	if err := eng.Verify(geom.Point(q), resultFromResponse(&er)); err != nil {
		t.Fatalf("client-side certain verify: %v", err)
	}

	var rr RepairResponse
	c.post("/v1/repair", &RepairRequest{Dataset: "cert", Q: q, An: 0}, &rr, http.StatusOK)
	directRep, err := eng.SuggestRepair(0, geom.Point(q), causality.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr.Removed, directRep.Removed) || !rr.Exact {
		t.Fatalf("certain repair = %+v, direct = %+v", rr, directRep)
	}
}

func TestServerEndToEndPDF(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	specs := []PDFObjectSpec{
		{Kind: "uniform", Min: []float64{8, 8}, Max: []float64{9, 9}},    // blocked by 1
		{Kind: "uniform", Min: []float64{2, 2}, Max: []float64{3, 3}},    // blocker
		{Kind: "gaussian", Min: []float64{-9, 4}, Max: []float64{-7, 6}}, // independent
	}
	var info DatasetInfo
	c.post("/v1/datasets", &DatasetRequest{Name: "pdf", Model: ModelPDF, PDFObjects: specs}, &info, http.StatusCreated)
	if info.Model != ModelPDF || info.Size != 3 {
		t.Fatalf("register info = %+v", info)
	}

	q := []float64{0, 0}
	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "pdf", Q: q, Alpha: 0.5, QuadNodes: 4}, &qr, http.StatusOK)
	for _, id := range qr.Answers {
		if id == 0 {
			t.Fatalf("blocked pdf object in answers: %v", qr.Answers)
		}
	}

	var er ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "pdf", Q: q, An: 0, Alpha: 0.5,
		Options: OptionsSpec{QuadNodes: 4}}, &er, http.StatusOK)
	if len(er.Causes) == 0 || er.Causes[0].ID != 1 {
		t.Fatalf("pdf explain causes = %v, want object 1 as cause", er.Causes)
	}

	// Verify and repair run on the pdf model too — the quadrature-backed
	// Definition-1 audit re-checks the explanation, and the minimal repair
	// removes the blocker.
	c.post("/v1/explain", &ExplainRequest{Dataset: "pdf", Q: q, An: 0, Alpha: 0.5, Verify: true,
		Options: OptionsSpec{QuadNodes: 4}}, &er, http.StatusOK)
	if !er.Verified {
		t.Fatal("pdf explanation not marked verified")
	}
	var rr RepairResponse
	c.post("/v1/repair", &RepairRequest{Dataset: "pdf", Q: q, An: 0, Alpha: 0.5,
		Options: OptionsSpec{QuadNodes: 4}}, &rr, http.StatusOK)
	if len(rr.Removed) != 1 || rr.Removed[0] != 1 {
		t.Fatalf("pdf repair removed %v, want the blocker [1]", rr.Removed)
	}
	if rr.NewPr < 0.5 {
		t.Fatalf("pdf repair NewPr = %g, want >= alpha", rr.NewPr)
	}
}

// --- cache invariance --------------------------------------------------

// TestServerCacheInvariance asserts the core cache contract: a cached
// explanation is byte-identical to a freshly computed one, and both pass
// the library's independent verifier.
func TestServerCacheInvariance(t *testing.T) {
	w := sampleWorkload(t)
	c := newTestClient(t, New(Config{Workers: 4, CacheSize: 128}))
	c.registerSample("lUrU", w.ds)

	req := &ExplainRequest{Dataset: "lUrU", Q: w.q, An: w.ids[1], Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}, Verify: true}

	resp1, body1 := c.do(http.MethodPost, "/v1/explain", req)
	resp2, body2 := c.do(http.MethodPost, "/v1/explain", req)
	fresh := *req
	fresh.NoCache = true
	resp3, body3 := c.do(http.MethodPost, "/v1/explain", &fresh)

	for i, resp := range []*http.Response{resp1, resp2, resp3} {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i+1, resp.StatusCode)
		}
	}
	if got := resp1.Header.Get(headerCache); got != "miss" {
		t.Fatalf("request 1 cache header = %q, want miss", got)
	}
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("request 2 cache header = %q, want hit", got)
	}
	if got := resp3.Header.Get(headerCache); got != "bypass" {
		t.Fatalf("request 3 cache header = %q, want bypass", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from fresh:\n%s\n%s", body1, body2)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatalf("cache-bypassing response differs:\n%s\n%s", body1, body3)
	}

	for i, body := range [][]byte{body1, body2} {
		var er ExplainResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if !er.Verified {
			t.Fatalf("response %d not server-verified", i+1)
		}
		if err := w.eng.Verify(w.q, 0.5, resultFromResponse(&er)); err != nil {
			t.Fatalf("response %d fails client-side verify: %v", i+1, err)
		}
	}
}

// --- registry lifecycle and error paths --------------------------------

func TestServerDatasetLifecycleAndErrors(t *testing.T) {
	w := sampleWorkload(t)
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	c.registerSample("a", w.ds)

	var list []DatasetInfo
	resp, raw := c.do(http.MethodGet, "/v1/datasets", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &list); err != nil || len(list) != 1 || list[0].Name != "a" {
		t.Fatalf("list = %s (err %v)", raw, err)
	}

	// Replacing a dataset bumps its generation.
	gen1 := list[0].Generation
	info2 := c.registerSample("a", w.ds)
	if info2.Generation <= gen1 {
		t.Fatalf("generation after replacement = %d, want > %d", info2.Generation, gen1)
	}

	if resp, _ := c.do(http.MethodDelete, "/v1/datasets/a", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if resp, _ := c.do(http.MethodDelete, "/v1/datasets/a", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d", resp.StatusCode)
	}

	// Unknown dataset, dimension mismatch, bad alpha, answer object,
	// unknown object.
	c.post("/v1/explain", &ExplainRequest{Dataset: "nope", Q: w.q, An: 0, Alpha: 0.5}, nil, http.StatusNotFound)
	c.registerSample("a", w.ds)
	c.post("/v1/explain", &ExplainRequest{Dataset: "a", Q: []float64{1, 2, 3}, An: 0, Alpha: 0.5}, nil, http.StatusBadRequest)
	c.post("/v1/explain", &ExplainRequest{Dataset: "a", Q: w.q, An: 0, Alpha: 1.5}, nil, http.StatusBadRequest)
	answers := w.eng.ProbabilisticReverseSkyline(w.q, 0.5)
	if len(answers) > 0 {
		c.post("/v1/explain", &ExplainRequest{Dataset: "a", Q: w.q, An: answers[0], Alpha: 0.5},
			nil, http.StatusUnprocessableEntity)
	}
	c.post("/v1/explain", &ExplainRequest{Dataset: "a", Q: w.q, An: 10 * w.ds.Len(), Alpha: 0.5},
		nil, http.StatusNotFound)

	// Health endpoint.
	var health HealthResponse
	resp, raw = c.do(http.MethodGet, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &health); err != nil || health.Status != "ok" || health.Datasets != 1 {
		t.Fatalf("healthz = %s (err %v)", raw, err)
	}
}

// TestServerCSVRegistration uploads through the CLI's CSV formats.
func TestServerCSVRegistration(t *testing.T) {
	w := sampleWorkload(t)
	var buf bytes.Buffer
	if err := dataset.SaveUncertainCSV(&buf, w.ds); err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	var info DatasetInfo
	c.post("/v1/datasets", &DatasetRequest{Name: "csv", Model: "uncertain", CSV: buf.String()}, &info, http.StatusCreated)
	if info.Size != w.ds.Len() || info.Model != ModelSample {
		t.Fatalf("csv register info = %+v", info)
	}

	var er ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "csv", Q: w.q, An: w.ids[0], Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}}, &er, http.StatusOK)
	direct, err := w.eng.Explain(w.ids[0], w.q, 0.5, causality.Options{MaxCandidates: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(er.Causes, causesJSON(direct.Causes)) {
		t.Fatalf("csv-loaded explain differs: %v vs %v", er.Causes, causesJSON(direct.Causes))
	}
}

func TestServerRejectsBadRegistrations(t *testing.T) {
	c := newTestClient(t, New(Config{}))
	bad := []*DatasetRequest{
		{Name: "", Model: ModelCertain, Points: [][]float64{{1, 2}}},
		{Name: "x", Model: "wat", Points: [][]float64{{1, 2}}},
		{Name: "x", Model: ModelCertain},
		{Name: "x", Model: ModelSample},
		{Name: "x", Model: ModelPDF},
		{Name: "x", Model: ModelPDF, CSV: "1,2"},
		{Name: "x", Model: ModelCertain, Points: [][]float64{{1, 2}, {1}}},
		{Name: "x", Model: ModelSample, Objects: []ObjectSpec{{Samples: []SampleSpec{{P: 0.5, Loc: []float64{1, 2}}}}}},
		{Name: "x", Model: ModelPDF, PDFObjects: []PDFObjectSpec{{Kind: "uniform", Min: []float64{1}, Max: []float64{1, 2}}}},
		{Name: "x", Model: ModelPDF, PDFObjects: []PDFObjectSpec{{Kind: "wat", Min: []float64{1, 1}, Max: []float64{2, 2}}}},
	}
	for i, req := range bad {
		if resp, raw := c.do(http.MethodPost, "/v1/datasets", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad registration %d: status %d (body %s)", i, resp.StatusCode, raw)
		}
	}
}
