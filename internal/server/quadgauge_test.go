package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/crsky/crsky/internal/uncertain"
)

// TestStatsQuadratureGauge pins the /v1/stats quadrature gauge: repeated
// pdf queries (bypassing the result cache) must be served from the cubature
// memo, and the gauge must report the hits.
func TestStatsQuadratureGauge(t *testing.T) {
	uncertain.ResetQuadMemo()
	defer uncertain.ResetQuadMemo()

	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	specs := []PDFObjectSpec{
		{Kind: "uniform", Min: []float64{8, 8}, Max: []float64{9, 9}},
		{Kind: "uniform", Min: []float64{2, 2}, Max: []float64{3, 3}},
		{Kind: "gaussian", Min: []float64{-9, 4}, Max: []float64{-7, 6}},
	}
	c.post("/v1/datasets", &DatasetRequest{Name: "pdf", Model: ModelPDF, PDFObjects: specs},
		nil, http.StatusCreated)

	readStats := func() StatsResponse {
		resp, raw := c.do(http.MethodGet, "/v1/stats", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/stats: status %d (%s)", resp.StatusCode, raw)
		}
		var st StatsResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("stats payload: %v (%s)", err, raw)
		}
		return st
	}

	query := func() {
		c.post("/v1/query", &QueryRequest{Dataset: "pdf", Q: []float64{0, 0}, Alpha: 0.5,
			QuadNodes: 4, NoCache: true}, nil, http.StatusOK)
	}

	query()
	first := readStats()
	if first.Quadrature.Misses == 0 {
		t.Fatalf("no memo misses after the first pdf query: %+v", first.Quadrature)
	}
	if first.Quadrature.NodeCap != uncertain.DefaultQuadMemoNodeCap {
		t.Fatalf("gauge node cap = %d, want %d", first.Quadrature.NodeCap, uncertain.DefaultQuadMemoNodeCap)
	}

	query()
	second := readStats()
	if second.Quadrature.Hits <= first.Quadrature.Hits {
		t.Fatalf("repeated query gained no memo hits: %+v -> %+v", first.Quadrature, second.Quadrature)
	}
	if second.Quadrature.Misses != first.Quadrature.Misses {
		t.Fatalf("repeated query re-derived quadrature rules: %+v -> %+v", first.Quadrature, second.Quadrature)
	}
	if second.Quadrature.HitRate <= 0 {
		t.Fatalf("hit rate not surfaced: %+v", second.Quadrature)
	}
}
