// Package server implements crskyd, the long-lived explanation service
// over the crsky engines: an HTTP/JSON API for dataset registration,
// (probabilistic) reverse skyline queries, causality/responsibility
// explanations of non-answers, and minimal repairs.
//
// The serving architecture is built for heavy concurrent traffic:
//
//   - a registry of immutable, index-warmed per-dataset engines that any
//     number of requests read concurrently;
//   - a bounded worker pool so expensive Explain refinements (worst-case
//     exponential, Theorem 1) cannot starve the process;
//   - an LRU result cache keyed by (dataset, generation, model, q, an,
//     α, options);
//   - singleflight deduplication so identical in-flight requests are
//     computed once and share the result;
//   - /healthz and /v1/stats surfacing engine node accesses, cache hit
//     rates, deduplication counts, and in-flight load.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/faultinject"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/stats"
	"github.com/crsky/crsky/internal/store"
	"github.com/crsky/crsky/internal/uncertain"
	"github.com/crsky/crsky/internal/watch"
)

// Cache/flight response headers: X-Crsky-Cache is "hit", "miss", or
// "bypass" (NoCache requests); X-Crsky-Flight is "leader" or "shared" on
// computed responses. Keeping these out of the body keeps a cached
// response byte-identical to the computation that seeded it.
const (
	headerCache  = "X-Crsky-Cache"
	headerFlight = "X-Crsky-Flight"
)

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// Workers bounds concurrently executing compute requests (default
	// GOMAXPROCS).
	Workers int
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// SlowQueryThreshold enables the structured slow-query log: requests
	// slower than this are written to SlowQueryLog as one JSON line each,
	// stage trace included. Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines (required when
	// SlowQueryThreshold > 0; typically os.Stderr or a log file).
	SlowQueryLog io.Writer
	// MaxQueue is the admission controller's queue-depth budget on the
	// exact pool (default Workers × 8; the per-class thresholds are
	// fractions of it — see queueCap). Requests beyond their class's
	// threshold are shed with 503 + Retry-After instead of queueing.
	MaxQueue int
	// ApproxWorkers sizes the reserved approximate-tier pool (default
	// max(1, Workers/4)). The approximate Monte Carlo path runs on these
	// slots, so degraded answers keep flowing when the exact pool is
	// saturated.
	ApproxWorkers int
	// ApproxSeed seeds the Monte Carlo approximate tier (default 1): with
	// a fixed seed, identical approximate requests return bit-identical
	// estimates, which conformance checks rely on.
	ApproxSeed int64
	// Store, when set, makes dataset registrations durable: register and
	// remove write through to the store's WAL, and LoadFromStore rebuilds
	// the recovered datasets at startup. Nil keeps the registry purely
	// in-memory (tests, throwaway servers).
	Store *store.Store
	// Faults installs a fault injector on the worker pools (tests and the
	// load harness only; nil in production). Injected slot delays simulate
	// slow storage or noisy neighbors.
	Faults *faultinject.Injector
	// WrapEngine, when set, decorates every engine at registration (tests
	// only; faultinject.Wrap is the intended value).
	WrapEngine func(crsky.Explainer) crsky.Explainer
}

func (c *Config) fillDefaults() {
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxQueue <= 0 {
		w := c.Workers
		if w <= 0 {
			w = 1
		}
		c.MaxQueue = w * 8
	}
	if c.ApproxWorkers <= 0 {
		c.ApproxWorkers = c.Workers / 4
		if c.ApproxWorkers < 1 {
			c.ApproxWorkers = 1
		}
	}
	if c.ApproxSeed == 0 {
		c.ApproxSeed = 1
	}
}

// Server is the crskyd HTTP service. Create with New, expose with
// Handler, and serve with net/http.
type Server struct {
	cfg     Config
	reg     *registry
	cache   *lruCache
	flights *flightGroup
	pool    *workerPool
	// approxPool is the small reserved slot pool of the degraded tier:
	// approximate Monte Carlo queries run here, so exact-pool saturation
	// never starves them.
	approxPool *workerPool
	mux        *http.ServeMux
	start      time.Time

	// Admission/degradation state: draining flips on BeginDrain and makes
	// admission reject everything; drainCtx cancels every running
	// computation when the drain grace expires.
	draining    atomic.Bool
	drainCtx    context.Context
	drainCancel context.CancelFunc

	shedBatch, shedExplain, shedQuery stats.Counter
	approxAnswers                     stats.Counter
	panics                            stats.Counter
	uploadRejected                    stats.Counter

	// reqHist is the route × dataset-model × outcome latency histogram
	// family behind /metrics; slow is the structured slow-query log (nil
	// when disabled).
	reqHist *obs.HistogramVec
	slow    *obs.SlowLog

	reqQuery, reqExplain, reqRepair, reqErrors stats.Counter

	// Explanation-work gauges, accumulated per computed (non-cached)
	// explanation inside the worker pool.
	explainSubsets, explainGreedySeeds, explainGreedyHits stats.Counter
	explainFilterIO, explainComputed                      stats.Counter

	// watch is the /v2/watch subscription hub; watchReeval is the latency
	// histogram of one post-mutation re-evaluation round.
	watch       *watch.Hub
	watchReeval obs.Histogram

	// mutations counts committed object mutations, keyed "op|model" (the
	// six combinations are pre-seeded in New, so Inc never races a map
	// write).
	mutations map[string]*stats.Counter

	// computeHook, when set, runs inside every pooled computation before
	// the engine call, receiving the context the engine will poll. Tests
	// use it to hold computations open, make singleflight deduplication
	// deterministic, and observe cancellation without racing it.
	computeHook func(context.Context)
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:        cfg,
		reg:        newRegistry(cfg.WrapEngine, cfg.Store),
		cache:      newLRUCache(cfg.CacheSize),
		flights:    newFlightGroup(),
		pool:       newWorkerPool(cfg.Workers),
		approxPool: newWorkerPool(cfg.ApproxWorkers),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reqHist:    obs.NewHistogramVec("route", "model", "outcome"),
		slow:       obs.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQueryThreshold),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.watch = watch.NewHub(s.reevalWatch)
	s.mutations = make(map[string]*stats.Counter)
	for _, op := range []string{store.MutInsert, store.MutDelete} {
		for _, model := range []string{ModelCertain, ModelSample, ModelPDF} {
			s.mutations[op+"|"+model] = &stats.Counter{}
		}
	}
	if cfg.Faults != nil {
		s.pool.slotDelay = cfg.Faults.SlotDelay
		s.approxPool.slotDelay = cfg.Faults.SlotDelay
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	// Every /v1/* and /v2/* route goes through the instrument middleware:
	// latency histogram (route × model × outcome), optional ?trace=1 stage
	// trace, slow-query log. The route string is fixed at registration
	// because the middleware runs outside the mux's pattern matching.
	s.mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/datasets", s.instrument("/v1/datasets", s.handleDatasetRegister))
	s.mux.HandleFunc("GET /v1/datasets", s.instrument("/v1/datasets", s.handleDatasetList))
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.instrument("/v1/datasets/{name}", s.handleDatasetGet))
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.instrument("/v1/datasets/{name}", s.handleDatasetDelete))
	s.mux.HandleFunc("POST /v1/query", s.instrument("/v1/query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/explain", s.instrument("/v1/explain", s.handleExplain))
	s.mux.HandleFunc("POST /v1/repair", s.instrument("/v1/repair", s.handleRepair))
	// v2: batch, NDJSON, live request context (deadline via ?timeout=,
	// pool slots released on client disconnect). The v1 handlers delegate
	// to the same interface-dispatched compute core.
	s.mux.HandleFunc("POST /v2/query", s.instrument("/v2/query", s.handleQueryV2))
	s.mux.HandleFunc("POST /v2/explain", s.instrument("/v2/explain", s.handleExplainV2))
	// Dynamic data plane: durable copy-on-write object mutations and the
	// non-answer subscription stream they feed.
	s.mux.HandleFunc("POST /v2/datasets/{name}/objects",
		s.instrument("/v2/datasets/{name}/objects", s.handleObjectInsert))
	s.mux.HandleFunc("DELETE /v2/datasets/{name}/objects/{id}",
		s.instrument("/v2/datasets/{name}/objects/{id}", s.handleObjectDelete))
	s.mux.HandleFunc("POST /v2/watch", s.instrument("/v2/watch", s.handleWatch))
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Register installs a dataset programmatically — the same code path as
// POST /v1/datasets. Used for startup preloads and embedded servers.
func (s *Server) Register(req *DatasetRequest) (DatasetInfo, error) {
	ent, err := s.reg.register(req)
	if err != nil {
		return DatasetInfo{}, err
	}
	s.watch.DatasetReset(ent.name, ent.gen)
	return ent.info(), nil
}

// LoadFromStore rebuilds and installs a warmed engine for every dataset
// the configured store recovered. A payload that passed its checksums but
// fails to decode or build is quarantined (moved to corrupt/, logged out
// of the WAL) and the load continues: the daemon boots degraded on the
// healthy datasets instead of refusing to start. Returns the number of
// datasets installed and the names quarantined.
func (s *Server) LoadFromStore() (loaded int, quarantined []string, err error) {
	if s.cfg.Store == nil {
		return 0, nil, nil
	}
	for _, d := range s.cfg.Store.Datasets() {
		if ierr := s.reg.installStored(d); ierr != nil {
			_ = s.cfg.Store.Quarantine(d.Name, ierr.Error())
			quarantined = append(quarantined, d.Name)
			continue
		}
		loaded++
	}
	return loaded, quarantined, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Datasets:      s.reg.count(),
	}
	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		sh := &StoreHealth{CorruptTotal: ss.CorruptTotal}
		for _, q := range ss.Quarantined {
			sh.Quarantined = append(sh.Quarantined, q.Path)
		}
		if ss.CorruptTotal > 0 {
			// Degraded, not down: the healthy datasets keep serving, but
			// operators must know data was quarantined and run fsck.
			resp.Status = "degraded"
		}
		resp.Store = sh
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	quad := uncertain.QuadMemoMetrics()
	var storeStats *store.Stats
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		storeStats = &ss
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Store:         storeStats,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Datasets:      s.reg.list(),
		Cache:         s.cache.Stats(),
		Flights:       s.flights.Stats(),
		Pool:          s.pool.Stats(),
		ApproxPool:    s.approxPool.Stats(),
		Admission: AdmissionStats{
			MaxQueue:    s.cfg.MaxQueue,
			EstWaitMs:   obs.MsRound(s.estWait().Seconds()),
			ShedBatch:   s.shedBatch.Value(),
			ShedExplain: s.shedExplain.Value(),
			ShedQuery:   s.shedQuery.Value(),
			Draining:    s.draining.Load(),
		},
		Quadrature: QuadratureStats{QuadMemoStats: quad, HitRate: quad.HitRate()},
		Explain: ExplainStats{
			SubsetsExamined:      s.explainSubsets.Value(),
			GreedySeeds:          s.explainGreedySeeds.Value(),
			GreedyHits:           s.explainGreedyHits.Value(),
			GreedyHitRate:        stats.HitRate(s.explainGreedyHits.Value(), s.explainGreedySeeds.Value()-s.explainGreedyHits.Value()),
			FilterNodeAccesses:   s.explainFilterIO.Value(),
			ComputedExplanations: s.explainComputed.Value(),
		},
		Watch: s.watch.Stats(),
		Requests: RequestStats{
			Query:          s.reqQuery.Value(),
			Explain:        s.reqExplain.Value(),
			Repair:         s.reqRepair.Value(),
			Errors:         s.reqErrors.Value(),
			Approx:         s.approxAnswers.Value(),
			Panics:         s.panics.Value(),
			UploadRejected: s.uploadRejected.Value(),
		},
	})
}

// --- shared plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.reqErrors.Inc()
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decodeJSON parses the request body into v with the configured size cap.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	return dec.Decode(v)
}

// writeDecodeError renders a request-body decode failure: bodies over the
// size cap get the proper 413 (with the limit spelled out, so clients can
// fix their payload instead of guessing) and a rejection counter tick;
// everything else is a plain 400.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.uploadRejected.Inc()
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
}

// statusFor maps engine errors to HTTP statuses: bad references are 404,
// semantic rejections (the object is an answer, budget exhaustion) are
// 422, injected infrastructure faults are 500, everything else is a plain
// 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, causality.ErrBadObject):
		return http.StatusNotFound
	case errors.Is(err, crsky.ErrUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, faultinject.ErrInjected):
		return http.StatusInternalServerError
	case errors.Is(err, causality.ErrNotNonAnswer),
		errors.Is(err, causality.ErrTooManyCandidates),
		errors.Is(err, causality.ErrSubsetBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// pointKey canonically encodes a query point for cache keys.
func pointKey(q geom.Point) string {
	var b strings.Builder
	for i, v := range q {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}
