package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// explainGaugeObjects builds a small sample dataset with a guaranteed
// non-answer (object 0) whose explanation needs real refinement work: two
// partial blockers that each dominate the query w.r.t. an in only some
// worlds, so contingency search runs instead of the α=1 fast path.
func explainGaugeObjects() []ObjectSpec {
	obj := func(locs ...[]float64) ObjectSpec {
		p := 1 / float64(len(locs))
		var s []SampleSpec
		for _, l := range locs {
			s = append(s, SampleSpec{P: p, Loc: l})
		}
		return ObjectSpec{Samples: s}
	}
	return []ObjectSpec{
		obj([]float64{20, 20}, []float64{24, 24}),   // an
		obj([]float64{10, 10}, []float64{100, 100}), // partial blocker
		obj([]float64{15, 15}, []float64{-90, 90}),  // partial blocker
		obj([]float64{12, 11}, []float64{80, -70}),  // partial blocker
		obj([]float64{-50, -50}),                    // bystander
	}
}

// TestStatsExplainGauges pins the /v1/stats explanation-work gauges: a
// computed explanation must surface its subset verifications, greedy
// incumbent seeds/hits, and candidate-retrieval node accesses, while cache
// hits must not double-count any of them.
func TestStatsExplainGauges(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))
	c.post("/v1/datasets", &DatasetRequest{Name: "d", Model: ModelSample, Objects: explainGaugeObjects()},
		nil, http.StatusCreated)

	readStats := func() StatsResponse {
		resp, raw := c.do(http.MethodGet, "/v1/stats", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/stats: status %d (%s)", resp.StatusCode, raw)
		}
		var st StatsResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("stats payload: %v (%s)", err, raw)
		}
		return st
	}

	before := readStats()
	if before.Explain.ComputedExplanations != 0 {
		t.Fatalf("fresh server reports computed explanations: %+v", before.Explain)
	}

	var er ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "d", Q: []float64{0, 0}, An: 0, Alpha: 0.6},
		&er, http.StatusOK)
	if len(er.Causes) == 0 {
		t.Fatalf("explanation found no causes: %+v", er)
	}

	after := readStats()
	if after.Explain.ComputedExplanations != 1 {
		t.Fatalf("computed explanations = %d, want 1", after.Explain.ComputedExplanations)
	}
	if after.Explain.SubsetsExamined != er.SubsetsExamined || er.SubsetsExamined == 0 {
		t.Fatalf("gauge subsets %d, response subsets %d (want equal and non-zero)",
			after.Explain.SubsetsExamined, er.SubsetsExamined)
	}
	if after.Explain.GreedySeeds != er.GreedySeeds || er.GreedySeeds == 0 {
		t.Fatalf("gauge greedy seeds %d, response %d (want equal and non-zero)",
			after.Explain.GreedySeeds, er.GreedySeeds)
	}
	if after.Explain.GreedyHits != er.GreedyHits {
		t.Fatalf("gauge greedy hits %d, response %d", after.Explain.GreedyHits, er.GreedyHits)
	}
	if after.Explain.FilterNodeAccesses != er.FilterNodeAccesses || er.FilterNodeAccesses == 0 {
		t.Fatalf("gauge filter IO %d, response %d (want equal and non-zero)",
			after.Explain.FilterNodeAccesses, er.FilterNodeAccesses)
	}
	if after.Explain.GreedyHitRate < 0 || after.Explain.GreedyHitRate > 1 {
		t.Fatalf("greedy hit rate out of range: %+v", after.Explain)
	}

	// A cache hit must serve the same payload without re-counting work.
	var cached ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "d", Q: []float64{0, 0}, An: 0, Alpha: 0.6},
		&cached, http.StatusOK)
	if cached.SubsetsExamined != er.SubsetsExamined {
		t.Fatalf("cached response diverged: %+v vs %+v", cached, er)
	}
	final := readStats()
	if final.Explain != after.Explain {
		t.Fatalf("cache hit changed the work gauges: %+v -> %+v", after.Explain, final.Explain)
	}

	// An ablated request is a different cache key and computes again.
	c.post("/v1/explain", &ExplainRequest{Dataset: "d", Q: []float64{0, 0}, An: 0, Alpha: 0.6,
		Options: OptionsSpec{NoGreedySeed: true, NoAdmissible: true, NoMassOrder: true}},
		&er, http.StatusOK)
	ablated := readStats()
	if ablated.Explain.ComputedExplanations != 2 {
		t.Fatalf("ablated request did not compute: %+v", ablated.Explain)
	}
	if ablated.Explain.GreedySeeds != final.Explain.GreedySeeds {
		t.Fatalf("NoGreedySeed request still seeded incumbents: %+v -> %+v",
			final.Explain, ablated.Explain)
	}
}
