package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/store"
)

// The durable payload of a dataset is its canonical engine input, not the
// registration request: CSV uploads are parsed once and stored in the
// checksummed gob forms of internal/dataset (certain and sample models) or
// as a gob of the validated PDF specs. Decoding a payload and rebuilding
// the engine therefore reproduces the original registration bit for bit —
// the recovery-conformance tests depend on that.

// encodeStorePayload validates req exactly like registration does and
// renders the payload Put writes through the store.
func encodeStorePayload(req *DatasetRequest) (model string, data []byte, err error) {
	model = req.Model
	if model == "uncertain" {
		model = ModelSample
	}
	var buf bytes.Buffer
	switch model {
	case ModelCertain:
		pts, err := certainPoints(req)
		if err != nil {
			return "", nil, err
		}
		ds, err := dataset.NewCertain(pts)
		if err != nil {
			return "", nil, err
		}
		if err := dataset.SaveCertainGob(&buf, ds); err != nil {
			return "", nil, err
		}
	case ModelSample:
		objs, err := sampleObjects(req)
		if err != nil {
			return "", nil, err
		}
		ds, err := dataset.NewUncertain(objs)
		if err != nil {
			return "", nil, err
		}
		if err := dataset.SaveUncertainGob(&buf, ds); err != nil {
			return "", nil, err
		}
	case ModelPDF:
		if _, err := pdfObjects(req); err != nil {
			return "", nil, err
		}
		if err := gob.NewEncoder(&buf).Encode(req.PDFObjects); err != nil {
			return "", nil, fmt.Errorf("encode pdf specs: %w", err)
		}
	default:
		return "", nil, fmt.Errorf("unknown model %q (want certain, sample, or pdf)", req.Model)
	}
	return model, buf.Bytes(), nil
}

// decodeStoreDataset turns a recovered payload back into the registration
// request buildEntry consumes. The checksum layer already vouched for the
// bytes; failures here mean the payload is semantically bad (wrong model
// tag, undecodable gob) and the caller should quarantine it.
func decodeStoreDataset(d store.Dataset) (*DatasetRequest, error) {
	req := &DatasetRequest{Name: d.Name, Model: d.Model}
	switch d.Model {
	case ModelCertain:
		ds, err := dataset.LoadCertainGob(bytes.NewReader(d.Data))
		if err != nil {
			return nil, err
		}
		req.Points = make([][]float64, len(ds.Points))
		for i, p := range ds.Points {
			req.Points[i] = p
		}
	case ModelSample:
		ds, err := dataset.LoadUncertainGob(bytes.NewReader(d.Data))
		if err != nil {
			return nil, err
		}
		req.Objects = make([]ObjectSpec, len(ds.Objects))
		for i, o := range ds.Objects {
			samples := make([]SampleSpec, len(o.Samples))
			for j, s := range o.Samples {
				samples[j] = SampleSpec{P: s.P, Loc: s.Loc}
			}
			req.Objects[i] = ObjectSpec{Samples: samples}
		}
	case ModelPDF:
		if err := gob.NewDecoder(bytes.NewReader(d.Data)).Decode(&req.PDFObjects); err != nil {
			return nil, fmt.Errorf("decode pdf specs: %w", err)
		}
	default:
		return nil, fmt.Errorf("stored dataset %q has unknown model %q", d.Name, d.Model)
	}
	if strings.TrimSpace(req.Name) == "" {
		return nil, fmt.Errorf("stored dataset has empty name")
	}
	return req, nil
}
