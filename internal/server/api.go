package server

import (
	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/store"
	"github.com/crsky/crsky/internal/uncertain"
	"github.com/crsky/crsky/internal/watch"
)

// Data models served by the registry. "uncertain" is accepted as an alias
// for "sample" on upload.
const (
	ModelCertain = "certain" // plain points, reverse skyline semantics
	ModelSample  = "sample"  // discrete-sample uncertain objects
	ModelPDF     = "pdf"     // continuous uniform/Gaussian pdf objects
)

// SampleSpec is one possible location of an uncertain object with its
// appearance probability.
type SampleSpec struct {
	P   float64   `json:"p"`
	Loc []float64 `json:"loc"`
}

// ObjectSpec is a discrete-sample uncertain object. Object IDs are
// positional: the i-th spec becomes object i.
type ObjectSpec struct {
	Samples []SampleSpec `json:"samples"`
}

// PDFObjectSpec is a continuous-model uncertain object. Kind is "uniform"
// or "gaussian"; Mean and Sigma are optional for gaussian (defaults:
// region center, quarter side).
type PDFObjectSpec struct {
	Kind  string    `json:"kind"`
	Min   []float64 `json:"min"`
	Max   []float64 `json:"max"`
	Mean  []float64 `json:"mean,omitempty"`
	Sigma []float64 `json:"sigma,omitempty"`
}

// DatasetRequest registers (or replaces) a named dataset. Exactly one of
// CSV, Points, Objects, or PDFObjects must be set, matching Model:
//
//   - certain: Points, or CSV in the crsky certain format (one row per
//     point);
//   - sample: Objects, or CSV in the crsky uncertain format (one row per
//     sample: id,prob,coords...);
//   - pdf: PDFObjects.
type DatasetRequest struct {
	Name       string          `json:"name"`
	Model      string          `json:"model"`
	CSV        string          `json:"csv,omitempty"`
	Points     [][]float64     `json:"points,omitempty"`
	Objects    []ObjectSpec    `json:"objects,omitempty"`
	PDFObjects []PDFObjectSpec `json:"pdfObjects,omitempty"`
}

// DatasetInfo describes a registered dataset.
type DatasetInfo struct {
	Name       string `json:"name"`
	Model      string `json:"model"`
	Size       int    `json:"size"`
	Dims       int    `json:"dims"`
	Generation uint64 `json:"generation"`
	// NodeAccesses is the engine's simulated I/O since registration —
	// the paper's primary cost metric, surfaced per dataset.
	NodeAccesses int64 `json:"nodeAccesses"`
}

// OptionsSpec tunes the refinement stage of explain/repair requests; the
// zero value selects the library defaults. The No* switches ablate the
// branch-and-bound optimizations for benchmarking — results are identical,
// only the work differs (and the cache keys them separately).
//
// MaxSubsets counts refinement evaluation units — leaf verifications,
// pruned branch points, and the greedy incumbent pass's probability
// evaluations — so it bounds the whole refinement's latency. Before the
// branch-and-bound rework only leaf verifications were charged; budgets
// calibrated against the old counting trip earlier now and may need
// raising by a small factor.
type OptionsSpec struct {
	MaxCandidates int   `json:"maxCandidates,omitempty"`
	MaxSubsets    int64 `json:"maxSubsets,omitempty"`
	QuadNodes     int   `json:"quadNodes,omitempty"`
	Parallel      int   `json:"parallel,omitempty"`
	NoGreedySeed  bool  `json:"noGreedySeed,omitempty"`
	NoAdmissible  bool  `json:"noAdmissible,omitempty"`
	NoMassOrder   bool  `json:"noMassOrder,omitempty"`
}

func (o OptionsSpec) toOptions() causality.Options {
	return causality.Options{
		MaxCandidates: o.MaxCandidates,
		MaxSubsets:    o.MaxSubsets,
		QuadNodes:     o.QuadNodes,
		Parallel:      o.Parallel,
		NoGreedySeed:  o.NoGreedySeed,
		NoAdmissible:  o.NoAdmissible,
		NoMassOrder:   o.NoMassOrder,
	}
}

// QueryRequest computes the (probabilistic) reverse skyline of Q. Alpha is
// the probability threshold for the sample and pdf models and is ignored
// for certain data. QuadNodes tunes pdf quadrature (0 = default).
type QueryRequest struct {
	Dataset   string    `json:"dataset"`
	Q         []float64 `json:"q"`
	Alpha     float64   `json:"alpha,omitempty"`
	QuadNodes int       `json:"quadNodes,omitempty"`
	NoCache   bool      `json:"noCache,omitempty"`
	// Approx selects the degraded Monte Carlo tier: "" or "never" is exact
	// only; "auto" falls back to the approximate tier when admission sheds
	// the request or the exact attempt times out; "always" skips the exact
	// tier entirely. Approximate responses carry approx: true with
	// per-object confidence intervals and are never cached.
	Approx string `json:"approx,omitempty"`
	// Epsilon and Confidence set the approximate tier's error budget
	// (defaults 0.05 at 0.95); ignored when the exact tier answers.
	Epsilon    float64 `json:"epsilon,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// QueryResponse lists the answer object IDs in ascending order. Trace is
// present only on ?trace=1 requests: the stage spans and effort counters
// of this request (cache hits show the disposition labels and no engine
// spans — the engine never ran).
type QueryResponse struct {
	Dataset string  `json:"dataset"`
	Model   string  `json:"model"`
	Alpha   float64 `json:"alpha"`
	Count   int     `json:"count"`
	Answers []int   `json:"answers"`
	// Generation is the dataset generation this answer was computed (or
	// cached) against. Under concurrent mutations the answer is exactly the
	// committed state of that generation — never a blend of two.
	Generation uint64 `json:"generation,omitempty"`
	// Approx marks a degraded-tier answer: membership was estimated by
	// Monte Carlo for the interval-carrying objects below (everything else
	// was still decided exactly by the filter bounds).
	Approx bool `json:"approx,omitempty"`
	// Intervals are the Hoeffding confidence intervals of the estimated
	// objects (ascending ID); at confidence level Confidence each interval
	// contains the true probability.
	Intervals  []crsky.ApproxInterval `json:"intervals,omitempty"`
	Epsilon    float64                `json:"epsilon,omitempty"`
	Confidence float64                `json:"confidence,omitempty"`
	// Iters is the per-object Monte Carlo iteration count used.
	Iters int            `json:"iters,omitempty"`
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// ExplainRequest asks why object An is NOT in the (probabilistic) reverse
// skyline of Q at threshold Alpha. Verify re-checks the explanation against
// Definition 1 before responding (sample and certain models only). NoCache
// bypasses the result cache for this request.
type ExplainRequest struct {
	Dataset string      `json:"dataset"`
	Q       []float64   `json:"q"`
	An      int         `json:"an"`
	Alpha   float64     `json:"alpha,omitempty"`
	Options OptionsSpec `json:"options,omitempty"`
	Verify  bool        `json:"verify,omitempty"`
	NoCache bool        `json:"noCache,omitempty"`
}

// CauseJSON is one actual cause with its responsibility and a minimum
// contingency set.
type CauseJSON struct {
	ID             int     `json:"id"`
	Responsibility float64 `json:"responsibility"`
	Contingency    []int   `json:"contingency,omitempty"`
	Counterfactual bool    `json:"counterfactual,omitempty"`
}

// ExplainResponse is the causality-and-responsibility explanation for one
// non-answer.
type ExplainResponse struct {
	Dataset         string      `json:"dataset"`
	Model           string      `json:"model"`
	NonAnswer       int         `json:"nonAnswer"`
	Pr              float64     `json:"pr"`
	Alpha           float64     `json:"alpha"`
	Candidates      int         `json:"candidates"`
	Causes          []CauseJSON `json:"causes"`
	SubsetsExamined int64       `json:"subsetsExamined,omitempty"`
	// GreedySeeds/GreedyHits report the branch-and-bound incumbent pass:
	// how many candidates got a greedy upper bound and how many of those
	// bounds were already minimum contingency sets.
	GreedySeeds int64 `json:"greedySeeds,omitempty"`
	GreedyHits  int64 `json:"greedyHits,omitempty"`
	// FilterNodeAccesses is the simulated I/O of this explanation's
	// candidate-retrieval traversal.
	FilterNodeAccesses int64 `json:"filterNodeAccesses,omitempty"`
	Verified           bool  `json:"verified,omitempty"`
	// Trace is present only on ?trace=1 requests.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func causesJSON(cs []causality.Cause) []CauseJSON {
	out := make([]CauseJSON, len(cs))
	for i, c := range cs {
		out[i] = CauseJSON{
			ID:             c.ID,
			Responsibility: c.Responsibility,
			Contingency:    c.Contingency,
			Counterfactual: c.Counterfactual,
		}
	}
	return out
}

// RepairRequest asks for a smallest set of objects whose removal turns
// non-answer An into an answer.
type RepairRequest struct {
	Dataset string      `json:"dataset"`
	Q       []float64   `json:"q"`
	An      int         `json:"an"`
	Alpha   float64     `json:"alpha,omitempty"`
	Options OptionsSpec `json:"options,omitempty"`
	NoCache bool        `json:"noCache,omitempty"`
}

// RepairResponse is the minimal intervention: deleting Removed raises
// Pr(an) to NewPr ≥ α. Exact=false marks the greedy fallback.
type RepairResponse struct {
	Dataset string  `json:"dataset"`
	Model   string  `json:"model"`
	An      int     `json:"an"`
	Alpha   float64 `json:"alpha"`
	Removed []int   `json:"removed"`
	NewPr   float64 `json:"newPr"`
	Exact   bool    `json:"exact"`
	// Trace is present only on ?trace=1 requests.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// BatchTraceItem is the final NDJSON line of a ?trace=1 batch response:
// the whole batch shares one engine call, so the stage trace is
// request-level, not per-item.
type BatchTraceItem struct {
	Trace *obs.TraceJSON `json:"trace"`
}

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// FlightStats reports request deduplication: Executed counts computations
// actually run, Deduped counts requests that shared another request's
// in-flight computation instead of starting their own.
type FlightStats struct {
	Executed int64 `json:"executed"`
	Deduped  int64 `json:"deduped"`
}

// PoolStats reports worker-pool load and saturation: QueueDepth is the
// number of requests currently waiting for a slot, and the wait
// percentiles summarize how long admission has been taking.
type PoolStats struct {
	Workers        int     `json:"workers"`
	InFlight       int64   `json:"inFlight"`
	PeakInFlight   int64   `json:"peakInFlight"`
	QueueDepth     int64   `json:"queueDepth"`
	PeakQueueDepth int64   `json:"peakQueueDepth"`
	Completed      int64   `json:"completed"`
	Canceled       int64   `json:"canceled"`
	WaitP50Ms      float64 `json:"waitP50Ms"`
	WaitP99Ms      float64 `json:"waitP99Ms"`
}

// QuadratureStats reports the process-wide pdf cubature memo: how often
// repeated queries reused a derived quadrature rule instead of re-deriving
// it, and how close the memo sits to its node-count eviction cap.
type QuadratureStats struct {
	uncertain.QuadMemoStats
	HitRate float64 `json:"hitRate"`
}

// RequestStats counts requests per compute endpoint since start. Approx
// counts degraded-tier answers served; Panics counts handler panics the
// recovery middleware converted to 500s.
type RequestStats struct {
	Query   int64 `json:"query"`
	Explain int64 `json:"explain"`
	Repair  int64 `json:"repair"`
	Errors  int64 `json:"errors"`
	Approx  int64 `json:"approx"`
	Panics  int64 `json:"panics"`
	// UploadRejected counts request bodies refused with 413 for exceeding
	// the configured size cap.
	UploadRejected int64 `json:"uploadRejected"`
}

// AdmissionStats reports the admission controller: the queue budget, the
// current estimated queue wait for a new arrival, shed counts per priority
// class, and whether the server is draining.
type AdmissionStats struct {
	MaxQueue    int     `json:"maxQueue"`
	EstWaitMs   float64 `json:"estWaitMs"`
	ShedBatch   int64   `json:"shedBatch"`
	ShedExplain int64   `json:"shedExplain"`
	ShedQuery   int64   `json:"shedQuery"`
	Draining    bool    `json:"draining"`
}

// ExplainStats aggregates refinement work across every computed (non-cached)
// explanation since start: subset verifications, the greedy incumbent pass's
// seed/hit counts, and candidate-retrieval node accesses. GreedyHitRate is
// hits/seeds — how often the incumbent was already a minimum contingency
// set and the search merely certified it.
type ExplainStats struct {
	SubsetsExamined      int64   `json:"subsetsExamined"`
	GreedySeeds          int64   `json:"greedySeeds"`
	GreedyHits           int64   `json:"greedyHits"`
	GreedyHitRate        float64 `json:"greedyHitRate"`
	FilterNodeAccesses   int64   `json:"filterNodeAccesses"`
	ComputedExplanations int64   `json:"computedExplanations"`
}

// StatsResponse is the /v1/stats payload. Store is present only when the
// server runs with a durable store.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Datasets      []DatasetInfo   `json:"datasets"`
	Cache         CacheStats      `json:"cache"`
	Flights       FlightStats     `json:"flights"`
	Pool          PoolStats       `json:"pool"`
	ApproxPool    PoolStats       `json:"approxPool"`
	Admission     AdmissionStats  `json:"admission"`
	Quadrature    QuadratureStats `json:"quadrature"`
	Explain       ExplainStats    `json:"explain"`
	Requests      RequestStats    `json:"requests"`
	Watch         watch.Stats     `json:"watch"`
	Store         *store.Stats    `json:"store,omitempty"`
}

// StoreHealth is the durability block of /healthz. CorruptTotal > 0 flips
// the overall status to "degraded": the files listed were quarantined and
// the datasets they held are not being served until an operator repairs
// the store (crskyd fsck -repair) or re-registers the data.
type StoreHealth struct {
	CorruptTotal int64    `json:"corruptTotal"`
	Quarantined  []string `json:"quarantined,omitempty"`
}

// HealthResponse is the /healthz payload. Status is "ok", or "degraded"
// when the store quarantined corrupt files (the surviving datasets keep
// serving). Store is present only when durability is enabled.
type HealthResponse struct {
	Status        string       `json:"status"`
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Datasets      int          `json:"datasets"`
	Store         *StoreHealth `json:"store,omitempty"`
}

// ErrorResponse is the uniform error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}
