package server

import (
	"errors"
	"fmt"
	"sync"

	"github.com/crsky/crsky/internal/stats"
)

// errComputePanic marks a computation that panicked; sharers of the
// flight receive it as an error while the leader's panic propagates to
// net/http's recovery.
var errComputePanic = errors.New("server: computation panicked")

// flightGroup deduplicates concurrent identical requests: while one caller
// (the leader) computes the value for a key, later callers with the same
// key block and share the leader's result instead of starting their own
// computation. Unlike the cache, entries live only while the computation
// is in flight.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	executed stats.Counter // computations actually run
	deduped  stats.Counter // callers that joined an existing flight
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers and hands every caller
// the same result. shared reports whether this caller joined another
// caller's computation.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.deduped.Inc()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	g.executed.Inc()
	// Cleanup runs even when fn panics: the flight leaves the map and
	// done closes, so sharers unblock (with errComputePanic) instead of
	// wedging the key forever, and the panic still reaches the caller.
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("%w: %v", errComputePanic, r)
			panic(r)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Stats snapshots the deduplication counters.
func (g *flightGroup) Stats() FlightStats {
	return FlightStats{Executed: g.executed.Value(), Deduped: g.deduped.Value()}
}
