package server

import (
	"context"

	"github.com/crsky/crsky/internal/stats"
)

// workerPool bounds the number of concurrently executing compute requests.
// Explain refinement is exponential in the candidate count in the worst
// case (Theorem 1); without a bound, a burst of expensive requests would
// seize every core and starve the process. Excess requests queue on the
// semaphore in FIFO-ish goroutine order and honor context cancellation
// while waiting.
type workerPool struct {
	sem chan struct{}

	inflight  stats.Gauge
	completed stats.Counter
	canceled  stats.Counter
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	return &workerPool{sem: make(chan struct{}, workers)}
}

// Do runs fn on a pool slot, waiting for one to free up. It returns
// ctx.Err() when the caller gives up (or the server shuts down) before a
// slot becomes available.
func (p *workerPool) Do(ctx context.Context, fn func() (any, error)) (any, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		p.canceled.Inc()
		return nil, ctx.Err()
	}
	p.inflight.Inc()
	defer func() {
		p.inflight.Dec()
		p.completed.Inc()
		<-p.sem
	}()
	return fn()
}

// Stats snapshots the pool gauges.
func (p *workerPool) Stats() PoolStats {
	return PoolStats{
		Workers:      cap(p.sem),
		InFlight:     p.inflight.Value(),
		PeakInFlight: p.inflight.Peak(),
		Completed:    p.completed.Value(),
		Canceled:     p.canceled.Value(),
	}
}
