package server

import (
	"context"
	"time"

	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/stats"
)

// workerPool bounds the number of concurrently executing compute requests.
// Explain refinement is exponential in the candidate count in the worst
// case (Theorem 1); without a bound, a burst of expensive requests would
// seize every core and starve the process. Excess requests queue on the
// semaphore in FIFO-ish goroutine order and honor context cancellation
// while waiting.
//
// Saturation is made visible: queued tracks the requests currently waiting
// for a slot, and wait is the log-bucketed histogram of how long they
// waited — the first metric that moves when the pool is undersized, well
// before latency percentiles drown in queueing delay.
type workerPool struct {
	sem  chan struct{}
	wait obs.Histogram

	queued    stats.Gauge
	inflight  stats.Gauge
	completed stats.Counter
	canceled  stats.Counter

	// slotDelay, when set (fault injection only), stalls each acquired
	// slot before its computation runs — simulated slow storage. The delay
	// happens inside the slot so it consumes capacity, exactly like the
	// real fault would.
	slotDelay func() time.Duration
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	return &workerPool{sem: make(chan struct{}, workers)}
}

// Do runs fn on a pool slot, waiting for one to free up. It returns
// ctx.Err() when the caller gives up (or the server shuts down) before a
// slot becomes available. The slot wait is recorded in the pool_wait
// histogram and, on traced requests, as a "pool.wait" span.
func (p *workerPool) Do(ctx context.Context, fn func() (any, error)) (any, error) {
	endWait := obs.FromContext(ctx).StartSpan("pool.wait")
	p.queued.Inc()
	start := time.Now()
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		p.queued.Dec()
		p.wait.Observe(time.Since(start))
		endWait()
		p.canceled.Inc()
		return nil, ctx.Err()
	}
	p.queued.Dec()
	p.wait.Observe(time.Since(start))
	endWait()
	p.inflight.Inc()
	defer func() {
		p.inflight.Dec()
		p.completed.Inc()
		<-p.sem
	}()
	if p.slotDelay != nil {
		if d := p.slotDelay(); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return fn()
}

// Stats snapshots the pool gauges. The wait percentiles are reported in
// milliseconds for the JSON surface; the raw histogram is exported on
// /metrics.
func (p *workerPool) Stats() PoolStats {
	ws := p.wait.Snapshot()
	return PoolStats{
		Workers:        cap(p.sem),
		InFlight:       p.inflight.Value(),
		PeakInFlight:   p.inflight.Peak(),
		QueueDepth:     p.queued.Value(),
		PeakQueueDepth: p.queued.Peak(),
		Completed:      p.completed.Value(),
		Canceled:       p.canceled.Value(),
		WaitP50Ms:      obs.MsRound(ws.P50()),
		WaitP99Ms:      obs.MsRound(ws.P99()),
	}
}
