package server

import (
	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/geom"
)

// The /v2 API is the batch, deadline-aware surface over the model-generic
// engine interface: one request carries many query points (or many
// non-answers), responses stream back as NDJSON — one JSON object per
// line, flushed as soon as that item is final, not when the batch is — and
// a `?timeout=` query parameter bounds the whole request. Unlike the /v1
// handlers, the v2 compute runs on the live request context: a client
// disconnect or an elapsed deadline cancels the engine work mid-search and
// frees the worker-pool slot.
//
// Results are cached per ITEM, under the same keys the v1 single-point
// handlers use (queryKey / explainKey): a batch warms the cache for later
// single queries, a warmed single query is one less item a later batch
// computes, and a repeated batch recomputes only the items it is missing.

// BatchQueryRequest is the body of POST /v2/query: the (probabilistic)
// reverse skyline of every point in Qs at one threshold. Alpha is ignored
// (forced to 1) for certain data; QuadNodes tunes pdf quadrature.
type BatchQueryRequest struct {
	Dataset   string      `json:"dataset"`
	Qs        [][]float64 `json:"qs"`
	Alpha     float64     `json:"alpha,omitempty"`
	QuadNodes int         `json:"quadNodes,omitempty"`
	NoCache   bool        `json:"noCache,omitempty"`
	// Approx selects the degraded Monte Carlo tier ("" / "never" / "auto" /
	// "always" — see QueryRequest.Approx). Approximate batch responses are
	// never cached, so like NoCache these three fields are delivery
	// directives excluded from the cache keys: the exact computation they
	// may fall back from is identical with or without them.
	Approx     string  `json:"approx,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// itemKeys returns one cache key per query point, in request order — the
// SAME keys the v1 single-query handler uses (see queryKey), which is
// what lets batch and single-query results share cache entries. Every
// semantically relevant field feeds the keys; NoCache and the approx trio
// are delivery directives that do not. TestV2CacheKeysCoverEveryField
// enforces the coverage by reflection.
func (r *BatchQueryRequest) itemKeys(ent *entry) []string {
	// r.Dataset (== ent.name for every resolvable request) keys the name;
	// the entry contributes the generation so a re-registered dataset
	// retires its predecessor's cached items.
	keys := make([]string, len(r.Qs))
	for i, q := range r.Qs {
		keys[i] = queryKey(r.Dataset, ent.gen, geom.Point(q), r.Alpha, r.QuadNodes)
	}
	return keys
}

// BatchQueryItem is one NDJSON line of the /v2/query response, in request
// order. Error is set only on the lines after a mid-stream engine failure:
// earlier items are already on the wire with a committed 200 by then, so
// each item the engine never finished carries the failure explicitly
// instead of being silently truncated. Approx and Intervals mirror
// QueryResponse: present only on degraded-tier items.
type BatchQueryItem struct {
	Index     int                    `json:"index"`
	Count     int                    `json:"count"`
	Answers   []int                  `json:"answers"`
	Error     string                 `json:"error,omitempty"`
	Approx    bool                   `json:"approx,omitempty"`
	Intervals []crsky.ApproxInterval `json:"intervals,omitempty"`
}

// BatchExplainItemRequest is one non-answer to explain.
type BatchExplainItemRequest struct {
	Q  []float64 `json:"q"`
	An int       `json:"an"`
}

// BatchExplainRequest is the body of POST /v2/explain: causality
// explanations for many non-answers, with per-item errors (an item that is
// actually an answer fails alone, its siblings still return). Verify
// re-checks every reported explanation — computed or cached — against
// Definition 1 before it is streamed.
type BatchExplainRequest struct {
	Dataset string                    `json:"dataset"`
	Items   []BatchExplainItemRequest `json:"items"`
	Alpha   float64                   `json:"alpha,omitempty"`
	Options OptionsSpec               `json:"options,omitempty"`
	Verify  bool                      `json:"verify,omitempty"`
	NoCache bool                      `json:"noCache,omitempty"`
	// ItemTimeout bounds each item's computation separately (a Go duration
	// string, e.g. "250ms"): an item that exceeds its own budget fails
	// alone with a per-item error line while its siblings keep computing,
	// unlike ?timeout=, which bounds — and on expiry fails — the whole
	// request. Empty means no per-item bound.
	ItemTimeout string `json:"itemTimeout,omitempty"`
}

// itemKeys mirrors BatchQueryRequest.itemKeys for /v2/explain: one
// v1-compatible key per item (see explainKey). Verify is not keyed —
// cached results are re-verified per request — and ItemTimeout is
// delivery, not semantics; NoCache is the cache directive itself.
func (r *BatchExplainRequest) itemKeys(ent *entry) []string {
	opts := r.Options.toOptions()
	keys := make([]string, len(r.Items))
	for i, it := range r.Items {
		keys[i] = explainKey(r.Dataset, ent.gen, geom.Point(it.Q), it.An, r.Alpha, opts)
	}
	return keys
}

// BatchExplainItem is one NDJSON line of the /v2/explain response, in
// request order: either an explanation or a per-item error.
type BatchExplainItem struct {
	Index   int              `json:"index"`
	Explain *ExplainResponse `json:"explain,omitempty"`
	Error   string           `json:"error,omitempty"`
}
