package server

import (
	"fmt"
	"strings"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/geom"
)

// The /v2 API is the batch, deadline-aware surface over the model-generic
// engine interface: one request carries many query points (or many
// non-answers), responses stream back as NDJSON — one JSON object per line
// — and a `?timeout=` query parameter bounds the whole request. Unlike the
// /v1 handlers, the v2 compute runs on the live request context: a client
// disconnect or an elapsed deadline cancels the engine work mid-search and
// frees the worker-pool slot.

// BatchQueryRequest is the body of POST /v2/query: the (probabilistic)
// reverse skyline of every point in Qs at one threshold. Alpha is ignored
// (forced to 1) for certain data; QuadNodes tunes pdf quadrature.
type BatchQueryRequest struct {
	Dataset   string      `json:"dataset"`
	Qs        [][]float64 `json:"qs"`
	Alpha     float64     `json:"alpha,omitempty"`
	QuadNodes int         `json:"quadNodes,omitempty"`
	NoCache   bool        `json:"noCache,omitempty"`
	// Approx selects the degraded Monte Carlo tier ("" / "never" / "auto" /
	// "always" — see QueryRequest.Approx). Approximate batch responses are
	// never cached, so like NoCache these three fields are delivery
	// directives excluded from the cache key: the exact computation they
	// may fall back from is identical with or without them.
	Approx     string  `json:"approx,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// cacheKey canonically encodes every semantically relevant field —
// including the batch shape — so two requests share a cached result
// exactly when the engine would compute the same thing. NoCache (a cache
// directive) and the request deadline (delivery, not semantics) are
// deliberately excluded; TestV2CacheKeysCoverEveryField enforces coverage
// of everything else by reflection.
func (r *BatchQueryRequest) cacheKey(ent *entry) string {
	var b strings.Builder
	// r.Dataset (== ent.name for every resolvable request) keys the name;
	// the entry contributes the generation so a re-registered dataset
	// retires its predecessor's cached batches.
	fmt.Fprintf(&b, "v2query|%s|%d|%g|%d|n=%d", r.Dataset, ent.gen, r.Alpha, r.QuadNodes, len(r.Qs))
	for _, q := range r.Qs {
		b.WriteByte('|')
		b.WriteString(pointKey(geom.Point(q)))
	}
	return b.String()
}

// BatchQueryItem is one NDJSON line of the /v2/query response, in request
// order. Queries have no per-item failure mode — a batch query fails as a
// whole — so unlike BatchExplainItem there is no error field. Approx and
// Intervals mirror QueryResponse: present only on degraded-tier items.
type BatchQueryItem struct {
	Index     int                    `json:"index"`
	Count     int                    `json:"count"`
	Answers   []int                  `json:"answers"`
	Approx    bool                   `json:"approx,omitempty"`
	Intervals []crsky.ApproxInterval `json:"intervals,omitempty"`
}

// BatchExplainItemRequest is one non-answer to explain.
type BatchExplainItemRequest struct {
	Q  []float64 `json:"q"`
	An int       `json:"an"`
}

// BatchExplainRequest is the body of POST /v2/explain: causality
// explanations for many non-answers, with per-item errors (an item that is
// actually an answer fails alone, its siblings still return). Verify
// re-checks every successful explanation against Definition 1 before it is
// reported.
type BatchExplainRequest struct {
	Dataset string                    `json:"dataset"`
	Items   []BatchExplainItemRequest `json:"items"`
	Alpha   float64                   `json:"alpha,omitempty"`
	Options OptionsSpec               `json:"options,omitempty"`
	Verify  bool                      `json:"verify,omitempty"`
	NoCache bool                      `json:"noCache,omitempty"`
}

// cacheKey mirrors BatchQueryRequest.cacheKey: every field except NoCache,
// batch shape included.
func (r *BatchExplainRequest) cacheKey(ent *entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v2explain|%s|%d|%g|%s|v=%t|n=%d",
		r.Dataset, ent.gen, r.Alpha, r.Options.toOptions().Key(), r.Verify, len(r.Items))
	for _, it := range r.Items {
		fmt.Fprintf(&b, "|%d@%s", it.An, pointKey(geom.Point(it.Q)))
	}
	return b.String()
}

// BatchExplainItem is one NDJSON line of the /v2/explain response, in
// request order: either an explanation or a per-item error.
type BatchExplainItem struct {
	Index   int              `json:"index"`
	Explain *ExplainResponse `json:"explain,omitempty"`
	Error   string           `json:"error,omitempty"`
}
