package server

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/store"
	"github.com/crsky/crsky/internal/uncertain"
)

// entry is one registered dataset with its warmed engine behind the
// model-generic crsky.Explainer interface — every compute path (v1 and v2,
// single and batch) dispatches through it with no per-model switch.
// Entries are immutable after registration, so any number of requests may
// read them concurrently; replacing a dataset installs a fresh entry with
// a new generation instead of mutating the old one (in-flight requests on
// the old entry finish against the data they started with, and the
// generation in every cache key retires the old entry's cached results).
type entry struct {
	name  string
	model string
	gen   uint64
	size  int
	dims  int
	eng   crsky.Explainer
}

func (e *entry) info() DatasetInfo {
	return DatasetInfo{
		Name:         e.name,
		Model:        e.model,
		Size:         e.size,
		Dims:         e.dims,
		Generation:   e.gen,
		NodeAccesses: e.eng.NodeAccesses(),
	}
}

// The entry methods below are the v2 compute core: thin interface calls
// shared by the v1 handlers (which wrap them in a detached context) and
// the v2 batch handlers (which pass the request context straight through,
// so a client disconnect cancels the engine work and frees the pool slot).

// queryCtx computes the (probabilistic) reverse skyline, ascending IDs,
// never nil.
func (e *entry) queryCtx(ctx context.Context, q geom.Point, alpha float64, quadNodes int) ([]int, error) {
	// StageBudget splits a request deadline between the join and the exact
	// stage, so a stalled join leaves the refinement (or the approximate
	// fallback) a guaranteed slice; without a deadline it is a no-op.
	ids, _, err := e.eng.QueryCtx(ctx, q, alpha, crsky.QueryOptions{QuadNodes: quadNodes, StageBudget: true})
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []int{}
	}
	return ids, nil
}

// queryApproxCtx runs the degraded-tier Monte Carlo query.
func (e *entry) queryApproxCtx(ctx context.Context, q geom.Point, alpha float64, quadNodes int, ap crsky.ApproxOptions) (*crsky.ApproxResult, error) {
	res, _, err := e.eng.QueryApprox(ctx, q, alpha,
		crsky.QueryOptions{QuadNodes: quadNodes, StageBudget: true}, ap)
	return res, err
}

// queryBatchStreamCtx answers many query points in one engine call,
// sharing the index traversal across the batch and emitting every query's
// answers (normalized, never nil) in request order as soon as they are
// final — the engine half of the v2 NDJSON streaming contract.
func (e *entry) queryBatchStreamCtx(ctx context.Context, qs []geom.Point, alpha float64, quadNodes int,
	emit func(i int, ids []int)) error {

	_, _, err := e.eng.QueryBatchStream(ctx, qs, alpha,
		crsky.QueryOptions{QuadNodes: quadNodes, StageBudget: true},
		func(i int, ids []int) {
			if ids == nil {
				ids = []int{}
			}
			emit(i, ids)
		})
	return err
}

func (e *entry) explainCtx(ctx context.Context, q geom.Point, an int, alpha float64, opts causality.Options) (*causality.Result, error) {
	return e.eng.ExplainCtx(ctx, an, q, alpha, opts)
}

func (e *entry) verifyCtx(ctx context.Context, q geom.Point, alpha float64, res *causality.Result) error {
	return e.eng.VerifyCtx(ctx, q, alpha, res)
}

func (e *entry) repairCtx(ctx context.Context, q geom.Point, an int, alpha float64, opts causality.Options) (*causality.Repair, error) {
	return e.eng.RepairCtx(ctx, an, q, alpha, opts)
}

// registry maps dataset names to entries. The generation counter is global
// and monotone so that a name reused across registrations never aliases
// stale cache keys.
type registry struct {
	mu  sync.RWMutex
	m   map[string]*entry
	gen atomic.Uint64
	// wrap, when set (fault injection only), decorates every engine at
	// registration time.
	wrap func(crsky.Explainer) crsky.Explainer
	// st, when set, makes register/remove write-through durable. regMu
	// serializes mutations so the WAL's operation order always matches the
	// map's last-writer-wins order; reads stay on the RWMutex alone.
	st    *store.Store
	regMu sync.Mutex
}

func newRegistry(wrap func(crsky.Explainer) crsky.Explainer, st *store.Store) *registry {
	return &registry{m: make(map[string]*entry), wrap: wrap, st: st}
}

func (r *registry) get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	return e, ok
}

func (r *registry) list() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// remove uninstalls a dataset and deletes its durable state. The bool
// reports whether the name existed; a non-nil error means the in-memory
// removal happened but the durable delete failed.
func (r *registry) remove(name string) (bool, error) {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	r.mu.Lock()
	_, ok := r.m[name]
	delete(r.m, name)
	r.mu.Unlock()
	if ok && r.st != nil {
		if err := r.st.Delete(name); err != nil {
			return true, fmt.Errorf("dataset removed from memory but not from disk: %w", err)
		}
	}
	return ok, nil
}

// register builds, warms, and installs the dataset described by req,
// replacing any same-named predecessor. With a store attached the dataset
// is made durable FIRST: a registration is acknowledged only after its WAL
// append, so an acknowledged dataset survives a crash.
func (r *registry) register(req *DatasetRequest) (*entry, error) {
	name := strings.TrimSpace(req.Name)
	if name == "" {
		return nil, fmt.Errorf("dataset name is required")
	}
	e, err := buildEntry(req)
	if err != nil {
		return nil, err
	}
	if r.wrap != nil {
		e.eng = r.wrap(e.eng)
	}
	e.name = name
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if r.st != nil {
		model, data, err := encodeStorePayload(req)
		if err != nil {
			return nil, err
		}
		if err := r.st.Put(name, model, data); err != nil {
			return nil, fmt.Errorf("durable write failed, dataset not registered: %w", err)
		}
	}
	e.gen = r.gen.Add(1)
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e, nil
}

// installStored rebuilds and installs one recovered dataset without
// re-writing it — the startup path over the store's recovered state.
func (r *registry) installStored(d store.Dataset) error {
	req, err := decodeStoreDataset(d)
	if err != nil {
		return err
	}
	e, err := buildEntry(req)
	if err != nil {
		return err
	}
	if r.wrap != nil {
		e.eng = r.wrap(e.eng)
	}
	e.name = d.Name
	// Replay the recovered mutation log over the rebuilt base: the same
	// copy-on-write path the live endpoints take, so recovery reconverges
	// to the exact pre-crash engine (IDs, tombstones, and all).
	if err := applyStoredMutations(e, d.Muts); err != nil {
		return err
	}
	e.gen = r.gen.Add(1)
	r.mu.Lock()
	r.m[d.Name] = e
	r.mu.Unlock()
	return nil
}

func buildEntry(req *DatasetRequest) (*entry, error) {
	model := req.Model
	if model == "uncertain" {
		model = ModelSample
	}
	// Registration is the single place that knows the three concrete
	// engine types; everything downstream sees crsky.Explainer.
	var eng crsky.Explainer
	switch model {
	case ModelCertain:
		pts, err := certainPoints(req)
		if err != nil {
			return nil, err
		}
		ce, err := crsky.NewCertainEngine(pts)
		if err != nil {
			return nil, err
		}
		eng = ce

	case ModelSample:
		objs, err := sampleObjects(req)
		if err != nil {
			return nil, err
		}
		se, err := crsky.NewEngine(objs)
		if err != nil {
			return nil, err
		}
		eng = se

	case ModelPDF:
		objs, err := pdfObjects(req)
		if err != nil {
			return nil, err
		}
		pe, err := crsky.NewPDFEngine(objs)
		if err != nil {
			return nil, err
		}
		eng = pe

	default:
		return nil, fmt.Errorf("unknown model %q (want certain, sample, or pdf)", req.Model)
	}
	eng.Warm()
	return &entry{model: model, size: eng.Len(), dims: eng.Dims(), eng: eng}, nil
}

func certainPoints(req *DatasetRequest) ([]geom.Point, error) {
	if req.CSV != "" {
		ds, err := dataset.LoadCertainCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, err
		}
		return ds.Points, nil
	}
	if len(req.Points) == 0 {
		return nil, fmt.Errorf("certain dataset needs points or csv")
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Point(p)
	}
	return pts, nil
}

func sampleObjects(req *DatasetRequest) ([]*uncertain.Object, error) {
	if req.CSV != "" {
		ds, err := dataset.LoadUncertainCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, err
		}
		return ds.Objects, nil
	}
	if len(req.Objects) == 0 {
		return nil, fmt.Errorf("sample dataset needs objects or csv")
	}
	objs := make([]*uncertain.Object, len(req.Objects))
	for i, spec := range req.Objects {
		samples := make([]uncertain.Sample, len(spec.Samples))
		for j, s := range spec.Samples {
			samples[j] = uncertain.Sample{Loc: geom.Point(s.Loc), P: s.P}
		}
		objs[i] = uncertain.New(i, samples)
	}
	return objs, nil
}

func pdfObjects(req *DatasetRequest) ([]*uncertain.PDFObject, error) {
	if req.CSV != "" {
		return nil, fmt.Errorf("pdf datasets have no csv format; use pdfObjects")
	}
	if len(req.PDFObjects) == 0 {
		return nil, fmt.Errorf("pdf dataset needs pdfObjects")
	}
	objs := make([]*uncertain.PDFObject, len(req.PDFObjects))
	for i, spec := range req.PDFObjects {
		if len(spec.Min) == 0 || len(spec.Min) != len(spec.Max) {
			return nil, fmt.Errorf("pdf object %d: min/max must be equal-length and non-empty", i)
		}
		region := geom.NewRect(geom.Point(spec.Min), geom.Point(spec.Max))
		switch spec.Kind {
		case "uniform", "":
			objs[i] = crsky.NewUniformPDFObject(i, region)
		case "gaussian":
			objs[i] = crsky.NewGaussianPDFObject(i, region, geom.Point(spec.Mean), geom.Point(spec.Sigma))
		default:
			return nil, fmt.Errorf("pdf object %d: unknown kind %q (want uniform or gaussian)", i, spec.Kind)
		}
	}
	return objs, nil
}
