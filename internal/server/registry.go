package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/uncertain"
)

// entry is one registered dataset with its warmed engine(s). Entries are
// immutable after registration, so any number of requests may read them
// concurrently; replacing a dataset installs a fresh entry with a new
// generation instead of mutating the old one (in-flight requests on the
// old entry finish against the data they started with, and the generation
// in every cache key retires the old entry's cached results).
type entry struct {
	name  string
	model string
	gen   uint64
	size  int
	dims  int

	sample  *crsky.Engine // sample model; also the Section-4 reduction for certain data
	certain *crsky.CertainEngine
	pdf     *crsky.PDFEngine
}

func (e *entry) info() DatasetInfo {
	return DatasetInfo{
		Name:       e.name,
		Model:      e.model,
		Size:       e.size,
		Dims:       e.dims,
		Generation: e.gen,
		NodeAccesses: func() int64 {
			var n int64
			if e.sample != nil {
				n += e.sample.NodeAccesses()
			}
			if e.certain != nil {
				n += e.certain.NodeAccesses()
			}
			if e.pdf != nil {
				n += e.pdf.NodeAccesses()
			}
			return n
		}(),
	}
}

// query computes the (probabilistic) reverse skyline, ascending IDs. The
// sample and pdf models run the index-accelerated batch path (internal/prsq):
// one shared R-tree filtering pass, bound-based pruning, and parallel exact
// evaluation of the undecided band. Certain data keeps the branch-and-bound
// BBRS traversal, which is already index-driven.
func (e *entry) query(q geom.Point, alpha float64, quadNodes int) []int {
	var ids []int
	switch e.model {
	case ModelCertain:
		ids = e.certain.ReverseSkylineBBRS(q)
	case ModelSample:
		ids = e.sample.ProbabilisticReverseSkyline(q, alpha)
	case ModelPDF:
		ids = e.pdf.ProbabilisticReverseSkyline(q, alpha, quadNodes)
	}
	sort.Ints(ids)
	if ids == nil {
		ids = []int{}
	}
	return ids
}

func (e *entry) explain(q geom.Point, an int, alpha float64, opts causality.Options) (*causality.Result, error) {
	switch e.model {
	case ModelCertain:
		return e.certain.Explain(an, q)
	case ModelSample:
		return e.sample.Explain(an, q, alpha, opts)
	default:
		return e.pdf.Explain(an, q, alpha, opts)
	}
}

// verify re-checks an explanation against Definition 1. The pdf model has
// no independent verifier yet.
func (e *entry) verify(q geom.Point, alpha float64, res *causality.Result) error {
	switch e.model {
	case ModelCertain:
		return e.sample.Verify(q, 1, res)
	case ModelSample:
		return e.sample.Verify(q, alpha, res)
	default:
		return fmt.Errorf("verify is not supported for the pdf model")
	}
}

func (e *entry) repair(q geom.Point, an int, alpha float64, opts causality.Options) (*causality.Repair, error) {
	switch e.model {
	case ModelCertain:
		return e.sample.SuggestRepair(an, q, 1, opts)
	case ModelSample:
		return e.sample.SuggestRepair(an, q, alpha, opts)
	default:
		return nil, fmt.Errorf("repair is not supported for the pdf model")
	}
}

// registry maps dataset names to entries. The generation counter is global
// and monotone so that a name reused across registrations never aliases
// stale cache keys.
type registry struct {
	mu  sync.RWMutex
	m   map[string]*entry
	gen atomic.Uint64
}

func newRegistry() *registry {
	return &registry{m: make(map[string]*entry)}
}

func (r *registry) get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	return e, ok
}

func (r *registry) list() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

func (r *registry) remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	delete(r.m, name)
	return ok
}

// register builds, warms, and installs the dataset described by req,
// replacing any same-named predecessor.
func (r *registry) register(req *DatasetRequest) (*entry, error) {
	name := strings.TrimSpace(req.Name)
	if name == "" {
		return nil, fmt.Errorf("dataset name is required")
	}
	e, err := buildEntry(req)
	if err != nil {
		return nil, err
	}
	e.name = name
	e.gen = r.gen.Add(1)
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e, nil
}

func buildEntry(req *DatasetRequest) (*entry, error) {
	model := req.Model
	if model == "uncertain" {
		model = ModelSample
	}
	switch model {
	case ModelCertain:
		pts, err := certainPoints(req)
		if err != nil {
			return nil, err
		}
		ce, err := crsky.NewCertainEngine(pts)
		if err != nil {
			return nil, err
		}
		// The Section-4 reduction engine powers verify and repair.
		objs := make([]*uncertain.Object, len(pts))
		for i, p := range pts {
			objs[i] = uncertain.Certain(i, p)
		}
		se, err := crsky.NewEngine(objs)
		if err != nil {
			return nil, err
		}
		ce.Warm()
		se.Warm()
		return &entry{model: model, size: ce.Len(), dims: ce.Dims(), certain: ce, sample: se}, nil

	case ModelSample:
		objs, err := sampleObjects(req)
		if err != nil {
			return nil, err
		}
		se, err := crsky.NewEngine(objs)
		if err != nil {
			return nil, err
		}
		se.Warm()
		return &entry{model: model, size: se.Len(), dims: se.Dims(), sample: se}, nil

	case ModelPDF:
		objs, err := pdfObjects(req)
		if err != nil {
			return nil, err
		}
		pe, err := crsky.NewPDFEngine(objs)
		if err != nil {
			return nil, err
		}
		pe.Warm()
		return &entry{model: model, size: pe.Len(), dims: pe.Dims(), pdf: pe}, nil

	default:
		return nil, fmt.Errorf("unknown model %q (want certain, sample, or pdf)", req.Model)
	}
}

func certainPoints(req *DatasetRequest) ([]geom.Point, error) {
	if req.CSV != "" {
		ds, err := dataset.LoadCertainCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, err
		}
		return ds.Points, nil
	}
	if len(req.Points) == 0 {
		return nil, fmt.Errorf("certain dataset needs points or csv")
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Point(p)
	}
	return pts, nil
}

func sampleObjects(req *DatasetRequest) ([]*uncertain.Object, error) {
	if req.CSV != "" {
		ds, err := dataset.LoadUncertainCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, err
		}
		return ds.Objects, nil
	}
	if len(req.Objects) == 0 {
		return nil, fmt.Errorf("sample dataset needs objects or csv")
	}
	objs := make([]*uncertain.Object, len(req.Objects))
	for i, spec := range req.Objects {
		samples := make([]uncertain.Sample, len(spec.Samples))
		for j, s := range spec.Samples {
			samples[j] = uncertain.Sample{Loc: geom.Point(s.Loc), P: s.P}
		}
		objs[i] = uncertain.New(i, samples)
	}
	return objs, nil
}

func pdfObjects(req *DatasetRequest) ([]*uncertain.PDFObject, error) {
	if req.CSV != "" {
		return nil, fmt.Errorf("pdf datasets have no csv format; use pdfObjects")
	}
	if len(req.PDFObjects) == 0 {
		return nil, fmt.Errorf("pdf dataset needs pdfObjects")
	}
	objs := make([]*uncertain.PDFObject, len(req.PDFObjects))
	for i, spec := range req.PDFObjects {
		if len(spec.Min) == 0 || len(spec.Min) != len(spec.Max) {
			return nil, fmt.Errorf("pdf object %d: min/max must be equal-length and non-empty", i)
		}
		region := geom.NewRect(geom.Point(spec.Min), geom.Point(spec.Max))
		switch spec.Kind {
		case "uniform", "":
			objs[i] = crsky.NewUniformPDFObject(i, region)
		case "gaussian":
			objs[i] = crsky.NewGaussianPDFObject(i, region, geom.Point(spec.Mean), geom.Point(spec.Sigma))
		default:
			return nil, fmt.Errorf("pdf object %d: unknown kind %q (want uniform or gaussian)", i, spec.Kind)
		}
	}
	return objs, nil
}
