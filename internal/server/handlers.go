package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/geom"
)

// --- dataset endpoints ------------------------------------------------

func (s *Server) handleDatasetRegister(w http.ResponseWriter, r *http.Request) {
	var req DatasetRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, err := s.reg.register(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// A wholesale replacement invalidates every watcher's object IDs.
	s.watch.DatasetReset(ent.name, ent.gen)
	writeJSON(w, http.StatusCreated, ent.info())
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, ent.info())
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.reg.remove(r.PathValue("name"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("name")))
		return
	}
	s.watch.DatasetReset(r.PathValue("name"), 0)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- compute endpoints ------------------------------------------------

// resolve validates the (dataset, q, alpha) triple shared by all compute
// requests. For certain data, alpha is forced to 1 (membership is exact);
// for the probabilistic models it must lie in (0, 1].
func (s *Server) resolve(name string, qs []float64, alpha float64) (*entry, geom.Point, float64, int, error) {
	if name == "" {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("dataset is required")
	}
	ent, ok := s.reg.get(name)
	if !ok {
		return nil, nil, 0, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	q := geom.Point(qs)
	if q.Dims() != ent.dims {
		return nil, nil, 0, http.StatusBadRequest,
			fmt.Errorf("q has %d dims, dataset %q has %d", q.Dims(), name, ent.dims)
	}
	if !q.IsFinite() {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("q has non-finite coordinates")
	}
	if ent.model == ModelCertain {
		alpha = 1
	} else if !(alpha > 0 && alpha <= 1) {
		return nil, nil, 0, http.StatusBadRequest,
			fmt.Errorf("alpha must be in (0,1], got %g", alpha)
	}
	return ent, q, alpha, 0, nil
}

// queryKey is the canonical cache key of one (dataset, query, alpha,
// quadNodes) reverse-skyline computation. The v1 single-query handler and
// the v2 batch handler's per-item cache build the SAME keys, so either
// surface serves results the other computed: a batch warms later single
// queries and a warmed single query is one less item a batch must compute.
// (v1 additionally deduplicates in-flight computations per key through the
// singleflight group; v2 does not, so a v2 Put may land while a v1 flight
// for the same key runs — benign, both store the same value.)
func queryKey(name string, gen uint64, q geom.Point, alpha float64, quadNodes int) string {
	return fmt.Sprintf("query|%s|%d|%s|%g|%d", name, gen, pointKey(q), alpha, quadNodes)
}

// explainKey is queryKey's causality counterpart, shared by /v1/explain
// and /v2/explain's per-item cache. Verification is deliberately not part
// of the key: both surfaces re-run the verifier per request on whatever
// they serve, so verified and unverified requests share one entry.
func explainKey(name string, gen uint64, q geom.Point, an int, alpha float64, opts causality.Options) string {
	return fmt.Sprintf("explain|%s|%d|%s|%d|%g|%s", name, gen, pointKey(q), an, alpha, opts.Key())
}

// writeComputeError renders a compute-path failure: cancellations and
// admission sheds become 503s with the COMPUTED Retry-After (queue depth ×
// recent median slot wait, capped — see retryAfter), panics and integrity
// failures 500s, engine errors their mapped client status.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errShed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errComputePanic), errors.Is(err, errVerificationFailed):
		s.writeError(w, http.StatusInternalServerError, err)
	default:
		s.writeError(w, statusFor(err), err)
	}
}

// degradable reports whether a compute failure may fall back to the
// approximate tier: admission sheds and deadline/cancellation failures
// (capacity problems the degraded tier exists for) qualify; semantic
// errors, panics, and injected faults do not — they would fail identically
// on the approximate path.
func degradable(err error) bool {
	return errors.Is(err, errShed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// compute runs fn behind the singleflight group and the worker pool,
// caching a successful result under key unless the request bypassed the
// cache. It sets the cache/flight response headers and returns the error
// instead of writing it, so callers with a degraded tier can fall back;
// plain callers pass the error to writeComputeError.
//
// The computation deliberately runs on a context detached from the
// request: a flight's result may be shared by many callers, so the
// leader's client disconnecting must not fail everyone else (or poison
// the thundering-herd retry by caching nothing). That detached context is
// re-bound to the server's drain context (a hard drain must stop detached
// work too) and, when timeout > 0, to a deadline — the v1 half of
// deadline propagation. The v2 batch handlers, which are not deduplicated,
// run the live request context instead (see computeV2).
//
// class gates admission: cache hits are served unconditionally, everything
// else must pass the admission controller before it may queue.
func (s *Server) compute(w http.ResponseWriter, ctx context.Context, key string, noCache bool,
	class priorityClass, timeout time.Duration, fn func(ctx context.Context) (any, error)) (any, error) {

	tr := obsTrace(ctx)
	if noCache {
		w.Header().Set(headerCache, "bypass")
		tr.SetLabel("cache", "bypass")
	} else if v, ok := s.cache.Get(key); ok {
		w.Header().Set(headerCache, "hit")
		tr.SetLabel("cache", "hit")
		return v, nil
	} else {
		w.Header().Set(headerCache, "miss")
		tr.SetLabel("cache", "miss")
	}

	if err := s.admit(class, remainingBudget(ctx, timeout)); err != nil {
		tr.SetLabel("admission", "shed")
		return nil, err
	}

	// WithoutCancel keeps the context VALUES — the trace flows into the
	// detached computation, so a traced leader's envelope carries the
	// engine stage spans.
	detached, undrain := mergeCancel(context.WithoutCancel(ctx), s.drainCtx)
	defer undrain()
	if timeout > 0 {
		var cancel context.CancelFunc
		detached, cancel = context.WithTimeout(detached, timeout)
		defer cancel()
	}
	v, err, shared := s.flights.Do(key, func() (any, error) {
		return s.pool.Do(detached, func() (any, error) {
			if s.computeHook != nil {
				s.computeHook(detached)
			}
			return fn(detached)
		})
	})
	if shared {
		w.Header().Set(headerFlight, "shared")
		tr.SetLabel("flight", "shared")
	} else {
		w.Header().Set(headerFlight, "leader")
		tr.SetLabel("flight", "leader")
	}
	if err != nil {
		return nil, err
	}
	if !noCache {
		s.cache.Put(key, v)
	}
	return v, nil
}

// approx tier selection, from the request's "approx" field.
type approxMode int

const (
	approxNever  approxMode = iota // exact only (default)
	approxAuto                     // exact first, degrade on capacity failures
	approxAlways                   // straight to the Monte Carlo tier
)

func parseApproxMode(s string) (approxMode, error) {
	switch s {
	case "", "never":
		return approxNever, nil
	case "auto":
		return approxAuto, nil
	case "always":
		return approxAlways, nil
	}
	return 0, fmt.Errorf("bad approx mode %q (want never, auto, or always)", s)
}

// requestTimeout parses ?timeout= into a plain duration. The v1 handlers
// cannot use withTimeout: their computations run on a detached context, so
// the deadline must be applied inside compute, not to the live request
// context.
func requestTimeout(r *http.Request) (time.Duration, error) {
	t := r.URL.Query().Get("timeout")
	if t == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(t)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 250ms)", t)
	}
	return d, nil
}

// serveApprox answers a query from the degraded Monte Carlo tier on the
// reserved approximate pool — the path that keeps an overloaded server
// useful: bounded work (Hoeffding-sized sampling on the surviving
// candidates), answers tagged approx with per-object confidence intervals,
// never cached.
func (s *Server) serveApprox(w http.ResponseWriter, r *http.Request, ent *entry,
	q geom.Point, alpha float64, quadNodes int, ap crsky.ApproxOptions, timeout time.Duration) {

	tr := obsTrace(r.Context())
	tr.SetLabel("tier", "approx")
	w.Header().Set(headerCache, "bypass")
	// The reserved pool must itself degrade by shedding, not by queueing
	// without bound — it exists to absorb the exact tier's overflow, so its
	// backlog is capped at a small multiple of its (few) slots.
	if st := s.approxPool.Stats(); st.QueueDepth >= int64(st.Workers)*16 || s.Draining() {
		s.shedFor(classQuery).Inc()
		s.writeComputeError(w, errShed)
		return
	}
	ctx, undrain := mergeCancel(r.Context(), s.drainCtx)
	defer undrain()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	v, err := s.approxPool.Do(ctx, func() (any, error) {
		return ent.queryApproxCtx(ctx, q, alpha, quadNodes, ap)
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	res := v.(*crsky.ApproxResult)
	s.approxAnswers.Inc()
	resp := QueryResponse{
		Dataset:    ent.name,
		Model:      ent.model,
		Alpha:      alpha,
		Count:      len(res.Answers),
		Answers:    res.Answers,
		Generation: ent.gen,
		Approx:     !res.Exact,
		Trace:      traceJSON(r),
	}
	if !res.Exact {
		resp.Intervals = res.Intervals
		resp.Epsilon = res.Epsilon
		resp.Confidence = res.Confidence
		resp.Iters = res.Iters
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Inc()
	var req QueryRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	mode, err := parseApproxMode(req.Approx)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := requestTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ap := crsky.ApproxOptions{Epsilon: req.Epsilon, Confidence: req.Confidence, Seed: s.cfg.ApproxSeed}

	if mode == approxAlways {
		s.serveApprox(w, r, ent, q, alpha, req.QuadNodes, ap, timeout)
		return
	}

	// Under auto, the exact attempt gets 3/4 of the request budget so a
	// timed-out exact query still leaves the fallback a guaranteed slice;
	// the absolute deadline is fixed up front so the two tiers together
	// never exceed what the client asked for.
	exactTimeout := timeout
	var fullDeadline time.Time
	if mode == approxAuto && timeout > 0 {
		fullDeadline = time.Now().Add(timeout)
		exactTimeout = timeout * 3 / 4
	}
	key := queryKey(ent.name, ent.gen, q, alpha, req.QuadNodes)
	v, err := s.compute(w, r.Context(), key, req.NoCache, priorityFrom(r, classQuery), exactTimeout,
		func(ctx context.Context) (any, error) {
			return ent.queryCtx(ctx, q, alpha, req.QuadNodes)
		})
	if err != nil {
		// Degrade only when the client is still there and the failure is a
		// capacity problem, not a semantic one.
		if mode == approxAuto && degradable(err) && r.Context().Err() == nil {
			rest := time.Duration(0)
			if !fullDeadline.IsZero() {
				if rest = time.Until(fullDeadline); rest <= 0 {
					s.writeComputeError(w, err)
					return
				}
			}
			s.serveApprox(w, r, ent, q, alpha, req.QuadNodes, ap, rest)
			return
		}
		s.writeComputeError(w, err)
		return
	}
	ids := v.([]int)
	writeJSON(w, http.StatusOK, QueryResponse{
		Dataset:    ent.name,
		Model:      ent.model,
		Alpha:      alpha,
		Count:      len(ids),
		Answers:    ids,
		Generation: ent.gen,
		Trace:      traceJSON(r),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.reqExplain.Inc()
	var req ExplainRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	opts := req.Options.toOptions()
	if ent.model == ModelCertain {
		// Algorithm CR takes no options (Lemma 7 needs no refinement);
		// canonicalize so identical certain requests share a cache key.
		opts = causality.Options{}
	}
	timeout, err := requestTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := explainKey(ent.name, ent.gen, q, req.An, alpha, opts)
	v, err := s.compute(w, r.Context(), key, req.NoCache, priorityFrom(r, classExplain), timeout,
		func(ctx context.Context) (any, error) {
			res, err := ent.explainCtx(ctx, q, req.An, alpha, opts)
			if err == nil {
				// Work gauges count computed explanations only: cache hits
				// and deduplicated followers re-serve this computation's
				// result without re-doing (or re-counting) its search.
				s.explainComputed.Inc()
				s.explainSubsets.Add(res.SubsetsExamined)
				s.explainGreedySeeds.Add(res.GreedySeeds)
				s.explainGreedyHits.Add(res.GreedyHits)
				s.explainFilterIO.Add(res.FilterNodeAccesses)
			}
			return res, err
		})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	res := v.(*causality.Result)
	verified := false
	if req.Verify {
		// v1 keeps detached-computation semantics end to end: a client
		// disconnect must not surface as a verification "failure" that
		// evicts a good cached result and poisons the thundering-herd
		// retry.
		if err := ent.verifyCtx(context.WithoutCancel(r.Context()), q, alpha, res); err != nil {
			// Never keep serving a result the verifier just rejected.
			s.cache.Remove(key)
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("explanation failed verification: %w", err))
			return
		}
		verified = true
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Dataset:            ent.name,
		Model:              ent.model,
		NonAnswer:          res.NonAnswer,
		Pr:                 res.Pr,
		Alpha:              alpha,
		Candidates:         res.Candidates,
		Causes:             causesJSON(res.Causes),
		SubsetsExamined:    res.SubsetsExamined,
		GreedySeeds:        res.GreedySeeds,
		GreedyHits:         res.GreedyHits,
		FilterNodeAccesses: res.FilterNodeAccesses,
		Verified:           verified,
		Trace:              traceJSON(r),
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.reqRepair.Inc()
	var req RepairRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	opts := req.Options.toOptions()
	timeout, err := requestTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := fmt.Sprintf("repair|%s|%d|%s|%d|%g|%s",
		ent.name, ent.gen, pointKey(q), req.An, alpha, opts.Key())
	v, err := s.compute(w, r.Context(), key, req.NoCache, priorityFrom(r, classExplain), timeout,
		func(ctx context.Context) (any, error) {
			return ent.repairCtx(ctx, q, req.An, alpha, opts)
		})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	rep := v.(*causality.Repair)
	writeJSON(w, http.StatusOK, RepairResponse{
		Dataset: ent.name,
		Model:   ent.model,
		An:      req.An,
		Alpha:   alpha,
		Removed: rep.Removed,
		NewPr:   rep.NewPr,
		Exact:   rep.Exact,
		Trace:   traceJSON(r),
	})
}
