package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/geom"
)

// --- dataset endpoints ------------------------------------------------

func (s *Server) handleDatasetRegister(w http.ResponseWriter, r *http.Request) {
	var req DatasetRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ent, err := s.reg.register(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, ent.info())
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, ent.info())
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if !s.reg.remove(r.PathValue("name")) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- compute endpoints ------------------------------------------------

// resolve validates the (dataset, q, alpha) triple shared by all compute
// requests. For certain data, alpha is forced to 1 (membership is exact);
// for the probabilistic models it must lie in (0, 1].
func (s *Server) resolve(name string, qs []float64, alpha float64) (*entry, geom.Point, float64, int, error) {
	if name == "" {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("dataset is required")
	}
	ent, ok := s.reg.get(name)
	if !ok {
		return nil, nil, 0, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	q := geom.Point(qs)
	if q.Dims() != ent.dims {
		return nil, nil, 0, http.StatusBadRequest,
			fmt.Errorf("q has %d dims, dataset %q has %d", q.Dims(), name, ent.dims)
	}
	if !q.IsFinite() {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("q has non-finite coordinates")
	}
	if ent.model == ModelCertain {
		alpha = 1
	} else if !(alpha > 0 && alpha <= 1) {
		return nil, nil, 0, http.StatusBadRequest,
			fmt.Errorf("alpha must be in (0,1], got %g", alpha)
	}
	return ent, q, alpha, 0, nil
}

// compute runs fn behind the singleflight group and the worker pool,
// caching a successful result under key unless the request bypassed the
// cache. It sets the cache/flight response headers.
//
// The computation deliberately runs on a context detached from the
// request: a flight's result may be shared by many callers, so the
// leader's client disconnecting must not fail everyone else (or poison
// the thundering-herd retry by caching nothing). fn receives that
// detached context; the v2 batch handlers, which are not deduplicated,
// run the live request context instead (see computeV2).
func (s *Server) compute(w http.ResponseWriter, ctx context.Context, key string, noCache bool,
	fn func(ctx context.Context) (any, error)) (any, bool) {

	tr := obsTrace(ctx)
	if noCache {
		w.Header().Set(headerCache, "bypass")
		tr.SetLabel("cache", "bypass")
	} else if v, ok := s.cache.Get(key); ok {
		w.Header().Set(headerCache, "hit")
		tr.SetLabel("cache", "hit")
		return v, true
	} else {
		w.Header().Set(headerCache, "miss")
		tr.SetLabel("cache", "miss")
	}

	// WithoutCancel keeps the context VALUES — the trace flows into the
	// detached computation, so a traced leader's envelope carries the
	// engine stage spans.
	detached := context.WithoutCancel(ctx)
	v, err, shared := s.flights.Do(key, func() (any, error) {
		return s.pool.Do(detached, func() (any, error) {
			if s.computeHook != nil {
				s.computeHook()
			}
			return fn(detached)
		})
	})
	if shared {
		w.Header().Set(headerFlight, "shared")
		tr.SetLabel("flight", "shared")
	} else {
		w.Header().Set(headerFlight, "leader")
		tr.SetLabel("flight", "leader")
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The caller gave up (or the pool never freed a slot in time):
			// tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, errComputePanic):
			s.writeError(w, http.StatusInternalServerError, err)
		default:
			s.writeError(w, statusFor(err), err)
		}
		return nil, false
	}
	if !noCache {
		s.cache.Put(key, v)
	}
	return v, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Inc()
	var req QueryRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	key := fmt.Sprintf("query|%s|%d|%s|%g|%d", ent.name, ent.gen, pointKey(q), alpha, req.QuadNodes)
	v, ok := s.compute(w, r.Context(), key, req.NoCache, func(ctx context.Context) (any, error) {
		return ent.queryCtx(ctx, q, alpha, req.QuadNodes)
	})
	if !ok {
		return
	}
	ids := v.([]int)
	writeJSON(w, http.StatusOK, QueryResponse{
		Dataset: ent.name,
		Model:   ent.model,
		Alpha:   alpha,
		Count:   len(ids),
		Answers: ids,
		Trace:   traceJSON(r),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.reqExplain.Inc()
	var req ExplainRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	opts := req.Options.toOptions()
	if ent.model == ModelCertain {
		// Algorithm CR takes no options (Lemma 7 needs no refinement);
		// canonicalize so identical certain requests share a cache key.
		opts = causality.Options{}
	}
	key := fmt.Sprintf("explain|%s|%d|%s|%d|%g|%s",
		ent.name, ent.gen, pointKey(q), req.An, alpha, opts.Key())
	v, ok := s.compute(w, r.Context(), key, req.NoCache, func(ctx context.Context) (any, error) {
		res, err := ent.explainCtx(ctx, q, req.An, alpha, opts)
		if err == nil {
			// Work gauges count computed explanations only: cache hits
			// and deduplicated followers re-serve this computation's
			// result without re-doing (or re-counting) its search.
			s.explainComputed.Inc()
			s.explainSubsets.Add(res.SubsetsExamined)
			s.explainGreedySeeds.Add(res.GreedySeeds)
			s.explainGreedyHits.Add(res.GreedyHits)
			s.explainFilterIO.Add(res.FilterNodeAccesses)
		}
		return res, err
	})
	if !ok {
		return
	}
	res := v.(*causality.Result)
	verified := false
	if req.Verify {
		// v1 keeps detached-computation semantics end to end: a client
		// disconnect must not surface as a verification "failure" that
		// evicts a good cached result and poisons the thundering-herd
		// retry.
		if err := ent.verifyCtx(context.WithoutCancel(r.Context()), q, alpha, res); err != nil {
			// Never keep serving a result the verifier just rejected.
			s.cache.Remove(key)
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("explanation failed verification: %w", err))
			return
		}
		verified = true
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Dataset:            ent.name,
		Model:              ent.model,
		NonAnswer:          res.NonAnswer,
		Pr:                 res.Pr,
		Alpha:              alpha,
		Candidates:         res.Candidates,
		Causes:             causesJSON(res.Causes),
		SubsetsExamined:    res.SubsetsExamined,
		GreedySeeds:        res.GreedySeeds,
		GreedyHits:         res.GreedyHits,
		FilterNodeAccesses: res.FilterNodeAccesses,
		Verified:           verified,
		Trace:              traceJSON(r),
	})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.reqRepair.Inc()
	var req RepairRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	opts := req.Options.toOptions()
	key := fmt.Sprintf("repair|%s|%d|%s|%d|%g|%s",
		ent.name, ent.gen, pointKey(q), req.An, alpha, opts.Key())
	v, ok := s.compute(w, r.Context(), key, req.NoCache, func(ctx context.Context) (any, error) {
		return ent.repairCtx(ctx, q, req.An, alpha, opts)
	})
	if !ok {
		return
	}
	rep := v.(*causality.Repair)
	writeJSON(w, http.StatusOK, RepairResponse{
		Dataset: ent.name,
		Model:   ent.model,
		An:      req.An,
		Alpha:   alpha,
		Removed: rep.Removed,
		NewPr:   rep.NewPr,
		Exact:   rep.Exact,
		Trace:   traceJSON(r),
	})
}
