package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLRUCacheEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should have survived", key)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestLRUCacheUpdateExisting(t *testing.T) {
	c := newLRUCache(4)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("got %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestLRUCacheRemove(t *testing.T) {
	c := newLRUCache(4)
	c.Put("k", 1)
	c.Remove("k")
	c.Remove("absent")
	if _, ok := c.Get("k"); ok {
		t.Fatal("k should have been removed")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache must always miss")
	}
}

func TestFlightGroupDedup(t *testing.T) {
	g := newFlightGroup()
	const callers = 16
	var (
		mu      sync.Mutex
		inFn    int
		release = make(chan struct{})
		wg      sync.WaitGroup
		shared  int
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (any, error) {
				mu.Lock()
				inFn++
				mu.Unlock()
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
			if sh {
				mu.Lock()
				shared++
				mu.Unlock()
			}
		}()
	}
	// Wait until the leader is inside fn and everyone else piled up.
	for {
		mu.Lock()
		n := inFn
		mu.Unlock()
		if n == 1 && g.Stats().Deduped == callers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if inFn != 1 {
		t.Fatalf("fn ran %d times, want 1", inFn)
	}
	if shared != callers-1 {
		t.Fatalf("shared = %d, want %d", shared, callers-1)
	}
	st := g.Stats()
	if st.Executed != 1 || st.Deduped != callers-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightGroupSurvivesPanic(t *testing.T) {
	g := newFlightGroup()
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		g.Do("k", func() (any, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, shared := g.Do("k", func() (any, error) { return nil, nil })
		if !shared || !errors.Is(err, errComputePanic) {
			t.Errorf("sharer got shared=%t err=%v, want shared errComputePanic", shared, err)
		}
	}()
	for g.Stats().Deduped == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	// The key must not stay wedged: a fresh call computes normally.
	if v, err, _ := g.Do("k", func() (any, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("post-panic Do = %v, %v", v, err)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	if _, err, _ := g.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failed flight must not stick: a retry runs fresh.
	if v, err, _ := g.Do("k", func() (any, error) { return 1, nil }); err != nil || v != 1 {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

func TestWorkerPoolCancellation(t *testing.T) {
	p := newWorkerPool(1)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Do(ctx, func() (any, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
	for p.Stats().Completed != 1 {
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.Canceled != 1 || st.Workers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPointKeyCanonical(t *testing.T) {
	if got := pointKey([]float64{1, 2.5}); got != "1,2.5" {
		t.Fatalf("pointKey = %q", got)
	}
	if pointKey([]float64{1, 25}) == pointKey([]float64{12, 5}) {
		t.Fatal("digit-shift collision")
	}
}
