package server

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchSmokeConcurrent is the race-enabled dynamic-plane hammer behind
// `make watch-smoke`: one writer streams inserts and deletes over HTTP
// while concurrent readers query (cached and uncached) and watchers hold
// /v2/watch streams open, some disconnecting mid-stream. Every reader
// answer must be bit-identical to the client-side oracle at the committed
// generation stamped on the response — a blend of two generations, a
// torn R-tree path, or a stale Section-4 reduction all fail the
// comparison — and after the storm the hub must hold zero subscriptions
// and the pools zero in-flight work (no goroutine or slot leaks from the
// disconnected clients).
func TestWatchSmokeConcurrent(t *testing.T) {
	const (
		dims      = 2
		initial   = 40
		mutations = 80
		readers   = 4
		watchers  = 6
	)
	s := New(Config{Workers: 2, CacheSize: 512})
	c := newTestClient(t, s)

	rng := rand.New(rand.NewSource(0x5eed))
	pts := make([][]float64, initial)
	for i := range pts {
		pts[i] = []float64{1000 * rng.Float64(), 1000 * rng.Float64()}
	}
	q := []float64{500, 500}

	var info DatasetInfo
	c.post("/v1/datasets", &DatasetRequest{Name: "smoke", Model: ModelCertain, Points: pts}, &info, http.StatusCreated)

	// live mirrors the server's object table client-side; the oracle
	// recomputes the reverse skyline from it after every committed
	// mutation. Only the writer goroutine touches it.
	live := make(map[int][]float64, initial)
	for i, p := range pts {
		live[i] = p
	}
	oracle := func() []int {
		var ids []int
		for an, p := range live {
			blocked := false
			for id, o := range live {
				if id == an {
					continue
				}
				leq, lt := true, false
				for k := range p {
					do, dq := math.Abs(o[k]-p[k]), math.Abs(q[k]-p[k])
					if do > dq {
						leq = false
						break
					}
					if do < dq {
						lt = true
					}
				}
				if leq && lt {
					blocked = true
					break
				}
			}
			if !blocked {
				ids = append(ids, an)
			}
		}
		sort.Ints(ids)
		return ids
	}

	// expected maps every committed generation to its oracle answer.
	var expMu sync.Mutex
	expected := map[uint64][]int{info.Generation: oracle()}

	// Semantics pre-check: the engine and the oracle must agree on the
	// initial generation before the concurrent phase makes a mismatch
	// ambiguous between "torn read" and "wrong oracle".
	if ids, _ := queryAnswers(t, c, "smoke", q, true); !equalIntSlices(ids, expected[info.Generation]) {
		t.Fatalf("oracle disagrees with engine at gen %d: server %v, oracle %v",
			info.Generation, ids, expected[info.Generation])
	}

	var done atomic.Bool
	var wg sync.WaitGroup

	// Writer: sequential HTTP mutations, recording the oracle answer for
	// each acknowledged generation after the ack (readers may observe a
	// generation before its oracle entry exists, so they only record
	// observations and the comparison happens after the join).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for n := 0; n < mutations; n++ {
			insert := len(live) < 25 || (len(live) <= 60 && rng.Intn(2) == 0)
			var mr MutationResponse
			if insert {
				p := []float64{1000 * rng.Float64(), 1000 * rng.Float64()}
				c.post("/v2/datasets/smoke/objects", &ObjectInsertRequest{Point: p}, &mr, http.StatusOK)
				live[mr.ID] = p
			} else {
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				id := ids[rng.Intn(len(ids))]
				resp, raw := c.do(http.MethodDelete, fmt.Sprintf("/v2/datasets/smoke/objects/%d", id), nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("delete %d: status %d (%s)", id, resp.StatusCode, raw)
					return
				}
				if err := json.Unmarshal(raw, &mr); err != nil {
					t.Errorf("delete %d: %v", id, err)
					return
				}
				delete(live, id)
			}
			expMu.Lock()
			expected[mr.Generation] = oracle()
			expMu.Unlock()
		}
	}()

	// Readers: hammer /v1/query, alternating cache bypass, recording
	// (generation, answers) observations. Overload sheds (503) are
	// tolerated — correctness is about the answers that were served.
	type obs struct {
		gen uint64
		ids []int
	}
	var obsMu sync.Mutex
	var observed []obs
	var served, shed int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				req := &QueryRequest{Dataset: "smoke", Q: q, NoCache: i%3 == 0}
				resp, raw := c.do(http.MethodPost, "/v1/query", req)
				if resp.StatusCode != http.StatusOK {
					atomic.AddInt64(&shed, 1)
					continue
				}
				var qr QueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				atomic.AddInt64(&served, 1)
				obsMu.Lock()
				observed = append(observed, obs{gen: qr.Generation, ids: qr.Answers})
				obsMu.Unlock()
			}
		}(r)
	}

	// Watchers: subscribe to whatever currently registers as a non-answer
	// (races with the writer make 404/422 rejections routine — retry).
	// Even-numbered watchers disconnect immediately after the registered
	// event; the rest hold the stream until the hammer ends. Either way
	// the hub must reap the subscription slot.
	for wi := 0; wi < watchers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi)))
			for attempt := 0; attempt < 50 && !done.Load(); attempt++ {
				an := rng.Intn(initial + mutations/2)
				body := fmt.Sprintf(`{"dataset":"smoke","q":[500,500],"an":%d}`, an)
				resp, err := c.ts.Client().Post(c.ts.URL+"/v2/watch", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("watcher %d: %v", wi, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					continue // answer (422) or deleted id (404): pick another
				}
				if wi%2 == 0 {
					resp.Body.Close() // mid-stream disconnect
					return
				}
				go func() {
					for !done.Load() {
						time.Sleep(5 * time.Millisecond)
					}
					resp.Body.Close()
				}()
				var buf [4096]byte
				for {
					if _, err := resp.Body.Read(buf[:]); err != nil {
						return // terminal event or our own close
					}
				}
			}
		}(wi)
	}

	wg.Wait()
	if served == 0 {
		t.Fatalf("no reader request was served (%d shed)", shed)
	}

	// Every served answer must match the oracle at its stamped generation.
	for _, o := range observed {
		expMu.Lock()
		want, ok := expected[o.gen]
		expMu.Unlock()
		if !ok {
			t.Fatalf("answer stamped with unknown generation %d", o.gen)
		}
		if !equalIntSlices(o.ids, want) {
			t.Fatalf("torn read at gen %d: served %v, committed %v", o.gen, o.ids, want)
		}
	}

	// Leak check: once the streams are gone the hub must be empty and the
	// worker pools drained. Disconnected watchers are reaped when their
	// write fails or their context dies, so allow a short settle.
	s.watch.WaitIdle()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st StatsResponse
		c.mustGet("/v1/stats", &st)
		if st.Watch.Active == 0 && st.Pool.InFlight == 0 && st.ApproxPool.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after hammer: %d watch subs, %d pool in-flight, %d approx in-flight",
				st.Watch.Active, st.Pool.InFlight, st.ApproxPool.InFlight)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
