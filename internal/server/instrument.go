package server

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"github.com/crsky/crsky/internal/obs"
)

// This file is the request observability middleware: every /v1/* and /v2/*
// handler is wrapped by instrument, which records the request latency into
// the route × dataset-model × outcome histogram family, carries an
// obs.Trace through the request context when the client asked for one
// (?trace=1) or the slow-query log is enabled, and feeds the slow-query
// log. The record path off the traced case is three atomic adds plus one
// map lookup — far under the <1% overhead budget of any compute request.

// reqMeta is the per-request annotation channel between the handlers and
// the middleware: the handler resolves the dataset and stores its identity
// here, the middleware reads it after the handler returns to label the
// histogram and the slow-log entry. All writes happen on the handler
// goroutine before the middleware reads, so no locking is needed.
type reqMeta struct {
	dataset   string
	model     string
	wantTrace bool
	trace     *obs.Trace
}

type metaKey struct{}

// metaFrom returns the request's annotation record, or nil outside the
// instrumented mux (direct handler tests).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

// annotate records the resolved dataset on the request's meta. Handlers
// call it right after resolve succeeds.
func annotate(ctx context.Context, ent *entry) {
	if m := metaFrom(ctx); m != nil {
		m.dataset = ent.name
		m.model = ent.model
	}
}

// obsTrace is shorthand for obs.FromContext; the nil-safe Trace methods
// make every call free on untraced requests.
func obsTrace(ctx context.Context) *obs.Trace { return obs.FromContext(ctx) }

// traceJSON snapshots the request trace for a response envelope; nil when
// the request did not ask for one.
func traceJSON(r *http.Request) *obs.TraceJSON {
	if m := metaFrom(r.Context()); m != nil && m.wantTrace {
		return m.trace.Snapshot()
	}
	return nil
}

// wantTrace reports whether the client asked for the stage trace in the
// response body.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

// statusWriter captures the response status code for outcome labeling.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush passes the streaming capability through: the v2 NDJSON handlers
// flush per line, and losing http.Flusher under this wrapper would silently
// buffer whole batches.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// outcomeFor maps a status code to the bounded outcome label vocabulary —
// bounded so the histogram family's cardinality stays route × model × 4.
func outcomeFor(status int) string {
	switch {
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	case status >= 500:
		return "server_error"
	case status >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

const modelNone = "-" // routes (or failures) with no resolved dataset

// recovering runs fn and converts a handler-goroutine panic into a 500 with
// a counted, stack-logged crash record instead of a torn-down connection —
// the last-resort net under the compute-path panic containment (singleflight
// tags pooled panics as errComputePanic; this catches everything else,
// including panics in the handlers themselves). http.ErrAbortHandler is
// re-raised: it is the sanctioned way to abort a response, not a crash.
func (s *Server) recovering(route string, sw *statusWriter, fn func()) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.panics.Inc()
		log.Printf("crskyd: panic serving %s: %v\n%s", route, rec, debug.Stack())
		if sw.status == 0 {
			s.writeError(sw, http.StatusInternalServerError,
				fmt.Errorf("internal error: panic while serving %s", route))
		}
	}()
	fn()
}

// instrument wraps a handler with the per-request observability pipeline.
// route is the fixed registration pattern (the middleware runs outside the
// mux, so it cannot recover the matched pattern itself).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := &reqMeta{model: modelNone, wantTrace: wantTrace(r)}
		ctx := context.WithValue(r.Context(), metaKey{}, m)
		if m.wantTrace || s.slow != nil {
			m.trace = obs.New()
			ctx = obs.WithTrace(ctx, m.trace)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.recovering(route, sw, func() { h(sw, r.WithContext(ctx)) })
		dur := time.Since(start)

		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing (204-style paths call WriteHeader)
		}
		outcome := outcomeFor(status)
		s.reqHist.With(route, m.model, outcome).Observe(dur)
		if s.slow != nil {
			s.slow.Record(dur, obs.SlowEntry{
				Route:   route,
				Dataset: m.dataset,
				Model:   m.model,
				Outcome: outcome,
				Status:  status,
				Trace:   m.trace.Snapshot(),
			})
		}
	}
}
