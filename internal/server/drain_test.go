package server

import (
	"context"
	"net/http"
	"testing"
	"time"
)

type drainResult struct {
	resp *http.Response
	raw  []byte
}

// TestDrainCompletesInFlightBatch is the graceful half of the drain
// handshake: a v2 NDJSON batch caught in flight by BeginDrain + Shutdown
// runs to completion and streams its items, while new work is rejected
// immediately with a Retry-After.
func TestDrainCompletesInFlightBatch(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1, CacheSize: -1})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.computeHook = func(context.Context) { entered <- struct{}{}; <-release }
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	got := make(chan drainResult, 1)
	go func() {
		resp, raw := c.do(http.MethodPost, "/v2/query", &BatchQueryRequest{
			Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5, NoCache: true})
		got <- drainResult{resp, raw}
	}()
	<-entered

	s.BeginDrain(10 * time.Second)

	// New compute work is shed the moment the drain begins.
	resp, raw := c.do(http.MethodPost, "/v1/query", &QueryRequest{
		Dataset: "demo", Q: w.q, Alpha: 0.5, NoCache: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 carries no Retry-After")
	}

	// The crskyd handshake: Shutdown stops the listener and waits for the
	// in-flight batch, which completes normally once its work finishes.
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- c.ts.Config.Shutdown(shCtx) }()
	close(release)

	r := <-got
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight batch during graceful drain: status %d (body %s)", r.resp.StatusCode, r.raw)
	}
	items := decodeNDJSON[BatchQueryItem](t, r.raw)
	if len(items) != 1 || items[0].Index != 0 {
		t.Fatalf("in-flight batch items = %+v, want the single requested item", items)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	if ps := s.pool.Stats(); ps.InFlight != 0 || ps.QueueDepth != 0 {
		t.Fatalf("pool not empty after drain: %+v", ps)
	}
}

// TestDrainDeadlineCancelsStuckWork is the forcible half: a computation
// that never yields on its own is canceled when the drain grace elapses,
// and the client receives a well-formed 503 error body instead of a hung
// or torn connection.
func TestDrainDeadlineCancelsStuckWork(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1, CacheSize: -1})
	// A pathological computation: blocks until its OWN context is
	// canceled (the drain deadline propagated through mergeCancel), then
	// — like the real engine's cancellation polls — observes it and
	// unwinds. Waiting on drainCtx directly would race the propagation:
	// the engine could finish before the merged context's watcher runs.
	s.computeHook = func(ctx context.Context) { <-ctx.Done() }
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	got := make(chan drainResult, 1)
	go func() {
		resp, raw := c.do(http.MethodPost, "/v2/query", &BatchQueryRequest{
			Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5, NoCache: true})
		got <- drainResult{resp, raw}
	}()
	waitFor(t, "batch in flight", func() bool { return s.pool.Stats().InFlight == 1 })

	start := time.Now()
	s.BeginDrain(50 * time.Millisecond)

	var r drainResult
	select {
	case r = <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("stuck computation survived the drain deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain deadline not honored: request held for %s", elapsed)
	}
	if r.resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("canceled batch: status %d, want 503 (body %s)", r.resp.StatusCode, r.raw)
	}
	var e ErrorResponse
	decodeInto(t, r.raw, &e)
	if e.Error == "" {
		t.Fatal("canceled batch returned no error envelope")
	}
	if r.resp.Header.Get("Retry-After") == "" {
		t.Fatal("canceled batch carries no Retry-After")
	}
	waitFor(t, "pool to drain", func() bool {
		ps := s.pool.Stats()
		return ps.InFlight == 0 && ps.QueueDepth == 0
	})
}
