package server

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/uncertain"
)

// handleMetrics renders the process metrics in the Prometheus text
// exposition format (0.0.4), hand-written over the obs primitives — the
// service takes no dependency on a client library. Families:
//
//	crsky_request_duration_seconds{route,model,outcome}  histogram
//	crsky_pool_wait_seconds                              histogram
//	crsky_pool_*, crsky_cache_*, crsky_flights_*         gauges/counters
//	crsky_requests_total{endpoint}, crsky_explain_*      counters
//	crsky_quadrature_*, crsky_dataset_*                  gauges/counters
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	obs.PromHistogramVec(&b, "crsky_request_duration_seconds",
		"Request latency by route, dataset model, and outcome.", s.reqHist)
	obs.PromHead(&b, "crsky_pool_wait_seconds", "histogram",
		"Time compute requests spent queued for a worker-pool slot.")
	obs.PromHistogram(&b, "crsky_pool_wait_seconds", nil, s.pool.wait.Snapshot())

	ps := s.pool.Stats()
	obs.PromHead(&b, "crsky_pool_workers", "gauge", "Worker-pool capacity.")
	obs.PromValue(&b, "crsky_pool_workers", nil, float64(ps.Workers))
	obs.PromHead(&b, "crsky_pool_inflight", "gauge", "Compute requests currently executing.")
	obs.PromValue(&b, "crsky_pool_inflight", nil, float64(ps.InFlight))
	obs.PromHead(&b, "crsky_pool_queue_depth", "gauge", "Compute requests waiting for a pool slot.")
	obs.PromValue(&b, "crsky_pool_queue_depth", nil, float64(ps.QueueDepth))
	obs.PromHead(&b, "crsky_pool_completed_total", "counter", "Pooled computations completed.")
	obs.PromValue(&b, "crsky_pool_completed_total", nil, float64(ps.Completed))
	obs.PromHead(&b, "crsky_pool_canceled_total", "counter", "Requests canceled while waiting for a slot.")
	obs.PromValue(&b, "crsky_pool_canceled_total", nil, float64(ps.Canceled))

	as := s.approxPool.Stats()
	obs.PromHead(&b, "crsky_approx_pool_workers", "gauge", "Reserved degraded-tier pool capacity.")
	obs.PromValue(&b, "crsky_approx_pool_workers", nil, float64(as.Workers))
	obs.PromHead(&b, "crsky_approx_pool_inflight", "gauge", "Degraded-tier computations currently executing.")
	obs.PromValue(&b, "crsky_approx_pool_inflight", nil, float64(as.InFlight))
	obs.PromHead(&b, "crsky_approx_pool_queue_depth", "gauge", "Degraded-tier computations waiting for a slot.")
	obs.PromValue(&b, "crsky_approx_pool_queue_depth", nil, float64(as.QueueDepth))
	obs.PromHead(&b, "crsky_approx_answers_total", "counter", "Responses served from the approximate Monte Carlo tier.")
	obs.PromValue(&b, "crsky_approx_answers_total", nil, float64(s.approxAnswers.Value()))

	obs.PromHead(&b, "crsky_shed_total", "counter", "Requests rejected by admission control, by priority class.")
	obs.PromValue(&b, "crsky_shed_total", []obs.Label{{Name: "class", Value: "batch"}}, float64(s.shedBatch.Value()))
	obs.PromValue(&b, "crsky_shed_total", []obs.Label{{Name: "class", Value: "explain"}}, float64(s.shedExplain.Value()))
	obs.PromValue(&b, "crsky_shed_total", []obs.Label{{Name: "class", Value: "query"}}, float64(s.shedQuery.Value()))
	obs.PromHead(&b, "crsky_admission_est_wait_seconds", "gauge", "Estimated pool wait (queue depth x median slot wait).")
	obs.PromValue(&b, "crsky_admission_est_wait_seconds", nil, s.estWait().Seconds())
	obs.PromHead(&b, "crsky_draining", "gauge", "1 while the server is draining for shutdown.")
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	obs.PromValue(&b, "crsky_draining", nil, draining)
	obs.PromHead(&b, "crsky_panics_total", "counter", "Handler panics recovered into 500 responses.")
	obs.PromValue(&b, "crsky_panics_total", nil, float64(s.panics.Value()))

	cs := s.cache.Stats()
	obs.PromHead(&b, "crsky_cache_entries", "gauge", "Result-cache entries.")
	obs.PromValue(&b, "crsky_cache_entries", nil, float64(cs.Size))
	obs.PromHead(&b, "crsky_cache_hits_total", "counter", "Result-cache hits.")
	obs.PromValue(&b, "crsky_cache_hits_total", nil, float64(cs.Hits))
	obs.PromHead(&b, "crsky_cache_misses_total", "counter", "Result-cache misses.")
	obs.PromValue(&b, "crsky_cache_misses_total", nil, float64(cs.Misses))
	obs.PromHead(&b, "crsky_cache_evictions_total", "counter", "Result-cache evictions.")
	obs.PromValue(&b, "crsky_cache_evictions_total", nil, float64(cs.Evictions))

	fs := s.flights.Stats()
	obs.PromHead(&b, "crsky_flights_executed_total", "counter", "Singleflight computations executed.")
	obs.PromValue(&b, "crsky_flights_executed_total", nil, float64(fs.Executed))
	obs.PromHead(&b, "crsky_flights_deduped_total", "counter", "Requests that shared an in-flight computation.")
	obs.PromValue(&b, "crsky_flights_deduped_total", nil, float64(fs.Deduped))

	obs.PromHead(&b, "crsky_requests_total", "counter", "Compute requests by endpoint.")
	obs.PromValue(&b, "crsky_requests_total", []obs.Label{{Name: "endpoint", Value: "query"}}, float64(s.reqQuery.Value()))
	obs.PromValue(&b, "crsky_requests_total", []obs.Label{{Name: "endpoint", Value: "explain"}}, float64(s.reqExplain.Value()))
	obs.PromValue(&b, "crsky_requests_total", []obs.Label{{Name: "endpoint", Value: "repair"}}, float64(s.reqRepair.Value()))
	obs.PromHead(&b, "crsky_request_errors_total", "counter", "Requests answered with an error response.")
	obs.PromValue(&b, "crsky_request_errors_total", nil, float64(s.reqErrors.Value()))

	obs.PromHead(&b, "crsky_mutations_total", "counter", "Committed object mutations by op and dataset model.")
	for _, op := range []string{"insert", "delete"} {
		for _, model := range []string{ModelCertain, ModelSample, ModelPDF} {
			if c := s.mutations[op+"|"+model]; c != nil {
				obs.PromValue(&b, "crsky_mutations_total",
					[]obs.Label{{Name: "op", Value: op}, {Name: "model", Value: model}}, float64(c.Value()))
			}
		}
	}

	ws := s.watch.Stats()
	obs.PromHead(&b, "crsky_watch_active", "gauge", "Open /v2/watch subscriptions.")
	obs.PromValue(&b, "crsky_watch_active", nil, float64(ws.Active))
	obs.PromHead(&b, "crsky_watch_events_total", "counter", "Watch events delivered, by kind.")
	obs.PromValue(&b, "crsky_watch_events_total", []obs.Label{{Name: "kind", Value: "registered"}}, float64(ws.Registered))
	obs.PromValue(&b, "crsky_watch_events_total", []obs.Label{{Name: "kind", Value: "flipped"}}, float64(ws.Flipped))
	obs.PromValue(&b, "crsky_watch_events_total", []obs.Label{{Name: "kind", Value: "repair_shrunk"}}, float64(ws.RepairShrunk))
	obs.PromValue(&b, "crsky_watch_events_total", []obs.Label{{Name: "kind", Value: "deleted"}}, float64(ws.Deleted))
	obs.PromHead(&b, "crsky_watch_pruned_total", "counter", "Subscriptions skipped by the mutation-window bound.")
	obs.PromValue(&b, "crsky_watch_pruned_total", nil, float64(ws.Pruned))
	obs.PromHead(&b, "crsky_watch_dropped_total", "counter", "Watch events dropped on slow subscriber buffers.")
	obs.PromValue(&b, "crsky_watch_dropped_total", nil, float64(ws.Dropped))
	obs.PromHead(&b, "crsky_watch_reeval_seconds", "histogram",
		"Latency of one post-mutation watch re-evaluation round.")
	obs.PromHistogram(&b, "crsky_watch_reeval_seconds", nil, s.watchReeval.Snapshot())
	obs.PromHead(&b, "crsky_upload_rejected_total", "counter", "Request bodies refused with 413 for exceeding the size cap.")
	obs.PromValue(&b, "crsky_upload_rejected_total", nil, float64(s.uploadRejected.Value()))

	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		obs.PromHead(&b, "crsky_store_datasets", "gauge", "Datasets held by the durable store.")
		obs.PromValue(&b, "crsky_store_datasets", nil, float64(ss.Datasets))
		obs.PromHead(&b, "crsky_store_wal_bytes", "gauge", "Current write-ahead log size.")
		obs.PromValue(&b, "crsky_store_wal_bytes", nil, float64(ss.WALBytes))
		obs.PromHead(&b, "crsky_store_wal_appends_total", "counter", "Committed WAL records since open.")
		obs.PromValue(&b, "crsky_store_wal_appends_total", nil, float64(ss.WALAppends))
		obs.PromHead(&b, "crsky_store_snapshots_written_total", "counter", "Snapshot checkpoints written since open.")
		obs.PromValue(&b, "crsky_store_snapshots_written_total", nil, float64(ss.SnapshotsWritten))
		obs.PromHead(&b, "crsky_store_compactions_total", "counter", "WAL compactions since open.")
		obs.PromValue(&b, "crsky_store_compactions_total", nil, float64(ss.Compactions))
		obs.PromHead(&b, "crsky_store_corrupt_total", "counter", "Files quarantined for failing integrity checks.")
		obs.PromValue(&b, "crsky_store_corrupt_total", nil, float64(ss.CorruptTotal))
	}

	obs.PromHead(&b, "crsky_explain_computed_total", "counter", "Explanations computed (cache hits excluded).")
	obs.PromValue(&b, "crsky_explain_computed_total", nil, float64(s.explainComputed.Value()))
	obs.PromHead(&b, "crsky_explain_subsets_examined_total", "counter", "Refinement subset verifications.")
	obs.PromValue(&b, "crsky_explain_subsets_examined_total", nil, float64(s.explainSubsets.Value()))
	obs.PromHead(&b, "crsky_explain_greedy_seeds_total", "counter", "Greedy incumbent seeds.")
	obs.PromValue(&b, "crsky_explain_greedy_seeds_total", nil, float64(s.explainGreedySeeds.Value()))
	obs.PromHead(&b, "crsky_explain_greedy_hits_total", "counter", "Greedy incumbents that were already minimal.")
	obs.PromValue(&b, "crsky_explain_greedy_hits_total", nil, float64(s.explainGreedyHits.Value()))
	obs.PromHead(&b, "crsky_explain_filter_node_accesses_total", "counter", "Candidate-retrieval node accesses.")
	obs.PromValue(&b, "crsky_explain_filter_node_accesses_total", nil, float64(s.explainFilterIO.Value()))

	quad := uncertain.QuadMemoMetrics()
	obs.PromHead(&b, "crsky_quadrature_memo_hits_total", "counter", "Quadrature rule memo hits.")
	obs.PromValue(&b, "crsky_quadrature_memo_hits_total", nil, float64(quad.Hits))
	obs.PromHead(&b, "crsky_quadrature_memo_misses_total", "counter", "Quadrature rule memo misses.")
	obs.PromValue(&b, "crsky_quadrature_memo_misses_total", nil, float64(quad.Misses))

	infos := s.reg.list()
	obs.PromHead(&b, "crsky_datasets", "gauge", "Registered datasets.")
	obs.PromValue(&b, "crsky_datasets", nil, float64(len(infos)))
	obs.PromHead(&b, "crsky_dataset_objects", "gauge", "Objects per registered dataset.")
	for _, info := range infos {
		obs.PromValue(&b, "crsky_dataset_objects",
			[]obs.Label{{Name: "dataset", Value: info.Name}, {Name: "model", Value: info.Model}}, float64(info.Size))
	}
	obs.PromHead(&b, "crsky_dataset_node_accesses_total", "counter", "Simulated index I/O per dataset since registration.")
	for _, info := range infos {
		obs.PromValue(&b, "crsky_dataset_node_accesses_total",
			[]obs.Label{{Name: "dataset", Value: info.Name}, {Name: "model", Value: info.Model}}, float64(info.NodeAccesses))
	}

	if s.slow != nil {
		obs.PromHead(&b, "crsky_slow_queries_total", "counter", "Requests logged above the slow-query threshold.")
		obs.PromValue(&b, "crsky_slow_queries_total", nil, float64(s.slow.Written()))
	}

	obs.PromHead(&b, "crsky_uptime_seconds", "gauge", "Seconds since server start.")
	obs.PromValue(&b, "crsky_uptime_seconds", nil, time.Since(s.start).Seconds())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// AdminHandler returns the opt-in admin mux: /metrics (Prometheus text)
// and the net/http/pprof profiling endpoints. It is intentionally separate
// from Handler so deployments bind it to a loopback or otherwise shielded
// listener — profiles and metrics are operator surface, not client API.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
