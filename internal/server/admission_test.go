package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/crsky/crsky/internal/dataset"
)

func decodeInto(tb testing.TB, raw []byte, out any) {
	tb.Helper()
	if err := json.Unmarshal(raw, out); err != nil {
		tb.Fatalf("bad JSON %s: %v", raw, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// --- unit: the controller's arithmetic ---------------------------------

func TestRetryAfterComputed(t *testing.T) {
	s := New(Config{Workers: 1})
	// No queue, no wait history: the floor, never "0".
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("idle retryAfter = %q, want 1", got)
	}

	// 3 queued × ~2s median wait: a computed value, not the old
	// hardcoded "1".
	for i := 0; i < 16; i++ {
		s.pool.wait.Observe(2 * time.Second)
	}
	for i := 0; i < 3; i++ {
		s.pool.queued.Inc()
	}
	secs, err := strconv.Atoi(s.retryAfter())
	if err != nil {
		t.Fatalf("retryAfter not an integer: %v", err)
	}
	if secs < 2 || secs > 30 {
		t.Fatalf("retryAfter = %d, want a few seconds (queue 3 × median ~2s)", secs)
	}

	// A pathological queue is capped, not reported verbatim.
	for i := 0; i < 100; i++ {
		s.pool.queued.Inc()
	}
	if got := s.retryAfter(); got != "30" {
		t.Fatalf("capped retryAfter = %q, want 30", got)
	}
}

func TestQueueCapsOrderClasses(t *testing.T) {
	s := New(Config{Workers: 2, MaxQueue: 8})
	b, e, q := s.queueCap(classBatch), s.queueCap(classExplain), s.queueCap(classQuery)
	if b != 2 || e != 4 || q != 8 {
		t.Fatalf("caps (batch,explain,query) = (%d,%d,%d), want (2,4,8)", b, e, q)
	}
	// Tiny budgets floor at 1 so no class is permanently locked out.
	s2 := New(Config{Workers: 1, MaxQueue: 1})
	if s2.queueCap(classBatch) != 1 {
		t.Fatalf("batch cap with MaxQueue=1 is %d, want floor 1", s2.queueCap(classBatch))
	}
}

func TestAdmitShedsWhenWaitExceedsDeadline(t *testing.T) {
	s := New(Config{Workers: 1})
	// No backlog: even a tight deadline is admitted.
	if err := s.admit(classQuery, time.Millisecond); err != nil {
		t.Fatalf("idle admit: %v", err)
	}
	// Build an estimated wait of seconds, then offer a millisecond budget.
	for i := 0; i < 16; i++ {
		s.pool.wait.Observe(time.Second)
	}
	for i := 0; i < 4; i++ {
		s.pool.queued.Inc()
	}
	err := s.admit(classQuery, 5*time.Millisecond)
	if !errors.Is(err, errShed) {
		t.Fatalf("admit with hopeless deadline = %v, want errShed", err)
	}
	if got := s.shedQuery.Value(); got != 1 {
		t.Fatalf("shedQuery = %d, want 1", got)
	}
	// The same backlog with no deadline still queues.
	if err := s.admit(classQuery, 0); err != nil {
		t.Fatalf("admit without deadline: %v", err)
	}
}

func TestAdmitShedsWhileDraining(t *testing.T) {
	s := New(Config{Workers: 1})
	s.BeginDrain(time.Hour)
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if err := s.admit(classQuery, 0); !errors.Is(err, errShed) {
		t.Fatalf("admit while draining = %v, want errShed", err)
	}
	select {
	case <-s.drainCtx.Done():
		t.Fatal("drain context canceled before the grace period")
	default:
	}

	s2 := New(Config{Workers: 1})
	s2.BeginDrain(0)
	select {
	case <-s2.drainCtx.Done():
	case <-time.After(time.Second):
		t.Fatal("zero-grace drain did not cancel the drain context")
	}
}

func TestPriorityFromHeader(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/explain", nil)
	if got := priorityFrom(r, classExplain); got != classExplain {
		t.Fatalf("default class = %v, want explain", got)
	}
	r.Header.Set(headerPriority, "Batch")
	if got := priorityFrom(r, classExplain); got != classBatch {
		t.Fatalf("header override = %v, want batch", got)
	}
	r.Header.Set(headerPriority, "nonsense")
	if got := priorityFrom(r, classQuery); got != classQuery {
		t.Fatalf("bad header = %v, want the endpoint default", got)
	}
}

// --- end-to-end: overload sheds with a computed Retry-After -------------

func TestServerShedsUnderOverload(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1, MaxQueue: 2, CacheSize: -1})
	block := make(chan struct{})
	s.computeHook = func(context.Context) { <-block }
	c := newTestClient(t, s)
	c.registerSample("lUrU", w.ds)

	// Launch requests one at a time, waiting for each to reach a terminal
	// admission state (executing, queued, or shed) so the outcome is
	// deterministic: 1 executes, 2 queue (query cap = MaxQueue = 2), 3 shed.
	const total = 6
	var wg sync.WaitGroup
	codes := make(chan int, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := []float64{w.q[0] + float64(i)*1e-7, w.q[1]}
			resp, _ := c.do(http.MethodPost, "/v1/query", &QueryRequest{
				Dataset: "lUrU", Q: q, Alpha: 0.5, NoCache: true})
			if resp.StatusCode == http.StatusServiceUnavailable {
				ra := resp.Header.Get("Retry-After")
				if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
					t.Errorf("503 Retry-After = %q, want an integer >= 1", ra)
				}
			}
			codes <- resp.StatusCode
		}(i)
		launched := int64(i + 1)
		waitFor(t, "request to settle", func() bool {
			ps := s.pool.Stats()
			shed := s.shedQuery.Value()
			return ps.InFlight+ps.QueueDepth+shed >= launched
		})
	}
	close(block)
	wg.Wait()
	close(codes)

	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d under overload (want only 200 or 503)", code)
		}
	}
	if ok != 3 || shed != 3 {
		t.Fatalf("ok=%d shed=%d, want 3 and 3", ok, shed)
	}

	var st StatsResponse
	c.mustGet("/v1/stats", &st)
	if st.Admission.ShedQuery != 3 {
		t.Fatalf("stats shedQuery = %d, want 3", st.Admission.ShedQuery)
	}
	if st.Pool.InFlight != 0 || st.Pool.QueueDepth != 0 {
		t.Fatalf("pool not drained after overload: %+v", st.Pool)
	}

	// Recovered capacity serves again.
	s.computeHook = nil
	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "lUrU", Q: w.q, Alpha: 0.5}, &qr, http.StatusOK)
}

// mustGet fetches a JSON endpoint into out.
func (c *testClient) mustGet(path string, out any) {
	c.tb.Helper()
	resp, raw := c.do(http.MethodGet, path, nil)
	if resp.StatusCode != http.StatusOK {
		c.tb.Fatalf("GET %s: %d (%s)", path, resp.StatusCode, raw)
	}
	decodeInto(c.tb, raw, out)
}

// --- end-to-end: the approximate tier ----------------------------------

// undecidedWorkload registers a dataset/query pair whose filter bounds leave
// Monte Carlo work to do (the sampleWorkload is fully bound-decided at its
// canonical q, which would make the approximate tier trivially exact).
func undecidedWorkload(t *testing.T, c *testClient, name string) []float64 {
	t.Helper()
	ds, err := dataset.GenerateUncertain(dataset.LUrU(400, 2, 50, 900, 23))
	if err != nil {
		t.Fatal(err)
	}
	c.registerSample(name, ds)
	return []float64{5000, 5000}
}

func TestQueryApproxAlways(t *testing.T) {
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	q := undecidedWorkload(t, c, "lUrU")

	req := &QueryRequest{Dataset: "lUrU", Q: q, Alpha: 0.5, Approx: "always", Epsilon: 0.03}
	var qr QueryResponse
	resp := c.post("/v1/query", req, &qr, http.StatusOK)
	if got := resp.Header.Get(headerCache); got != "bypass" {
		t.Fatalf("approx response cache header %q, want bypass (never cached)", got)
	}
	if !qr.Approx {
		t.Fatalf("approx=always response not marked approximate: %+v", qr)
	}
	if len(qr.Intervals) == 0 {
		t.Fatal("approximate response carries no confidence intervals")
	}
	if qr.Epsilon != 0.03 || qr.Confidence != 0.95 {
		t.Fatalf("error budget echoed as (%g, %g), want (0.03, 0.95)", qr.Epsilon, qr.Confidence)
	}
	// Hoeffding at eps=0.03, delta=0.05 needs ~2050 iterations.
	if qr.Iters < 1000 {
		t.Fatalf("iters = %d, too few for eps=0.03", qr.Iters)
	}
	for _, iv := range qr.Intervals {
		if !(0 <= iv.Lo && iv.Lo <= iv.Pr && iv.Pr <= iv.Hi && iv.Hi <= 1) {
			t.Fatalf("malformed interval %+v", iv)
		}
		if iv.Hi-iv.Lo > 2*0.03+1e-9 {
			t.Fatalf("interval %+v wider than 2*epsilon", iv)
		}
	}
	for i := 1; i < len(qr.Answers); i++ {
		if qr.Answers[i-1] >= qr.Answers[i] {
			t.Fatalf("answers not ascending: %v", qr.Answers)
		}
	}

	// Seeded sampling: the same request is deterministic.
	var qr2 QueryResponse
	c.post("/v1/query", req, &qr2, http.StatusOK)
	if len(qr2.Answers) != len(qr.Answers) || len(qr2.Intervals) != len(qr.Intervals) {
		t.Fatalf("approx response not deterministic: %d/%d answers, %d/%d intervals",
			len(qr.Answers), len(qr2.Answers), len(qr.Intervals), len(qr2.Intervals))
	}
	for i := range qr.Intervals {
		if qr.Intervals[i] != qr2.Intervals[i] {
			t.Fatalf("interval %d differs across identical requests: %+v vs %+v",
				i, qr.Intervals[i], qr2.Intervals[i])
		}
	}

	var st StatsResponse
	c.mustGet("/v1/stats", &st)
	if st.Requests.Approx < 2 {
		t.Fatalf("approx counter = %d, want >= 2", st.Requests.Approx)
	}
	if st.ApproxPool.Completed < 2 {
		t.Fatalf("approx pool completed = %d, want >= 2", st.ApproxPool.Completed)
	}
}

func TestQueryApproxAutoFallsBackWhenShed(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueue: 1, CacheSize: -1, ApproxWorkers: 1})
	block := make(chan struct{})
	s.computeHook = func(context.Context) { <-block }
	defer close(block)
	c := newTestClient(t, s)
	q := undecidedWorkload(t, c, "lUrU")

	done := make(chan struct{}, 2)
	// Saturate the exact tier: one request holds the only slot, one fills
	// the query class's whole queue budget.
	go func() {
		c.do(http.MethodPost, "/v1/query", &QueryRequest{
			Dataset: "lUrU", Q: []float64{q[0] + 1, q[1]}, Alpha: 0.5, NoCache: true})
		done <- struct{}{}
	}()
	waitFor(t, "slot occupied", func() bool { return s.pool.Stats().InFlight == 1 })
	go func() {
		c.do(http.MethodPost, "/v1/query", &QueryRequest{
			Dataset: "lUrU", Q: []float64{q[0] + 2, q[1]}, Alpha: 0.5, NoCache: true})
		done <- struct{}{}
	}()
	waitFor(t, "queue filled", func() bool { return s.pool.Stats().QueueDepth == 1 })

	// An auto request now sheds from the exact tier and must come back 200
	// from the reserved approximate pool instead of 503.
	var qr QueryResponse
	resp := c.post("/v1/query", &QueryRequest{
		Dataset: "lUrU", Q: q, Alpha: 0.5, NoCache: true, Approx: "auto"}, &qr, http.StatusOK)
	if got := resp.Header.Get(headerCache); got != "bypass" {
		t.Fatalf("fallback response cache header %q, want bypass", got)
	}
	if !qr.Approx {
		t.Fatalf("fallback answer not marked approximate: %+v", qr)
	}
	if s.shedQuery.Value() < 1 {
		t.Fatal("exact tier never shed — the fallback was not exercised")
	}
	if s.approxAnswers.Value() != 1 {
		t.Fatalf("approxAnswers = %d, want 1", s.approxAnswers.Value())
	}

	// A never-mode request in the same state stays a plain 503.
	resp2, _ := c.do(http.MethodPost, "/v1/query", &QueryRequest{
		Dataset: "lUrU", Q: []float64{q[0] + 3, q[1]}, Alpha: 0.5, NoCache: true})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exact-only request under overload: %d, want 503", resp2.StatusCode)
	}

	block <- struct{}{}
	block <- struct{}{}
	<-done
	<-done
}

// --- end-to-end: panic containment -------------------------------------

func TestPanicRecoveredAndCounted(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 2, CacheSize: -1})
	s.computeHook = func(context.Context) { panic("kaboom") }
	c := newTestClient(t, s)
	c.registerSample("lUrU", w.ds)

	// v2: no singleflight between the handler and the pool — the panic
	// unwinds to the middleware.
	resp, raw := c.do(http.MethodPost, "/v2/query", &BatchQueryRequest{
		Dataset: "lUrU", Qs: [][]float64{w.q}, Alpha: 0.5, NoCache: true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("v2 panic: status %d, want 500 (body %s)", resp.StatusCode, raw)
	}
	var e ErrorResponse
	decodeInto(t, raw, &e)
	if e.Error == "" {
		t.Fatal("panic 500 carries no error envelope")
	}

	// v1: the singleflight leader re-panics after tagging sharers.
	resp2, _ := c.do(http.MethodPost, "/v1/query", &QueryRequest{
		Dataset: "lUrU", Q: w.q, Alpha: 0.5, NoCache: true})
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("v1 panic: status %d, want 500", resp2.StatusCode)
	}

	if got := s.panics.Value(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}
	if ps := s.pool.Stats(); ps.InFlight != 0 || ps.QueueDepth != 0 {
		t.Fatalf("pool slot leaked across panic: %+v", ps)
	}

	// The process survives and serves normally afterwards.
	s.computeHook = nil
	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "lUrU", Q: w.q, Alpha: 0.5, NoCache: true},
		&qr, http.StatusOK)
}
