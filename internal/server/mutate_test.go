package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/crsky/crsky/internal/store"
	"github.com/crsky/crsky/internal/watch"
)

// flipScenario is the hand-built certain-model configuration every
// dynamic-plane test reuses: q at the origin, object 1 ("an") blocked
// out of the reverse skyline solely by object 0 ("blocker") sitting
// strictly between an and q. Deleting the blocker flips an into the
// answer set; nothing else can.
var flipScenario = &DatasetRequest{Name: "flip", Model: ModelCertain, Points: [][]float64{
	{1, 1},   // 0: blocker — dominates q w.r.t. an
	{4, 4},   // 1: an — non-answer while the blocker lives
	{20, 20}, // 2: bystander, far outside every dominance window
}}

var flipQ = []float64{0, 0}

func queryAnswers(t *testing.T, c *testClient, name string, q []float64, noCache bool) ([]int, *http.Response) {
	t.Helper()
	var qr QueryResponse
	resp := c.post("/v1/query", &QueryRequest{Dataset: name, Q: q, NoCache: noCache}, &qr, http.StatusOK)
	return qr.Answers, resp
}

// TestObjectMutationEndpoints drives the full HTTP mutation surface on
// the certain model: insert shifts the answer set, delete flips the
// blocked non-answer in, generations advance, and the error surface
// (unknown dataset, bad payload, bad ID, double delete) maps to the
// right statuses.
func TestObjectMutationEndpoints(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2}))
	var info DatasetInfo
	c.post("/v1/datasets", flipScenario, &info, http.StatusCreated)

	if ids, _ := queryAnswers(t, c, "flip", flipQ, false); containsID(ids, 1) {
		t.Fatalf("scenario broken: an already an answer: %v", ids)
	}

	// Insert: next positional ID, size grows, generation advances.
	var mr MutationResponse
	c.post("/v2/datasets/flip/objects", &ObjectInsertRequest{Point: []float64{30, 30}}, &mr, http.StatusOK)
	if mr.ID != 3 || mr.Size != 4 || mr.Op != "insert" || mr.Generation <= info.Generation {
		t.Fatalf("insert ack = %+v (registered gen %d)", mr, info.Generation)
	}

	// Delete the blocker over HTTP: an must flip into the answer set.
	resp, raw := c.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}
	var dr MutationResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.ID != 0 || dr.Op != "delete" || dr.Generation <= mr.Generation {
		t.Fatalf("delete ack = %+v", dr)
	}
	// Size counts positional slots (IDs are never reused), so a delete
	// does not shrink it.
	if dr.Size != 4 {
		t.Fatalf("delete ack size = %d, want 4", dr.Size)
	}
	if ids, _ := queryAnswers(t, c, "flip", flipQ, false); !containsID(ids, 1) {
		t.Fatalf("an did not flip after blocker delete: %v", ids)
	}

	// Error surface.
	c.post("/v2/datasets/ghost/objects", &ObjectInsertRequest{Point: []float64{1, 2}}, nil, http.StatusNotFound)
	c.post("/v2/datasets/flip/objects", &ObjectInsertRequest{}, nil, http.StatusBadRequest)
	c.post("/v2/datasets/flip/objects", &ObjectInsertRequest{
		Point: []float64{1, 2}, Samples: []SampleSpec{{P: 1, Loc: []float64{1, 2}}},
	}, nil, http.StatusBadRequest)
	if resp, _ := c.do(http.MethodDelete, "/v2/datasets/flip/objects/99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete out-of-range: status %d", resp.StatusCode)
	}
	if resp, _ := c.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
	if resp, _ := c.do(http.MethodDelete, "/v2/datasets/flip/objects/x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric id: status %d", resp.StatusCode)
	}
}

// TestMutateThenQueryCacheMiss is the generation-key regression test: a
// cached answer must never survive a mutation, because the dataset
// generation is folded into every cache key.
func TestMutateThenQueryCacheMiss(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 64}))
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)

	before, resp := queryAnswers(t, c, "flip", flipQ, false)
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first query cache = %q, want miss", got)
	}
	if _, resp = queryAnswers(t, c, "flip", flipQ, false); resp.Header.Get(headerCache) != "hit" {
		t.Fatalf("second query cache = %q, want hit", resp.Header.Get(headerCache))
	}

	resp, raw := c.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}

	after, resp := queryAnswers(t, c, "flip", flipQ, false)
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("post-mutation query cache = %q, want miss (stale generation served)", got)
	}
	if reflect.DeepEqual(before, after) || !containsID(after, 1) {
		t.Fatalf("post-mutation answers = %v (before %v): mutation not visible", after, before)
	}
}

// TestMutationDurabilityAcrossRestart commits mutations on a store-backed
// server, reopens the directory cold, and demands the recovered engine
// answer identically — the WAL-commit-before-apply contract surfaced at
// the HTTP layer.
func TestMutationDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	c1 := newTestClient(t, s1)
	c1.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	var mr MutationResponse
	c1.post("/v2/datasets/flip/objects", &ObjectInsertRequest{Point: []float64{2, 0.5}}, &mr, http.StatusOK)
	if mr.Seq == 0 {
		t.Fatal("durable mutation acknowledged without a WAL sequence")
	}
	if resp, raw := c1.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}
	want, _ := queryAnswers(t, c1, "flip", flipQ, true)
	wantInfo := DatasetInfo{}
	c1.mustGet("/v1/datasets/flip", &wantInfo)
	s1.cfg.Store.Close()

	s2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	loaded, quarantined, err := s2.LoadFromStore()
	if err != nil || loaded != 1 || len(quarantined) != 0 {
		t.Fatalf("LoadFromStore = %d loaded, %v quarantined, err %v", loaded, quarantined, err)
	}
	c2 := newTestClient(t, s2)
	got, _ := queryAnswers(t, c2, "flip", flipQ, true)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered answers = %v, want %v", got, want)
	}
	gotInfo := DatasetInfo{}
	c2.mustGet("/v1/datasets/flip", &gotInfo)
	if gotInfo.Size != wantInfo.Size || gotInfo.Dims != wantInfo.Dims {
		t.Fatalf("recovered info = %+v, want %+v", gotInfo, wantInfo)
	}
	// The tombstone must have survived: the deleted ID stays invalid.
	if resp, _ := c2.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tombstone lost across restart: delete status %d", resp.StatusCode)
	}
}

// TestCrashBetweenCommitAndApply simulates the worst crash point: the
// mutation reached the WAL (the commit point) but the process died
// before the successor engine was installed. Recovery must replay the
// log and serve the post-mutation state.
func TestCrashBetweenCommitAndApply(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 2, Store: st1})
	c1 := newTestClient(t, s1)
	c1.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	// WAL-commit the blocker's delete directly, bypassing the registry:
	// in-memory state still has object 0, exactly as if we crashed after
	// the append and before the install.
	if _, err := st1.AppendMutation("flip", store.Mutation{Op: store.MutDelete, ID: 0}); err != nil {
		t.Fatal(err)
	}
	if ids, _ := queryAnswers(t, c1, "flip", flipQ, true); containsID(ids, 1) {
		t.Fatalf("pre-crash memory already mutated: %v", ids)
	}
	st1.Close()

	s2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	if loaded, quarantined, err := s2.LoadFromStore(); err != nil || loaded != 1 || len(quarantined) != 0 {
		t.Fatalf("LoadFromStore = %d loaded, %v quarantined, err %v", loaded, quarantined, err)
	}
	c2 := newTestClient(t, s2)
	if ids, _ := queryAnswers(t, c2, "flip", flipQ, true); !containsID(ids, 1) {
		t.Fatalf("recovery lost the committed delete: answers %v", ids)
	}
	if resp, _ := c2.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("committed delete not replayed as a tombstone: status %d", resp.StatusCode)
	}
}

// watchStream opens a /v2/watch subscription and returns a line reader
// over the NDJSON stream plus a closer.
func watchStream(t *testing.T, c *testClient, req *WatchRequest) (*bufio.Scanner, func()) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.ts.URL+"/v2/watch", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var buf [512]byte
		n, _ := resp.Body.Read(buf[:])
		t.Fatalf("watch: status %d (%s)", resp.StatusCode, buf[:n])
	}
	return bufio.NewScanner(resp.Body), func() { resp.Body.Close() }
}

func nextEvent(t *testing.T, sc *bufio.Scanner) watch.Event {
	t.Helper()
	done := make(chan struct{})
	var ev watch.Event
	go func() {
		defer close(done)
		if !sc.Scan() {
			t.Errorf("watch stream ended: %v", sc.Err())
			return
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Errorf("bad watch line %q: %v", sc.Text(), err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a watch event")
	}
	return ev
}

// TestWatchFlipOnDelete is the headline acceptance path: subscribe to the
// blocked non-answer, delete its blocking cause over HTTP (durably), and
// receive exactly one terminal "flipped" event at the post-mutation
// generation.
func TestWatchFlipOnDelete(t *testing.T) {
	s := New(Config{Workers: 4, Store: openStore(t, t.TempDir())})
	c := newTestClient(t, s)
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)

	sc, closeStream := watchStream(t, c, &WatchRequest{Dataset: "flip", Q: flipQ, An: 1})
	defer closeStream()
	reg := nextEvent(t, sc)
	if reg.Event != watch.KindRegistered || reg.An != 1 || reg.Answer {
		t.Fatalf("first line = %+v, want registered", reg)
	}

	var mr MutationResponse
	resp, raw := c.do(http.MethodDelete, "/v2/datasets/flip/objects/0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}

	ev := nextEvent(t, sc)
	if ev.Event != watch.KindFlipped || ev.An != 1 || !ev.Answer {
		t.Fatalf("flip event = %+v", ev)
	}
	if ev.Generation != mr.Generation {
		t.Fatalf("flip generation = %d, mutation installed %d", ev.Generation, mr.Generation)
	}
	// Terminal: the stream ends, no second event.
	if sc.Scan() {
		t.Fatalf("unexpected event after terminal flip: %q", sc.Text())
	}
	s.watch.WaitIdle()
	if st := s.watch.Stats(); st.Flipped != 1 {
		t.Fatalf("watch stats = %+v, want exactly one flip", st)
	}
}

// TestWatchDeletedAnTerminates: deleting the WATCHED object itself ends
// the stream with a terminal "deleted" event, no re-evaluation needed.
func TestWatchDeletedAnTerminates(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2}))
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	sc, closeStream := watchStream(t, c, &WatchRequest{Dataset: "flip", Q: flipQ, An: 1})
	defer closeStream()
	if ev := nextEvent(t, sc); ev.Event != watch.KindRegistered {
		t.Fatalf("first line = %+v", ev)
	}
	if resp, raw := c.do(http.MethodDelete, "/v2/datasets/flip/objects/1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}
	if ev := nextEvent(t, sc); ev.Event != watch.KindDeleted || ev.An != 1 {
		t.Fatalf("event = %+v, want deleted", ev)
	}
}

// TestWatchPrunesUnaffected: a mutation far outside the subscription's
// dominance window must be skipped without a re-evaluation round
// touching the subscriber.
func TestWatchPrunesUnaffected(t *testing.T) {
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	sc, closeStream := watchStream(t, c, &WatchRequest{Dataset: "flip", Q: flipQ, An: 1})
	defer closeStream()
	if ev := nextEvent(t, sc); ev.Event != watch.KindRegistered {
		t.Fatalf("first line = %+v", ev)
	}
	// (200, 200) is far outside DomRectUnionOuter(an=(4,4), q=(0,0)).
	c.post("/v2/datasets/flip/objects", &ObjectInsertRequest{Point: []float64{200, 200}}, nil, http.StatusOK)
	s.watch.WaitIdle()
	st := s.watch.Stats()
	if st.Pruned != 1 || st.Flipped != 0 || st.Reevals != 0 {
		t.Fatalf("watch stats after out-of-window insert = %+v, want 1 pruned, 0 reevals", st)
	}
}

// TestWatchRejections covers the subscription error surface: watching an
// answer is 422, a missing object 404, an unknown dataset 404.
func TestWatchRejections(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2}))
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	// Object 0 at (1,1) IS in the reverse skyline of q.
	c.post("/v2/watch", &WatchRequest{Dataset: "flip", Q: flipQ, An: 0}, nil, http.StatusUnprocessableEntity)
	c.post("/v2/watch", &WatchRequest{Dataset: "flip", Q: flipQ, An: 99}, nil, http.StatusNotFound)
	c.post("/v2/watch", &WatchRequest{Dataset: "ghost", Q: flipQ, An: 0}, nil, http.StatusNotFound)
}

// TestWatchMetricsExposed: the S4 observability families are on /metrics.
func TestWatchMetricsExposed(t *testing.T) {
	s := New(Config{Workers: 2})
	c := newTestClient(t, s)
	c.post("/v1/datasets", flipScenario, nil, http.StatusCreated)
	c.post("/v2/datasets/flip/objects", &ObjectInsertRequest{Point: []float64{7, 7}}, nil, http.StatusOK)

	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()
	resp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`crsky_mutations_total{op="insert",model="certain"} 1`,
		"crsky_watch_active 0",
		`crsky_watch_events_total{kind="flipped"} 0`,
		"crsky_watch_reeval_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
