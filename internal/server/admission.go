package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/crsky/crsky/internal/stats"
)

// This file is the admission controller: the reflex in front of the worker
// pool that turns saturation into fast, honest rejections instead of
// unbounded queueing. It watches the two signals the pool already measures
// — queue depth and the pool-wait histogram — and sheds by priority class:
//
//	batch (v2 endpoints)  <  explain/repair  <  query
//
// A shed response is a 503 with a computed Retry-After (queue depth × the
// recent median slot wait, rounded up and capped), so well-behaved clients
// back off for about as long as the queue actually needs to drain. Cache
// hits are served before admission runs — a saturated pool never blocks
// answers the server already has.

// errShed marks an admission-control rejection; it maps to a 503 carrying
// the computed Retry-After.
var errShed = errors.New("server overloaded: request shed by admission control")

// priorityClass orders request importance for shedding: lower classes shed
// first. Defaults per endpoint are batch for /v2/*, explain for
// /v1/explain and /v1/repair, query for /v1/query; clients may override
// with the X-Crsky-Priority header.
type priorityClass int

const (
	classBatch priorityClass = iota
	classExplain
	classQuery
)

func (c priorityClass) String() string {
	switch c {
	case classBatch:
		return "batch"
	case classExplain:
		return "explain"
	default:
		return "query"
	}
}

// headerPriority lets a client re-class a request (e.g. an interactive
// explain marked "query" to survive shedding longer, or a bulk query
// marked "batch" to yield first).
const headerPriority = "X-Crsky-Priority"

// priorityFrom resolves a request's class: the header when valid, the
// endpoint default otherwise.
func priorityFrom(r *http.Request, def priorityClass) priorityClass {
	switch strings.ToLower(r.Header.Get(headerPriority)) {
	case "batch":
		return classBatch
	case "explain":
		return classExplain
	case "query":
		return classQuery
	}
	return def
}

// queueCap is the class's admission threshold on the exact pool's queue
// depth: batch yields at a quarter of the queue budget, explain at half,
// query at the full budget.
func (s *Server) queueCap(class priorityClass) int64 {
	mq := int64(s.cfg.MaxQueue)
	var c int64
	switch class {
	case classBatch:
		c = mq / 4
	case classExplain:
		c = mq / 2
	default:
		c = mq
	}
	if c < 1 {
		c = 1
	}
	return c
}

// estWait estimates how long a new arrival would wait for an exact-pool
// slot: current queue depth × the recent median slot wait. Zero when the
// queue is empty or no waits have been observed yet.
func (s *Server) estWait() time.Duration {
	depth := s.pool.queued.Value()
	if depth <= 0 {
		return 0
	}
	p50 := s.pool.wait.Snapshot().P50() // seconds
	if p50 <= 0 {
		return 0
	}
	return time.Duration(float64(depth) * p50 * float64(time.Second))
}

// retryAfter renders the Retry-After header value from the estimated queue
// wait: whole seconds, rounded up, clamped to [1, 30] so a pathological
// histogram can neither tell clients "0" nor park them for minutes.
func (s *Server) retryAfter() string {
	secs := int(math.Ceil(s.estWait().Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// admit decides whether a compute request may queue for the exact pool.
// remaining is the request's remaining deadline budget (0 = unbounded).
// The three rejection reasons, in order:
//
//  1. the server is draining — no new compute work starts;
//  2. the class's queue-depth threshold is exceeded;
//  3. the request has a deadline the estimated queue wait already blows —
//     queueing it would burn a slot computing an answer nobody will
//     receive.
func (s *Server) admit(class priorityClass, remaining time.Duration) error {
	if s.draining.Load() {
		s.shedFor(class).Inc()
		return fmt.Errorf("%w: server is draining", errShed)
	}
	depth := s.pool.queued.Value()
	if cap := s.queueCap(class); depth >= cap {
		s.shedFor(class).Inc()
		return fmt.Errorf("%w: %s queue depth %d at class limit %d", errShed, class, depth, cap)
	}
	if remaining > 0 {
		if est := s.estWait(); est > remaining {
			s.shedFor(class).Inc()
			return fmt.Errorf("%w: estimated queue wait %s exceeds remaining deadline %s",
				errShed, est.Round(time.Millisecond), remaining.Round(time.Millisecond))
		}
	}
	return nil
}

// remainingBudget extracts the deadline budget admit consumes: the explicit
// stage timeout when one was derived, else the context's own deadline.
func remainingBudget(ctx context.Context, timeout time.Duration) time.Duration {
	if timeout > 0 {
		return timeout
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			return rem
		}
		return time.Nanosecond // already expired; admit will shed on any estimate
	}
	return 0
}

// BeginDrain moves the server into drain mode: admission rejects all new
// compute work immediately (503 + Retry-After, so load balancers fail
// over), and after grace elapses the drain context cancels every still
// running computation — v1's detached ones included — so Shutdown's
// deadline is honored instead of hostage to a long search. Idempotent;
// grace <= 0 cancels at once.
func (s *Server) BeginDrain(grace time.Duration) {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	if grace <= 0 {
		s.drainCancel()
		return
	}
	time.AfterFunc(grace, s.drainCancel)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// mergeCancel derives a context that is canceled when either ctx or aux
// fires, keeping ctx's values. The returned stop releases the watcher and
// must always be called.
func mergeCancel(ctx, aux context.Context) (context.Context, context.CancelFunc) {
	if aux == nil || aux.Done() == nil {
		return ctx, func() {}
	}
	m, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(aux, cancel)
	return m, func() { stop(); cancel() }
}

// shedFor returns the class's shed counter.
func (s *Server) shedFor(class priorityClass) *stats.Counter {
	switch class {
	case classBatch:
		return &s.shedBatch
	case classExplain:
		return &s.shedExplain
	default:
		return &s.shedQuery
	}
}
