package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestEmptyAnswersMarshalAsArray pins the JSON shape of list-returning
// endpoints when nothing qualifies: an empty answer set must serialize as
// [] — never null — so typed clients decode it without surprises.
//
// The two-object dataset is built so that each object certainly dominates
// q with respect to the other one (both lie between the other and q), so
// Pr = 0 for both and every threshold empties the answer set.
func TestEmptyAnswersMarshalAsArray(t *testing.T) {
	c := newTestClient(t, New(Config{Workers: 2, CacheSize: 16}))

	req := &DatasetRequest{
		Name:  "mutual",
		Model: ModelSample,
		Objects: []ObjectSpec{
			{Samples: []SampleSpec{{P: 1, Loc: []float64{1, 1}}}},
			{Samples: []SampleSpec{{P: 1, Loc: []float64{2, 2}}}},
		},
	}
	var info DatasetInfo
	c.post("/v1/datasets", req, &info, http.StatusCreated)

	resp, raw := c.do(http.MethodPost, "/v1/query", &QueryRequest{
		Dataset: "mutual", Q: []float64{10, 10}, Alpha: 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}
	if bytes.Contains(raw, []byte("null")) {
		t.Fatalf("query response contains null: %s", raw)
	}
	if !bytes.Contains(raw, []byte(`"answers":[]`)) {
		t.Fatalf("empty answers not marshaled as []: %s", raw)
	}

	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "mutual", Q: []float64{10, 10}, Alpha: 0.5}, &qr, http.StatusOK)
	if qr.Count != 0 || qr.Answers == nil || len(qr.Answers) != 0 {
		t.Fatalf("unexpected query response: %+v", qr)
	}
}

// TestLibraryQueryNeverNil pins the same guarantee at the engine layer:
// the accelerated query path returns a non-nil slice even when no object
// qualifies, so library users marshaling results directly also get [].
func TestLibraryQueryNeverNil(t *testing.T) {
	w := sampleWorkload(t)
	// Alpha 1 with a query far outside the domain corner: every object
	// has some dominating competitor, so the answer set is empty.
	ids := w.eng.ProbabilisticReverseSkyline([]float64{-1e6, -1e6}, 1)
	if ids == nil {
		t.Fatal("ProbabilisticReverseSkyline returned nil for an empty result")
	}
}
