package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/faultinject"
	"github.com/crsky/crsky/internal/store"
)

// storeRequests builds one small registration request per model, all 2-D
// so the same query point works everywhere.
func storeRequests(t *testing.T) []*DatasetRequest {
	t.Helper()
	uds, err := dataset.GenerateUncertain(dataset.UncertainConfig{N: 30, Dims: 2, RMax: 400, Seed: 7, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	return []*DatasetRequest{
		{Name: "cert", Model: ModelCertain, Points: [][]float64{
			{1, 9}, {2, 7}, {4, 4}, {7, 2}, {9, 1}, {5, 5}, {3, 8}, {8, 3},
		}},
		{Name: "samp", Model: ModelSample, Objects: objectSpecs(uds)},
		{Name: "pdf", Model: ModelPDF, PDFObjects: []PDFObjectSpec{
			{Kind: "uniform", Min: []float64{0, 0}, Max: []float64{3, 3}},
			{Kind: "gaussian", Min: []float64{2, 2}, Max: []float64{6, 6}},
			{Kind: "uniform", Min: []float64{5, 1}, Max: []float64{9, 4}},
		}},
	}
}

func storeQueryFor(req *DatasetRequest) *QueryRequest {
	q := &QueryRequest{Dataset: req.Name, Q: []float64{4, 4}, NoCache: true}
	if req.Model != ModelCertain {
		q.Alpha = 0.3
	}
	if req.Model == ModelSample {
		q.Q = []float64{2500, 2500}
	}
	return q
}

// stripGen drops the serving-layer generation stamp before comparing
// answer payloads: the generation counter is server-global, so recovery
// may number a dataset's generation differently depending on load order.
// The answers themselves must still be byte-identical.
func stripGen(raw []byte) string {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return string(raw)
	}
	delete(m, "generation")
	out, err := json.Marshal(m)
	if err != nil {
		return string(raw)
	}
	return string(out)
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, _, err := store.Open(dir, store.Options{Fsync: false})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreDurabilityAcrossRestart registers all three models through the
// HTTP surface of a store-backed server, restarts (new store.Open +
// LoadFromStore), and asserts the recovered server answers queries
// byte-identically — the serving-level old-or-new guarantee.
func TestStoreDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reqs := storeRequests(t)

	st1 := openStore(t, dir)
	s1 := New(Config{Store: st1})
	c1 := newTestClient(t, s1)
	want := make(map[string][]byte)
	for _, req := range reqs {
		c1.post("/v1/datasets", req, nil, http.StatusCreated)
		resp, raw := c1.do(http.MethodPost, "/v1/query", storeQueryFor(req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: status %d (%s)", req.Name, resp.StatusCode, raw)
		}
		want[req.Name] = raw
	}
	// A durable delete must also survive the restart.
	c1.post("/v1/datasets", &DatasetRequest{Name: "doomed", Model: ModelCertain,
		Points: [][]float64{{1, 1}, {2, 2}}}, nil, http.StatusCreated)
	if resp, raw := c1.do(http.MethodDelete, "/v1/datasets/doomed", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d (%s)", resp.StatusCode, raw)
	}
	st1.Close()

	st2 := openStore(t, dir)
	s2 := New(Config{Store: st2})
	loaded, quarantined, err := s2.LoadFromStore()
	if err != nil || len(quarantined) != 0 {
		t.Fatalf("LoadFromStore: loaded=%d quarantined=%v err=%v", loaded, quarantined, err)
	}
	if loaded != len(reqs) {
		t.Fatalf("recovered %d datasets, want %d", loaded, len(reqs))
	}
	c2 := newTestClient(t, s2)
	if _, ok := s2.reg.get("doomed"); ok {
		t.Fatal("deleted dataset resurrected after restart")
	}
	for _, req := range reqs {
		resp, raw := c2.do(http.MethodPost, "/v1/query", storeQueryFor(req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered query %s: status %d (%s)", req.Name, resp.StatusCode, raw)
		}
		if stripGen(raw) != stripGen(want[req.Name]) {
			t.Errorf("recovered %s answers differ:\n  before: %s\n  after:  %s", req.Name, want[req.Name], raw)
		}
	}
}

// TestStartupQuarantineAndDegradedHealth corrupts one snapshot on disk and
// asserts the boot contract: the sick dataset is quarantined, the healthy
// ones serve, /healthz degrades, and the corruption counter surfaces in
// /v1/stats and /metrics.
func TestStartupQuarantineAndDegradedHealth(t *testing.T) {
	dir := t.TempDir()
	reqs := storeRequests(t)

	st1 := openStore(t, dir)
	s1 := New(Config{Store: st1})
	for _, req := range reqs {
		if _, err := s1.Register(req); err != nil {
			t.Fatalf("register %s: %v", req.Name, err)
		}
	}
	// Compact so the WAL holds no second copy of the payloads — the
	// snapshot is then the only source and its corruption must be felt.
	if err := st1.Compact(); err != nil {
		t.Fatal(err)
	}
	st1.Close()
	if err := faultinject.FlipByte(filepath.Join(dir, "datasets", "samp.snap"), -9); err != nil {
		t.Fatal(err)
	}

	st2, rep, err := store.Open(dir, store.Options{Fsync: false})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st2.Close()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Dataset != "samp" {
		t.Fatalf("quarantined = %+v, want exactly samp", rep.Quarantined)
	}
	if !strings.HasPrefix(rep.Quarantined[0].Path, filepath.Join(dir, "corrupt")) {
		t.Fatalf("quarantined file not under corrupt/: %s", rep.Quarantined[0].Path)
	}
	s2 := New(Config{Store: st2})
	loaded, quarantined, err := s2.LoadFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || len(quarantined) != 0 {
		t.Fatalf("loaded=%d quarantined=%v, want 2 healthy datasets", loaded, quarantined)
	}
	c := newTestClient(t, s2)

	var health HealthResponse
	resp, raw := c.do(http.MethodGet, "/healthz", nil)
	if err := json.Unmarshal(raw, &health); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s (%v)", resp.StatusCode, raw, err)
	}
	if health.Status != "degraded" || health.Store == nil || health.Store.CorruptTotal != 1 {
		t.Fatalf("healthz = %s, want degraded with corruptTotal 1", raw)
	}

	// The healthy datasets keep answering.
	for _, name := range []string{"cert", "pdf"} {
		for _, req := range reqs {
			if req.Name != name {
				continue
			}
			if resp, raw := c.do(http.MethodPost, "/v1/query", storeQueryFor(req)); resp.StatusCode != http.StatusOK {
				t.Fatalf("degraded boot: query %s: %d (%s)", name, resp.StatusCode, raw)
			}
		}
	}

	var stats StatsResponse
	if _, raw := c.do(http.MethodGet, "/v1/stats", nil); json.Unmarshal(raw, &stats) != nil || stats.Store == nil {
		t.Fatalf("stats missing store block: %s", raw)
	} else if stats.Store.CorruptTotal != 1 {
		t.Fatalf("stats store corruptTotal = %d, want 1", stats.Store.CorruptTotal)
	}

	admin := New(Config{Store: st2})
	rec := doMetrics(t, admin)
	if !strings.Contains(rec, "crsky_store_corrupt_total 1") {
		t.Fatalf("/metrics missing crsky_store_corrupt_total 1:\n%s", rec)
	}

	// fsck -repair on the (closed) directory must leave it verify-clean.
	st2.Close()
	if frep, err := store.Fsck(nil, dir, true); err != nil || !frep.Repaired {
		t.Fatalf("fsck repair: %+v err=%v", frep, err)
	}
	if frep, err := store.Fsck(nil, dir, false); err != nil || !frep.Healthy() {
		t.Fatalf("store unhealthy after repair: %+v err=%v", frep, err)
	}
}

// doMetrics renders /metrics through the admin handler.
func doMetrics(t *testing.T, s *Server) string {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.AdminHandler().ServeHTTP(rec, req)
	return rec.Body.String()
}

// TestUploadRejected413 caps the body size and asserts the oversized
// upload contract: 413 with the uniform error envelope, the rejection
// counter, and ordinary bad JSON still a 400.
func TestUploadRejected413(t *testing.T) {
	s := New(Config{MaxBodyBytes: 512})
	c := newTestClient(t, s)

	big := &DatasetRequest{Name: "big", Model: ModelCertain, Points: make([][]float64, 200)}
	for i := range big.Points {
		big.Points[i] = []float64{float64(i), float64(i)}
	}
	resp, raw := c.do(http.MethodPost, "/v1/datasets", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413 (%s)", resp.StatusCode, raw)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err != nil || !strings.Contains(envelope.Error, "512") {
		t.Fatalf("413 envelope should name the limit: %s (%v)", raw, err)
	}

	// The cap applies to every decoded endpoint, not just uploads.
	bigQ := &QueryRequest{Dataset: "x", Q: make([]float64, 2000)}
	if resp, _ := c.do(http.MethodPost, "/v1/query", bigQ); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query: status %d, want 413", resp.StatusCode)
	}

	var stats StatsResponse
	if _, raw := c.do(http.MethodGet, "/v1/stats", nil); json.Unmarshal(raw, &stats) != nil {
		t.Fatalf("stats: %s", raw)
	} else if stats.Requests.UploadRejected != 2 {
		t.Fatalf("uploadRejected = %d, want 2", stats.Requests.UploadRejected)
	}

	httpReq, _ := http.NewRequest(http.MethodPost, c.ts.URL+"/v1/datasets", strings.NewReader("{not json"))
	r2, err := c.ts.Client().Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", r2.StatusCode)
	}
}

// TestServerCrashRecoveryMatrix drives the real registration payload
// encoding (all three models) through a crash-injected filesystem, then
// recovers on a clean one and asserts every recovered dataset answers its
// query byte-identically to a freshly built in-memory server — the
// end-to-end "recovered engines are bit-identical" criterion.
func TestServerCrashRecoveryMatrix(t *testing.T) {
	reqs := storeRequests(t)

	// Reference answers from a store-less server over the same requests.
	ref := New(Config{})
	refC := newTestClient(t, ref)
	want := make(map[string][]byte)
	for _, req := range reqs {
		refC.post("/v1/datasets", req, nil, http.StatusCreated)
		resp, raw := refC.do(http.MethodPost, "/v1/query", storeQueryFor(req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference query %s: %d (%s)", req.Name, resp.StatusCode, raw)
		}
		want[req.Name] = raw
	}

	// Size the matrix: count the mutations of a clean full run.
	registerAll := func(st *store.Store) (acked []string, inflight string) {
		s := New(Config{Store: st})
		for _, req := range reqs {
			if _, err := s.Register(req); err != nil {
				return acked, req.Name
			}
			acked = append(acked, req.Name)
		}
		return acked, ""
	}
	counter := faultinject.NewCrashFS(nil, -1, false, 1)
	st, _, err := store.Open(t.TempDir(), store.Options{Fsync: true, FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	if _, inflight := registerAll(st); inflight != "" {
		t.Fatalf("counting run crashed at %s", inflight)
	}
	st.Close()
	total := counter.Ops()

	for _, torn := range []bool{false, true} {
		for crash := int64(0); crash < total; crash++ {
			name := fmt.Sprintf("torn=%v/crash=%d", torn, crash)
			dir := t.TempDir()
			cfs := faultinject.NewCrashFS(nil, crash, torn, crash*13+5)
			var acked []string
			var inflight string
			if st, _, err := store.Open(dir, store.Options{Fsync: true, FS: cfs}); err == nil {
				acked, inflight = registerAll(st)
				st.Close()
			}

			rec, _, err := store.Open(dir, store.Options{Fsync: true})
			if err != nil {
				t.Fatalf("%s: recovery open: %v", name, err)
			}
			srv := New(Config{Store: rec})
			loaded, quarantined, err := srv.LoadFromStore()
			if err != nil || len(quarantined) != 0 {
				t.Fatalf("%s: load: loaded=%d quarantined=%v err=%v", name, loaded, quarantined, err)
			}
			// Old-or-new at the dataset level: every acked registration
			// must be there; at most the single in-flight one may also be.
			got := make(map[string]bool)
			for _, info := range srv.reg.list() {
				got[info.Name] = true
			}
			for _, a := range acked {
				if !got[a] {
					t.Fatalf("%s: acknowledged dataset %s lost (have %v)", name, a, got)
				}
				delete(got, a)
			}
			for extra := range got {
				if extra != inflight {
					t.Fatalf("%s: unexpected dataset %s (inflight was %q)", name, extra, inflight)
				}
			}
			// Bit-identical serving for everything recovered.
			c := newTestClient(t, srv)
			for _, req := range reqs {
				if _, ok := srv.reg.get(req.Name); !ok {
					continue
				}
				resp, raw := c.do(http.MethodPost, "/v1/query", storeQueryFor(req))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: recovered query %s: %d (%s)", name, req.Name, resp.StatusCode, raw)
				}
				if stripGen(raw) != stripGen(want[req.Name]) {
					t.Fatalf("%s: recovered %s answers drifted:\n  want %s\n  got  %s",
						name, req.Name, want[req.Name], raw)
				}
			}
			rec.Close()
		}
	}
}

// TestRegisterFailsClosedWhenStoreDead asserts write-through semantics: if
// the durable write cannot commit, the registration must not be
// acknowledged or installed.
func TestRegisterFailsClosedWhenStoreDead(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	st.Close() // a dead store refuses Put
	s := New(Config{Store: st})
	if _, err := s.Register(&DatasetRequest{Name: "d", Model: ModelCertain,
		Points: [][]float64{{1, 1}, {2, 2}}}); err == nil {
		t.Fatal("register with a closed store should fail")
	}
	if _, ok := s.reg.get("d"); ok {
		t.Fatal("failed registration must not install the dataset")
	}
	if _, err := os.Stat(filepath.Join(dir, "datasets", "d.snap")); err == nil {
		t.Fatal("failed registration must not leave a snapshot")
	}
}
