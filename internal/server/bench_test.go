// Serving-path benchmarks: the baseline future PRs track for request
// latency through the full HTTP stack (decode, registry, cache,
// singleflight, pool, engine, encode).
//
//	go test ./internal/server -bench=. -benchmem
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds a server with the shared sample workload registered.
func benchServer(b *testing.B) *Server {
	b.Helper()
	w := sampleWorkload(b)
	s := New(Config{Workers: 4, CacheSize: 1024})
	if _, err := s.Register(&DatasetRequest{Name: "lUrU", Model: ModelSample, Objects: objectSpecs(w.ds)}); err != nil {
		b.Fatal(err)
	}
	return s
}

func explainBody(b *testing.B, an int, noCache bool) []byte {
	b.Helper()
	w := sampleWorkload(b)
	raw, err := json.Marshal(&ExplainRequest{Dataset: "lUrU", Q: w.q, An: an, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}, NoCache: noCache})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func serveExplain(b *testing.B, s *Server, body []byte, wantCache string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/explain", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(headerCache); got != wantCache {
		b.Fatalf("cache header = %q, want %q", got, wantCache)
	}
}

// BenchmarkServerExplain measures one explain request through the full
// handler stack: cold always recomputes (cache bypassed), warm is served
// from the LRU cache.
func BenchmarkServerExplain(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b)
		body := explainBody(b, sampleWorkload(b).ids[0], true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveExplain(b, s, body, "bypass")
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := benchServer(b)
		body := explainBody(b, sampleWorkload(b).ids[0], false)
		serveExplain(b, s, body, "miss") // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveExplain(b, s, body, "hit")
		}
	})
}

// BenchmarkServerQuery measures the query path cold (cache bypassed) for
// the sample model.
func BenchmarkServerQuery(b *testing.B) {
	s := benchServer(b)
	w := sampleWorkload(b)
	raw, err := json.Marshal(&QueryRequest{Dataset: "lUrU", Q: w.q, Alpha: 0.5, NoCache: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
