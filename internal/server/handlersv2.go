package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/geom"
)

// errVerificationFailed marks a server-side integrity failure — the
// engine produced an explanation the independent Definition-1 verifier
// rejected — which must surface as a 500, never a client error.
var errVerificationFailed = errors.New("explanation failed verification")

// withTimeout derives the request context: `?timeout=` (a Go duration,
// e.g. 250ms or 2s) adds a deadline on top of the client-disconnect
// cancellation the request context already carries.
func withTimeout(r *http.Request) (context.Context, context.CancelFunc, error) {
	d, err := requestTimeout(r)
	if err != nil {
		return nil, nil, err
	}
	if d == 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// resolveBatch validates the shared (dataset, alpha) pair and every query
// point of a batch request, mirroring resolve.
func (s *Server) resolveBatch(name string, qss [][]float64, alpha float64) (*entry, []geom.Point, float64, int, error) {
	if len(qss) == 0 {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("at least one query point is required")
	}
	ent, _, alpha, status, err := s.resolve(name, qss[0], alpha)
	if err != nil {
		return nil, nil, 0, status, err
	}
	qs := make([]geom.Point, len(qss))
	for i, raw := range qss {
		q := geom.Point(raw)
		if q.Dims() != ent.dims {
			return nil, nil, 0, http.StatusBadRequest,
				fmt.Errorf("q #%d has %d dims, dataset %q has %d", i, q.Dims(), name, ent.dims)
		}
		if !q.IsFinite() {
			return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("q #%d has non-finite coordinates", i)
		}
		qs[i] = q
	}
	return ent, qs, alpha, 0, nil
}

// --- NDJSON streaming ---------------------------------------------------

// ndjsonStream writes an NDJSON response one line at a time, flushing the
// connection after every line so each item reaches the client as soon as
// it is final — not when the whole batch is. The 200 status commits
// lazily with the first line, which is why the handlers keep every
// failure that should still become an error status ahead of the first
// write.
type ndjsonStream struct {
	w       http.ResponseWriter
	enc     *json.Encoder
	flusher http.Flusher
	started bool
}

func newNDJSONStream(w http.ResponseWriter) *ndjsonStream {
	f, _ := w.(http.Flusher)
	return &ndjsonStream{w: w, enc: json.NewEncoder(w), flusher: f}
}

// commit writes the response header if it has not gone out yet.
func (st *ndjsonStream) commit() {
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.w.WriteHeader(http.StatusOK)
		st.started = true
	}
}

func (st *ndjsonStream) write(line any) {
	st.commit()
	_ = st.enc.Encode(line) // Encode appends the newline separator
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

// writeTrace appends the opt-in ?trace=1 trailer line — clients that did
// not ask keep a stream with exactly one line per item.
func writeTrace(st *ndjsonStream, r *http.Request) {
	if tj := traceJSON(r); tj != nil {
		st.write(BatchTraceItem{Trace: tj})
	}
}

// writeNDJSON streams a fully materialized item slice: the all-cache-hit
// and approximate-tier paths, where every line is known up front.
func writeNDJSON[T any](w http.ResponseWriter, r *http.Request, items []T) {
	st := newNDJSONStream(w)
	st.commit() // even an empty item set is a 200 NDJSON response
	for _, it := range items {
		st.write(it)
	}
	writeTrace(st, r)
}

// ndjsonFrontier turns out-of-order item completions into request-ordered
// NDJSON lines: set stores a finished line and flushes the longest ready
// prefix. Engine emit callbacks are serialized by the engine contract but
// arrive on engine worker goroutines; the mutex both serializes them
// against the handler goroutine and publishes line writes to whichever
// goroutine ends up flushing them.
type ndjsonFrontier struct {
	mu    sync.Mutex
	st    *ndjsonStream
	lines []any
	next  int
}

func newNDJSONFrontier(w http.ResponseWriter, n int) *ndjsonFrontier {
	return &ndjsonFrontier{st: newNDJSONStream(w), lines: make([]any, n)}
}

func (f *ndjsonFrontier) set(i int, line any) {
	f.mu.Lock()
	f.lines[i] = line
	for f.next < len(f.lines) && f.lines[f.next] != nil {
		f.st.write(f.lines[f.next])
		f.next++
	}
	f.mu.Unlock()
}

// started reports whether any line is on the wire — past that point a
// failure can no longer become an error status.
func (f *ndjsonFrontier) started() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st.started
}

// fail finishes a started stream after a mid-batch failure: lines that
// finished but were blocked behind the failure still flush as results,
// and every other remaining index gets a per-item error envelope from
// mkErr. The engine call has returned by now, so the handler goroutine
// owns the stream again.
func (f *ndjsonFrontier) fail(mkErr func(i int) any) {
	f.mu.Lock()
	for ; f.next < len(f.lines); f.next++ {
		line := f.lines[f.next]
		if line == nil {
			line = mkErr(f.next)
		}
		f.st.write(line)
	}
	f.mu.Unlock()
}

// --- /v2/query ----------------------------------------------------------

func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Inc()
	var req BatchQueryRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, qs, alpha, status, err := s.resolveBatch(req.Dataset, req.Qs, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	// Key on the resolved alpha (certain data forces 1), so requests that
	// compute the same thing share the cached results.
	req.Alpha = alpha
	mode, err := parseApproxMode(req.Approx)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	d, err := requestTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ap := crsky.ApproxOptions{Epsilon: req.Epsilon, Confidence: req.Confidence, Seed: s.cfg.ApproxSeed}

	if mode == approxAlways {
		s.serveApproxBatch(w, r, ctx, ent, qs, alpha, req.QuadNodes, ap)
		return
	}

	// Under auto, the exact attempt gets 3/4 of the request deadline so the
	// fallback keeps a guaranteed slice of the budget the client set.
	exactCtx := ctx
	if mode == approxAuto && d > 0 {
		var cancel context.CancelFunc
		exactCtx, cancel = context.WithTimeout(ctx, d*3/4)
		defer cancel()
	}

	tr := obsTrace(r.Context())
	keys := req.itemKeys(ent)
	lines := make([]any, len(qs)) // cache-hit lines; nil = must compute
	var missing []int
	if req.NoCache {
		w.Header().Set(headerCache, "bypass")
		tr.SetLabel("cache", "bypass")
		missing = make([]int, len(qs))
		for i := range qs {
			missing[i] = i
		}
	} else {
		for i := range qs {
			if v, ok := s.cache.Get(keys[i]); ok {
				ids := v.([]int)
				lines[i] = BatchQueryItem{Index: i, Count: len(ids), Answers: ids}
			} else {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			// Every item was computed by earlier requests — batches or v1
			// single queries, the keys are shared — so no admission and no
			// pool slot: hits are served unconditionally, like v1.
			w.Header().Set(headerCache, "hit")
			tr.SetLabel("cache", "hit")
			items := make([]BatchQueryItem, len(lines))
			for i, line := range lines {
				items[i] = line.(BatchQueryItem)
			}
			writeNDJSON(w, r, items)
			return
		}
		w.Header().Set(headerCache, "miss")
		tr.SetLabel("cache", "miss")
	}

	if err := s.admit(priorityFrom(r, classBatch), remainingBudget(exactCtx, 0)); err != nil {
		tr.SetLabel("admission", "shed")
		s.queryV2Fallback(w, r, ctx, err, mode, ent, qs, alpha, req.QuadNodes, ap)
		return
	}

	mctx, undrain := mergeCancel(exactCtx, s.drainCtx)
	defer undrain()
	fr := newNDJSONFrontier(w, len(qs))
	mqs := make([]geom.Point, len(missing))
	for j, i := range missing {
		mqs[j] = qs[i]
	}
	_, err = s.pool.Do(mctx, func() (any, error) {
		if s.computeHook != nil {
			s.computeHook(mctx)
		}
		// Flush the cache-hit prefix only once the batch holds its slot:
		// before this point a shed or queued cancellation must still be
		// able to become a clean error status.
		for i, line := range lines {
			if line != nil {
				fr.set(i, line)
			}
		}
		return nil, ent.queryBatchStreamCtx(mctx, mqs, alpha, req.QuadNodes, func(j int, ids []int) {
			i := missing[j]
			if !req.NoCache {
				s.cache.Put(keys[i], ids)
			}
			fr.set(i, BatchQueryItem{Index: i, Count: len(ids), Answers: ids})
		})
	})
	if err != nil {
		if !fr.started() {
			s.queryV2Fallback(w, r, ctx, err, mode, ent, qs, alpha, req.QuadNodes, ap)
			return
		}
		// Items are already on the wire with a committed 200: the failure
		// degrades to per-item error envelopes on the unfinished tail
		// instead of silently truncating the stream.
		msg := err.Error()
		fr.fail(func(i int) any { return BatchQueryItem{Index: i, Error: msg} })
		writeTrace(fr.st, r)
		return
	}
	writeTrace(fr.st, r)
}

// queryV2Fallback finishes a failed exact batch that has not written any
// line yet: under approx=auto a capacity failure degrades to the Monte
// Carlo tier, everything else maps through writeComputeError — exactly
// the whole-batch error semantics of the non-streaming handler.
func (s *Server) queryV2Fallback(w http.ResponseWriter, r *http.Request, ctx context.Context, err error,
	mode approxMode, ent *entry, qs []geom.Point, alpha float64, quadNodes int, ap crsky.ApproxOptions) {

	if mode == approxAuto && degradable(err) && ctx.Err() == nil {
		s.serveApproxBatch(w, r, ctx, ent, qs, alpha, quadNodes, ap)
		return
	}
	s.writeComputeError(w, err)
}

// serveApproxBatch answers a whole batch from the degraded tier in ONE
// reserved-pool slot: under overload the approximate pool is tiny, and a
// batch spread over several slots would starve the single-point fallbacks.
// Approximate batches are never cached.
func (s *Server) serveApproxBatch(w http.ResponseWriter, r *http.Request, ctx context.Context,
	ent *entry, qs []geom.Point, alpha float64, quadNodes int, ap crsky.ApproxOptions) {

	tr := obsTrace(r.Context())
	tr.SetLabel("tier", "approx")
	w.Header().Set(headerCache, "bypass")
	if st := s.approxPool.Stats(); st.QueueDepth >= int64(st.Workers)*16 || s.Draining() {
		s.shedFor(classBatch).Inc()
		s.writeComputeError(w, errShed)
		return
	}
	ctx, undrain := mergeCancel(ctx, s.drainCtx)
	defer undrain()
	v, err := s.approxPool.Do(ctx, func() (any, error) {
		items := make([]BatchQueryItem, len(qs))
		for i, q := range qs {
			res, err := ent.queryApproxCtx(ctx, q, alpha, quadNodes, ap)
			if err != nil {
				return nil, err
			}
			items[i] = BatchQueryItem{Index: i, Count: len(res.Answers), Answers: res.Answers, Approx: !res.Exact}
			if !res.Exact {
				items[i].Intervals = res.Intervals
			}
		}
		return items, nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	s.approxAnswers.Inc()
	writeNDJSON(w, r, v.([]BatchQueryItem))
}

// --- /v2/explain --------------------------------------------------------

// explainItemLine builds one /v2/explain response line from a result,
// re-running the independent Definition-1 verifier first when the request
// asked for it — cached results included, so a poisoned cache entry can
// never be re-served verified. A verification failure evicts the entry
// and returns errVerificationFailed; a cancellation that interrupts
// verification stays a plain cancellation (503, not an integrity 500).
func (s *Server) explainItemLine(ctx context.Context, ent *entry, verify bool, key string, i int,
	q geom.Point, alpha float64, res *causality.Result) (BatchExplainItem, error) {

	if verify {
		if err := ent.verifyCtx(ctx, q, alpha, res); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return BatchExplainItem{}, err
			}
			// Never keep serving a result the verifier just rejected.
			s.cache.Remove(key)
			return BatchExplainItem{}, fmt.Errorf("%w: item %d: %v", errVerificationFailed, i, err)
		}
	}
	return BatchExplainItem{Index: i, Explain: &ExplainResponse{
		Dataset:            ent.name,
		Model:              ent.model,
		NonAnswer:          res.NonAnswer,
		Pr:                 res.Pr,
		Alpha:              alpha,
		Candidates:         res.Candidates,
		Causes:             causesJSON(res.Causes),
		SubsetsExamined:    res.SubsetsExamined,
		GreedySeeds:        res.GreedySeeds,
		GreedyHits:         res.GreedyHits,
		FilterNodeAccesses: res.FilterNodeAccesses,
		Verified:           verify,
	}}, nil
}

func (s *Server) handleExplainV2(w http.ResponseWriter, r *http.Request) {
	s.reqExplain.Inc()
	var req BatchExplainRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("at least one item is required"))
		return
	}
	qss := make([][]float64, len(req.Items))
	for i, it := range req.Items {
		qss[i] = it.Q
	}
	ent, qs, alpha, status, err := s.resolveBatch(req.Dataset, qss, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	// Canonicalize BEFORE the cache keys are built: the keys encode the
	// resolved alpha and the canonicalized options, so requests that run
	// the same computation share entries. Algorithm CR takes no options
	// (Lemma 7 needs no refinement), hence the certain-model options
	// collapse to the zero value.
	req.Alpha = alpha
	if ent.model == ModelCertain {
		req.Options = OptionsSpec{}
	}
	opts := req.Options.toOptions()
	var itemTimeout time.Duration
	if req.ItemTimeout != "" {
		itemTimeout, err = time.ParseDuration(req.ItemTimeout)
		if err != nil || itemTimeout <= 0 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad itemTimeout %q (want a positive Go duration, e.g. 250ms)", req.ItemTimeout))
			return
		}
	}
	ctx, cancel, err := withTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	tr := obsTrace(r.Context())
	keys := req.itemKeys(ent)
	results := make([]*causality.Result, len(req.Items)) // cache hits; nil = must compute
	var missing []int
	if req.NoCache {
		w.Header().Set(headerCache, "bypass")
		tr.SetLabel("cache", "bypass")
		missing = make([]int, len(req.Items))
		for i := range req.Items {
			missing[i] = i
		}
	} else {
		for i := range req.Items {
			if v, ok := s.cache.Get(keys[i]); ok {
				results[i] = v.(*causality.Result)
			} else {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			// Fully cache-served, no pool slot — but a verification
			// failure must still become a clean 500, so every line is
			// built (and verified) before the first one is written.
			w.Header().Set(headerCache, "hit")
			tr.SetLabel("cache", "hit")
			items := make([]BatchExplainItem, len(results))
			for i, res := range results {
				line, err := s.explainItemLine(ctx, ent, req.Verify, keys[i], i, qs[i], alpha, res)
				if err != nil {
					s.writeComputeError(w, err)
					return
				}
				items[i] = line
			}
			writeNDJSON(w, r, items)
			return
		}
		w.Header().Set(headerCache, "miss")
		tr.SetLabel("cache", "miss")
	}

	if err := s.admit(priorityFrom(r, classExplain), remainingBudget(ctx, 0)); err != nil {
		tr.SetLabel("admission", "shed")
		s.writeComputeError(w, err)
		return
	}

	mctx, undrain := mergeCancel(ctx, s.drainCtx)
	defer undrain()
	fr := newNDJSONFrontier(w, len(req.Items))
	reqs := make([]crsky.ExplainRequest, len(missing))
	for j, i := range missing {
		reqs[j] = crsky.ExplainRequest{ID: req.Items[i].An, Q: qs[i], Alpha: alpha, Timeout: itemTimeout}
	}
	_, err = s.pool.Do(mctx, func() (any, error) {
		if s.computeHook != nil {
			s.computeHook(mctx)
		}
		// ictx lets a fatal failure — a batch-level cancellation or a
		// verification integrity failure — stop the remaining items
		// promptly instead of letting them compute answers nobody will
		// see. fatal is written either before the engine call or inside
		// the serialized emit callbacks, so it needs no extra lock.
		ictx, icancel := context.WithCancel(mctx)
		defer icancel()
		var fatal error
		fail := func(err error) {
			if fatal == nil {
				fatal = err
				icancel()
			}
		}

		// Cache-hit items flush (after per-request re-verification) as
		// soon as the slot is held; computed items stream in behind them.
		for i, res := range results {
			if res == nil {
				continue
			}
			line, err := s.explainItemLine(ictx, ent, req.Verify, keys[i], i, qs[i], alpha, res)
			if err != nil {
				fail(err)
				break
			}
			fr.set(i, line)
		}
		if fatal != nil {
			return nil, fatal
		}

		ent.eng.ExplainBatchStream(ictx, reqs, opts, func(item crsky.ExplainItem) {
			if fatal != nil {
				return
			}
			i := missing[item.Index]
			if item.Err != nil {
				if (errors.Is(item.Err, context.Canceled) || errors.Is(item.Err, context.DeadlineExceeded)) &&
					ictx.Err() != nil {
					// The batch itself is going down (client deadline,
					// disconnect, drain, or an earlier fatal failure), not
					// this item's own budget: fail the whole batch — a
					// partially canceled result set must never pass for
					// the full answer.
					fail(item.Err)
					return
				}
				// A per-item failure — a non-answer that is actually an
				// answer, an item that blew its own ItemTimeout, an engine
				// fault: the item fails alone, its siblings keep
				// streaming, and nothing is cached for it.
				fr.set(i, BatchExplainItem{Index: i, Error: item.Err.Error()})
				return
			}
			line, err := s.explainItemLine(ictx, ent, req.Verify, keys[i], i, qs[i], alpha, item.Result)
			if err != nil {
				fail(err)
				return
			}
			if !req.NoCache {
				s.cache.Put(keys[i], item.Result)
			}
			// Work gauges count computed explanations only: cache hits
			// re-serve an already-counted search.
			s.explainComputed.Inc()
			s.explainSubsets.Add(item.Result.SubsetsExamined)
			s.explainGreedySeeds.Add(item.Result.GreedySeeds)
			s.explainGreedyHits.Add(item.Result.GreedyHits)
			s.explainFilterIO.Add(item.Result.FilterNodeAccesses)
			fr.set(i, line)
		})
		return nil, fatal
	})
	if err != nil {
		if !fr.started() {
			s.writeComputeError(w, err)
			return
		}
		msg := err.Error()
		fr.fail(func(i int) any { return BatchExplainItem{Index: i, Error: msg} })
		writeTrace(fr.st, r)
		return
	}
	writeTrace(fr.st, r)
}
