package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/geom"
)

// errVerificationFailed marks a server-side integrity failure — the
// engine produced an explanation the independent Definition-1 verifier
// rejected — which must surface as a 500, never a client error.
var errVerificationFailed = errors.New("explanation failed verification")

// withTimeout derives the request context: `?timeout=` (a Go duration,
// e.g. 250ms or 2s) adds a deadline on top of the client-disconnect
// cancellation the request context already carries.
func withTimeout(r *http.Request) (context.Context, context.CancelFunc, error) {
	d, err := requestTimeout(r)
	if err != nil {
		return nil, nil, err
	}
	if d == 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// resolveBatch validates the shared (dataset, alpha) pair and every query
// point of a batch request, mirroring resolve.
func (s *Server) resolveBatch(name string, qss [][]float64, alpha float64) (*entry, []geom.Point, float64, int, error) {
	if len(qss) == 0 {
		return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("at least one query point is required")
	}
	ent, _, alpha, status, err := s.resolve(name, qss[0], alpha)
	if err != nil {
		return nil, nil, 0, status, err
	}
	qs := make([]geom.Point, len(qss))
	for i, raw := range qss {
		q := geom.Point(raw)
		if q.Dims() != ent.dims {
			return nil, nil, 0, http.StatusBadRequest,
				fmt.Errorf("q #%d has %d dims, dataset %q has %d", i, q.Dims(), name, ent.dims)
		}
		if !q.IsFinite() {
			return nil, nil, 0, http.StatusBadRequest, fmt.Errorf("q #%d has non-finite coordinates", i)
		}
		qs[i] = q
	}
	return ent, qs, alpha, 0, nil
}

// computeV2 runs fn on a worker-pool slot under the LIVE request context —
// the v2 half of compute: no singleflight (a canceled leader must not fail
// followers, and batch bodies rarely collide byte-for-byte in flight), the
// cache in front, admission after a cache miss, and pool slots released as
// soon as a disconnect, deadline, or drain cancels fn. Errors are returned,
// not written, so callers with a degraded tier can fall back.
func (s *Server) computeV2(w http.ResponseWriter, ctx context.Context, key string, noCache bool,
	class priorityClass, fn func(ctx context.Context) (any, error)) (any, error) {

	tr := obsTrace(ctx)
	if noCache {
		w.Header().Set(headerCache, "bypass")
		tr.SetLabel("cache", "bypass")
	} else if v, ok := s.cache.Get(key); ok {
		w.Header().Set(headerCache, "hit")
		tr.SetLabel("cache", "hit")
		return v, nil
	} else {
		w.Header().Set(headerCache, "miss")
		tr.SetLabel("cache", "miss")
	}

	if err := s.admit(class, remainingBudget(ctx, 0)); err != nil {
		tr.SetLabel("admission", "shed")
		return nil, err
	}

	ctx, undrain := mergeCancel(ctx, s.drainCtx)
	defer undrain()
	v, err := s.pool.Do(ctx, func() (any, error) {
		if s.computeHook != nil {
			s.computeHook()
		}
		return fn(ctx)
	})
	if err != nil {
		return nil, err
	}
	if !noCache {
		s.cache.Put(key, v)
	}
	return v, nil
}

// writeNDJSON streams items as application/x-ndjson, one JSON object per
// line. On ?trace=1 requests a final {"trace": {...}} line follows the
// items — opt-in, so clients that did not ask keep a byte-identical
// stream.
func writeNDJSON[T any](w http.ResponseWriter, r *http.Request, items []T) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w) // Encode appends the newline separator
	for _, it := range items {
		_ = enc.Encode(it)
	}
	if tj := traceJSON(r); tj != nil {
		_ = enc.Encode(BatchTraceItem{Trace: tj})
	}
}

func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Inc()
	var req BatchQueryRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ent, qs, alpha, status, err := s.resolveBatch(req.Dataset, req.Qs, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	// Key on the resolved alpha (certain data forces 1), so requests that
	// compute the same thing share the cached result.
	req.Alpha = alpha
	mode, err := parseApproxMode(req.Approx)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	d, err := requestTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ap := crsky.ApproxOptions{Epsilon: req.Epsilon, Confidence: req.Confidence, Seed: s.cfg.ApproxSeed}

	if mode == approxAlways {
		s.serveApproxBatch(w, r, ctx, ent, qs, alpha, req.QuadNodes, ap)
		return
	}

	// Under auto, the exact attempt gets 3/4 of the request deadline so the
	// fallback keeps a guaranteed slice of the budget the client set.
	exactCtx := ctx
	if mode == approxAuto && d > 0 {
		var cancel context.CancelFunc
		exactCtx, cancel = context.WithTimeout(ctx, d*3/4)
		defer cancel()
	}

	v, err := s.computeV2(w, exactCtx, req.cacheKey(ent), req.NoCache, priorityFrom(r, classBatch),
		func(ctx context.Context) (any, error) {
			answers, err := ent.queryBatchCtx(ctx, qs, alpha, req.QuadNodes)
			if err != nil {
				return nil, err
			}
			items := make([]BatchQueryItem, len(answers))
			for i, ids := range answers {
				items[i] = BatchQueryItem{Index: i, Count: len(ids), Answers: ids}
			}
			return items, nil
		})
	if err != nil {
		if mode == approxAuto && degradable(err) && ctx.Err() == nil {
			s.serveApproxBatch(w, r, ctx, ent, qs, alpha, req.QuadNodes, ap)
			return
		}
		s.writeComputeError(w, err)
		return
	}
	writeNDJSON(w, r, v.([]BatchQueryItem))
}

// serveApproxBatch answers a whole batch from the degraded tier in ONE
// reserved-pool slot: under overload the approximate pool is tiny, and a
// batch spread over several slots would starve the single-point fallbacks.
// Approximate batches are never cached.
func (s *Server) serveApproxBatch(w http.ResponseWriter, r *http.Request, ctx context.Context,
	ent *entry, qs []geom.Point, alpha float64, quadNodes int, ap crsky.ApproxOptions) {

	tr := obsTrace(r.Context())
	tr.SetLabel("tier", "approx")
	w.Header().Set(headerCache, "bypass")
	if st := s.approxPool.Stats(); st.QueueDepth >= int64(st.Workers)*16 || s.Draining() {
		s.shedFor(classBatch).Inc()
		s.writeComputeError(w, errShed)
		return
	}
	ctx, undrain := mergeCancel(ctx, s.drainCtx)
	defer undrain()
	v, err := s.approxPool.Do(ctx, func() (any, error) {
		items := make([]BatchQueryItem, len(qs))
		for i, q := range qs {
			res, err := ent.queryApproxCtx(ctx, q, alpha, quadNodes, ap)
			if err != nil {
				return nil, err
			}
			items[i] = BatchQueryItem{Index: i, Count: len(res.Answers), Answers: res.Answers, Approx: !res.Exact}
			if !res.Exact {
				items[i].Intervals = res.Intervals
			}
		}
		return items, nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	s.approxAnswers.Inc()
	writeNDJSON(w, r, v.([]BatchQueryItem))
}

func (s *Server) handleExplainV2(w http.ResponseWriter, r *http.Request) {
	s.reqExplain.Inc()
	var req BatchExplainRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("at least one item is required"))
		return
	}
	qss := make([][]float64, len(req.Items))
	for i, it := range req.Items {
		qss[i] = it.Q
	}
	ent, qs, alpha, status, err := s.resolveBatch(req.Dataset, qss, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	// Canonicalize BEFORE the cache key is built: the key encodes the
	// resolved alpha and the canonicalized options, so requests that run
	// the same computation share one cache entry. Algorithm CR takes no
	// options (Lemma 7 needs no refinement), hence the certain-model
	// options collapse to the zero value.
	req.Alpha = alpha
	if ent.model == ModelCertain {
		req.Options = OptionsSpec{}
	}
	opts := req.Options.toOptions()
	ctx, cancel, err := withTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	v, err := s.computeV2(w, ctx, req.cacheKey(ent), req.NoCache, priorityFrom(r, classExplain), func(ctx context.Context) (any, error) {
		reqs := make([]crsky.ExplainRequest, len(req.Items))
		for i, it := range req.Items {
			reqs[i] = crsky.ExplainRequest{ID: it.An, Q: qs[i], Alpha: alpha}
		}
		results := ent.eng.ExplainBatch(ctx, reqs, opts)
		items := make([]BatchExplainItem, len(results))
		for i, res := range results {
			items[i] = BatchExplainItem{Index: res.Index}
			if res.Err != nil {
				// A canceled item fails the whole batch: the caller gave up,
				// and a partially canceled result set must never be cached
				// as if it were the full answer.
				if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
					return nil, res.Err
				}
				items[i].Error = res.Err.Error()
				continue
			}
			if req.Verify {
				if err := ent.verifyCtx(ctx, qs[i], alpha, res.Result); err != nil {
					// A deadline hitting during verification is a plain
					// cancellation (503), not an integrity failure.
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return nil, err
					}
					return nil, fmt.Errorf("%w: item %d: %v", errVerificationFailed, i, err)
				}
			}
			s.explainComputed.Inc()
			s.explainSubsets.Add(res.Result.SubsetsExamined)
			s.explainGreedySeeds.Add(res.Result.GreedySeeds)
			s.explainGreedyHits.Add(res.Result.GreedyHits)
			s.explainFilterIO.Add(res.Result.FilterNodeAccesses)
			items[i].Explain = &ExplainResponse{
				Dataset:            ent.name,
				Model:              ent.model,
				NonAnswer:          res.Result.NonAnswer,
				Pr:                 res.Result.Pr,
				Alpha:              alpha,
				Candidates:         res.Result.Candidates,
				Causes:             causesJSON(res.Result.Causes),
				SubsetsExamined:    res.Result.SubsetsExamined,
				GreedySeeds:        res.Result.GreedySeeds,
				GreedyHits:         res.Result.GreedyHits,
				FilterNodeAccesses: res.Result.FilterNodeAccesses,
				Verified:           req.Verify,
			}
		}
		return items, nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	writeNDJSON(w, r, v.([]BatchExplainItem))
}
