package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/watch"
)

// WatchRequest is the POST /v2/watch body: subscribe to a non-answer.
// The response is an NDJSON stream held open until the watched object
// flips into the answer set (terminal "flipped" event), is deleted
// (terminal "deleted"), or the client disconnects. With Repair set every
// re-evaluation also recomputes the minimal repair and pushes
// "repair_shrunk" whenever it got smaller — strictly more expensive, so
// it is opt-in.
type WatchRequest struct {
	Dataset   string    `json:"dataset"`
	Q         []float64 `json:"q"`
	An        int       `json:"an"`
	Alpha     float64   `json:"alpha,omitempty"`
	QuadNodes int       `json:"quadNodes,omitempty"`
	Repair    bool      `json:"repair,omitempty"`
}

// reevalTimeout bounds one re-evaluation round per dataset; a stuck
// engine must not wedge the watch scheduler forever.
const reevalTimeout = time.Minute

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	ent, q, alpha, status, err := s.resolve(req.Dataset, req.Q, req.Alpha)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	annotate(r.Context(), ent)
	if req.An < 0 || req.An >= ent.size {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %d", causality.ErrBadObject, req.An))
		return
	}
	anMBR, hasWin := objectMBR(ent.eng, req.An)
	if !hasWin {
		switch ent.eng.(type) {
		case *crsky.Engine, *crsky.CertainEngine, *crsky.PDFEngine:
			// A known engine without an MBR means the ID is tombstoned.
			s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %d (deleted)", causality.ErrBadObject, req.An))
			return
		}
	}
	var win geom.Rect
	if hasWin {
		win = geom.DomRectUnionOuter(anMBR, q)
	}
	ctx, cancel, err := withTimeout(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	if err := s.admit(priorityFrom(r, classExplain), remainingBudget(ctx, 0)); err != nil {
		s.writeComputeError(w, err)
		return
	}
	mctx, undrain := mergeCancel(ctx, s.drainCtx)
	defer undrain()

	// Register BEFORE the initial evaluation so no mutation can slip into
	// the gap unobserved: a flip committed while the baseline evaluation
	// runs is re-evaluated by the scheduler and waits in the buffer.
	sub := s.watch.Register(ent.name, q, req.An, alpha, req.QuadNodes, win, hasWin, req.Repair)
	defer s.watch.Unregister(sub)

	// Baseline: the watched object must currently be a non-answer.
	v, err := s.pool.Do(mctx, func() (any, error) {
		if s.computeHook != nil {
			s.computeHook(mctx)
		}
		ids, qerr := ent.queryCtx(mctx, q, alpha, req.QuadNodes)
		if qerr != nil {
			return nil, qerr
		}
		return containsID(ids, req.An), nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	if v.(bool) {
		s.writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("%w: object %d is in the answer set; watch wants a non-answer", causality.ErrNotNonAnswer, req.An))
		return
	}
	var repair []int
	if req.Repair {
		rv, rerr := s.pool.Do(mctx, func() (any, error) {
			return ent.repairCtx(mctx, q, req.An, alpha, causality.Options{QuadNodes: req.QuadNodes})
		})
		if rerr != nil {
			s.writeComputeError(w, rerr)
			return
		}
		repair = rv.(*causality.Repair).Removed
		sub.SetRepairBaseline(len(repair))
	}

	st := newNDJSONStream(w)
	st.write(watch.Event{
		Event:      watch.KindRegistered,
		Dataset:    ent.name,
		Generation: ent.gen,
		An:         req.An,
		Repair:     repair,
	})
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			st.write(ev)
		case <-mctx.Done():
			return
		}
	}
}

// reevalWatch is the Reevaluator the hub calls after committed mutations:
// re-check the affected subscriptions against the CURRENT engine
// generation, batching subscriptions that share (alpha, quadNodes)
// through one QueryBatch so the index traversal is shared.
func (s *Server) reevalWatch(name string, gen uint64, subs []*watch.Sub) {
	start := time.Now()
	defer func() { s.watchReeval.Observe(time.Since(start)) }()
	ent, ok := s.reg.get(name)
	if !ok {
		for _, sub := range subs {
			s.watch.Emit(sub, watch.Event{Event: watch.KindDeleted, Dataset: name, Generation: gen, An: sub.An})
		}
		return
	}
	type gkey struct {
		alpha float64
		qn    int
	}
	groups := make(map[gkey][]*watch.Sub)
	for _, sub := range subs {
		k := gkey{sub.Alpha, sub.QuadNodes}
		groups[k] = append(groups[k], sub)
	}
	for k, g := range groups {
		qs := make([]geom.Point, len(g))
		for i, sub := range g {
			qs[i] = sub.Q
		}
		ctx, cancel := context.WithTimeout(s.drainCtx, reevalTimeout)
		v, err := s.pool.Do(ctx, func() (any, error) {
			res, _, qerr := ent.eng.QueryBatch(ctx, qs, k.alpha,
				crsky.QueryOptions{QuadNodes: k.qn, StageBudget: true})
			return res, qerr
		})
		if err != nil {
			// Overload or drain: this round is lost, the next committed
			// mutation schedules another. Watchers stay subscribed.
			cancel()
			continue
		}
		answers := v.([][]int)
		for i, sub := range g {
			if containsID(answers[i], sub.An) {
				s.watch.Emit(sub, watch.Event{
					Event:      watch.KindFlipped,
					Dataset:    name,
					Generation: ent.gen,
					An:         sub.An,
					Answer:     true,
				})
				continue
			}
			if !sub.TrackRepair {
				continue
			}
			rv, rerr := s.pool.Do(ctx, func() (any, error) {
				return ent.repairCtx(ctx, sub.Q, sub.An, k.alpha, causality.Options{QuadNodes: k.qn})
			})
			if rerr != nil {
				continue
			}
			removed := rv.(*causality.Repair).Removed
			if base := sub.RepairBaseline(); base < 0 || len(removed) < base {
				s.watch.Emit(sub, watch.Event{
					Event:      watch.KindRepairShrunk,
					Dataset:    name,
					Generation: ent.gen,
					An:         sub.An,
					Repair:     removed,
				})
			}
		}
		cancel()
	}
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
