package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/crsky/crsky/internal/obs"
)

// --- /metrics ---------------------------------------------------------

// promFamily is one parsed metric family from the text exposition.
type promFamily struct {
	typ     string
	samples map[string]float64 // full sample line key (name{labels}) -> value
}

// parseProm parses the Prometheus 0.0.4 text format strictly enough to
// catch real exposition bugs: every sample line must be "key value",
// every family must have HELP and TYPE before its samples.
func parseProm(tb testing.TB, body string) map[string]*promFamily {
	tb.Helper()
	fams := map[string]*promFamily{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				tb.Fatalf("HELP line without text: %q", line)
			}
			if fams[name] == nil {
				fams[name] = &promFamily{samples: map[string]float64{}}
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				tb.Fatalf("TYPE line without type: %q", line)
			}
			if fams[name] == nil {
				tb.Fatalf("TYPE before HELP for %q", name)
			}
			fams[name].typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: name{labels} value — value is the last space-separated field.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			tb.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			tb.Fatalf("sample %q: bad value %q: %v", key, valStr, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		// Histogram child series (name_bucket, name_sum, name_count) belong
		// to the parent family.
		fam := fams[base]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam == nil && strings.HasSuffix(base, suffix) {
				fam = fams[strings.TrimSuffix(base, suffix)]
			}
		}
		if fam == nil {
			tb.Fatalf("sample %q before its HELP/TYPE", key)
		}
		if _, dup := fam.samples[key]; dup {
			tb.Fatalf("duplicate sample %q", key)
		}
		fam.samples[key] = val
	}
	if err := sc.Err(); err != nil {
		tb.Fatal(err)
	}
	return fams
}

func TestMetricsEndpoint(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 4, CacheSize: 128})
	c := newTestClient(t, s)
	c.registerSample("obs", w.ds)

	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "obs", Q: w.q, Alpha: 0.5}, &qr, http.StatusOK)
	c.post("/v1/query", &QueryRequest{Dataset: "obs", Q: w.q, Alpha: 0.5}, &qr, http.StatusOK) // cache hit
	var er ExplainResponse
	c.post("/v1/explain", &ExplainRequest{Dataset: "obs", Q: w.q, An: w.ids[0], Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}}, &er, http.StatusOK)
	// One client error, to exercise the outcome label.
	c.post("/v1/query", &QueryRequest{Dataset: "nope", Q: w.q, Alpha: 0.5}, nil, http.StatusNotFound)

	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()
	resp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	fams := parseProm(t, buf.String())

	for name, wantTyp := range map[string]string{
		"crsky_request_duration_seconds": "histogram",
		"crsky_pool_wait_seconds":        "histogram",
		"crsky_pool_workers":             "gauge",
		"crsky_cache_hits_total":         "counter",
		"crsky_requests_total":           "counter",
		"crsky_dataset_objects":          "gauge",
		"crsky_uptime_seconds":           "gauge",
	} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %q missing", name)
		}
		if fam.typ != wantTyp {
			t.Fatalf("family %q type = %q, want %q", name, fam.typ, wantTyp)
		}
	}

	// The query route must have recorded ok samples with the dataset model.
	rd := fams["crsky_request_duration_seconds"]
	countKey := `crsky_request_duration_seconds_count{route="/v1/query",model="sample",outcome="ok"}`
	if got := rd.samples[countKey]; got != 2 {
		t.Fatalf("%s = %v, want 2", countKey, got)
	}
	errKey := `crsky_request_duration_seconds_count{route="/v1/query",model="-",outcome="client_error"}`
	if got := rd.samples[errKey]; got != 1 {
		t.Fatalf("%s = %v, want 1", errKey, got)
	}

	// Histogram invariants for the ok series: buckets cumulative and
	// monotone, +Inf bucket equals _count, _sum positive.
	bounds := obs.UpperBounds()
	prev := 0.0
	series := `{route="/v1/query",model="sample",outcome="ok"}`
	for _, ub := range bounds {
		key := fmt.Sprintf(`crsky_request_duration_seconds_bucket{route="/v1/query",model="sample",outcome="ok",le=%q}`,
			strconv.FormatFloat(ub, 'g', -1, 64))
		v, ok := rd.samples[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %v < previous %v (not cumulative)", key, v, prev)
		}
		prev = v
	}
	infKey := `crsky_request_duration_seconds_bucket{route="/v1/query",model="sample",outcome="ok",le="+Inf"}`
	inf, ok := rd.samples[infKey]
	if !ok {
		t.Fatalf("+Inf bucket missing for %s", series)
	}
	if inf < prev {
		t.Fatalf("+Inf bucket %v < last finite bucket %v", inf, prev)
	}
	if cnt := rd.samples["crsky_request_duration_seconds_count"+series]; cnt != inf {
		t.Fatalf("_count %v != +Inf bucket %v", cnt, inf)
	}
	if sum := rd.samples["crsky_request_duration_seconds_sum"+series]; !(sum > 0) {
		t.Fatalf("_sum = %v, want > 0", sum)
	}

	if v := fams["crsky_cache_hits_total"].samples["crsky_cache_hits_total"]; v != 1 {
		t.Fatalf("crsky_cache_hits_total = %v, want 1", v)
	}
	if v := fams["crsky_requests_total"].samples[`crsky_requests_total{endpoint="query"}`]; v != 3 {
		t.Fatalf("crsky_requests_total{query} = %v, want 3", v)
	}
	if v := fams["crsky_dataset_objects"].samples[`crsky_dataset_objects{dataset="obs",model="sample"}`]; v != float64(w.ds.Len()) {
		t.Fatalf("crsky_dataset_objects = %v, want %d", v, w.ds.Len())
	}
}

// --- ?trace=1 ---------------------------------------------------------

func spanMap(tj *obs.TraceJSON) map[string]obs.SpanJSON {
	m := map[string]obs.SpanJSON{}
	for _, sp := range tj.Spans {
		m[sp.Name] = sp
	}
	return m
}

func TestTracePropagation(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 4, CacheSize: 128})
	c := newTestClient(t, s)
	c.registerSample("tr", w.ds)

	// Untraced request: no trace in the envelope.
	var plain QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "tr", Q: w.q, Alpha: 0.5, NoCache: true}, &plain, http.StatusOK)
	if plain.Trace != nil {
		t.Fatalf("untraced query carried a trace: %+v", plain.Trace)
	}

	// Traced query: engine stage spans, counters, and disposition labels.
	var qr QueryResponse
	c.post("/v1/query?trace=1", &QueryRequest{Dataset: "tr", Q: w.q, Alpha: 0.5, NoCache: true}, &qr, http.StatusOK)
	if qr.Trace == nil {
		t.Fatal("traced query has no trace")
	}
	spans := spanMap(qr.Trace)
	for _, name := range []string{"pool.wait", "prsq.join", "prsq.exact"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("span %q missing; got %+v", name, qr.Trace.Spans)
		}
	}
	// Stage spans are sub-intervals of the request: each must fit inside
	// the measured wall time, and the engine stages must be sequential.
	var sum float64
	for _, name := range []string{"prsq.join", "prsq.exact"} {
		sp := spans[name]
		if sp.DurMs < 0 || sp.DurMs > qr.Trace.WallMs {
			t.Fatalf("span %s = %vms outside wall %vms", name, sp.DurMs, qr.Trace.WallMs)
		}
		sum += sp.DurMs
	}
	if sum > qr.Trace.WallMs+1 { // +1ms slack for rounding
		t.Fatalf("sequential spans sum %vms > wall %vms", sum, qr.Trace.WallMs)
	}
	if qr.Trace.Counters["prsq.objects"] != int64(w.ds.Len()) {
		t.Fatalf("prsq.objects counter = %d, want %d", qr.Trace.Counters["prsq.objects"], w.ds.Len())
	}
	if qr.Trace.Counters["rtree.joinNodeAccesses"] <= 0 {
		t.Fatalf("rtree.joinNodeAccesses = %d, want > 0", qr.Trace.Counters["rtree.joinNodeAccesses"])
	}
	if qr.Trace.Labels["cache"] != "bypass" {
		t.Fatalf("cache label = %q, want bypass", qr.Trace.Labels["cache"])
	}
	if qr.Trace.Labels["flight"] != "leader" {
		t.Fatalf("flight label = %q, want leader", qr.Trace.Labels["flight"])
	}

	// Traced explain: refinement stage spans and effort counters.
	var er ExplainResponse
	c.post("/v1/explain?trace=1", &ExplainRequest{Dataset: "tr", Q: w.q, An: w.ids[0], Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}, NoCache: true}, &er, http.StatusOK)
	if er.Trace == nil {
		t.Fatal("traced explain has no trace")
	}
	espans := spanMap(er.Trace)
	for _, name := range []string{"explain.filter", "explain.greedy", "explain.search"} {
		if _, ok := espans[name]; !ok {
			t.Fatalf("explain span %q missing; got %+v", name, er.Trace.Spans)
		}
	}
	if er.Trace.Counters["explain.candidates"] != int64(er.Candidates) {
		t.Fatalf("explain.candidates counter = %d, envelope says %d",
			er.Trace.Counters["explain.candidates"], er.Candidates)
	}
	if er.Trace.Counters["explain.subsetsExamined"] != er.SubsetsExamined {
		t.Fatalf("explain.subsetsExamined counter = %d, envelope says %d",
			er.Trace.Counters["explain.subsetsExamined"], er.SubsetsExamined)
	}

	// Traced cache hit: disposition labels but no engine spans (the engine
	// never ran for this request).
	var first, hit QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "tr", Q: w.q, Alpha: 0.5}, &first, http.StatusOK)
	resp := c.post("/v1/query?trace=1", &QueryRequest{Dataset: "tr", Q: w.q, Alpha: 0.5}, &hit, http.StatusOK)
	if got := resp.Header.Get(headerCache); got != "hit" {
		t.Fatalf("cache header = %q, want hit", got)
	}
	if hit.Trace == nil {
		t.Fatal("traced cache hit has no trace")
	}
	if hit.Trace.Labels["cache"] != "hit" {
		t.Fatalf("cache label = %q, want hit", hit.Trace.Labels["cache"])
	}
	if len(hit.Trace.Spans) != 0 {
		t.Fatalf("cache hit recorded engine spans: %+v", hit.Trace.Spans)
	}
}

func TestTraceBatchTrailer(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 4, CacheSize: 128})
	c := newTestClient(t, s)
	c.registerSample("b", w.ds)

	req := &BatchQueryRequest{Dataset: "b", Qs: [][]float64{w.q, w.q}, Alpha: 0.5, NoCache: true}

	// Without ?trace=1 the stream has exactly one line per item.
	resp, raw := c.do(http.MethodPost, "/v2/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 query: status %d (body %s)", resp.StatusCode, raw)
	}
	plainLines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(plainLines) != 2 {
		t.Fatalf("untraced batch has %d lines, want 2: %s", len(plainLines), raw)
	}

	// With ?trace=1 one trailer line follows, carrying the batch spans.
	resp, raw = c.do(http.MethodPost, "/v2/query?trace=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 traced query: status %d (body %s)", resp.StatusCode, raw)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("traced batch has %d lines, want 3: %s", len(lines), raw)
	}
	// Item lines identical to the untraced stream.
	for i := range plainLines {
		var a, b BatchQueryItem
		if err := json.Unmarshal(plainLines[i], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(lines[i], &b); err != nil {
			t.Fatal(err)
		}
		if a.Count != b.Count || len(a.Answers) != len(b.Answers) {
			t.Fatalf("item %d differs with tracing: %+v vs %+v", i, a, b)
		}
	}
	var trailer BatchTraceItem
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
		t.Fatalf("trailer line %s: %v", lines[len(lines)-1], err)
	}
	if trailer.Trace == nil {
		t.Fatal("trailer has no trace")
	}
	spans := spanMap(trailer.Trace)
	for _, name := range []string{"pool.wait", "prsq.batchJoin", "prsq.batchExact"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("batch span %q missing; got %+v", name, trailer.Trace.Spans)
		}
	}
}

// --- slow-query log ---------------------------------------------------

// syncBuffer is a goroutine-safe bytes.Buffer for the slow-log writer.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSlowQueryLog(t *testing.T) {
	w := sampleWorkload(t)
	var buf syncBuffer
	// 1ns threshold: every request is "slow", so the log must capture them
	// all, each line carrying the stage trace.
	s := New(Config{Workers: 4, CacheSize: 128, SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	c := newTestClient(t, s)
	c.registerSample("slow", w.ds)

	var qr QueryResponse
	c.post("/v1/query", &QueryRequest{Dataset: "slow", Q: w.q, Alpha: 0.5, NoCache: true}, &qr, http.StatusOK)
	if qr.Trace != nil {
		t.Fatal("slow-log-only request leaked a trace into the envelope")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// registerSample + query = 2 instrumented requests.
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2: %q", len(lines), buf.String())
	}
	var ent obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[1]), &ent); err != nil {
		t.Fatalf("slow log line %q: %v", lines[1], err)
	}
	if ent.Route != "/v1/query" || ent.Dataset != "slow" || ent.Model != ModelSample || ent.Outcome != "ok" {
		t.Fatalf("slow entry = %+v", ent)
	}
	if ent.Status != http.StatusOK || ent.DurMs <= 0 {
		t.Fatalf("slow entry status/dur = %d/%v", ent.Status, ent.DurMs)
	}
	if ent.Trace == nil {
		t.Fatal("slow entry has no trace")
	}
	if _, ok := spanMap(ent.Trace)["prsq.join"]; !ok {
		t.Fatalf("slow entry trace lacks engine spans: %+v", ent.Trace.Spans)
	}
	if s.slow.Written() != 2 {
		t.Fatalf("slow.Written() = %d, want 2", s.slow.Written())
	}
}

// --- pool saturation --------------------------------------------------

func TestPoolSaturationStats(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1, CacheSize: -1})
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	s.computeHook = func(context.Context) {
		once.Do(entered.Done)
		<-release
	}
	c := newTestClient(t, s)
	c.registerSample("pool", w.ds)

	// Occupy the single worker, then stack a second request behind it so
	// the queue-depth gauge must move.
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		q := append([]float64(nil), w.q...) // distinct points, distinct flight keys
		q[0] += float64(i) * 1e-9
		go func(q []float64) {
			defer wg.Done()
			var qr QueryResponse
			c.post("/v1/query", &QueryRequest{Dataset: "pool", Q: q, Alpha: 0.5, NoCache: true}, &qr, http.StatusOK)
		}(q)
	}
	entered.Wait() // first request holds the slot
	// Wait for the second request to be queued on the semaphore.
	deadline := time.After(5 * time.Second)
	for s.pool.Stats().QueueDepth == 0 {
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		case <-time.After(time.Millisecond):
		}
	}
	ps := s.pool.Stats()
	if ps.InFlight != 1 || ps.QueueDepth != 1 {
		t.Fatalf("saturated pool stats = %+v", ps)
	}
	close(release)
	wg.Wait()

	ps = s.pool.Stats()
	if ps.QueueDepth != 0 || ps.InFlight != 0 {
		t.Fatalf("drained pool stats = %+v", ps)
	}
	if ps.PeakQueueDepth < 1 || ps.PeakInFlight < 1 {
		t.Fatalf("peaks not recorded: %+v", ps)
	}
	if ps.Completed != 2 {
		t.Fatalf("completed = %d, want 2", ps.Completed)
	}
	// The queued request waited on the semaphore, so the wait histogram
	// must have observed a visible wait (p99 covers the slowest).
	if ps.WaitP99Ms <= 0 {
		t.Fatalf("WaitP99Ms = %v, want > 0", ps.WaitP99Ms)
	}
}
