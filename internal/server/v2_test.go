package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	crsky "github.com/crsky/crsky"
)

// --- cache-key completeness -------------------------------------------

// perturb sets a field of a v2 request struct to a non-zero value, so the
// key test can demand a distinct cache key per field. Unknown kinds fail
// loudly: a new field of a new shape must teach this function (and the
// cache keys) about itself.
func perturb(t *testing.T, fv reflect.Value, name string) {
	t.Helper()
	switch fv.Interface().(type) {
	case string:
		fv.SetString("x")
	case float64:
		fv.SetFloat(0.5)
	case int:
		fv.SetInt(7)
	case bool:
		fv.SetBool(true)
	case [][]float64:
		fv.Set(reflect.ValueOf([][]float64{{1, 2}}))
	case []BatchExplainItemRequest:
		fv.Set(reflect.ValueOf([]BatchExplainItemRequest{{Q: []float64{1, 2}, An: 3}}))
	case OptionsSpec:
		fv.Set(reflect.ValueOf(OptionsSpec{MaxSubsets: 9}))
	default:
		t.Fatalf("field %s has type %s: teach the v2 key test (and the cache key) how to handle it", name, fv.Type())
	}
}

// TestV2CacheKeysCoverEveryField walks both v2 request structs by
// reflection, perturbs one field at a time, and demands that the per-item
// cache keys change for every perturbation except the declared delivery
// directives. A field the keys ignore would let the server serve a cached
// item computed for a different request — the bug class this test makes
// impossible to reintroduce silently.
func TestV2CacheKeysCoverEveryField(t *testing.T) {
	ent := &entry{name: "d", gen: 1}
	// NoCache is the cache directive itself; the Approx trio selects the
	// degraded tier, whose responses are never cached; Verify re-checks
	// per request whatever is served, so verified and unverified requests
	// share entries; ItemTimeout bounds delivery, not the computed result.
	exempt := map[string]bool{"NoCache": true, "Approx": true, "Epsilon": true,
		"Confidence": true, "Verify": true, "ItemTimeout": true}

	// The baselines are non-zero: per-item keys exist per ITEM, so a
	// zero-item request would hide Alpha/Options perturbations.
	check := func(t *testing.T, base any, key func(v reflect.Value) string) {
		typ := reflect.TypeOf(base)
		baseKey := key(reflect.ValueOf(base))
		seen := map[string]string{baseKey: "<base>"}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			v := reflect.New(typ).Elem()
			v.Set(reflect.ValueOf(base))
			perturb(t, v.Field(i), typ.Name()+"."+f.Name)
			k := key(v)
			if exempt[f.Name] {
				if k != baseKey {
					t.Errorf("%s.%s is exempt but still feeds the keys", typ.Name(), f.Name)
				}
				continue
			}
			if k == baseKey {
				t.Errorf("%s.%s is not covered by the cache keys", typ.Name(), f.Name)
				continue
			}
			if prev, dup := seen[k]; dup {
				t.Errorf("%s: fields %s and %s collide on key %q", typ.Name(), prev, f.Name, k)
			}
			seen[k] = f.Name
		}
	}

	check(t, BatchQueryRequest{Dataset: "d", Qs: [][]float64{{9, 9}}}, func(v reflect.Value) string {
		r := v.Interface().(BatchQueryRequest)
		return strings.Join(r.itemKeys(ent), "\n")
	})
	check(t, BatchExplainRequest{Dataset: "d", Items: []BatchExplainItemRequest{{Q: []float64{9, 9}, An: 1}}},
		func(v reflect.Value) string {
			r := v.Interface().(BatchExplainRequest)
			return strings.Join(r.itemKeys(ent), "\n")
		})
}

// TestV2CacheKeyCoversBatchShape pins the per-item key semantics: keys
// follow their items (permuting the batch permutes the keys, dropping an
// item drops its key) while each item's key is independent of its
// position and siblings. That independence is the point of per-item
// caching — any batch, or a v1 single query, that contains the item can
// serve or warm it.
func TestV2CacheKeyCoversBatchShape(t *testing.T) {
	ent := &entry{name: "d", gen: 1}
	a := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{1, 2}, {3, 4}}, Alpha: 0.5}
	b := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{3, 4}, {1, 2}}, Alpha: 0.5}
	ka, kb := a.itemKeys(ent), b.itemKeys(ent)
	if ka[0] == ka[1] {
		t.Error("distinct query points share a key")
	}
	if ka[0] != kb[1] || ka[1] != kb[0] {
		t.Error("permuting the batch did not permute the per-item keys")
	}
	c := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{1, 2}}, Alpha: 0.5}
	if kc := c.itemKeys(ent); len(kc) != 1 || kc[0] != ka[0] {
		t.Error("an item's key depends on its siblings")
	}
}

// --- NDJSON helpers ----------------------------------------------------

func decodeNDJSON[T any](t *testing.T, raw []byte) []T {
	t.Helper()
	var out []T
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var item T
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("bad NDJSON line %d: %v (body %s)", len(out), err, raw)
		}
		out = append(out, item)
	}
	return out
}

// --- end-to-end --------------------------------------------------------

// TestServerV2QueryBatch drives /v2/query against the library ground truth
// per point, asserts request-ordered NDJSON, and checks the second
// identical request is served from the cache.
func TestServerV2QueryBatch(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	qs := [][]float64{w.q, {w.q[0] * 0.8, w.q[1] * 1.1}, {w.q[0] * 1.3, w.q[1] * 0.7}}
	req := &BatchQueryRequest{Dataset: "demo", Qs: qs, Alpha: 0.5}
	resp, raw := c.do(http.MethodPost, "/v2/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	items := decodeNDJSON[BatchQueryItem](t, raw)
	if len(items) != len(qs) {
		t.Fatalf("%d NDJSON items, want %d", len(items), len(qs))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d has index %d: responses must be request-ordered", i, it.Index)
		}
		want := w.eng.ProbabilisticReverseSkylineNaive(qs[i], 0.5)
		if fmt.Sprint(it.Answers) != fmt.Sprint(append([]int{}, want...)) {
			t.Fatalf("q #%d: got %v, want %v", i, it.Answers, want)
		}
		if it.Count != len(want) {
			t.Fatalf("q #%d: count %d, want %d", i, it.Count, len(want))
		}
	}

	resp2, raw2 := c.do(http.MethodPost, "/v2/query", req)
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("cached response differs from computed one:\n%s\nvs\n%s", raw, raw2)
	}
}

// TestServerV2ExplainBatch drives /v2/explain with a mix of tractable
// non-answers and an answer, asserting per-item results crossed against
// the direct library engine and a per-item error for the answer.
func TestServerV2ExplainBatch(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	// One known answer for the per-item error path.
	answers := w.eng.ProbabilisticReverseSkyline(w.q, 0.5)
	if len(answers) == 0 {
		t.Fatal("workload has no answers")
	}
	items := []BatchExplainItemRequest{
		{Q: w.q, An: w.ids[0]},
		{Q: w.q, An: answers[0]},
		{Q: w.q, An: w.ids[1]},
	}
	req := &BatchExplainRequest{
		Dataset: "demo", Items: items, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 60}, Verify: true,
	}
	resp, raw := c.do(http.MethodPost, "/v2/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, raw)
	}
	got := decodeNDJSON[BatchExplainItem](t, raw)
	if len(got) != len(items) {
		t.Fatalf("%d NDJSON items, want %d", len(got), len(items))
	}
	for i, an := range []int{w.ids[0], answers[0], w.ids[1]} {
		it := got[i]
		if it.Index != i {
			t.Fatalf("item %d has index %d", i, it.Index)
		}
		if i == 1 {
			if it.Error == "" || it.Explain != nil {
				t.Fatalf("item %d (an answer) should fail per-item, got %+v", i, it)
			}
			continue
		}
		if it.Error != "" || it.Explain == nil {
			t.Fatalf("item %d: unexpected error %q", i, it.Error)
		}
		want, err := w.eng.Explain(an, w.q, 0.5, req.Options.toOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(it.Explain.Causes) != len(want.Causes) {
			t.Fatalf("item %d: %d causes, library says %d", i, len(it.Explain.Causes), len(want.Causes))
		}
		for j := range want.Causes {
			if it.Explain.Causes[j].ID != want.Causes[j].ID ||
				it.Explain.Causes[j].Responsibility != want.Causes[j].Responsibility {
				t.Fatalf("item %d cause %d: got %+v, want %+v", i, j, it.Explain.Causes[j], want.Causes[j])
			}
		}
		if !it.Explain.Verified {
			t.Fatalf("item %d not marked verified", i)
		}
	}
}

// TestServerV2DeadlineReleasesPool asserts an expired ?timeout= fails with
// 503 while leaving the worker pool fully available: the slot is released
// the moment the engine observes the cancellation, and the next request
// computes normally.
func TestServerV2DeadlineReleasesPool(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	req := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5, NoCache: true}
	resp, raw := c.do(http.MethodPost, "/v2/query?timeout=1ns", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503 (body %s)", resp.StatusCode, raw)
	}

	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool slot still held after canceled request: %+v", s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp2, raw2 := c.do(http.MethodPost, "/v2/query", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after cancellation: status %d (body %s) — slot not released?", resp2.StatusCode, raw2)
	}
}

// TestServerV2BadTimeout asserts a malformed timeout is rejected up front.
func TestServerV2BadTimeout(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)
	req := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5}
	c.post("/v2/query?timeout=banana", req, nil, http.StatusBadRequest)
	ereq := &BatchExplainRequest{Dataset: "demo", Alpha: 0.5, ItemTimeout: "banana",
		Items: []BatchExplainItemRequest{{Q: w.q, An: 0}}}
	c.post("/v2/explain", ereq, nil, http.StatusBadRequest)
}

// --- true streaming ----------------------------------------------------

// streamGate wraps an engine so the batch blocks after emitting its first
// item until the test releases it. If /v2/query really streams, the first
// NDJSON line reaches the client while the engine is still held; if the
// handler buffers until the batch completes, nothing arrives until the
// 5-second failsafe trips and timedOut records the regression.
type streamGate struct {
	crsky.Explainer
	release  chan struct{}
	timedOut atomic.Bool
}

func (g *streamGate) QueryBatchStream(ctx context.Context, qs []crsky.Point, alpha float64,
	opts crsky.QueryOptions, emit func(int, []int)) ([][]int, crsky.QueryStats, error) {

	return g.Explainer.QueryBatchStream(ctx, qs, alpha, opts, func(i int, ids []int) {
		emit(i, ids)
		if i == 0 {
			select {
			case <-g.release:
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
				g.timedOut.Store(true)
			}
		}
	})
}

// TestServerV2QueryStreamsBeforeBatchCompletes asserts the core streaming
// contract: the first NDJSON line is flushed to the client BEFORE the last
// item of the batch computes.
func TestServerV2QueryStreamsBeforeBatchCompletes(t *testing.T) {
	w := sampleWorkload(t)
	var gate *streamGate
	s := New(Config{WrapEngine: func(e crsky.Explainer) crsky.Explainer {
		gate = &streamGate{Explainer: e, release: make(chan struct{})}
		return gate
	}})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	qs := [][]float64{w.q, {w.q[0] * 0.8, w.q[1] * 1.1}, {w.q[0] * 1.3, w.q[1] * 0.7}}
	body, err := json.Marshal(&BatchQueryRequest{Dataset: "demo", Qs: qs, Alpha: 0.5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ts.Client().Post(c.ts.URL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The engine is parked after item 0: this read completes only if the
	// server flushed the line item-by-item.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first NDJSON line: %v", err)
	}
	var first BatchQueryItem
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatalf("bad first line %q: %v", line, err)
	}
	if first.Index != 0 || first.Error != "" {
		t.Fatalf("first line = %+v, want item 0 with no error", first)
	}
	if gate.timedOut.Load() {
		t.Fatal("first line was not flushed until the whole batch completed")
	}

	close(gate.release)
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	items := append([]BatchQueryItem{first}, decodeNDJSON[BatchQueryItem](t, rest)...)
	if len(items) != len(qs) {
		t.Fatalf("%d NDJSON items, want %d", len(items), len(qs))
	}
	for i, it := range items {
		if it.Index != i || it.Error != "" {
			t.Fatalf("item %d = %+v", i, it)
		}
		want := w.eng.ProbabilisticReverseSkylineNaive(qs[i], 0.5)
		if fmt.Sprint(it.Answers) != fmt.Sprint(append([]int{}, want...)) {
			t.Fatalf("q #%d: got %v, want %v", i, it.Answers, want)
		}
	}
}

// failAfterFirst emits a real answer for item 0 and then fails the batch —
// the deterministic mid-stream engine failure.
type failAfterFirst struct {
	crsky.Explainer
}

func (g *failAfterFirst) QueryBatchStream(ctx context.Context, qs []crsky.Point, alpha float64,
	opts crsky.QueryOptions, emit func(int, []int)) ([][]int, crsky.QueryStats, error) {

	ids, st, err := g.Explainer.QueryCtx(ctx, qs[0], alpha, opts)
	if err != nil {
		return nil, st, err
	}
	if emit != nil {
		emit(0, ids)
	}
	return nil, st, errors.New("batch backend exploded")
}

// TestServerV2QueryMidStreamErrorEnvelopes asserts that an engine failure
// after items are already on the wire degrades to per-item error envelopes
// on the unfinished tail — the stream stays well-formed NDJSON with one
// line per item instead of being truncated.
func TestServerV2QueryMidStreamErrorEnvelopes(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{WrapEngine: func(e crsky.Explainer) crsky.Explainer {
		return &failAfterFirst{Explainer: e}
	}})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	qs := [][]float64{w.q, {w.q[0] * 0.8, w.q[1] * 1.1}, {w.q[0] * 1.3, w.q[1] * 0.7}}
	req := &BatchQueryRequest{Dataset: "demo", Qs: qs, Alpha: 0.5, NoCache: true}
	resp, raw := c.do(http.MethodPost, "/v2/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s): first item was flushed before the failure", resp.StatusCode, raw)
	}
	items := decodeNDJSON[BatchQueryItem](t, raw)
	if len(items) != len(qs) {
		t.Fatalf("%d NDJSON items, want %d: %s", len(items), len(qs), raw)
	}
	if items[0].Error != "" {
		t.Fatalf("item 0 carries error %q, want the real answer", items[0].Error)
	}
	want := w.eng.ProbabilisticReverseSkylineNaive(qs[0], 0.5)
	if fmt.Sprint(items[0].Answers) != fmt.Sprint(append([]int{}, want...)) {
		t.Fatalf("item 0 answers %v, want %v", items[0].Answers, want)
	}
	for i := 1; i < len(items); i++ {
		if items[i].Index != i || items[i].Error == "" {
			t.Fatalf("item %d = %+v, want an error envelope", i, items[i])
		}
	}
}

// --- per-item cache shared with v1 -------------------------------------

// TestServerV2PerItemCacheSharedWithV1 asserts the split cache: a batch
// warms the v1 single-query cache item by item, and v1-warmed points make
// a later batch an all-hit.
func TestServerV2PerItemCacheSharedWithV1(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	q2 := []float64{w.q[0] * 0.8, w.q[1] * 1.1}
	req := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{w.q, q2}, Alpha: 0.5}
	resp, raw := c.do(http.MethodPost, "/v2/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d (body %s)", resp.StatusCode, raw)
	}
	items := decodeNDJSON[BatchQueryItem](t, raw)

	// v1 single query on a batch member is a cache hit with the same answer.
	var qr QueryResponse
	r1 := c.post("/v1/query", &QueryRequest{Dataset: "demo", Q: q2, Alpha: 0.5}, &qr, http.StatusOK)
	if got := r1.Header.Get(headerCache); got != "hit" {
		t.Fatalf("v1 query after batch: cache header %q, want hit", got)
	}
	if fmt.Sprint(qr.Answers) != fmt.Sprint(items[1].Answers) {
		t.Fatalf("v1 served %v from the batch-warmed cache, batch said %v", qr.Answers, items[1].Answers)
	}

	// A v1-warmed point plus an already-cached one make a batch all-hit.
	q3 := []float64{w.q[0] * 1.3, w.q[1] * 0.7}
	c.post("/v1/query", &QueryRequest{Dataset: "demo", Q: q3, Alpha: 0.5}, &qr, http.StatusOK)
	req2 := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{q3, w.q}, Alpha: 0.5}
	resp2, raw2 := c.do(http.MethodPost, "/v2/query", req2)
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("batch over v1-warmed points: cache header %q, want hit (body %s)", got, raw2)
	}
	items2 := decodeNDJSON[BatchQueryItem](t, raw2)
	if fmt.Sprint(items2[0].Answers) != fmt.Sprint(qr.Answers) {
		t.Fatalf("batch served %v for the v1-warmed point, v1 said %v", items2[0].Answers, qr.Answers)
	}
}

// --- per-item deadlines ------------------------------------------------

// TestServerV2ExplainItemTimeout asserts ItemTimeout fails items ALONE:
// the batch stays a 200 with one error line per blown item (where the old
// behavior failed the whole request), error items are never cached, and
// the same request without the per-item bound computes and then hits.
func TestServerV2ExplainItemTimeout(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	items := []BatchExplainItemRequest{{Q: w.q, An: w.ids[0]}, {Q: w.q, An: w.ids[1]}}
	req := &BatchExplainRequest{Dataset: "demo", Items: items, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 60}, ItemTimeout: "1ns"}
	resp, raw := c.do(http.MethodPost, "/v2/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-item deadline killed the whole batch: status %d (body %s)", resp.StatusCode, raw)
	}
	got := decodeNDJSON[BatchExplainItem](t, raw)
	if len(got) != len(items) {
		t.Fatalf("%d NDJSON items, want %d", len(got), len(items))
	}
	for i, it := range got {
		if it.Index != i || it.Error == "" || it.Explain != nil {
			t.Fatalf("item %d = %+v, want a per-item deadline error", i, it)
		}
	}

	// Failed items were not cached: the unbounded retry computes (miss),
	// succeeds, and only then populates the per-item cache (hit).
	req.ItemTimeout = ""
	resp2, raw2 := c.do(http.MethodPost, "/v2/explain", req)
	if got := resp2.Header.Get(headerCache); got != "miss" {
		t.Fatalf("retry after deadline failures: cache header %q, want miss", got)
	}
	for i, it := range decodeNDJSON[BatchExplainItem](t, raw2) {
		if it.Error != "" || it.Explain == nil {
			t.Fatalf("unbounded retry item %d = %+v", i, it)
		}
	}
	resp3, _ := c.do(http.MethodPost, "/v2/explain", req)
	if got := resp3.Header.Get(headerCache); got != "hit" {
		t.Fatalf("third request: cache header %q, want hit", got)
	}
}
