package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// --- cache-key completeness -------------------------------------------

// perturb sets a field of a v2 request struct to a non-zero value, so the
// key test can demand a distinct cache key per field. Unknown kinds fail
// loudly: a new field of a new shape must teach this function (and the
// cache keys) about itself.
func perturb(t *testing.T, fv reflect.Value, name string) {
	t.Helper()
	switch fv.Interface().(type) {
	case string:
		fv.SetString("x")
	case float64:
		fv.SetFloat(0.5)
	case int:
		fv.SetInt(7)
	case bool:
		fv.SetBool(true)
	case [][]float64:
		fv.Set(reflect.ValueOf([][]float64{{1, 2}}))
	case []BatchExplainItemRequest:
		fv.Set(reflect.ValueOf([]BatchExplainItemRequest{{Q: []float64{1, 2}, An: 3}}))
	case OptionsSpec:
		fv.Set(reflect.ValueOf(OptionsSpec{MaxSubsets: 9}))
	default:
		t.Fatalf("field %s has type %s: teach the v2 key test (and the cache key) how to handle it", name, fv.Type())
	}
}

// TestV2CacheKeysCoverEveryField walks both v2 request structs by
// reflection, perturbs one field at a time, and demands a distinct cache
// key for every perturbation except the declared cache directives. A field
// the key ignores would let the server serve a cached batch computed for a
// different request — the bug class this test makes impossible to
// reintroduce silently.
func TestV2CacheKeysCoverEveryField(t *testing.T) {
	ent := &entry{name: "d", gen: 1}
	// NoCache is a cache directive; the Approx trio selects the degraded
	// tier, whose responses are never cached (the exact computation an
	// "auto" request may fall back from is identical without them).
	exempt := map[string]bool{"NoCache": true, "Approx": true, "Epsilon": true, "Confidence": true}

	check := func(t *testing.T, zero any, key func(v reflect.Value) string) {
		typ := reflect.TypeOf(zero)
		base := key(reflect.New(typ).Elem())
		seen := map[string]string{base: "<zero>"}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			v := reflect.New(typ).Elem()
			perturb(t, v.Field(i), typ.Name()+"."+f.Name)
			k := key(v)
			if exempt[f.Name] {
				if k != base {
					t.Errorf("%s.%s is exempt but still feeds the key", typ.Name(), f.Name)
				}
				continue
			}
			if k == base {
				t.Errorf("%s.%s is not covered by the cache key", typ.Name(), f.Name)
				continue
			}
			if prev, dup := seen[k]; dup {
				t.Errorf("%s: fields %s and %s collide on key %q", typ.Name(), prev, f.Name, k)
			}
			seen[k] = f.Name
		}
	}

	check(t, BatchQueryRequest{}, func(v reflect.Value) string {
		r := v.Interface().(BatchQueryRequest)
		return r.cacheKey(ent)
	})
	check(t, BatchExplainRequest{}, func(v reflect.Value) string {
		r := v.Interface().(BatchExplainRequest)
		return r.cacheKey(ent)
	})
}

// TestV2CacheKeyCoversBatchShape spot-checks that permuting or truncating
// the batch changes the key: the shape is part of the semantics.
func TestV2CacheKeyCoversBatchShape(t *testing.T) {
	ent := &entry{name: "d", gen: 1}
	a := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{1, 2}, {3, 4}}, Alpha: 0.5}
	b := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{3, 4}, {1, 2}}, Alpha: 0.5}
	c := BatchQueryRequest{Dataset: "d", Qs: [][]float64{{1, 2}}, Alpha: 0.5}
	if a.cacheKey(ent) == b.cacheKey(ent) {
		t.Error("permuting the batch left the key unchanged")
	}
	if a.cacheKey(ent) == c.cacheKey(ent) {
		t.Error("truncating the batch left the key unchanged")
	}
}

// --- NDJSON helpers ----------------------------------------------------

func decodeNDJSON[T any](t *testing.T, raw []byte) []T {
	t.Helper()
	var out []T
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var item T
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("bad NDJSON line %d: %v (body %s)", len(out), err, raw)
		}
		out = append(out, item)
	}
	return out
}

// --- end-to-end --------------------------------------------------------

// TestServerV2QueryBatch drives /v2/query against the library ground truth
// per point, asserts request-ordered NDJSON, and checks the second
// identical request is served from the cache.
func TestServerV2QueryBatch(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	qs := [][]float64{w.q, {w.q[0] * 0.8, w.q[1] * 1.1}, {w.q[0] * 1.3, w.q[1] * 0.7}}
	req := &BatchQueryRequest{Dataset: "demo", Qs: qs, Alpha: 0.5}
	resp, raw := c.do(http.MethodPost, "/v2/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	items := decodeNDJSON[BatchQueryItem](t, raw)
	if len(items) != len(qs) {
		t.Fatalf("%d NDJSON items, want %d", len(items), len(qs))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d has index %d: responses must be request-ordered", i, it.Index)
		}
		want := w.eng.ProbabilisticReverseSkylineNaive(qs[i], 0.5)
		if fmt.Sprint(it.Answers) != fmt.Sprint(append([]int{}, want...)) {
			t.Fatalf("q #%d: got %v, want %v", i, it.Answers, want)
		}
		if it.Count != len(want) {
			t.Fatalf("q #%d: count %d, want %d", i, it.Count, len(want))
		}
	}

	resp2, raw2 := c.do(http.MethodPost, "/v2/query", req)
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("cached response differs from computed one:\n%s\nvs\n%s", raw, raw2)
	}
}

// TestServerV2ExplainBatch drives /v2/explain with a mix of tractable
// non-answers and an answer, asserting per-item results crossed against
// the direct library engine and a per-item error for the answer.
func TestServerV2ExplainBatch(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	// One known answer for the per-item error path.
	answers := w.eng.ProbabilisticReverseSkyline(w.q, 0.5)
	if len(answers) == 0 {
		t.Fatal("workload has no answers")
	}
	items := []BatchExplainItemRequest{
		{Q: w.q, An: w.ids[0]},
		{Q: w.q, An: answers[0]},
		{Q: w.q, An: w.ids[1]},
	}
	req := &BatchExplainRequest{
		Dataset: "demo", Items: items, Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 60}, Verify: true,
	}
	resp, raw := c.do(http.MethodPost, "/v2/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, raw)
	}
	got := decodeNDJSON[BatchExplainItem](t, raw)
	if len(got) != len(items) {
		t.Fatalf("%d NDJSON items, want %d", len(got), len(items))
	}
	for i, an := range []int{w.ids[0], answers[0], w.ids[1]} {
		it := got[i]
		if it.Index != i {
			t.Fatalf("item %d has index %d", i, it.Index)
		}
		if i == 1 {
			if it.Error == "" || it.Explain != nil {
				t.Fatalf("item %d (an answer) should fail per-item, got %+v", i, it)
			}
			continue
		}
		if it.Error != "" || it.Explain == nil {
			t.Fatalf("item %d: unexpected error %q", i, it.Error)
		}
		want, err := w.eng.Explain(an, w.q, 0.5, req.Options.toOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(it.Explain.Causes) != len(want.Causes) {
			t.Fatalf("item %d: %d causes, library says %d", i, len(it.Explain.Causes), len(want.Causes))
		}
		for j := range want.Causes {
			if it.Explain.Causes[j].ID != want.Causes[j].ID ||
				it.Explain.Causes[j].Responsibility != want.Causes[j].Responsibility {
				t.Fatalf("item %d cause %d: got %+v, want %+v", i, j, it.Explain.Causes[j], want.Causes[j])
			}
		}
		if !it.Explain.Verified {
			t.Fatalf("item %d not marked verified", i)
		}
	}
}

// TestServerV2DeadlineReleasesPool asserts an expired ?timeout= fails with
// 503 while leaving the worker pool fully available: the slot is released
// the moment the engine observes the cancellation, and the next request
// computes normally.
func TestServerV2DeadlineReleasesPool(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{Workers: 1})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)

	req := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5, NoCache: true}
	resp, raw := c.do(http.MethodPost, "/v2/query?timeout=1ns", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503 (body %s)", resp.StatusCode, raw)
	}

	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool slot still held after canceled request: %+v", s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp2, raw2 := c.do(http.MethodPost, "/v2/query", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after cancellation: status %d (body %s) — slot not released?", resp2.StatusCode, raw2)
	}
}

// TestServerV2BadTimeout asserts a malformed timeout is rejected up front.
func TestServerV2BadTimeout(t *testing.T) {
	w := sampleWorkload(t)
	s := New(Config{})
	c := newTestClient(t, s)
	c.registerSample("demo", w.ds)
	req := &BatchQueryRequest{Dataset: "demo", Qs: [][]float64{w.q}, Alpha: 0.5}
	c.post("/v2/query?timeout=banana", req, nil, http.StatusBadRequest)
}
