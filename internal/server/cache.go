package server

import (
	"container/list"
	"sync"

	"github.com/crsky/crsky/internal/stats"
)

// lruCache is a bounded least-recently-used result cache. Values are
// treated as immutable once stored: handlers marshal them fresh per
// response and never mutate a cached value, which is what makes a cache
// hit byte-identical to the original computation.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions stats.Counter
}

type cacheEntry struct {
	key string
	val any
}

// newLRUCache builds a cache holding at most capacity entries; capacity
// <= 0 disables caching entirely (every Get misses, Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	if c.cap <= 0 {
		c.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// Remove drops the entry for key, if present.
func (c *lruCache) Remove(key string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the cache counters.
func (c *lruCache) Stats() CacheStats {
	h, m := c.hits.Value(), c.misses.Value()
	return CacheStats{
		Capacity:  c.cap,
		Size:      c.Len(),
		Hits:      h,
		Misses:    m,
		Evictions: c.evictions.Value(),
		HitRate:   stats.HitRate(h, m),
	}
}
