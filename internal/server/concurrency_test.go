package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestServerConcurrentExplain is the serving acceptance test: 32 parallel
// explain requests — a mix of identical and distinct — must all return the
// library's direct Explain output, pass verification, and exercise both
// the cache (≥ 1 hit) and singleflight (≥ 1 deduplicated computation).
func TestServerConcurrentExplain(t *testing.T) {
	w := sampleWorkload(t)
	if len(w.ids) < 4 {
		t.Fatalf("workload has %d non-answers, need 4", len(w.ids))
	}
	ans := w.ids[:4]

	s := New(Config{Workers: 8, CacheSize: 256})
	// Hold every computation open long enough that all parallel callers
	// of the same key are guaranteed to overlap with their leader, making
	// the deduplication assertion deterministic.
	s.computeHook = func(context.Context) { time.Sleep(100 * time.Millisecond) }
	c := newTestClient(t, s)
	c.registerSample("lUrU", w.ds)

	// Ground truth from the library, computed up front.
	want := make(map[int][]byte)
	for _, an := range ans {
		direct, err := w.eng.Explain(an, w.q, 0.5, OptionsSpec{MaxCandidates: 64}.toOptions())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(causesJSON(direct.Causes))
		if err != nil {
			t.Fatal(err)
		}
		want[an] = raw
	}

	const parallel = 32 // 8 goroutines per non-answer: identical within a key, distinct across keys
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []string
	)
	bodies := make([][]byte, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			an := ans[i%len(ans)]
			req := &ExplainRequest{Dataset: "lUrU", Q: w.q, An: an, Alpha: 0.5,
				Options: OptionsSpec{MaxCandidates: 64}, Verify: true}
			resp, raw := c.do(http.MethodPost, "/v1/explain", req)
			mu.Lock()
			defer mu.Unlock()
			bodies[i] = raw
			if resp.StatusCode != http.StatusOK {
				fails = append(fails, string(raw))
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if len(fails) > 0 {
		t.Fatalf("%d of %d requests failed, first: %s", len(fails), parallel, fails[0])
	}

	// Every response matches the direct library output and verifies —
	// both server-side (verified flag) and client-side.
	for i, raw := range bodies {
		var er ExplainResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		an := ans[i%len(ans)]
		if er.NonAnswer != an || !er.Verified {
			t.Fatalf("response %d: nonAnswer=%d verified=%t", i, er.NonAnswer, er.Verified)
		}
		got, err := json.Marshal(er.Causes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[an]) {
			t.Fatalf("response %d causes = %s, want %s", i, got, want[an])
		}
		if err := w.eng.Verify(w.q, 0.5, resultFromResponse(&er)); err != nil {
			t.Fatalf("response %d fails verify: %v", i, err)
		}
		// Identical requests must produce byte-identical responses
		// regardless of whether they were computed, deduplicated, or
		// served from cache.
		if prev := bodies[i%len(ans)]; !bytes.Equal(raw, prev) {
			t.Fatalf("response %d differs from response %d for the same request:\n%s\n%s",
				i, i%len(ans), raw, prev)
		}
	}

	// One more identical request is a guaranteed cache hit.
	req := &ExplainRequest{Dataset: "lUrU", Q: w.q, An: ans[0], Alpha: 0.5,
		Options: OptionsSpec{MaxCandidates: 64}, Verify: true}
	resp, raw := c.do(http.MethodPost, "/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up explain: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(headerCache); got != "hit" {
		t.Fatalf("follow-up explain cache header = %q, want hit", got)
	}
	if !bytes.Equal(raw, bodies[0]) {
		t.Fatalf("cached follow-up differs from original:\n%s\n%s", raw, bodies[0])
	}

	// Stats must show the dedup and cache work: 4 distinct keys were
	// computed once each, at least one request joined an in-flight
	// computation, and at least one was served from cache.
	var st StatsResponse
	stResp, stRaw := c.do(http.MethodGet, "/v1/stats", nil)
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", stResp.StatusCode)
	}
	if err := json.Unmarshal(stRaw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Flights.Executed < int64(len(ans)) || st.Flights.Executed > parallel {
		t.Errorf("flights executed = %d, want %d..%d", st.Flights.Executed, len(ans), parallel)
	}
	if st.Flights.Deduped < 1 {
		t.Errorf("flights deduped = %d, want >= 1", st.Flights.Deduped)
	}
	if st.Cache.Hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", st.Cache.Hits)
	}
	if st.Pool.PeakInFlight > int64(s.cfg.Workers) {
		t.Errorf("peak in-flight %d exceeds worker bound %d", st.Pool.PeakInFlight, s.cfg.Workers)
	}
	if st.Requests.Explain != parallel+1 {
		t.Errorf("explain request count = %d, want %d", st.Requests.Explain, parallel+1)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].NodeAccesses < 1 {
		t.Errorf("dataset stats = %+v, want one dataset with node accesses", st.Datasets)
	}
}

// TestServerWorkerPoolBounds floods a one-worker server and asserts the
// pool never runs computations concurrently.
func TestServerWorkerPoolBounds(t *testing.T) {
	w := sampleWorkload(t)
	// MaxQueue is raised past the flood size so admission control (whose
	// explain-class cap is MaxQueue/2) admits all 12: this test bounds the
	// pool, the admission tests bound the queue.
	s := New(Config{Workers: 1, CacheSize: -1, MaxQueue: 64})
	s.computeHook = func(context.Context) { time.Sleep(2 * time.Millisecond) }
	c := newTestClient(t, s)
	c.registerSample("lUrU", w.ds)

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct q per request defeats singleflight so every
			// request really goes through the pool.
			q := []float64{w.q[0] + float64(i)*1e-7, w.q[1]}
			c.do(http.MethodPost, "/v1/explain", &ExplainRequest{
				Dataset: "lUrU", Q: q, An: w.ids[0], Alpha: 0.5,
				Options: OptionsSpec{MaxCandidates: 64}})
		}(i)
	}
	wg.Wait()

	if peak := s.pool.inflight.Peak(); peak != 1 {
		t.Fatalf("peak in-flight = %d, want 1", peak)
	}
	if done := s.pool.completed.Value(); done != 12 {
		t.Fatalf("completed = %d, want 12", done)
	}
}
