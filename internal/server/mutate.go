package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net/http"
	"strconv"

	crsky "github.com/crsky/crsky"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/store"
)

// This file is the dynamic data plane's HTTP surface: object inserts and
// deletes on registered datasets. A mutation flows copy-on-write through
// crsky.Mutable — the successor engine shares index structure with its
// predecessor, in-flight queries keep reading the generation they
// resolved — and, with a store attached, is durable before it is visible:
// the WAL append is the commit point, and a mutation whose append fails
// is discarded, not applied.

// ObjectInsertRequest is the POST /v2/datasets/{name}/objects body.
// Exactly one payload field must be set, matching the dataset's model:
// Point (certain), Samples (sample), or PDF (pdf).
type ObjectInsertRequest struct {
	Point   []float64      `json:"point,omitempty"`
	Samples []SampleSpec   `json:"samples,omitempty"`
	PDF     *PDFObjectSpec `json:"pdf,omitempty"`
}

// MutationResponse acknowledges a committed mutation. Generation is the
// dataset generation the mutation installed — queries that want
// read-your-write semantics compare it against DatasetInfo.Generation.
// Seq is the store's WAL sequence (0 on stores-less servers).
type MutationResponse struct {
	Dataset    string `json:"dataset"`
	Model      string `json:"model"`
	Op         string `json:"op"`
	ID         int    `json:"id"`
	Size       int    `json:"size"`
	Generation uint64 `json:"generation"`
	Seq        uint64 `json:"seq,omitempty"`
}

// encodeMutationPayload renders the durable form of an insert: the
// validated request spec itself, gob-encoded. Replaying it through
// insertSpec rebuilds the identical object, which is what recovery
// reconvergence relies on.
func encodeMutationPayload(req *ObjectInsertRequest) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("encode mutation payload: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMutationPayload(data []byte) (*ObjectInsertRequest, error) {
	var req ObjectInsertRequest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return nil, fmt.Errorf("decode mutation payload: %w", err)
	}
	return &req, nil
}

// insertSpec validates the request payload against the dataset model and
// builds the engine-level spec. Mirrors the registration-time validation
// in buildEntry's helpers.
func insertSpec(model string, req *ObjectInsertRequest) (crsky.InsertSpec, error) {
	var spec crsky.InsertSpec
	set := 0
	if len(req.Point) > 0 {
		set++
	}
	if len(req.Samples) > 0 {
		set++
	}
	if req.PDF != nil {
		set++
	}
	if set != 1 {
		return spec, fmt.Errorf("exactly one of point, samples, or pdf must be set")
	}
	switch model {
	case ModelCertain:
		if len(req.Point) == 0 {
			return spec, fmt.Errorf("certain dataset insert takes a point")
		}
		spec.Point = geom.Point(req.Point)
	case ModelSample:
		if len(req.Samples) == 0 {
			return spec, fmt.Errorf("sample dataset insert takes samples")
		}
		samples := make([]crsky.Sample, len(req.Samples))
		for i, s := range req.Samples {
			samples[i] = crsky.Sample{P: s.P, Loc: geom.Point(s.Loc)}
		}
		spec.Samples = samples
	case ModelPDF:
		if req.PDF == nil {
			return spec, fmt.Errorf("pdf dataset insert takes a pdf object")
		}
		p := req.PDF
		if len(p.Min) == 0 || len(p.Min) != len(p.Max) {
			return spec, fmt.Errorf("pdf object: min/max must be equal-length and non-empty")
		}
		region := geom.NewRect(geom.Point(p.Min), geom.Point(p.Max))
		switch p.Kind {
		case "uniform", "":
			spec.PDF = crsky.NewUniformPDFObject(0, region)
		case "gaussian":
			spec.PDF = crsky.NewGaussianPDFObject(0, region, geom.Point(p.Mean), geom.Point(p.Sigma))
		default:
			return spec, fmt.Errorf("pdf object: unknown kind %q (want uniform or gaussian)", p.Kind)
		}
	default:
		return spec, fmt.Errorf("dataset model %q does not accept mutations", model)
	}
	return spec, nil
}

// objectMBR returns the bounding rectangle of one live object — the
// watch scheduler's pruning geometry. ok is false when the engine is not
// one of the three built-in types (wrapped engines) or the object does
// not exist; callers treat that as "window unknown".
func objectMBR(eng crsky.Explainer, id int) (geom.Rect, bool) {
	if id < 0 {
		return geom.Rect{}, false
	}
	switch e := eng.(type) {
	case *crsky.Engine:
		if id < e.Len() {
			if o := e.Object(id); o != nil {
				return o.MBR(), true
			}
		}
	case *crsky.CertainEngine:
		if id < e.Len() && !e.Deleted(id) {
			return geom.PointRect(e.Point(id)), true
		}
	case *crsky.PDFEngine:
		if id < e.Len() {
			if o := e.Object(id); o != nil {
				return o.Region.Clone(), true
			}
		}
	}
	return geom.Rect{}, false
}

// mutationResult is what a committed mutation hands back to the handler:
// the installed entry, the object ID, the WAL sequence, and the mutated
// object's MBR for watch-window pruning.
type mutationResult struct {
	ent    *entry
	id     int
	seq    uint64
	mbr    geom.Rect
	hasMBR bool
}

// mutate applies one object mutation under the registry's write lock:
// validate against the live entry, build the copy-on-write successor
// engine, commit to the WAL (durable before visible), then install the
// successor under a fresh generation. In-flight requests keep the entry
// they resolved; the generation in every cache key retires stale results.
func (r *registry) mutate(name, op string, ins *ObjectInsertRequest, delID int) (mutationResult, int, error) {
	var res mutationResult
	r.regMu.Lock()
	defer r.regMu.Unlock()
	ent, ok := r.get(name)
	if !ok {
		return res, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	mut, ok := ent.eng.(crsky.Mutable)
	if !ok {
		return res, http.StatusNotImplemented,
			fmt.Errorf("%w: dataset %q engine does not support mutations", crsky.ErrUnsupported, name)
	}

	var (
		ne   crsky.Explainer
		id   int
		data []byte
		err  error
	)
	switch op {
	case store.MutInsert:
		spec, serr := insertSpec(ent.model, ins)
		if serr != nil {
			return res, http.StatusBadRequest, serr
		}
		if ne, id, err = mut.WithInsert(spec); err != nil {
			return res, statusFor(err), err
		}
		if data, err = encodeMutationPayload(ins); err != nil {
			return res, http.StatusInternalServerError, err
		}
	case store.MutDelete:
		id = delID
		// Capture the MBR before the delete tombstones the object.
		res.mbr, res.hasMBR = objectMBR(ent.eng, id)
		if ne, err = mut.WithDelete(id); err != nil {
			return res, statusFor(err), err
		}
	default:
		return res, http.StatusBadRequest, fmt.Errorf("unknown mutation op %q", op)
	}

	if r.st != nil {
		seq, serr := r.st.AppendMutation(name, store.Mutation{Op: op, ID: id, Data: data})
		if serr != nil {
			// The successor engine is discarded: nothing was installed, so
			// memory and disk stay consistent (pre-mutation on both).
			return res, http.StatusInternalServerError,
				fmt.Errorf("durable write failed, mutation not applied: %w", serr)
		}
		res.seq = seq
	}

	nent := &entry{name: name, model: ent.model, gen: r.gen.Add(1), size: ne.Len(), dims: ent.dims, eng: ne}
	r.mu.Lock()
	r.m[name] = nent
	r.mu.Unlock()
	res.ent, res.id = nent, id
	if op == store.MutInsert {
		res.mbr, res.hasMBR = objectMBR(ne, id)
	}
	return res, 0, nil
}

// applyStoredMutations replays a recovered dataset's mutation log over a
// freshly built entry — the recovery half of the durable mutation
// contract. Replay must reconverge exactly: an insert that comes back
// under a different ID than the log recorded means the base payload and
// the log disagree, and the dataset is quarantined rather than served
// with silently shifted IDs.
func applyStoredMutations(e *entry, muts []store.Mutation) error {
	for i, m := range muts {
		mut, ok := e.eng.(crsky.Mutable)
		if !ok {
			return fmt.Errorf("replay mutation %d: engine does not support mutations", i)
		}
		switch m.Op {
		case store.MutInsert:
			req, err := decodeMutationPayload(m.Data)
			if err != nil {
				return fmt.Errorf("replay mutation %d (seq %d): %w", i, m.Seq, err)
			}
			spec, err := insertSpec(e.model, req)
			if err != nil {
				return fmt.Errorf("replay mutation %d (seq %d): %w", i, m.Seq, err)
			}
			ne, id, err := mut.WithInsert(spec)
			if err != nil {
				return fmt.Errorf("replay mutation %d (seq %d): %w", i, m.Seq, err)
			}
			if id != m.ID {
				return fmt.Errorf("replay divergence: mutation %d (seq %d) inserted as id %d, log says %d",
					i, m.Seq, id, m.ID)
			}
			e.eng = ne
		case store.MutDelete:
			ne, err := mut.WithDelete(m.ID)
			if err != nil {
				return fmt.Errorf("replay mutation %d (seq %d): %w", i, m.Seq, err)
			}
			e.eng = ne
		default:
			return fmt.Errorf("replay mutation %d: unknown op %q", i, m.Op)
		}
		e.size = e.eng.Len()
	}
	return nil
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleObjectInsert(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req ObjectInsertRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	res, status, err := s.reg.mutate(name, store.MutInsert, &req, -1)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	s.finishMutation(w, r, store.MutInsert, res, -1)
}

func (s *Server) handleObjectDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad object id %q", r.PathValue("id")))
		return
	}
	res, status, merr := s.reg.mutate(name, store.MutDelete, nil, id)
	if merr != nil {
		s.writeError(w, status, merr)
		return
	}
	s.finishMutation(w, r, store.MutDelete, res, id)
}

// finishMutation does the post-commit bookkeeping shared by both ops:
// metrics, the watch notification (deleted ID only for deletes), and the
// acknowledgment body.
func (s *Server) finishMutation(w http.ResponseWriter, r *http.Request, op string, res mutationResult, deletedID int) {
	ent := res.ent
	if c := s.mutations[op+"|"+ent.model]; c != nil {
		c.Inc()
	}
	annotate(r.Context(), ent)
	s.watch.Notify(ent.name, ent.gen, res.mbr, res.hasMBR, deletedID)
	writeJSON(w, http.StatusOK, MutationResponse{
		Dataset:    ent.name,
		Model:      ent.model,
		Op:         op,
		ID:         res.id,
		Size:       ent.size,
		Generation: ent.gen,
		Seq:        res.seq,
	})
}
