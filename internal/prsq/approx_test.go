package prsq

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

func TestApproxOptionsBudget(t *testing.T) {
	var ap ApproxOptions
	if got := ap.Iters(); got < 16 {
		t.Fatalf("default iters %d below floor", got)
	}
	// Unclamped: the achieved half-width must meet the requested epsilon.
	ap = ApproxOptions{Epsilon: 0.05, Confidence: 0.95}
	if hw := ap.HalfWidth(ap.Iters()); hw > ap.Epsilon+1e-12 {
		t.Fatalf("half-width %g exceeds requested epsilon %g", hw, ap.Epsilon)
	}
	// Clamped: MaxIters wins and the reported width widens honestly.
	ap = ApproxOptions{Epsilon: 0.001, MaxIters: 100}
	if got := ap.Iters(); got != 100 {
		t.Fatalf("clamped iters = %d, want 100", got)
	}
	if hw := ap.HalfWidth(100); hw <= 0.001 {
		t.Fatalf("clamped half-width %g should exceed the unreachable epsilon", hw)
	}
	// Tighter budgets cost more iterations.
	loose := ApproxOptions{Epsilon: 0.1}.Iters()
	tight := ApproxOptions{Epsilon: 0.01}.Iters()
	if tight <= loose {
		t.Fatalf("iters(0.01)=%d not above iters(0.1)=%d", tight, loose)
	}
}

// TestQueryApproxSampleModel checks the approximate tier against the exact
// one: bound-decided objects must match exactly (the filter stage is
// shared), estimated objects must carry sane intervals that cover the true
// probability at roughly the configured confidence, and the whole result
// must be deterministic in the seed regardless of parallelism.
func TestQueryApproxSampleModel(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(400, 2, 50, 900, 23))
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{5000, 5000}
	alpha := 0.5
	ap := ApproxOptions{Epsilon: 0.02, Confidence: 0.95, Seed: 7}

	exact, _ := QueryStats(ds, q, alpha, Options{})
	res, st, err := QueryApproxStatsCtx(context.Background(), ds, q, alpha, Options{}, ap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != ds.Len() {
		t.Fatalf("stats objects %d want %d", st.Objects, ds.Len())
	}
	if res.Iters != ap.Iters() {
		t.Fatalf("iters %d want %d", res.Iters, ap.Iters())
	}

	estimated := map[int]bool{}
	misses := 0
	for i, iv := range res.Intervals {
		estimated[iv.ID] = true
		if i > 0 && res.Intervals[i-1].ID >= iv.ID {
			t.Fatalf("intervals not ascending at %d", i)
		}
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Pr || iv.Pr > iv.Hi {
			t.Fatalf("malformed interval %+v", iv)
		}
		truth := prob.PrReverseSkyline(ds.Objects[iv.ID], q, ds.Objects)
		if truth < iv.Lo-1e-12 || truth > iv.Hi+1e-12 {
			misses++
		}
	}
	if len(res.Intervals) == 0 {
		t.Fatal("workload produced no undecided band; pick a harder config")
	}
	// Hoeffding is conservative, so realized coverage sits well above the
	// nominal 95%; a tenth of the band missing would be a real defect.
	if allowed := 1 + len(res.Intervals)/10; misses > allowed {
		t.Fatalf("%d/%d intervals miss the true probability", misses, len(res.Intervals))
	}

	// Bound-decided membership is exact: answers and exact answers may only
	// disagree on estimated objects.
	inExact := map[int]bool{}
	for _, id := range exact {
		inExact[id] = true
	}
	inApprox := map[int]bool{}
	for _, id := range res.Answers {
		inApprox[id] = true
	}
	for id := 0; id < ds.Len(); id++ {
		if inExact[id] != inApprox[id] && !estimated[id] {
			t.Fatalf("bound-decided object %d flips between tiers", id)
		}
	}

	// Seeded determinism across worker counts.
	for _, par := range []int{1, 4} {
		again, _, err := QueryApproxStatsCtx(context.Background(), ds, q, alpha, Options{Parallel: par}, ap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("parallel=%d result differs from baseline", par)
		}
	}
	// A different seed is allowed to move estimates but not the shape.
	other, _, err := QueryApproxStatsCtx(context.Background(), ds, q, alpha, Options{}, ApproxOptions{Epsilon: 0.02, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Intervals) != len(res.Intervals) {
		t.Fatalf("seed changed the estimated band: %d vs %d", len(other.Intervals), len(res.Intervals))
	}
}

func TestQueryApproxPDFModel(t *testing.T) {
	objs, err := dataset.GenerateUncertainPDF(dataset.LUrU(120, 2, 50, 600, 5), uncertain.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	set, err := causality.NewPDFSet(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{5000, 5000}
	alpha := 0.6
	ap := ApproxOptions{Epsilon: 0.03, Seed: 3}
	res, _, err := QueryApproxPDFStatsCtx(context.Background(), set, q, alpha, Options{}, ap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("pdf workload produced no undecided band")
	}
	misses := 0
	for _, iv := range res.Intervals {
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Pr || iv.Pr > iv.Hi {
			t.Fatalf("malformed interval %+v", iv)
		}
		truth := prob.PrReverseSkylinePDF(set.Objects[iv.ID], q, set.Objects, 0)
		if truth < iv.Lo-1e-12 || truth > iv.Hi+1e-12 {
			misses++
		}
	}
	// The quadrature truth itself carries discretization error, so allow a
	// slightly larger slack than the sample-model test.
	if allowed := 2 + len(res.Intervals)/8; misses > allowed {
		t.Fatalf("%d/%d pdf intervals miss the quadrature truth", misses, len(res.Intervals))
	}
	// Determinism across parallelism.
	again, _, err := QueryApproxPDFStatsCtx(context.Background(), set, q, alpha, Options{Parallel: 4}, ap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("pdf approx result depends on worker count")
	}
}

func TestApproxCancellation(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(400, 2, 50, 900, 23))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := QueryApproxStatsCtx(ctx, ds, geom.Point{5000, 5000}, 0.5, Options{}, ApproxOptions{}); err == nil {
		t.Fatal("canceled context not surfaced")
	}
}

func TestJoinSliceSplitsDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	child, endSlice := Options{StageBudget: true}.joinSlice(parent)
	defer endSlice()
	pd, _ := parent.Deadline()
	cd, ok := child.Deadline()
	if !ok || !cd.Before(pd) {
		t.Fatalf("join slice deadline %v not before parent %v", cd, pd)
	}
	// Without StageBudget or without a deadline the context is untouched.
	same, end2 := Options{}.joinSlice(parent)
	end2()
	if same != parent {
		t.Fatal("joinSlice without StageBudget must be identity")
	}
	same, end3 := Options{StageBudget: true}.joinSlice(context.Background())
	end3()
	if same != context.Background() {
		t.Fatal("joinSlice without a deadline must be identity")
	}
}

func TestExactApproxResult(t *testing.T) {
	res := ExactApproxResult(nil, ApproxOptions{})
	if !res.Exact || res.Answers == nil || res.Intervals == nil {
		t.Fatalf("bad exact wrapper %+v", res)
	}
}
