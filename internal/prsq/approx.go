package prsq

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/uncertain"
)

// ApproxOptions tunes the Monte Carlo approximate tier: the degraded path a
// server falls back to when the exact pool is saturated or the deadline is
// too tight for Eq.-2 evaluation. The zero value selects ε = 0.05 at 95%
// confidence with a fixed seed of 0.
type ApproxOptions struct {
	// Epsilon is the target half-width of each per-object confidence
	// interval (<= 0 selects 0.05). The Hoeffding iteration count derived
	// from it may be clamped by MaxIters, in which case the reported
	// intervals widen honestly instead of over-claiming.
	Epsilon float64
	// Confidence is the per-object coverage target in (0, 1) (out-of-range
	// selects 0.95). Hoeffding intervals are distribution-free, so the
	// realized coverage is at least this value.
	Confidence float64
	// Seed drives every per-object generator deterministically: the same
	// (dataset, query, options, seed) produces bit-identical estimates
	// regardless of worker count or scheduling.
	Seed int64
	// MaxIters caps the per-object iteration count (<= 0 selects 50_000),
	// bounding the degraded path's worst-case latency.
	MaxIters int
}

// withDefaults resolves the zero-value conventions.
func (a ApproxOptions) withDefaults() ApproxOptions {
	if a.Epsilon <= 0 {
		a.Epsilon = 0.05
	}
	if a.Confidence <= 0 || a.Confidence >= 1 {
		a.Confidence = 0.95
	}
	if a.MaxIters <= 0 {
		a.MaxIters = 50_000
	}
	return a
}

// Iters is the Hoeffding iteration count for the requested budget:
// ceil(ln(2/δ) / (2ε²)) with δ = 1 − Confidence, clamped to [16, MaxIters].
func (a ApproxOptions) Iters() int {
	a = a.withDefaults()
	delta := 1 - a.Confidence
	iters := int(math.Ceil(math.Log(2/delta) / (2 * a.Epsilon * a.Epsilon)))
	if iters < 16 {
		iters = 16
	}
	if iters > a.MaxIters {
		iters = a.MaxIters
	}
	return iters
}

// HalfWidth is the Hoeffding confidence-interval half-width actually
// achieved by iters iterations at the configured confidence:
// sqrt(ln(2/δ) / (2·iters)). When Iters() was clamped by MaxIters this
// exceeds Epsilon — the honest width, which is what gets reported.
func (a ApproxOptions) HalfWidth(iters int) float64 {
	a = a.withDefaults()
	if iters <= 0 {
		return 1
	}
	return math.Sqrt(math.Log(2/(1-a.Confidence)) / (2 * float64(iters)))
}

// ApproxInterval is one Monte Carlo estimate with its Hoeffding confidence
// interval, clamped to [0, 1]. Only objects the bounds could not decide
// carry an interval — everything else was settled exactly by the filter
// stage.
type ApproxInterval struct {
	ID int     `json:"id"`
	Pr float64 `json:"pr"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// ApproxResult is the approximate tier's answer: the answer set under the
// Monte Carlo membership estimates, plus per-object intervals for the
// estimated band. Bound-decided objects (the overwhelming majority on real
// workloads) have exact membership; only interval-carrying objects can
// disagree with the exact tier, and then only when the true probability
// lies within the interval width of alpha.
type ApproxResult struct {
	// Answers is the ascending answer ID list (never nil).
	Answers []int `json:"answers"`
	// Intervals covers exactly the Monte Carlo–estimated objects, ascending
	// by ID (never nil).
	Intervals []ApproxInterval `json:"intervals"`
	// Iters is the per-object iteration count actually used.
	Iters int `json:"iters"`
	// Epsilon and Confidence echo the resolved request budget.
	Epsilon    float64 `json:"epsilon"`
	Confidence float64 `json:"confidence"`
	// Exact marks a result that is exact despite arriving through the
	// approximate API (no objects needed estimation, or the engine has an
	// exact fast path); Intervals is then empty.
	Exact bool `json:"exact"`
}

// objSeed derives the per-object generator seed from the request seed with
// a splitmix64 finalizer, so neighboring IDs get uncorrelated streams and
// the estimate for each object is independent of worker scheduling.
func objSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// QueryApproxStatsCtx answers a sample-model query approximately: the same
// filter-and-bound stage as QueryStatsCtx settles everything the bounds can
// decide (exactly), and the undecided band is estimated by Monte Carlo over
// each object's candidate set instead of the exact Eq.-2 evaluation —
// restriction to candidates is exact, since non-candidates never dominate
// the query w.r.t. any of the object's instances. Cost per undecided object
// is O(iters × candidates) instead of the sample-quadratic exact term,
// bounded by MaxIters regardless of sample counts.
func QueryApproxStatsCtx(ctx context.Context, ds *dataset.Uncertain, q geom.Point, alpha float64,
	opt Options, ap ApproxOptions) (*ApproxResult, Stats, error) {

	ap = ap.withDefaults()
	iters := ap.Iters()
	tr := obs.FromContext(ctx)
	f, err := filterSample(ctx, ds, q, alpha, opt)
	if err != nil {
		return nil, f.stats, err
	}
	intervals := make([]ApproxInterval, len(f.undecidedIDs))
	half := ap.HalfWidth(iters)
	estimate := func(k int) bool {
		id := f.undecidedIDs[k]
		bufp := candPool.Get().(*[]*uncertain.Object)
		objs := (*bufp)[:0]
		for _, cid := range f.undecidedCands[k] {
			objs = append(objs, ds.Objects[cid])
		}
		rng := rand.New(rand.NewSource(objSeed(ap.Seed, id)))
		est := prob.PrReverseSkylineMC(ds.Objects[id], q, objs, iters, rng)
		*bufp = objs[:0]
		candPool.Put(bufp)
		intervals[k] = ApproxInterval{ID: id, Pr: est,
			Lo: math.Max(0, est-half), Hi: math.Min(1, est+half)}
		return prob.GEq(est, alpha)
	}
	endMC := tr.StartSpan("prsq.approx")
	evaluated, err := evaluate(ctx, f.undecidedCands, opt, estimate,
		func(k int, d decision) { f.verdicts[f.undecidedIDs[k]] = d })
	endMC()
	if err != nil {
		return nil, f.stats, wrapCanceled(err, evaluated)
	}
	f.stats.Evaluated = len(f.undecidedIDs)
	f.stats.addToTrace(tr)
	return finishApprox(f, intervals, iters, ap), f.stats, nil
}

// QueryApproxPDFStatsCtx is the continuous-model twin: filter as in
// QueryPDFStatsCtx, then Monte Carlo over each undecided object's candidate
// set via per-density sampling — no quadrature grid, so the degraded path's
// cost is independent of the quadrature resolution entirely.
func QueryApproxPDFStatsCtx(ctx context.Context, set *causality.PDFSet, q geom.Point, alpha float64,
	opt Options, ap ApproxOptions) (*ApproxResult, Stats, error) {

	ap = ap.withDefaults()
	iters := ap.Iters()
	tr := obs.FromContext(ctx)
	f, err := filterPDF(ctx, set, q, alpha, opt)
	if err != nil {
		return nil, f.stats, err
	}
	intervals := make([]ApproxInterval, len(f.undecidedIDs))
	half := ap.HalfWidth(iters)
	estimate := func(k int) bool {
		id := f.undecidedIDs[k]
		bufp := pdfCandPool.Get().(*[]*uncertain.PDFObject)
		objs := (*bufp)[:0]
		for _, cid := range f.undecidedCands[k] {
			objs = append(objs, set.Objects[cid])
		}
		rng := rand.New(rand.NewSource(objSeed(ap.Seed, id)))
		est := prob.PrReverseSkylineMCPDF(set.Objects[id], q, objs, iters, rng)
		*bufp = objs[:0]
		pdfCandPool.Put(bufp)
		intervals[k] = ApproxInterval{ID: id, Pr: est,
			Lo: math.Max(0, est-half), Hi: math.Min(1, est+half)}
		return prob.GEq(est, alpha)
	}
	endMC := tr.StartSpan("prsq.approx")
	evaluated, err := evaluate(ctx, f.undecidedCands, opt, estimate,
		func(k int, d decision) { f.verdicts[f.undecidedIDs[k]] = d })
	endMC()
	if err != nil {
		return nil, f.stats, wrapCanceled(err, evaluated)
	}
	f.stats.Evaluated = len(f.undecidedIDs)
	f.stats.addToTrace(tr)
	return finishApprox(f, intervals, iters, ap), f.stats, nil
}

// finishApprox assembles the result: intervals sorted ascending by ID (the
// strided evaluation fills them in undecided-band order), Exact set when
// nothing needed estimation.
func finishApprox(f *filtered, intervals []ApproxInterval, iters int, ap ApproxOptions) *ApproxResult {
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].ID < intervals[j].ID })
	return &ApproxResult{
		Answers:    collect(f.verdicts),
		Intervals:  intervals,
		Iters:      iters,
		Epsilon:    ap.Epsilon,
		Confidence: ap.Confidence,
		Exact:      len(intervals) == 0,
	}
}

// ExactApproxResult wraps an exactly-computed answer set in the approximate
// result shape — the path engines with an exact fast cheap answer (the
// certain model's reduction) take through the approximate API.
func ExactApproxResult(answers []int, ap ApproxOptions) *ApproxResult {
	ap = ap.withDefaults()
	if answers == nil {
		answers = []int{}
	}
	return &ApproxResult{
		Answers:    answers,
		Intervals:  []ApproxInterval{},
		Epsilon:    ap.Epsilon,
		Confidence: ap.Confidence,
		Exact:      true,
	}
}
