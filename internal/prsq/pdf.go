package prsq

import (
	"context"
	"sync"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/uncertain"
)

// QueryPDF returns the IDs of every continuous-model object whose
// probability of being a reverse skyline point of q is at least alpha, in
// ascending order — the index-accelerated equivalent of evaluating
// prob.PrReverseSkylinePDF against the whole dataset for each object.
// quadNodes is the per-dimension quadrature resolution (<= 0 selects the
// dimension-adapted default, exactly as the naive path does).
func QueryPDF(set *causality.PDFSet, q geom.Point, alpha float64, quadNodes int, opt Options) []int {
	ids, _ := QueryPDFStats(set, q, alpha, quadNodes, opt)
	return ids
}

// QueryPDFStats is QueryPDF with execution statistics. The same streaming
// join drives the pdf model, with the Section-3.2 geometry in place of the
// sample-level tests:
//
//   - the per-pair refinement intersects the candidate region with the
//     object's sub-quadrant farthest-corner rectangles (objects excluded
//     here have dominance mass exactly 0 at every quadrature node, so the
//     restricted Eq.-2 product is bit-identical to the full one);
//   - the reject bound is the Γ1 core rectangle: a candidate region inside
//     it dominates q w.r.t. every anchor with probability exactly 1,
//     pinning Pr(u) to exactly 0 and stopping the stream;
//   - the second tier generalizes that all-or-nothing test: a candidate's
//     probability mass inside the core rectangle lower-bounds its dominance
//     probability at every anchor of the region, so the product of
//     (1 − mass) over the streamed candidates upper-bounds Pr(u) — the
//     stream stops as soon as the product falls below the threshold.
//
// Everything not rejected is evaluated exactly by quadrature (there is no
// cheap accept bound for continuous densities — even the empty-candidate
// probability is the quadrature weight sum, which coarse grids may leave
// just below 1).
func QueryPDFStats(set *causality.PDFSet, q geom.Point, alpha float64, quadNodes int, opt Options) ([]int, Stats) {
	ids, st, _ := QueryPDFStatsCtx(context.Background(), set, q, alpha, quadNodes, opt)
	return ids, st
}

// QueryPDFStatsCtx is QueryPDFStats under a context, with the same
// cancellation contract as QueryStatsCtx: amortized polls in the join and
// between quadrature evaluations, and a typed *ctxutil.CanceledError with
// the completed evaluation count on cancellation.
func QueryPDFStatsCtx(ctx context.Context, set *causality.PDFSet, q geom.Point, alpha float64, quadNodes int, opt Options) ([]int, Stats, error) {
	tr := obs.FromContext(ctx)
	joinCtx, endSlice := opt.joinSlice(ctx)
	f, err := filterPDF(joinCtx, set, q, alpha, opt)
	endSlice()
	if err != nil {
		return nil, f.stats, err
	}
	verdicts, stats := f.verdicts, f.stats
	undecidedIDs, undecidedCands := f.undecidedIDs, f.undecidedCands

	isAnswer := func(id int, cands []int32) bool {
		bufp := pdfCandPool.Get().(*[]*uncertain.PDFObject)
		objs := (*bufp)[:0]
		for _, cid := range cands {
			objs = append(objs, set.Objects[cid])
		}
		ok := prob.GEq(prob.PrReverseSkylinePDF(set.Objects[id], q, objs, quadNodes), alpha)
		*bufp = objs[:0]
		pdfCandPool.Put(bufp)
		return ok
	}
	endExact := tr.StartSpan("prsq.exact")
	evaluated, err := evaluate(ctx, undecidedCands, opt,
		func(k int) bool { return isAnswer(undecidedIDs[k], undecidedCands[k]) },
		func(k int, d decision) { verdicts[undecidedIDs[k]] = d })
	endExact()
	if err != nil {
		return nil, stats, wrapCanceled(err, evaluated)
	}
	stats.Evaluated = len(undecidedIDs)
	stats.addToTrace(tr)

	return collect(verdicts), stats, nil
}

// pdfCandPool recycles per-worker pdf candidate slices across queries.
var pdfCandPool = sync.Pool{
	New: func() any { return new([]*uncertain.PDFObject) },
}

// filterPDF runs the streaming self-join with the Section-3.2 reject bounds
// over the continuous model — the filter stage of QueryPDFStatsCtx — and
// returns the filtered verdicts (pdf data has no accept bound, so every
// non-rejected object lands in the undecided band).
func filterPDF(ctx context.Context, set *causality.PDFSet, q geom.Point, alpha float64, opt Options) (*filtered, error) {
	n := set.Len()
	f := &filtered{verdicts: make([]decision, n), stats: Stats{Objects: n}}

	var mu sync.Mutex
	var states []*pdfStreamState
	window := func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	tr := obs.FromContext(ctx)
	endJoin := tr.StartSpan("prsq.join")
	err := set.Tree().JoinSelfStreamParallelCtx(ctx, window, opt.workers(n), func() rtree.StreamVisitor {
		st := &pdfStreamState{set: set, q: q, alpha: alpha, opt: opt}
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
		return rtree.StreamVisitor{
			Begin: st.begin,
			Pair:  st.pair,
			End: func(id int) {
				f.verdicts[id] = st.finish(id)
			},
		}
	})
	endJoin()
	if err != nil {
		return f, wrapCanceled(err, 0)
	}
	for _, st := range states {
		f.stats.add(st.stats)
		f.undecidedIDs = append(f.undecidedIDs, st.undecidedIDs...)
		f.undecidedCands = append(f.undecidedCands, st.undecidedCands...)
	}
	return f, nil
}

type pdfStreamState struct {
	set   *causality.PDFSet
	q     geom.Point
	alpha float64
	opt   Options
	stats Stats

	// Per-current-object scratch, reset by begin.
	pieces  []geom.Rect // sub-quadrant farthest-corner filter rectangles
	core    geom.Rect   // Γ1 nearest-corner rectangle
	hasCore bool
	// ubProd upper-bounds Pr(u): each buffered candidate contributes a
	// factor (1 − its probability mass inside the core rectangle). The
	// core rectangle is contained in the dominance rectangle of every
	// anchor in u's region, so the mass lower-bounds the candidate's
	// dominance probability at every quadrature node and the product
	// upper-bounds every node's Eq.-2 term.
	ubProd       float64
	rejectedNow  bool
	rejectedTier uint8
	buf          []int32

	undecidedIDs   []int
	undecidedCands [][]int32
}

func (st *pdfStreamState) begin(id int, _ geom.Rect) bool {
	u := st.set.Objects[id]
	st.pieces = prob.CandidateRectsPDF(u, st.q)
	st.core, st.hasCore = prob.CoreRectPDF(u, st.q)
	st.ubProd = 1
	st.rejectedNow = false
	st.rejectedTier = 0
	st.buf = st.buf[:0]
	return true
}

func (st *pdfStreamState) pair(_, cid int, cRect geom.Rect) bool {
	st.stats.CandidatePairs++
	hit := false
	for i := range st.pieces {
		if st.pieces[i].Intersects(cRect) {
			hit = true
			break
		}
	}
	if !hit {
		return true
	}
	st.buf = append(st.buf, int32(cid))
	if st.opt.NoBounds || !st.hasCore || !(st.alpha > prob.Eps) {
		return true
	}
	c := st.set.Objects[cid]
	if st.core.ContainsRect(c.Region) {
		st.rejectedNow = true
		st.rejectedTier = 1
		return false
	}
	if !st.opt.NoTier2 {
		// Mass inside the (inward-shrunk) core rectangle; only trusted
		// above the snap-to-zero band so the bound stays conservative
		// under prob.DomProbPDF's snapping.
		if lb := c.Prob(st.core); lb > prob.Eps {
			st.ubProd *= 1 - lb
			if prob.Less(st.ubProd, st.alpha) {
				st.rejectedNow = true
				st.rejectedTier = 2
				return false
			}
		}
	}
	return true
}

func (st *pdfStreamState) finish(id int) decision {
	if st.rejectedNow {
		if st.rejectedTier == 2 {
			st.stats.RejectedByTier2++
		} else {
			st.stats.RejectedByBound++
		}
		return rejected
	}
	if len(st.buf) == 0 {
		st.stats.EmptyCandidates++
	}
	// No accept shortcut for pdf data: queue for exact quadrature (cheap
	// when the candidate list is empty).
	st.undecidedIDs = append(st.undecidedIDs, id)
	st.undecidedCands = append(st.undecidedCands, append([]int32(nil), st.buf...))
	return undecided
}
