package prsq

import (
	"context"
	"sync"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/uncertain"
)

// This file is the batch query layer: many query points answered in ONE
// shared left-major descent of the R-tree (rtree.JoinSelfStreamBatch)
// instead of one full self-join per point. The per-query online bounds,
// early stream stops, and exact evaluations are exactly the single-query
// machinery — the same streamState/pdfStreamState runs per (worker, query)
// — so each query's answer set is element-wise identical to its individual
// ProbabilisticReverseSkyline call, while the left-descent node accesses
// are paid once for the whole batch: for more than one query the total
// simulated I/O is strictly below the sum of the independent queries'.
// The undecided bands of all queries merge into one exact-evaluation pass
// sharing the worker pool, so a query with a hard band cannot serialize
// behind its siblings.

// batchItem is one undecided (query, object) pair awaiting exact
// evaluation.
type batchItem struct {
	q  int
	id int
}

// batchState is the per-(worker, query) stream state: both models'
// stream states satisfy it, so one core drives the sample and pdf
// batches.
type batchState interface {
	begin(id int, r geom.Rect) bool
	pair(leftID, rightID int, rightRect geom.Rect) bool
	finish(id int) decision
	harvest() (Stats, []int, [][]int32)
}

func (st *streamState) harvest() (Stats, []int, [][]int32) {
	return st.stats, st.undecidedIDs, st.undecidedCands
}

func (st *pdfStreamState) harvest() (Stats, []int, [][]int32) {
	return st.stats, st.undecidedIDs, st.undecidedCands
}

// batchEmitter streams finished per-query answers in ascending request
// order while the merged exact stage is still running: every query tracks
// how many undecided evaluations it still owes, and the ordered frontier
// advances — computing collect() and firing emit — as soon as the next
// query in request order owes none. Emit runs under the emitter mutex, so
// calls are serialized, strictly ordered, and each query fires exactly
// once; the callback must not re-enter the batch.
type batchEmitter struct {
	mu       sync.Mutex
	emit     func(k int, ids []int)
	pending  []int // outstanding undecided evaluations per query
	verdicts [][]decision
	out      [][]int
	next     int // first query not yet emitted
}

// settle records one finished evaluation for query k and advances the
// frontier past every newly final query.
func (em *batchEmitter) settle(k int) {
	em.mu.Lock()
	em.pending[k]--
	em.flushLocked()
	em.mu.Unlock()
}

func (em *batchEmitter) flushLocked() {
	for em.next < len(em.pending) && em.pending[em.next] == 0 {
		k := em.next
		em.out[k] = collect(em.verdicts[k])
		if em.emit != nil {
			em.emit(k, em.out[k])
		}
		em.next++
	}
}

// queryBatchCore runs the shared-descent join with per-query states and
// the merged exact stage — the one copy of the batch orchestration, with
// the model plugged in through newState (fresh per-query stream state for
// a join worker) and isAnswer (the exact evaluation of one undecided
// (query, object) pair). Stats.Objects counts object-decisions,
// n × len(qs). A non-nil emit observes every query's final answer slice in
// ascending query order, each exactly once, as soon as it is final — on a
// mid-batch cancellation only the completed prefix has been emitted, and
// the error return carries no answers.
func queryBatchCore(ctx context.Context, tree *rtree.Tree, n int, qs []geom.Point, opt Options,
	newState func(k int) batchState,
	isAnswer func(qIdx, id int, cands []int32) bool,
	emit func(k int, ids []int)) ([][]int, Stats, error) {

	nQ := len(qs)
	if nQ == 0 {
		return [][]int{}, Stats{}, nil
	}
	verdicts := make([][]decision, nQ)
	for k := range verdicts {
		verdicts[k] = make([]decision, n)
	}
	windows := make([]rtree.WindowFunc, nQ)
	for k := range qs {
		q := qs[k]
		windows[k] = func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	}

	var mu sync.Mutex
	var workerStates [][]batchState
	tr := obs.FromContext(ctx)
	endJoin := tr.StartSpan("prsq.batchJoin")
	err := tree.JoinSelfStreamBatch(ctx, windows, opt.workers(n), func() rtree.BatchStreamVisitor {
		states := make([]batchState, nQ)
		for k := range states {
			states[k] = newState(k)
		}
		mu.Lock()
		workerStates = append(workerStates, states)
		mu.Unlock()
		return rtree.BatchStreamVisitor{
			Begin: func(k, id int, r geom.Rect) bool { return states[k].begin(id, r) },
			Pair:  func(k, leftID, rightID int, rr geom.Rect) bool { return states[k].pair(leftID, rightID, rr) },
			End:   func(k, id int) { verdicts[k][id] = states[k].finish(id) },
		}
	})
	endJoin()
	if err != nil {
		return nil, Stats{Objects: n * nQ}, wrapCanceled(err, 0)
	}

	stats := Stats{Objects: n * nQ}
	var items []batchItem
	var cands [][]int32
	for _, states := range workerStates {
		for k, st := range states {
			s, ids, cs := st.harvest()
			stats.add(s)
			for i, id := range ids {
				items = append(items, batchItem{q: k, id: id})
				cands = append(cands, cs[i])
			}
		}
	}

	em := &batchEmitter{emit: emit, pending: make([]int, nQ), verdicts: verdicts, out: make([][]int, nQ)}
	for _, it := range items {
		em.pending[it.q]++
	}
	// Queries the join fully decided owe no exact work: flush them now so a
	// batch whose first queries have empty undecided bands streams
	// immediately, before the merged exact stage even starts.
	em.mu.Lock()
	em.flushLocked()
	em.mu.Unlock()

	endExact := tr.StartSpan("prsq.batchExact")
	evaluated, err := evaluate(ctx, cands, opt,
		func(k int) bool { return isAnswer(items[k].q, items[k].id, cands[k]) },
		func(k int, d decision) {
			verdicts[items[k].q][items[k].id] = d
			em.settle(items[k].q)
		})
	endExact()
	if err != nil {
		return nil, stats, wrapCanceled(err, evaluated)
	}
	stats.Evaluated = len(items)
	stats.addToTrace(tr)
	return em.out, stats, nil
}

// QueryBatch answers the probabilistic reverse skyline for every query
// point at once, returning one ascending answer-ID slice per query point —
// element-wise identical to calling Query per point.
func QueryBatch(ds *dataset.Uncertain, qs []geom.Point, alpha float64, opt Options) [][]int {
	out, _, _ := QueryBatchStatsCtx(context.Background(), ds, qs, alpha, opt)
	return out
}

// QueryBatchStats is QueryBatch with execution statistics aggregated over
// the whole batch (Stats.Objects counts object-decisions, n × len(qs)).
func QueryBatchStats(ds *dataset.Uncertain, qs []geom.Point, alpha float64, opt Options) ([][]int, Stats) {
	out, st, _ := QueryBatchStatsCtx(context.Background(), ds, qs, alpha, opt)
	return out, st
}

// QueryBatchStatsCtx is QueryBatchStats under a context, with the
// cancellation contract of QueryStatsCtx.
func QueryBatchStatsCtx(ctx context.Context, ds *dataset.Uncertain, qs []geom.Point, alpha float64, opt Options) ([][]int, Stats, error) {
	return QueryBatchStreamStatsCtx(ctx, ds, qs, alpha, opt, nil)
}

// QueryBatchStreamStatsCtx is QueryBatchStatsCtx with per-query streaming:
// a non-nil emit observes every query's final ascending answer slice in
// request order, each exactly once, as soon as it is final — before the
// rest of the batch finishes computing. Emit calls are serialized; the
// callback must not re-enter the engine. On a mid-batch cancellation only
// the completed prefix has been emitted and the call returns the error with
// no answers.
func QueryBatchStreamStatsCtx(ctx context.Context, ds *dataset.Uncertain, qs []geom.Point, alpha float64, opt Options,
	emit func(k int, ids []int)) ([][]int, Stats, error) {

	wsum := ds.WeightSums()
	var sums []dataset.Summary
	if !opt.NoBounds && !opt.NoTier2 {
		sums = ds.Summaries()
	}
	return queryBatchCore(ctx, ds.Tree(), ds.Len(), qs, opt,
		func(k int) batchState {
			return &streamState{ds: ds, q: qs[k], alpha: alpha, opt: opt, wsum: wsum, sums: sums}
		},
		func(qIdx, id int, cs []int32) bool {
			bufp := candPool.Get().(*[]*uncertain.Object)
			objs := (*bufp)[:0]
			for _, cid := range cs {
				objs = append(objs, ds.Objects[cid])
			}
			ok := prob.GEq(prob.PrReverseSkyline(ds.Objects[id], qs[qIdx], objs), alpha)
			*bufp = objs[:0]
			candPool.Put(bufp)
			return ok
		},
		emit)
}

// QueryBatchPDF is the continuous-model batch query: the same shared
// left-descent join with the pdf per-query stream states, one merged
// quadrature pass over all queries' survivors.
func QueryBatchPDF(set *causality.PDFSet, qs []geom.Point, alpha float64, quadNodes int, opt Options) [][]int {
	out, _, _ := QueryBatchPDFStatsCtx(context.Background(), set, qs, alpha, quadNodes, opt)
	return out
}

// QueryBatchPDFStatsCtx is QueryBatchPDF with statistics and a context,
// mirroring QueryBatchStatsCtx.
func QueryBatchPDFStatsCtx(ctx context.Context, set *causality.PDFSet, qs []geom.Point, alpha float64, quadNodes int, opt Options) ([][]int, Stats, error) {
	return QueryBatchPDFStreamStatsCtx(ctx, set, qs, alpha, quadNodes, opt, nil)
}

// QueryBatchPDFStreamStatsCtx is QueryBatchPDFStatsCtx with the per-query
// streaming contract of QueryBatchStreamStatsCtx.
func QueryBatchPDFStreamStatsCtx(ctx context.Context, set *causality.PDFSet, qs []geom.Point, alpha float64, quadNodes int, opt Options,
	emit func(k int, ids []int)) ([][]int, Stats, error) {

	return queryBatchCore(ctx, set.Tree(), set.Len(), qs, opt,
		func(k int) batchState {
			return &pdfStreamState{set: set, q: qs[k], alpha: alpha, opt: opt}
		},
		func(qIdx, id int, cs []int32) bool {
			bufp := pdfCandPool.Get().(*[]*uncertain.PDFObject)
			objs := (*bufp)[:0]
			for _, cid := range cs {
				objs = append(objs, set.Objects[cid])
			}
			ok := prob.GEq(prob.PrReverseSkylinePDF(set.Objects[id], qs[qIdx], objs, quadNodes), alpha)
			*bufp = objs[:0]
			pdfCandPool.Put(bufp)
			return ok
		},
		emit)
}
