// Package prsq answers probabilistic reverse skyline queries (Definition 4)
// at dataset scale. It replaces the naive per-object loop — one R-tree
// traversal plus one full Eq.-2 evaluation for each of the n objects — with
// the paper's filter-and-refinement framework applied to the whole query:
//
//  1. Batch filtering: a single R-tree self-join (one left-major pass over
//     the tree, each node's partner list pruned by the node-level dominance
//     window) streams the candidates of every object, instead of n
//     independent multi-window traversals.
//  2. Bound-based pruning: cheap MBR-level dominance tests run online
//     inside the stream and maintain per-object upper/lower probability
//     bounds. An object whose every sample is certainly dominated stops
//     its candidate stream immediately — most objects are rejected after a
//     handful of candidates without ever materializing their full list.
//  3. Parallel refinement: the undecided band is evaluated exactly (Eq. 2)
//     on a worker pool, each worker owning scratch buffers reused across
//     objects.
//
// The result is bit-identical to the brute-force prob.PRSQ: excluded
// non-candidates contribute exact ×1 factors, candidate lists are evaluated
// in ascending ID order (the brute-force multiplication order), and every
// bound is conservative with respect to the Eps-tolerant threshold test.
package prsq

import (
	"runtime"
	"sort"
	"sync"

	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/uncertain"
)

// Options tunes the query execution. The zero value selects full
// acceleration: bounds on, one evaluation worker per CPU.
type Options struct {
	// Parallel is the number of evaluation workers for the undecided
	// band: 1 runs serially, values <= 0 select runtime.GOMAXPROCS(0).
	// Results are identical for every setting.
	Parallel int
	// NoBounds disables the online bound pruning (ablation / benchmarking
	// switch; results are unchanged, every object pays the full Eq.-2
	// evaluation).
	NoBounds bool
}

func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stats reports how the query was answered — in particular how much work
// the online bounds saved.
type Stats struct {
	// Objects is the dataset cardinality n.
	Objects int
	// CandidatePairs counts candidate stream entries actually visited;
	// early-stopped objects contribute only their prefix.
	CandidatePairs int
	// EmptyCandidates counts objects whose candidate stream is empty. In
	// the sample model they are settled from the precomputed weight sum
	// without evaluation; in the pdf model they still run the (cheap,
	// candidate-free) quadrature and are counted in Evaluated as well.
	EmptyCandidates int
	// AcceptedByBound counts objects accepted by the lower bound alone.
	AcceptedByBound int
	// RejectedByBound counts objects rejected by the upper bound alone.
	RejectedByBound int
	// Evaluated counts full Eq.-2 evaluations (the undecided band).
	Evaluated int
}

// decision is a per-object query verdict.
type decision uint8

const (
	rejected decision = iota
	accepted
	undecided
)

// Query returns the IDs of every object whose probability of being a
// reverse skyline point of q is at least alpha, in ascending order —
// the index-accelerated equivalent of prob.PRSQ.
func Query(ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) []int {
	ids, _ := QueryStats(ds, q, alpha, opt)
	return ids
}

// QueryStats is Query with execution statistics.
func QueryStats(ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) ([]int, Stats) {
	n := ds.Len()
	st := &streamState{
		ds:    ds,
		q:     q,
		alpha: alpha,
		opt:   opt,
		wsum:  ds.WeightSums(),
		stats: Stats{Objects: n},
	}
	verdicts := make([]decision, n)

	window := func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	ds.Tree().JoinSelfStream(window, rtree.StreamVisitor{
		Begin: st.begin,
		Pair:  st.pair,
		End: func(id int) {
			verdicts[id] = st.finish(id)
		},
	})

	evaluate(verdicts, st.undecidedIDs, st.undecidedCands, opt, func(id int, cands []int32) bool {
		bufp := candPool.Get().(*[]*uncertain.Object)
		objs := (*bufp)[:0]
		for _, cid := range cands {
			objs = append(objs, ds.Objects[cid])
		}
		ok := prob.GEq(prob.PrReverseSkyline(ds.Objects[id], q, objs), alpha)
		*bufp = objs[:0]
		candPool.Put(bufp)
		return ok
	})
	st.stats.Evaluated = len(st.undecidedIDs)

	return collect(verdicts), st.stats
}

// streamState is the per-query state of the online filter+bound pass. The
// join reports each object's candidates consecutively, so one scratch
// buffer set serves every object in turn.
type streamState struct {
	ds    *dataset.Uncertain
	q     geom.Point
	alpha float64
	opt   Options
	wsum  []float64
	stats Stats

	// Per-current-object scratch, reset by begin.
	inner      []geom.Rect // per-sample dominance rectangles (exact)
	outer      []geom.Rect // per-sample dominance rectangles (outward pad)
	covered    []bool      // sample term is exactly 0
	free       []bool      // sample term is exactly p_i so far
	coveredCnt int
	buf        []int32 // candidates streamed for the current object

	// Undecided band collected for the exact evaluation stage.
	undecidedIDs   []int
	undecidedCands [][]int32
}

func (st *streamState) begin(id int, _ geom.Rect) bool {
	u := st.ds.Objects[id]
	l := len(u.Samples)
	st.inner = st.inner[:0]
	st.outer = st.outer[:0]
	if cap(st.covered) < l {
		st.covered = make([]bool, l)
		st.free = make([]bool, l)
	}
	st.covered = st.covered[:l]
	st.free = st.free[:l]
	for i, s := range u.Samples {
		st.inner = append(st.inner, geom.DomRect(s.Loc, st.q))
		st.outer = append(st.outer, geom.DomRectOuter(s.Loc, st.q))
		st.covered[i] = false
		st.free[i] = true
	}
	st.coveredCnt = 0
	st.buf = st.buf[:0]
	return true
}

// pair folds one streamed candidate into the bounds and buffers it for a
// potential exact evaluation. Returning false stops the current object's
// stream: once every sample is certainly dominated, Pr(u) is exactly 0 and
// no further candidate can change the verdict.
func (st *streamState) pair(_, cid int, cRect geom.Rect) bool {
	st.stats.CandidatePairs++
	st.buf = append(st.buf, int32(cid))
	if st.opt.NoBounds {
		return true
	}
	certain := st.wsum[cid] == 1
	for i := range st.inner {
		if !st.covered[i] && certain && strictlyInside(&cRect, &st.inner[i]) {
			st.covered[i] = true
			st.coveredCnt++
		}
		if st.free[i] && cRect.Intersects(st.outer[i]) {
			st.free[i] = false
		}
	}
	// Full coverage: every Eq.-2 term is exactly 0, so Pr(u) = 0 < α for
	// any valid threshold above the comparison tolerance.
	return !(st.coveredCnt == len(st.inner) && st.alpha > prob.Eps)
}

// finish settles the current object or queues it for exact evaluation.
func (st *streamState) finish(id int) decision {
	u := st.ds.Objects[id]
	if len(st.buf) == 0 {
		// Every Eq.-2 factor is exactly 1, so Pr(u) = snap(Σ p_i) — the
		// precomputed weight sum. That is usually 1, but validation
		// tolerates sums up to 1e-6 away from one, which snap does not
		// collapse; the α comparison must still run on the exact value
		// or thresholds near 1 would disagree with brute force.
		st.stats.EmptyCandidates++
		if prob.GEq(st.wsum[id], st.alpha) {
			return accepted
		}
		return rejected
	}
	if !st.opt.NoBounds {
		if st.coveredCnt == len(st.inner) && st.alpha > prob.Eps {
			st.stats.RejectedByBound++
			return rejected
		}
		// ub ≥ Pr(u): covered samples contribute exactly 0; every other
		// term is at most p_i (factors ≤ 1 only shrink a product, and
		// dropping non-negative terms only shrinks a float sum).
		// lb ≤ Pr(u): free samples contribute exactly p_i.
		var ub, lb float64
		for i, s := range u.Samples {
			if !st.covered[i] {
				ub += s.P
			}
			if st.free[i] {
				lb += s.P
			}
		}
		switch {
		case lb >= st.alpha:
			st.stats.AcceptedByBound++
			return accepted
		case prob.Less(ub, st.alpha):
			st.stats.RejectedByBound++
			return rejected
		}
	}
	st.undecidedIDs = append(st.undecidedIDs, id)
	st.undecidedCands = append(st.undecidedCands, append([]int32(nil), st.buf...))
	return undecided
}

// evaluate runs the exact stage over the undecided band, serially or on a
// worker pool, overwriting each undecided verdict with the exact decision.
// Candidate lists are sorted ascending first: that is the brute-force
// multiplication order, and superset entries that dominate nothing multiply
// by exactly 1, so the result is bit-identical to prob.PRSQ.
func evaluate(verdicts []decision, ids []int, cands [][]int32, opt Options,
	isAnswer func(id int, cands []int32) bool) {

	for _, c := range cands {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	decide := func(k int) {
		if isAnswer(ids[k], cands[k]) {
			verdicts[ids[k]] = accepted
		} else {
			verdicts[ids[k]] = rejected
		}
	}
	workers := opt.workers(len(ids))
	if workers <= 1 {
		for k := range ids {
			decide(k)
		}
		return
	}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Strided sharding; verdict slots are disjoint per worker.
			for k := wi; k < len(ids); k += workers {
				decide(k)
			}
		}()
	}
	wg.Wait()
}

// candPool recycles the evaluation stage's candidate object slices across
// queries and workers.
var candPool = sync.Pool{
	New: func() any { return new([]*uncertain.Object) },
}

// collect turns the verdict array into the ascending answer ID list. The
// result is never nil, so callers can marshal it directly (JSON [] rather
// than null).
func collect(verdicts []decision) []int {
	out := make([]int, 0, 16)
	for id, v := range verdicts {
		if v == accepted {
			out = append(out, id)
		}
	}
	return out
}

// strictlyInside reports whether m lies strictly inside r on every axis —
// every point of m then dynamically dominates q w.r.t. r's center with
// strict inequality on all dimensions.
func strictlyInside(m, r *geom.Rect) bool {
	for i := range r.Min {
		if m.Min[i] <= r.Min[i] || m.Max[i] >= r.Max[i] {
			return false
		}
	}
	return true
}
