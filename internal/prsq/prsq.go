// Package prsq answers probabilistic reverse skyline queries (Definition 4)
// at dataset scale. It replaces the naive per-object loop — one R-tree
// traversal plus one full Eq.-2 evaluation for each of the n objects — with
// the paper's filter-and-refinement framework applied to the whole query:
//
//  1. Batch filtering: a single R-tree self-join (one left-major pass over
//     the tree, each node's partner list pruned by the node-level dominance
//     window) streams the candidates of every object, instead of n
//     independent multi-window traversals.
//  2. Bound-based pruning: cheap MBR-level dominance tests run online
//     inside the stream and maintain per-object upper/lower probability
//     bounds. An object whose every sample is certainly dominated stops
//     its candidate stream immediately — most objects are rejected after a
//     handful of candidates without ever materializing their full list.
//     A second bound tier refines partial overlaps: per-candidate
//     dominance-probability bounds derived from the candidate's sub-MBR
//     weight summary (dataset.Summary) multiply into per-sample Eq.-2 term
//     bounds, shrinking the undecided band — and stopping streams early —
//     at thresholds the all-or-nothing tests cannot reach.
//  3. Parallel refinement: the filtering join itself fans out per R-tree
//     subtree onto a worker pool (each worker owning its own stream state),
//     and the undecided band is evaluated exactly (Eq. 2) on the same pool,
//     each worker owning scratch buffers reused across objects.
//
// The result is bit-identical to the brute-force prob.PRSQ: excluded
// non-candidates contribute exact ×1 factors, candidate lists are evaluated
// in ascending ID order (the brute-force multiplication order), and every
// bound is conservative with respect to the Eps-tolerant threshold test.
package prsq

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crsky/crsky/internal/ctxutil"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/obs"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/uncertain"
)

// Options tunes the query execution. The zero value selects full
// acceleration: bounds on, one evaluation worker per CPU.
type Options struct {
	// Parallel is the number of workers for both the filtering join and
	// the exact evaluation of the undecided band: 1 runs serially, values
	// <= 0 select runtime.GOMAXPROCS(0). Results are identical for every
	// setting.
	Parallel int
	// NoBounds disables the online bound pruning (ablation / benchmarking
	// switch; results are unchanged, every object pays the full Eq.-2
	// evaluation).
	NoBounds bool
	// NoTier2 disables only the second bound tier — the per-candidate
	// dominance-probability bounds from sub-MBR weight summaries — leaving
	// the all-or-nothing MBR tests in place (ablation switch; results are
	// unchanged).
	NoTier2 bool
	// QuadNodes is the per-dimension quadrature resolution for the pdf
	// model (<= 0 selects the dimension-adapted default). The sample and
	// certain models ignore it; it lives here so the model-generic v2
	// query API needs no per-model signature.
	QuadNodes int
	// StageBudget, when the context carries a deadline, caps the filtering
	// join at half the remaining budget: a join that stalls (skewed data,
	// injected faults) then times out with a slice of the deadline still
	// unspent, leaving the refinement stage — or a degraded fallback armed
	// by the caller — a guaranteed share instead of inheriting an already
	// exhausted context. Without a deadline, or unset, nothing changes.
	StageBudget bool
}

// joinSlice derives the filtering join's stage context under StageBudget.
func (o Options) joinSlice(ctx context.Context) (context.Context, context.CancelFunc) {
	if !o.StageBudget {
		return ctx, func() {}
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(rem/2))
}

func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stats reports how the query was answered — in particular how much work
// the online bounds saved.
type Stats struct {
	// Objects is the dataset cardinality n.
	Objects int
	// CandidatePairs counts candidate stream entries actually visited;
	// early-stopped objects contribute only their prefix.
	CandidatePairs int
	// EmptyCandidates counts objects whose candidate stream is empty. In
	// the sample model they are settled from the precomputed weight sum
	// without evaluation; in the pdf model they still run the (cheap,
	// candidate-free) quadrature and are counted in Evaluated as well.
	EmptyCandidates int
	// AcceptedByBound counts objects accepted by the first-tier lower
	// bound alone.
	AcceptedByBound int
	// RejectedByBound counts objects rejected by the first-tier upper
	// bound alone.
	RejectedByBound int
	// AcceptedByTier2 counts objects the second-tier (sub-MBR summary)
	// lower bound accepted after the first tier could not decide them.
	AcceptedByTier2 int
	// RejectedByTier2 counts objects the second-tier upper bound rejected
	// after the first tier could not decide them.
	RejectedByTier2 int
	// Evaluated counts full Eq.-2 evaluations (the undecided band).
	Evaluated int
}

// add folds the per-worker counters of o into s (Objects and Evaluated are
// owned by the merger).
func (s *Stats) add(o Stats) {
	s.CandidatePairs += o.CandidatePairs
	s.EmptyCandidates += o.EmptyCandidates
	s.AcceptedByBound += o.AcceptedByBound
	s.RejectedByBound += o.RejectedByBound
	s.AcceptedByTier2 += o.AcceptedByTier2
	s.RejectedByTier2 += o.RejectedByTier2
}

// decision is a per-object query verdict.
type decision uint8

const (
	rejected decision = iota
	accepted
	undecided
)

// Query returns the IDs of every object whose probability of being a
// reverse skyline point of q is at least alpha, in ascending order —
// the index-accelerated equivalent of prob.PRSQ.
func Query(ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) []int {
	ids, _ := QueryStats(ds, q, alpha, opt)
	return ids
}

// QueryStats is Query with execution statistics.
func QueryStats(ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) ([]int, Stats) {
	ids, st, _ := QueryStatsCtx(context.Background(), ds, q, alpha, opt)
	return ids, st
}

// QueryStatsCtx is QueryStats under a context: the filtering join and the
// exact-evaluation workers poll ctx (amortized) and stop mid-query when it
// fires, returning a typed *ctxutil.CanceledError that wraps the context
// error and carries the exact evaluations completed before the stop. An
// uncanceled run is bit-identical to QueryStats, node accesses included.
func QueryStatsCtx(ctx context.Context, ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) ([]int, Stats, error) {
	tr := obs.FromContext(ctx)
	joinCtx, endSlice := opt.joinSlice(ctx)
	f, err := filterSample(joinCtx, ds, q, alpha, opt)
	endSlice()
	if err != nil {
		return nil, f.stats, err
	}
	verdicts, stats := f.verdicts, f.stats
	undecidedIDs, undecidedCands := f.undecidedIDs, f.undecidedCands

	isAnswer := func(id int, cands []int32) bool {
		bufp := candPool.Get().(*[]*uncertain.Object)
		objs := (*bufp)[:0]
		for _, cid := range cands {
			objs = append(objs, ds.Objects[cid])
		}
		ok := prob.GEq(prob.PrReverseSkyline(ds.Objects[id], q, objs), alpha)
		*bufp = objs[:0]
		candPool.Put(bufp)
		return ok
	}
	endExact := tr.StartSpan("prsq.exact")
	evaluated, err := evaluate(ctx, undecidedCands, opt,
		func(k int) bool { return isAnswer(undecidedIDs[k], undecidedCands[k]) },
		func(k int, d decision) { verdicts[undecidedIDs[k]] = d })
	endExact()
	if err != nil {
		return nil, stats, wrapCanceled(err, evaluated)
	}
	stats.Evaluated = len(undecidedIDs)
	stats.addToTrace(tr)

	return collect(verdicts), stats, nil
}

// addToTrace folds the query's effort counters into a request trace (nil tr
// is a no-op). Counter names are the Stats field names with a prsq prefix —
// the vocabulary the ?trace=1 response and the slow-query log share.
func (s Stats) addToTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Add("prsq.objects", int64(s.Objects))
	tr.Add("prsq.candidatePairs", int64(s.CandidatePairs))
	tr.Add("prsq.emptyCandidates", int64(s.EmptyCandidates))
	tr.Add("prsq.acceptedByBound", int64(s.AcceptedByBound))
	tr.Add("prsq.rejectedByBound", int64(s.RejectedByBound))
	tr.Add("prsq.acceptedByTier2", int64(s.AcceptedByTier2))
	tr.Add("prsq.rejectedByTier2", int64(s.RejectedByTier2))
	tr.Add("prsq.evaluated", int64(s.Evaluated))
}

// wrapCanceled binds the query path's partial statistic (exact
// evaluations completed before the stop) into the shared typed
// cancellation error.
func wrapCanceled(err error, evaluated int) error {
	return ctxutil.WrapCanceled(err, 0, evaluated)
}

// filtered is the outcome of the shared filter-and-bound stage: per-object
// verdicts for everything the bounds decided, plus the undecided band with
// its candidate lists. Both the exact tier (Eq.-2 evaluation) and the
// approximate tier (Monte Carlo estimation) consume the same filtered form,
// so the two tiers disagree only on how the undecided band is settled.
type filtered struct {
	verdicts       []decision
	stats          Stats
	undecidedIDs   []int
	undecidedCands [][]int32
}

// filterSample runs the streaming self-join with online bound pruning over
// the sample model — the first two stages of QueryStatsCtx — and returns the
// filtered verdicts. On a canceled join it returns the partial stats and the
// wrapped cancellation error.
func filterSample(ctx context.Context, ds *dataset.Uncertain, q geom.Point, alpha float64, opt Options) (*filtered, error) {
	n := ds.Len()
	wsum := ds.WeightSums()
	var sums []dataset.Summary
	if !opt.NoBounds && !opt.NoTier2 {
		sums = ds.Summaries()
	}
	f := &filtered{verdicts: make([]decision, n), stats: Stats{Objects: n}}
	tr := obs.FromContext(ctx)

	// One stream state per join worker; verdict slots are disjoint per
	// left object, so the workers never write the same element.
	var mu sync.Mutex
	var states []*streamState
	window := func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	endJoin := tr.StartSpan("prsq.join")
	err := ds.Tree().JoinSelfStreamParallelCtx(ctx, window, opt.workers(n), func() rtree.StreamVisitor {
		st := &streamState{ds: ds, q: q, alpha: alpha, opt: opt, wsum: wsum, sums: sums}
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
		return rtree.StreamVisitor{
			Begin: st.begin,
			Pair:  st.pair,
			End: func(id int) {
				f.verdicts[id] = st.finish(id)
			},
		}
	})
	endJoin()
	if err != nil {
		return f, wrapCanceled(err, 0)
	}
	for _, st := range states {
		f.stats.add(st.stats)
		f.undecidedIDs = append(f.undecidedIDs, st.undecidedIDs...)
		f.undecidedCands = append(f.undecidedCands, st.undecidedCands...)
	}
	return f, nil
}

// streamState is the per-worker state of the online filter+bound pass. The
// join reports each object's candidates consecutively within a worker, so
// one scratch buffer set serves every object of that worker in turn.
type streamState struct {
	ds    *dataset.Uncertain
	q     geom.Point
	alpha float64
	opt   Options
	wsum  []float64
	sums  []dataset.Summary // per-candidate sub-MBR summaries; nil = tier 2 off
	stats Stats

	// Per-current-object scratch, reset by begin.
	u          *uncertain.Object
	inner      []geom.Rect // per-sample dominance rectangles (exact)
	outer      []geom.Rect // per-sample dominance rectangles (outward pad)
	covered    []bool      // sample term is exactly 0
	coveredCnt int
	// ubProd[i] and lbProd[i] bound the Eq.-2 product term of sample i from
	// above and below: each streamed candidate multiplies (1 − lbDom) resp.
	// (1 − ubDom) into them, where lbDom/ubDom bound the candidate's
	// dominance probability at the sample from its sub-MBR summary. With
	// tier 2 off they degenerate to the all-or-nothing values (1 forever,
	// resp. 0 on first overlap), reproducing the first-tier "free" flag.
	ubProd       []float64
	lbProd       []float64
	rejectedNow  bool  // stream stopped early on a reject bound
	rejectedTier uint8 // 1 = full coverage, 2 = summary bound
	buf          []int32

	// Undecided band collected for the exact evaluation stage.
	undecidedIDs   []int
	undecidedCands [][]int32
}

func (st *streamState) begin(id int, _ geom.Rect) bool {
	u := st.ds.Objects[id]
	l := len(u.Samples)
	st.u = u
	st.inner = st.inner[:0]
	st.outer = st.outer[:0]
	if cap(st.covered) < l {
		st.covered = make([]bool, l)
		st.ubProd = make([]float64, l)
		st.lbProd = make([]float64, l)
	}
	st.covered = st.covered[:l]
	st.ubProd = st.ubProd[:l]
	st.lbProd = st.lbProd[:l]
	for i, s := range u.Samples {
		st.inner = append(st.inner, geom.DomRect(s.Loc, st.q))
		st.outer = append(st.outer, geom.DomRectOuter(s.Loc, st.q))
		st.covered[i] = false
		st.ubProd[i] = 1
		st.lbProd[i] = 1
	}
	st.coveredCnt = 0
	st.rejectedNow = false
	st.rejectedTier = 0
	st.buf = st.buf[:0]
	return true
}

// domBounds bounds candidate cid's dominance probability at sample i from
// its sub-MBR summary: groups strictly inside the exact dominance rectangle
// dominate with all their mass (lower bound), groups missing the padded
// window dominate with none of it (upper bound). The results are clamped so
// they stay conservative under the snap applied by prob.DomProb: a lower
// bound inside the snap-to-zero band is dropped, an upper bound inside the
// snap-to-one band is rounded up to certainty.
func (st *streamState) domBounds(cid, i int) (lbDom, ubDom float64) {
	sm := &st.sums[cid]
	for k := range sm.Rects {
		if !sm.Rects[k].Intersects(st.outer[i]) {
			continue
		}
		ubDom += sm.Weights[k]
		if strictlyInside(&sm.Rects[k], &st.inner[i]) {
			lbDom += sm.Weights[k]
		}
	}
	if lbDom <= prob.Eps {
		lbDom = 0
	} else if lbDom > 1 {
		lbDom = 1
	}
	if ubDom >= 1-prob.Eps {
		ubDom = 1
	}
	return lbDom, ubDom
}

// pair folds one streamed candidate into the bounds and buffers it for a
// potential exact evaluation. Returning false stops the current object's
// stream: either every sample is certainly dominated (Pr(u) is exactly 0),
// or the second-tier upper bound has already fallen below the threshold —
// in both cases no further candidate can change the verdict, because
// streaming more candidates only multiplies more factors ≤ 1 into every
// bound.
func (st *streamState) pair(_, cid int, cRect geom.Rect) bool {
	st.stats.CandidatePairs++
	st.buf = append(st.buf, int32(cid))
	if st.opt.NoBounds {
		return true
	}
	certain := st.wsum[cid] == 1
	coveredMore := false
	tier2More := false
	for i := range st.inner {
		if st.covered[i] {
			continue
		}
		if !cRect.Intersects(st.outer[i]) {
			continue // the candidate's factor for this sample is exactly 1
		}
		if certain && strictlyInside(&cRect, &st.inner[i]) {
			st.covered[i] = true
			st.coveredCnt++
			st.lbProd[i] = 0
			coveredMore = true
			continue
		}
		// A candidate disjoint from the exact dominance rectangle can put
		// no group strictly inside it, so the summary loop cannot tighten
		// the upper bound; fall back to the first-tier lower bound.
		if st.sums == nil || !cRect.Intersects(st.inner[i]) {
			st.lbProd[i] = 0
			continue
		}
		lbDom, ubDom := st.domBounds(cid, i)
		if ubDom < 1 {
			st.lbProd[i] *= 1 - ubDom
		} else {
			st.lbProd[i] = 0
		}
		if lbDom > 0 {
			st.ubProd[i] *= 1 - lbDom
			tier2More = true
		}
	}
	if !(st.alpha > prob.Eps) {
		return true
	}
	// Full coverage: every Eq.-2 term is exactly 0, so Pr(u) = 0 < α for
	// any valid threshold above the comparison tolerance.
	if coveredMore && st.coveredCnt == len(st.inner) {
		st.rejectedNow = true
		st.rejectedTier = 1
		return false
	}
	// Re-derive the tier-2 reject sum only when a factor actually moved —
	// the common fully-covering candidate never pays for it.
	if tier2More {
		var ub float64
		for i, s := range st.u.Samples {
			if !st.covered[i] {
				ub += s.P * st.ubProd[i]
			}
		}
		if prob.Less(ub, st.alpha) {
			st.rejectedNow = true
			st.rejectedTier = 2
			return false
		}
	}
	return true
}

// finish settles the current object or queues it for exact evaluation.
func (st *streamState) finish(id int) decision {
	u := st.u
	if len(st.buf) == 0 {
		// Every Eq.-2 factor is exactly 1, so Pr(u) = snap(Σ p_i) — the
		// precomputed weight sum. That is usually 1, but validation
		// tolerates sums up to 1e-6 away from one, which snap does not
		// collapse; the α comparison must still run on the exact value
		// or thresholds near 1 would disagree with brute force.
		st.stats.EmptyCandidates++
		if prob.GEq(st.wsum[id], st.alpha) {
			return accepted
		}
		return rejected
	}
	if !st.opt.NoBounds {
		if st.rejectedNow {
			if st.rejectedTier == 2 {
				st.stats.RejectedByTier2++
			} else {
				st.stats.RejectedByBound++
			}
			return rejected
		}
		if st.coveredCnt == len(st.inner) && st.alpha > prob.Eps {
			st.stats.RejectedByBound++
			return rejected
		}
		// First tier — all-or-nothing MBR tests, exactly the historical
		// bounds:
		//   ub1 ≥ Pr(u): covered samples contribute exactly 0; every other
		//   term is at most p_i (factors ≤ 1 only shrink a product, and
		//   dropping non-negative terms only shrinks a float sum).
		//   lb1 ≤ Pr(u): untouched samples (lbProd still 1) contribute
		//   exactly p_i.
		// Second tier — the same sums with the per-sample bound products
		// folded in: ub2 ≤ ub1 and lb2 ≥ lb1 by construction.
		var ub1, lb1, ub2, lb2 float64
		for i, s := range u.Samples {
			if !st.covered[i] {
				ub1 += s.P
				ub2 += s.P * st.ubProd[i]
				if st.lbProd[i] == 1 {
					lb1 += s.P
				}
				lb2 += s.P * st.lbProd[i]
			}
		}
		switch {
		case lb1 >= st.alpha:
			st.stats.AcceptedByBound++
			return accepted
		case prob.Less(ub1, st.alpha):
			st.stats.RejectedByBound++
			return rejected
		case st.sums != nil && lb2 >= st.alpha:
			st.stats.AcceptedByTier2++
			return accepted
		case st.sums != nil && prob.Less(ub2, st.alpha):
			st.stats.RejectedByTier2++
			return rejected
		}
	}
	st.undecidedIDs = append(st.undecidedIDs, id)
	st.undecidedCands = append(st.undecidedCands, append([]int32(nil), st.buf...))
	return undecided
}

// evaluate runs the exact stage over the undecided band, serially or on a
// worker pool, feeding each item's exact decision to set. Candidate lists
// are sorted ascending first: that is the brute-force multiplication order,
// and superset entries that dominate nothing multiply by exactly 1, so the
// result is bit-identical to prob.PRSQ. Each worker polls ctx between
// items (exact evaluations are the expensive unit, so the poll stride is
// 1) and the first context error is returned together with the number of
// items decided before the stop.
func evaluate(ctx context.Context, cands [][]int32, opt Options,
	decide func(k int) bool, set func(k int, d decision)) (int, error) {

	for _, c := range cands {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	settle := func(k int) {
		if decide(k) {
			set(k, accepted)
		} else {
			set(k, rejected)
		}
	}
	n := len(cands)
	workers := opt.workers(n)
	if workers <= 1 {
		poll := ctxutil.NewPoll(ctx, 1)
		for k := 0; k < n; k++ {
			if err := poll.Check(); err != nil {
				return k, err
			}
			settle(k)
		}
		return n, nil
	}
	var wg sync.WaitGroup
	var done atomic.Int64
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wi := wi
		wg.Add(1)
		go func() {
			defer wg.Done()
			poll := ctxutil.NewPoll(ctx, 1)
			// Strided sharding; verdict slots are disjoint per worker.
			for k := wi; k < n; k += workers {
				if err := poll.Check(); err != nil {
					errs[wi] = err
					return
				}
				settle(k)
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return int(done.Load()), err
		}
	}
	return n, nil
}

// candPool recycles the evaluation stage's candidate object slices across
// queries and workers.
var candPool = sync.Pool{
	New: func() any { return new([]*uncertain.Object) },
}

// collect turns the verdict array into the ascending answer ID list. The
// result is never nil, so callers can marshal it directly (JSON [] rather
// than null).
func collect(verdicts []decision) []int {
	out := make([]int, 0, 16)
	for id, v := range verdicts {
		if v == accepted {
			out = append(out, id)
		}
	}
	return out
}

// strictlyInside reports whether m lies strictly inside r on every axis —
// every point of m then dynamically dominates q w.r.t. r's center with
// strict inequality on all dimensions.
func strictlyInside(m, r *geom.Rect) bool {
	for i := range r.Min {
		if m.Min[i] <= r.Min[i] || m.Max[i] >= r.Max[i] {
			return false
		}
	}
	return true
}
