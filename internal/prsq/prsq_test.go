package prsq

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
	"github.com/crsky/crsky/internal/uncertain"
)

var testAlphas = []float64{0.1, 0.3, 0.6, 0.9, 1.0}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSampleEquivalence asserts that every accelerated configuration
// reproduces the brute-force prob.PRSQ answer set exactly.
func checkSampleEquivalence(t *testing.T, ds *dataset.Uncertain, q geom.Point) {
	t.Helper()
	for _, alpha := range testAlphas {
		want := prob.PRSQ(ds.Objects, q, alpha)
		for _, par := range []int{1, 4} {
			for _, noBounds := range []bool{false, true} {
				got, st := QueryStats(ds, q, alpha, Options{Parallel: par, NoBounds: noBounds})
				if !equalIDs(got, want) {
					t.Fatalf("alpha=%g parallel=%d noBounds=%v: got %d answers %v, want %d answers %v",
						alpha, par, noBounds, len(got), got, len(want), want)
				}
				decided := st.EmptyCandidates + st.AcceptedByBound + st.RejectedByBound + st.Evaluated
				if decided != ds.Len() {
					t.Fatalf("alpha=%g: stats decide %d of %d objects (%+v)", alpha, decided, ds.Len(), st)
				}
			}
		}
	}
}

func TestQueryEquivalenceSampleModel(t *testing.T) {
	// Large radii relative to the domain force overlapping dominance
	// neighbourhoods, i.e. non-trivial candidate sets and a populated
	// undecided band.
	for _, cfg := range []dataset.UncertainConfig{
		dataset.LUrU(300, 2, 0, 400, 1),
		dataset.LUrU(300, 3, 0, 800, 2),
		dataset.LSrU(300, 2, 0, 400, 3),
		dataset.LUrG(200, 2, 100, 1200, 4),
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d/d=%d/seed=%d", cfg.N, cfg.Dims, cfg.Seed), func(t *testing.T) {
			ds, err := dataset.GenerateUncertain(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			for i := 0; i < 3; i++ {
				q := make(geom.Point, cfg.Dims)
				for j := range q {
					q[j] = 10000 * (0.2 + 0.6*rng.Float64())
				}
				checkSampleEquivalence(t, ds, q)
			}
		})
	}
}

func TestQueryEquivalenceCertainDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]*uncertain.Object, 400)
	for i := range objs {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		objs[i] = uncertain.Certain(i, p)
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{50, 50}, {20, 80}, {95, 5}} {
		checkSampleEquivalence(t, ds, q)
	}
}

// TestQueryEquivalenceOffUnitWeights pins the empty-candidate fast path
// against objects whose sample probabilities sum to slightly less than one
// (the validation tolerance allows up to 1e-6 of drift, which snap does not
// collapse): at α = 1 such an object is NOT an answer even with no
// competitors, and the accelerated path must agree with brute force.
func TestQueryEquivalenceOffUnitWeights(t *testing.T) {
	objs := []*uncertain.Object{
		uncertain.New(0, []uncertain.Sample{
			{Loc: geom.Point{100, 100}, P: 0.5},
			{Loc: geom.Point{101, 101}, P: 0.4999995},
		}),
		uncertain.New(1, []uncertain.Sample{{Loc: geom.Point{-100, -100}, P: 1}}),
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{200, 200}, {0, 0}, {-300, 150}} {
		checkSampleEquivalence(t, ds, q)
	}
}

func TestQueryEquivalencePDFModel(t *testing.T) {
	for _, kind := range []uncertain.PDFKind{uncertain.Uniform, uncertain.Gaussian} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			objs, err := dataset.GenerateUncertainPDF(dataset.LUrU(120, 2, 50, 600, 5), kind)
			if err != nil {
				t.Fatal(err)
			}
			set, err := causality.NewPDFSet(objs)
			if err != nil {
				t.Fatal(err)
			}
			q := geom.Point{5000, 5000}
			for _, quadNodes := range []int{0, 4} {
				for _, alpha := range []float64{0.2, 0.6, 1.0} {
					var want []int
					for id, o := range set.Objects {
						if prob.GEq(prob.PrReverseSkylinePDF(o, q, set.Objects, quadNodes), alpha) {
							want = append(want, id)
						}
					}
					for _, par := range []int{1, 4} {
						got, st := QueryPDFStats(set, q, alpha, quadNodes, Options{Parallel: par})
						if !equalIDs(got, want) {
							t.Fatalf("kind=%v quad=%d alpha=%g parallel=%d: got %v, want %v",
								kind, quadNodes, alpha, par, got, want)
						}
						// pdf empty-candidate objects are evaluated too,
						// so Evaluated alone complements the rejects.
						if st.RejectedByBound+st.Evaluated != set.Len() {
							t.Fatalf("stats decide %d of %d (%+v)",
								st.RejectedByBound+st.Evaluated, set.Len(), st)
						}
					}
				}
			}
		})
	}
}

// streamCandidates collects every object's full (untruncated) candidate
// stream — the MBR-level superset the query pipeline consumes.
func streamCandidates(ds *dataset.Uncertain, q geom.Point) [][]int {
	cands := make([][]int, ds.Len())
	window := func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	ds.Tree().JoinSelfStream(window, rtree.StreamVisitor{
		Pair: func(uID, cID int, _ geom.Rect) bool {
			cands[uID] = append(cands[uID], cID)
			return true
		},
	})
	return cands
}

// TestStreamCandidatesCoverFilter pins the batch join to the per-object
// Lemma-2 filter it replaces: the MBR-level stream must contain every exact
// candidate (objects beyond it carry exact ×1 factors, so a superset keeps
// the evaluation bit-identical while the filter stays pure rectangle work).
func TestStreamCandidatesCoverFilter(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(500, 2, 0, 500, 11))
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{4000, 6000}
	batch := streamCandidates(ds, q)
	for id := 0; id < ds.Len(); id++ {
		got := make(map[int]bool, len(batch[id]))
		for _, c := range batch[id] {
			if c == id {
				t.Fatalf("object %d lists itself as candidate", id)
			}
			got[c] = true
		}
		for _, want := range causality.FilterCandidates(ds, q, ds.Objects[id]) {
			if !got[want] {
				t.Fatalf("object %d: exact candidate %d missing from batch stream", id, want)
			}
		}
	}
}

// TestQueryNodeAccessesBelowNaive asserts the headline I/O claim: one
// self-join pass costs strictly fewer node accesses than n independent
// filter traversals.
func TestQueryNodeAccessesBelowNaive(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(2000, 2, 0, 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	var io stats.Counter
	ds.Tree().SetCounter(&io)
	q := geom.Point{5000, 5000}

	io.Reset()
	for id := 0; id < ds.Len(); id++ {
		causality.FilterCandidates(ds, q, ds.Objects[id])
	}
	naive := io.Value()

	io.Reset()
	QueryStats(ds, q, 0.5, Options{Parallel: 1})
	batch := io.Value()

	if batch >= naive {
		t.Fatalf("accelerated query accesses %d, naive filter alone %d — must be strictly cheaper", batch, naive)
	}
	t.Logf("node accesses: naive=%d batch=%d (%.1fx fewer)", naive, batch, float64(naive)/float64(batch))
}
