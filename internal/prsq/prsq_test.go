package prsq

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/prob"
	"github.com/crsky/crsky/internal/rtree"
	"github.com/crsky/crsky/internal/stats"
	"github.com/crsky/crsky/internal/uncertain"
)

var testAlphas = []float64{0.1, 0.3, 0.6, 0.9, 1.0}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSampleEquivalence asserts that every accelerated configuration
// reproduces the brute-force prob.PRSQ answer set exactly.
func checkSampleEquivalence(t *testing.T, ds *dataset.Uncertain, q geom.Point) {
	t.Helper()
	for _, alpha := range testAlphas {
		want := prob.PRSQ(ds.Objects, q, alpha)
		for _, par := range []int{1, 4} {
			for _, opt := range []Options{
				{},
				{NoBounds: true},
				{NoTier2: true},
			} {
				opt.Parallel = par
				got, st := QueryStats(ds, q, alpha, opt)
				if !equalIDs(got, want) {
					t.Fatalf("alpha=%g opts=%+v: got %d answers %v, want %d answers %v",
						alpha, opt, len(got), got, len(want), want)
				}
				decided := st.EmptyCandidates + st.AcceptedByBound + st.RejectedByBound +
					st.AcceptedByTier2 + st.RejectedByTier2 + st.Evaluated
				if decided != ds.Len() {
					t.Fatalf("alpha=%g: stats decide %d of %d objects (%+v)", alpha, decided, ds.Len(), st)
				}
				if opt.NoTier2 && (st.AcceptedByTier2 != 0 || st.RejectedByTier2 != 0) {
					t.Fatalf("alpha=%g: tier-2 decisions recorded with NoTier2 (%+v)", alpha, st)
				}
			}
		}
	}
}

func TestQueryEquivalenceSampleModel(t *testing.T) {
	// Large radii relative to the domain force overlapping dominance
	// neighbourhoods, i.e. non-trivial candidate sets and a populated
	// undecided band.
	for _, cfg := range []dataset.UncertainConfig{
		dataset.LUrU(300, 2, 0, 400, 1),
		dataset.LUrU(300, 3, 0, 800, 2),
		dataset.LSrU(300, 2, 0, 400, 3),
		dataset.LUrG(200, 2, 100, 1200, 4),
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d/d=%d/seed=%d", cfg.N, cfg.Dims, cfg.Seed), func(t *testing.T) {
			ds, err := dataset.GenerateUncertain(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			for i := 0; i < 3; i++ {
				q := make(geom.Point, cfg.Dims)
				for j := range q {
					q[j] = 10000 * (0.2 + 0.6*rng.Float64())
				}
				checkSampleEquivalence(t, ds, q)
			}
		})
	}
}

func TestQueryEquivalenceCertainDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]*uncertain.Object, 400)
	for i := range objs {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		objs[i] = uncertain.Certain(i, p)
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{50, 50}, {20, 80}, {95, 5}} {
		checkSampleEquivalence(t, ds, q)
	}
}

// TestQueryEquivalenceOffUnitWeights pins the empty-candidate fast path
// against objects whose sample probabilities sum to slightly less than one
// (the validation tolerance allows up to 1e-6 of drift, which snap does not
// collapse): at α = 1 such an object is NOT an answer even with no
// competitors, and the accelerated path must agree with brute force.
func TestQueryEquivalenceOffUnitWeights(t *testing.T) {
	objs := []*uncertain.Object{
		uncertain.New(0, []uncertain.Sample{
			{Loc: geom.Point{100, 100}, P: 0.5},
			{Loc: geom.Point{101, 101}, P: 0.4999995},
		}),
		uncertain.New(1, []uncertain.Sample{{Loc: geom.Point{-100, -100}, P: 1}}),
	}
	ds, err := dataset.NewUncertain(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{200, 200}, {0, 0}, {-300, 150}} {
		checkSampleEquivalence(t, ds, q)
	}
}

func TestQueryEquivalencePDFModel(t *testing.T) {
	for _, kind := range []uncertain.PDFKind{uncertain.Uniform, uncertain.Gaussian} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			objs, err := dataset.GenerateUncertainPDF(dataset.LUrU(120, 2, 50, 600, 5), kind)
			if err != nil {
				t.Fatal(err)
			}
			set, err := causality.NewPDFSet(objs)
			if err != nil {
				t.Fatal(err)
			}
			q := geom.Point{5000, 5000}
			for _, quadNodes := range []int{0, 4} {
				for _, alpha := range []float64{0.2, 0.6, 1.0} {
					var want []int
					for id, o := range set.Objects {
						if prob.GEq(prob.PrReverseSkylinePDF(o, q, set.Objects, quadNodes), alpha) {
							want = append(want, id)
						}
					}
					for _, par := range []int{1, 4} {
						for _, noTier2 := range []bool{false, true} {
							got, st := QueryPDFStats(set, q, alpha, quadNodes, Options{Parallel: par, NoTier2: noTier2})
							if !equalIDs(got, want) {
								t.Fatalf("kind=%v quad=%d alpha=%g parallel=%d noTier2=%v: got %v, want %v",
									kind, quadNodes, alpha, par, noTier2, got, want)
							}
							// pdf empty-candidate objects are evaluated too,
							// so Evaluated alone complements the rejects.
							if st.RejectedByBound+st.RejectedByTier2+st.Evaluated != set.Len() {
								t.Fatalf("stats decide %d of %d (%+v)",
									st.RejectedByBound+st.RejectedByTier2+st.Evaluated, set.Len(), st)
							}
						}
					}
				}
			}
		})
	}
}

// TestTier2ShrinksUndecidedBand asserts the second tier is not dead weight:
// across overlapping workloads and high thresholds it must decide at least
// one object the all-or-nothing tier left undecided, and never decide more
// expensively (the evaluated band plus the stream length may only shrink).
func TestTier2ShrinksUndecidedBand(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(400, 2, 50, 900, 17))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var gained, evalT1, evalT2 int
	var pairsT1, pairsT2 int
	for i := 0; i < 4; i++ {
		q := geom.Point{10000 * (0.3 + 0.4*rng.Float64()), 10000 * (0.3 + 0.4*rng.Float64())}
		for _, alpha := range []float64{0.7, 0.9, 1.0} {
			idsT1, st1 := QueryStats(ds, q, alpha, Options{Parallel: 1, NoTier2: true})
			idsT2, st2 := QueryStats(ds, q, alpha, Options{Parallel: 1})
			if !equalIDs(idsT1, idsT2) {
				t.Fatalf("alpha=%g: tier-2 changed the answers: %v vs %v", alpha, idsT2, idsT1)
			}
			gained += st2.AcceptedByTier2 + st2.RejectedByTier2
			evalT1 += st1.Evaluated
			evalT2 += st2.Evaluated
			pairsT1 += st1.CandidatePairs
			pairsT2 += st2.CandidatePairs
		}
	}
	if gained == 0 {
		t.Fatal("second tier decided no object on a workload built to exercise it")
	}
	if evalT2 >= evalT1 {
		t.Fatalf("second tier did not shrink the undecided band: %d vs %d evaluations", evalT2, evalT1)
	}
	if pairsT2 > pairsT1 {
		t.Fatalf("second tier lengthened the candidate streams: %d vs %d pairs", pairsT2, pairsT1)
	}
	t.Logf("tier-2: %d extra bound decisions, evaluations %d→%d, pairs %d→%d",
		gained, evalT1, evalT2, pairsT1, pairsT2)
}

// TestSummariesPartitionObjects pins the sub-MBR summaries the second tier
// trusts: group weights must sum to the object's raw mass, every sample must
// lie inside its group rectangle, and every group rectangle inside the MBR.
func TestSummariesPartitionObjects(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrG(250, 4, 0, 600, 19))
	if err != nil {
		t.Fatal(err)
	}
	sums := ds.Summaries()
	for id, o := range ds.Objects {
		sm := sums[id]
		if len(sm.Rects) == 0 || len(sm.Rects) != len(sm.Weights) {
			t.Fatalf("object %d: malformed summary (%d rects, %d weights)",
				id, len(sm.Rects), len(sm.Weights))
		}
		var raw, grouped float64
		for _, s := range o.Samples {
			raw += s.P
			inAny := false
			for _, r := range sm.Rects {
				if r.ContainsPoint(s.Loc) {
					inAny = true
					break
				}
			}
			if !inAny {
				t.Fatalf("object %d: sample %v outside every summary rect", id, s.Loc)
			}
		}
		mbr := o.MBR()
		for k, r := range sm.Rects {
			if !mbr.ContainsRect(r) {
				t.Fatalf("object %d: summary rect %d escapes the MBR", id, k)
			}
			grouped += sm.Weights[k]
		}
		if math.Abs(raw-grouped) > 1e-12 {
			t.Fatalf("object %d: summary weights sum to %v, raw mass %v", id, grouped, raw)
		}
	}
}

// streamCandidates collects every object's full (untruncated) candidate
// stream — the MBR-level superset the query pipeline consumes.
func streamCandidates(ds *dataset.Uncertain, q geom.Point) [][]int {
	cands := make([][]int, ds.Len())
	window := func(r geom.Rect) geom.Rect { return geom.DomRectUnionOuter(r, q) }
	ds.Tree().JoinSelfStream(window, rtree.StreamVisitor{
		Pair: func(uID, cID int, _ geom.Rect) bool {
			cands[uID] = append(cands[uID], cID)
			return true
		},
	})
	return cands
}

// TestStreamCandidatesCoverFilter pins the batch join to the per-object
// Lemma-2 filter it replaces: the MBR-level stream must contain every exact
// candidate (objects beyond it carry exact ×1 factors, so a superset keeps
// the evaluation bit-identical while the filter stays pure rectangle work).
func TestStreamCandidatesCoverFilter(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(500, 2, 0, 500, 11))
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{4000, 6000}
	batch := streamCandidates(ds, q)
	for id := 0; id < ds.Len(); id++ {
		got := make(map[int]bool, len(batch[id]))
		for _, c := range batch[id] {
			if c == id {
				t.Fatalf("object %d lists itself as candidate", id)
			}
			got[c] = true
		}
		for _, want := range causality.FilterCandidates(ds, q, ds.Objects[id]) {
			if !got[want] {
				t.Fatalf("object %d: exact candidate %d missing from batch stream", id, want)
			}
		}
	}
}

// TestQueryNodeAccessesBelowNaive asserts the headline I/O claim: one
// self-join pass costs strictly fewer node accesses than n independent
// filter traversals.
func TestQueryNodeAccessesBelowNaive(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(2000, 2, 0, 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	var io stats.Counter
	ds.Tree().SetCounter(&io)
	q := geom.Point{5000, 5000}

	io.Reset()
	for id := 0; id < ds.Len(); id++ {
		causality.FilterCandidates(ds, q, ds.Objects[id])
	}
	naive := io.Value()

	io.Reset()
	QueryStats(ds, q, 0.5, Options{Parallel: 1})
	batch := io.Value()

	if batch >= naive {
		t.Fatalf("accelerated query accesses %d, naive filter alone %d — must be strictly cheaper", batch, naive)
	}
	t.Logf("node accesses: naive=%d batch=%d (%.1fx fewer)", naive, batch, float64(naive)/float64(batch))
}
