package prsq

import (
	"context"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/causality"
	"github.com/crsky/crsky/internal/dataset"
	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/stats"
	"github.com/crsky/crsky/internal/uncertain"
)

// TestQueryBatchMatchesPerQuery asserts element-wise identity between the
// batch query and independent per-point queries across models, thresholds,
// and worker counts, and — the batch layer's reason to exist — strictly
// fewer total node accesses than the independent queries on multi-point
// batches.
func TestQueryBatchMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := dataset.LUrU(1500, 3, 0, 5, 11)
	ds, err := dataset.GenerateUncertain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var io stats.Counter
	ds.Tree().SetCounter(&io)
	ds.WeightSums()
	ds.Summaries()

	qs := make([]geom.Point, 16)
	for i := range qs {
		qs[i] = geom.Point{
			cfg.Domain * rng.Float64(),
			cfg.Domain * rng.Float64(),
			cfg.Domain * rng.Float64(),
		}
	}
	for _, alpha := range []float64{0.3, 0.9} {
		for _, par := range []int{1, 4} {
			opt := Options{Parallel: par}

			io.Reset()
			want := make([][]int, len(qs))
			for i, q := range qs {
				want[i], _ = QueryStats(ds, q, alpha, opt)
			}
			singleIO := io.Value()

			io.Reset()
			got, st := QueryBatchStats(ds, qs, alpha, opt)
			batchIO := io.Value()

			for i := range qs {
				if !equalIDs(got[i], want[i]) {
					t.Fatalf("alpha=%g par=%d q#%d: batch %v, per-query %v", alpha, par, i, got[i], want[i])
				}
			}
			decided := st.EmptyCandidates + st.AcceptedByBound + st.RejectedByBound +
				st.AcceptedByTier2 + st.RejectedByTier2 + st.Evaluated
			if decided != ds.Len()*len(qs) {
				t.Fatalf("alpha=%g par=%d: stats decide %d of %d object-queries (%+v)",
					alpha, par, decided, ds.Len()*len(qs), st)
			}
			if batchIO >= singleIO {
				t.Fatalf("alpha=%g par=%d: batch charged %d node accesses, per-query total %d — no amortization",
					alpha, par, batchIO, singleIO)
			}
		}
	}
}

// TestQueryBatchPDFMatchesPerQuery is the continuous-model counterpart on a
// smaller instance (quadrature is the dominant cost).
func TestQueryBatchPDFMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := dataset.LUrU(150, 2, 10, 400, 12)
	objs, err := dataset.GenerateUncertainPDF(cfg, uncertain.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	set, err := causality.NewPDFSet(objs)
	if err != nil {
		t.Fatal(err)
	}
	var io stats.Counter
	set.Tree().SetCounter(&io)

	qs := make([]geom.Point, 8)
	for i := range qs {
		qs[i] = geom.Point{cfg.Domain * rng.Float64(), cfg.Domain * rng.Float64()}
	}
	const quad = 4
	for _, alpha := range []float64{0.4, 0.9} {
		opt := Options{Parallel: 2}
		io.Reset()
		want := make([][]int, len(qs))
		for i, q := range qs {
			want[i], _ = QueryPDFStats(set, q, alpha, quad, opt)
		}
		singleIO := io.Value()

		io.Reset()
		got, _, err := QueryBatchPDFStatsCtx(context.Background(), set, qs, alpha, quad, opt)
		if err != nil {
			t.Fatal(err)
		}
		batchIO := io.Value()

		for i := range qs {
			if !equalIDs(got[i], want[i]) {
				t.Fatalf("alpha=%g q#%d: batch %v, per-query %v", alpha, i, got[i], want[i])
			}
		}
		if batchIO >= singleIO {
			t.Fatalf("alpha=%g: batch charged %d node accesses, per-query total %d", alpha, batchIO, singleIO)
		}
	}
}

// TestQueryBatchCanceled asserts a dead context stops the batch before any
// verdict is produced and surfaces the typed error.
func TestQueryBatchCanceled(t *testing.T) {
	ds, err := dataset.GenerateUncertain(dataset.LUrU(200, 2, 0, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []geom.Point{{100, 100}, {500, 500}}
	out, _, err := QueryBatchStatsCtx(ctx, ds, qs, 0.5, Options{Parallel: 1})
	if err == nil || out != nil {
		t.Fatalf("canceled batch returned out=%v err=%v", out, err)
	}
}
