// Package ctxutil is the shared cancellation plumbing of the context-aware
// v2 engine API. Search kernels (the branch-and-bound FMCS refiner, the
// R-tree self-joins, the exact-evaluation worker pools) are hot loops that
// cannot afford a context poll per node; Poll amortizes the check to one
// ctx.Err() read every stride work units, so the cost of cancellation
// support on an uncanceled run is a counter decrement. CanceledError is the
// typed error every engine returns when a context stops a computation,
// carrying the partial work statistics accumulated up to the stop.
package ctxutil

import (
	"context"
	"errors"
	"fmt"
)

// DefaultStride is the number of charged work units between consecutive
// context polls. One unit is one search node / one streamed join pair, so
// the stride bounds how much extra work a canceled computation performs
// before it notices: at most one stride per worker goroutine.
const DefaultStride = 1024

// CanceledError reports a computation stopped by its context. It wraps the
// context's error (context.Canceled or context.DeadlineExceeded), so
// errors.Is(err, context.Canceled) works through it, and carries the
// partial work counters so callers can account for abandoned effort.
type CanceledError struct {
	// Err is the underlying context error.
	Err error
	// SubsetsExamined counts the contingency-set verifications performed
	// before the stop (explanation and repair paths).
	SubsetsExamined int64
	// Evaluated counts the exact query evaluations completed before the
	// stop (query paths).
	Evaluated int
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("crsky: computation canceled: %v (subsets examined: %d, evaluated: %d)",
		e.Err, e.SubsetsExamined, e.Evaluated)
}

// Unwrap exposes the context error to errors.Is/errors.As.
func (e *CanceledError) Unwrap() error { return e.Err }

// WrapCanceled types a context error as a *CanceledError carrying the
// partial work counters. Non-context errors — and errors a lower layer
// already typed, whose counters must not be overwritten — pass through
// unchanged; nil stays nil. Every cancellation return in the engine
// funnels through this helper, so callers can rely on one error shape.
func WrapCanceled(err error, subsets int64, evaluated int) error {
	if err == nil {
		return nil
	}
	var ce *CanceledError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CanceledError{Err: err, SubsetsExamined: subsets, Evaluated: evaluated}
	}
	return err
}

// Precheck returns the wrapped cancellation error of an already-dead
// context, so entry points fail fast before any work; nil and
// never-canceling contexts return nil.
func Precheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return WrapCanceled(ctx.Err(), 0, 0)
}

// Poll is an amortized context checker. A nil *Poll never cancels, so
// context-free entry points pass nil and pay a single branch per check.
// Poll is not safe for concurrent use: each worker goroutine owns its own
// Poll (sharing the context), which keeps the countdown contention-free.
type Poll struct {
	ctx    context.Context
	stride int64
	left   int64
}

// NewPoll builds a Poll over ctx with the given stride (<= 0 selects
// DefaultStride). It returns nil — the never-canceling poll — when ctx is
// nil or can never be canceled (context.Background, context.TODO), so the
// hot loops skip even the countdown on the legacy context-free paths.
func NewPoll(ctx context.Context, stride int) *Poll {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	// left starts at 1, not stride: the very first charge polls, so an
	// already-dead context is observed before any work happens; only then
	// does the amortization kick in.
	return &Poll{ctx: ctx, stride: int64(stride), left: 1}
}

// Charge consumes n work units and polls the context once the stride is
// exhausted, returning the context's error if it has been canceled. The
// poll never returns a stale nil after a cancellation has been observed:
// once ctx.Err() is non-nil it stays non-nil.
func (p *Poll) Charge(n int64) error {
	if p == nil {
		return nil
	}
	p.left -= n
	if p.left > 0 {
		return nil
	}
	p.left = p.stride
	return p.ctx.Err()
}

// Check is Charge(1).
func (p *Poll) Check() error { return p.Charge(1) }
