// Package watch is the /v2/watch subscription hub: clients register a
// non-answer (a query point and the object whose absence they care about)
// and hold an NDJSON stream open; after every committed mutation the hub
// schedules a re-evaluation of the affected subscriptions and pushes an
// event when a watched non-answer flips into the answer set or its
// minimal repair shrinks.
//
// The hub is deliberately engine-agnostic. It knows three things: which
// subscriptions exist per dataset, how to coalesce mutation notices, and
// how to prune subscriptions whose dominance window a mutation cannot
// touch. The actual re-evaluation (batched queries against the current
// engine generation) is injected by the serving layer as a Reevaluator.
package watch

import (
	"sync"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/stats"
)

// Event kinds pushed down a subscription stream. Flipped and Deleted are
// terminal: the hub closes the stream after delivering them.
const (
	KindRegistered   = "registered"
	KindFlipped      = "flipped"
	KindRepairShrunk = "repair_shrunk"
	KindDeleted      = "deleted"
)

// Event is one NDJSON line of a /v2/watch stream.
type Event struct {
	Event      string `json:"event"`
	Dataset    string `json:"dataset"`
	Generation uint64 `json:"generation"`
	An         int    `json:"an"`
	// Answer reports whether the watched object is in the answer set at
	// Generation (true exactly once, on the terminal "flipped" event).
	Answer bool `json:"answer"`
	// Repair is the current minimal repair (present on "registered" when
	// repair tracking is on, and on every "repair_shrunk").
	Repair []int  `json:"repair,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Sub is one registered subscription. The exported fields are immutable
// after Register; the hub and the serving layer coordinate event delivery
// through the methods.
type Sub struct {
	ID      uint64
	Dataset string
	Q       geom.Point
	An      int
	Alpha   float64
	// QuadNodes tunes pdf quadrature for re-evaluations (0 = default).
	QuadNodes int
	// TrackRepair enables repair_shrunk events (each re-evaluation then
	// also recomputes the minimal repair, which is much more expensive
	// than the membership check alone).
	TrackRepair bool
	// Window bounds the region where an object insertion or deletion can
	// change this subscription's membership: the dominance rectangle
	// union DomRectUnionOuter(anMBR, q). Mutations whose MBR misses it
	// are pruned without re-evaluation. HasWindow false disables pruning
	// (wrapped engines the serving layer cannot introspect).
	Window    geom.Rect
	HasWindow bool

	mu       sync.Mutex
	ch       chan Event
	closed   bool
	terminal bool
	// repairN is the smallest repair size pushed so far (baseline for
	// repair_shrunk); negative until a baseline is set.
	repairN int

	drops *stats.Counter
}

// Events is the delivery channel. It is closed after a terminal event
// (flipped, deleted) and never otherwise; the reader must also stop on
// its own request context.
func (s *Sub) Events() <-chan Event { return s.ch }

// SetRepairBaseline records the size of the last repair pushed to the
// client; only strictly smaller repairs are worth an event.
func (s *Sub) SetRepairBaseline(n int) {
	s.mu.Lock()
	s.repairN = n
	s.mu.Unlock()
}

// RepairBaseline returns the last pushed repair size (negative = none yet).
func (s *Sub) RepairBaseline() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairN
}

func (s *Sub) isTerminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.terminal || s.closed
}

// send delivers ev without ever blocking the hub: when the subscriber is
// slow and its buffer is full, the oldest buffered event is dropped (the
// stream is a change notification, not a transaction log — the client
// re-reads current state on any event). Terminal events mark the sub
// dead and close the channel.
func (s *Sub) send(ev Event, terminal bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.terminal {
		return false
	}
	for {
		select {
		case s.ch <- ev:
			if terminal {
				s.terminal = true
				s.closed = true
				close(s.ch)
			}
			return true
		default:
			select {
			case <-s.ch:
				if s.drops != nil {
					s.drops.Inc()
				}
			default:
			}
		}
	}
}

// notice is the coalesced pending work for one dataset: the union of the
// mutation windows committed since the last re-evaluation round, the
// newest generation, and the object IDs deleted in the round.
type notice struct {
	gen uint64
	// window is the union of mutated-object MBRs; all=true means at
	// least one mutation had no known MBR, so every subscription is
	// affected.
	window  geom.Rect
	hasWin  bool
	all     bool
	deleted []int
}

// Reevaluator re-checks the given (already pruned, non-terminal)
// subscriptions of one dataset against the current engine state and emits
// events through Hub.Emit. It runs on the hub's worker goroutine and may
// block; the hub keeps coalescing new notices meanwhile.
type Reevaluator func(dataset string, gen uint64, subs []*Sub)

// Stats is a point-in-time snapshot of hub activity.
type Stats struct {
	Active       int   `json:"active"`
	Registered   int64 `json:"registered"`
	Flipped      int64 `json:"flipped"`
	RepairShrunk int64 `json:"repairShrunk"`
	Deleted      int64 `json:"deleted"`
	Dropped      int64 `json:"dropped"`
	Pruned       int64 `json:"pruned"`
	Coalesced    int64 `json:"coalesced"`
	Reevals      int64 `json:"reevals"`
}

// Hub owns the subscriptions and the re-evaluation scheduler: one lazily
// started worker goroutine drains the pending notices and exits when the
// queue is empty, so an idle or subscriber-less hub holds no goroutine.
type Hub struct {
	mu      sync.Mutex
	subs    map[string]map[uint64]*Sub
	pending map[string]*notice
	order   []string
	nextID  uint64
	running bool
	reeval  Reevaluator
	// idle is closed-over by tests via WaitIdle: broadcast whenever the
	// worker drains the queue.
	idle *sync.Cond

	registered, flipped, shrunk, deletedEv stats.Counter
	dropped, pruned, coalesced, reevals    stats.Counter
}

// NewHub builds a hub that re-evaluates through reeval (nil is allowed:
// affected subscriptions are then simply not re-evaluated, which only
// makes sense in tests).
func NewHub(reeval Reevaluator) *Hub {
	h := &Hub{
		subs:    make(map[string]map[uint64]*Sub),
		pending: make(map[string]*notice),
		reeval:  reeval,
	}
	h.idle = sync.NewCond(&h.mu)
	return h
}

// Register installs a subscription and returns it. bufferCap bounds the
// per-subscriber event buffer (<=0 selects the default 32).
func (h *Hub) Register(dataset string, q geom.Point, an int, alpha float64, quadNodes int,
	window geom.Rect, hasWindow bool, trackRepair bool) *Sub {

	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	s := &Sub{
		ID:          h.nextID,
		Dataset:     dataset,
		Q:           q,
		An:          an,
		Alpha:       alpha,
		QuadNodes:   quadNodes,
		TrackRepair: trackRepair,
		Window:      window,
		HasWindow:   hasWindow,
		ch:          make(chan Event, 32),
		repairN:     -1,
		drops:       &h.dropped,
	}
	m, ok := h.subs[dataset]
	if !ok {
		m = make(map[uint64]*Sub)
		h.subs[dataset] = m
	}
	m[s.ID] = s
	h.registered.Inc()
	return s
}

// Unregister removes a subscription (the handler's defer). Idempotent;
// safe against concurrent terminal delivery.
func (h *Hub) Unregister(s *Sub) {
	h.mu.Lock()
	if m, ok := h.subs[s.Dataset]; ok {
		delete(m, s.ID)
		if len(m) == 0 {
			delete(h.subs, s.Dataset)
		}
	}
	h.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}

// Notify records one committed mutation against dataset: gen is the
// generation the mutation installed, window the mutated object's MBR
// (hasWindow false when unknown — every subscription is then affected),
// and deletedID the tombstoned object (negative for inserts). Notices
// coalesce: many mutations committed while a re-evaluation round runs
// fold into a single pending round.
func (h *Hub) Notify(dataset string, gen uint64, window geom.Rect, hasWindow bool, deletedID int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs[dataset]) == 0 {
		return
	}
	n, ok := h.pending[dataset]
	if !ok {
		n = &notice{gen: gen, window: window, hasWin: hasWindow, all: !hasWindow}
		h.pending[dataset] = n
		h.order = append(h.order, dataset)
	} else {
		h.coalesced.Inc()
		if gen > n.gen {
			n.gen = gen
		}
		switch {
		case !hasWindow:
			n.all = true
		case n.hasWin:
			n.window = n.window.Union(window)
		default:
			n.window, n.hasWin = window, true
		}
	}
	if deletedID >= 0 {
		n.deleted = append(n.deleted, deletedID)
	}
	if !h.running {
		h.running = true
		go h.loop()
	}
}

// DatasetReset terminates every subscription of dataset with a "deleted"
// event — the dataset was removed or replaced wholesale, so object IDs no
// longer mean what the watchers registered against.
func (h *Hub) DatasetReset(dataset string, gen uint64) {
	h.mu.Lock()
	subs := h.subs[dataset]
	delete(h.pending, dataset)
	h.mu.Unlock()
	for _, s := range subs {
		h.Emit(s, Event{Event: KindDeleted, Dataset: dataset, Generation: gen, An: s.An})
	}
}

// Emit delivers one event, doing the kind-specific bookkeeping: counter,
// terminal close on flipped/deleted, repair baseline on repair_shrunk.
func (h *Hub) Emit(s *Sub, ev Event) {
	terminal := false
	switch ev.Event {
	case KindFlipped:
		h.flipped.Inc()
		terminal = true
	case KindDeleted:
		h.deletedEv.Inc()
		terminal = true
	case KindRepairShrunk:
		h.shrunk.Inc()
		s.SetRepairBaseline(len(ev.Repair))
	}
	s.send(ev, terminal)
}

// loop is the re-evaluation worker: pop a dataset's coalesced notice,
// prune, hand the affected subscriptions to the Reevaluator, repeat.
// Exits when the queue drains; Notify restarts it.
func (h *Hub) loop() {
	h.mu.Lock()
	for len(h.order) > 0 {
		name := h.order[0]
		h.order = h.order[1:]
		n := h.pending[name]
		delete(h.pending, name)
		var affected []*Sub
		for _, s := range h.subs[name] {
			if s.isTerminal() {
				continue
			}
			if containsID(n.deleted, s.An) {
				// The watched object itself was deleted: terminal, no
				// re-evaluation needed.
				h.Emit(s, Event{Event: KindDeleted, Dataset: name, Generation: n.gen, An: s.An})
				continue
			}
			if !n.all && n.hasWin && s.HasWindow && !s.Window.Intersects(n.window) {
				h.pruned.Inc()
				continue
			}
			affected = append(affected, s)
		}
		if len(affected) == 0 || h.reeval == nil {
			continue
		}
		reeval := h.reeval
		h.reevals.Inc()
		// The engine work runs outside the hub lock: new mutations keep
		// coalescing into pending while the batch computes.
		h.mu.Unlock()
		reeval(name, n.gen, affected)
		h.mu.Lock()
	}
	h.running = false
	h.idle.Broadcast()
	h.mu.Unlock()
}

// WaitIdle blocks until no re-evaluation round is pending or running —
// the synchronization point tests (and the smoke harness) use to assert
// post-mutation stream contents deterministically.
func (h *Hub) WaitIdle() {
	h.mu.Lock()
	for h.running || len(h.order) > 0 {
		h.idle.Wait()
	}
	h.mu.Unlock()
}

// Stats snapshots hub activity.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	active := 0
	for _, m := range h.subs {
		active += len(m)
	}
	h.mu.Unlock()
	return Stats{
		Active:       active,
		Registered:   h.registered.Value(),
		Flipped:      h.flipped.Value(),
		RepairShrunk: h.shrunk.Value(),
		Deleted:      h.deletedEv.Value(),
		Dropped:      h.dropped.Value(),
		Pruned:       h.pruned.Value(),
		Coalesced:    h.coalesced.Value(),
		Reevals:      h.reevals.Value(),
	}
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
