package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders metrics in the Prometheus text exposition format
// (version 0.0.4) without importing a client library: the format is a few
// lines of escaping rules, and keeping obs dependency-free means every
// internal package can link it.

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// PromHead writes the # HELP / # TYPE preamble for a metric family.
func PromHead(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// PromValue writes one sample line: name{labels} value.
func PromValue(w io.Writer, name string, labels []Label, value float64) {
	io.WriteString(w, name)
	writeLabels(w, labels)
	io.WriteString(w, " ")
	io.WriteString(w, formatFloat(value))
	io.WriteString(w, "\n")
}

// PromHistogram writes one histogram series: cumulative _bucket lines for
// every finite bound plus +Inf, then _sum and _count. The extra labels are
// appended to each line before the le label.
func PromHistogram(w io.Writer, name string, labels []Label, s HistogramSnapshot) {
	bounds := upperBoundsSeconds
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		lb := append(append([]Label(nil), labels...), Label{"le", formatFloat(bounds[i])})
		PromValue(w, name+"_bucket", lb, float64(cum))
	}
	cum += s.Counts[NumBuckets]
	lb := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	PromValue(w, name+"_bucket", lb, float64(cum))
	PromValue(w, name+"_sum", labels, s.SumSeconds)
	PromValue(w, name+"_count", labels, float64(s.Count))
}

// PromHistogramVec writes every series of a vector under one family head.
func PromHistogramVec(w io.Writer, name, help string, v *HistogramVec) {
	PromHead(w, name, "histogram", help)
	names := v.LabelNames()
	for _, ls := range v.Snapshots() {
		labels := make([]Label, len(names))
		for i := range names {
			labels[i] = Label{names[i], ls.LabelValues[i]}
		}
		PromHistogram(w, name, labels, ls.Snapshot)
	}
}

func writeLabels(w io.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	io.WriteString(w, "{")
	for i, l := range labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, l.Name)
		io.WriteString(w, "=\"")
		io.WriteString(w, escapeLabel(l.Value))
		io.WriteString(w, "\"")
	}
	io.WriteString(w, "}")
}

func formatFloat(v float64) string {
	// Integers render without an exponent so counters read naturally.
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
