package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{134 * time.Second, NumBuckets - 1},
		{1000 * time.Second, NumBuckets},
		{time.Duration(math.MaxInt64), NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's upper bound must land in its own bucket (le is
	// inclusive), and one nanosecond more in the next.
	for i, b := range UpperBounds() {
		d := time.Duration(b * 1e9)
		if got := bucketIndex(d); got != i {
			t.Errorf("bound %g s maps to bucket %d, want %d", b, got, i)
		}
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 in the fast bucket, p99
	// in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 90*100e-6 + 10*50e-3
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
	p50 := s.P50()
	if p50 <= 0 || p50 > 131.072e-6 {
		t.Errorf("p50 = %g s, want within the 100µs bucket (le 131.072µs)", p50)
	}
	p99 := s.P99()
	if p99 < 32.768e-3 || p99 > 67.108864e-3 {
		t.Errorf("p99 = %g s, want within the 50ms bucket", p99)
	}
	if m := s.Mean(); math.Abs(m-wantSum/100) > 1e-9 {
		t.Errorf("mean = %g, want %g", m, wantSum/100)
	}
	if q0 := s.Quantile(0); q0 < 0 {
		t.Errorf("q0 = %g", q0)
	}
	if q1 := s.Quantile(1); q1 < p99 {
		t.Errorf("q1 = %g < p99 = %g", q1, p99)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	nilH.Merge(&h)
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 5; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 10 {
		t.Fatalf("merged count = %d, want 10", s.Count)
	}
	if math.Abs(s.SumSeconds-(5*1e-3+5)) > 1e-9 {
		t.Fatalf("merged sum = %g", s.SumSeconds)
	}
}

// TestHistogramConcurrent hammers one histogram from 32 goroutines and
// asserts no observation is lost — the satellite-task race test (run under
// -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	const goroutines = 32
	const perG = 2000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations over many buckets.
				h.Observe(time.Duration(1+(g*perG+i)%5000000) * time.Microsecond)
			}
		}()
	}
	// Concurrent readers must see consistent (monotone-cumulative)
	// snapshots while writes are in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			var cum uint64
			for _, c := range s.Counts {
				cum += c
			}
			if cum != s.Count {
				t.Errorf("snapshot count %d != bucket sum %d", s.Count, cum)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost observations)", s.Count, goroutines*perG)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("route", "outcome")
	v.With("/v1/query", "ok").Observe(time.Millisecond)
	v.With("/v1/query", "ok").Observe(2 * time.Millisecond)
	v.With("/v1/explain", "error").Observe(time.Second)
	snaps := v.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("series = %d, want 2", len(snaps))
	}
	// Deterministic order: sorted by label values.
	if snaps[0].LabelValues[0] != "/v1/explain" {
		t.Errorf("unexpected order: %v", snaps[0].LabelValues)
	}
	if snaps[1].Snapshot.Count != 2 {
		t.Errorf("query count = %d, want 2", snaps[1].Snapshot.Count)
	}
	defer func() {
		if recover() == nil {
			t.Error("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestPromHistogramFormat(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	var b strings.Builder
	PromHead(&b, "x_seconds", "histogram", "test family")
	PromHistogram(&b, "x_seconds", []Label{{"route", "/v1/query"}}, h.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# HELP x_seconds test family",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{route="/v1/query",le="+Inf"} 2`,
		`x_seconds_count{route="/v1/query"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative monotonicity across all bucket lines.
	var last float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		var v float64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		last = v
	}
}

func TestPromEscaping(t *testing.T) {
	var b strings.Builder
	PromValue(&b, "m", []Label{{"k", "a\"b\\c\nd"}}, 1)
	want := `m{k="a\"b\\c\nd"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("got %q want %q", b.String(), want)
	}
}

// fmtSscanLast parses the final whitespace-separated field of line as a
// float.
func fmtSscanLast(line string, v *float64) (int, error) {
	fields := strings.Fields(line)
	return fmt.Sscan(fields[len(fields)-1], v)
}

// BenchmarkHistogramObserve measures the record path the <1% overhead
// acceptance criterion refers to (three atomic adds).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(time.Duration(i) * time.Microsecond)
			i++
		}
	})
}
