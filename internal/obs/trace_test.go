package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.Add("c", 1)
	tr.SetLabel("k", "v")
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot not nil")
	}
	if tr.Counter("c") != 0 || tr.Spans() != nil {
		t.Fatal("nil trace leaked state")
	}
	// A context without a trace yields nil.
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context not nil")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := New()
	ctx := WithTrace(context.Background(), tr)
	got := FromContext(ctx)
	if got != tr {
		t.Fatal("FromContext did not return the stored trace")
	}
	end := got.StartSpan("stage.a")
	time.Sleep(2 * time.Millisecond)
	end()
	got.Add("work", 41)
	got.Add("work", 1)
	got.SetLabel("cache", "miss")

	js := got.Snapshot()
	if js == nil || len(js.Spans) != 1 {
		t.Fatalf("snapshot = %+v", js)
	}
	sp := js.Spans[0]
	if sp.Name != "stage.a" || sp.DurMs <= 0 || sp.DurMs > js.WallMs {
		t.Errorf("span = %+v wall=%g", sp, js.WallMs)
	}
	if js.Counters["work"] != 42 || js.Labels["cache"] != "miss" {
		t.Errorf("counters/labels = %+v %+v", js.Counters, js.Labels)
	}
	// JSON wire form stays stable.
	b, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"wallMs"`, `"spans"`, `"stage.a"`, `"counters"`, `"labels"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshal missing %s: %s", want, b)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := tr.StartSpan("s")
				tr.Add("n", 1)
				end()
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("n"); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("spans = %d, want 1600", got)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	l.Record(5*time.Millisecond, SlowEntry{Route: "/v1/query", Outcome: "ok", Status: 200})
	if buf.Len() != 0 {
		t.Fatal("fast request logged")
	}
	tr := New()
	tr.StartSpan("prsq.join")()
	l.Record(25*time.Millisecond, SlowEntry{
		Route: "/v1/explain", Dataset: "d", Model: "sample",
		Outcome: "ok", Status: 200, Trace: tr.Snapshot(),
	})
	if l.Written() != 1 {
		t.Fatalf("written = %d", l.Written())
	}
	var entry SlowEntry
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &entry); err != nil {
		t.Fatalf("slow log line not valid JSON: %v\n%s", err, buf.String())
	}
	if entry.Route != "/v1/explain" || entry.DurMs != 25 || entry.Trace == nil {
		t.Errorf("entry = %+v", entry)
	}
	if entry.Time == "" {
		t.Error("missing timestamp")
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(nil, time.Second) != nil {
		t.Fatal("nil writer should disable")
	}
	if NewSlowLog(&bytes.Buffer{}, 0) != nil {
		t.Fatal("zero threshold should disable")
	}
	var l *SlowLog
	l.Record(time.Hour, SlowEntry{}) // must not panic
	if l.Written() != 0 || l.Errors() != 0 || l.Threshold() != 0 {
		t.Fatal("nil slow log leaked state")
	}
}
