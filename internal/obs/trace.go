package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Trace records the stage-level anatomy of one request: wall-time spans
// (join, exact evaluation, greedy seeding, branch-and-bound search, pool
// wait, …), effort counters (node accesses, candidate pairs, subsets
// examined, …), and string labels (cache/singleflight disposition). It is
// carried through the engine layers via context; every recording method is
// safe on a nil receiver, so untraced requests pay only a context lookup
// at stage boundaries — never per-item work.
//
// Traces are concurrency-safe: the parallel join workers and the batch
// explain fan-out record spans and counters from multiple goroutines.
type Trace struct {
	start time.Time

	mu       sync.Mutex
	spans    []Span
	counters map[string]int64
	labels   map[string]string
}

// Span is one completed stage with offsets relative to the trace start.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// New creates a Trace anchored at the current time.
func New() *Trace {
	return &Trace{start: time.Now()}
}

type traceKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. All Trace methods
// are nil-safe, so callers never need to branch on the result.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StartSpan opens a named span and returns its closer. The usual shape is
//
//	defer tr.StartSpan("prsq.join")()
//
// or an explicit end() call between stages. Calling the closer more than
// once records the span more than once; don't.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Since(t.start)
	return func() {
		end := time.Since(t.start)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: begin, Dur: end - begin})
		t.mu.Unlock()
	}
}

// Add accumulates v into the named counter.
func (t *Trace) Add(name string, v int64) {
	if t == nil || v == 0 {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 8)
	}
	t.counters[name] += v
	t.mu.Unlock()
}

// SetLabel records a string annotation (last write wins).
func (t *Trace) SetLabel(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.labels == nil {
		t.labels = make(map[string]string, 4)
	}
	t.labels[key] = value
	t.mu.Unlock()
}

// SpanJSON is the wire form of a completed span: millisecond offsets from
// the request start.
type SpanJSON struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"startMs"`
	DurMs   float64 `json:"durMs"`
}

// TraceJSON is the wire form of a trace, attached to responses under
// ?trace=1 and embedded in slow-query log lines.
type TraceJSON struct {
	// WallMs is the elapsed wall time from trace creation to snapshot.
	WallMs float64 `json:"wallMs"`
	// Spans lists completed stages in start order. Concurrent stages (the
	// parallel join's per-worker work, batch items) overlap; their
	// durations sum to CPU-ish stage time, not wall time.
	Spans []SpanJSON `json:"spans,omitempty"`
	// Counters carries the effort metrics recorded by the engine layers.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Labels carries string annotations (cache/flight disposition, …).
	Labels map[string]string `json:"labels,omitempty"`
}

// Snapshot renders the trace for a response or log line. The trace remains
// usable afterwards; snapshots are deep copies.
func (t *Trace) Snapshot() *TraceJSON {
	if t == nil {
		return nil
	}
	wall := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &TraceJSON{WallMs: MsRound(wall.Seconds())}
	if len(t.spans) > 0 {
		spans := append([]Span(nil), t.spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		out.Spans = make([]SpanJSON, len(spans))
		for i, sp := range spans {
			out.Spans[i] = SpanJSON{
				Name:    sp.Name,
				StartMs: MsRound(sp.Start.Seconds()),
				DurMs:   MsRound(sp.Dur.Seconds()),
			}
		}
	}
	if len(t.counters) > 0 {
		out.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			out.Counters[k] = v
		}
	}
	if len(t.labels) > 0 {
		out.Labels = make(map[string]string, len(t.labels))
		for k, v := range t.labels {
			out.Labels[k] = v
		}
	}
	return out
}

// Spans returns a copy of the completed spans (test hook).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Counter returns the current value of a named counter (test hook).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}
