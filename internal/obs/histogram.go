// Package obs is the serving stack's observability substrate: low-overhead
// concurrency-safe latency histograms, context-carried stage traces, a
// Prometheus text-format writer, and a structured slow-query log. It
// deliberately depends on nothing but the standard library so every layer —
// rtree, prsq, causality, server — can record into it without import
// cycles.
//
// Design constraints, in order:
//
//  1. The record path must be cheap enough to run on every request
//     (histograms are three atomic adds; traces are nil-pointer no-ops
//     unless a request opted in).
//  2. Recording must never perturb results: instrumented code paths are
//     bit-identical with tracing on and off, which the conformance harness
//     cross-checks.
//  3. Everything is mergeable and snapshot-consistent enough for
//     monitoring: cumulative bucket counts exported to Prometheus are
//     monotone by construction.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i covers
// latencies in (bound(i-1), bound(i)] with bound(i) = 1µs·2^i: the finite
// range spans 1µs to ~134s, after which observations land in the implicit
// +Inf overflow bucket. Fixed log-spaced bounds keep Observe allocation-free
// and make every Histogram in the process mergeable with every other.
const NumBuckets = 28

// bucketIndex maps a duration to its bucket: the smallest i with
// ns <= 1000<<i, or NumBuckets for the overflow bucket.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0
	}
	i := bits.Len64(uint64((ns - 1) / 1000))
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// upperBoundsSeconds holds the finite bucket upper bounds in seconds,
// computed once.
var upperBoundsSeconds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	for i := range b {
		b[i] = float64(int64(1000)<<i) / 1e9
	}
	return b
}()

// UpperBounds returns the finite bucket upper bounds in seconds (the
// Prometheus "le" values, excluding +Inf).
func UpperBounds() []float64 {
	out := make([]float64, NumBuckets)
	copy(out, upperBoundsSeconds[:])
	return out
}

// Histogram is a fixed-bucket, log-spaced latency histogram safe for
// concurrent use. Observe is three uncontended-atomic adds (~tens of
// nanoseconds), so it can sit on every request and every pool-slot wait
// without measurable overhead. The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64 // [NumBuckets] = +Inf overflow
	sumNs  atomic.Int64
}

// Observe records one latency. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sumNs.Add(int64(d))
}

// Merge folds o's observations into h. Both histograms share the global
// bucket layout, so merging is element-wise.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if v := o.counts[i].Load(); v != 0 {
			h.counts[i].Add(v)
		}
	}
	h.sumNs.Add(o.sumNs.Load())
}

// Snapshot captures the histogram's current state. Count is derived from
// the bucket counts, so the Prometheus invariant (+Inf cumulative ==
// count) holds exactly even under concurrent writes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumSeconds = float64(h.sumNs.Load()) / 1e9
	return s
}

// HistogramSnapshot is an immutable point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Counts holds per-bucket (non-cumulative) observation counts; the
	// final element is the +Inf overflow bucket.
	Counts [NumBuckets + 1]uint64
	// Count is the total number of observations (the sum of Counts).
	Count uint64
	// SumSeconds is the sum of all observed latencies, in seconds.
	SumSeconds float64
}

// Quantile estimates the p-quantile (p in [0, 1]) in seconds by linear
// interpolation within the target bucket — the standard Prometheus
// histogram_quantile estimate. It returns 0 for an empty histogram; values
// in the overflow bucket report the largest finite bound.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= NumBuckets {
				return upperBoundsSeconds[NumBuckets-1]
			}
			lo := 0.0
			if i > 0 {
				lo = upperBoundsSeconds[i-1]
			}
			hi := upperBoundsSeconds[i]
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return upperBoundsSeconds[NumBuckets-1]
}

// Mean returns the average observed latency in seconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// P50, P90, P99, P999 are the quantile shorthands the serving reports use.
func (s HistogramSnapshot) P50() float64  { return s.Quantile(0.50) }
func (s HistogramSnapshot) P90() float64  { return s.Quantile(0.90) }
func (s HistogramSnapshot) P99() float64  { return s.Quantile(0.99) }
func (s HistogramSnapshot) P999() float64 { return s.Quantile(0.999) }

// HistogramVec is a set of Histograms keyed by a fixed list of label
// values — the route × model × outcome families the server exports. Lookup
// is a read-locked map hit; creation of a new label combination takes the
// write lock once.
type HistogramVec struct {
	labelNames []string
	mu         sync.RWMutex
	m          map[string]*vecEntry
}

type vecEntry struct {
	labelValues []string
	h           *Histogram
}

// NewHistogramVec creates a vector whose histograms are addressed by
// values for the given label names.
func NewHistogramVec(labelNames ...string) *HistogramVec {
	return &HistogramVec{
		labelNames: labelNames,
		m:          make(map[string]*vecEntry),
	}
}

// LabelNames returns the vector's label schema.
func (v *HistogramVec) LabelNames() []string { return v.labelNames }

// With returns (creating if needed) the histogram for the given label
// values. The number of values must match the label names; mismatches
// panic, as they are programming errors.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(v.labelNames) {
		panic("obs: label value count mismatch")
	}
	key := joinKey(labelValues)
	v.mu.RLock()
	e, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return e.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok = v.m[key]; ok {
		return e.h
	}
	e = &vecEntry{labelValues: append([]string(nil), labelValues...), h: &Histogram{}}
	v.m[key] = e
	return e.h
}

// LabeledSnapshot is one (label values, snapshot) pair of a vector.
type LabeledSnapshot struct {
	LabelValues []string
	Snapshot    HistogramSnapshot
}

// Snapshots returns every series of the vector, sorted by label values so
// exports are deterministic.
func (v *HistogramVec) Snapshots() []LabeledSnapshot {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	entries := make(map[string]*vecEntry, len(v.m))
	for k, e := range v.m {
		keys = append(keys, k)
		entries[k] = e
	}
	v.mu.RUnlock()
	sortStrings(keys)
	out := make([]LabeledSnapshot, 0, len(keys))
	for _, k := range keys {
		e := entries[k]
		out = append(out, LabeledSnapshot{LabelValues: e.labelValues, Snapshot: e.h.Snapshot()})
	}
	return out
}

// joinKey builds the map key; \xff never appears in route/model/outcome
// labels.
func joinKey(values []string) string {
	n := 0
	for _, s := range values {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, 0xff)
		}
		b = append(b, s...)
	}
	return string(b)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// roundSig rounds x to a few significant digits for human-facing reports
// (quantile estimates carry no more precision than their bucket width).
func roundSig(x float64, digits int) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	mag := math.Pow(10, float64(digits)-math.Ceil(math.Log10(math.Abs(x))))
	return math.Round(x*mag) / mag
}

// MsRound converts seconds to milliseconds rounded to 4 significant
// digits — the serving reports' display unit.
func MsRound(seconds float64) float64 { return roundSig(seconds*1e3, 4) }
