package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog is a structured slow-query log: requests whose wall time exceeds
// the threshold are appended to the writer as single JSON lines, trace
// included, so tail latency is explainable after the fact (which stage
// burned the time, how many subsets the search examined, whether the cache
// or singleflight ever got a look in). A nil *SlowLog is a no-op, so the
// server wires it unconditionally.
type SlowLog struct {
	w         io.Writer
	threshold time.Duration

	mu      sync.Mutex
	written atomic.Int64
	errors  atomic.Int64
}

// NewSlowLog creates a slow log writing entries above threshold to w. It
// returns nil — the disabled log — when w is nil or threshold <= 0.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold returns the configured slow threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// SlowEntry is one slow-query log line.
type SlowEntry struct {
	Time    string     `json:"ts"`
	Route   string     `json:"route"`
	Dataset string     `json:"dataset,omitempty"`
	Model   string     `json:"model,omitempty"`
	Outcome string     `json:"outcome"`
	Status  int        `json:"status"`
	DurMs   float64    `json:"durMs"`
	Trace   *TraceJSON `json:"trace,omitempty"`
}

// Record writes entry if dur exceeds the threshold. The timestamp and
// duration fields are filled in here; writes are serialized so concurrent
// slow requests never interleave bytes within a line.
func (l *SlowLog) Record(dur time.Duration, entry SlowEntry) {
	if l == nil || dur < l.threshold {
		return
	}
	entry.Time = time.Now().UTC().Format(time.RFC3339Nano)
	entry.DurMs = MsRound(dur.Seconds())
	line, err := json.Marshal(entry)
	if err != nil {
		l.errors.Add(1)
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(line)
	l.mu.Unlock()
	if werr != nil {
		l.errors.Add(1)
		return
	}
	l.written.Add(1)
}

// Written returns the number of entries successfully written.
func (l *SlowLog) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Load()
}

// Errors returns the number of entries dropped by marshal/write failures.
func (l *SlowLog) Errors() int64 {
	if l == nil {
		return 0
	}
	return l.errors.Load()
}
