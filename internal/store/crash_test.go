package store_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/faultinject"
	"github.com/crsky/crsky/internal/store"
)

// crashOp is one step of a crash-matrix scenario.
type crashOp struct {
	kind  string // put | del | compact
	name  string
	model string
	data  []byte
}

// scenario covers every protocol phase the ISSUE names as a crash point:
// WAL appends, snapshot writes and renames, deletions, and a compaction,
// across payloads tagged with all three dataset models.
func scenario() []crashOp {
	return []crashOp{
		{kind: "put", name: "cert", model: "certain", data: []byte("certain-v1-points")},
		{kind: "put", name: "samp", model: "sample", data: bytes.Repeat([]byte("sample-v1"), 37)},
		{kind: "put", name: "pdf", model: "pdf", data: []byte("pdf-v1-specs")},
		{kind: "put", name: "cert", model: "certain", data: []byte("certain-v2-points-replaced")},
		{kind: "del", name: "samp"},
		{kind: "compact"},
		{kind: "put", name: "samp", model: "sample", data: []byte("sample-v2-reborn")},
		{kind: "del", name: "pdf"},
		{kind: "put", name: "late", model: "certain", data: bytes.Repeat([]byte("late"), 91)},
	}
}

// apply mutates the model state map with one op.
func apply(state map[string]store.Dataset, op crashOp) {
	switch op.kind {
	case "put":
		state[op.name] = store.Dataset{Name: op.name, Model: op.model, Data: op.data}
	case "del":
		delete(state, op.name)
	}
}

func cloneState(m map[string]store.Dataset) map[string]store.Dataset {
	out := make(map[string]store.Dataset, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func statesEqual(a, b map[string]store.Dataset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.Model != bv.Model || !bytes.Equal(av.Data, bv.Data) {
			return false
		}
	}
	return true
}

func describe(m map[string]store.Dataset) string {
	s := "{"
	for k, v := range m {
		s += fmt.Sprintf("%s=%s/%dB ", k, v.Model, len(v.Data))
	}
	return s + "}"
}

// runScenario executes the ops against st, stopping at the first error
// (the simulated crash). It returns the state after the last acknowledged
// op and the in-flight op (nil if all ops acked).
func runScenario(st *store.Store, ops []crashOp) (acked map[string]store.Dataset, inflight *crashOp) {
	acked = make(map[string]store.Dataset)
	for i := range ops {
		op := ops[i]
		var err error
		switch op.kind {
		case "put":
			err = st.Put(op.name, op.model, op.data)
		case "del":
			err = st.Delete(op.name)
		case "compact":
			err = st.Compact()
		}
		if err != nil {
			return acked, &ops[i]
		}
		apply(acked, op)
	}
	return acked, nil
}

// TestCrashRecoveryMatrix loops a simulated kill-the-process crash across
// EVERY filesystem mutation of the snapshot+WAL protocol — WAL header and
// record writes, fsyncs, snapshot temp writes, renames, removals, and the
// compaction swap — in both clean-cut and torn-final-write modes, and
// asserts the recovery invariant: the reopened store holds exactly the
// acknowledged state, except that the single in-flight operation may have
// landed (new) or not (old) — never a hybrid, never a lost ack.
func TestCrashRecoveryMatrix(t *testing.T) {
	ops := scenario()

	// Size the crash loop: count every mutation op of a clean run.
	countDir := t.TempDir()
	counter := faultinject.NewCrashFS(nil, -1, false, 1)
	st, _, err := store.Open(countDir, store.Options{Fsync: true, FS: counter})
	if err != nil {
		t.Fatalf("counting open: %v", err)
	}
	if acked, inflight := runScenario(st, ops); inflight != nil {
		t.Fatalf("counting run crashed: %+v (acked %v)", inflight, acked)
	}
	st.Close()
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("scenario exercises only %d mutations — too few for a matrix", total)
	}

	// A budget of k crashes the (k+1)-th mutation, so budgets 0..total-1
	// place the crash on every mutation of the protocol exactly once.
	for _, torn := range []bool{false, true} {
		for crash := int64(0); crash < total; crash++ {
			name := fmt.Sprintf("torn=%v/crash=%d", torn, crash)
			dir := t.TempDir()
			cfs := faultinject.NewCrashFS(nil, crash, torn, crash*7+3)

			var acked map[string]store.Dataset
			var inflight *crashOp
			st, _, err := store.Open(dir, store.Options{Fsync: true, FS: cfs})
			if err != nil {
				// Crash during the very first open: nothing was ever
				// acknowledged, so recovery must come up empty.
				acked = map[string]store.Dataset{}
			} else {
				acked, inflight = runScenario(st, ops)
				st.Close()
			}
			if !cfs.Crashed() {
				t.Fatalf("%s: crash point never fired", name)
			}

			// Reboot: recover on a clean filesystem.
			rec, rep, err := store.Open(dir, store.Options{Fsync: true})
			if err != nil {
				t.Fatalf("%s: recovery open failed: %v", name, err)
			}
			got := make(map[string]store.Dataset)
			for _, ds := range rec.Datasets() {
				got[ds.Name] = ds
			}
			rec.Close()

			okOld := statesEqual(got, acked)
			okNew := false
			if inflight != nil {
				withNew := cloneState(acked)
				apply(withNew, *inflight)
				okNew = statesEqual(got, withNew)
			}
			if !okOld && !okNew {
				t.Fatalf("%s: recovered state is neither old nor new\n  acked:    %s\n  inflight: %+v\n  got:      %s\n  report:   %+v",
					name, describe(acked), inflight, describe(got), rep)
			}

			// A second recovery of the repaired directory must be clean
			// and idempotent.
			rec2, rep2, err := store.Open(dir, store.Options{Fsync: true})
			if err != nil {
				t.Fatalf("%s: second recovery failed: %v", name, err)
			}
			got2 := make(map[string]store.Dataset)
			for _, ds := range rec2.Datasets() {
				got2[ds.Name] = ds
			}
			rec2.Close()
			if rep2.WALTorn {
				t.Errorf("%s: second recovery still sees a torn WAL", name)
			}
			if !statesEqual(got, got2) {
				t.Errorf("%s: recovery not idempotent: %s vs %s", name, describe(got), describe(got2))
			}
		}
	}
}

// TestCrashRecoveryRandomizedSequences drives randomized op sequences ×
// randomized crash points (seeded, replayable) as a matrix densifier over
// the deterministic scenario above.
func TestCrashRecoveryRandomizedSequences(t *testing.T) {
	models := []string{"certain", "sample", "pdf"}
	names := []string{"a", "b", "c"}
	const rounds = 24
	for round := 0; round < rounds; round++ {
		seed := int64(round + 1)
		rng := rand.New(rand.NewSource(seed))
		var ops []crashOp
		n := 4 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, crashOp{kind: "del", name: name})
			case 1:
				ops = append(ops, crashOp{kind: "compact"})
			default:
				payload := make([]byte, 1+rng.Intn(200))
				rng.Read(payload)
				ops = append(ops, crashOp{kind: "put", name: name,
					model: models[rng.Intn(len(models))], data: payload})
			}
		}

		countDir := t.TempDir()
		counter := faultinject.NewCrashFS(nil, -1, false, seed)
		st, _, err := store.Open(countDir, store.Options{Fsync: true, FS: counter})
		if err != nil {
			t.Fatal(err)
		}
		runScenario(st, ops)
		st.Close()
		total := counter.Ops()

		crash := rng.Int63n(total)
		torn := rng.Intn(2) == 1
		dir := t.TempDir()
		cfs := faultinject.NewCrashFS(nil, crash, torn, seed*31)
		var acked map[string]store.Dataset
		var inflight *crashOp
		st2, _, err := store.Open(dir, store.Options{Fsync: true, FS: cfs})
		if err != nil {
			acked = map[string]store.Dataset{}
		} else {
			acked, inflight = runScenario(st2, ops)
			st2.Close()
		}

		rec, _, err := store.Open(dir, store.Options{Fsync: true})
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		got := make(map[string]store.Dataset)
		for _, ds := range rec.Datasets() {
			got[ds.Name] = ds
		}
		rec.Close()

		okOld := statesEqual(got, acked)
		okNew := false
		if inflight != nil {
			withNew := cloneState(acked)
			apply(withNew, *inflight)
			okNew = statesEqual(got, withNew)
		}
		if !okOld && !okNew {
			t.Fatalf("seed %d crash %d torn %v: recovered %s, acked %s, inflight %+v",
				seed, crash, torn, describe(got), describe(acked), inflight)
		}
	}
}
