package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
)

// walOp enumerates WAL record kinds.
type walOp uint8

const (
	opRegister walOp = 1 // full dataset registration (Data = payload)
	opRemove   walOp = 2 // dataset removal
	opEpoch    walOp = 3 // compaction marker: sequence floor, no dataset
	opInsert   walOp = 4 // incremental object insert (Data = object payload)
	opDelete   walOp = 5 // incremental object delete (ObjID = tombstone)
)

func (op walOp) String() string {
	switch op {
	case opRegister:
		return "register"
	case opRemove:
		return "remove"
	case opEpoch:
		return "epoch"
	case opInsert:
		return "insert"
	case opDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// walRecord is one logged operation. Register records carry the full
// encoded dataset so a crash after the WAL append but before the snapshot
// write loses nothing; insert records likewise carry the encoded object.
// ObjID was added for the mutation records — gob leaves it zero when
// decoding records written before it existed, so the format version is
// unchanged.
type walRecord struct {
	Seq   uint64
	Op    walOp
	Name  string
	Model string
	Data  []byte
	ObjID int
}

// walHeader returns the 12-byte file header: magic + format version.
func walHeader() []byte {
	b := make([]byte, 0, len(walMagic)+4)
	b = append(b, walMagic...)
	return binary.BigEndian.AppendUint32(b, formatVersion)
}

// encodeWALRecord frames one record: payload length, CRC32C over the
// payload, then the gob payload. The CRC covers everything that varies, so
// a torn or bit-flipped record never decodes.
func encodeWALRecord(rec walRecord) ([]byte, error) {
	var pbuf bytes.Buffer
	if err := gob.NewEncoder(&pbuf).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encode wal record: %w", err)
	}
	payload := pbuf.Bytes()
	b := make([]byte, 0, 8+len(payload))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, checksum(payload))
	return append(b, payload...), nil
}

// decodeWALRecord parses one framed record payload (after the length+CRC
// header has been verified). Exposed to the fuzz target through
// replayWAL.
func decodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("store: decode wal record: %w", err)
	}
	switch rec.Op {
	case opRegister:
		if rec.Name == "" || rec.Model == "" {
			return rec, fmt.Errorf("store: register record missing name/model")
		}
	case opRemove:
		if rec.Name == "" {
			return rec, fmt.Errorf("store: remove record missing name")
		}
	case opInsert:
		if rec.Name == "" {
			return rec, fmt.Errorf("store: insert record missing name")
		}
		if len(rec.Data) == 0 {
			return rec, fmt.Errorf("store: insert record missing object payload")
		}
		if rec.ObjID < 0 {
			return rec, fmt.Errorf("store: insert record with negative object ID %d", rec.ObjID)
		}
	case opDelete:
		if rec.Name == "" {
			return rec, fmt.Errorf("store: delete record missing name")
		}
		if rec.ObjID < 0 {
			return rec, fmt.Errorf("store: delete record with negative object ID %d", rec.ObjID)
		}
	case opEpoch:
	default:
		return rec, fmt.Errorf("store: unknown wal op %d", rec.Op)
	}
	return rec, nil
}

// replayWAL decodes every intact record of a WAL image. Replay is
// truncation-tolerant: the first record that is short, fails its CRC, or
// does not decode ends the replay there — goodLen is the byte offset of
// the last intact record's end (the truncation point for repair) and torn
// reports whether anything was dropped. A file whose HEADER is bad returns
// an error instead: nothing in it can be trusted.
func replayWAL(b []byte) (recs []walRecord, goodLen int64, torn bool, err error) {
	if len(b) == 0 {
		return nil, 0, false, nil
	}
	hdr := walHeader()
	if len(b) < len(hdr) {
		return nil, 0, false, fmt.Errorf("store: wal header truncated (%d bytes)", len(b))
	}
	if !bytes.Equal(b[:len(walMagic)], []byte(walMagic)) {
		return nil, 0, false, fmt.Errorf("store: bad wal magic %q", b[:len(walMagic)])
	}
	if ver := binary.BigEndian.Uint32(b[len(walMagic):]); ver != formatVersion {
		return nil, 0, false, fmt.Errorf("store: unsupported wal version %d", ver)
	}
	off := len(hdr)
	for off < len(b) {
		if off+8 > len(b) {
			return recs, int64(off), true, nil
		}
		ln := binary.BigEndian.Uint32(b[off:])
		crc := binary.BigEndian.Uint32(b[off+4:])
		if ln == 0 || ln > maxSectionLen || off+8+int(ln) > len(b) {
			return recs, int64(off), true, nil
		}
		payload := b[off+8 : off+8+int(ln)]
		if checksum(payload) != crc {
			return recs, int64(off), true, nil
		}
		rec, derr := decodeWALRecord(payload)
		if derr != nil {
			return recs, int64(off), true, nil
		}
		recs = append(recs, rec)
		off += 8 + int(ln)
	}
	return recs, int64(off), false, nil
}
