package store

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL decoder: replay must
// never panic, must terminate, and must obey its contract — goodLen within
// the input, records only from intact frames, and replay(prefix up to
// goodLen) reproducing exactly the same records (truncation tolerance).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(walHeader())
	seeds := []walRecord{
		{Seq: 1, Op: opRegister, Name: "a", Model: "certain", Data: []byte("x")},
		{Seq: 2, Op: opInsert, Name: "a", ObjID: 3, Data: []byte("obj")},
		{Seq: 3, Op: opDelete, Name: "a", ObjID: 1},
	}
	for _, rec := range seeds {
		if frame, err := encodeWALRecord(rec); err == nil {
			whole := append(walHeader(), frame...)
			f.Add(whole)
			f.Add(whole[:len(whole)-3]) // torn tail
			flipped := append([]byte(nil), whole...)
			flipped[len(flipped)-1] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, goodLen, torn, err := replayWAL(b)
		if err != nil {
			return // condemned header: nothing else to check
		}
		if goodLen < 0 || goodLen > int64(len(b)) {
			t.Fatalf("goodLen %d out of range (input %d bytes)", goodLen, len(b))
		}
		if torn != (goodLen < int64(len(b))) {
			t.Fatalf("torn=%v but goodLen=%d of %d", torn, goodLen, len(b))
		}
		for _, rec := range recs {
			switch rec.Op {
			case opRegister:
				if rec.Name == "" || rec.Model == "" {
					t.Fatalf("register record with empty name/model survived decode: %+v", rec)
				}
			case opRemove:
				if rec.Name == "" {
					t.Fatalf("remove record with empty name survived decode: %+v", rec)
				}
			case opInsert:
				if rec.Name == "" || len(rec.Data) == 0 || rec.ObjID < 0 {
					t.Fatalf("malformed insert record survived decode: %+v", rec)
				}
			case opDelete:
				if rec.Name == "" || rec.ObjID < 0 {
					t.Fatalf("malformed delete record survived decode: %+v", rec)
				}
			}
		}
		// Truncation tolerance: replaying the intact prefix yields the
		// identical record sequence with no tear.
		recs2, goodLen2, torn2, err2 := replayWAL(b[:goodLen])
		if err2 != nil || torn2 || goodLen2 != goodLen || len(recs2) != len(recs) {
			t.Fatalf("prefix replay mismatch: err=%v torn=%v len=%d/%d recs=%d/%d",
				err2, torn2, goodLen2, goodLen, len(recs2), len(recs))
		}
	})
}

// FuzzSnapshotDecode hammers the snapshot verifier: arbitrary bytes must
// never panic, and any input that verifies must re-encode to an equivalent
// snapshot — including the optional mutation-log section.
func FuzzSnapshotDecode(f *testing.F) {
	if b, err := encodeSnapshot(snapMeta{Name: "d", Model: "sample", Seq: 7}, []byte("payload"), nil); err == nil {
		f.Add(b)
		f.Add(b[:len(b)-1])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x04
		f.Add(flipped)
	}
	if b, err := encodeSnapshot(snapMeta{Name: "d", Model: "sample", Seq: 9}, []byte("payload"), []Mutation{
		{Op: MutInsert, ID: 4, Data: []byte("obj"), Seq: 8},
		{Op: MutDelete, ID: 2, Seq: 9},
	}); err == nil {
		f.Add(b)
		f.Add(b[:len(b)-1])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)-2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		meta, data, muts, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		for i, m := range muts {
			if m.validate() != nil {
				t.Fatalf("invalid mutation %d survived decode: %+v", i, m)
			}
		}
		re, err := encodeSnapshot(meta, data, muts)
		if err != nil {
			t.Fatalf("verified snapshot failed to re-encode: %v", err)
		}
		meta2, data2, muts2, err := decodeSnapshot(re)
		if err != nil || meta2 != meta || !bytes.Equal(data, data2) {
			t.Fatalf("snapshot round-trip drift: %v %+v vs %+v", err, meta2, meta)
		}
		if len(muts2) != len(muts) {
			t.Fatalf("mutation log drift: %d vs %d entries", len(muts2), len(muts))
		}
		for i := range muts {
			if muts2[i].Op != muts[i].Op || muts2[i].ID != muts[i].ID ||
				muts2[i].Seq != muts[i].Seq || !bytes.Equal(muts2[i].Data, muts[i].Data) {
				t.Fatalf("mutation %d drift: %+v vs %+v", i, muts2[i], muts[i])
			}
		}
	})
}
