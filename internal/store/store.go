package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Options tunes a Store. The zero value is a safe default except Fsync,
// which callers should set explicitly (crskyd's -fsync flag defaults on).
type Options struct {
	// Fsync makes every WAL append and snapshot write a durability
	// barrier (fsync file, then fsync directory on renames). Off, writes
	// still order correctly but a power loss may drop acknowledged
	// operations — suitable for tests and throwaway deployments only.
	Fsync bool
	// CompactThreshold is the WAL size in bytes beyond which Put
	// auto-compacts (default 8 MiB; negative disables auto-compaction).
	CompactThreshold int64
	// FS overrides the filesystem (fault injection; default the OS).
	FS FS
}

// Dataset is one durable dataset: an opaque encoded payload plus the
// model tag the server uses to decode it, plus the ordered log of object
// mutations committed since the base payload was registered. The durable
// state is the base replayed through Muts in order; a re-register (Put)
// resets the log.
type Dataset struct {
	Name  string
	Model string
	Data  []byte
	// Muts is the ordered mutation log over Data, oldest first.
	Muts []Mutation
	// Seq is the WAL sequence of the operation that produced this state.
	Seq uint64
}

// CorruptFile describes one quarantined file.
type CorruptFile struct {
	// Path is where the file now lives (under corrupt/).
	Path string `json:"path"`
	// Dataset is the dataset name the file belonged to, when known.
	Dataset string `json:"dataset,omitempty"`
	// Reason is the verification failure that condemned it.
	Reason string `json:"reason"`
}

// RecoveryReport summarizes what Open found and did.
type RecoveryReport struct {
	// Datasets are the recovered dataset names, sorted.
	Datasets []string
	// SnapshotsLoaded counts snapshots that verified clean.
	SnapshotsLoaded int
	// WALReplayed counts WAL records applied over the snapshots.
	WALReplayed int
	// WALTorn reports a torn/corrupt WAL tail that was truncated away.
	WALTorn bool
	// WALTruncatedAt is the byte offset the WAL was cut back to.
	WALTruncatedAt int64
	// Quarantined lists files moved to corrupt/ during recovery.
	Quarantined []CorruptFile
}

// Stats is the store's observability snapshot.
type Stats struct {
	Dir              string        `json:"dir"`
	Datasets         int           `json:"datasets"`
	WALBytes         int64         `json:"walBytes"`
	WALAppends       int64         `json:"walAppends"`
	SnapshotsWritten int64         `json:"snapshotsWritten"`
	Compactions      int64         `json:"compactions"`
	Fsync            bool          `json:"fsync"`
	CorruptTotal     int64         `json:"corruptTotal"`
	Quarantined      []CorruptFile `json:"quarantined,omitempty"`
}

// Store is a crash-safe dataset store. The commit point of every
// operation is its fsynced WAL append; snapshots are checkpoints that
// keep the WAL short and recovery fast. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	fs   FS
	opts Options

	mu       sync.Mutex
	wal      File
	walBytes int64
	nextSeq  uint64
	// live maps name -> current durable dataset; snapSeq tracks the Seq
	// checkpointed in each dataset's snapshot file (so compaction knows
	// which snapshots are stale).
	live    map[string]*Dataset
	snapSeq map[string]uint64

	corruptMu   sync.Mutex
	corrupt     []CorruptFile
	corruptN    atomic.Int64
	walAppends  atomic.Int64
	snapsWrit   atomic.Int64
	compactions atomic.Int64
}

func (s *Store) walPath() string     { return filepath.Join(s.dir, "wal.log") }
func (s *Store) datasetsDir() string { return filepath.Join(s.dir, "datasets") }
func (s *Store) corruptDir() string  { return filepath.Join(s.dir, "corrupt") }
func (s *Store) snapPath(name string) string {
	return filepath.Join(s.datasetsDir(), escapeName(name)+".snap")
}

// Open loads (or initializes) the store at dir, running crash recovery:
// verify and load every snapshot, quarantine the ones that fail their
// checksums, replay the WAL over them, truncate a torn WAL tail, and
// re-checkpoint anything the WAL knew that the snapshots did not. A
// corrupt file never aborts the open — the healthy datasets keep serving
// and the sick ones are surfaced in the report.
func Open(dir string, opts Options) (*Store, *RecoveryReport, error) {
	if opts.FS == nil {
		opts.FS = OS
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = 8 << 20
	}
	s := &Store{
		dir:     dir,
		fs:      opts.FS,
		opts:    opts,
		live:    make(map[string]*Dataset),
		snapSeq: make(map[string]uint64),
		nextSeq: 1,
	}
	rep := &RecoveryReport{}
	for _, d := range []string{dir, s.datasetsDir(), s.corruptDir()} {
		if err := s.fs.MkdirAll(d); err != nil {
			return nil, nil, fmt.Errorf("store: mkdir %s: %w", d, err)
		}
	}
	if err := s.recover(rep); err != nil {
		return nil, nil, err
	}
	// Open the WAL for appending, creating it with a header if fresh.
	if err := s.openWAL(); err != nil {
		return nil, nil, err
	}
	for name := range s.live {
		rep.Datasets = append(rep.Datasets, name)
	}
	sort.Strings(rep.Datasets)
	rep.Quarantined = append([]CorruptFile(nil), s.corruptList()...)
	return s, rep, nil
}

func (s *Store) recover(rep *RecoveryReport) error {
	// Pass 1: snapshots. Leftover temp files are debris from an
	// interrupted write — the rename never happened, so they are dead.
	names, err := s.fs.ReadDir(s.datasetsDir())
	if err != nil {
		return fmt.Errorf("store: read datasets dir: %w", err)
	}
	for _, fn := range names {
		path := filepath.Join(s.datasetsDir(), fn)
		if strings.HasSuffix(fn, ".tmp") {
			_ = s.fs.Remove(path)
			continue
		}
		if !strings.HasSuffix(fn, ".snap") {
			continue
		}
		b, err := s.fs.ReadFile(path)
		if err != nil {
			s.quarantineFile(path, snapStemName(fn), fmt.Sprintf("unreadable: %v", err))
			continue
		}
		meta, data, muts, err := decodeSnapshot(b)
		if err != nil {
			s.quarantineFile(path, snapStemName(fn), err.Error())
			continue
		}
		rep.SnapshotsLoaded++
		cur, ok := s.live[meta.Name]
		if !ok || meta.Seq > cur.Seq {
			s.live[meta.Name] = &Dataset{Name: meta.Name, Model: meta.Model, Data: data, Muts: muts, Seq: meta.Seq}
			s.snapSeq[meta.Name] = meta.Seq
		}
		if meta.Seq >= s.nextSeq {
			s.nextSeq = meta.Seq + 1
		}
	}

	// Pass 2: WAL replay. A bad header condemns the whole file (nothing
	// after it can be trusted); a bad record merely ends the replay at
	// the last intact one — the truncation-tolerant path a torn append
	// leaves behind.
	walB, err := s.fs.ReadFile(s.walPath())
	if err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("store: read wal: %w", err)
		}
		walB = nil
	}
	recs, goodLen, torn, err := replayWAL(walB)
	if err != nil {
		s.quarantineFile(s.walPath(), "", err.Error())
		goodLen, torn = 0, false
	}
	removed := make(map[string]uint64)
	for _, rec := range recs {
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
		switch rec.Op {
		case opRegister:
			cur, ok := s.live[rec.Name]
			if !ok || rec.Seq > cur.Seq {
				s.live[rec.Name] = &Dataset{Name: rec.Name, Model: rec.Model, Data: rec.Data, Seq: rec.Seq}
				rep.WALReplayed++
			}
			if rmSeq, ok := removed[rec.Name]; ok && rec.Seq > rmSeq {
				delete(removed, rec.Name)
			}
		case opRemove:
			if cur, ok := s.live[rec.Name]; ok && rec.Seq > cur.Seq {
				delete(s.live, rec.Name)
				removed[rec.Name] = rec.Seq
				rep.WALReplayed++
			}
		case opInsert, opDelete:
			// A mutation record for a dataset we do not have (its register
			// record compacted away and its snapshot rotted, or a foreign
			// WAL) is surfaced as corruption but never aborts recovery —
			// healthy datasets keep serving.
			cur, ok := s.live[rec.Name]
			if !ok {
				s.noteCorrupt(s.walPath(), rec.Name,
					fmt.Sprintf("wal %s record seq %d for unknown dataset", rec.Op, rec.Seq))
				continue
			}
			if rec.Seq <= cur.Seq {
				continue // already folded into the snapshot
			}
			m := Mutation{Op: MutInsert, ID: rec.ObjID, Data: rec.Data, Seq: rec.Seq}
			if rec.Op == opDelete {
				m = Mutation{Op: MutDelete, ID: rec.ObjID, Seq: rec.Seq}
			}
			s.live[rec.Name] = cur.withMutation(m)
			rep.WALReplayed++
		case opEpoch:
			// Sequence floor only.
		}
	}
	if torn {
		rep.WALTorn = true
		rep.WALTruncatedAt = goodLen
		if err := s.fs.Truncate(s.walPath(), goodLen); err != nil {
			return fmt.Errorf("store: truncate torn wal: %w", err)
		}
	}

	// Pass 3: reconcile snapshots with the replayed state so every live
	// dataset is checkpointed and no removed dataset can resurrect after
	// a future compaction.
	for name, ds := range s.live {
		if s.snapSeq[name] != ds.Seq {
			if err := s.writeSnapshot(ds); err != nil {
				return fmt.Errorf("store: re-checkpoint %q: %w", name, err)
			}
		}
	}
	for name := range removed {
		if _, ok := s.snapSeq[name]; ok {
			_ = s.fs.Remove(s.snapPath(name))
			delete(s.snapSeq, name)
		}
	}
	return nil
}

func (s *Store) openWAL() error {
	size, err := s.fs.Stat(s.walPath())
	if err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("store: stat wal: %w", err)
		}
		size = 0
	}
	f, err := s.fs.OpenAppend(s.walPath())
	if err != nil {
		return fmt.Errorf("store: open wal: %w", err)
	}
	if size == 0 {
		if _, err := f.Write(walHeader()); err != nil {
			f.Close()
			return fmt.Errorf("store: write wal header: %w", err)
		}
		if s.opts.Fsync {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("store: sync wal header: %w", err)
			}
		}
		size = int64(len(walHeader()))
	}
	s.wal = f
	s.walBytes = size
	return nil
}

// snapStemName best-effort recovers the dataset name from a snapshot
// filename (for reporting on files too corrupt to read).
func snapStemName(fn string) string {
	stem := strings.TrimSuffix(fn, ".snap")
	if name, err := unescapeName(stem); err == nil {
		return name
	}
	return stem
}

// appendWAL frames, writes, and (per policy) fsyncs one record. Caller
// holds s.mu.
func (s *Store) appendWAL(rec walRecord) error {
	frame, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if s.opts.Fsync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	s.walBytes += int64(len(frame))
	s.walAppends.Add(1)
	return nil
}

// writeSnapshot checkpoints one dataset: temp file, fsync, atomic rename,
// fsync directory. A crash at any point leaves either the old snapshot or
// the new one — never a partially written file under the live name.
func (s *Store) writeSnapshot(ds *Dataset) error {
	b, err := encodeSnapshot(snapMeta{Name: ds.Name, Model: ds.Model, Seq: ds.Seq}, ds.Data, ds.Muts)
	if err != nil {
		return err
	}
	final := s.snapPath(ds.Name)
	tmp := final + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if s.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync %s: %w", tmp, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	if s.opts.Fsync {
		_ = s.fs.SyncDir(s.datasetsDir())
	}
	s.snapSeq[ds.Name] = ds.Seq
	s.snapsWrit.Add(1)
	return nil
}

// Put durably registers (or replaces) a dataset. The operation commits at
// the WAL append; the snapshot write that follows is a checkpoint, so a
// failure there (or a crash before it) still recovers the dataset from
// the WAL on the next Open.
func (s *Store) Put(name, model string, data []byte) error {
	if name == "" {
		return fmt.Errorf("store: empty dataset name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	seq := s.nextSeq
	rec := walRecord{Seq: seq, Op: opRegister, Name: name, Model: model, Data: data}
	if err := s.appendWAL(rec); err != nil {
		return err
	}
	s.nextSeq = seq + 1
	ds := &Dataset{Name: name, Model: model, Data: data, Seq: seq}
	s.live[name] = ds
	// Checkpoint failures are deliberately not fatal: the WAL holds the
	// committed operation and the next Open re-checkpoints it.
	_ = s.writeSnapshot(ds)
	if s.opts.CompactThreshold > 0 && s.walBytes > s.opts.CompactThreshold {
		_ = s.compactLocked()
	}
	return nil
}

// Delete durably removes a dataset. Removing an absent name is a no-op.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.live[name]; !ok {
		return nil
	}
	seq := s.nextSeq
	if err := s.appendWAL(walRecord{Seq: seq, Op: opRemove, Name: name}); err != nil {
		return err
	}
	s.nextSeq = seq + 1
	delete(s.live, name)
	_ = s.fs.Remove(s.snapPath(name))
	delete(s.snapSeq, name)
	return nil
}

// Get returns the durable payload of one dataset.
func (s *Store) Get(name string) (Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.live[name]
	if !ok {
		return Dataset{}, false
	}
	return *ds, true
}

// Datasets returns every durable dataset, sorted by name.
func (s *Store) Datasets() []Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Dataset, 0, len(s.live))
	for _, ds := range s.live {
		out = append(out, *ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Compact checkpoints every live dataset and swaps in a fresh WAL holding
// only an epoch record (the sequence floor). Crash-safe: the swap is an
// atomic rename performed only after every snapshot is durable, so a
// crash on either side of it recovers the identical state.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	for _, ds := range s.live {
		if s.snapSeq[ds.Name] != ds.Seq {
			if err := s.writeSnapshot(ds); err != nil {
				return err
			}
		}
	}
	tmp := s.walPath() + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create wal tmp: %w", err)
	}
	frame, err := encodeWALRecord(walRecord{Seq: s.nextSeq, Op: opEpoch})
	if err != nil {
		f.Close()
		return err
	}
	body := append(walHeader(), frame...)
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("store: write wal tmp: %w", err)
	}
	if s.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync wal tmp: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close wal tmp: %w", err)
	}
	// The old append handle is closed before the rename so no write can
	// land on the orphaned inode afterwards.
	_ = s.wal.Close()
	s.wal = nil
	if err := s.fs.Rename(tmp, s.walPath()); err != nil {
		// Reopen the old WAL so the store stays usable.
		if oerr := s.openWAL(); oerr != nil {
			return fmt.Errorf("store: wal swap failed (%v) and reopen failed: %w", err, oerr)
		}
		return fmt.Errorf("store: swap wal: %w", err)
	}
	if s.opts.Fsync {
		_ = s.fs.SyncDir(s.dir)
	}
	if err := s.openWAL(); err != nil {
		return err
	}
	s.nextSeq++ // the epoch consumed a sequence number
	s.compactions.Add(1)
	return nil
}

// Quarantine moves a dataset's snapshot into corrupt/ and drops it from
// the durable set — the path the server takes when a payload verifies at
// the checksum layer but fails to decode or rebuild an engine.
func (s *Store) Quarantine(name, reason string) error {
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	_, existed := s.live[name]
	delete(s.live, name)
	delete(s.snapSeq, name)
	seq := s.nextSeq
	var apErr error
	if existed {
		// Log the removal so a WAL register record cannot resurrect the
		// quarantined payload on the next recovery.
		if apErr = s.appendWAL(walRecord{Seq: seq, Op: opRemove, Name: name}); apErr == nil {
			s.nextSeq = seq + 1
		}
	}
	s.mu.Unlock()
	s.quarantineFile(s.snapPath(name), name, reason)
	return apErr
}

// quarantineFile moves path under corrupt/, never overwriting an earlier
// quarantined file of the same name.
func (s *Store) quarantineFile(path, dataset, reason string) {
	base := filepath.Base(path)
	dst := filepath.Join(s.corruptDir(), base)
	for i := 1; ; i++ {
		if _, err := s.fs.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(s.corruptDir(), fmt.Sprintf("%s.%d", base, i))
	}
	if err := s.fs.Rename(path, dst); err != nil {
		dst = path // could not move; report it where it lies
	}
	s.noteCorrupt(dst, dataset, reason)
}

// noteCorrupt records a corruption finding without moving any file — for
// problems inside a file that must stay where it is (e.g. an orphan
// mutation record in the shared WAL).
func (s *Store) noteCorrupt(path, dataset, reason string) {
	s.corruptMu.Lock()
	s.corrupt = append(s.corrupt, CorruptFile{Path: path, Dataset: dataset, Reason: reason})
	s.corruptMu.Unlock()
	s.corruptN.Add(1)
}

func (s *Store) corruptList() []CorruptFile {
	s.corruptMu.Lock()
	defer s.corruptMu.Unlock()
	return append([]CorruptFile(nil), s.corrupt...)
}

// CorruptTotal counts files quarantined since (and during) Open.
func (s *Store) CorruptTotal() int64 { return s.corruptN.Load() }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.live)
	wb := s.walBytes
	s.mu.Unlock()
	return Stats{
		Dir:              s.dir,
		Datasets:         n,
		WALBytes:         wb,
		WALAppends:       s.walAppends.Load(),
		SnapshotsWritten: s.snapsWrit.Load(),
		Compactions:      s.compactions.Load(),
		Fsync:            s.opts.Fsync,
		CorruptTotal:     s.corruptN.Load(),
		Quarantined:      s.corruptList(),
	}
}

// Close releases the WAL handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
