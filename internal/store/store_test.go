package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Store, *RecoveryReport) {
	t.Helper()
	st, rep, err := Open(dir, Options{Fsync: false})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rep
}

func TestPutGetDeleteReopen(t *testing.T) {
	dir := t.TempDir()
	st, rep := mustOpen(t, dir)
	if len(rep.Datasets) != 0 || rep.WALTorn {
		t.Fatalf("fresh open report = %+v", rep)
	}
	put := func(name, model, data string) {
		t.Helper()
		if err := st.Put(name, model, []byte(data)); err != nil {
			t.Fatalf("Put(%s): %v", name, err)
		}
	}
	put("a", "certain", "payload-a-v1")
	put("b", "sample", "payload-b")
	put("a", "certain", "payload-a-v2") // replace
	put("c", "pdf", "payload-c")
	if err := st.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := st.Delete("nope"); err != nil { // absent: no-op
		t.Fatalf("Delete absent: %v", err)
	}
	if ds, ok := st.Get("a"); !ok || string(ds.Data) != "payload-a-v2" || ds.Model != "certain" {
		t.Fatalf("Get(a) = %+v, %v", ds, ok)
	}
	st.Close()

	st2, rep2 := mustOpen(t, dir)
	defer st2.Close()
	if got := strings.Join(rep2.Datasets, ","); got != "a,c" {
		t.Fatalf("recovered datasets = %q, want a,c", got)
	}
	if ds, _ := st2.Get("a"); string(ds.Data) != "payload-a-v2" {
		t.Fatalf("recovered a = %q", ds.Data)
	}
	if ds, _ := st2.Get("c"); string(ds.Data) != "payload-c" || ds.Model != "pdf" {
		t.Fatalf("recovered c = %+v", ds)
	}
	if _, ok := st2.Get("b"); ok {
		t.Fatalf("deleted dataset b resurrected")
	}
}

func TestCompactPreservesStateAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	big := bytes.Repeat([]byte("x"), 4096)
	for i := 0; i < 8; i++ {
		if err := st.Put("bulk", "sample", big); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put("keep", "certain", []byte("small")); err != nil {
		t.Fatal(err)
	}
	before := st.Stats().WALBytes
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := st.Stats().WALBytes
	if after >= before {
		t.Fatalf("WAL did not shrink: %d -> %d", before, after)
	}
	// The store stays usable after the WAL swap.
	if err := st.Put("post", "certain", []byte("after-compact")); err != nil {
		t.Fatalf("Put after compact: %v", err)
	}
	st.Close()

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if got := strings.Join(rep.Datasets, ","); got != "bulk,keep,post" {
		t.Fatalf("recovered datasets = %q", got)
	}
	if ds, _ := st2.Get("bulk"); !bytes.Equal(ds.Data, big) {
		t.Fatalf("bulk payload corrupted after compaction")
	}
}

func TestTornWALTailTruncatedAndReplayStops(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("good", "certain", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the tail: garbage bytes where the next record would start.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xff, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(wal)

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if !rep.WALTorn {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if ds, ok := st2.Get("good"); !ok || string(ds.Data) != "kept" {
		t.Fatalf("record before the tear lost: %+v %v", ds, ok)
	}
	sizeAfter, _ := os.Stat(wal)
	if sizeAfter.Size() >= sizeBefore.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d", sizeBefore.Size(), sizeAfter.Size())
	}
	// Appends continue cleanly after the truncation.
	if err := st2.Put("after", "sample", []byte("new")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotQuarantinedOthersServed(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("healthy", "certain", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("victim", "sample", []byte("doomed-payload")); err != nil {
		t.Fatal(err)
	}
	// Compact so the WAL holds no copy of the victim: the snapshot is the
	// only source, and corrupting it must lose exactly that dataset.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	snap := filepath.Join(dir, "datasets", "victim.snap")
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x01 // flip one bit in the data section
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if got := strings.Join(rep.Datasets, ","); got != "healthy" {
		t.Fatalf("recovered datasets = %q, want healthy only", got)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Dataset != "victim" || !strings.Contains(q.Path, "corrupt") {
		t.Fatalf("quarantine entry = %+v", q)
	}
	if _, err := os.Stat(q.Path); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in datasets/: %v", err)
	}
	if st2.CorruptTotal() != 1 {
		t.Fatalf("CorruptTotal = %d", st2.CorruptTotal())
	}
	// Re-registering the name replaces the quarantined state cleanly.
	if err := st2.Put("victim", "sample", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
}

func TestWALRegisterSurvivesMissingSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("x", "certain", []byte("wal-backed")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a crash after the WAL append but before the checkpoint:
	// delete the snapshot outright. Recovery must replay the register
	// from the WAL payload and re-checkpoint it.
	snap := filepath.Join(dir, "datasets", "x.snap")
	if err := os.Remove(snap); err != nil {
		t.Fatal(err)
	}
	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if ds, ok := st2.Get("x"); !ok || string(ds.Data) != "wal-backed" {
		t.Fatalf("WAL-only dataset not recovered: %+v %v", ds, ok)
	}
	if rep.WALReplayed == 0 {
		t.Fatalf("report shows no WAL replay: %+v", rep)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("recovery did not re-checkpoint: %v", err)
	}
}

func TestHostileDatasetNamesStayInsideDatasetsDir(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	names := []string{"..", "../escape", "a/b", "dots...", ".", "ünïcødé", "sp ace", "%2e%2e"}
	for _, n := range names {
		if err := st.Put(n, "certain", []byte("payload:"+n)); err != nil {
			t.Fatalf("Put(%q): %v", n, err)
		}
	}
	st.Close()
	// Nothing may have escaped datasets/.
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.snap")); !os.IsNotExist(err) {
		t.Fatalf("name traversal escaped the store directory")
	}
	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if len(rep.Datasets) != len(names) {
		t.Fatalf("recovered %d datasets, want %d: %v", len(rep.Datasets), len(names), rep.Datasets)
	}
	for _, n := range names {
		if ds, ok := st2.Get(n); !ok || string(ds.Data) != "payload:"+n {
			t.Fatalf("Get(%q) = %+v, %v", n, ds, ok)
		}
	}
}

func TestFsckVerifyAndRepair(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("ok", "certain", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("bad", "sample", []byte("to-corrupt")); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	rep, err := Fsck(nil, dir, false)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.Healthy() {
		t.Fatalf("clean store reported unhealthy: %+v", rep)
	}

	// Corrupt one snapshot and tear the WAL; verify-only must report both
	// WITHOUT mutating anything.
	snap := filepath.Join(dir, "datasets", "bad.snap")
	b, _ := os.ReadFile(snap)
	b[9] ^= 0x80
	os.WriteFile(snap, b, 0o644)
	f, _ := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3})
	f.Close()

	rep, err = Fsck(nil, dir, false)
	if err != nil {
		t.Fatalf("Fsck verify: %v", err)
	}
	if rep.Healthy() || !rep.WALTorn {
		t.Fatalf("verify missed the damage: %+v", rep)
	}
	var sawBad bool
	for _, s := range rep.Snapshots {
		if s.File == "bad.snap" && !s.OK {
			sawBad = true
		}
	}
	if !sawBad {
		t.Fatalf("corrupt snapshot not flagged: %+v", rep.Snapshots)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("verify-only fsck moved files: %v", err)
	}

	// Repair: quarantine, truncate, compact; a fresh verify is clean.
	rep, err = Fsck(nil, dir, true)
	if err != nil {
		t.Fatalf("Fsck repair: %v", err)
	}
	if !rep.Repaired || len(rep.Quarantined) != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	if got := strings.Join(rep.Datasets, ","); got != "ok" {
		t.Fatalf("post-repair datasets = %q", got)
	}
	rep, err = Fsck(nil, dir, false)
	if err != nil || !rep.Healthy() {
		t.Fatalf("store unhealthy after repair: %+v err=%v", rep, err)
	}
	var sb strings.Builder
	rep.Format(&sb)
	if !strings.Contains(sb.String(), "healthy") {
		t.Fatalf("Format output = %q", sb.String())
	}
}

func TestQuarantineMethodLogsRemoval(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("sick", "certain", []byte("undecodable-by-server")); err != nil {
		t.Fatal(err)
	}
	if err := st.Quarantine("sick", "payload failed to decode"); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if _, ok := st.Get("sick"); ok {
		t.Fatal("quarantined dataset still live")
	}
	st.Close()
	// The WAL register record must not resurrect the quarantined payload.
	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if _, ok := st2.Get("sick"); ok {
		t.Fatalf("quarantined dataset resurrected on recovery: %+v", rep)
	}
}
