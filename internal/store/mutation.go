package store

import "fmt"

// Mutation ops. The strings appear in snapshots and fsck output, so they
// are part of the on-disk vocabulary.
const (
	MutInsert = "insert"
	MutDelete = "delete"
)

// Mutation is one durable object-level change to a registered dataset —
// the incremental records the WAL format reserved opInsert/opDelete for.
// The store treats the insert payload as opaque bytes (the server encodes
// the object spec); ID is the positional object ID the server assigned
// (insert) or tombstoned (delete).
type Mutation struct {
	// Op is MutInsert or MutDelete.
	Op string
	// ID is the object ID the mutation touches.
	ID int
	// Data is the encoded object payload (insert only).
	Data []byte
	// Seq is the mutation's WAL sequence, assigned by AppendMutation.
	Seq uint64
}

func (m Mutation) validate() error {
	switch m.Op {
	case MutInsert:
		if len(m.Data) == 0 {
			return fmt.Errorf("store: insert mutation without payload")
		}
	case MutDelete:
	default:
		return fmt.Errorf("store: unknown mutation op %q", m.Op)
	}
	if m.ID < 0 {
		return fmt.Errorf("store: negative mutation object ID %d", m.ID)
	}
	return nil
}

// AppendMutation durably logs one object mutation against a registered
// dataset and folds it into the dataset's durable state: base payload plus
// ordered mutation log, replayed at recovery in sequence order so a
// restarted server reconverges to the identical post-mutation engine. The
// operation commits at the WAL append, exactly like Put; the snapshot that
// follows is a non-fatal checkpoint. The returned sequence number is the
// mutation's WAL sequence. Mutating an unregistered dataset is an error —
// the caller registers (Put) first.
func (s *Store) AppendMutation(name string, m Mutation) (uint64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, fmt.Errorf("store: closed")
	}
	cur, ok := s.live[name]
	if !ok {
		return 0, fmt.Errorf("store: mutation for unknown dataset %q", name)
	}
	seq := s.nextSeq
	rec := walRecord{Seq: seq, Op: opInsert, Name: name, ObjID: m.ID}
	if m.Op == MutDelete {
		rec.Op = opDelete
	} else {
		rec.Data = m.Data
	}
	if err := s.appendWAL(rec); err != nil {
		return 0, err
	}
	s.nextSeq = seq + 1
	m.Seq = seq
	s.live[name] = cur.withMutation(m)
	// Checkpoint failures are deliberately not fatal: the WAL holds the
	// committed mutation and the next Open re-checkpoints it.
	_ = s.writeSnapshot(s.live[name])
	if s.opts.CompactThreshold > 0 && s.walBytes > s.opts.CompactThreshold {
		_ = s.compactLocked()
	}
	return seq, nil
}

// withMutation returns a new Dataset with m appended to the mutation log.
// The clone keeps Get/Datasets' shallow copies safe: the shared prefix of
// the old mutation slice is never appended to in place.
func (d *Dataset) withMutation(m Mutation) *Dataset {
	nd := &Dataset{Name: d.Name, Model: d.Model, Data: d.Data, Seq: m.Seq}
	nd.Muts = append(append([]Mutation(nil), d.Muts...), m)
	return nd
}
