package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the write surface the store needs from an open file: sequential
// writes, an explicit durability barrier, and close.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem operations of the snapshot+WAL protocol so
// chaos tests can inject crash points, torn writes, and short writes at
// exactly the syscalls a real crash would interrupt (see
// internal/faultinject). Production code uses OS (the os package).
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// Create truncating-creates path for writing.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// ReadFile returns the whole content of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the size of path.
	Stat(path string) (int64, error)
	// SyncDir fsyncs the directory itself so a completed rename survives
	// power loss.
	SyncDir(dir string) error
}

// OS is the production FS backed by the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
