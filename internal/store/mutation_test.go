package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, st *Store, name string, m Mutation) uint64 {
	t.Helper()
	seq, err := st.AppendMutation(name, m)
	if err != nil {
		t.Fatalf("AppendMutation(%s, %+v): %v", name, m, err)
	}
	return seq
}

func wantMuts(t *testing.T, st *Store, name string, want []Mutation) {
	t.Helper()
	ds, ok := st.Get(name)
	if !ok {
		t.Fatalf("dataset %q missing", name)
	}
	if len(ds.Muts) != len(want) {
		t.Fatalf("mutation log = %+v, want %d entries", ds.Muts, len(want))
	}
	for i := range want {
		got := ds.Muts[i]
		if got.Op != want[i].Op || got.ID != want[i].ID || !bytes.Equal(got.Data, want[i].Data) {
			t.Fatalf("mutation %d = %+v, want %+v", i, got, want[i])
		}
		if got.Seq == 0 {
			t.Fatalf("mutation %d has no sequence", i)
		}
	}
}

// TestAppendMutationDurableAndReplayed covers the mutation commit path
// end to end: the log is ordered, survives a clean reopen (snapshot
// path), survives a reopen with the snapshot destroyed (pure WAL replay),
// and is never double-applied when both snapshot and WAL hold the same
// records.
func TestAppendMutationDurableAndReplayed(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("d", "sample", []byte("base")); err != nil {
		t.Fatal(err)
	}
	ins := Mutation{Op: MutInsert, ID: 10, Data: []byte("obj-10")}
	del := Mutation{Op: MutDelete, ID: 3}
	s1 := mustAppend(t, st, "d", ins)
	s2 := mustAppend(t, st, "d", del)
	if s2 <= s1 {
		t.Fatalf("sequences not increasing: %d then %d", s1, s2)
	}
	want := []Mutation{ins, del}
	wantMuts(t, st, "d", want)
	st.Close()

	// Clean reopen: snapshot carries the log; the WAL also still holds the
	// records — recovery must not re-apply them (no duplicates).
	st2, rep := mustOpen(t, dir)
	wantMuts(t, st2, "d", want)
	if rep.WALTorn || len(rep.Quarantined) != 0 {
		t.Fatalf("clean reopen reported problems: %+v", rep)
	}
	st2.Close()

	// Destroy the snapshot: the WAL alone must reconverge to the identical
	// post-mutation state (base register + both mutation records).
	if err := os.Remove(filepath.Join(dir, "datasets", "d.snap")); err != nil {
		t.Fatal(err)
	}
	st3, _ := mustOpen(t, dir)
	defer st3.Close()
	wantMuts(t, st3, "d", want)
	if ds, _ := st3.Get("d"); string(ds.Data) != "base" {
		t.Fatalf("base payload lost: %q", ds.Data)
	}
}

// TestAppendMutationValidation checks the error surface: unknown dataset,
// missing insert payload, bad op, negative ID — all rejected before any
// byte hits the WAL.
func TestAppendMutationValidation(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	defer st.Close()
	if err := st.Put("d", "sample", []byte("base")); err != nil {
		t.Fatal(err)
	}
	before := st.Stats().WALAppends
	cases := []struct {
		name string
		m    Mutation
	}{
		{"ghost", Mutation{Op: MutDelete, ID: 0}},
		{"d", Mutation{Op: MutInsert, ID: 0}},            // no payload
		{"d", Mutation{Op: "upsert", Data: []byte("x")}}, // unknown op
		{"d", Mutation{Op: MutDelete, ID: -1}},
	}
	for _, c := range cases {
		if _, err := st.AppendMutation(c.name, c.m); err == nil {
			t.Fatalf("AppendMutation(%s, %+v) accepted", c.name, c.m)
		}
	}
	if got := st.Stats().WALAppends; got != before {
		t.Fatalf("rejected mutations reached the WAL: %d appends -> %d", before, got)
	}
}

// TestRegisterResetsMutationLog: a re-register (Put) supersedes the whole
// base+mutations state, so the log starts empty again — and recovery
// agrees.
func TestRegisterResetsMutationLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("d", "sample", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "d", Mutation{Op: MutDelete, ID: 0})
	if err := st.Put("d", "sample", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	wantMuts(t, st, "d", nil)
	st.Close()

	st2, _ := mustOpen(t, dir)
	defer st2.Close()
	wantMuts(t, st2, "d", nil)
	if ds, _ := st2.Get("d"); string(ds.Data) != "v2" {
		t.Fatalf("recovered payload = %q", ds.Data)
	}
}

// TestTornMutationTailTruncated: a mutation record torn mid-write is cut
// away cleanly; everything committed before it survives.
func TestTornMutationTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("d", "sample", []byte("base")); err != nil {
		t.Fatal(err)
	}
	ins := Mutation{Op: MutInsert, ID: 1, Data: []byte("kept")}
	mustAppend(t, st, "d", ins)
	st.Close()

	// Fabricate a torn mutation append: a valid frame with its tail cut off.
	frame, err := encodeWALRecord(walRecord{Seq: 99, Op: opInsert, Name: "d", ObjID: 2, Data: []byte("torn-away")})
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if !rep.WALTorn {
		t.Fatalf("torn mutation tail not reported: %+v", rep)
	}
	wantMuts(t, st2, "d", []Mutation{ins})
	// The truncated WAL accepts new appends cleanly.
	mustAppend(t, st2, "d", Mutation{Op: MutDelete, ID: 0})
}

// TestOrphanMutationQuarantinedNotFatal: a WAL mutation record for a
// dataset the store does not know is surfaced on the corrupt list but
// never aborts recovery — the healthy datasets keep serving.
func TestOrphanMutationQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("healthy", "certain", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	frame, err := encodeWALRecord(walRecord{Seq: 50, Op: opDelete, Name: "ghost", ObjID: 1})
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if ds, ok := st2.Get("healthy"); !ok || string(ds.Data) != "fine" {
		t.Fatalf("healthy dataset lost: %+v %v", ds, ok)
	}
	if _, ok := st2.Get("ghost"); ok {
		t.Fatal("orphan mutation conjured a dataset")
	}
	found := false
	for _, q := range rep.Quarantined {
		if q.Dataset == "ghost" && strings.Contains(q.Reason, "unknown dataset") {
			found = true
		}
	}
	if !found {
		t.Fatalf("orphan mutation not on the corrupt list: %+v", rep.Quarantined)
	}
	if st2.CorruptTotal() == 0 {
		t.Fatal("orphan mutation not counted")
	}
}

// TestCompactionFoldsMutationLog: compaction checkpoints base+log into the
// snapshot and drops the per-mutation WAL records; recovery from the
// compacted state is identical.
func TestCompactionFoldsMutationLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("d", "sample", []byte("base")); err != nil {
		t.Fatal(err)
	}
	want := []Mutation{
		{Op: MutInsert, ID: 5, Data: []byte("a")},
		{Op: MutDelete, ID: 2},
		{Op: MutInsert, ID: 6, Data: []byte("b")},
	}
	for _, m := range want {
		mustAppend(t, st, "d", m)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wantMuts(t, st, "d", want)
	st.Close()

	st2, rep := mustOpen(t, dir)
	defer st2.Close()
	if rep.WALReplayed != 0 {
		t.Fatalf("compacted store replayed %d WAL records", rep.WALReplayed)
	}
	wantMuts(t, st2, "d", want)

	// fsck agrees: the snapshot reports its checkpointed log length.
	frep, err := Fsck(nil, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Healthy() {
		t.Fatalf("compacted store unhealthy: %+v", frep)
	}
	if len(frep.Snapshots) != 1 || frep.Snapshots[0].Muts != len(want) {
		t.Fatalf("fsck snapshot muts = %+v, want %d", frep.Snapshots, len(want))
	}
}

// TestFsckCountsWALMutations: the verify pass separates mutation records
// from the rest.
func TestFsckCountsWALMutations(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir)
	if err := st.Put("d", "sample", []byte("base")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, "d", Mutation{Op: MutInsert, ID: 1, Data: []byte("x")})
	mustAppend(t, st, "d", Mutation{Op: MutDelete, ID: 0})
	st.Close()

	rep, err := Fsck(nil, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALMutations != 2 {
		t.Fatalf("WALMutations = %d, want 2", rep.WALMutations)
	}
	if rep.WALRecords != 3 {
		t.Fatalf("WALRecords = %d, want 3 (register + 2 mutations)", rep.WALRecords)
	}
}
