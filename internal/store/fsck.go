package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// SnapshotStatus is one snapshot file's verification result.
type SnapshotStatus struct {
	File    string `json:"file"`
	Dataset string `json:"dataset,omitempty"`
	Model   string `json:"model,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	// Muts counts mutation-log entries checkpointed in the snapshot.
	Muts  int    `json:"muts,omitempty"`
	Bytes int64  `json:"bytes"`
	OK    bool   `json:"ok"`
	Err   string `json:"err,omitempty"`
}

// FsckReport is the result of a verify (and optionally repair) pass.
type FsckReport struct {
	Dir       string           `json:"dir"`
	Snapshots []SnapshotStatus `json:"snapshots"`
	TempFiles []string         `json:"tempFiles,omitempty"`

	WALBytes   int64 `json:"walBytes"`
	WALRecords int   `json:"walRecords"`
	// WALMutations counts insert/delete records among WALRecords.
	WALMutations int    `json:"walMutations,omitempty"`
	WALTorn      bool   `json:"walTorn"`
	WALTornAt    int64  `json:"walTornAt,omitempty"`
	WALErr       string `json:"walErr,omitempty"`

	// Repaired is set when the pass ran in repair mode: corrupt
	// snapshots quarantined, torn WAL truncated, state re-checkpointed,
	// WAL compacted.
	Repaired    bool          `json:"repaired"`
	Quarantined []CorruptFile `json:"quarantined,omitempty"`
	// Datasets are the dataset names that verify clean (after repair,
	// the names the daemon would serve).
	Datasets []string `json:"datasets"`
}

// Healthy reports whether the verify pass found nothing wrong.
func (r *FsckReport) Healthy() bool {
	if r.WALTorn || r.WALErr != "" || len(r.TempFiles) > 0 {
		return false
	}
	for _, s := range r.Snapshots {
		if !s.OK {
			return false
		}
	}
	return true
}

// Format renders the report for humans (the crskyd fsck / crsky store
// output).
func (r *FsckReport) Format(w io.Writer) {
	fmt.Fprintf(w, "store %s\n", r.Dir)
	for _, s := range r.Snapshots {
		if s.OK {
			fmt.Fprintf(w, "  snapshot %-30s OK    %8d bytes  dataset=%s model=%s seq=%d muts=%d\n",
				s.File, s.Bytes, s.Dataset, s.Model, s.Seq, s.Muts)
		} else {
			fmt.Fprintf(w, "  snapshot %-30s BAD   %8d bytes  %s\n", s.File, s.Bytes, s.Err)
		}
	}
	for _, t := range r.TempFiles {
		fmt.Fprintf(w, "  leftover temp file %s\n", t)
	}
	switch {
	case r.WALErr != "":
		fmt.Fprintf(w, "  wal %d bytes: CORRUPT HEADER: %s\n", r.WALBytes, r.WALErr)
	case r.WALTorn:
		fmt.Fprintf(w, "  wal %d bytes, %d records (%d mutations), TORN TAIL at offset %d\n",
			r.WALBytes, r.WALRecords, r.WALMutations, r.WALTornAt)
	default:
		fmt.Fprintf(w, "  wal %d bytes, %d records (%d mutations), clean\n",
			r.WALBytes, r.WALRecords, r.WALMutations)
	}
	for _, q := range r.Quarantined {
		fmt.Fprintf(w, "  quarantined %s (%s)\n", q.Path, q.Reason)
	}
	if r.Repaired {
		fmt.Fprintf(w, "  repaired: serving %d datasets: %s\n", len(r.Datasets), strings.Join(r.Datasets, ", "))
	} else if r.Healthy() {
		fmt.Fprintf(w, "  healthy: %d datasets: %s\n", len(r.Datasets), strings.Join(r.Datasets, ", "))
	} else {
		fmt.Fprintf(w, "  UNHEALTHY (rerun with -repair to quarantine and recover)\n")
	}
}

// Fsck verifies a store directory: re-derives every snapshot checksum,
// dry-replays the WAL, and reports torn tails, corrupt files, and
// leftover temp debris. With repair set it then runs the full recovery
// path (quarantine, truncate, re-checkpoint) and compacts the WAL, so a
// subsequent verify is clean. fsys may be nil for the OS filesystem.
func Fsck(fsys FS, dir string, repair bool) (*FsckReport, error) {
	if fsys == nil {
		fsys = OS
	}
	rep := &FsckReport{Dir: dir}

	datasets := filepath.Join(dir, "datasets")
	names, err := fsys.ReadDir(datasets)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: fsck read %s: %w", datasets, err)
	}
	for _, fn := range names {
		path := filepath.Join(datasets, fn)
		if strings.HasSuffix(fn, ".tmp") {
			rep.TempFiles = append(rep.TempFiles, path)
			continue
		}
		if !strings.HasSuffix(fn, ".snap") {
			continue
		}
		st := SnapshotStatus{File: fn, Dataset: snapStemName(fn)}
		b, err := fsys.ReadFile(path)
		st.Bytes = int64(len(b))
		if err != nil {
			st.Err = err.Error()
		} else if meta, data, muts, derr := decodeSnapshot(b); derr != nil {
			st.Err = derr.Error()
		} else {
			st.OK = true
			st.Dataset, st.Model, st.Seq, st.Muts = meta.Name, meta.Model, meta.Seq, len(muts)
			_ = data
			rep.Datasets = append(rep.Datasets, meta.Name)
		}
		rep.Snapshots = append(rep.Snapshots, st)
	}

	walB, err := fsys.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: fsck read wal: %w", err)
	}
	rep.WALBytes = int64(len(walB))
	recs, goodLen, torn, werr := replayWAL(walB)
	if werr != nil {
		rep.WALErr = werr.Error()
	} else {
		rep.WALRecords = len(recs)
		for _, rec := range recs {
			if rec.Op == opInsert || rec.Op == opDelete {
				rep.WALMutations++
			}
		}
		rep.WALTorn = torn
		rep.WALTornAt = goodLen
	}

	if !repair {
		return rep, nil
	}

	// Repair = the daemon's own recovery path plus a compaction, so the
	// directory comes out fully checkpointed with a one-record WAL.
	s, orep, err := Open(dir, Options{Fsync: true, FS: fsys})
	if err != nil {
		return rep, fmt.Errorf("store: fsck repair: %w", err)
	}
	defer s.Close()
	if err := s.Compact(); err != nil {
		return rep, fmt.Errorf("store: fsck compact: %w", err)
	}
	rep.Repaired = true
	rep.Quarantined = orep.Quarantined
	rep.Datasets = orep.Datasets
	return rep, nil
}
