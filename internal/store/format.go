// Package store is crskyd's crash-safe on-disk dataset store: checksummed,
// versioned snapshot files plus a write-ahead log of register/remove
// operations, with a recovery path that replays the WAL over the latest
// snapshots, quarantines anything that fails its checksum into corrupt/,
// and keeps serving the healthy datasets.
//
// On-disk layout under the data directory:
//
//	wal.log              write-ahead log (commit point of every operation)
//	datasets/<name>.snap one checksummed snapshot per live dataset
//	corrupt/             quarantined files that failed verification
//
// The integrity discipline mirrors the engines' verify-everything stance:
// a bit-flipped sample weight yields confidently wrong causality answers,
// so every byte read at recovery is covered by a CRC32C that is checked,
// never assumed.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"net/url"
	"strings"
)

const (
	// snapMagic/walMagic lead every store file so foreign or truncated
	// files are rejected before any decoding.
	snapMagic = "CRSNAP01"
	walMagic  = "CRWAL001"

	// formatVersion is bumped on incompatible layout changes; readers
	// reject versions they do not understand instead of misparsing.
	formatVersion = 1

	// maxSectionLen bounds a declared section/record length so a corrupt
	// header cannot drive a multi-gigabyte allocation.
	maxSectionLen = 1 << 31
)

// castagnoli is the CRC32C polynomial — hardware-accelerated on amd64 and
// the de-facto standard for storage checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// snapMeta is the header section of a snapshot file.
type snapMeta struct {
	Name  string
	Model string
	// Seq is the WAL sequence number of the operation this snapshot
	// checkpoints; replay applies only records newer than it.
	Seq uint64
}

// Snapshot section kinds.
const (
	secMeta = 1
	secData = 2
	// secMuts carries the gob-encoded mutation log folded over the base
	// payload. The section is written only when the log is non-empty, so
	// snapshots of unmutated datasets keep the original two-section layout
	// and pre-mutation readers (which ignore unknown kinds) stay compatible
	// — no format version bump.
	secMuts = 3
)

// encodeSnapshot renders a snapshot file: magic, version, then
// length+CRC32C-framed sections (gob meta, raw payload, and — when any
// exist — the gob mutation log). Each section is independently
// checksummed so verification pinpoints what rotted.
func encodeSnapshot(meta snapMeta, data []byte, muts []Mutation) ([]byte, error) {
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(meta); err != nil {
		return nil, fmt.Errorf("store: encode snapshot meta: %w", err)
	}
	var xbuf bytes.Buffer
	nsec := uint32(2)
	if len(muts) > 0 {
		if err := gob.NewEncoder(&xbuf).Encode(muts); err != nil {
			return nil, fmt.Errorf("store: encode snapshot mutations: %w", err)
		}
		nsec = 3
	}
	var b bytes.Buffer
	b.WriteString(snapMagic)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], formatVersion)
	b.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], nsec)
	b.Write(u32[:])
	writeSection(&b, secMeta, mbuf.Bytes())
	writeSection(&b, secData, data)
	if len(muts) > 0 {
		writeSection(&b, secMuts, xbuf.Bytes())
	}
	return b.Bytes(), nil
}

func writeSection(b *bytes.Buffer, kind uint32, payload []byte) {
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], kind)
	b.Write(u32[:])
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	b.Write(u64[:])
	binary.BigEndian.PutUint32(u32[:], checksum(payload))
	b.Write(u32[:])
	b.Write(payload)
}

// decodeSnapshot verifies and parses an encodeSnapshot file. Any framing,
// version, or checksum failure is an error — the caller quarantines. The
// returned mutation log is nil for two-section files.
func decodeSnapshot(b []byte) (snapMeta, []byte, []Mutation, error) {
	var meta snapMeta
	if len(b) < len(snapMagic)+8 {
		return meta, nil, nil, fmt.Errorf("store: snapshot truncated (%d bytes)", len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return meta, nil, nil, fmt.Errorf("store: bad snapshot magic %q", b[:len(snapMagic)])
	}
	off := len(snapMagic)
	ver := binary.BigEndian.Uint32(b[off:])
	if ver != formatVersion {
		return meta, nil, nil, fmt.Errorf("store: unsupported snapshot version %d", ver)
	}
	nsec := binary.BigEndian.Uint32(b[off+4:])
	off += 8
	var metaB, dataB, mutsB []byte
	var haveMeta, haveData, haveMuts bool
	for i := uint32(0); i < nsec; i++ {
		if off+16 > len(b) {
			return meta, nil, nil, fmt.Errorf("store: snapshot section %d header truncated", i)
		}
		kind := binary.BigEndian.Uint32(b[off:])
		ln := binary.BigEndian.Uint64(b[off+4:])
		crc := binary.BigEndian.Uint32(b[off+12:])
		off += 16
		if ln > maxSectionLen || uint64(off)+ln > uint64(len(b)) {
			return meta, nil, nil, fmt.Errorf("store: snapshot section %d truncated (declared %d bytes)", i, ln)
		}
		payload := b[off : off+int(ln)]
		off += int(ln)
		if checksum(payload) != crc {
			return meta, nil, nil, fmt.Errorf("store: snapshot section %d checksum mismatch", i)
		}
		switch kind {
		case secMeta:
			metaB, haveMeta = payload, true
		case secData:
			dataB, haveData = payload, true
		case secMuts:
			mutsB, haveMuts = payload, true
		}
	}
	if off != len(b) {
		return meta, nil, nil, fmt.Errorf("store: %d trailing bytes after snapshot sections", len(b)-off)
	}
	if !haveMeta || !haveData {
		return meta, nil, nil, fmt.Errorf("store: snapshot missing meta or data section")
	}
	if err := gob.NewDecoder(bytes.NewReader(metaB)).Decode(&meta); err != nil {
		return meta, nil, nil, fmt.Errorf("store: decode snapshot meta: %w", err)
	}
	if meta.Name == "" {
		return meta, nil, nil, fmt.Errorf("store: snapshot has empty dataset name")
	}
	var muts []Mutation
	if haveMuts {
		if err := gob.NewDecoder(bytes.NewReader(mutsB)).Decode(&muts); err != nil {
			return meta, nil, nil, fmt.Errorf("store: decode snapshot mutations: %w", err)
		}
		for i, m := range muts {
			if err := m.validate(); err != nil {
				return meta, nil, nil, fmt.Errorf("store: snapshot mutation %d: %w", i, err)
			}
		}
	}
	return meta, dataB, muts, nil
}

// escapeName maps an arbitrary dataset name to a safe file stem
// (percent-encoding path separators and friends) and back. Names that
// would escape to "." or ".." get their dots percent-encoded too, so a
// hostile name can never traverse out of datasets/.
func escapeName(name string) string {
	esc := url.PathEscape(name)
	if strings.Trim(esc, ".") == "" {
		esc = strings.ReplaceAll(esc, ".", "%2E")
	}
	return esc
}

func unescapeName(stem string) (string, error) { return url.PathUnescape(stem) }
