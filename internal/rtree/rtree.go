// Package rtree implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990) — the index used by the paper for every dataset. It supports dynamic
// insertion with forced reinsertion, deletion with tree condensation, STR
// bulk loading, single- and multi-window search ("RecList" traversal from
// Algorithm 1), and best-first traversal by MINDIST.
//
// The tree counts node accesses through an optional stats.Counter so the
// experiment harness can report the paper's I/O metric: every node visited
// by a query costs one simulated page access. Fanout is derived from a
// configurable page size (4096 bytes by default, matching Section 5.1).
package rtree

import (
	"fmt"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/stats"
)

const (
	// DefaultPageSize mirrors the 4096-byte pages used in the paper.
	DefaultPageSize = 4096
	// nodeHeaderBytes approximates the per-page bookkeeping overhead.
	nodeHeaderBytes = 24
	// reinsertFraction is the share of entries force-reinserted on the
	// first overflow of a level (the R*-tree's 30% heuristic).
	reinsertFraction = 0.3
)

// entry is one slot of a node: a bounding rectangle plus either a data ID
// (leaf) or a child pointer (internal).
type entry struct {
	rect  geom.Rect
	id    int
	child *node
}

type node struct {
	leaf    bool
	entries []entry
	// tag is the copy-on-write ownership mark: a tree may mutate a node in
	// place only when the node's tag equals its own (see CloneCOW).
	tag uint64
}

func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.ExpandToRect(e.rect)
	}
	return r
}

// Tree is an R*-tree over D-dimensional rectangles. Not safe for concurrent
// mutation; concurrent read-only queries are safe as long as each uses its
// own counter.
type Tree struct {
	dims       int
	maxEntries int
	minEntries int
	root       *node
	size       int
	height     int
	io         *stats.Counter
	// tag is this tree's copy-on-write ownership mark; nodes stamped with
	// it are private and mutable in place, all others are copied first.
	tag uint64
}

// Option configures a Tree at construction time.
type Option func(*config)

type config struct {
	pageSize   int
	maxEntries int
}

// WithPageSize sets the simulated disk page size used to derive the fanout.
func WithPageSize(bytes int) Option {
	return func(c *config) { c.pageSize = bytes }
}

// WithMaxEntries overrides the page-size-derived fanout directly (mostly
// useful in tests to force deep trees on small inputs).
func WithMaxEntries(m int) Option {
	return func(c *config) { c.maxEntries = m }
}

// New creates an empty R*-tree for dims-dimensional data.
func New(dims int, opts ...Option) *Tree {
	if dims <= 0 {
		panic("rtree: dimensionality must be positive")
	}
	cfg := config{pageSize: DefaultPageSize}
	for _, o := range opts {
		o(&cfg)
	}
	max := cfg.maxEntries
	if max == 0 {
		// One rectangle (2*8*dims bytes) plus one pointer/ID per entry.
		entryBytes := 16*dims + 8
		max = (cfg.pageSize - nodeHeaderBytes) / entryBytes
	}
	if max < 4 {
		max = 4
	}
	min := max * 2 / 5 // the R*-tree's 40% minimum fill
	if min < 2 {
		min = 2
	}
	return &Tree{
		dims:       dims,
		maxEntries: max,
		minEntries: min,
		root:       &node{leaf: true},
		height:     1,
	}
}

// SetCounter attaches a node-access counter; pass nil to disable counting.
func (t *Tree) SetCounter(c *stats.Counter) { t.io = c }

// Counter returns the attached node-access counter (possibly nil).
func (t *Tree) Counter() *stats.Counter { return t.io }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of stored data entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// MaxEntries exposes the node fanout (for tests and diagnostics).
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries exposes the minimum node fill (for tests and diagnostics).
func (t *Tree) MinEntries() int { return t.minEntries }

// Bounds returns the MBR of the whole tree and whether it is non-empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

func (t *Tree) access(*node) {
	t.io.Inc()
}

func (t *Tree) checkRect(r geom.Rect) {
	if len(r.Min) != t.dims || len(r.Max) != t.dims {
		panic(fmt.Sprintf("rtree: rect dimensionality %d/%d, tree is %d-dimensional",
			len(r.Min), len(r.Max), t.dims))
	}
	if !r.Valid() {
		panic(fmt.Sprintf("rtree: invalid rect %v", r))
	}
}
