package rtree

import (
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func TestStatsEmpty(t *testing.T) {
	tr := New(2)
	s := tr.Stats()
	if s.Entries != 0 || s.Nodes != 0 || s.Height != 1 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestStatsBulkLoadedUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(191))
	items := randData(r, 10_000, 3)
	tr := New(3, WithMaxEntries(32))
	tr.BulkLoad(items)
	s := tr.Stats()
	if s.Entries != 10_000 {
		t.Fatalf("Entries = %d", s.Entries)
	}
	if s.Height != tr.Height() {
		t.Fatalf("Height = %d, want %d", s.Height, tr.Height())
	}
	if s.Leaves == 0 || s.Leaves > s.Nodes {
		t.Fatalf("Leaves/Nodes = %d/%d", s.Leaves, s.Nodes)
	}
	// STR packs nodes nearly full.
	if s.Utilization < 0.85 {
		t.Fatalf("bulk-loaded utilization = %v, want ≥ 0.85", s.Utilization)
	}
}

func TestStatsDynamicUtilizationBounds(t *testing.T) {
	r := rand.New(rand.NewSource(192))
	tr := New(2, WithMaxEntries(8))
	for i := 0; i < 3000; i++ {
		p := geom.Point{r.Float64() * 1000, r.Float64() * 1000}
		tr.Insert(geom.PointRect(p), i)
	}
	s := tr.Stats()
	if s.Entries != 3000 {
		t.Fatalf("Entries = %d", s.Entries)
	}
	// The R*-tree guarantees ≥ 40% fill on non-root nodes; the average
	// must comfortably clear a softer bound.
	if s.Utilization < 0.4 {
		t.Fatalf("dynamic utilization = %v, want ≥ 0.4", s.Utilization)
	}
	if s.Utilization > 1 {
		t.Fatalf("utilization = %v > 1", s.Utilization)
	}
}
