package rtree

import "sync/atomic"

// cowTags issues globally unique ownership tags for copy-on-write clones.
// A node is mutable by a tree iff their tags match; every clone moves both
// trees onto fresh tags, so nodes built before the clone are frozen for
// both sides and copied on first touch.
var cowTags atomic.Uint64

// CloneCOW returns a copy-on-write clone sharing every node with t. The
// clone (and t itself) copy any shared node — and only the nodes on the
// root-to-leaf path they touch — before mutating it, so readers holding
// either tree never observe the other side's writes: an insert into the
// clone clones O(height) nodes and leaves t's structure bit-identical.
//
// The clone starts with no node-access counter; attach one with
// SetCounter. Cloning is O(1).
func (t *Tree) CloneCOW() *Tree {
	c := *t
	c.tag = cowTags.Add(1)
	c.io = nil
	// Retag t as well: nodes created before this call are now shared, so
	// even the original must copy them before its next in-place mutation.
	t.tag = cowTags.Add(1)
	return &c
}

// mutable returns a node the tree may write to: n itself when the tree
// already owns it, otherwise a private copy (entries included) stamped
// with the tree's tag. The caller must link the copy into the tree.
func (t *Tree) mutable(n *node) *node {
	if n.tag == t.tag {
		return n
	}
	es := make([]entry, len(n.entries))
	copy(es, n.entries)
	return &node{leaf: n.leaf, entries: es, tag: t.tag}
}

// materialize rewrites a root-to-leaf path in place so every node on it is
// owned by t, re-pointing each parent's child entry at the copy. path[0]
// must be t's root. After the call the mutation code may write to any path
// node without touching nodes shared with a clone.
func (t *Tree) materialize(path []*node) {
	for i, n := range path {
		m := t.mutable(n)
		if m == n {
			continue
		}
		path[i] = m
		if i == 0 {
			t.root = m
			continue
		}
		parent := path[i-1] // already owned: materialization runs top-down
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j].child = m
				break
			}
		}
	}
}
