package rtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func cowPointRect(x, y float64) geom.Rect {
	return geom.NewRect(geom.Point{x, y}, geom.Point{x, y})
}

func cowIDs(t *Tree) []int {
	var ids []int
	t.All(func(id int, _ geom.Rect) bool {
		ids = append(ids, id)
		return true
	})
	sort.Ints(ids)
	return ids
}

func wantIDs(present map[int]geom.Rect) []int {
	ids := make([]int, 0, len(present))
	for id := range present {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCloneCOWIsolation mutates a clone heavily (forcing splits, forced
// reinsertion, and condensation) and checks the original tree stays
// bit-identical, then mutates the original and checks the clone likewise.
func TestCloneCOWIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := New(2, WithMaxEntries(4)) // deep tree on small input
	baseSet := map[int]geom.Rect{}
	for i := 0; i < 200; i++ {
		r := cowPointRect(rng.Float64()*100, rng.Float64()*100)
		base.Insert(r, i)
		baseSet[i] = r
	}
	clone := base.CloneCOW()
	cloneSet := map[int]geom.Rect{}
	for id, r := range baseSet {
		cloneSet[id] = r
	}

	// Mutate the clone: delete half, insert a fresh batch.
	for id := 0; id < 200; id += 2 {
		if !clone.Delete(cloneSet[id], id) {
			t.Fatalf("clone.Delete(%d) = false", id)
		}
		delete(cloneSet, id)
	}
	for i := 200; i < 300; i++ {
		r := cowPointRect(rng.Float64()*100, rng.Float64()*100)
		clone.Insert(r, i)
		cloneSet[i] = r
	}
	if got, want := cowIDs(base), wantIDs(baseSet); !equalInts(got, want) {
		t.Fatalf("original changed under clone mutation: got %d ids, want %d", len(got), len(want))
	}
	if got, want := cowIDs(clone), wantIDs(cloneSet); !equalInts(got, want) {
		t.Fatalf("clone state wrong: got %d ids, want %d", len(got), len(want))
	}

	// Mutating the original must not leak into the clone either.
	for id := 1; id < 100; id += 2 {
		if !base.Delete(baseSet[id], id) {
			t.Fatalf("base.Delete(%d) = false", id)
		}
		delete(baseSet, id)
	}
	if got, want := cowIDs(clone), wantIDs(cloneSet); !equalInts(got, want) {
		t.Fatalf("clone changed under original mutation: got %d ids, want %d", len(got), len(want))
	}
	if got, want := cowIDs(base), wantIDs(baseSet); !equalInts(got, want) {
		t.Fatalf("original state wrong after its own deletes: got %d ids, want %d", len(got), len(want))
	}
}

// TestCloneCOWChain exercises clone-of-clone: each generation must stay
// isolated from every other.
func TestCloneCOWChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	t0 := New(2, WithMaxEntries(4))
	for i := 0; i < 64; i++ {
		t0.Insert(cowPointRect(rng.Float64()*10, rng.Float64()*10), i)
	}
	t1 := t0.CloneCOW()
	t1.Insert(cowPointRect(11, 11), 64)
	t2 := t1.CloneCOW()
	t2.Insert(cowPointRect(12, 12), 65)

	if got := t0.Len(); got != 64 {
		t.Fatalf("gen0 Len = %d, want 64", got)
	}
	if got := t1.Len(); got != 65 {
		t.Fatalf("gen1 Len = %d, want 65", got)
	}
	if got := t2.Len(); got != 66 {
		t.Fatalf("gen2 Len = %d, want 66", got)
	}
	if ids := cowIDs(t0); ids[len(ids)-1] != 63 {
		t.Fatalf("gen0 contains leaked id %d", ids[len(ids)-1])
	}
	if ids := cowIDs(t1); ids[len(ids)-1] != 64 {
		t.Fatalf("gen1 top id = %d, want 64", ids[len(ids)-1])
	}
}

// TestCloneCOWConcurrentReaders hammers a chain of COW generations with a
// writer while readers query pinned generations — run under -race, this is
// the writers-never-block-readers contract.
func TestCloneCOWConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cur := New(2, WithMaxEntries(8))
	n := 128
	for i := 0; i < n; i++ {
		cur.Insert(cowPointRect(rng.Float64()*100, rng.Float64()*100), i)
	}
	window := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})

	var wg sync.WaitGroup
	for gen := 0; gen < 24; gen++ {
		pinned := cur
		wantLen := pinned.Len()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				got := 0
				pinned.Search(window, func(int, geom.Rect) bool {
					got++
					return true
				})
				if got != wantLen {
					t.Errorf("pinned generation returned %d entries, want %d", got, wantLen)
					return
				}
			}
		}()
		next := cur.CloneCOW()
		next.Insert(cowPointRect(rng.Float64()*100, rng.Float64()*100), n)
		if gen%3 == 0 {
			next.Delete(cowPointRect(0, 0), -1) // miss: exercises findLeaf on shared nodes
		}
		n++
		cur = next
	}
	wg.Wait()
}
