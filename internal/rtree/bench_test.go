package rtree

import (
	"math/rand"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func benchTree(n, d int) (*Tree, []Item) {
	r := rand.New(rand.NewSource(1))
	items := randData(r, n, d)
	tr := New(d)
	tr.BulkLoad(items)
	return tr, items
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	items := randData(r, b.N, 3)
	tr := New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i].Rect, items[i].ID)
	}
}

func BenchmarkBulkLoad100K(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	items := randData(r, 100_000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(3)
		tr.BulkLoad(items)
	}
}

func BenchmarkSearchWindow(b *testing.B) {
	tr, _ := benchTree(100_000, 3)
	w := geom.NewRect(geom.Point{400, 400, 400}, geom.Point{600, 600, 600})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(w, func(int, geom.Rect) bool { return true })
	}
}

func BenchmarkSearchMultiWindow(b *testing.B) {
	tr, _ := benchTree(100_000, 3)
	windows := []geom.Rect{
		geom.NewRect(geom.Point{100, 100, 100}, geom.Point{200, 200, 200}),
		geom.NewRect(geom.Point{400, 400, 400}, geom.Point{550, 550, 550}),
		geom.NewRect(geom.Point{800, 100, 500}, geom.Point{900, 250, 650}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchAny(windows, func(int, geom.Rect) bool { return true })
	}
}

func BenchmarkKNN10(b *testing.B) {
	tr, _ := benchTree(100_000, 3)
	q := geom.Point{500, 500, 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(q, 10)
	}
}
