package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/crsky/crsky/internal/geom"
)

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	items := randData(r, 800, 3)
	tr := New(3, WithMaxEntries(10))
	tr.BulkLoad(items)
	for trial := 0; trial < 20; trial++ {
		q := randPoint(r, 3)
		k := 1 + r.Intn(12)
		got := tr.KNN(q, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		// Brute-force distances.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.MinDist(q)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if nb.Dist != got[0].Dist && i > 0 && nb.Dist < got[i-1].Dist {
				t.Fatal("KNN results not ascending")
			}
			// Distances must match the i-th smallest brute-force distance
			// (ties make IDs ambiguous, so compare distances only).
			if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("neighbor %d dist %v, want %v", i, nb.Dist, dists[i])
			}
		}
	}
}

func randPoint(r *rand.Rand, d int) geom.Point {
	p := make(geom.Point, d)
	for i := range p {
		p[i] = r.Float64() * 1000
	}
	return p
}

func TestKNNEdgeCases(t *testing.T) {
	tr := New(2)
	if got := tr.KNN(geom.Point{0, 0}, 5); got != nil {
		t.Fatal("empty tree should return nil")
	}
	tr.Insert(geom.PointRect(geom.Point{1, 1}), 0)
	tr.Insert(geom.PointRect(geom.Point{2, 2}), 1)
	if got := tr.KNN(geom.Point{0, 0}, 10); len(got) != 2 {
		t.Fatalf("k beyond size should return all: %d", len(got))
	}
	if got := tr.KNN(geom.Point{0, 0}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	got := tr.KNN(geom.Point{0, 0}, 1)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("nearest = %+v", got)
	}
}

func TestCountIn(t *testing.T) {
	tr := New(2, WithMaxEntries(4))
	for i := 0; i < 100; i++ {
		tr.Insert(geom.PointRect(geom.Point{float64(i), float64(i)}), i)
	}
	if got := tr.CountIn(geom.NewRect(geom.Point{0, 0}, geom.Point{9, 9})); got != 10 {
		t.Fatalf("CountIn = %d, want 10", got)
	}
	if got := tr.CountIn(geom.NewRect(geom.Point{200, 200}, geom.Point{300, 300})); got != 0 {
		t.Fatalf("CountIn empty window = %d", got)
	}
}
