package rtree

import (
	"math"
	"sort"

	"github.com/crsky/crsky/internal/geom"
)

// splitNode divides an overflowing node into two using the R*-tree topology
// split: choose the axis minimizing the summed margins over all candidate
// distributions, then the distribution minimizing overlap (ties by area).
func (t *Tree) splitNode(n *node) (left, right *node) {
	m := t.minEntries
	entries := n.entries
	total := len(entries)

	bestAxis, bestLower := -1, false
	bestMargin := math.Inf(1)
	for axis := 0; axis < t.dims; axis++ {
		for _, lower := range []bool{true, false} {
			sortEntries(entries, axis, lower)
			var margin float64
			for k := m; k <= total-m; k++ {
				margin += mbrOf(entries[:k]).Margin() + mbrOf(entries[k:]).Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis, bestLower = margin, axis, lower
			}
		}
	}

	sortEntries(entries, bestAxis, bestLower)
	bestK := m
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := m; k <= total-m; k++ {
		l := mbrOf(entries[:k])
		r := mbrOf(entries[k:])
		overlap := l.OverlapVolume(r)
		area := l.Volume() + r.Volume()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}

	leftEntries := make([]entry, bestK)
	copy(leftEntries, entries[:bestK])
	rightEntries := make([]entry, total-bestK)
	copy(rightEntries, entries[bestK:])
	left = &node{leaf: n.leaf, entries: leftEntries, tag: t.tag}
	right = &node{leaf: n.leaf, entries: rightEntries, tag: t.tag}
	return left, right
}

func sortEntries(es []entry, axis int, lower bool) {
	sort.SliceStable(es, func(i, j int) bool {
		if lower {
			if es[i].rect.Min[axis] != es[j].rect.Min[axis] {
				return es[i].rect.Min[axis] < es[j].rect.Min[axis]
			}
			return es[i].rect.Max[axis] < es[j].rect.Max[axis]
		}
		if es[i].rect.Max[axis] != es[j].rect.Max[axis] {
			return es[i].rect.Max[axis] < es[j].rect.Max[axis]
		}
		return es[i].rect.Min[axis] < es[j].rect.Min[axis]
	})
}

func mbrOf(es []entry) geom.Rect {
	r := es[0].rect.Clone()
	for _, e := range es[1:] {
		r.ExpandToRect(e.rect)
	}
	return r
}
