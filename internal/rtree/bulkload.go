package rtree

import (
	"math"
	"sort"

	"github.com/crsky/crsky/internal/geom"
)

// Item is one (rectangle, ID) pair for bulk loading.
type Item struct {
	Rect geom.Rect
	ID   int
}

// BulkLoad builds the tree from scratch with Sort-Tile-Recursive packing,
// replacing any existing content. STR produces near-100% node utilization
// and well-clustered leaves, which is how the experiment datasets are
// indexed before queries run.
func (t *Tree) BulkLoad(items []Item) {
	for i := range items {
		t.checkRect(items[i].Rect)
	}
	t.root = &node{leaf: true, tag: t.tag}
	t.height = 1
	t.size = len(items)
	if len(items) == 0 {
		return
	}

	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect.Clone(), id: it.ID}
	}
	level := packSTR(entries, t.dims, t.maxEntries, true, t.tag)
	height := 1
	for len(level) > 1 {
		parents := make([]entry, len(level))
		for i, n := range level {
			parents[i] = entry{rect: n.mbr(), child: n}
		}
		level = packSTR(parents, t.dims, t.maxEntries, false, t.tag)
		height++
	}
	t.root = level[0]
	t.height = height
}

// packSTR groups entries into nodes of at most maxEntries using recursive
// sort-tile partitioning over the dimensions.
func packSTR(entries []entry, dims, maxEntries int, leaf bool, tag uint64) []*node {
	nodeCount := (len(entries) + maxEntries - 1) / maxEntries
	if nodeCount == 1 {
		es := make([]entry, len(entries))
		copy(es, entries)
		return []*node{{leaf: leaf, entries: es, tag: tag}}
	}
	tile(entries, 0, dims, nodeCount)
	nodes := make([]*node, 0, nodeCount)
	for start := 0; start < len(entries); start += maxEntries {
		end := start + maxEntries
		if end > len(entries) {
			end = len(entries)
		}
		es := make([]entry, end-start)
		copy(es, entries[start:end])
		nodes = append(nodes, &node{leaf: leaf, entries: es, tag: tag})
	}
	return nodes
}

// tile recursively sorts entries by the center coordinate of each dimension,
// partitioning into vertical slabs so that the final maxEntries-sized runs
// are spatially clustered.
func tile(entries []entry, axis, dims, nodeCount int) {
	if axis >= dims-1 || len(entries) == 0 || nodeCount <= 1 {
		if axis < dims {
			sortByCenter(entries, axis)
		}
		return
	}
	sortByCenter(entries, axis)
	// Number of slabs along this axis: ceil(nodeCount^(1/(remaining dims))).
	remaining := dims - axis
	slabs := int(math.Ceil(math.Pow(float64(nodeCount), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	per := (len(entries) + slabs - 1) / slabs
	childCount := (nodeCount + slabs - 1) / slabs
	for start := 0; start < len(entries); start += per {
		end := start + per
		if end > len(entries) {
			end = len(entries)
		}
		tile(entries[start:end], axis+1, dims, childCount)
	}
}

func sortByCenter(entries []entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].rect.Min[axis] + entries[i].rect.Max[axis]
		cj := entries[j].rect.Min[axis] + entries[j].rect.Max[axis]
		return ci < cj
	})
}
