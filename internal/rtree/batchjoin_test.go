package rtree

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/crsky/crsky/internal/geom"
	"github.com/crsky/crsky/internal/stats"
)

// batchCollect records the per-query grouped streams of a batch join,
// asserting the per-query Begin/Pair*/End contract.
type batchCollect struct {
	t       *testing.T
	mu      *sync.Mutex
	streams []map[int][]int // per query: left id -> right ids in order
	current int
	curQ    int
	open    bool
}

func (c *batchCollect) visitor() BatchStreamVisitor {
	return BatchStreamVisitor{
		Begin: func(k, id int, _ geom.Rect) bool {
			if c.open {
				c.t.Errorf("Begin(q%d,%d) while stream q%d/%d still open", k, id, c.curQ, c.current)
			}
			c.open, c.curQ, c.current = true, k, id
			return true
		},
		Pair: func(k, leftID, rightID int, _ geom.Rect) bool {
			if !c.open || leftID != c.current || k != c.curQ {
				c.t.Errorf("Pair(q%d,%d,%d) outside its group (current q%d/%d)", k, leftID, rightID, c.curQ, c.current)
			}
			c.mu.Lock()
			c.streams[k][leftID] = append(c.streams[k][leftID], rightID)
			c.mu.Unlock()
			return true
		},
		End: func(k, id int) {
			if !c.open || id != c.current || k != c.curQ {
				c.t.Errorf("End(q%d,%d) without matching Begin (current q%d/%d)", k, id, c.curQ, c.current)
			}
			c.open = false
			c.mu.Lock()
			if _, dup := c.streams[k][id]; !dup {
				c.streams[k][id] = []int{}
			}
			c.mu.Unlock()
		},
	}
}

// TestJoinSelfStreamBatchMatchesSingle pins the batch join to per-query
// single joins: identical per-(query, left) match streams (same pairs, same
// order), every left entry visited once per query, and — for more than one
// query — strictly fewer node accesses than the single joins combined.
// With exactly one query the accounting must match the single join to the
// node.
func TestJoinSelfStreamBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{1, 40, 400, 1500} {
		for _, numQ := range []int{1, 2, 5} {
			for _, workers := range []int{1, 4} {
				items := randomItems(rng, n, 2)
				tr := New(2, WithMaxEntries(8))
				tr.BulkLoad(items)
				var io stats.Counter
				tr.SetCounter(&io)

				windows := make([]WindowFunc, numQ)
				for k := range windows {
					windows[k] = joinWindow(1.5 + 2*float64(k))
				}

				// Reference: one single-query join per window, with ordered
				// streams and summed node accesses.
				singleIO := int64(0)
				want := make([]map[int][]int, numQ)
				for k := range windows {
					io.Reset()
					c := &collectVisitor{t: t, mu: &sync.Mutex{}, streams: map[int][]int{}}
					tr.JoinSelfStream(windows[k], c.visitor())
					singleIO += io.Value()
					want[k] = c.streams
				}

				io.Reset()
				bc := &batchCollect{t: t, mu: &sync.Mutex{}}
				bc.streams = make([]map[int][]int, numQ)
				for k := range bc.streams {
					bc.streams[k] = map[int][]int{}
				}
				newVisitor := func() BatchStreamVisitor {
					// One shared collector per test run is fine: workers > 1
					// guards with the mutex, and the contract fields are only
					// asserted when workers == 1 (each worker owns disjoint
					// left entries, so cross-worker interleaving is legal).
					if workers > 1 {
						w := &batchCollect{t: t, mu: bc.mu, streams: bc.streams, open: false}
						v := w.visitor()
						v.Begin = func(k, id int, _ geom.Rect) bool { w.curQ, w.current, w.open = k, id, true; return true }
						return v
					}
					return bc.visitor()
				}
				if err := tr.JoinSelfStreamBatch(context.Background(), windows, workers, newVisitor); err != nil {
					t.Fatalf("n=%d Q=%d workers=%d: %v", n, numQ, workers, err)
				}
				batchIO := io.Value()

				for k := range windows {
					if len(bc.streams[k]) != n {
						t.Fatalf("n=%d Q=%d workers=%d q=%d: %d left streams, want %d",
							n, numQ, workers, k, len(bc.streams[k]), n)
					}
					for id, got := range bc.streams[k] {
						if fmt.Sprint(got) != fmt.Sprint(want[k][id]) {
							t.Fatalf("n=%d Q=%d workers=%d q=%d id=%d: got %v, want %v",
								n, numQ, workers, k, id, got, want[k][id])
						}
					}
				}

				if workers == 1 {
					if numQ == 1 && batchIO != singleIO {
						t.Fatalf("n=%d: single-query batch join charged %d node accesses, single join %d",
							n, batchIO, singleIO)
					}
					if numQ > 1 && n > 1 && batchIO >= singleIO {
						t.Fatalf("n=%d Q=%d: batch join charged %d node accesses, not below the single joins' %d",
							n, numQ, batchIO, singleIO)
					}
				}
			}
		}
	}
}

// TestJoinSelfStreamBatchEarlyStop asserts a Pair returning false truncates
// only that (query, left) stream.
func TestJoinSelfStreamBatchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	items := randomItems(rng, 120, 2)
	tr := New(2, WithMaxEntries(8))
	tr.BulkLoad(items)
	windows := []WindowFunc{joinWindow(3), joinWindow(3)}

	full := map[int][]int{}
	tr.JoinSelfStream(windows[0], StreamVisitor{
		Pair: func(l, r int, _ geom.Rect) bool { full[l] = append(full[l], r); return true },
	})

	got := make([]map[int][]int, 2)
	got[0], got[1] = map[int][]int{}, map[int][]int{}
	err := tr.JoinSelfStreamBatch(context.Background(), windows, 1, func() BatchStreamVisitor {
		return BatchStreamVisitor{
			Pair: func(k, l, r int, _ geom.Rect) bool {
				got[k][l] = append(got[k][l], r)
				return k != 0 || len(got[0][l]) < 2 // query 0 stops after two pairs
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for l, want := range full {
		if len(want) > 2 && len(got[0][l]) != 2 {
			t.Fatalf("left %d: query-0 stream has %d pairs, want truncation at 2", l, len(got[0][l]))
		}
		if fmt.Sprint(got[1][l]) != fmt.Sprint(want) {
			t.Fatalf("left %d: query-1 stream truncated too: got %v want %v", l, got[1][l], want)
		}
	}
}

// TestJoinSelfStreamBatchCanceled asserts a pre-canceled context stops the
// batch join with the context's error.
func TestJoinSelfStreamBatchCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	items := randomItems(rng, 300, 2)
	tr := New(2, WithMaxEntries(8))
	tr.BulkLoad(items)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs := 0
	err := tr.JoinSelfStreamBatch(ctx, []WindowFunc{joinWindow(3)}, 1, func() BatchStreamVisitor {
		return BatchStreamVisitor{Pair: func(k, l, r int, _ geom.Rect) bool { pairs++; return true }}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pairs != 0 {
		t.Fatalf("canceled join still streamed %d pairs", pairs)
	}
}
