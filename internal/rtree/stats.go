package rtree

// Stats summarizes the tree's structure — useful for diagnosing index
// quality (bulk-loaded trees should show utilization near 1).
type Stats struct {
	// Entries is the number of stored data entries.
	Entries int
	// Height is the tree height (1 = a single leaf).
	Height int
	// Nodes is the total node (simulated page) count.
	Nodes int
	// Leaves is the leaf node count.
	Leaves int
	// Utilization is the mean fill ratio of all nodes against MaxEntries.
	Utilization float64
}

// Stats walks the tree and returns its structural summary.
func (t *Tree) Stats() Stats {
	s := Stats{Entries: t.size, Height: t.height}
	if t.size == 0 {
		return s
	}
	var fill float64
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		fill += float64(len(n.entries)) / float64(t.maxEntries)
		if n.leaf {
			s.Leaves++
			return
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(t.root)
	s.Utilization = fill / float64(s.Nodes)
	return s
}
