package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crsky/crsky/internal/geom"
)

// TestSearchQuick drives insert + window search against a linear scan with
// testing/quick-generated point sets and windows.
func TestSearchQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, winRaw [4]int16) bool {
		n := int(nRaw)%120 + 1
		r := rand.New(rand.NewSource(seed))
		tr := New(2, WithMaxEntries(4+int(nRaw)%8))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{float64(r.Intn(100)), float64(r.Intn(100))}
			tr.Insert(geom.PointRect(pts[i]), i)
		}
		w := geom.NewRect(
			geom.Point{float64(winRaw[0] % 100), float64(winRaw[1] % 100)},
			geom.Point{float64(winRaw[2] % 100), float64(winRaw[3] % 100)},
		)
		got := map[int]bool{}
		tr.Search(w, func(id int, _ geom.Rect) bool {
			got[id] = true
			return true
		})
		for i, p := range pts {
			if w.ContainsPoint(p) != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeleteQuick: inserting then deleting arbitrary subsets preserves
// exactly the survivors.
func TestDeleteQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mask uint64) bool {
		n := int(nRaw)%60 + 1
		r := rand.New(rand.NewSource(seed))
		tr := New(3, WithMaxEntries(5))
		items := make([]Item, n)
		for i := range items {
			p := geom.Point{r.Float64() * 50, r.Float64() * 50, r.Float64() * 50}
			items[i] = Item{Rect: geom.PointRect(p), ID: i}
			tr.Insert(items[i].Rect, i)
		}
		survivors := map[int]bool{}
		for i := range items {
			if mask&(1<<uint(i%64)) != 0 {
				if !tr.Delete(items[i].Rect, items[i].ID) {
					return false
				}
			} else {
				survivors[i] = true
			}
		}
		if tr.Len() != len(survivors) {
			return false
		}
		seen := map[int]bool{}
		tr.All(func(id int, _ geom.Rect) bool {
			seen[id] = true
			return true
		})
		if len(seen) != len(survivors) {
			return false
		}
		for id := range survivors {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMinDistQuick: MINDIST is a true lower bound on the distance from the
// query point to any point inside the rectangle.
func TestMinDistQuick(t *testing.T) {
	f := func(ax, ay, bx, by, qx, qy, tx, ty float64) bool {
		for _, v := range []float64{ax, ay, bx, by, qx, qy, tx, ty} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		r := geom.NewRect(geom.Point{ax, ay}, geom.Point{bx, by})
		q := geom.Point{qx, qy}
		// Clamp (tx, ty) into the rectangle to get an interior point.
		in := geom.Point{
			math.Min(math.Max(tx, r.Min[0]), r.Max[0]),
			math.Min(math.Max(ty, r.Min[1]), r.Max[1]),
		}
		return r.MinDist(q) <= q.Dist(in)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
