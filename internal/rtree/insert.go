package rtree

import (
	"math"
	"sort"

	"github.com/crsky/crsky/internal/geom"
)

// Insert adds a data rectangle with the given ID. IDs need not be unique,
// but Delete removes entries by (rect, id) pairs, so unique IDs are easier
// to work with.
func (t *Tree) Insert(r geom.Rect, id int) {
	t.checkRect(r)
	e := entry{rect: r.Clone(), id: id}
	reinserted := make(map[int]bool)
	t.insertAtLevel(e, 1, reinserted)
	t.size++
}

// insertAtLevel places e so that its subtree root sits at the given level
// (1 = leaf). Split propagation may grow the tree.
func (t *Tree) insertAtLevel(e entry, level int, reinserted map[int]bool) {
	path := t.choosePath(e.rect, level)
	t.materialize(path)
	leafLevelNode := path[len(path)-1]
	leafLevelNode.entries = append(leafLevelNode.entries, e)
	t.handleOverflows(path, level, reinserted)
}

// choosePath descends from the root to the node at the target level using
// the R* ChooseSubtree criterion, returning the visited nodes top-down.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	depth := t.height // root is at level == height
	for depth > level {
		best := t.chooseSubtree(n, r, depth-1)
		n = n.entries[best].child
		path = append(path, n)
		depth--
	}
	return path
}

// chooseSubtree picks the child index of n best suited to receive r.
// When the children are leaves it minimizes overlap enlargement; otherwise
// it minimizes area enlargement (ties by smaller area), per the R*-tree.
func (t *Tree) chooseSubtree(n *node, r geom.Rect, childLevel int) int {
	childrenAreLeaves := childLevel == 1
	best := 0
	if childrenAreLeaves && len(n.entries) <= 32 {
		// Exact overlap-enlargement minimization is quadratic in the
		// fanout; apply it only on modest fanouts (standard practice).
		bestOverlap := math.Inf(1)
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range n.entries {
			grown := e.rect.Union(r)
			var before, after float64
			for j, f := range n.entries {
				if j == i {
					continue
				}
				before += e.rect.OverlapVolume(f.rect)
				after += grown.OverlapVolume(f.rect)
			}
			dOverlap := after - before
			enl := e.rect.Enlargement(r)
			area := e.rect.Volume()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(r)
		area := e.rect.Volume()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// handleOverflows walks the insertion path bottom-up, applying forced
// reinsertion or node splits until no node overflows.
func (t *Tree) handleOverflows(path []*node, level int, reinserted map[int]bool) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		nodeLevel := t.height - i
		if len(n.entries) <= t.maxEntries {
			t.tightenPath(path, i)
			continue
		}
		if i > 0 && !reinserted[nodeLevel] {
			// Forced reinsert: remove the p entries whose centers are
			// farthest from the node's center and insert them again.
			reinserted[nodeLevel] = true
			removed := t.extractFarthest(n)
			t.tightenPath(path, i)
			for _, e := range removed {
				t.insertAtLevel(e, nodeLevel, reinserted)
			}
			return // the reinserts handled the rest of the path
		}
		left, right := t.splitNode(n)
		if i == 0 {
			// Root split: grow the tree.
			t.root = &node{leaf: false, tag: t.tag, entries: []entry{
				{rect: left.mbr(), child: left},
				{rect: right.mbr(), child: right},
			}}
			t.height++
			return
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry{rect: left.mbr(), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right})
	}
}

// tightenPath refreshes the MBRs stored in the parents above path[i].
func (t *Tree) tightenPath(path []*node, i int) {
	for j := i; j > 0; j-- {
		child := path[j]
		parent := path[j-1]
		for k := range parent.entries {
			if parent.entries[k].child == child {
				parent.entries[k].rect = child.mbr()
				break
			}
		}
	}
}

// extractFarthest removes the reinsertFraction of n's entries farthest from
// the node center and returns them (farthest first).
func (t *Tree) extractFarthest(n *node) []entry {
	p := int(float64(t.maxEntries) * reinsertFraction)
	if p < 1 {
		p = 1
	}
	center := n.mbr().Center()
	type distEntry struct {
		d float64
		e entry
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		ds[i] = distEntry{d: e.rect.Center().Dist(center), e: e}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d > ds[j].d })
	removed := make([]entry, p)
	for i := 0; i < p; i++ {
		removed[i] = ds[i].e
	}
	keep := n.entries[:0]
	for i := p; i < len(ds); i++ {
		keep = append(keep, ds[i].e)
	}
	n.entries = keep
	return removed
}
